type result =
  | Optimal of { value : Rat.t; primal : Rat.t array; dual : Rat.t array }
  | Infeasible
  | Unbounded

(* Big-tableau layout: rows 0..m-1 are constraints, row m is the
   objective row in reduced-cost form; column layout is
   [0..n-1] original variables, [n..n+m-1] slacks, then artificials,
   and the final column is the right-hand side.  The invariant is the
   standard one: the objective value equals the objective row's rhs
   entry. *)

type tableau = {
  t : Rat.t array array; (* (m+1) x (ncols+1) *)
  basis : int array;     (* basic column of each constraint row *)
  m : int;
  ncols : int;           (* columns excluding rhs *)
}

exception Unbounded_exc

(* Cumulative pivot counter across all solves: observability reads this
   before/after a solve to attribute pivots to a pipeline stage.  The
   counter is per-domain (DLS) so parallel preprocessing workers count
   their own solves exactly; the domain pool merges worker totals back
   via [add_pivots] (registered as a worker hook by Stt_core). *)
let pivots_key = Domain.DLS.new_key (fun () -> ref 0)
let total_pivots () = Domain.DLS.get pivots_key
let pivot_count () = !(total_pivots ())

let add_pivots n =
  let r = total_pivots () in
  r := !r + n

let pivot tb r j =
  incr (total_pivots ());
  let t = tb.t in
  let piv = t.(r).(j) in
  let width = tb.ncols + 1 in
  if not Rat.(equal piv one) then
    for k = 0 to width - 1 do
      t.(r).(k) <- Rat.div t.(r).(k) piv
    done;
  for i = 0 to tb.m do
    if i <> r && not (Rat.is_zero t.(i).(j)) then begin
      let f = t.(i).(j) in
      for k = 0 to width - 1 do
        t.(i).(k) <- Rat.sub t.(i).(k) (Rat.mul f t.(r).(k))
      done
    end
  done;
  tb.basis.(r) <- j

(* Pivoting: Dantzig's rule (most negative reduced cost) for speed,
   falling back to Bland's rule — which cannot cycle — once the
   objective has stalled for a while.  Termination is therefore
   guaranteed while typical solves stay fast. *)
let debug =
  match Sys.getenv_opt "STT_LP_DEBUG" with Some _ -> true | None -> false

let iterate tb ~max_col =
  let t = tb.t in
  let rhs_col = tb.ncols in
  let stall = ref 0 in
  let pivots = ref 0 in
  let stall_limit = 4 * (tb.m + 1) in
  let continue = ref true in
  while !continue do
    let obj = t.(tb.m) in
    let entering =
      if !stall < stall_limit then begin
        (* Dantzig: most negative reduced cost *)
        let best = ref (-1) in
        for j = 0 to max_col - 1 do
          if
            Rat.sign obj.(j) < 0
            && (!best < 0 || Rat.compare obj.(j) obj.(!best) < 0)
          then best := j
        done;
        if !best < 0 then None else Some !best
      end
      else begin
        (* Bland: smallest eligible index *)
        let rec find j =
          if j >= max_col then None
          else if Rat.sign obj.(j) < 0 then Some j
          else find (j + 1)
        in
        find 0
      end
    in
    match entering with
    | None -> continue := false
    | Some j ->
        let leaving = ref (-1) in
        let best = ref Rat.zero in
        for i = 0 to tb.m - 1 do
          if Rat.sign t.(i).(j) > 0 then begin
            let ratio = Rat.div t.(i).(rhs_col) t.(i).(j) in
            if
              !leaving < 0
              || Rat.compare ratio !best < 0
              || (Rat.equal ratio !best && tb.basis.(i) < tb.basis.(!leaving))
            then begin
              leaving := i;
              best := ratio
            end
          end
        done;
        if !leaving < 0 then raise Unbounded_exc;
        let before = t.(tb.m).(rhs_col) in
        pivot tb !leaving j;
        incr pivots;
        if Rat.equal before t.(tb.m).(rhs_col) then incr stall else stall := 0
  done;
  if debug then
    Printf.eprintf "  [simplex] m=%d cols=%d pivots=%d\n%!" tb.m tb.ncols !pivots

let solve ~c ~a ~b =
  let m = Array.length b in
  let n = Array.length c in
  if Array.length a <> m then invalid_arg "Simplex.solve: rows";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Simplex.solve: cols")
    a;
  (* rows needing an artificial variable (negative rhs) *)
  let needs_artificial = Array.map (fun bi -> Rat.sign bi < 0) b in
  let n_art =
    Array.fold_left (fun acc need -> if need then acc + 1 else acc) 0
      needs_artificial
  in
  let ncols = n + m + n_art in
  let t = Array.make_matrix (m + 1) (ncols + 1) Rat.zero in
  let basis = Array.make m 0 in
  let art_of_row = Array.make m (-1) in
  let next_art = ref (n + m) in
  for i = 0 to m - 1 do
    let flip = needs_artificial.(i) in
    let mul1 x = if flip then Rat.neg x else x in
    for j = 0 to n - 1 do
      t.(i).(j) <- mul1 a.(i).(j)
    done;
    t.(i).(n + i) <- mul1 Rat.one;
    t.(i).(ncols) <- mul1 b.(i);
    if flip then begin
      t.(i).(!next_art) <- Rat.one;
      basis.(i) <- !next_art;
      art_of_row.(i) <- !next_art;
      incr next_art
    end
    else basis.(i) <- n + i
  done;
  let tb = { t; basis; m; ncols } in
  try
    (* Phase 1: maximize -(sum of artificials).  The objective row starts
       with +1 on artificial columns and is canonicalized by subtracting
       the rows where those artificials are basic. *)
    if n_art > 0 then begin
      for j = n + m to ncols - 1 do
        t.(m).(j) <- Rat.one
      done;
      for i = 0 to m - 1 do
        if art_of_row.(i) >= 0 then
          for k = 0 to ncols do
            t.(m).(k) <- Rat.sub t.(m).(k) t.(i).(k)
          done
      done;
      iterate tb ~max_col:ncols;
      let phase1_value = t.(m).(ncols) in
      if Rat.sign phase1_value < 0 then raise Exit;
      (* Pivot remaining basic artificials out on any real column; rows
         that are all-zero on real columns are redundant and inert. *)
      for i = 0 to m - 1 do
        if basis.(i) >= n + m then begin
          let rec find j =
            if j >= n + m then None
            else if not (Rat.is_zero t.(i).(j)) then Some j
            else find (j + 1)
          in
          match find 0 with
          | Some j -> pivot tb i j
          | None -> ()
        end
      done
    end;
    (* Phase 2: install the real objective and canonicalize w.r.t. the
       current basis. *)
    for k = 0 to ncols do
      t.(m).(k) <- Rat.zero
    done;
    for j = 0 to n - 1 do
      t.(m).(j) <- Rat.neg c.(j)
    done;
    for i = 0 to m - 1 do
      let bj = tb.basis.(i) in
      if not (Rat.is_zero t.(m).(bj)) then begin
        let f = t.(m).(bj) in
        for k = 0 to ncols do
          t.(m).(k) <- Rat.sub t.(m).(k) (Rat.mul f t.(i).(k))
        done
      end
    done;
    iterate tb ~max_col:(n + m);
    let primal = Array.make n Rat.zero in
    for i = 0 to m - 1 do
      if basis.(i) < n then primal.(basis.(i)) <- t.(i).(ncols)
    done;
    let dual = Array.init m (fun i -> t.(m).(n + i)) in
    Optimal { value = t.(m).(ncols); primal; dual }
  with
  | Exit -> Infeasible
  | Unbounded_exc -> Unbounded
