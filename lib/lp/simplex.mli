(** Exact two-phase primal simplex.

    Pivoting uses Dantzig's rule (most negative reduced cost) for speed
    and falls back to Bland's anti-cycling rule once the objective has
    stalled, so termination is guaranteed.

    Solves [maximize c·x  subject to  A·x <= b, x >= 0] over exact
    rationals.  Negative right-hand sides are allowed (phase 1 introduces
    artificial variables).  The solver also returns the optimal dual
    vector [y] of the inequality system — the certificate used to read
    off Shannon-flow coefficients. *)

type result =
  | Optimal of {
      value : Rat.t;
      primal : Rat.t array;  (** length n, the optimizer *)
      dual : Rat.t array;    (** length m, one multiplier per row *)
    }
  | Infeasible
  | Unbounded

val solve : c:Rat.t array -> a:Rat.t array array -> b:Rat.t array -> result
(** [solve ~c ~a ~b] with [a] of shape m×n, [b] length m, [c] length n.
    Raises [Invalid_argument] on shape mismatch. *)

val pivot_count : unit -> int
(** Cumulative number of pivots performed by every [solve] call in the
    current domain (monotone).  Diff before/after a solve to attribute
    pivots to one pipeline stage; benchmark artifacts record these
    diffs.  Parallel workers count their own solves; the domain pool
    merges worker totals back with {!add_pivots}. *)

val add_pivots : int -> unit
(** Add an externally accumulated pivot count (a parallel worker's
    domain-local total) into the current domain's counter. *)
