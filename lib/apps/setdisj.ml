open Stt_relation

type combo = int array (* sorted distinct heavy set ids, length in [2, k] *)

module ComboTbl = Hashtbl.Make (struct
  type t = combo

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  k : int;
  membership : unit Tuple.Tbl.t; (* (elem, set) pairs *)
  elems_of_set : (int, int list) Hashtbl.t;
  set_size : (int, int) Hashtbl.t;
  heavy : (int, unit) Hashtbl.t;
  nonempty : int list ComboTbl.t; (* heavy combos -> intersection elems *)
  threshold : int;
  space : int;
}

let space t = t.space
let threshold t = t.threshold
let heavy_sets t = Hashtbl.length t.heavy

(* number of combinations C(m, j) summed for j in [2, k], saturating *)
let combo_count m k =
  let total = ref 0 in
  for j = 2 to k do
    let c = ref 1 in
    for i = 0 to j - 1 do
      c := !c * (m - i) / (i + 1);
      if !c > 1 lsl 40 then c := 1 lsl 40
    done;
    total := min (1 lsl 40) (!total + if m >= j then !c else 0)
  done;
  !total

let rec distinct_sorted_tuples l j =
  if j = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun t -> x :: t) (distinct_sorted_tuples rest (j - 1))
        @ distinct_sorted_tuples rest j

let build ~k ~memberships ~budget =
  if k < 1 then invalid_arg "Setdisj.build: k >= 1 required";
  let membership = Tuple.Tbl.create (List.length memberships) in
  let elems_of_set = Hashtbl.create 256 in
  let set_size = Hashtbl.create 256 in
  List.iter
    (fun (e, s) ->
      let key = [| e; s |] in
      if not (Tuple.Tbl.mem membership key) then begin
        Tuple.Tbl.add membership key ();
        Hashtbl.replace elems_of_set s
          (e :: (try Hashtbl.find elems_of_set s with Not_found -> []));
        Hashtbl.replace set_size s
          (1 + try Hashtbl.find set_size s with Not_found -> 0)
      end)
    memberships;
  (* heavy sets: the largest m sets such that the number of stored
     combinations fits in the budget *)
  let by_size =
    Hashtbl.fold (fun s size acc -> (size, s) :: acc) set_size []
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let nsets = List.length by_size in
  let build_with m =
    let heavy = Hashtbl.create (max 1 m) in
    List.iteri
      (fun i (_, s) -> if i < m then Hashtbl.replace heavy s ())
      by_size;
    (* non-empty heavy combos, discovered per element *)
    let nonempty = ComboTbl.create 1024 in
    let heavy_of_elem = Hashtbl.create 1024 in
    Tuple.Tbl.iter
      (fun key () ->
        let e = key.(0) and s = key.(1) in
        if Hashtbl.mem heavy s then
          Hashtbl.replace heavy_of_elem e
            (s :: (try Hashtbl.find heavy_of_elem e with Not_found -> [])))
      membership;
    Hashtbl.iter
      (fun e sets ->
        let sets = List.sort_uniq compare sets in
        for j = 2 to k do
          List.iter
            (fun tuple ->
              let key = Array.of_list tuple in
              let existing =
                try ComboTbl.find nonempty key with Not_found -> []
              in
              ComboTbl.replace nonempty key (e :: existing))
            (distinct_sorted_tuples sets j)
        done)
      heavy_of_elem;
    let space =
      ComboTbl.fold (fun _ elems acc -> acc + 1 + List.length elems) nonempty 0
    in
    (heavy, nonempty, space)
  in
  (* the intersection element lists count toward the space too, so
     shrink the heavy family until the real footprint fits *)
  let rec fit m =
    let ((_, _, space) as built) = build_with m in
    if space <= max 0 budget || m = 0 then (m, built) else fit (m / 2)
  in
  let m0 =
    let rec largest m =
      if m <= 0 then 0
      else if combo_count m k <= max 0 budget then m
      else largest (m - 1)
    in
    largest nsets
  in
  let m, (heavy, nonempty, space) = fit m0 in
  let threshold =
    match List.nth_opt by_size m with Some (size, _) -> size | None -> 0
  in
  { k; membership; elems_of_set; set_size; heavy; nonempty; threshold; space }

let check_query t sets =
  if Array.length sets <> t.k then
    invalid_arg "Setdisj: query arity must equal k";
  Array.to_list sets |> List.sort_uniq compare

let light_elems t s =
  try Hashtbl.find t.elems_of_set s with Not_found -> []

let smallest_set t sets =
  List.fold_left
    (fun best s ->
      let size = try Hashtbl.find t.set_size s with Not_found -> 0 in
      match best with
      | Some (_, bs) when bs <= size -> best
      | _ -> Some (s, size))
    None sets

let scan_intersection t sets =
  match smallest_set t sets with
  | None -> []
  | Some (s0, _) ->
      List.filter
        (fun e ->
          List.for_all
            (fun s ->
              s = s0
              ||
              (Cost.charge_probe ();
               Tuple.Tbl.mem t.membership [| e; s |]))
            sets)
        (List.map
           (fun e ->
             Cost.charge_scan ();
             e)
           (light_elems t s0))

let intersection t sets_arr =
  let sets = check_query t sets_arr in
  match sets with
  | [] -> []
  | [ s ] ->
      List.map
        (fun e ->
          Cost.charge_scan ();
          e)
        (light_elems t s)
  | _ ->
      let all_heavy = List.for_all (Hashtbl.mem t.heavy) sets in
      if all_heavy then begin
        Cost.charge_probe ();
        try ComboTbl.find t.nonempty (Array.of_list sets)
        with Not_found -> []
      end
      else scan_intersection t sets

let disjoint t sets_arr =
  let sets = check_query t sets_arr in
  match sets with
  | [] -> false
  | [ s ] -> light_elems t s = []
  | _ ->
      let all_heavy = List.for_all (Hashtbl.mem t.heavy) sets in
      if all_heavy then begin
        Cost.charge_probe ();
        not (ComboTbl.mem t.nonempty (Array.of_list sets))
      end
      else
        (* scan the smallest set (light by construction unless all sets
           are heavy), probing the others *)
        let rec scan = function
          | [] -> true
          | e :: rest ->
              Cost.charge_scan ();
              let everywhere =
                List.for_all
                  (fun s ->
                    Cost.charge_probe ();
                    Tuple.Tbl.mem t.membership [| e; s |])
                  sets
              in
              if everywhere then false else scan rest
        in
        (match smallest_set t sets with
        | None -> true
        | Some (s0, _) -> scan (light_elems t s0))

module Counting = struct
  type t = { k : int; engine : Stt_core.Engine.t }

  let build ~k ~memberships ~budget ~agg_budget =
    if k < 1 then invalid_arg "Setdisj.Counting.build: k >= 1 required";
    let q = Stt_hypergraph.Cq.Library.k_set_intersection k in
    let db = Stt_core.Db.create () in
    Stt_core.Db.add_pairs db "R" memberships;
    let engine = Stt_core.Engine.build_auto q ~db ~budget in
    Stt_core.Engine.enable_agg ~kinds:[ Stt_semiring.Semiring.Count ] engine
      ~db ~budget:agg_budget;
    { k; engine }

  let engine t = t.engine

  let cardinality t sets =
    if Array.length sets <> t.k then
      invalid_arg "Setdisj.Counting: query arity must equal k";
    let q_a =
      Relation.of_list
        (Stt_core.Engine.access_schema t.engine)
        [ Array.copy sets ]
    in
    fst (Stt_core.Engine.answer_agg t.engine Stt_semiring.Semiring.Count ~q_a)
end

let naive_cardinality ~memberships sets_arr =
  let members = Hashtbl.create (List.length memberships) in
  List.iter (fun (e, s) -> Hashtbl.replace members (e, s) ()) memberships;
  List.filter_map (fun (e, _) -> Some e) memberships
  |> List.sort_uniq compare
  |> List.filter (fun e ->
         Array.for_all (fun s -> Hashtbl.mem members (e, s)) sets_arr)
  |> List.length

let naive_disjoint ~memberships sets_arr =
  let sets = Array.to_list sets_arr |> List.sort_uniq compare in
  let members = Hashtbl.create (List.length memberships) in
  List.iter (fun (e, s) -> Hashtbl.replace members (e, s) ()) memberships;
  let universe =
    List.filter_map
      (fun (e, s) -> if List.mem s sets then Some e else None)
      memberships
    |> List.sort_uniq compare
  in
  not
    (List.exists
       (fun e -> List.for_all (fun s -> Hashtbl.mem members (e, s)) sets)
       universe)
