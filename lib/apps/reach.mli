(** k-Reachability data structures (Section 6.4).

    Three implementations:

    - {!Bfs}: no preprocessing (S = 0); answers by depth-bounded BFS in
      [O(|E|)] — one endpoint of every tradeoff curve.
    - {!Baseline}: the Goldstein–Kopelowitz–Lewenstein–Porat structure
      whose conjectured-optimal tradeoff [S · T^{2/(k-1)} ≅ |E|^2] the
      paper improves on: answers for heavy-out × heavy-in vertex pairs
      are materialized and every other query recurses through a
      low-degree endpoint.
    - {!Framework}: the paper's framework via {!Stt_core.Engine} over the
      automatically enumerated PMTD set. *)

type edges = (int * int) list

module Bfs : sig
  type t

  val build : edges -> t
  val query : t -> k:int -> int -> int -> bool
  (** Path of length exactly [k]?  Cost-counted. *)

  val query_at_most : t -> k:int -> int -> int -> bool
end

module Baseline : sig
  type t

  val build : k:int -> edges -> budget:int -> t
  val space : t -> int
  val threshold : t -> int
  val query : t -> int -> int -> bool
  (** Path of length exactly [k]?  Cost-counted. *)
end

module Framework : sig
  type t

  val build : k:int -> edges -> budget:int -> t
  val space : t -> int
  val query : t -> int -> int -> bool
  val engine : t -> Stt_core.Engine.t
end

module AtMost : sig
  (** "Path of length at most k" oracle, built as the union of the
      exact-length indexes for 1..k (the combination suggested in
      Example 2.3).  The budget is split evenly. *)

  type t

  val build : k:int -> edges -> budget:int -> t
  val space : t -> int
  val query : t -> int -> int -> bool
end

module Counting : sig
  (** Path {e counting}: how many distinct [k]-edge walks [u -> ... -> v]?
      A sum-product CQAP over the counting semiring — the aggregate is
      answered without materializing the walks themselves
      ({!Stt_core.Engine.answer_agg}). *)

  type t

  val build : k:int -> edges -> budget:int -> agg_budget:int -> t
  (** [budget] bounds the tuple-answering structures (as in
      {!Framework.build}); [agg_budget] bounds the precomputed COUNT
      table ({!Stt_core.Engine.enable_agg}). *)

  val count : t -> int -> int -> int
  (** Number of distinct [k]-edge walks from [u] to [v].  Cost-counted. *)

  val engine : t -> Stt_core.Engine.t
end

val naive_count : edges -> k:int -> int -> int -> int
(** Reference walk count by layered dynamic programming (tests only). *)

val naive : edges -> k:int -> int -> int -> bool
(** Reference by exhaustive path search (tests only). *)
