(** k-Set Disjointness / k-Set Intersection data structures (Section 6.1).

    A direct heavy/light implementation of the strategy the framework
    derives from the two trivial PMTDs: sets larger than a threshold are
    {e heavy}; emptiness (or the full intersection) of every k-tuple of
    heavy sets is materialized, and any query touching a light set is
    answered by scanning that light set and probing membership hashes.

    With threshold [τ] the structure stores [O((N/τ)^k)] entries and
    answers in [O(k·τ)] probes — the tradeoff [S·T^k ≅ N^k] of
    Example 6.2 (for [|Q_A| = 1]). *)

type t

val build : k:int -> memberships:(int * int) list -> budget:int -> t
(** [memberships] are [(element, set)] pairs; [budget] caps the number of
    materialized heavy combinations (and intersection elements in
    intersection mode). *)

val space : t -> int
(** Entries actually materialized. *)

val threshold : t -> int
val heavy_sets : t -> int

val disjoint : t -> int array -> bool
(** [disjoint t sets]: is the intersection of the [k] given sets empty?
    Cost-counted.  Raises [Invalid_argument] on wrong arity. *)

val intersection : t -> int array -> int list
(** The elements of the intersection (non-Boolean variant, query (2) of
    the paper).  Heavy combinations replay the stored list; otherwise the
    lightest set is scanned. *)

module Counting : sig
  (** Intersection {e cardinality} as a sum-product CQAP: the COUNT
      aggregate of the k-set intersection query over a request fixing
      all k set variables is exactly [|S_1 ∩ … ∩ S_k|] — the only
      eliminated variable is the element, so the engine's aggregate
      path returns the cardinality without materializing the
      intersection ({!Stt_core.Engine.answer_agg}). *)

  type t

  val build :
    k:int -> memberships:(int * int) list -> budget:int -> agg_budget:int -> t
  (** [budget] bounds the tuple-answering structures, [agg_budget] the
      precomputed COUNT table. *)

  val cardinality : t -> int array -> int
  (** [cardinality t sets] = size of the intersection of the [k] given
      sets.  Cost-counted.  Raises [Invalid_argument] on wrong arity. *)

  val engine : t -> Stt_core.Engine.t
end

val naive_cardinality : memberships:(int * int) list -> int array -> int
(** Reference intersection cardinality for tests. *)

val naive_disjoint : memberships:(int * int) list -> int array -> bool
(** Reference implementation for tests. *)
