(** Min-weight k-reachability: the lightest [k]-edge walk between two
    vertices, as a sum-product CQAP over the tropical semiring
    (min, +).  The engine's MIN-annotated aggregate path answers the
    access request without enumerating the walks
    ({!Stt_core.Engine.answer_agg} with {!Stt_semiring.Semiring.Min}). *)

type weighted_edges = (int * int * int) list
(** [(u, v, w)] — a directed edge of nonnegative weight [w].  Duplicate
    [(u, v)] pairs keep the last weight. *)

type t

val build : k:int -> weighted_edges -> budget:int -> agg_budget:int -> t
(** [budget] bounds the tuple-answering structures, [agg_budget] the
    precomputed MIN table.  Raises [Invalid_argument] on a negative
    edge weight (the tropical sum saturates instead of wrapping, so
    negative weights would be silently unsound). *)

val min_weight : t -> int -> int -> int option
(** Weight of the lightest exactly-[k]-edge walk from [u] to [v], or
    [None] when no such walk exists.  Cost-counted. *)

val space : t -> int
val engine : t -> Stt_core.Engine.t

val naive : weighted_edges -> k:int -> int -> int -> int option
(** Reference by layered relaxation (tests only). *)
