open Stt_relation
module Semiring = Stt_semiring.Semiring

type weighted_edges = (int * int * int) list

type t = { engine : Stt_core.Engine.t }

let build ~k edges ~budget ~agg_budget =
  List.iter
    (fun (_, _, w) -> if w < 0 then invalid_arg "Minreach.build: negative weight")
    edges;
  let q = Stt_hypergraph.Cq.Library.k_path k in
  let db = Stt_core.Db.create () in
  Stt_core.Db.add_weighted db "R"
    (List.map (fun (u, v, w) -> ([| u; v |], w)) edges);
  let engine = Stt_core.Engine.build_auto q ~db ~budget in
  Stt_core.Engine.enable_agg ~kinds:[ Semiring.Min ] engine ~db
    ~budget:agg_budget;
  { engine }

let engine t = t.engine
let space t = Stt_core.Engine.total_space t.engine

let min_weight t u v =
  let q_a =
    Relation.of_list (Stt_core.Engine.access_schema t.engine) [ [| u; v |] ]
  in
  let w, _ = Stt_core.Engine.answer_agg t.engine Semiring.Min ~q_a in
  if w = Semiring.zero Semiring.Min then None else Some w

(* Bellman–Ford-style DP over exactly-i-edge walks; duplicate (u, v)
   edges keep the last weight, matching Db.add_weighted *)
let naive edges ~k u v =
  let weight = Tuple.Tbl.create (List.length edges) in
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (a, b, w) ->
      let key = [| a; b |] in
      if not (Tuple.Tbl.mem weight key) then
        Hashtbl.replace adj a (b :: (try Hashtbl.find adj a with Not_found -> []));
      Tuple.Tbl.replace weight key w)
    edges;
  let dist = ref (Hashtbl.create 64) in
  Hashtbl.replace !dist u 0;
  for _ = 1 to k do
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun w d ->
        List.iter
          (fun x ->
            let cand = d + Tuple.Tbl.find weight [| w; x |] in
            let prev = try Hashtbl.find next x with Not_found -> max_int in
            if cand < prev then Hashtbl.replace next x cand)
          (try Hashtbl.find adj w with Not_found -> []))
      !dist;
    dist := next
  done;
  try Some (Hashtbl.find !dist v) with Not_found -> None
