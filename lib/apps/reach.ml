open Stt_relation

type edges = (int * int) list

(* shared adjacency with O(1) probes *)
type adjacency = {
  out_adj : (int, int list) Hashtbl.t;
  in_adj : (int, int list) Hashtbl.t;
  edge : unit Tuple.Tbl.t;
  nedges : int;
}

let adjacency edges =
  let out_adj = Hashtbl.create 1024 and in_adj = Hashtbl.create 1024 in
  let edge = Tuple.Tbl.create (List.length edges) in
  let count = ref 0 in
  List.iter
    (fun (u, v) ->
      let key = [| u; v |] in
      if not (Tuple.Tbl.mem edge key) then begin
        Tuple.Tbl.add edge key ();
        incr count;
        Hashtbl.replace out_adj u
          (v :: (try Hashtbl.find out_adj u with Not_found -> []));
        Hashtbl.replace in_adj v
          (u :: (try Hashtbl.find in_adj v with Not_found -> []))
      end)
    edges;
  { out_adj; in_adj; edge; nedges = !count }

let successors adj u = try Hashtbl.find adj.out_adj u with Not_found -> []
let predecessors adj v = try Hashtbl.find adj.in_adj v with Not_found -> []

let has_edge adj u v =
  Cost.charge_probe ();
  Tuple.Tbl.mem adj.edge [| u; v |]

module Bfs = struct
  type t = adjacency

  let build = adjacency

  (* frontier of vertices reachable in exactly [i] steps (set semantics) *)
  let query t ~k u v =
    let frontier = ref [ u ] in
    (try
       for _ = 1 to k do
         let next = Hashtbl.create 64 in
         List.iter
           (fun w ->
             Cost.charge_scan ();
             List.iter
               (fun x ->
                 Cost.charge_scan ();
                 Hashtbl.replace next x ())
               (successors t w))
           !frontier;
         frontier := Hashtbl.fold (fun x () acc -> x :: acc) next []
       done
     with Exit -> ());
    List.mem v !frontier

  let query_at_most t ~k u v =
    let rec loop i frontier seen =
      if List.mem v frontier then true
      else if i >= k then false
      else begin
        let next = Hashtbl.create 64 in
        List.iter
          (fun w ->
            Cost.charge_scan ();
            List.iter
              (fun x ->
                Cost.charge_scan ();
                if not (Hashtbl.mem seen x) then begin
                  Hashtbl.replace seen x ();
                  Hashtbl.replace next x ()
                end)
              (successors t w))
          frontier;
        loop (i + 1) (Hashtbl.fold (fun x () acc -> x :: acc) next []) seen
      end
    in
    let seen = Hashtbl.create 64 in
    Hashtbl.replace seen u ();
    loop 0 [ u ] seen
end

module Baseline = struct
  type t = {
    k : int;
    adj : adjacency;
    threshold : int;
    stored : unit Tuple.Tbl.t; (* (u, v, j): heavy-out u reaches heavy-in v in exactly j steps *)
    heavy_out : (int, unit) Hashtbl.t;
    heavy_in : (int, unit) Hashtbl.t;
  }

  let space t = Tuple.Tbl.length t.stored
  let threshold t = t.threshold

  (* exact-k reachability by layered BFS, preprocessing only *)
  let reach_exactly adj k u =
    let frontier = ref [ u ] in
    for _ = 1 to k do
      let next = Hashtbl.create 64 in
      List.iter
        (fun w ->
          List.iter (fun x -> Hashtbl.replace next x ()) (successors adj w))
        !frontier;
      frontier := Hashtbl.fold (fun x () acc -> x :: acc) next []
    done;
    !frontier

  let build ~k edges ~budget =
    let adj = adjacency edges in
    let n = adj.nedges in
    (* #heavy_out · #heavy_in <= budget; with threshold t there are at
       most n/t heavy vertices on each side *)
    let threshold =
      let root = int_of_float (Float.sqrt (float_of_int (max 1 budget))) in
      max 1 (n / max 1 root)
    in
    let heavy_out = Hashtbl.create 64 and heavy_in = Hashtbl.create 64 in
    Hashtbl.iter
      (fun u succs ->
        if List.length succs > threshold then Hashtbl.replace heavy_out u ())
      adj.out_adj;
    Hashtbl.iter
      (fun v preds ->
        if List.length preds > threshold then Hashtbl.replace heavy_in v ())
      adj.in_adj;
    let stored = Tuple.Tbl.create 1024 in
    Hashtbl.iter
      (fun u () ->
        for j = 1 to k do
          List.iter
            (fun v ->
              if Hashtbl.mem heavy_in v then
                Tuple.Tbl.add stored [| u; v; j |] ())
            (reach_exactly adj j u)
        done)
      heavy_out;
    { k; adj; threshold; stored; heavy_out; heavy_in }

  (* recurse from whichever endpoint is light; heavy-heavy pairs are
     table lookups *)
  let query t u v =
    let rec go k u v =
      if k = 1 then has_edge t.adj u v
      else if not (Hashtbl.mem t.heavy_out u) then
        List.exists
          (fun w ->
            Cost.charge_scan ();
            go (k - 1) w v)
          (successors t.adj u)
      else if not (Hashtbl.mem t.heavy_in v) then
        List.exists
          (fun w ->
            Cost.charge_scan ();
            go (k - 1) u w)
          (predecessors t.adj v)
      else begin
        Cost.charge_probe ();
        Tuple.Tbl.mem t.stored [| u; v; k |]
      end
    in
    if t.k = 0 then u = v else go t.k u v
end

module Framework = struct
  type t = { engine : Stt_core.Engine.t }

  let build ~k edges ~budget =
    let q = Stt_hypergraph.Cq.Library.k_path k in
    let db = Stt_core.Db.create () in
    Stt_core.Db.add_pairs db "R" edges;
    { engine = Stt_core.Engine.build_auto q ~db ~budget }

  let space t = Stt_core.Engine.space t.engine
  let query t u v = Stt_core.Engine.answer_tuple t.engine [| u; v |]
  let engine t = t.engine
end

module AtMost = struct
  type t = { oracles : Framework.t list }

  let build ~k edges ~budget =
    if k < 1 then invalid_arg "Reach.AtMost.build";
    let each = max 1 (budget / k) in
    {
      oracles =
        List.init k (fun i -> Framework.build ~k:(i + 1) edges ~budget:each);
    }

  let space t =
    List.fold_left (fun acc o -> acc + Framework.space o) 0 t.oracles

  let query t u v =
    u = v || List.exists (fun o -> Framework.query o u v) t.oracles
end

module Counting = struct
  type t = { engine : Stt_core.Engine.t }

  let build ~k edges ~budget ~agg_budget =
    let q = Stt_hypergraph.Cq.Library.k_path k in
    let db = Stt_core.Db.create () in
    Stt_core.Db.add_pairs db "R" edges;
    let engine = Stt_core.Engine.build_auto q ~db ~budget in
    Stt_core.Engine.enable_agg ~kinds:[ Stt_semiring.Semiring.Count ] engine
      ~db ~budget:agg_budget;
    { engine }

  let engine t = t.engine

  let count t u v =
    let q_a =
      Relation.of_list (Stt_core.Engine.access_schema t.engine) [ [| u; v |] ]
    in
    fst (Stt_core.Engine.answer_agg t.engine Stt_semiring.Semiring.Count ~q_a)
end

(* layered DP: [counts.(i)] maps w to the number of distinct i-edge walks
   u -> ... -> w (edge multiset deduped, matching set semantics of the
   stored relation) *)
let naive_count edges ~k u v =
  let adj = adjacency edges in
  let counts = ref (Hashtbl.create 64) in
  Hashtbl.replace !counts u 1;
  for _ = 1 to k do
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun w c ->
        List.iter
          (fun x ->
            let prev = try Hashtbl.find next x with Not_found -> 0 in
            Hashtbl.replace next x (prev + c))
          (successors adj w))
      !counts;
    counts := next
  done;
  try Hashtbl.find !counts v with Not_found -> 0

let naive edges ~k u v =
  let rec go k u =
    if k = 0 then u = v
    else
      List.exists (fun (a, b) -> a = u && go (k - 1) b) edges
  in
  go k u
