(** Global switch for factorized (d-representation) storage.

    One knob shared by every layer that can hold a view compressed —
    Twopp admission, Online Yannakakis S-views, the answer cache.  The
    mode is read at decision points during builds and cache admissions;
    set it before building (the build pool's worker domains read it
    concurrently, so flipping it mid-build is a race, not a feature).

    The initial mode comes from the [STT_FACTORIZE] environment
    variable: ["off"], ["auto"] (the default) or ["on"] (forced). *)

type mode =
  | Off  (** never factorize: flat tuple sets everywhere (pre-PR behaviour) *)
  | Auto
      (** factorize a view only when its measured compression ratio
          [rows / size] clears {!min_ratio} — the production default *)
  | Forced
      (** factorize every eligible view regardless of measured ratio;
          for differential tests that must exercise the compressed path
          on incompressible data too *)

val mode : unit -> mode
val set_mode : mode -> unit

val min_ratio : float
(** The [Auto] eligibility gate: a view is stored factorized only when
    [rows >= min_ratio * size], i.e. every stored singleton of the
    d-representation stands in for at least this many flat rows. *)

val eligible : rows:int -> size:int -> bool
(** Mode-aware gate: [false] under [Off]; under [Auto], the
    {!min_ratio} test; always [true] under [Forced]. *)

val effective_size : rows:int -> size:int -> int
(** The stored-singleton charge a view of [rows] flat tuples whose
    d-representation has [size] singletons would be accounted at:
    [size] when {!eligible}, [rows] otherwise. *)
