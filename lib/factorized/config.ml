type mode = Off | Auto | Forced

let of_env () =
  match Sys.getenv_opt "STT_FACTORIZE" with
  | Some ("off" | "0" | "false") -> Off
  | Some ("on" | "forced" | "1" | "true") -> Forced
  | Some _ | None -> Auto

let current = Atomic.make (of_env ())
let mode () = Atomic.get current
let set_mode m = Atomic.set current m
let min_ratio = 1.25

(* integer form of [rows >= min_ratio * size] with min_ratio = 5/4 *)
let ratio_ok ~rows ~size = 4 * rows >= 5 * size

let eligible ~rows ~size =
  match mode () with
  | Off -> false
  | Auto -> ratio_ok ~rows ~size
  | Forced -> true

let effective_size ~rows ~size = if eligible ~rows ~size then size else rows
