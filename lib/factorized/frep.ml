open Stt_relation
module C = Stt_store.Codec

(* One DAG node: a union of singleton runs for the variable at [level].
   [vals] is strictly ascending; [kids.(k)] is the subtree every tuple
   continuing [vals.(k)] shares.  The terminal (empty run at level =
   arity) is node id 0; hash-consing makes equal subtrees one node, and
   construction interns children before parents, so every child id is
   smaller than its parent's. *)
type node = { level : int; vals : int array; kids : int array }

type t = {
  schema : Schema.t; (* level order: the probe prefix first *)
  prefix_len : int;
  nodes : node array; (* id 0 = terminal; children precede parents *)
  root : int; (* -1 iff the relation is empty *)
  rows : int;
  size : int; (* Σ run lengths — stored singletons *)
}

let schema t = t.schema
let rows t = t.rows
let size t = t.size
let node_count t = Array.length t.nodes

let key_vars t =
  List.filteri (fun i _ -> i < t.prefix_len) (Schema.vars t.schema)

(* ------------------------------------------------------------------ *)
(* construction                                                         *)
(* ------------------------------------------------------------------ *)

(* suffix variables ordered by ascending distinct-value count (ties by
   variable id): slowly-varying columns sit near the root, where one
   run prefix covers many rows and the deeper, wider columns land in
   shared subtrees *)
let suffix_order rel vars =
  let counted =
    List.map
      (fun v ->
        let pos = Schema.position (Relation.schema rel) v in
        let seen = Hashtbl.create 64 in
        Relation.iter
          (fun tup ->
            if not (Hashtbl.mem seen tup.(pos)) then
              Hashtbl.add seen tup.(pos) ())
          rel;
        (Hashtbl.length seen, v))
      vars
  in
  List.map snd (List.sort compare counted)

let of_relation ?(prefix = []) rel =
  let rel_schema = Relation.schema rel in
  let arity = Schema.arity rel_schema in
  List.iter
    (fun v ->
      if not (Schema.mem v rel_schema) then
        invalid_arg "Frep.of_relation: prefix variable not in schema")
    prefix;
  if List.length (List.sort_uniq compare prefix) <> List.length prefix then
    invalid_arg "Frep.of_relation: duplicate prefix variable";
  let suffix =
    suffix_order rel
      (List.filter
         (fun v -> not (List.mem v prefix))
         (Schema.vars rel_schema))
  in
  let order = prefix @ suffix in
  let pos = Schema.positions rel_schema order in
  (* the one-time factorize cost: one scan per input row *)
  let sorted =
    let acc = ref [] in
    Relation.iter
      (fun tup ->
        Cost.charge_scan ();
        acc := Tuple.project pos tup :: !acc)
      rel;
    List.sort Tuple.compare !acc
  in
  let arr = Array.of_list sorted in
  let nodes = ref [] (* newest first *) in
  let n_nodes = ref 0 in
  let memo : (int * int array * int array, int) Hashtbl.t =
    Hashtbl.create 256
  in
  let intern level vals kids =
    match Hashtbl.find_opt memo (level, vals, kids) with
    | Some id -> id
    | None ->
        let id = !n_nodes in
        incr n_nodes;
        nodes := { level; vals; kids } :: !nodes;
        Hashtbl.add memo (level, vals, kids) id;
        id
  in
  let terminal = intern arity [||] [||] in
  let rec build level lo hi =
    if level = arity then terminal
    else begin
      (* rows are sorted, so each distinct value is a contiguous run *)
      let vals = ref [] and kids = ref [] in
      let i = ref lo in
      while !i < hi do
        let v = arr.(!i).(level) in
        let j = ref !i in
        while !j < hi && arr.(!j).(level) = v do
          incr j
        done;
        let kid = build (level + 1) !i !j in
        vals := v :: !vals;
        kids := kid :: !kids;
        i := !j
      done;
      intern level
        (Array.of_list (List.rev !vals))
        (Array.of_list (List.rev !kids))
    end
  in
  let root = if Array.length arr = 0 then -1 else build 0 0 (Array.length arr) in
  let nodes = Array.of_list (List.rev !nodes) in
  let size = Array.fold_left (fun acc n -> acc + Array.length n.vals) 0 nodes in
  {
    schema = Schema.of_list order;
    prefix_len = List.length prefix;
    nodes;
    root;
    rows = Array.length arr;
    size;
  }

(* ------------------------------------------------------------------ *)
(* enumeration and probing                                              *)
(* ------------------------------------------------------------------ *)

let arity t = Schema.arity t.schema

(* binary search a run for [v]; the kid id or -1 *)
let find_kid n v =
  let lo = ref 0 and hi = ref (Array.length n.vals - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare n.vals.(mid) v in
    if c = 0 then begin
      found := n.kids.(mid);
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* walk the key down the prefix levels; the node under it or -1 *)
let descend t key =
  let rec go id lvl =
    if lvl = Array.length key then id
    else
      match find_kid t.nodes.(id) key.(lvl) with
      | -1 -> -1
      | kid -> go kid (lvl + 1)
  in
  if t.root < 0 then -1 else go t.root 0

(* DFS under [id], [scratch] holding the values of levels above it *)
let rec dfs t id scratch ~emit =
  let n = t.nodes.(id) in
  if n.level = arity t then emit scratch
  else
    for k = 0 to Array.length n.vals - 1 do
      scratch.(n.level) <- n.vals.(k);
      dfs t n.kids.(k) scratch ~emit
    done

let enum_iter t f =
  Cost.charge_probe ();
  if t.root >= 0 then begin
    let scratch = Array.make (arity t) 0 in
    dfs t t.root scratch ~emit:(fun s ->
        Cost.charge_tuple ();
        f s)
  end

let probe_iter t key f =
  if Tuple.arity key <> t.prefix_len then
    invalid_arg "Frep.probe_iter: key arity mismatch";
  Cost.charge_probe ();
  match descend t key with
  | -1 -> ()
  | id ->
      let scratch = Array.make (arity t) 0 in
      Array.blit key 0 scratch 0 t.prefix_len;
      dfs t id scratch ~emit:f

let probe_mem t key =
  if Tuple.arity key <> t.prefix_len then
    invalid_arg "Frep.probe_mem: key arity mismatch";
  Cost.charge_probe ();
  descend t key >= 0

(* charge-identical to [Index.semijoin]: scan + probe per input row,
   output rows charged by [Relation.add] *)
let semijoin rel t =
  let key_pos = Schema.positions (Relation.schema rel) (key_vars t) in
  let scratch = Array.make t.prefix_len 0 in
  let out = Relation.create (Relation.schema rel) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup scratch;
      if descend t scratch >= 0 then Relation.add out tup)
    rel;
  out

(* charge-identical to [Index.join]: scan + probe per left row, one
   output tuple charged per emitted match (via [Relation.add]) *)
let join rel t =
  let rel_schema = Relation.schema rel in
  let key_pos = Schema.positions rel_schema (key_vars t) in
  let extra_vars =
    List.filter (fun v -> not (Schema.mem v rel_schema)) (Schema.vars t.schema)
  in
  (* key vars are all in [rel], so the extras live in suffix levels *)
  let extra_lvls =
    Array.of_list (List.map (Schema.position t.schema) extra_vars)
  in
  let n_extra = Array.length extra_lvls in
  let out_schema = Schema.union rel_schema (Schema.of_list extra_vars) in
  let out = Relation.create out_schema in
  let ra = Schema.arity rel_schema in
  let kscratch = Array.make t.prefix_len 0 in
  let sscratch = Array.make (arity t) 0 in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup kscratch;
      match descend t kscratch with
      | -1 -> ()
      | id ->
          dfs t id sscratch ~emit:(fun s ->
              let out_tup = Array.make (ra + n_extra) 0 in
              Array.blit tup 0 out_tup 0 ra;
              for k = 0 to n_extra - 1 do
                out_tup.(ra + k) <- s.(extra_lvls.(k))
              done;
              Relation.add out out_tup))
    rel;
  out

let to_relation t =
  Cost.with_counting false (fun () ->
      let out = Relation.create t.schema in
      if t.root >= 0 then begin
        let scratch = Array.make (arity t) 0 in
        dfs t t.root scratch ~emit:(fun s -> Relation.add out (Array.copy s))
      end;
      out)

(* ------------------------------------------------------------------ *)
(* wire codec                                                           *)
(* ------------------------------------------------------------------ *)

let codec_version = 1

let write e t =
  C.write_u8 e codec_version;
  C.write_uint e (arity t);
  C.write_list e (fun v -> C.write_uint e v) (Schema.vars t.schema);
  C.write_uint e t.prefix_len;
  C.write_uint e t.rows;
  C.write_uint e (t.root + 1);
  C.write_list e
    (fun n ->
      C.write_uint e n.level;
      C.write_uint e (Array.length n.vals);
      (* runs are strictly ascending: first value zigzag, then gaps *)
      Array.iteri
        (fun k v ->
          if k = 0 then C.write_int e v
          else C.write_uint e (v - n.vals.(k - 1) - 1))
        n.vals;
      Array.iter (fun kid -> C.write_uint e kid) n.kids)
    (Array.to_list t.nodes)

let corrupt fmt = Format.kasprintf (fun msg -> raise (C.Corrupt msg)) fmt

(* a run length is read before its payload; cap it so a corrupted
   length cannot allocate unboundedly before the byte shortage shows *)
let max_run = 1 lsl 24

let read_raw d =
  let v = C.read_u8 d in
  if v <> codec_version then corrupt "frep: codec version %d" v;
  let ar = C.read_uint d in
  let vars = C.read_list d (fun () -> C.read_uint d) in
  if List.length vars <> ar then corrupt "frep: %d vars for arity %d"
      (List.length vars) ar;
  let schema =
    try Schema.of_list vars
    with Invalid_argument _ -> corrupt "frep: duplicate schema variable"
  in
  let prefix_len = C.read_uint d in
  if prefix_len > ar then corrupt "frep: prefix %d exceeds arity %d" prefix_len ar;
  let stored_rows = C.read_uint d in
  let root = C.read_uint d - 1 in
  let next_id = ref 0 in
  let nodes =
    C.read_list d (fun () ->
        let id = !next_id in
        incr next_id;
        let level = C.read_uint d in
        let len = C.read_uint d in
        if id = 0 then begin
          if level <> ar || len <> 0 then corrupt "frep: node 0 not terminal"
        end
        else if level >= ar then corrupt "frep: inner node at level %d" level
        else if len = 0 then corrupt "frep: empty run at node %d" id;
        if len > max_run then corrupt "frep: run of %d at node %d" len id;
        let vals = Array.make len 0 in
        for k = 0 to len - 1 do
          vals.(k) <-
            (if k = 0 then C.read_int d else vals.(k - 1) + 1 + C.read_uint d)
        done;
        let kids = Array.make len 0 in
        for k = 0 to len - 1 do
          let kid = C.read_uint d in
          if kid >= id then corrupt "frep: forward child %d at node %d" kid id;
          kids.(k) <- kid
        done;
        { level; vals; kids })
  in
  let nodes = Array.of_list nodes in
  let n = Array.length nodes in
  if n = 0 then corrupt "frep: no nodes";
  (* child levels step by one; the terminal closes every path *)
  Array.iteri
    (fun id nd ->
      if id > 0 then
        Array.iter
          (fun kid ->
            if nodes.(kid).level <> nd.level + 1 then
              corrupt "frep: child level skew at node %d" id)
          nd.kids)
    nodes;
  if root < -1 || root >= n then corrupt "frep: root %d out of range" root;
  if root >= 0 && nodes.(root).level <> 0 then corrupt "frep: root not level 0";
  (* every node must be live: an unreachable node would inflate [size] *)
  let reached = Array.make n false in
  let rec reach id =
    if not reached.(id) then begin
      reached.(id) <- true;
      Array.iter reach nodes.(id).kids
    end
  in
  if root >= 0 then reach root;
  reached.(0) <- true (* the terminal is always interned *);
  Array.iteri
    (fun id r -> if not r then corrupt "frep: unreachable node %d" id)
    reached;
  (* re-derive the cardinality and reject a mismatch: a decoded value
     that loads at all is structurally sound *)
  let counts = Array.make n 0 in
  counts.(0) <- 1;
  for id = 1 to n - 1 do
    counts.(id) <-
      Array.fold_left (fun acc kid -> acc + counts.(kid)) 0 nodes.(id).kids
  done;
  let derived = if root < 0 then 0 else counts.(root) in
  if derived <> stored_rows then
    corrupt "frep: %d rows stored, %d derived" stored_rows derived;
  let size = Array.fold_left (fun acc nd -> acc + Array.length nd.vals) 0 nodes in
  { schema; prefix_len; nodes; root; rows = stored_rows; size }

let read d =
  try read_raw d with C.Short what -> corrupt "frep: truncated at %s" what

let encode t =
  let e = C.encoder () in
  write e t;
  C.contents e

let decode s =
  let d = C.decoder s in
  let t = read d in
  C.expect_end d "frep";
  t
