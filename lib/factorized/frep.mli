(** Factorized d-representations of relations (Deep & Koutris,
    "Compressed Representations of Conjunctive Query Results").

    A relation is stored as a DAG over a fixed variable order: each
    inner node is a union of singleton runs — an ascending array of
    values for one variable, each value the product of that singleton
    with one shared child subtree — and structurally identical subtrees
    are hash-consed, so a suffix set shared by many prefixes is stored
    once.  {!size} counts the stored singletons of the DAG (one per
    [(value, child)] edge), the same unit as flat stored tuples: a flat
    set of [n] rows costs [n] stored tuples, its d-representation costs
    [size] ≤ [n × arity] and often far less, and the compression ratio
    [rows / size] is how many flat rows one budget unit buys.

    Enumeration is constant-delay: a DFS of the DAG emits each tuple
    with O(arity) pointer chasing between outputs and no dependence on
    the relation's cardinality.

    {b Cost model.}  [factorize] ({!of_relation}) charges one [scan]
    per input row — the one-time compression cost, counted under
    whatever counting mode the caller runs.  {!enum_iter} charges one
    [probe] for the call plus one [tuple] per emitted row (the honest
    delay charge — exactly what decoding a cached answer of the same
    cardinality costs).  {!probe_iter}/{!probe_mem}/{!semijoin}/{!join}
    mirror {!Stt_relation.Index} charge-for-charge (one probe per
    probed key; output materialization is charged by the consumer's
    [Relation.add]), so swapping a flat index for a d-representation
    never changes an answer's op count. *)

open Stt_relation

type t

val of_relation : ?prefix:Schema.var list -> Relation.t -> t
(** Factorize a relation.  [prefix] (default [[]]) lists variables that
    must form the leading levels of the variable order, in the given
    order — probing ({!probe_iter}, {!semijoin}, {!join}) keys on
    exactly these.  The remaining variables are ordered by ascending
    distinct-value count (ties by variable id), a deterministic
    heuristic that puts slowly-varying columns near the root where
    sharing pays most.  Charges one [scan] per input row.  Raises
    [Invalid_argument] if [prefix] contains duplicates or variables
    outside the schema. *)

val schema : t -> Schema.t
(** The full schema, in DAG level order: [prefix] first. *)

val key_vars : t -> Schema.var list
(** The probe key — the [prefix] given to {!of_relation}. *)

val rows : t -> int
(** Logical cardinality of the represented relation. *)

val size : t -> int
(** Stored singletons in the DAG: Σ over distinct nodes of their run
    length.  The space this structure is accounted at. *)

val node_count : t -> int
(** Distinct DAG nodes (including the shared terminal), for
    diagnostics. *)

val enum_iter : t -> (Tuple.t -> unit) -> unit
(** Enumerate every tuple in ascending level-order.  The callback
    receives a {e scratch} buffer reused between calls (copy it to keep
    it), like [Index.probe_iter]'s flat rows.  Charges one probe plus
    one tuple per row. *)

val probe_iter : t -> Tuple.t -> (Tuple.t -> unit) -> unit
(** [probe_iter t key f] enumerates the tuples whose prefix equals
    [key] (arity = [List.length (key_vars t)]), full tuples in the
    scratch-buffer convention of {!enum_iter}.  Charges one probe for
    the descent, nothing per row — the consumer charges what it
    materializes, exactly like [Index.probe_iter]. *)

val probe_mem : t -> Tuple.t -> bool
(** Does any tuple carry this prefix?  One probe; O(prefix) time. *)

val semijoin : Relation.t -> t -> Relation.t
(** [semijoin rel t] keeps the rows of [rel] whose projection onto
    [key_vars t] appears in [t] — charge-identical to
    [Index.semijoin]. *)

val join : Relation.t -> t -> Relation.t
(** [join rel t] extends each row of [rel] with the suffix values under
    its key, output schema [rel ∪ schema t] — charge-identical to
    [Index.join].  Every variable of [key_vars t] must be in [rel]'s
    schema. *)

val to_relation : t -> Relation.t
(** Materialize the represented relation (schema in level order).
    Cost-free: a validation/export convenience, not an online path. *)

(** {1 Wire codec}

    A versioned binary layout for snapshot sections and cache values.
    Nodes are written children-first, so decoding validates each child
    reference against already-decoded ids; the decoder re-derives
    [rows] and [size] from the DAG and rejects any mismatch, so a
    decoded value that loads at all is structurally sound. *)

val write : Stt_store.Codec.encoder -> t -> unit
val read : Stt_store.Codec.decoder -> t
(** Raises [Stt_store.Codec.Corrupt] on any structural violation. *)

val encode : t -> string
(** [write] into a fresh buffer. *)

val decode : string -> t
(** [read] a full string; raises [Stt_store.Codec.Corrupt] on trailing
    bytes. *)
