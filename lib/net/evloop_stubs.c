/* Edge-triggered epoll bindings for Stt_net.Evloop.

   The OCaml Unix library's select(2) wrapper rebuilds three fd lists
   and rescans the whole watched set on every wakeup — O(n) per event
   and capped at FD_SETSIZE (~1024 fds).  These stubs expose just enough
   of epoll(7) for the server's IO loop: create, ctl, and a wait that
   fills two preallocated OCaml arrays (fds and readiness bits) so the
   steady-state loop allocates nothing.

   Errors come back as negative errno values rather than exceptions:
   the OCaml layer decides which failures are fatal (ADD on a fresh fd)
   and which are routine (DEL racing a close).

   Everything is gated on __linux__; elsewhere the stubs compile to an
   "unavailable" backend and Evloop falls back to select. */

#define CAML_NAME_SPACE
#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <time.h>

/* Monotonic nanoseconds (Stt_net.Mono) — protocol v5 Health carries the
   serving process's uptime so a router can detect restarted shards.
   CLOCK_MONOTONIC never goes backwards across NTP steps, unlike
   Unix.gettimeofday.  Fits an OCaml int for ~146 years of uptime. */
CAMLprim value stt_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}

#ifdef __linux__

#include <errno.h>
#include <string.h>
#include <unistd.h>
#include <sys/epoll.h>

CAMLprim value stt_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value stt_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_long(fd >= 0 ? fd : -errno);
}

CAMLprim value stt_epoll_close(value vep)
{
  close(Int_val(vep));
  return Val_unit;
}

/* interest bits shared with the OCaml layer: 1 = IN, 2 = OUT, 4 = ET */
static uint32_t events_of_bits(long bits)
{
  uint32_t ev = 0;
  if (bits & 1) ev |= EPOLLIN;
  if (bits & 2) ev |= EPOLLOUT;
  if (bits & 4) ev |= EPOLLET;
  return ev;
}

/* op: 0 = ADD, 1 = MOD, 2 = DEL */
CAMLprim value stt_epoll_ctl(value vep, value vop, value vfd, value vbits)
{
  struct epoll_event ev;
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  long op = Long_val(vop);
  int r;
  if (op < 0 || op > 2) return Val_long(-EINVAL);
  memset(&ev, 0, sizeof ev);
  ev.events = events_of_bits(Long_val(vbits));
  ev.data.fd = Int_val(vfd);
  r = epoll_ctl(Int_val(vep), ops[op], Int_val(vfd), &ev);
  return Val_long(r == 0 ? 0 : -errno);
}

#define STT_MAX_EVENTS 1024

/* Fills vfds.(i) with the i-th ready fd and vbits.(i) with its
   readiness (1 = readable, 2 = writable; error/hangup surfaces as both,
   so the read path observes the EOF).  Returns the event count, 0 on
   timeout or EINTR, or a negative errno.  The runtime lock is released
   around the blocking wait; the arrays are only touched after it is
   reacquired (both hold immediates, so plain Field stores are safe). */
CAMLprim value stt_epoll_wait(value vep, value vtimeout, value vfds,
                              value vbits)
{
  CAMLparam4(vep, vtimeout, vfds, vbits);
  struct epoll_event evs[STT_MAX_EVENTS];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout);
  long cap = (long)Wosize_val(vfds);
  int max, n, err, i;
  if ((long)Wosize_val(vbits) < cap) cap = (long)Wosize_val(vbits);
  max = cap < STT_MAX_EVENTS ? (int)cap : STT_MAX_EVENTS;
  if (max <= 0) CAMLreturn(Val_long(-EINVAL));
  caml_release_runtime_system();
  n = epoll_wait(ep, evs, max, timeout);
  err = errno;
  caml_acquire_runtime_system();
  if (n < 0) CAMLreturn(Val_long(err == EINTR ? 0 : -err));
  for (i = 0; i < n; i++) {
    long bits = 0;
    uint32_t e = evs[i].events;
    if (e & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) bits |= 1;
    if (e & (EPOLLOUT | EPOLLERR | EPOLLHUP)) bits |= 2;
    Field(vfds, i) = Val_long(evs[i].data.fd);
    Field(vbits, i) = Val_long(bits);
  }
  CAMLreturn(Val_long(n));
}

#else /* !__linux__ */

#include <errno.h>

CAMLprim value stt_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value stt_epoll_create(value unit)
{
  (void)unit;
  return Val_long(-ENOSYS);
}

CAMLprim value stt_epoll_close(value vep)
{
  (void)vep;
  return Val_unit;
}

CAMLprim value stt_epoll_ctl(value vep, value vop, value vfd, value vbits)
{
  (void)vep; (void)vop; (void)vfd; (void)vbits;
  return Val_long(-ENOSYS);
}

CAMLprim value stt_epoll_wait(value vep, value vtimeout, value vfds,
                              value vbits)
{
  (void)vep; (void)vtimeout; (void)vfds; (void)vbits;
  return Val_long(-ENOSYS);
}

#endif /* __linux__ */
