(** Closed-loop multi-connection load generator for {!Server}.

    A fixed pool of {e driver} domains multiplexes the connections
    (OCaml 5 caps live domains at a few dozen — one domain per
    connection cannot reach the server's connection limits).  Each
    driver opens its slice of TCP connections, then runs them in
    lockstep rounds: send a batch of Zipf-distributed access tuples on
    every idle connection, then collect one reply per in-flight
    connection.  Every connection stays closed-loop (one outstanding
    frame), so server-side concurrency equals [connections] regardless
    of [drivers].  Every round trip's latency is
    {!Obs.observe}d into the [net.rtt_us] histogram of the connection's
    context; the contexts are adopted in connection order into the
    {e caller's} current context, and the report's p50/p95/p99 are read
    back with {!Obs.percentile} — the summary numbers and the caller's
    trace JSON can never disagree.

    Accounting is per access tuple: [sent] splits exactly into
    [answered + rejected_overload + rejected_deadline + errors + lost],
    and any reply that does not match the one outstanding request id is
    counted in [duplicated].  A clean run has [lost = duplicated =
    mismatched = errors = 0]. *)

type config = {
  host : string;
  port : int;
  connections : int;  (** client connections = load-generating domains *)
  requests : int;  (** total access tuples across all connections *)
  batch : int;  (** tuples per request frame *)
  arity : int;  (** access tuple arity *)
  values : int;  (** Zipf domain size (values are drawn from [0, values)) *)
  skew : float;  (** Zipf exponent *)
  seed : int;
  deadline_ms : int;  (** per-request serving budget; [0] = none *)
  drivers : int;
      (** load-generating domains; clamped to [connections].  Keep well
          under OCaml's domain cap (~120 spare) — 4–16 drivers saturate
          a loopback server at hundreds of connections. *)
  active : int;
      (** connections that actually drive requests; [0] means all.  The
          remaining [connections - active] complete the hello and then
          sit parked for the whole run — still established, still
          registered with the server's readiness backend.  This models
          the idle-keepalive fleet a real server carries, the regime
          where select's per-wakeup O(watched) scan dominates and
          edge-triggered epoll pulls away. *)
}

type report = {
  sent : int;
  answered : int;
  rows : int;  (** total answer rows across all answered tuples *)
  rejected_overload : int;
  rejected_deadline : int;
  lost : int;  (** sent but never answered or rejected *)
  duplicated : int;  (** replies whose id matches no outstanding request *)
  mismatched : int;  (** answered tuples whose rows differ from [verify] *)
  errors : int;  (** tuples burned by transport errors *)
  elapsed_s : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput : float;  (** answered tuples per second *)
}

val run :
  ?verify:(arity:int -> int array list -> int array list list) ->
  config ->
  (report, string) result
(** Drive the full workload and aggregate.  [verify], given each batch,
    returns the expected sorted answer rows per tuple (e.g. from a local
    [Engine.answer_batch] over the same data); answered tuples are
    compared against it.  Returns [Error] only for unusable configs or
    when {e no} connection could connect; per-connection failures after
    that surface in the counters.  Temporarily enables {!Obs}. *)
