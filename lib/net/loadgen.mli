(** Closed-loop multi-connection load generator for {!Server}.

    One domain per connection; each domain opens its own TCP connection,
    then repeatedly sends a batch of Zipf-distributed access tuples and
    waits for the reply before sending the next (closed loop, one
    outstanding frame per connection).  Every round trip's latency is
    {!Obs.observe}d into the [net.rtt_us] histogram of the connection's
    context; the contexts are adopted in connection order into the
    {e caller's} current context, and the report's p50/p95/p99 are read
    back with {!Obs.percentile} — the summary numbers and the caller's
    trace JSON can never disagree.

    Accounting is per access tuple: [sent] splits exactly into
    [answered + rejected_overload + rejected_deadline + errors + lost],
    and any reply that does not match the one outstanding request id is
    counted in [duplicated].  A clean run has [lost = duplicated =
    mismatched = errors = 0]. *)

type config = {
  host : string;
  port : int;
  connections : int;  (** client connections = load-generating domains *)
  requests : int;  (** total access tuples across all connections *)
  batch : int;  (** tuples per request frame *)
  arity : int;  (** access tuple arity *)
  values : int;  (** Zipf domain size (values are drawn from [0, values)) *)
  skew : float;  (** Zipf exponent *)
  seed : int;
  deadline_ms : int;  (** per-request serving budget; [0] = none *)
}

type report = {
  sent : int;
  answered : int;
  rows : int;  (** total answer rows across all answered tuples *)
  rejected_overload : int;
  rejected_deadline : int;
  lost : int;  (** sent but never answered or rejected *)
  duplicated : int;  (** replies whose id matches no outstanding request *)
  mismatched : int;  (** answered tuples whose rows differ from [verify] *)
  errors : int;  (** tuples burned by transport errors *)
  elapsed_s : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput : float;  (** answered tuples per second *)
}

val run :
  ?verify:(arity:int -> int array list -> int array list list) ->
  config ->
  (report, string) result
(** Drive the full workload and aggregate.  [verify], given each batch,
    returns the expected sorted answer rows per tuple (e.g. from a local
    [Engine.answer_batch] over the same data); answered tuples are
    compared against it.  Returns [Error] only for unusable configs or
    when {e no} connection could connect; per-connection failures after
    that surface in the counters.  Temporarily enables {!Obs}. *)
