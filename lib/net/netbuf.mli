(** Growable byte buffers with exposed backing bytes, the substrate of
    the zero-copy frame path.

    [Buffer.t] cannot hand out its backing array, so encoding a frame
    through it costs a contents copy plus the sealing and
    length-prefixing concatenations.  A [Netbuf.t] is the same growable
    sink, but the complete wire image (length prefix + body + CRC) is
    built in place and written to the socket straight out of
    {!data} — a worker with a reusable scratch [Netbuf] allocates
    nothing per response in steady state.

    The write primitives produce byte-identical layouts to their
    {!Stt_store.Codec} counterparts ([add_uint] = LEB128, [add_int] =
    zigzag, [add_rows] = column-major deltas), checked by round-trip
    tests against the Codec decoders. *)

type t

val create : int -> t
(** A fresh buffer with at least the given capacity. *)

val length : t -> int
val clear : t -> unit

val data : t -> Bytes.t
(** The backing bytes; valid in [[0, length)].  Invalidated by any
    subsequent [add_*] (the buffer may grow and reallocate). *)

val contents : t -> string
(** Copy out [[0, length)] — test/debug convenience, not the hot path. *)

(** {1 Codec-compatible writers} *)

val add_u8 : t -> int -> unit
val add_u32 : t -> int -> unit
val set_u32 : t -> pos:int -> int -> unit
(** Patch a u32 written earlier — the frame length prefix is reserved
    before the body is encoded and patched afterwards. *)

val add_uint : t -> int -> unit
val add_int : t -> int -> unit
val add_bool : t -> bool -> unit
val add_string : t -> string -> unit
val add_list : t -> ('a -> unit) -> 'a list -> unit
val add_rows : t -> arity:int -> int array list -> unit

val crc32 : t -> pos:int -> len:int -> int
(** CRC-32 of the byte range, without copying it out. *)

(** {1 Resumable nonblocking writes} *)

type flush =
  | Flushed  (** everything is on the wire *)
  | Again  (** the socket buffer filled; bytes remain queued *)
  | Gone  (** the peer is unreachable; drop the connection *)

val consume_front : t -> int -> unit
(** Drop the first [n] bytes (they reached the wire), compacting the
    rest to the front. *)

val append : t -> Bytes.t -> pos:int -> len:int -> unit
(** Queue a byte range at the end (copies — the source is a reused
    scratch buffer). *)

val flush : Unix.file_descr -> t -> flush
(** Write as much queued data as the nonblocking socket accepts. *)

val write_or_stash :
  Unix.file_descr -> pending:t -> Bytes.t -> pos:int -> len:int -> flush
(** Write the range directly when nothing is queued on [pending]
    (common case: zero copies); stash whatever does not fit — or the
    whole range, if [pending] is non-empty, preserving response
    order — for the IO loop to {!flush} when the socket drains. *)

(** {1 Buffer pool} *)

module Pool : sig
  type buf = t
  type t

  val create : ?max_free:int -> capacity:int -> unit -> t
  (** A thread-safe free list of buffers of the given initial
      [capacity]; at most [max_free] (default 64) are retained. *)

  val acquire : t -> buf
  val release : t -> buf -> unit

  val stats : t -> int * int
  (** [(hits, misses)] — acquisitions served from the free list vs
      fresh allocations. *)
end
