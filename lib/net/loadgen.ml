module Obs = Stt_obs.Obs
module Scenario = Stt_workload.Scenario

type config = {
  host : string;
  port : int;
  connections : int;
  requests : int;
  batch : int;
  arity : int;
  values : int;
  skew : float;
  seed : int;
  deadline_ms : int;
  drivers : int;
  active : int;
}

type report = {
  sent : int;
  answered : int;
  rows : int;
  rejected_overload : int;
  rejected_deadline : int;
  lost : int;
  duplicated : int;
  mismatched : int;
  errors : int;
  elapsed_s : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput : float;
}

(* per-connection tallies, merged in connection order at the end *)
type tally = {
  mutable t_sent : int;
  mutable t_answered : int;
  mutable t_rows : int;
  mutable t_overload : int;
  mutable t_deadline : int;
  mutable t_lost : int;
  mutable t_dup : int;
  mutable t_mismatched : int;
  mutable t_errors : int;
  mutable t_connected : bool;
}

let new_tally () =
  { t_sent = 0; t_answered = 0; t_rows = 0; t_overload = 0; t_deadline = 0;
    t_lost = 0; t_dup = 0; t_mismatched = 0; t_errors = 0; t_connected = false }

let rec chunks k = function
  | [] -> []
  | l ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (n - 1) (x :: acc) rest
      in
      let c, rest = take k [] l in
      c :: chunks k rest

let check_answers tally ?verify ~batch answers =
  let n_batch = List.length batch and n_ans = List.length answers in
  tally.t_answered <- tally.t_answered + Stdlib.min n_batch n_ans;
  (* a short reply loses the tail of the batch; a long one duplicated *)
  if n_ans < n_batch then tally.t_lost <- tally.t_lost + (n_batch - n_ans);
  if n_ans > n_batch then tally.t_dup <- tally.t_dup + (n_ans - n_batch);
  List.iter
    (fun (a : Frame.answer) -> tally.t_rows <- tally.t_rows + List.length a.rows)
    answers;
  match verify with
  | None -> ()
  | Some f ->
      let expected = f ~arity:(match batch with
        | t :: _ -> Array.length t
        | [] -> 0) batch
      in
      List.iteri
        (fun i (a : Frame.answer) ->
          match List.nth_opt expected i with
          | Some rows when List.equal (fun x y -> Stt_relation.Tuple.compare x y = 0) a.rows rows -> ()
          | _ -> tally.t_mismatched <- tally.t_mismatched + 1)
        answers

(* One driver domain multiplexes many connections.  OCaml 5 caps live
   domains at a few dozen, so a domain per connection tops out long
   before the server does; a driver keeps each of its connections
   closed-loop (one outstanding frame) but runs them in lockstep
   rounds — send on every idle connection, then collect one reply per
   in-flight connection.  The server interleaves the work across its
   own domains, so concurrency is [connections], not [drivers]. *)
type conn_state = {
  cs_index : int;
  cs_requests : int;
  cs_tally : tally;
  mutable cs_client : Client.t option;
  mutable cs_batches : int array list list;
  mutable cs_seq : int;
  mutable cs_inflight : (int * int array list * float) option;
}

let drive_slice ?verify cfg states =
  List.iter
    (fun cs ->
      match Client.connect ~host:cfg.host ~port:cfg.port () with
      | Error _ -> ()
      | Ok c ->
          cs.cs_tally.t_connected <- true;
          cs.cs_client <- Some c;
          cs.cs_batches <-
            chunks cfg.batch
              (Scenario.zipf_requests
                 ~seed:(cfg.seed + (7919 * (cs.cs_index + 1)))
                 ~n:cfg.values ~requests:cs.cs_requests ~skew:cfg.skew
                 ~arity:cfg.arity))
    states;
  let deadline_us = cfg.deadline_ms * 1000 in
  let abandon cs =
    (match cs.cs_client with Some c -> Client.close c | None -> ());
    cs.cs_client <- None;
    cs.cs_inflight <- None;
    cs.cs_batches <- []
  in
  let live cs =
    cs.cs_client <> None
    && (cs.cs_batches <> [] || cs.cs_inflight <> None)
  in
  while List.exists live states do
    (* send phase: one frame per idle connection *)
    List.iter
      (fun cs ->
        match (cs.cs_client, cs.cs_inflight, cs.cs_batches) with
        | Some c, None, batch :: rest ->
            cs.cs_batches <- rest;
            let id = (cs.cs_index * 1_000_000) + cs.cs_seq in
            cs.cs_seq <- cs.cs_seq + 1;
            let n = List.length batch in
            let req =
              Frame.Answer { id; deadline_us; arity = cfg.arity;
                             tuples = batch }
            in
            let t0 = Unix.gettimeofday () in
            (match Client.send c req with
            | Ok () ->
                cs.cs_tally.t_sent <- cs.cs_tally.t_sent + n;
                cs.cs_inflight <- Some (id, batch, t0)
            | Error _ ->
                (* the frame may or may not have left; either way these
                   tuples got no answer *)
                cs.cs_tally.t_sent <- cs.cs_tally.t_sent + n;
                cs.cs_tally.t_errors <- cs.cs_tally.t_errors + n;
                abandon cs)
        | _ -> ())
      states;
    (* recv phase: collect one reply per in-flight connection *)
    List.iter
      (fun cs ->
        match (cs.cs_client, cs.cs_inflight) with
        | Some c, Some (id, batch, t0) -> (
            cs.cs_inflight <- None;
            let n = List.length batch in
            let tally = cs.cs_tally in
            match Client.recv c with
            | Error _ ->
                tally.t_errors <- tally.t_errors + n;
                abandon cs
            | Ok resp -> (
                Obs.observe "net.rtt_us"
                  ((Unix.gettimeofday () -. t0) *. 1e6);
                match resp with
                | Frame.Answers { id = rid; answers } when rid = id ->
                    check_answers tally ?verify ~batch answers
                | Frame.Rejected { id = rid; reject } when rid = id -> (
                    match reject with
                    | Frame.Overloaded ->
                        tally.t_overload <- tally.t_overload + n
                    | Frame.Deadline_exceeded ->
                        tally.t_deadline <- tally.t_deadline + n
                    | Frame.Bad_request _ ->
                        tally.t_errors <- tally.t_errors + n)
                | _ ->
                    (* a reply for a request we are not waiting on *)
                    tally.t_dup <- tally.t_dup + 1;
                    tally.t_lost <- tally.t_lost + n))
        | _ -> ())
      states
  done;
  List.iter abandon states

let run ?verify cfg =
  if cfg.connections < 1 then Error "connections must be >= 1"
  else if cfg.requests < 1 then Error "requests must be >= 1"
  else if cfg.batch < 1 then Error "batch must be >= 1"
  else if cfg.drivers < 1 then Error "drivers must be >= 1"
  else if cfg.active < 0 || cfg.active > cfg.connections then
    Error "active must be in [0, connections]"
  else begin
    let was_enabled = Obs.enabled () in
    Obs.set_enabled true;
    Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
    (* requests go to the first [driven] connections; the rest connect,
       say hello, and park idle until the run ends *)
    let driven = if cfg.active = 0 then cfg.connections else cfg.active in
    (* every driver slice must hold at least one driven connection, or
       its parked connections would close as soon as the slice starts *)
    let drivers = Stdlib.min cfg.drivers driven in
    let per_conn =
      let base = cfg.requests / driven
      and extra = cfg.requests mod driven in
      List.init cfg.connections (fun i ->
          if i >= driven then 0 else base + if i < extra then 1 else 0)
    in
    let states =
      List.mapi
        (fun i n ->
          {
            cs_index = i;
            cs_requests = n;
            cs_tally = new_tally ();
            cs_client = None;
            cs_batches = [];
            cs_seq = 0;
            cs_inflight = None;
          })
        per_conn
    in
    (* round-robin over drivers so the +1-request connections spread out *)
    let slices =
      List.init drivers (fun d ->
          List.filter (fun cs -> cs.cs_index mod drivers = d) states)
    in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.map
        (fun slice ->
          let ctx = Obs.create_context () in
          let d =
            Domain.spawn (fun () ->
                Obs.with_context ctx (fun () ->
                    drive_slice ?verify cfg slice))
          in
          (d, ctx))
        slices
    in
    List.iter (fun (d, _) -> Domain.join d) domains;
    let elapsed_s = Unix.gettimeofday () -. t0 in
    let tallies = List.map (fun cs -> cs.cs_tally) states in
    if not (List.exists (fun t -> t.t_connected) tallies) then
      Error
        (Printf.sprintf "no connection could reach %s:%d" cfg.host cfg.port)
    else begin
      (* merge the per-driver traces into the caller's context, in
         driver order: the report's percentiles and the caller's
         [Obs.trace] read the same merged histogram *)
      List.iter (fun (_, ctx) -> Obs.adopt ctx) domains;
      let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
      let answered = sum (fun t -> t.t_answered) in
      Ok
        {
          sent = sum (fun t -> t.t_sent);
          answered;
          rows = sum (fun t -> t.t_rows);
          rejected_overload = sum (fun t -> t.t_overload);
          rejected_deadline = sum (fun t -> t.t_deadline);
          lost = sum (fun t -> t.t_lost);
          duplicated = sum (fun t -> t.t_dup);
          mismatched = sum (fun t -> t.t_mismatched);
          errors = sum (fun t -> t.t_errors);
          elapsed_s;
          p50_us = Obs.percentile "net.rtt_us" 0.50;
          p95_us = Obs.percentile "net.rtt_us" 0.95;
          p99_us = Obs.percentile "net.rtt_us" 0.99;
          throughput =
            (if elapsed_s > 0.0 then float_of_int answered /. elapsed_s
             else 0.0);
        }
    end
  end
