module Obs = Stt_obs.Obs
module Scenario = Stt_workload.Scenario

type config = {
  host : string;
  port : int;
  connections : int;
  requests : int;
  batch : int;
  arity : int;
  values : int;
  skew : float;
  seed : int;
  deadline_ms : int;
}

type report = {
  sent : int;
  answered : int;
  rows : int;
  rejected_overload : int;
  rejected_deadline : int;
  lost : int;
  duplicated : int;
  mismatched : int;
  errors : int;
  elapsed_s : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  throughput : float;
}

(* per-connection tallies, merged in connection order at the end *)
type tally = {
  mutable t_sent : int;
  mutable t_answered : int;
  mutable t_rows : int;
  mutable t_overload : int;
  mutable t_deadline : int;
  mutable t_lost : int;
  mutable t_dup : int;
  mutable t_mismatched : int;
  mutable t_errors : int;
  mutable t_connected : bool;
}

let new_tally () =
  { t_sent = 0; t_answered = 0; t_rows = 0; t_overload = 0; t_deadline = 0;
    t_lost = 0; t_dup = 0; t_mismatched = 0; t_errors = 0; t_connected = false }

let rec chunks k = function
  | [] -> []
  | l ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (n - 1) (x :: acc) rest
      in
      let c, rest = take k [] l in
      c :: chunks k rest

let check_answers tally ?verify ~batch answers =
  let n_batch = List.length batch and n_ans = List.length answers in
  tally.t_answered <- tally.t_answered + Stdlib.min n_batch n_ans;
  (* a short reply loses the tail of the batch; a long one duplicated *)
  if n_ans < n_batch then tally.t_lost <- tally.t_lost + (n_batch - n_ans);
  if n_ans > n_batch then tally.t_dup <- tally.t_dup + (n_ans - n_batch);
  List.iter
    (fun (a : Frame.answer) -> tally.t_rows <- tally.t_rows + List.length a.rows)
    answers;
  match verify with
  | None -> ()
  | Some f ->
      let expected = f ~arity:(match batch with
        | t :: _ -> Array.length t
        | [] -> 0) batch
      in
      List.iteri
        (fun i (a : Frame.answer) ->
          match List.nth_opt expected i with
          | Some rows when List.equal (fun x y -> Stt_relation.Tuple.compare x y = 0) a.rows rows -> ()
          | _ -> tally.t_mismatched <- tally.t_mismatched + 1)
        answers

let drive_connection ?verify cfg index n_requests tally =
  match Client.connect ~host:cfg.host ~port:cfg.port () with
  | Error _ -> ()
  | Ok client ->
      tally.t_connected <- true;
      let tuples =
        Scenario.zipf_requests
          ~seed:(cfg.seed + (7919 * (index + 1)))
          ~n:cfg.values ~requests:n_requests ~skew:cfg.skew ~arity:cfg.arity
      in
      let batches = chunks cfg.batch tuples in
      let deadline_us = cfg.deadline_ms * 1000 in
      let seq = ref 0 in
      (try
         List.iter
           (fun batch ->
             let id = (index * 1_000_000) + !seq in
             incr seq;
             let n = List.length batch in
             let req =
               Frame.Answer { id; deadline_us; arity = cfg.arity;
                              tuples = batch }
             in
             let t0 = Unix.gettimeofday () in
             match Client.rpc client req with
             | Error _ ->
                 (* the frame may or may not have left; either way these
                    tuples got no answer *)
                 tally.t_sent <- tally.t_sent + n;
                 tally.t_errors <- tally.t_errors + n;
                 raise Stdlib.Exit
             | Ok resp -> (
                 tally.t_sent <- tally.t_sent + n;
                 Obs.observe "net.rtt_us"
                   ((Unix.gettimeofday () -. t0) *. 1e6);
                 match resp with
                 | Frame.Answers { id = rid; answers } when rid = id ->
                     check_answers tally ?verify ~batch answers
                 | Frame.Rejected { id = rid; reject } when rid = id -> (
                     match reject with
                     | Frame.Overloaded ->
                         tally.t_overload <- tally.t_overload + n
                     | Frame.Deadline_exceeded ->
                         tally.t_deadline <- tally.t_deadline + n
                     | Frame.Bad_request _ ->
                         tally.t_errors <- tally.t_errors + n)
                 | _ ->
                     (* a reply for a request we are not waiting on *)
                     tally.t_dup <- tally.t_dup + 1;
                     tally.t_lost <- tally.t_lost + n))
           batches
       with Stdlib.Exit -> ());
      Client.close client

let run ?verify cfg =
  if cfg.connections < 1 then Error "connections must be >= 1"
  else if cfg.requests < 1 then Error "requests must be >= 1"
  else if cfg.batch < 1 then Error "batch must be >= 1"
  else begin
    let was_enabled = Obs.enabled () in
    Obs.set_enabled true;
    Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
    let per_conn =
      let base = cfg.requests / cfg.connections
      and extra = cfg.requests mod cfg.connections in
      List.init cfg.connections (fun i -> base + if i < extra then 1 else 0)
    in
    let tallies = List.map (fun _ -> new_tally ()) per_conn in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.mapi
        (fun i (n, tally) ->
          let ctx = Obs.create_context () in
          let d =
            Domain.spawn (fun () ->
                Obs.with_context ctx (fun () ->
                    drive_connection ?verify cfg i n tally))
          in
          (d, ctx))
        (List.combine per_conn tallies)
    in
    List.iter (fun (d, _) -> Domain.join d) domains;
    let elapsed_s = Unix.gettimeofday () -. t0 in
    if not (List.exists (fun t -> t.t_connected) tallies) then
      Error
        (Printf.sprintf "no connection could reach %s:%d" cfg.host cfg.port)
    else begin
      (* merge the per-connection traces into the caller's context, in
         connection order: the report's percentiles and the caller's
         [Obs.trace] read the same merged histogram *)
      List.iter (fun (_, ctx) -> Obs.adopt ctx) domains;
      let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
      let answered = sum (fun t -> t.t_answered) in
      Ok
        {
          sent = sum (fun t -> t.t_sent);
          answered;
          rows = sum (fun t -> t.t_rows);
          rejected_overload = sum (fun t -> t.t_overload);
          rejected_deadline = sum (fun t -> t.t_deadline);
          lost = sum (fun t -> t.t_lost);
          duplicated = sum (fun t -> t.t_dup);
          mismatched = sum (fun t -> t.t_mismatched);
          errors = sum (fun t -> t.t_errors);
          elapsed_s;
          p50_us = Obs.percentile "net.rtt_us" 0.50;
          p95_us = Obs.percentile "net.rtt_us" 0.95;
          p99_us = Obs.percentile "net.rtt_us" 0.99;
          throughput =
            (if elapsed_s > 0.0 then float_of_int answered /. elapsed_s
             else 0.0);
        }
    end
  end
