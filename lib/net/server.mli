(** Concurrent TCP server for online CQAP answering.

    Threading model: one IO domain runs a readiness loop over
    {!Evloop} — edge-triggered epoll where available, select otherwise —
    that accepts connections, buffers bytes and cuts them into frames
    (decoded in place, no per-frame copy); decoded [Answer] requests go
    into a {b bounded} job queue drained by a fixed pool of worker
    domains, each answering through the shared handler (the engine's
    online path only touches per-call state, so a single built index
    serves all workers without locks).  [Stats] and [Health] frames are
    answered inline by the IO domain.

    Byte path: sockets are nonblocking end to end.  Each domain encodes
    responses into its own reusable scratch buffer and writes the socket
    straight from it; bytes a full socket refuses are stashed on the
    connection's pending buffer and flushed by the IO domain when the
    socket drains (write interest is granted and dropped per
    connection), so a slow reader costs memory, never a stalled worker.
    Per-connection read and pending buffers are pooled across
    connection churn.

    Updates (protocol v3): decoded [Update] frames travel through the
    same bounded queue as answers, but run under the {e write} side of a
    writer-priority reader/writer lock while answer jobs hold the read
    side — a delta batch is applied atomically between answer jobs, and
    a steady stream of answers cannot starve a waiting update.  Servers
    started without an [update_handler] reject updates as
    [Bad_request].

    Backpressure: when the job queue is full the request is {e shed}
    with an explicit [Overloaded] rejection instead of queueing
    unboundedly.  Deadlines: a request's [deadline_us] budget starts at
    receipt and is checked both before the handler runs and after it
    returns — either check failing yields [Deadline_exceeded].

    Shutdown: {!stop} stops accepting and reading, lets the workers
    drain every already-queued job (each gets its reply), then {!wait}
    joins all domains and closes the sockets.  Per-request observability
    (spans, op counts, service-time histogram) accumulates in a
    server-owned {!Obs.context}, served over the wire via [Stats]. *)

open Stt_relation

type handler = arity:int -> int array list -> (int array list * int * Cost.snapshot) list
(** [handler ~arity tuples] answers a batch of access tuples, returning
    — in input order — each tuple's sorted answer rows, their arity and
    the per-request op counts.  Raising [Failure msg] rejects the batch
    as [Bad_request msg].  Must be safe to call concurrently from
    multiple domains. *)

val engine_handler : Stt_core.Engine.t -> handler
(** Answer through [Engine.answer_batch]; rejects batches whose arity
    differs from the engine's access schema.  If the engine has an
    answer cache attached it is shared by all worker domains — the
    cache is striped and lock-protected, the rest of the online path
    touches only per-call state. *)

val engine_cache_info : Stt_core.Engine.t -> unit -> Frame.cache_health
(** Live cache occupancy and hit counts of the engine's attached cache
    ({!Frame.no_cache} when none), for {!start}'s [cache_info]. *)

type update_handler =
  Frame.update list -> (int * int * Cost.snapshot, string) result
(** [update_handler deltas] applies a batch of base-tuple deltas and
    returns [Ok (epoch, applied, cost)] — the post-batch delta epoch,
    the count of effective (non-redundant) deltas, and the maintenance
    op count — or [Error msg] to reject the batch as [Bad_request].
    Runs under the exclusive side of the server's reader/writer lock,
    so it never overlaps an answer job. *)

val engine_update_handler : Stt_core.Engine.t -> update_handler
(** Apply through [Engine.apply_deltas]; engine rejections
    ([Failure]) map to [Error]. *)

type agg_handler = kind:int -> arity:int -> int array list -> int * Cost.snapshot
(** [agg_handler ~kind ~arity tuples] folds {e one} multi-tuple access
    request to its scalar aggregate under the wire kind tag
    ([Stt_semiring.Semiring.to_tag]).  Raising [Failure msg] rejects the
    request as [Bad_request msg].  Runs under the read side of the
    server's lock, concurrently with answer jobs. *)

val engine_agg_handler : Stt_core.Engine.t -> agg_handler
(** Answer through [Engine.answer_agg]; rejects unknown kind tags, arity
    mismatches, and engines without aggregate state ([Failure] from the
    engine maps to [Bad_request]). *)

type stats = {
  connections : int;  (** accepted over the server's lifetime *)
  received : int;  (** [Answer] + [Update] requests received *)
  answered : int;
  updated : int;  (** [Update] batches applied successfully *)
  rejected_overload : int;
  rejected_deadline : int;
  bad_requests : int;  (** malformed frames + handler rejections *)
}

type t

val start :
  ?host:string ->
  port:int ->
  workers:int ->
  queue_capacity:int ->
  ?space:int ->
  ?agg_space:(unit -> int) ->
  ?cache_info:(unit -> Frame.cache_health) ->
  ?update_handler:update_handler ->
  ?agg_handler:agg_handler ->
  ?io_backend:Evloop.backend ->
  handler ->
  t
(** Bind [host:port] (default host [127.0.0.1]; port [0] picks an
    ephemeral port, see {!port}), then spawn the IO domain and [workers]
    worker domains.  [space] is reported in [Health] replies;
    [agg_space] (default: constantly 0) is polled per [Health] request
    for the aggregate-table row count, same cheapness contract as
    [cache_info];
    [cache_info] (default: always {!Frame.no_cache}) is polled by the
    IO domain on each [Health] request, so it must be cheap and safe to
    call concurrently with the workers.  [update_handler] (default:
    none — updates rejected) applies delta batches under the write lock.
    [io_backend] picks the readiness backend explicitly (default
    {!Evloop.default_backend}); raises [Failure] when it is unavailable
    on this platform.  Raises [Invalid_argument] on non-positive
    [workers] or [queue_capacity]; [Unix.Unix_error] if the bind
    fails. *)

val port : t -> int
(** The actually bound port. *)

val io_backend : t -> string
(** Name of the readiness backend the IO loop runs on ([epoll] or
    [select]) — also reported in every [Health] reply. *)

val stop : t -> unit
(** Begin graceful drain: stop accepting and reading, finish every
    in-flight (already queued or running) request.  Idempotent and
    async-signal-safe enough for a [SIGTERM] handler. *)

val stopping : t -> bool
(** Whether {!stop} has been called — lets a main loop sleep until a
    signal handler triggers the drain, then {!wait}. *)

val wait : t -> stats
(** Block until the drain finishes, join every domain, close all
    sockets and return the totals.  Call once, after {!stop} (or from
    another domain while a signal handler calls {!stop}). *)

val stats : t -> stats
(** Current totals (readable while serving). *)

val trace_json : t -> string
(** The server's accumulated [Obs] trace document, serialized — the
    payload of a [Stats_reply]. *)
