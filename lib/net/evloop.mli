(** Pluggable IO readiness for the server's IO domain.

    The select(2) loop the server shipped with rebuilds its fd lists and
    rescans the whole watched set on every wakeup — O(n) work per event
    that burns the same core the workers need.  This module puts an
    edge-triggered epoll(7) backend (via C stubs, Linux only) and that
    select loop behind one interface, chosen at startup; the server
    drives both with the identical strategy of reading until [EAGAIN]
    and writing until [EAGAIN], which edge triggering requires and level
    triggering tolerates.

    A loop is {b single-owner}: only the IO domain may call {!add},
    {!set_write}, {!remove} or {!wait}.  Worker domains wanting write
    interest signal the IO domain (the server uses its wake pipe). *)

type backend = Epoll | Select

val available : backend -> bool
(** Whether the backend can run on this machine.  [Select] always can;
    [Epoll] only on Linux. *)

val default_backend : unit -> backend
(** [Epoll] when available, else [Select]; the [STT_EVLOOP] environment
    variable ([epoll] / [select]) overrides. *)

val backend_name : backend -> string
val backend_of_string : string -> backend option

type t

val create : ?backend:backend -> unit -> t
(** A fresh loop; [backend] defaults to {!default_backend}.  Raises
    [Failure] when the requested backend is unavailable. *)

val backend : t -> backend
val name : t -> string

val add : t -> Unix.file_descr -> unit
(** Watch the fd for readability (edge-triggered under epoll: the fd
    {b must} be nonblocking and drained to [EAGAIN] on each readable
    event).  Raises [Invalid_argument] if already watched. *)

val set_write : t -> Unix.file_descr -> bool -> unit
(** Add or drop write interest.  Idempotent; a no-op for fds not
    currently watched (a worker's request can race the close). *)

val remove : t -> Unix.file_descr -> unit
(** Stop watching; call before closing the fd.  A no-op when not
    watched. *)

val watched_count : t -> int

val wait :
  t ->
  timeout_ms:int ->
  (Unix.file_descr -> readable:bool -> writable:bool -> unit) ->
  int
(** Block for readiness ([timeout_ms < 0] waits forever) and invoke the
    callback once per ready fd.  Hangup/error readiness surfaces as
    [readable], so the read path observes the EOF.  Returns the number
    of events delivered — 0 on timeout or [EINTR].  Callbacks may
    {!remove} fds (including ones with undelivered events in the same
    batch: their callbacks are skipped). *)

val close : t -> unit
(** Release the backend's resources.  The loop must not be used after. *)
