(** Monotonic clock (CLOCK_MONOTONIC via a C stub).

    Protocol v5 [Health] replies carry the serving process's uptime in
    monotonic nanoseconds; a router detects a restarted shard by the
    uptime going backwards between polls.  Wall clocks cannot do this —
    they step under NTP. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed point (process-independent
    epoch, never goes backwards). *)
