(** Blocking client connection to a {!Server}.

    [connect] performs the hello exchange; afterwards {!rpc} (or
    {!send}/{!recv} for pipelining) moves whole frames.  One connection
    must not be shared between domains without external serialization —
    the load generator gives each connection its own domain. *)

type t

val connect : ?host:string -> port:int -> unit -> (t, Frame.error) result
(** TCP connect (default host [127.0.0.1], [TCP_NODELAY]), write our
    hello, read and validate the server's. *)

val send : t -> Frame.request -> (unit, Frame.error) result
val recv : t -> (Frame.response, Frame.error) result

val rpc : t -> Frame.request -> (Frame.response, Frame.error) result
(** [send] then [recv] — one closed-loop round trip. *)

val close : t -> unit
(** Idempotent. *)
