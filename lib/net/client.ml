type t = { fd : Unix.file_descr; mutable open_ : bool }

let ( let* ) r f = Result.bind r f

let connect ?(host = "127.0.0.1") ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | fd -> (
      match
        let* () = Frame.write_hello fd in
        Frame.read_hello fd
      with
      | Ok () -> Ok { fd; open_ = true }
      | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error e)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Frame.Io_error (Unix.error_message e))

let send t req =
  if not t.open_ then Error Frame.Closed
  else Frame.write_frame t.fd (Frame.encode_request req)

let recv t =
  if not t.open_ then Error Frame.Closed
  else
    let* blob = Frame.read_frame t.fd in
    Frame.decode_response blob

let rpc t req =
  let* () = send t req in
  recv t

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
