module Obs = Stt_obs.Obs
module Json = Stt_obs.Json

(* Role-agnostic serving core, extracted from the original Server so the
   sharded tier's router (Stt_shard.Router) and the replica role share
   one accept/IO-loop/drain implementation instead of two copies.

   The core owns everything about moving frames: the listening socket,
   the Evloop readiness loop on its IO domain, per-connection pooled
   read/pending-write buffers, the bounded job queue and worker-domain
   pool, worker->IO signalling (write interest, condemned connections),
   the wake pipe, graceful drain, and the protocol-level counters.  What
   it does NOT know is what a request *means*: every decoded request is
   handed to the role's [handle] callback (on the IO domain), which
   replies inline via [reply] or defers work to the pool via [enqueue].
   Role state — an engine and its RW lock, or a shard ring and upstream
   connections — lives in the closures the role passes in. *)

type stats = {
  connections : int;
  received : int;
  answered : int;
  updated : int;
  rejected_overload : int;
  rejected_deadline : int;
  bad_requests : int;
}

(* ------------------------------------------------------------------ *)
(* bounded job queue: non-blocking push (full -> shed), blocking pop    *)
(* ------------------------------------------------------------------ *)

module Bq = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    { q = Queue.create (); cap; m = Mutex.create (); c = Condition.create ();
      closed = false }

  let try_push t x =
    Mutex.protect t.m (fun () ->
        if t.closed || Queue.length t.q >= t.cap then false
        else begin
          Queue.push x t.q;
          Condition.signal t.c;
          true
        end)

  (* blocks until an element arrives; [None] once closed and drained *)
  let pop t =
    Mutex.protect t.m (fun () ->
        let rec go () =
          if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
          else if t.closed then None
          else begin
            Condition.wait t.c t.m;
            go ()
          end
        in
        go ())

  let depth t = Mutex.protect t.m (fun () -> Queue.length t.q)

  let close t =
    Mutex.protect t.m (fun () ->
        t.closed <- true;
        Condition.broadcast t.c)
end

(* ------------------------------------------------------------------ *)
(* per-connection read buffer (owned by the IO domain)                  *)
(* ------------------------------------------------------------------ *)

module Rbuf = struct
  type t = { mutable data : Bytes.t; mutable pos : int; mutable len : int }

  let create () = { data = Bytes.create 4096; pos = 0; len = 0 }
  let length b = b.len

  let reset b =
    b.pos <- 0;
    b.len <- 0

  let ensure b n =
    if b.pos > 0 then begin
      Bytes.blit b.data b.pos b.data 0 b.len;
      b.pos <- 0
    end;
    if Bytes.length b.data - b.len < n then begin
      let cap = ref (2 * Bytes.length b.data) in
      while !cap - b.len < n do
        cap := !cap * 2
      done;
      let d = Bytes.create !cap in
      Bytes.blit b.data 0 d 0 b.len;
      b.data <- d
    end

  (* one read(2) into the free tail; the fd is nonblocking, so an empty
     socket raises EAGAIN instead of stalling the IO domain *)
  let fill b fd =
    ensure b 8192;
    let n = Unix.read fd b.data (b.pos + b.len) (Bytes.length b.data - b.pos - b.len) in
    b.len <- b.len + n;
    n

  let peek b n = Bytes.sub_string b.data b.pos n

  (* the buffered bytes live at [[pos, pos + length)] of [raw] — frames
     are decoded in place from this view, no per-frame slice *)
  let raw b = Bytes.unsafe_to_string b.data
  let pos b = b.pos

  let consume b n =
    b.pos <- b.pos + n;
    b.len <- b.len - n
end

type conn = {
  fd : Unix.file_descr;
  rbuf : Rbuf.t; (* pooled; IO domain only *)
  pending : Netbuf.t; (* pooled; queued response bytes, under wmutex *)
  wmutex : Mutex.t;
  mutable hello_done : bool;
  mutable open_ : bool; (* wmutex: writers may touch fd/pending *)
  mutable closed : bool; (* wmutex: fd has been closed (IO domain/wait) *)
  mutable wflag : bool; (* sig_m: already queued for write interest *)
}

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  workers : int;
  queue_capacity : int;
  queue : (unit -> unit) Bq.t;
  handle : t -> conn -> now:float -> Frame.request -> unit;
  evloop : Evloop.t;
  io_backend_name : string;
  started_ns : int;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  obs_mutex : Mutex.t;
  obs_ctx : Obs.context;
  conns_mutex : Mutex.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  (* worker -> IO domain signals: connections wanting write interest
     (their [pending] has bytes) and connections condemned by a failed
     write; the IO domain owns the event loop, so only it may register
     interest or close fds *)
  sig_m : Mutex.t;
  mutable sig_want_write : conn list;
  mutable sig_dead : conn list;
  (* pooled per-connection buffers: connection churn reuses buffers
     instead of allocating fresh ones per accept *)
  rbuf_m : Mutex.t;
  mutable rbuf_free : Rbuf.t list;
  wbuf_pool : Netbuf.Pool.t;
  c_conns : int Atomic.t;
  c_received : int Atomic.t;
  c_answered : int Atomic.t;
  c_updated : int Atomic.t;
  c_overload : int Atomic.t;
  c_deadline : int Atomic.t;
  c_bad : int Atomic.t;
  mutable io_domain : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
}

let port t = t.bound_port
let io_backend t = t.io_backend_name
let workers t = t.workers
let queue_capacity t = t.queue_capacity
let queue_depth t = Bq.depth t.queue
let uptime_ns t = Mono.now_ns () - t.started_ns

let note_received t = Atomic.incr t.c_received
let note_answered t = Atomic.incr t.c_answered
let note_updated t = Atomic.incr t.c_updated
let note_overload t = Atomic.incr t.c_overload
let note_deadline t = Atomic.incr t.c_deadline
let note_bad t = Atomic.incr t.c_bad

let stats t =
  {
    connections = Atomic.get t.c_conns;
    received = Atomic.get t.c_received;
    answered = Atomic.get t.c_answered;
    updated = Atomic.get t.c_updated;
    rejected_overload = Atomic.get t.c_overload;
    rejected_deadline = Atomic.get t.c_deadline;
    bad_requests = Atomic.get t.c_bad;
  }

(* run [f] under the core's shared Obs context, serialized — roles adopt
   finished per-job contexts and bump role-level metrics through this *)
let with_obs t f =
  Mutex.protect t.obs_mutex (fun () -> Obs.with_context t.obs_ctx f)

let trace_json t = with_obs t (fun () -> Json.to_string (Obs.trace ()))

let max_free_rbufs = 64

let acquire_rbuf t =
  Mutex.protect t.rbuf_m (fun () ->
      match t.rbuf_free with
      | b :: rest ->
          t.rbuf_free <- rest;
          b
      | [] -> Rbuf.create ())

let release_rbuf t b =
  Rbuf.reset b;
  Mutex.protect t.rbuf_m (fun () ->
      if List.length t.rbuf_free < max_free_rbufs then
        t.rbuf_free <- b :: t.rbuf_free)

(* each domain encodes responses into its own reusable scratch buffer —
   zero allocation per response once the buffer has grown to the
   workload's frame size *)
let scratch_key = Domain.DLS.new_key (fun () -> Netbuf.create 4096)

let wake t =
  (* a full pipe just means the IO domain is already due to wake *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let request_write_interest t conn =
  let fresh =
    Mutex.protect t.sig_m (fun () ->
        if conn.wflag then false
        else begin
          conn.wflag <- true;
          t.sig_want_write <- conn :: t.sig_want_write;
          true
        end)
  in
  if fresh then wake t

let push_dead t conn =
  Mutex.protect t.sig_m (fun () -> t.sig_dead <- conn :: t.sig_dead);
  wake t

(* During drain the IO domain is gone, so nobody will flush [pending] on
   a writable event; fall back to a bounded blocking flush (the old
   behaviour of the blocking write path), called under [wmutex]. *)
let rec drain_flush conn deadline =
  match Netbuf.flush conn.fd conn.pending with
  | Netbuf.Flushed | Netbuf.Gone -> ()
  | Netbuf.Again ->
      if Unix.gettimeofday () < deadline then begin
        (try ignore (Unix.select [] [ conn.fd ] [] 0.05)
         with Unix.Unix_error _ -> ());
        drain_flush conn deadline
      end

(* Writes come from worker domains and the IO domain; the per-connection
   mutex serializes them and guards [open_] so nobody writes to (or
   stashes onto) a dead connection.  The frame is encoded once into the
   calling domain's scratch buffer and written straight from it; bytes
   the socket refuses are stashed on [conn.pending] and the IO domain is
   asked for write interest. *)
let reply t conn resp =
  let scratch = Domain.DLS.get scratch_key in
  Netbuf.clear scratch;
  Frame.encode_response_into scratch resp;
  let status =
    Mutex.protect conn.wmutex (fun () ->
        if not conn.open_ then `Done
        else
          match
            Netbuf.write_or_stash conn.fd ~pending:conn.pending
              (Netbuf.data scratch) ~pos:0 ~len:(Netbuf.length scratch)
          with
          | Netbuf.Flushed -> `Done
          | Netbuf.Again ->
              if Atomic.get t.stop_flag then begin
                drain_flush conn (Unix.gettimeofday () +. 5.0);
                `Done
              end
              else `Want_write
          | Netbuf.Gone ->
              conn.open_ <- false;
              `Dead)
  in
  match status with
  | `Done -> ()
  | `Want_write -> request_write_interest t conn
  | `Dead -> push_dead t conn

let enqueue t job = Bq.try_push t.queue job

(* full teardown: close the fd and recycle the connection's buffers.
   Only the IO domain (or [wait], after it exited) may call this. *)
let close_conn t conn =
  let release =
    Mutex.protect conn.wmutex (fun () ->
        conn.open_ <- false;
        if conn.closed then false
        else begin
          conn.closed <- true;
          (try Unix.close conn.fd with Unix.Unix_error _ -> ());
          true
        end)
  in
  if release then begin
    release_rbuf t conn.rbuf;
    Netbuf.Pool.release t.wbuf_pool conn.pending
  end;
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn.fd)

let worker_loop t () =
  let rec go () =
    match Bq.pop t.queue with
    | None -> ()
    | Some job ->
        job ();
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* IO domain: readiness loop over Evloop                                *)
(* ------------------------------------------------------------------ *)

(* cut every complete frame out of the connection's buffer — decoded in
   place from the buffer's backing bytes, no per-frame body copy;
   returns [false] when the connection must be dropped (bad hello / bad
   frame) *)
let rec drain_buffer t conn =
  let buf = conn.rbuf in
  if not conn.hello_done then
    if Rbuf.length buf < Frame.hello_len then true
    else begin
      let hello = Rbuf.peek buf Frame.hello_len in
      Rbuf.consume buf Frame.hello_len;
      match Frame.check_hello hello with
      | Ok () ->
          conn.hello_done <- true;
          drain_buffer t conn
      | Error _ ->
          note_bad t;
          false
    end
  else if Rbuf.length buf < 4 then true
  else
    let len = Frame.peek_len (Rbuf.raw buf) ~pos:(Rbuf.pos buf) in
    if len < 4 || len > Frame.max_frame_len then begin
      note_bad t;
      reply t conn
        (Frame.Rejected
           {
             id = 0;
             reject =
               Frame.Bad_request (Printf.sprintf "frame length %d" len);
           });
      false
    end
    else if Rbuf.length buf < 4 + len then true
    else begin
      let decoded =
        Frame.decode_request_sub (Rbuf.raw buf) ~pos:(Rbuf.pos buf + 4) ~len
      in
      Rbuf.consume buf (4 + len);
      match decoded with
      | Ok req ->
          t.handle t conn ~now:(Unix.gettimeofday ()) req;
          drain_buffer t conn
      | Error e ->
          (* the stream may be out of sync past a bad frame: answer with
             a typed rejection, then drop the connection *)
          note_bad t;
          reply t conn
            (Frame.Rejected
               { id = 0; reject = Frame.Bad_request (Frame.error_to_string e) });
          false
    end

let hello_bytes = Bytes.of_string Frame.hello

let io_loop t () =
  let loop = t.evloop in
  let live = Hashtbl.create 64 in
  (* hoisted out of the loop: the wake pipe drain scratch used to be a
     fresh 64-byte allocation per wakeup *)
  let wake_scratch = Bytes.create 64 in
  let drop conn =
    Hashtbl.remove live conn.fd;
    Evloop.remove loop conn.fd;
    close_conn t conn
  in
  let add_conn fd =
    Unix.set_nonblock fd;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    let conn =
      {
        fd;
        rbuf = acquire_rbuf t;
        pending = Netbuf.Pool.acquire t.wbuf_pool;
        wmutex = Mutex.create ();
        hello_done = false;
        open_ = true;
        closed = false;
        wflag = false;
      }
    in
    Atomic.incr t.c_conns;
    Hashtbl.replace live fd conn;
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns fd conn);
    Evloop.add loop fd;
    (* greet immediately; the 12 bytes land in the empty socket buffer
       except under extreme memory pressure, where they stash *)
    let greeting =
      Mutex.protect conn.wmutex (fun () ->
          Netbuf.write_or_stash fd ~pending:conn.pending hello_bytes ~pos:0
            ~len:(Bytes.length hello_bytes))
    in
    match greeting with
    | Netbuf.Flushed -> ()
    | Netbuf.Again -> Evloop.set_write loop fd true
    | Netbuf.Gone -> drop conn
  in
  let rec accept_all () =
    if not (Atomic.get t.stop_flag) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          add_conn fd;
          accept_all ()
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  (* edge-triggered readiness: always read to EAGAIN (harmless extra
     syscall under level-triggered select) *)
  let handle_readable conn =
    let rec pump () =
      match Rbuf.fill conn.rbuf conn.fd with
      | 0 -> `Drop
      | _ -> if drain_buffer t conn then pump () else `Drop
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Keep
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
      | exception Unix.Unix_error (_, _, _) -> `Drop
    in
    match pump () with `Drop -> drop conn | `Keep -> ()
  in
  let handle_writable conn =
    let r =
      Mutex.protect conn.wmutex (fun () ->
          if conn.closed || not conn.open_ then `Ignore
          else
            match Netbuf.flush conn.fd conn.pending with
            | Netbuf.Flushed ->
                Evloop.set_write loop conn.fd false;
                `Keep
            | Netbuf.Again -> `Keep
            | Netbuf.Gone ->
                conn.open_ <- false;
                `Drop)
    in
    match r with `Drop -> drop conn | `Keep | `Ignore -> ()
  in
  let drain_wake () =
    let rec go () =
      match Unix.read t.wake_r wake_scratch 0 (Bytes.length wake_scratch) with
      | 0 -> ()
      | _ -> go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    go ()
  in
  (* apply worker signals: grant write interest to connections with
     stashed bytes, tear down condemned ones *)
  let process_signals () =
    let want, dead =
      Mutex.protect t.sig_m (fun () ->
          let want = t.sig_want_write and dead = t.sig_dead in
          t.sig_want_write <- [];
          t.sig_dead <- [];
          List.iter (fun c -> c.wflag <- false) want;
          (want, dead))
    in
    List.iter
      (fun conn ->
        match Hashtbl.find_opt live conn.fd with
        | Some c when c == conn ->
            Mutex.protect conn.wmutex (fun () ->
                if
                  conn.open_ && (not conn.closed)
                  && Netbuf.length conn.pending > 0
                then Evloop.set_write loop conn.fd true)
        | _ -> ())
      want;
    List.iter
      (fun conn ->
        match Hashtbl.find_opt live conn.fd with
        | Some c when c == conn -> drop conn
        | _ -> ())
      dead
  in
  Evloop.add loop t.listen_fd;
  Evloop.add loop t.wake_r;
  let rec run () =
    if not (Atomic.get t.stop_flag) then begin
      ignore
        (Evloop.wait loop ~timeout_ms:(-1) (fun fd ~readable ~writable ->
             if fd = t.wake_r then begin
               if readable then drain_wake ()
             end
             else if fd = t.listen_fd then begin
               if readable then accept_all ()
             end
             else
               match Hashtbl.find_opt live fd with
               | None -> ()
               | Some conn ->
                   if writable then handle_writable conn;
                   if readable && Hashtbl.mem live fd then
                     handle_readable conn));
      process_signals ();
      run ()
    end
  in
  run ();
  (* drain: no new connections, no new reads; queued jobs still get
     answered by the workers, so connection fds stay open until [wait] *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Evloop.close loop;
  Bq.close t.queue

(* ------------------------------------------------------------------ *)
(* lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start ?(host = "127.0.0.1") ~port ~workers ~queue_capacity ?io_backend
    handle =
  if workers < 1 then invalid_arg "Core.start: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Core.start: queue_capacity must be >= 1";
  (* a peer vanishing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 512;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let evloop =
    match io_backend with
    | Some b -> Evloop.create ~backend:b ()
    | None -> Evloop.create ()
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      listen_fd;
      bound_port;
      workers;
      queue_capacity;
      queue = Bq.create queue_capacity;
      handle;
      evloop;
      io_backend_name = Evloop.name evloop;
      started_ns = Mono.now_ns ();
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      obs_mutex = Mutex.create ();
      obs_ctx = Obs.create_context ();
      conns_mutex = Mutex.create ();
      conns = Hashtbl.create 32;
      sig_m = Mutex.create ();
      sig_want_write = [];
      sig_dead = [];
      rbuf_m = Mutex.create ();
      rbuf_free = [];
      wbuf_pool = Netbuf.Pool.create ~capacity:4096 ();
      c_conns = Atomic.make 0;
      c_received = Atomic.make 0;
      c_answered = Atomic.make 0;
      c_updated = Atomic.make 0;
      c_overload = Atomic.make 0;
      c_deadline = Atomic.make 0;
      c_bad = Atomic.make 0;
      io_domain = None;
      worker_domains = [];
    }
  in
  t.worker_domains <-
    List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t.io_domain <- Some (Domain.spawn (io_loop t));
  t

let stopping t = Atomic.get t.stop_flag

let stop t =
  if not (Atomic.exchange t.stop_flag true) then wake t

let wait t =
  (match t.io_domain with
  | Some d ->
      Domain.join d;
      t.io_domain <- None
  | None -> ());
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  let leftovers =
    Mutex.protect t.conns_mutex (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter (fun c -> close_conn t c) leftovers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  stats t
