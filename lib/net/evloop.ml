(* Pluggable IO readiness for the server's IO domain.

   Two backends behind one interface: edge-triggered epoll(7) through
   the C stubs in evloop_stubs.c (Linux), and the portable Unix.select
   loop the server shipped with.  The server drives both with the same
   strategy — read until EAGAIN, write until EAGAIN — which is required
   for correctness under edge triggering and merely harmless extra
   syscalls under level triggering, so backend choice is pure policy.

   A loop is single-owner: only the IO domain may call [add],
   [set_write], [remove] or [wait].  Workers that want write interest
   signal the IO domain through the server's wake pipe instead. *)

external epoll_available_raw : unit -> bool = "stt_epoll_available"
external epoll_create_raw : unit -> int = "stt_epoll_create"
external epoll_close_raw : int -> unit = "stt_epoll_close"

external epoll_ctl_raw : int -> int -> Unix.file_descr -> int -> int
  = "stt_epoll_ctl"

(* fills the two preallocated arrays; returns the event count *)
external epoll_wait_raw : int -> int -> Unix.file_descr array -> int array -> int
  = "stt_epoll_wait"

(* interest/readiness bits shared with the stub *)
let bit_in = 1
let bit_out = 2
let bit_et = 4

type backend = Epoll | Select

let backend_name = function Epoll -> "epoll" | Select -> "select"

let backend_of_string = function
  | "epoll" -> Some Epoll
  | "select" -> Some Select
  | _ -> None

let available = function Select -> true | Epoll -> epoll_available_raw ()

(* STT_EVLOOP=select|epoll overrides; otherwise the fastest available *)
let default_backend () =
  match Option.map backend_of_string (Sys.getenv_opt "STT_EVLOOP") with
  | Some (Some b) -> b
  | _ -> if available Epoll then Epoll else Select

let max_events = 512

type impl =
  | Epoll_impl of {
      epfd : int;
      fds : Unix.file_descr array; (* filled by each wait *)
      bits : int array;
    }
  | Select_impl

type t = {
  impl : impl;
  (* fd -> current write interest; membership = registered *)
  watched : (Unix.file_descr, bool ref) Hashtbl.t;
  mutable closed : bool;
}

let backend t = match t.impl with Epoll_impl _ -> Epoll | Select_impl -> Select
let name t = backend_name (backend t)

let check fn r =
  if r < 0 then
    failwith (Printf.sprintf "Evloop.%s: errno %d" fn (-r))

let create ?backend () =
  let b =
    match backend with
    | Some b ->
        if not (available b) then
          failwith
            (Printf.sprintf "Evloop.create: backend %s unavailable"
               (backend_name b));
        b
    | None -> default_backend ()
  in
  let impl =
    match b with
    | Select -> Select_impl
    | Epoll ->
        let epfd = epoll_create_raw () in
        check "create" epfd;
        Epoll_impl
          {
            epfd;
            fds = Array.make max_events Unix.stdin;
            bits = Array.make max_events 0;
          }
  in
  { impl; watched = Hashtbl.create 64; closed = false }

let add t fd =
  if t.closed then invalid_arg "Evloop.add: closed";
  if Hashtbl.mem t.watched fd then invalid_arg "Evloop.add: already watched";
  (match t.impl with
  | Epoll_impl e -> check "add" (epoll_ctl_raw e.epfd 0 fd (bit_in lor bit_et))
  | Select_impl -> ());
  Hashtbl.replace t.watched fd (ref false)

let set_write t fd want =
  match Hashtbl.find_opt t.watched fd with
  | None -> () (* racing a removal: the connection is already gone *)
  | Some r ->
      if !r <> want then begin
        (match t.impl with
        | Epoll_impl e ->
            (* MOD rearms edge triggering, so readiness present at this
               instant is reported as a fresh edge on the next wait *)
            let bits =
              bit_in lor bit_et lor (if want then bit_out else 0)
            in
            check "set_write" (epoll_ctl_raw e.epfd 1 fd bits)
        | Select_impl -> ());
        r := want
      end

let remove t fd =
  if Hashtbl.mem t.watched fd then begin
    Hashtbl.remove t.watched fd;
    match t.impl with
    | Epoll_impl e ->
        (* tolerate DEL racing the close of fd: either way it is gone *)
        ignore (epoll_ctl_raw e.epfd 2 fd 0)
    | Select_impl -> ()
  end

let watched_count t = Hashtbl.length t.watched

let wait t ~timeout_ms f =
  if t.closed then invalid_arg "Evloop.wait: closed";
  match t.impl with
  | Epoll_impl e ->
      let n = epoll_wait_raw e.epfd timeout_ms e.fds e.bits in
      check "wait" n;
      for i = 0 to n - 1 do
        let fd = Array.unsafe_get e.fds i in
        (* a callback earlier in this batch may have removed the fd *)
        if Hashtbl.mem t.watched fd then begin
          let b = Array.unsafe_get e.bits i in
          f fd ~readable:(b land bit_in <> 0) ~writable:(b land bit_out <> 0)
        end
      done;
      n
  | Select_impl -> (
      let rd = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.watched [] in
      let wr =
        Hashtbl.fold
          (fun fd w acc -> if !w then fd :: acc else acc)
          t.watched []
      in
      let timeout =
        if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0
      in
      match Unix.select rd wr [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | rd', wr', _ ->
          (* one callback per ready fd, with merged readiness *)
          let wrset = Hashtbl.create (List.length wr' + 1) in
          List.iter (fun fd -> Hashtbl.replace wrset fd ()) wr';
          let n = ref 0 in
          List.iter
            (fun fd ->
              if Hashtbl.mem t.watched fd then begin
                incr n;
                let writable = Hashtbl.mem wrset fd in
                if writable then Hashtbl.remove wrset fd;
                f fd ~readable:true ~writable
              end)
            rd';
          Hashtbl.iter
            (fun fd () ->
              if Hashtbl.mem t.watched fd then begin
                incr n;
                f fd ~readable:false ~writable:true
              end)
            wrset;
          !n)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.reset t.watched;
    match t.impl with
    | Epoll_impl e -> epoll_close_raw e.epfd
    | Select_impl -> ()
  end
