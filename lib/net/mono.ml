(* Monotonic clock for uptime and staleness detection (protocol v5).
   [@@noalloc]: the stub returns an immediate, so calling it from the
   hot path costs a C call and nothing else. *)

external now_ns : unit -> int = "stt_monotonic_ns" [@@noalloc]
