open Stt_relation
module Obs = Stt_obs.Obs
module Json = Stt_obs.Json

type handler =
  arity:int -> int array list -> (int array list * int * Cost.snapshot) list

type update_handler =
  Frame.update list -> (int * int * Cost.snapshot, string) result

let engine_handler engine ~arity tuples =
  let module Engine = Stt_core.Engine in
  let schema = Engine.access_schema engine in
  if arity <> Schema.arity schema then
    failwith
      (Printf.sprintf "access arity %d, engine expects %d" arity
         (Schema.arity schema));
  let requests =
    List.map (fun tup -> Relation.of_list schema [ tup ]) tuples
  in
  Engine.answer_batch engine requests
  |> List.map (fun (rel, cost) ->
         let rows = List.sort Tuple.compare (Relation.to_list rel) in
         (rows, Schema.arity (Relation.schema rel), cost))

let engine_update_handler engine deltas =
  let module Engine = Stt_core.Engine in
  match
    Engine.apply_deltas engine
      (List.map
         (fun { Frame.urel; utuple; uadd } -> (urel, utuple, uadd))
         deltas)
  with
  | applied, cost -> Ok (Engine.epoch engine, applied, cost)
  | exception Failure msg -> Error msg

(* The engine (and its striped cache) is shared by every worker domain,
   so the IO domain can read occupancy and hit counts directly. *)
let engine_cache_info engine () =
  let module Engine = Stt_core.Engine in
  match Engine.cache_stats engine with
  | None -> Frame.no_cache
  | Some (s : Stt_cache.Cache.stats) ->
      {
        Frame.cache_budget = s.budget;
        cache_used = s.used;
        cache_entries = s.entries;
        cache_hits = s.hits;
        cache_misses = s.misses;
      }

type stats = {
  connections : int;
  received : int;
  answered : int;
  updated : int;
  rejected_overload : int;
  rejected_deadline : int;
  bad_requests : int;
}

(* ------------------------------------------------------------------ *)
(* bounded job queue: non-blocking push (full -> shed), blocking pop    *)
(* ------------------------------------------------------------------ *)

module Bq = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    c : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    { q = Queue.create (); cap; m = Mutex.create (); c = Condition.create ();
      closed = false }

  let try_push t x =
    Mutex.protect t.m (fun () ->
        if t.closed || Queue.length t.q >= t.cap then false
        else begin
          Queue.push x t.q;
          Condition.signal t.c;
          true
        end)

  (* blocks until an element arrives; [None] once closed and drained *)
  let pop t =
    Mutex.protect t.m (fun () ->
        let rec go () =
          if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
          else if t.closed then None
          else begin
            Condition.wait t.c t.m;
            go ()
          end
        in
        go ())

  let close t =
    Mutex.protect t.m (fun () ->
        t.closed <- true;
        Condition.broadcast t.c)
end

(* ------------------------------------------------------------------ *)
(* writer-priority readers/writer lock: answers share the engine, an    *)
(* update gets it exclusively, and a waiting update blocks new answers  *)
(* so a steady answer stream cannot starve it                           *)
(* ------------------------------------------------------------------ *)

module Rw = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable waiting_writers : int;
  }

  let create () =
    { m = Mutex.create (); c = Condition.create (); readers = 0;
      writer = false; waiting_writers = 0 }

  let read t f =
    Mutex.protect t.m (fun () ->
        while t.writer || t.waiting_writers > 0 do
          Condition.wait t.c t.m
        done;
        t.readers <- t.readers + 1);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.readers <- t.readers - 1;
            if t.readers = 0 then Condition.broadcast t.c))

  let write t f =
    Mutex.protect t.m (fun () ->
        t.waiting_writers <- t.waiting_writers + 1;
        while t.writer || t.readers > 0 do
          Condition.wait t.c t.m
        done;
        t.waiting_writers <- t.waiting_writers - 1;
        t.writer <- true);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.writer <- false;
            Condition.broadcast t.c))
end

(* ------------------------------------------------------------------ *)
(* per-connection read buffer (owned by the IO domain)                  *)
(* ------------------------------------------------------------------ *)

module Rbuf = struct
  type t = { mutable data : Bytes.t; mutable pos : int; mutable len : int }

  let create () = { data = Bytes.create 4096; pos = 0; len = 0 }
  let length b = b.len

  let ensure b n =
    if b.pos > 0 then begin
      Bytes.blit b.data b.pos b.data 0 b.len;
      b.pos <- 0
    end;
    if Bytes.length b.data - b.len < n then begin
      let cap = ref (2 * Bytes.length b.data) in
      while !cap - b.len < n do
        cap := !cap * 2
      done;
      let d = Bytes.create !cap in
      Bytes.blit b.data 0 d 0 b.len;
      b.data <- d
    end

  (* one read(2); the caller selects first, so this does not block *)
  let fill b fd =
    ensure b 65536;
    let n = Unix.read fd b.data b.len (Bytes.length b.data - b.len) in
    b.len <- b.len + n;
    n

  let peek b n = Bytes.sub_string b.data b.pos n

  let consume b n =
    b.pos <- b.pos + n;
    b.len <- b.len - n
end

type conn = {
  fd : Unix.file_descr;
  rbuf : Rbuf.t;
  wmutex : Mutex.t;
  mutable hello_done : bool;
  mutable open_ : bool; (* guarded by wmutex: false once fd is closed *)
}

(* Updates flow through the same bounded queue as answers, so a batch is
   applied atomically between answer jobs (the RW lock gives it the
   engine exclusively) and overload sheds both kinds alike. *)
type job =
  | JAnswer of {
      jconn : conn;
      jid : int;
      jarity : int;
      jtuples : int array list;
      jdeadline : float; (* absolute gettimeofday seconds; infinity = none *)
    }
  | JUpdate of { jconn : conn; jid : int; jdeltas : Frame.update list }

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  space : int;
  cache_info : unit -> Frame.cache_health;
  workers : int;
  queue_capacity : int;
  queue : job Bq.t;
  handler : handler;
  update_handler : update_handler option;
  rw : Rw.t;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  obs_mutex : Mutex.t;
  obs_ctx : Obs.context;
  conns_mutex : Mutex.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  c_conns : int Atomic.t;
  c_received : int Atomic.t;
  c_answered : int Atomic.t;
  c_updated : int Atomic.t;
  c_overload : int Atomic.t;
  c_deadline : int Atomic.t;
  c_bad : int Atomic.t;
  mutable io_domain : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
}

let port t = t.bound_port

let stats t =
  {
    connections = Atomic.get t.c_conns;
    received = Atomic.get t.c_received;
    answered = Atomic.get t.c_answered;
    updated = Atomic.get t.c_updated;
    rejected_overload = Atomic.get t.c_overload;
    rejected_deadline = Atomic.get t.c_deadline;
    bad_requests = Atomic.get t.c_bad;
  }

let trace_json t =
  Mutex.protect t.obs_mutex (fun () ->
      Obs.with_context t.obs_ctx (fun () -> Json.to_string (Obs.trace ())))

(* Writes come from worker domains and the IO domain; the per-connection
   mutex serializes them and guards [open_] so nobody writes to (or
   double-closes) a dead fd.  Write failures just drop the connection's
   replies — the peer is gone. *)
let send_response conn resp =
  let blob = Frame.encode_response resp in
  Mutex.protect conn.wmutex (fun () ->
      if conn.open_ then ignore (Frame.write_frame conn.fd blob))

let close_conn t conn =
  Mutex.protect conn.wmutex (fun () ->
      if conn.open_ then begin
        conn.open_ <- false;
        (try Unix.close conn.fd with Unix.Unix_error _ -> ())
      end);
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns conn.fd)

(* ------------------------------------------------------------------ *)
(* worker domains                                                       *)
(* ------------------------------------------------------------------ *)

let serve_answer t ~jconn ~jid ~jarity ~jtuples ~jdeadline =
  let started = Unix.gettimeofday () in
  if started > jdeadline then begin
    Atomic.incr t.c_deadline;
    send_response jconn
      (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
  end
  else begin
    (* each job runs under its own context so worker traces never race;
       the finished context is adopted into the server's under a lock *)
    let jctx = Obs.create_context () in
    let result =
      Obs.with_context jctx (fun () ->
          Obs.span "net.request"
            ~attrs:
              [
                ("id", Json.Int jid);
                ("tuples", Json.Int (List.length jtuples));
              ]
            (fun () ->
              try
                Rw.read t.rw (fun () -> Ok (t.handler ~arity:jarity jtuples))
              with
              | Failure msg -> Error msg
              | e -> Error (Printexc.to_string e)))
    in
    let finished = Unix.gettimeofday () in
    (match result with
    | Error msg ->
        Atomic.incr t.c_bad;
        send_response jconn
          (Frame.Rejected { id = jid; reject = Frame.Bad_request msg })
    | Ok _ when finished > jdeadline ->
        Atomic.incr t.c_deadline;
        send_response jconn
          (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
    | Ok answers ->
        Atomic.incr t.c_answered;
        let answers =
          List.map
            (fun (rows, row_arity, cost) -> { Frame.rows; row_arity; cost })
            answers
        in
        send_response jconn (Frame.Answers { id = jid; answers }));
    Mutex.protect t.obs_mutex (fun () ->
        Obs.with_context t.obs_ctx (fun () ->
            Obs.adopt jctx;
            Obs.incr "net.requests";
            Obs.observe "net.serve_us" ((finished -. started) *. 1e6)))
  end

let serve_update t ~jconn ~jid ~jdeltas =
  let started = Unix.gettimeofday () in
  let jctx = Obs.create_context () in
  let result =
    Obs.with_context jctx (fun () ->
        Obs.span "net.update"
          ~attrs:
            [
              ("id", Json.Int jid);
              ("deltas", Json.Int (List.length jdeltas));
            ]
          (fun () ->
            match t.update_handler with
            | None -> Error "this server does not accept updates"
            | Some uh -> (
                try Rw.write t.rw (fun () -> uh jdeltas) with
                | Failure msg -> Error msg
                | e -> Error (Printexc.to_string e))))
  in
  let finished = Unix.gettimeofday () in
  (match result with
  | Error msg ->
      Atomic.incr t.c_bad;
      send_response jconn
        (Frame.Rejected { id = jid; reject = Frame.Bad_request msg })
  | Ok (epoch, applied, cost) ->
      Atomic.incr t.c_updated;
      send_response jconn (Frame.Updated { id = jid; epoch; applied; cost }));
  Mutex.protect t.obs_mutex (fun () ->
      Obs.with_context t.obs_ctx (fun () ->
          Obs.adopt jctx;
          Obs.incr "net.updates";
          Obs.observe "net.update_us" ((finished -. started) *. 1e6)))

let serve_job t = function
  | JAnswer { jconn; jid; jarity; jtuples; jdeadline } ->
      serve_answer t ~jconn ~jid ~jarity ~jtuples ~jdeadline
  | JUpdate { jconn; jid; jdeltas } -> serve_update t ~jconn ~jid ~jdeltas

let worker_loop t () =
  let rec go () =
    match Bq.pop t.queue with
    | None -> ()
    | Some job ->
        serve_job t job;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* IO domain: select loop                                               *)
(* ------------------------------------------------------------------ *)

let handle_request t conn now = function
  | Frame.Answer { id; deadline_us; arity; tuples } ->
      Atomic.incr t.c_received;
      let jdeadline =
        if deadline_us = 0 then infinity
        else now +. (float_of_int deadline_us /. 1e6)
      in
      let job =
        JAnswer
          { jconn = conn; jid = id; jarity = arity; jtuples = tuples; jdeadline }
      in
      if not (Bq.try_push t.queue job) then begin
        Atomic.incr t.c_overload;
        send_response conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Update { id; deltas } ->
      Atomic.incr t.c_received;
      let job = JUpdate { jconn = conn; jid = id; jdeltas = deltas } in
      if not (Bq.try_push t.queue job) then begin
        Atomic.incr t.c_overload;
        send_response conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Stats { id } ->
      send_response conn (Frame.Stats_reply { id; json = trace_json t })
  | Frame.Health { id } ->
      send_response conn
        (Frame.Health_reply
           {
             id;
             health =
               {
                 Frame.ready = true;
                 space = t.space;
                 workers = t.workers;
                 queue_capacity = t.queue_capacity;
                 cache = t.cache_info ();
               };
           })

(* cut every complete frame out of the connection's buffer; returns
   [false] when the connection must be dropped (bad hello / bad frame) *)
let rec drain_buffer t conn =
  let buf = conn.rbuf in
  if not conn.hello_done then
    if Rbuf.length buf < Frame.hello_len then true
    else begin
      let hello = Rbuf.peek buf Frame.hello_len in
      Rbuf.consume buf Frame.hello_len;
      match Frame.check_hello hello with
      | Ok () ->
          conn.hello_done <- true;
          drain_buffer t conn
      | Error _ ->
          Atomic.incr t.c_bad;
          false
    end
  else if Rbuf.length buf < 4 then true
  else
    let len =
      Stt_store.Codec.read_u32 (Stt_store.Codec.decoder (Rbuf.peek buf 4))
    in
    if len < 4 || len > Frame.max_frame_len then begin
      Atomic.incr t.c_bad;
      send_response conn
        (Frame.Rejected
           {
             id = 0;
             reject =
               Frame.Bad_request (Printf.sprintf "frame length %d" len);
           });
      false
    end
    else if Rbuf.length buf < 4 + len then true
    else begin
      Rbuf.consume buf 4;
      let blob = Rbuf.peek buf len in
      Rbuf.consume buf len;
      match Frame.decode_request blob with
      | Ok req ->
          handle_request t conn (Unix.gettimeofday ()) req;
          drain_buffer t conn
      | Error e ->
          (* the stream may be out of sync past a bad frame: answer with
             a typed rejection, then drop the connection *)
          Atomic.incr t.c_bad;
          send_response conn
            (Frame.Rejected
               { id = 0; reject = Frame.Bad_request (Frame.error_to_string e) });
          false
    end

let accept_loop t () =
  let live = Hashtbl.create 32 in
  let add_conn fd =
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    let conn =
      { fd; rbuf = Rbuf.create (); wmutex = Mutex.create ();
        hello_done = false; open_ = true }
    in
    Atomic.incr t.c_conns;
    Hashtbl.replace live fd conn;
    Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns fd conn);
    (* greet immediately; a peer that never reads its hello has bigger
       problems than this blocking write *)
    ignore (Frame.write_hello fd)
  in
  let drop conn =
    Hashtbl.remove live conn.fd;
    close_conn t conn
  in
  let handle_readable conn =
    match Rbuf.fill conn.rbuf conn.fd with
    | 0 -> drop conn
    | _ -> if not (drain_buffer t conn) then drop conn
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      -> ()
    | exception Unix.Unix_error (_, _, _) -> drop conn
  in
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) live [] in
      let watched = t.listen_fd :: t.wake_r :: conn_fds in
      match Unix.select watched [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if List.mem t.wake_r ready then begin
            let scratch = Bytes.create 64 in
            ignore (try Unix.read t.wake_r scratch 0 64 with _ -> 0)
          end;
          if List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | fd, _ -> add_conn fd
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
          end;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt live fd with
              | Some conn -> handle_readable conn
              | None -> ())
            ready;
          loop ()
    end
  in
  loop ();
  (* drain: no new connections, no new reads; queued jobs still get
     answered by the workers, so connection fds stay open until [wait] *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Bq.close t.queue

(* ------------------------------------------------------------------ *)
(* lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start ?(host = "127.0.0.1") ~port ~workers ~queue_capacity ?(space = 0)
    ?(cache_info = fun () -> Frame.no_cache) ?update_handler handler =
  if workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Server.start: queue_capacity must be >= 1";
  (* a peer vanishing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      listen_fd;
      bound_port;
      space;
      cache_info;
      workers;
      queue_capacity;
      queue = Bq.create queue_capacity;
      handler;
      update_handler;
      rw = Rw.create ();
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      obs_mutex = Mutex.create ();
      obs_ctx = Obs.create_context ();
      conns_mutex = Mutex.create ();
      conns = Hashtbl.create 32;
      c_conns = Atomic.make 0;
      c_received = Atomic.make 0;
      c_answered = Atomic.make 0;
      c_updated = Atomic.make 0;
      c_overload = Atomic.make 0;
      c_deadline = Atomic.make 0;
      c_bad = Atomic.make 0;
      io_domain = None;
      worker_domains = [];
    }
  in
  t.worker_domains <-
    List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t.io_domain <- Some (Domain.spawn (accept_loop t));
  t

let stopping t = Atomic.get t.stop_flag

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    (* wake the select loop; a full pipe just means it is already awake *)
    try ignore (Unix.write_substring t.wake_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (match t.io_domain with
  | Some d ->
      Domain.join d;
      t.io_domain <- None
  | None -> ());
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  let leftovers =
    Mutex.protect t.conns_mutex (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
  in
  List.iter (fun c -> close_conn t c) leftovers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  stats t
