open Stt_relation
module Obs = Stt_obs.Obs
module Json = Stt_obs.Json

(* The replica role: engine-backed request handling layered on the
   role-agnostic Core (accept/IO-loop/drain, worker pool, byte path).
   Everything engine-specific lives here — the RW lock that serializes
   updates against answers, deadline arithmetic, and the Health block —
   and everything about moving frames lives in Core, shared with the
   sharded tier's router. *)

type handler =
  arity:int -> int array list -> (int array list * int * Cost.snapshot) list

type update_handler =
  Frame.update list -> (int * int * Cost.snapshot, string) result

type agg_handler = kind:int -> arity:int -> int array list -> int * Cost.snapshot

let engine_handler engine ~arity tuples =
  let module Engine = Stt_core.Engine in
  let schema = Engine.access_schema engine in
  if arity <> Schema.arity schema then
    failwith
      (Printf.sprintf "access arity %d, engine expects %d" arity
         (Schema.arity schema));
  let requests =
    List.map (fun tup -> Relation.of_list schema [ tup ]) tuples
  in
  Engine.answer_batch engine requests
  |> List.map (fun (rel, cost) ->
         let rows = List.sort Tuple.compare (Relation.to_list rel) in
         (rows, Schema.arity (Relation.schema rel), cost))

let engine_agg_handler engine ~kind ~arity tuples =
  let module Engine = Stt_core.Engine in
  let module Semiring = Stt_semiring.Semiring in
  let k =
    match Semiring.of_tag kind with
    | Some k -> k
    | None -> failwith (Printf.sprintf "unknown aggregate kind %d" kind)
  in
  let schema = Engine.access_schema engine in
  if arity <> Schema.arity schema then
    failwith
      (Printf.sprintf "access arity %d, engine expects %d" arity
         (Schema.arity schema));
  let q_a = Relation.of_list schema tuples in
  Engine.answer_agg engine k ~q_a

let engine_update_handler engine deltas =
  let module Engine = Stt_core.Engine in
  match
    Engine.apply_deltas engine
      (List.map
         (fun { Frame.urel; utuple; uadd } -> (urel, utuple, uadd))
         deltas)
  with
  | applied, cost -> Ok (Engine.epoch engine, applied, cost)
  | exception Failure msg -> Error msg

(* The engine (and its striped cache) is shared by every worker domain,
   so the IO domain can read occupancy and hit counts directly. *)
let engine_cache_info engine () =
  let module Engine = Stt_core.Engine in
  match Engine.cache_stats engine with
  | None -> Frame.no_cache
  | Some (s : Stt_cache.Cache.stats) ->
      {
        Frame.cache_budget = s.budget;
        cache_used = s.used;
        cache_entries = s.entries;
        cache_hits = s.hits;
        cache_misses = s.misses;
      }

type stats = Core.stats = {
  connections : int;
  received : int;
  answered : int;
  updated : int;
  rejected_overload : int;
  rejected_deadline : int;
  bad_requests : int;
}

(* ------------------------------------------------------------------ *)
(* writer-priority readers/writer lock: answers share the engine, an    *)
(* update gets it exclusively, and a waiting update blocks new answers  *)
(* so a steady answer stream cannot starve it                           *)
(* ------------------------------------------------------------------ *)

module Rw = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;
    mutable waiting_writers : int;
  }

  let create () =
    { m = Mutex.create (); c = Condition.create (); readers = 0;
      writer = false; waiting_writers = 0 }

  let read t f =
    Mutex.protect t.m (fun () ->
        while t.writer || t.waiting_writers > 0 do
          Condition.wait t.c t.m
        done;
        t.readers <- t.readers + 1);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.readers <- t.readers - 1;
            if t.readers = 0 then Condition.broadcast t.c))

  let write t f =
    Mutex.protect t.m (fun () ->
        t.waiting_writers <- t.waiting_writers + 1;
        while t.writer || t.readers > 0 do
          Condition.wait t.c t.m
        done;
        t.waiting_writers <- t.waiting_writers - 1;
        t.writer <- true);
    Fun.protect f ~finally:(fun () ->
        Mutex.protect t.m (fun () ->
            t.writer <- false;
            Condition.broadcast t.c))
end

type t = Core.t

(* ------------------------------------------------------------------ *)
(* worker jobs                                                          *)
(* ------------------------------------------------------------------ *)

let serve_answer core ~rw ~handler ~jconn ~jid ~jarity ~jtuples ~jdeadline =
  let started = Unix.gettimeofday () in
  if started > jdeadline then begin
    Core.note_deadline core;
    Core.reply core jconn
      (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
  end
  else begin
    (* each job runs under its own context so worker traces never race;
       the finished context is adopted into the server's under a lock *)
    let jctx = Obs.create_context () in
    let result =
      Obs.with_context jctx (fun () ->
          Obs.span "net.request"
            ~attrs:
              [
                ("id", Json.Int jid);
                ("tuples", Json.Int (List.length jtuples));
              ]
            (fun () ->
              try
                Rw.read rw (fun () ->
                    Ok
                      (Obs.with_alloc "net.answer.alloc_bytes" (fun () ->
                           handler ~arity:jarity jtuples)))
              with
              | Failure msg -> Error msg
              | e -> Error (Printexc.to_string e)))
    in
    let finished = Unix.gettimeofday () in
    (match result with
    | Error msg ->
        Core.note_bad core;
        Core.reply core jconn
          (Frame.Rejected { id = jid; reject = Frame.Bad_request msg })
    | Ok _ when finished > jdeadline ->
        Core.note_deadline core;
        Core.reply core jconn
          (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
    | Ok answers ->
        Core.note_answered core;
        let answers =
          List.map
            (fun (rows, row_arity, cost) -> { Frame.rows; row_arity; cost })
            answers
        in
        Core.reply core jconn (Frame.Answers { id = jid; answers }));
    Core.with_obs core (fun () ->
        Obs.adopt jctx;
        Obs.incr "net.requests";
        Obs.observe "net.serve_us" ((finished -. started) *. 1e6))
  end

let serve_agg core ~rw ~agg_handler ~jconn ~jid ~jkind ~jarity ~jtuples
    ~jdeadline =
  let started = Unix.gettimeofday () in
  if started > jdeadline then begin
    Core.note_deadline core;
    Core.reply core jconn
      (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
  end
  else begin
    let jctx = Obs.create_context () in
    let result =
      Obs.with_context jctx (fun () ->
          Obs.span "net.agg"
            ~attrs:
              [
                ("id", Json.Int jid);
                ("kind", Json.Int jkind);
                ("tuples", Json.Int (List.length jtuples));
              ]
            (fun () ->
              match agg_handler with
              | None -> Error "this server does not serve aggregates"
              | Some ah -> (
                  try
                    Rw.read rw (fun () ->
                        Ok (ah ~kind:jkind ~arity:jarity jtuples))
                  with
                  | Failure msg -> Error msg
                  | e -> Error (Printexc.to_string e))))
    in
    let finished = Unix.gettimeofday () in
    (match result with
    | Error msg ->
        Core.note_bad core;
        Core.reply core jconn
          (Frame.Rejected { id = jid; reject = Frame.Bad_request msg })
    | Ok _ when finished > jdeadline ->
        Core.note_deadline core;
        Core.reply core jconn
          (Frame.Rejected { id = jid; reject = Frame.Deadline_exceeded })
    | Ok (value, cost) ->
        Core.note_answered core;
        Core.reply core jconn (Frame.Agg_reply { id = jid; value; cost }));
    Core.with_obs core (fun () ->
        Obs.adopt jctx;
        Obs.incr "net.aggs";
        Obs.observe "net.agg_us" ((finished -. started) *. 1e6))
  end

let serve_update core ~rw ~update_handler ~jconn ~jid ~jdeltas =
  let started = Unix.gettimeofday () in
  let jctx = Obs.create_context () in
  let result =
    Obs.with_context jctx (fun () ->
        Obs.span "net.update"
          ~attrs:
            [
              ("id", Json.Int jid);
              ("deltas", Json.Int (List.length jdeltas));
            ]
          (fun () ->
            match update_handler with
            | None -> Error "this server does not accept updates"
            | Some uh -> (
                try Rw.write rw (fun () -> uh jdeltas) with
                | Failure msg -> Error msg
                | e -> Error (Printexc.to_string e))))
  in
  let finished = Unix.gettimeofday () in
  (match result with
  | Error msg ->
      Core.note_bad core;
      Core.reply core jconn
        (Frame.Rejected { id = jid; reject = Frame.Bad_request msg })
  | Ok (epoch, applied, cost) ->
      Core.note_updated core;
      Core.reply core jconn
        (Frame.Updated { id = jid; epoch; applied; cost }));
  Core.with_obs core (fun () ->
      Obs.adopt jctx;
      Obs.incr "net.updates";
      Obs.observe "net.update_us" ((finished -. started) *. 1e6))

(* ------------------------------------------------------------------ *)
(* the role callback (runs on the IO domain)                            *)
(* ------------------------------------------------------------------ *)

let handle_request ~rw ~handler ~update_handler ~agg_handler ~space ~agg_space
    ~cache_info core conn ~now req =
  match req with
  | Frame.Answer { id; deadline_us; arity; tuples } ->
      Core.note_received core;
      let jdeadline =
        if deadline_us = 0 then infinity
        else now +. (float_of_int deadline_us /. 1e6)
      in
      let job () =
        serve_answer core ~rw ~handler ~jconn:conn ~jid:id ~jarity:arity
          ~jtuples:tuples ~jdeadline
      in
      if not (Core.enqueue core job) then begin
        Core.note_overload core;
        Core.reply core conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Agg { id; deadline_us; kind; arity; tuples } ->
      Core.note_received core;
      let jdeadline =
        if deadline_us = 0 then infinity
        else now +. (float_of_int deadline_us /. 1e6)
      in
      let job () =
        serve_agg core ~rw ~agg_handler ~jconn:conn ~jid:id ~jkind:kind
          ~jarity:arity ~jtuples:tuples ~jdeadline
      in
      if not (Core.enqueue core job) then begin
        Core.note_overload core;
        Core.reply core conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Update { id; deltas } ->
      Core.note_received core;
      let job () =
        serve_update core ~rw ~update_handler ~jconn:conn ~jid:id
          ~jdeltas:deltas
      in
      if not (Core.enqueue core job) then begin
        Core.note_overload core;
        Core.reply core conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Stats { id } ->
      Core.reply core conn
        (Frame.Stats_reply { id; json = Core.trace_json core })
  | Frame.Health { id } ->
      Core.reply core conn
        (Frame.Health_reply
           {
             id;
             health =
               {
                 Frame.ready = true;
                 space;
                 agg_space = agg_space ();
                 workers = Core.workers core;
                 queue_capacity = Core.queue_capacity core;
                 queue_depth = Core.queue_depth core;
                 uptime_ns = Core.uptime_ns core;
                 cache = cache_info ();
                 io_backend = Core.io_backend core;
                 shards = [];
               };
           })

(* ------------------------------------------------------------------ *)
(* lifecycle (delegated)                                                *)
(* ------------------------------------------------------------------ *)

let start ?host ~port ~workers ~queue_capacity ?(space = 0)
    ?(agg_space = fun () -> 0) ?(cache_info = fun () -> Frame.no_cache)
    ?update_handler ?agg_handler ?io_backend handler =
  let rw = Rw.create () in
  Core.start ?host ~port ~workers ~queue_capacity ?io_backend
    (handle_request ~rw ~handler ~update_handler ~agg_handler ~space
       ~agg_space ~cache_info)

let port = Core.port
let io_backend = Core.io_backend
let stop = Core.stop
let stopping = Core.stopping
let wait = Core.wait
let stats = Core.stats
let trace_json = Core.trace_json
