(** Wire protocol of the network serving layer.

    A connection opens with a fixed-size hello (8-byte magic + u32 LE
    protocol version, sent by {e both} peers immediately after connect);
    everything after the hellos is length-prefixed frames:

    {v
      length   u32 LE — byte length of body + crc
      body     Codec-encoded frame (u8 tag, then fields)
      crc32    u32 LE, CRC-32 of the body bytes
    v}

    Bodies reuse {!Stt_store.Codec} primitives (LEB128 varints, zigzag
    for signed values, column-major delta row blocks), so a batch of
    sorted access tuples costs a few bits per value on the wire.  The
    per-frame CRC means any single-byte corruption surfaces as a typed
    {!error} — same contract as the snapshot store, checked by the same
    style of flip-sweep test.

    Decoding is total: every decoder returns a [result], never raises,
    and validates strictly (full consumption, checksum, known tags). *)

open Stt_relation

val magic : string
(** 8 bytes, ["\x89STTWIRE"]. *)

val protocol_version : int
(** Bumped on any wire change; hellos must match exactly. *)

val hello_len : int
(** Byte length of the hello blob (magic + version). *)

val max_frame_len : int
(** Hard cap on a frame's length prefix (64 MiB) — a corrupt or hostile
    length decodes to {!error} instead of an unbounded allocation. *)

type error =
  | Io_error of string  (** socket read/write failed (errno message) *)
  | Closed  (** peer closed the connection mid-frame or mid-hello *)
  | Bad_magic  (** the peer's hello does not start with {!magic} *)
  | Version_skew of { found : int; expected : int }
      (** the peer speaks an incompatible protocol version *)
  | Truncated of string  (** frame body ends mid-structure (context) *)
  | Checksum_mismatch  (** frame body CRC differs *)
  | Malformed of string
      (** bytes decode to an impossible structure (context) *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Frame types} *)

type update = {
  urel : string;  (** relation name *)
  utuple : int array;
  uadd : bool;  (** [true] = insert, [false] = delete *)
}
(** One base-tuple delta (protocol v3). *)

type request =
  | Answer of {
      id : int;
      deadline_us : int;
          (** serving budget in µs from server receipt; [0] = none.  The
              server checks it before and after the engine call and
              replies [Deadline_exceeded] when blown. *)
      arity : int;
      tuples : int array list;  (** batch of access tuples, one request each *)
    }
  | Agg of {
      id : int;
      deadline_us : int;
      kind : int;
          (** a {!Stt_semiring.Semiring.to_tag} value (1..4); decode
              rejects anything else *)
      arity : int;
      tuples : int array list;
          (** {e one} multi-tuple access request — the server folds the
              whole tuple set to a single scalar (protocol v6) *)
    }
  | Update of { id : int; deltas : update list }
      (** apply a batch of base-data deltas atomically between answer
          jobs; redundant deltas are no-ops *)
  | Stats of { id : int }  (** fetch the server's observability trace *)
  | Health of { id : int }  (** readiness probe *)

type reject =
  | Overloaded  (** job queue full — shed instead of queueing unboundedly *)
  | Deadline_exceeded
  | Bad_request of string

type answer = {
  rows : int array list;  (** this tuple's answer slice, sorted *)
  row_arity : int;
  cost : Cost.snapshot;  (** per-request online op counts *)
}

type cache_health = {
  cache_budget : int;  (** configured answer-cache budget; 0 = no cache *)
  cache_used : int;  (** stored tuples currently held by the cache *)
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
}

val no_cache : cache_health
(** The all-zero block a cache-less server reports. *)

type health = {
  ready : bool;
  space : int;  (** intrinsic stored singletons of the served engine *)
  agg_space : int;
      (** stored aggregate-table rows (protocol v7); with [space] and
          the cache block this completes the engine's memory story —
          their sum is [Engine.total_space] on the serving side *)
  workers : int;
  queue_capacity : int;
  queue_depth : int;
      (** jobs waiting in the bounded queue at reply time (protocol v5) *)
  uptime_ns : int;
      (** monotonic nanoseconds since the serving process started
          (protocol v5).  A router compares this across polls: a value
          that went {e backwards} means the shard restarted, so any
          health or cache statistics it aggregated before are stale and
          must be discarded. *)
  cache : cache_health;  (** answer-cache occupancy and hit counts *)
  io_backend : string;
      (** the readiness backend the server's IO loop runs on ([epoll] or
          [select], protocol v4) — benchmarks assert which loop they
          measured *)
  shards : (string * health) list;
      (** per-shard health blocks, named (protocol v5).  Empty for a
          replica; a router reports one block per shard and fleet-level
          sums in the top-level fields.  Nesting is bounded (depth 4) at
          decode time. *)
}

type response =
  | Answers of { id : int; answers : answer list }
      (** in the order of the request's tuples *)
  | Updated of { id : int; epoch : int; applied : int; cost : Cost.snapshot }
      (** [epoch] is the engine's delta epoch after the batch; [applied]
          counts the effective (non-redundant) deltas; [cost] is the
          maintenance op count *)
  | Rejected of { id : int; reject : reject }
  | Stats_reply of { id : int; json : string }
      (** the server's [Obs.trace] document, serialized *)
  | Health_reply of { id : int; health : health }
  | Agg_reply of { id : int; value : int; cost : Cost.snapshot }
      (** the scalar aggregate of an [Agg] request (protocol v6).  The
          value may be any [int], including the tropical ±infinity
          sentinels ([max_int]/[min_int]) — the wire layout tags them
          specially since the zigzag varint cannot carry them. *)

(** {1 Encoding / decoding}

    Encoders produce the [body ^ crc] blob (no length prefix); decoders
    take exactly that blob. *)

val encode_request : request -> string
val decode_request : string -> (request, error) result
val encode_response : response -> string
val decode_response : string -> (response, error) result

(** {1 Zero-copy encoding / decoding}

    The server's hot path: encoders append a {e complete} wire image —
    length prefix, body, CRC — to a caller-owned (typically reused)
    {!Netbuf.t}, so a steady-state response allocates nothing; decoders
    read a frame blob in place out of a larger buffer (the connection's
    read buffer) without slicing it.  Layouts are byte-identical to the
    string encoders above — both are generated from one body writer. *)

val encode_request_into : Netbuf.t -> request -> unit
val encode_response_into : Netbuf.t -> response -> unit

val decode_request_sub :
  string -> pos:int -> len:int -> (request, error) result
(** Decode the [body ^ crc] blob at [[pos, pos+len)]. *)

val decode_response_sub :
  string -> pos:int -> len:int -> (response, error) result

val peek_len : string -> pos:int -> int
(** The u32 LE length prefix at [pos] ([pos + 4] bytes must exist). *)

val hello : string
(** The blob each peer writes immediately after connect. *)

val check_hello : string -> (unit, error) result

(** {1 Blocking frame I/O}

    Used by the client and the load generator; the server's accept loop
    does its own non-blocking buffering over the same framing layout
    (u32 length prefix + blob). *)

val write_frame : Unix.file_descr -> string -> (unit, error) result
(** Length prefix + blob, written fully. *)

val read_frame : Unix.file_descr -> (string, error) result
(** Read one length prefix and exactly that many bytes. *)

val write_hello : Unix.file_descr -> (unit, error) result
val read_hello : Unix.file_descr -> (unit, error) result
