(* Growable byte buffer for the zero-copy frame path.

   [Buffer.t] cannot hand out its backing bytes, so every frame encoded
   through it costs a [Buffer.contents] copy plus the string
   concatenations of sealing and length-prefixing — four copies of every
   response on the old path.  This module is the same growable sink but
   with the backing [Bytes.t] exposed, so a worker encodes the complete
   wire image (length prefix + body + CRC) into one reusable buffer and
   the socket write reads straight out of it.

   Buffers are pooled: connections borrow their read/write buffers from
   a shared free list and return them on close, so steady-state
   connection churn allocates nothing. *)

module Crc32 = Stt_store.Crc32

type t = { mutable data : Bytes.t; mutable len : int }

let create capacity = { data = Bytes.create (max 16 capacity); len = 0 }
let length b = b.len
let clear b = b.len <- 0
let data b = b.data

let ensure b n =
  let cap = Bytes.length b.data in
  if cap - b.len < n then begin
    let cap' = ref (2 * cap) in
    while !cap' - b.len < n do
      cap' := !cap' * 2
    done;
    let d = Bytes.create !cap' in
    Bytes.blit b.data 0 d 0 b.len;
    b.data <- d
  end

let add_u8 b v =
  ensure b 1;
  Bytes.unsafe_set b.data b.len (Char.unsafe_chr (v land 0xFF));
  b.len <- b.len + 1

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Netbuf.add_u32";
  ensure b 4;
  Bytes.unsafe_set b.data b.len (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b.data (b.len + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b.data (b.len + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b.data (b.len + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF));
  b.len <- b.len + 4

(* patch a u32 written earlier — the frame's length prefix is reserved
   before the body length is known *)
let set_u32 b ~pos v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Netbuf.set_u32";
  if pos < 0 || pos + 4 > b.len then invalid_arg "Netbuf.set_u32: out of range";
  Bytes.unsafe_set b.data pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b.data (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b.data (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b.data (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let rec add_uint b v =
  if v < 0 then invalid_arg "Netbuf.add_uint: negative"
  else if v < 0x80 then add_u8 b v
  else begin
    add_u8 b (0x80 lor (v land 0x7F));
    add_uint b (v lsr 7)
  end

(* zigzag, same layout as Codec.write_int *)
let add_int b v = add_uint b ((v lsl 1) lxor (v asr 62))
let add_bool b v = add_u8 b (if v then 1 else 0)

let add_string b s =
  add_uint b (String.length s);
  let n = String.length s in
  ensure b n;
  Bytes.blit_string s 0 b.data b.len n;
  b.len <- b.len + n

let add_list b f xs =
  add_uint b (List.length xs);
  List.iter f xs

(* column-major delta rows, same layout as Codec.write_rows *)
let add_rows b ~arity rows =
  add_uint b (List.length rows);
  for j = 0 to arity - 1 do
    let prev = ref 0 in
    List.iter
      (fun row ->
        if Array.length row <> arity then
          invalid_arg "Netbuf.add_rows: arity mismatch";
        add_int b (row.(j) - !prev);
        prev := row.(j))
      rows
  done

let crc32 b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > b.len then invalid_arg "Netbuf.crc32";
  (* the buffer is not mutated while the checksum walks it *)
  Crc32.finish (Crc32.update Crc32.init (Bytes.unsafe_to_string b.data) ~pos ~len)

let contents b = Bytes.sub_string b.data 0 b.len

(* ------------------------------------------------------------------ *)
(* resumable nonblocking writes                                         *)
(* ------------------------------------------------------------------ *)

(* Pending bytes of a connection live in [data.(0 .. len)] with [pos]
   bytes already on the wire; [flush] writes the rest without blocking
   and compacts once drained, so a slow reader costs memory, not a
   stalled worker. *)

type flush = Flushed | Again | Gone

let consume_front b n =
  if n < 0 || n > b.len then invalid_arg "Netbuf.consume_front";
  if n > 0 then begin
    Bytes.blit b.data n b.data 0 (b.len - n);
    b.len <- b.len - n
  end

let append b src ~pos ~len =
  ensure b len;
  Bytes.blit src pos b.data b.len len;
  b.len <- b.len + len

let rec flush fd b =
  if b.len = 0 then Flushed
  else
    match Unix.write fd b.data 0 b.len with
    | 0 -> Gone
    | n ->
        consume_front b n;
        if b.len = 0 then Flushed else flush fd b
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Again
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush fd b
    | exception Unix.Unix_error (_, _, _) -> Gone

(* write [src.(pos .. pos+len)] directly; whatever does not fit in the
   socket buffer is stashed into [pending] for the IO loop to resume *)
let write_or_stash fd ~pending src ~pos ~len =
  if pending.len > 0 then begin
    (* keep responses ordered: once anything is queued, append *)
    append pending src ~pos ~len;
    Again
  end
  else
    let off = ref pos and left = ref len in
    let rec go () =
      if !left = 0 then Flushed
      else
        match Unix.write fd src !off !left with
        | 0 -> Gone
        | n ->
            off := !off + n;
            left := !left - n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            append pending src ~pos:!off ~len:!left;
            Again
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> Gone
    in
    go ()

(* ------------------------------------------------------------------ *)
(* buffer pool                                                          *)
(* ------------------------------------------------------------------ *)

let make_buf = create

module Pool = struct
  type buf = t

  type t = {
    m : Mutex.t;
    mutable free : buf list;
    mutable free_n : int;
    max_free : int;
    capacity : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(max_free = 64) ~capacity () =
    {
      m = Mutex.create ();
      free = [];
      free_n = 0;
      max_free;
      capacity;
      hits = 0;
      misses = 0;
    }

  let acquire p =
    Mutex.protect p.m (fun () ->
        match p.free with
        | b :: rest ->
            p.free <- rest;
            p.free_n <- p.free_n - 1;
            p.hits <- p.hits + 1;
            b
        | [] ->
            p.misses <- p.misses + 1;
            make_buf p.capacity)

  let release p b =
    clear b;
    Mutex.protect p.m (fun () ->
        if p.free_n < p.max_free then begin
          p.free <- b :: p.free;
          p.free_n <- p.free_n + 1
        end)

  let stats p = Mutex.protect p.m (fun () -> (p.hits, p.misses))
end
