(** Role-agnostic serving core: the accept/IO-loop/drain machinery
    shared by the replica role ({!Server}) and the sharded tier's router
    ([Stt_shard.Router]).

    The core moves frames; a {e role} decides what they mean.  On every
    decoded request the core calls the role's [handle] callback (on the
    IO domain, so it must not block); the role replies inline with
    {!reply} or defers work to the worker-domain pool with {!enqueue}.
    Role state lives in the closures the role passes to {!start} — the
    core holds none of it.

    Threading contract (inherited by both roles):
    - the IO domain owns the event loop, read buffers, and fd teardown;
    - jobs run on worker domains and may call {!reply} freely (writes
      are serialized per connection; refused bytes are stashed and
      flushed by the IO domain on writability);
    - {!stop} begins a graceful drain: no new connections or reads,
      queued jobs still run and their responses are flushed, then
      {!wait} joins every domain. *)

type t
(** A running core (listening socket + IO domain + worker pool). *)

type conn
(** One accepted connection.  Valid for the connection's lifetime; after
    the peer disappears, {!reply} on it is a silent no-op. *)

type stats = {
  connections : int;  (** accepted over the lifetime *)
  received : int;  (** Answer/Update requests seen (role-counted) *)
  answered : int;
  updated : int;
  rejected_overload : int;
  rejected_deadline : int;
  bad_requests : int;  (** undecodable frames, bad hellos, handler errors *)
}

val start :
  ?host:string ->
  port:int ->
  workers:int ->
  queue_capacity:int ->
  ?io_backend:Evloop.backend ->
  (t -> conn -> now:float -> Frame.request -> unit) ->
  t
(** [start ~port ~workers ~queue_capacity handle] binds (port [0] picks
    an ephemeral port — read it back with {!port}), spawns the worker
    pool and the IO domain, and calls [handle core conn ~now req] on the
    IO domain for every request decoded off a connection.  [now] is the
    [Unix.gettimeofday] at decode time (for deadline arithmetic).

    Raises [Invalid_argument] on a non-positive [workers] or
    [queue_capacity]; [Unix.Unix_error] if the bind fails. *)

(** {1 Introspection} *)

val port : t -> int
val io_backend : t -> string
val workers : t -> int
val queue_capacity : t -> int

val queue_depth : t -> int
(** Jobs waiting in the bounded queue right now (protocol v5 Health). *)

val uptime_ns : t -> int
(** Monotonic nanoseconds since {!start} (protocol v5 Health) — never
    goes backwards, so a router polling it detects restarts. *)

val stats : t -> stats

(** {1 Role surface} *)

val reply : t -> conn -> Frame.response -> unit
(** Encode into the calling domain's scratch buffer and write (or stash)
    the frame.  Callable from any domain; serialized per connection. *)

val enqueue : t -> (unit -> unit) -> bool
(** Push a job for the worker pool; [false] means the bounded queue is
    full and the role should shed ([Rejected Overloaded]).  A job that
    raises kills its worker domain — roles catch their own errors. *)

val with_obs : t -> (unit -> 'a) -> 'a
(** Run under the core's shared Obs context (serialized) — roles adopt
    finished per-job contexts and bump role metrics through this. *)

val trace_json : t -> string
(** The shared context's [Obs.trace], serialized. *)

(** {1 Role counters}

    The core counts connections and undecodable frames itself; what a
    {e valid} request amounts to is role logic, so roles bump these. *)

val note_received : t -> unit
val note_answered : t -> unit
val note_updated : t -> unit
val note_overload : t -> unit
val note_deadline : t -> unit
val note_bad : t -> unit

(** {1 Lifecycle} *)

val stop : t -> unit
(** Begin graceful drain (idempotent, signal-safe). *)

val stopping : t -> bool

val wait : t -> stats
(** Join the IO domain and workers, close every connection, and return
    the final counters.  Call after {!stop}. *)
