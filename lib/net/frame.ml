open Stt_relation
module Codec = Stt_store.Codec
module Crc32 = Stt_store.Crc32

let magic = "\x89STTWIRE"

(* v2: Health_reply grew the answer-cache block (budget/used/entries/
   hits/misses).  v3: Update/Updated frames for incremental base-data
   deltas.  v4: Health_reply reports the server's IO backend (epoll vs
   select), so benchmarks can assert which loop they measured.  v5:
   Health_reply carries the live queue depth, a monotonic uptime_ns (so
   a router can detect a restarted shard: uptime going backwards means
   the process it aggregated last time is gone), and a recursive
   per-shard health list (empty for replicas; a router reports one block
   per shard plus fleet-level sums).  v6: Agg/Agg_reply frames for
   semiring aggregate requests — one multi-tuple request folds to a
   single scalar on the server, so the reply carries a value and a cost
   instead of rows.  v7: the health block carries [agg_space] (stored
   aggregate-table rows) so the fleet's full memory story — S-views,
   answer cache, aggregate tables — travels in one reply.  Hellos must
   match exactly, so older peers are refused with Version_skew instead
   of misparsing unknown frames. *)
let protocol_version = 7
let hello_len = String.length magic + 4
let max_frame_len = 1 lsl 26

type error =
  | Io_error of string
  | Closed
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Truncated of string
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Io_error msg -> "io error: " ^ msg
  | Closed -> "connection closed by peer"
  | Bad_magic -> "not an stt-net peer (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "peer speaks protocol version %d, this build expects %d"
        found expected
  | Truncated ctx -> "truncated frame: " ^ ctx
  | Checksum_mismatch -> "frame checksum mismatch"
  | Malformed ctx -> "malformed frame: " ^ ctx

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* ------------------------------------------------------------------ *)
(* frame types                                                          *)
(* ------------------------------------------------------------------ *)

type update = { urel : string; utuple : int array; uadd : bool }

type request =
  | Answer of {
      id : int;
      deadline_us : int;
      arity : int;
      tuples : int array list;
    }
  | Agg of {
      id : int;
      deadline_us : int;
      kind : int;  (** a {!Stt_semiring.Semiring.to_tag} value, 1..4 *)
      arity : int;
      tuples : int array list;
    }
  | Update of { id : int; deltas : update list }
  | Stats of { id : int }
  | Health of { id : int }

type reject = Overloaded | Deadline_exceeded | Bad_request of string

type answer = { rows : int array list; row_arity : int; cost : Cost.snapshot }

type cache_health = {
  cache_budget : int;
  cache_used : int;
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
}

let no_cache =
  {
    cache_budget = 0;
    cache_used = 0;
    cache_entries = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

type health = {
  ready : bool;
  space : int;
  agg_space : int;
  workers : int;
  queue_capacity : int;
  queue_depth : int;
  uptime_ns : int;
  cache : cache_health;
  io_backend : string;
  shards : (string * health) list;
}

type response =
  | Answers of { id : int; answers : answer list }
  | Updated of { id : int; epoch : int; applied : int; cost : Cost.snapshot }
  | Rejected of { id : int; reject : reject }
  | Stats_reply of { id : int; json : string }
  | Health_reply of { id : int; health : health }
  | Agg_reply of { id : int; value : int; cost : Cost.snapshot }

let tag_answer = 0x01
let tag_stats = 0x02
let tag_health = 0x03
let tag_update = 0x04
let tag_agg = 0x05
let tag_answers = 0x81
let tag_rejected = 0x82
let tag_stats_reply = 0x83
let tag_health_reply = 0x84
let tag_updated = 0x85
let tag_agg_reply = 0x86

(* ------------------------------------------------------------------ *)
(* body layout, abstracted over the byte sink                           *)
(* ------------------------------------------------------------------ *)

(* Frames are encoded through two sinks: the Codec encoder (blocking
   client path, allocates per frame) and a reusable Netbuf (server's
   zero-copy path).  One functor writes the body for both, so the
   layouts cannot drift — the round-trip tests cross-decode them. *)

module type SINK = sig
  type t

  val u8 : t -> int -> unit
  val uint : t -> int -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  val rows : t -> arity:int -> int array list -> unit
end

module Codec_sink = struct
  type t = Codec.encoder

  let u8 = Codec.write_u8
  let uint = Codec.write_uint
  let bool = Codec.write_bool
  let string = Codec.write_string
  let list = Codec.write_list
  let int = Codec.write_int

  (* arity-0 rows carry no bytes, which trips the codec's
     count-vs-payload guard; a bare count is enough (boolean answers) *)
  let rows e ~arity rs =
    if arity = 0 then uint e (List.length rs) else Codec.write_rows e ~arity rs
end

module Netbuf_sink = struct
  type t = Netbuf.t

  let u8 = Netbuf.add_u8
  let uint = Netbuf.add_uint
  let bool = Netbuf.add_bool
  let string = Netbuf.add_string
  let list = Netbuf.add_list
  let int = Netbuf.add_int

  let rows b ~arity rs =
    if arity = 0 then uint b (List.length rs) else Netbuf.add_rows b ~arity rs
end

module Body (S : sig
  include SINK

  val int : t -> int -> unit
end) =
struct
  let cost e (c : Cost.snapshot) =
    S.uint e c.Cost.probes;
    S.uint e c.Cost.tuples;
    S.uint e c.Cost.scans

  (* semiring values: the zigzag varint cannot carry the tropical
     ±infinity sentinels (MIN's "no path" is [max_int]), so they get
     their own tag bytes *)
  let value e v =
    if v = max_int then S.u8 e 1
    else if v = min_int then S.u8 e 2
    else begin
      S.u8 e 0;
      S.int e v
    end

  let request e = function
    | Answer { id; deadline_us; arity; tuples } ->
        S.u8 e tag_answer;
        S.uint e id;
        S.uint e deadline_us;
        S.uint e arity;
        S.rows e ~arity tuples
    | Agg { id; deadline_us; kind; arity; tuples } ->
        S.u8 e tag_agg;
        S.uint e id;
        S.uint e deadline_us;
        S.u8 e kind;
        S.uint e arity;
        S.rows e ~arity tuples
    | Update { id; deltas } ->
        S.u8 e tag_update;
        S.uint e id;
        S.list e
          (fun { urel; utuple; uadd } ->
            S.string e urel;
            S.uint e (Array.length utuple);
            Array.iter (S.int e) utuple;
            S.bool e uadd)
          deltas
    | Stats { id } ->
        S.u8 e tag_stats;
        S.uint e id
    | Health { id } ->
        S.u8 e tag_health;
        S.uint e id

  let rec response e = function
    | Answers { id; answers } ->
        S.u8 e tag_answers;
        S.uint e id;
        S.list e
          (fun { rows; row_arity; cost = c } ->
            S.uint e row_arity;
            S.rows e ~arity:row_arity rows;
            cost e c)
          answers
    | Updated { id; epoch; applied; cost = c } ->
        S.u8 e tag_updated;
        S.uint e id;
        S.uint e epoch;
        S.uint e applied;
        cost e c
    | Rejected { id; reject } -> (
        S.u8 e tag_rejected;
        S.uint e id;
        match reject with
        | Overloaded -> S.u8 e 1
        | Deadline_exceeded -> S.u8 e 2
        | Bad_request msg ->
            S.u8 e 3;
            S.string e msg)
    | Stats_reply { id; json } ->
        S.u8 e tag_stats_reply;
        S.uint e id;
        S.string e json
    | Health_reply { id; health } ->
        S.u8 e tag_health_reply;
        S.uint e id;
        health_block e health
    | Agg_reply { id; value = v; cost = c } ->
        S.u8 e tag_agg_reply;
        S.uint e id;
        value e v;
        cost e c

  (* recursive: a router's block nests one sub-block per shard *)
  and health_block e (h : health) =
    S.bool e h.ready;
    S.uint e h.space;
    S.uint e h.agg_space;
    S.uint e h.workers;
    S.uint e h.queue_capacity;
    S.uint e h.queue_depth;
    S.uint e h.uptime_ns;
    S.uint e h.cache.cache_budget;
    S.uint e h.cache.cache_used;
    S.uint e h.cache.cache_entries;
    S.uint e h.cache.cache_hits;
    S.uint e h.cache.cache_misses;
    S.string e h.io_backend;
    S.list e
      (fun (name, sub) ->
        S.string e name;
        health_block e sub)
      h.shards
end

module Codec_body = Body (Codec_sink)
module Netbuf_body = Body (Netbuf_sink)

(* ------------------------------------------------------------------ *)
(* encoding                                                             *)
(* ------------------------------------------------------------------ *)

(* every frame blob is body ^ crc32(body), so a flipped byte anywhere in
   a blob is caught before any field is trusted *)
let seal body =
  let e = Codec.encoder () in
  Codec.write_u32 e (Crc32.string body);
  body ^ Codec.contents e

let encode_body f =
  let e = Codec.encoder () in
  f e;
  seal (Codec.contents e)

let read_rows_any d ~arity =
  if arity = 0 then begin
    let n = Codec.read_uint d in
    if n > 1 lsl 30 then raise (Codec.Corrupt "row count");
    List.init n (fun _ -> [||])
  end
  else Codec.read_rows d ~arity

let encode_request req = encode_body @@ fun e -> Codec_body.request e req
let encode_response resp = encode_body @@ fun e -> Codec_body.response e resp

(* Append a complete wire image — length prefix, body, CRC — to [b]
   without intermediate copies: the prefix is reserved up front and
   patched once the body length is known, and the CRC runs over the
   buffer in place.  The caller owns [b] (typically a per-worker scratch
   buffer) and writes the socket straight from [Netbuf.data]. *)
let frame_into b f =
  let start = Netbuf.length b in
  Netbuf.add_u32 b 0;
  f ();
  let body_pos = start + 4 in
  let body_len = Netbuf.length b - body_pos in
  let crc = Netbuf.crc32 b ~pos:body_pos ~len:body_len in
  Netbuf.add_u32 b crc;
  Netbuf.set_u32 b ~pos:start (body_len + 4)

let encode_request_into b req =
  frame_into b (fun () -> Netbuf_body.request b req)

let encode_response_into b resp =
  frame_into b (fun () -> Netbuf_body.response b resp)

(* ------------------------------------------------------------------ *)
(* decoding                                                             *)
(* ------------------------------------------------------------------ *)

(* u32 LE at [pos] — how the server reads a length prefix out of its
   connection buffer without slicing it *)
let peek_len src ~pos = Codec.read_u32 (Codec.decoder_sub src ~pos ~len:4)

(* verify the trailing CRC over the range, then run the body decoder on
   a bounded sub-decoder — no copy of the body is taken; the Codec's
   exceptions and leftover bytes map to the typed errors *)
let decode_body_sub what src ~pos ~len f =
  if len < 4 then Error (Truncated (what ^ " shorter than its checksum"))
  else
    let body_len = len - 4 in
    let expect = Codec.read_u32 (Codec.decoder_sub src ~pos:(pos + body_len) ~len:4) in
    let actual = Crc32.finish (Crc32.update Crc32.init src ~pos ~len:body_len) in
    if expect <> actual then Error Checksum_mismatch
    else
      let d = Codec.decoder_sub src ~pos ~len:body_len in
      match
        let v = f d in
        Codec.expect_end d what;
        v
      with
      | v -> Ok v
      | exception Codec.Short ctx -> Error (Truncated ctx)
      | exception Codec.Corrupt ctx -> Error (Malformed ctx)

let decode_body what blob f =
  decode_body_sub what blob ~pos:0 ~len:(String.length blob) f

let read_arity what d =
  let arity = Codec.read_uint d in
  if arity > 64 then
    raise (Codec.Corrupt (Printf.sprintf "%s arity %d" what arity))
  else arity

let read_value d =
  match Codec.read_u8 d with
  | 0 -> Codec.read_int d
  | 1 -> max_int
  | 2 -> min_int
  | n -> raise (Codec.Corrupt (Printf.sprintf "semiring value tag %d" n))

let request_of_decoder d =
  match Codec.read_u8 d with
  | t when t = tag_answer ->
      let id = Codec.read_uint d in
      let deadline_us = Codec.read_uint d in
      let arity = read_arity "access" d in
      let tuples = read_rows_any d ~arity in
      Answer { id; deadline_us; arity; tuples }
  | t when t = tag_agg ->
      let id = Codec.read_uint d in
      let deadline_us = Codec.read_uint d in
      let kind = Codec.read_u8 d in
      if kind < 1 || kind > 4 then
        raise (Codec.Corrupt (Printf.sprintf "aggregate kind %d" kind));
      let arity = read_arity "access" d in
      let tuples = read_rows_any d ~arity in
      Agg { id; deadline_us; kind; arity; tuples }
  | t when t = tag_update ->
      let id = Codec.read_uint d in
      let deltas =
        Codec.read_list d (fun () ->
            let urel = Codec.read_string d in
            let arity = read_arity "update" d in
            let utuple = Array.make arity 0 in
            for i = 0 to arity - 1 do
              utuple.(i) <- Codec.read_int d
            done;
            let uadd = Codec.read_bool d in
            { urel; utuple; uadd })
      in
      Update { id; deltas }
  | t when t = tag_stats -> Stats { id = Codec.read_uint d }
  | t when t = tag_health -> Health { id = Codec.read_uint d }
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown request tag 0x%02x" t))

let read_cost d =
  let probes = Codec.read_uint d in
  let tuples = Codec.read_uint d in
  let scans = Codec.read_uint d in
  { Cost.probes; tuples; scans }

let rec response_of_decoder d =
  match Codec.read_u8 d with
  | t when t = tag_answers ->
      let id = Codec.read_uint d in
      let answers =
        Codec.read_list d (fun () ->
            let row_arity = read_arity "answer" d in
            let rows = read_rows_any d ~arity:row_arity in
            let cost = read_cost d in
            { rows; row_arity; cost })
      in
      Answers { id; answers }
  | t when t = tag_updated ->
      let id = Codec.read_uint d in
      let epoch = Codec.read_uint d in
      let applied = Codec.read_uint d in
      let cost = read_cost d in
      Updated { id; epoch; applied; cost }
  | t when t = tag_rejected ->
      let id = Codec.read_uint d in
      let reject =
        match Codec.read_u8 d with
        | 1 -> Overloaded
        | 2 -> Deadline_exceeded
        | 3 -> Bad_request (Codec.read_string d)
        | n -> raise (Codec.Corrupt (Printf.sprintf "reject code %d" n))
      in
      Rejected { id; reject }
  | t when t = tag_stats_reply ->
      let id = Codec.read_uint d in
      Stats_reply { id; json = Codec.read_string d }
  | t when t = tag_health_reply ->
      let id = Codec.read_uint d in
      Health_reply { id; health = read_health d ~depth:0 }
  | t when t = tag_agg_reply ->
      let id = Codec.read_uint d in
      let value = read_value d in
      let cost = read_cost d in
      Agg_reply { id; value; cost }
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown response tag 0x%02x" t))

(* a fleet is one router over replicas, so legitimate nesting is depth 1;
   the guard keeps a hostile frame from recursing the decoder deep *)
and read_health d ~depth =
  if depth > 4 then raise (Codec.Corrupt "health nesting too deep");
  let ready = Codec.read_bool d in
  let space = Codec.read_uint d in
  let agg_space = Codec.read_uint d in
  let workers = Codec.read_uint d in
  let queue_capacity = Codec.read_uint d in
  let queue_depth = Codec.read_uint d in
  let uptime_ns = Codec.read_uint d in
  let cache_budget = Codec.read_uint d in
  let cache_used = Codec.read_uint d in
  let cache_entries = Codec.read_uint d in
  let cache_hits = Codec.read_uint d in
  let cache_misses = Codec.read_uint d in
  let io_backend = Codec.read_string d in
  let shards =
    Codec.read_list d (fun () ->
        let name = Codec.read_string d in
        (name, read_health d ~depth:(depth + 1)))
  in
  {
    ready;
    space;
    agg_space;
    workers;
    queue_capacity;
    queue_depth;
    uptime_ns;
    cache =
      { cache_budget; cache_used; cache_entries; cache_hits; cache_misses };
    io_backend;
    shards;
  }

let decode_request blob = decode_body "request" blob request_of_decoder
let decode_response blob = decode_body "response" blob response_of_decoder

let decode_request_sub src ~pos ~len =
  decode_body_sub "request" src ~pos ~len request_of_decoder

let decode_response_sub src ~pos ~len =
  decode_body_sub "response" src ~pos ~len response_of_decoder

(* ------------------------------------------------------------------ *)
(* hello                                                                *)
(* ------------------------------------------------------------------ *)

let hello =
  let e = Codec.encoder () in
  Codec.write_u32 e protocol_version;
  magic ^ Codec.contents e

let check_hello s =
  if String.length s <> hello_len then Error (Truncated "hello")
  else if String.sub s 0 (String.length magic) <> magic then Error Bad_magic
  else
    let d = Codec.decoder (String.sub s (String.length magic) 4) in
    let found = Codec.read_u32 d in
    if found <> protocol_version then
      Error (Version_skew { found; expected = protocol_version })
    else Ok ()

(* ------------------------------------------------------------------ *)
(* blocking frame I/O                                                   *)
(* ------------------------------------------------------------------ *)

let rec really_write fd s pos len =
  if len = 0 then Ok ()
  else
    match Unix.write_substring fd s pos len with
    | 0 -> Error Closed
    | n -> really_write fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd s pos len
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> Error Closed
    | exception Unix.Unix_error (e, _, _) ->
        Error (Io_error (Unix.error_message e))

let really_read fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf pos (n - pos) with
      | 0 -> if pos = 0 then Error Closed else Error (Truncated "frame body")
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error Closed
      | exception Unix.Unix_error (e, _, _) ->
          Error (Io_error (Unix.error_message e))
  in
  go 0

let write_frame fd blob =
  let e = Codec.encoder () in
  Codec.write_u32 e (String.length blob);
  let framed = Codec.contents e ^ blob in
  really_write fd framed 0 (String.length framed)

let read_frame fd =
  match really_read fd 4 with
  | Error _ as e -> e
  | Ok prefix -> (
      let len = Codec.read_u32 (Codec.decoder prefix) in
      if len < 4 || len > max_frame_len then
        Error (Malformed (Printf.sprintf "frame length %d" len))
      else
        match really_read fd len with
        | Error Closed -> Error (Truncated "frame body")
        | r -> r)

let write_hello fd = really_write fd hello 0 (String.length hello)

let read_hello fd =
  match really_read fd hello_len with
  | Error Closed -> Error Closed
  | Error _ as e -> e
  | Ok s -> check_hello s
