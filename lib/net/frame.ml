open Stt_relation
module Codec = Stt_store.Codec
module Crc32 = Stt_store.Crc32

let magic = "\x89STTWIRE"

(* v2: Health_reply grew the answer-cache block (budget/used/entries/
   hits/misses).  v3: Update/Updated frames for incremental base-data
   deltas.  Hellos must match exactly, so older peers are refused with
   Version_skew instead of misparsing unknown frames. *)
let protocol_version = 3
let hello_len = String.length magic + 4
let max_frame_len = 1 lsl 26

type error =
  | Io_error of string
  | Closed
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Truncated of string
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Io_error msg -> "io error: " ^ msg
  | Closed -> "connection closed by peer"
  | Bad_magic -> "not an stt-net peer (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "peer speaks protocol version %d, this build expects %d"
        found expected
  | Truncated ctx -> "truncated frame: " ^ ctx
  | Checksum_mismatch -> "frame checksum mismatch"
  | Malformed ctx -> "malformed frame: " ^ ctx

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* ------------------------------------------------------------------ *)
(* frame types                                                          *)
(* ------------------------------------------------------------------ *)

type update = { urel : string; utuple : int array; uadd : bool }

type request =
  | Answer of {
      id : int;
      deadline_us : int;
      arity : int;
      tuples : int array list;
    }
  | Update of { id : int; deltas : update list }
  | Stats of { id : int }
  | Health of { id : int }

type reject = Overloaded | Deadline_exceeded | Bad_request of string

type answer = { rows : int array list; row_arity : int; cost : Cost.snapshot }

type cache_health = {
  cache_budget : int;
  cache_used : int;
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
}

let no_cache =
  {
    cache_budget = 0;
    cache_used = 0;
    cache_entries = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

type health = {
  ready : bool;
  space : int;
  workers : int;
  queue_capacity : int;
  cache : cache_health;
}

type response =
  | Answers of { id : int; answers : answer list }
  | Updated of { id : int; epoch : int; applied : int; cost : Cost.snapshot }
  | Rejected of { id : int; reject : reject }
  | Stats_reply of { id : int; json : string }
  | Health_reply of { id : int; health : health }

let tag_answer = 0x01
let tag_stats = 0x02
let tag_health = 0x03
let tag_update = 0x04
let tag_answers = 0x81
let tag_rejected = 0x82
let tag_stats_reply = 0x83
let tag_health_reply = 0x84
let tag_updated = 0x85

(* ------------------------------------------------------------------ *)
(* encoding                                                             *)
(* ------------------------------------------------------------------ *)

(* every frame blob is body ^ crc32(body), so a flipped byte anywhere in
   a blob is caught before any field is trusted *)
let seal body =
  let e = Codec.encoder () in
  Codec.write_u32 e (Crc32.string body);
  body ^ Codec.contents e

let encode_body f =
  let e = Codec.encoder () in
  f e;
  seal (Codec.contents e)

(* arity-0 rows carry no bytes, which trips the codec's count-vs-payload
   guard; a bare count is enough for them (boolean answers) *)
let write_rows_any e ~arity rows =
  if arity = 0 then Codec.write_uint e (List.length rows)
  else Codec.write_rows e ~arity rows

let read_rows_any d ~arity =
  if arity = 0 then begin
    let n = Codec.read_uint d in
    if n > 1 lsl 30 then raise (Codec.Corrupt "row count");
    List.init n (fun _ -> [||])
  end
  else Codec.read_rows d ~arity

let encode_request req =
  encode_body @@ fun e ->
  match req with
  | Answer { id; deadline_us; arity; tuples } ->
      Codec.write_u8 e tag_answer;
      Codec.write_uint e id;
      Codec.write_uint e deadline_us;
      Codec.write_uint e arity;
      write_rows_any e ~arity tuples
  | Update { id; deltas } ->
      Codec.write_u8 e tag_update;
      Codec.write_uint e id;
      Codec.write_list e
        (fun { urel; utuple; uadd } ->
          Codec.write_string e urel;
          Codec.write_uint e (Array.length utuple);
          Array.iter (Codec.write_int e) utuple;
          Codec.write_bool e uadd)
        deltas
  | Stats { id } ->
      Codec.write_u8 e tag_stats;
      Codec.write_uint e id
  | Health { id } ->
      Codec.write_u8 e tag_health;
      Codec.write_uint e id

let write_cost e (c : Cost.snapshot) =
  Codec.write_uint e c.Cost.probes;
  Codec.write_uint e c.Cost.tuples;
  Codec.write_uint e c.Cost.scans

let encode_response resp =
  encode_body @@ fun e ->
  match resp with
  | Answers { id; answers } ->
      Codec.write_u8 e tag_answers;
      Codec.write_uint e id;
      Codec.write_list e
        (fun { rows; row_arity; cost } ->
          Codec.write_uint e row_arity;
          write_rows_any e ~arity:row_arity rows;
          write_cost e cost)
        answers
  | Updated { id; epoch; applied; cost } ->
      Codec.write_u8 e tag_updated;
      Codec.write_uint e id;
      Codec.write_uint e epoch;
      Codec.write_uint e applied;
      write_cost e cost
  | Rejected { id; reject } ->
      Codec.write_u8 e tag_rejected;
      Codec.write_uint e id;
      (match reject with
      | Overloaded -> Codec.write_u8 e 1
      | Deadline_exceeded -> Codec.write_u8 e 2
      | Bad_request msg ->
          Codec.write_u8 e 3;
          Codec.write_string e msg)
  | Stats_reply { id; json } ->
      Codec.write_u8 e tag_stats_reply;
      Codec.write_uint e id;
      Codec.write_string e json
  | Health_reply { id; health } ->
      Codec.write_u8 e tag_health_reply;
      Codec.write_uint e id;
      Codec.write_bool e health.ready;
      Codec.write_uint e health.space;
      Codec.write_uint e health.workers;
      Codec.write_uint e health.queue_capacity;
      Codec.write_uint e health.cache.cache_budget;
      Codec.write_uint e health.cache.cache_used;
      Codec.write_uint e health.cache.cache_entries;
      Codec.write_uint e health.cache.cache_hits;
      Codec.write_uint e health.cache.cache_misses

(* ------------------------------------------------------------------ *)
(* decoding                                                             *)
(* ------------------------------------------------------------------ *)

(* strip + verify the trailing CRC, then run the body decoder; the
   Codec's exceptions and leftover bytes map to the typed errors *)
let decode_body what blob f =
  let len = String.length blob in
  if len < 4 then Error (Truncated (what ^ " shorter than its checksum"))
  else
    let body = String.sub blob 0 (len - 4) in
    let crc = Codec.decoder (String.sub blob (len - 4) 4) in
    if Codec.read_u32 crc <> Crc32.string body then Error Checksum_mismatch
    else
      let d = Codec.decoder body in
      match
        let v = f d in
        Codec.expect_end d what;
        v
      with
      | v -> Ok v
      | exception Codec.Short ctx -> Error (Truncated ctx)
      | exception Codec.Corrupt ctx -> Error (Malformed ctx)

let read_arity what d =
  let arity = Codec.read_uint d in
  if arity > 64 then
    raise (Codec.Corrupt (Printf.sprintf "%s arity %d" what arity))
  else arity

let decode_request blob =
  decode_body "request" blob @@ fun d ->
  match Codec.read_u8 d with
  | t when t = tag_answer ->
      let id = Codec.read_uint d in
      let deadline_us = Codec.read_uint d in
      let arity = read_arity "access" d in
      let tuples = read_rows_any d ~arity in
      Answer { id; deadline_us; arity; tuples }
  | t when t = tag_update ->
      let id = Codec.read_uint d in
      let deltas =
        Codec.read_list d (fun () ->
            let urel = Codec.read_string d in
            let arity = read_arity "update" d in
            let utuple = Array.make arity 0 in
            for i = 0 to arity - 1 do
              utuple.(i) <- Codec.read_int d
            done;
            let uadd = Codec.read_bool d in
            { urel; utuple; uadd })
      in
      Update { id; deltas }
  | t when t = tag_stats -> Stats { id = Codec.read_uint d }
  | t when t = tag_health -> Health { id = Codec.read_uint d }
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown request tag 0x%02x" t))

let read_cost d =
  let probes = Codec.read_uint d in
  let tuples = Codec.read_uint d in
  let scans = Codec.read_uint d in
  { Cost.probes; tuples; scans }

let decode_response blob =
  decode_body "response" blob @@ fun d ->
  match Codec.read_u8 d with
  | t when t = tag_answers ->
      let id = Codec.read_uint d in
      let answers =
        Codec.read_list d (fun () ->
            let row_arity = read_arity "answer" d in
            let rows = read_rows_any d ~arity:row_arity in
            let cost = read_cost d in
            { rows; row_arity; cost })
      in
      Answers { id; answers }
  | t when t = tag_updated ->
      let id = Codec.read_uint d in
      let epoch = Codec.read_uint d in
      let applied = Codec.read_uint d in
      let cost = read_cost d in
      Updated { id; epoch; applied; cost }
  | t when t = tag_rejected ->
      let id = Codec.read_uint d in
      let reject =
        match Codec.read_u8 d with
        | 1 -> Overloaded
        | 2 -> Deadline_exceeded
        | 3 -> Bad_request (Codec.read_string d)
        | n -> raise (Codec.Corrupt (Printf.sprintf "reject code %d" n))
      in
      Rejected { id; reject }
  | t when t = tag_stats_reply ->
      let id = Codec.read_uint d in
      Stats_reply { id; json = Codec.read_string d }
  | t when t = tag_health_reply ->
      let id = Codec.read_uint d in
      let ready = Codec.read_bool d in
      let space = Codec.read_uint d in
      let workers = Codec.read_uint d in
      let queue_capacity = Codec.read_uint d in
      let cache_budget = Codec.read_uint d in
      let cache_used = Codec.read_uint d in
      let cache_entries = Codec.read_uint d in
      let cache_hits = Codec.read_uint d in
      let cache_misses = Codec.read_uint d in
      Health_reply
        {
          id;
          health =
            {
              ready;
              space;
              workers;
              queue_capacity;
              cache =
                {
                  cache_budget;
                  cache_used;
                  cache_entries;
                  cache_hits;
                  cache_misses;
                };
            };
        }
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown response tag 0x%02x" t))

(* ------------------------------------------------------------------ *)
(* hello                                                                *)
(* ------------------------------------------------------------------ *)

let hello =
  let e = Codec.encoder () in
  Codec.write_u32 e protocol_version;
  magic ^ Codec.contents e

let check_hello s =
  if String.length s <> hello_len then Error (Truncated "hello")
  else if String.sub s 0 (String.length magic) <> magic then Error Bad_magic
  else
    let d = Codec.decoder (String.sub s (String.length magic) 4) in
    let found = Codec.read_u32 d in
    if found <> protocol_version then
      Error (Version_skew { found; expected = protocol_version })
    else Ok ()

(* ------------------------------------------------------------------ *)
(* blocking frame I/O                                                   *)
(* ------------------------------------------------------------------ *)

let rec really_write fd s pos len =
  if len = 0 then Ok ()
  else
    match Unix.write_substring fd s pos len with
    | 0 -> Error Closed
    | n -> really_write fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_write fd s pos len
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> Error Closed
    | exception Unix.Unix_error (e, _, _) ->
        Error (Io_error (Unix.error_message e))

let really_read fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf pos (n - pos) with
      | 0 -> if pos = 0 then Error Closed else Error (Truncated "frame body")
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error Closed
      | exception Unix.Unix_error (e, _, _) ->
          Error (Io_error (Unix.error_message e))
  in
  go 0

let write_frame fd blob =
  let e = Codec.encoder () in
  Codec.write_u32 e (String.length blob);
  let framed = Codec.contents e ^ blob in
  really_write fd framed 0 (String.length framed)

let read_frame fd =
  match really_read fd 4 with
  | Error _ as e -> e
  | Ok prefix -> (
      let len = Codec.read_u32 (Codec.decoder prefix) in
      if len < 4 || len > max_frame_len then
        Error (Malformed (Printf.sprintf "frame length %d" len))
      else
        match really_read fd len with
        | Error Closed -> Error (Truncated "frame body")
        | r -> r)

let write_hello fd = really_write fd hello 0 (String.length hello)

let read_hello fd =
  match really_read fd hello_len with
  | Error Closed -> Error Closed
  | Error _ as e -> e
  | Ok s -> check_hello s
