open Stt_relation
open Stt_hypergraph

type t = {
  rels : (string, int array list) Hashtbl.t;
  (* semiring weights, when a relation was registered with them; tuples
     without an entry fall back to the kind's default annotation *)
  weights : (string, int Tuple.Tbl.t) Hashtbl.t;
}

let create () : t = { rels = Hashtbl.create 8; weights = Hashtbl.create 4 }

let add t name tuples =
  (match tuples with
  | [] -> ()
  | first :: rest ->
      let arity = Array.length first in
      List.iter
        (fun tup ->
          if Array.length tup <> arity then
            invalid_arg "Db.add: mixed arities")
        rest);
  Hashtbl.remove t.weights name;
  Hashtbl.replace t.rels name tuples

let add_pairs t name pairs =
  add t name (List.map (fun (a, b) -> [| a; b |]) pairs)

let add_weighted t name rows =
  add t name (List.map fst rows);
  let w = Tuple.Tbl.create (max 16 (List.length rows)) in
  List.iter (fun (tup, weight) -> Tuple.Tbl.replace w tup weight) rows;
  Hashtbl.replace t.weights name w

let weight t name tup =
  match Hashtbl.find_opt t.weights name with
  | None -> None
  | Some w -> Tuple.Tbl.find_opt w tup

let mem t name = Hashtbl.mem t.rels name
let cardinal t name =
  match Hashtbl.find_opt t.rels name with None -> 0 | Some l -> List.length l

let size t = Hashtbl.fold (fun _ l acc -> max acc (List.length l)) t.rels 0

let relation t (atom : Cq.atom) =
  let tuples =
    match Hashtbl.find_opt t.rels atom.Cq.rel with
    | Some l -> l
    | None -> invalid_arg ("Db.relation: unknown relation " ^ atom.Cq.rel)
  in
  let schema = Schema.of_list atom.Cq.vars in
  let rel = Relation.create schema in
  Cost.with_counting false (fun () ->
      List.iter
        (fun tup ->
          Relation.add rel tup;
          match weight t atom.Cq.rel tup with
          | Some w -> Relation.annotate rel tup w
          | None -> ())
        tuples);
  rel

exception Too_big

(* natural join that aborts as soon as the output exceeds [limit],
   before the intermediate is fully materialized *)
let bounded_join limit a b =
  let a_schema = Relation.schema a and b_schema = Relation.schema b in
  let common = Schema.inter a_schema b_schema in
  let idx = Index.build b common in
  let extra_vars =
    List.filter (fun v -> not (Schema.mem v a_schema)) (Schema.vars b_schema)
  in
  let extra_pos = Schema.positions b_schema extra_vars in
  let n_extra = Array.length extra_pos in
  let key_pos = Schema.positions a_schema common in
  let key_scratch = Array.make (Array.length key_pos) 0 in
  let ra = Schema.arity a_schema in
  let out = Relation.create (Schema.union a_schema (Schema.of_list extra_vars)) in
  Relation.iter
    (fun ta ->
      Tuple.project_into key_pos ta key_scratch;
      Index.probe_iter idx key_scratch (fun src base ->
          let out_tup = Array.make (ra + n_extra) 0 in
          Array.blit ta 0 out_tup 0 ra;
          for k = 0 to n_extra - 1 do
            out_tup.(ra + k) <- src.(base + extra_pos.(k))
          done;
          Relation.add out out_tup;
          if Relation.cardinal out > limit then raise Too_big))
    a;
  out

(* Greedy connected left-deep join with early projection.  When [limit]
   is set, raises [Too_big] as soon as an intermediate result exceeds
   it. *)
let join_greedy_internal ?limit relations ~keep =
  match relations with
  | [] -> invalid_arg "Db.join_greedy: no relations"
  | first :: _ ->
      (* start from the smallest relation *)
      let start =
        List.fold_left
          (fun best r ->
            if Relation.cardinal r < Relation.cardinal best then r else best)
          first relations
      in
      let remaining = ref (List.filter (fun r -> r != start) relations) in
      let acc = ref start in
      let needed_later () =
        List.fold_left
          (fun vs r ->
            List.fold_left (fun vs v -> v :: vs) vs (Schema.vars (Relation.schema r)))
          keep !remaining
      in
      while !remaining <> [] do
        let connected r =
          Schema.inter (Relation.schema !acc) (Relation.schema r) <> []
        in
        let pick =
          let candidates = List.filter connected !remaining in
          let pool = if candidates = [] then !remaining else candidates in
          List.fold_left
            (fun best r ->
              if Relation.cardinal r < Relation.cardinal best then r else best)
            (List.hd pool) pool
        in
        remaining := List.filter (fun r -> r != pick) !remaining;
        (acc :=
           match limit with
           | None -> Relation.natural_join !acc pick
           | Some l -> bounded_join l !acc pick);
        (* early projection *)
        let needed = needed_later () in
        let schema_vars = Schema.vars (Relation.schema !acc) in
        let kept = List.filter (fun v -> List.mem v needed) schema_vars in
        if List.length kept < List.length schema_vars then
          acc := Relation.project !acc kept
      done;
      let result =
        Relation.project !acc
          (List.filter (fun v -> Schema.mem v (Relation.schema !acc)) keep)
      in
      (* The joins above bound every *joined* intermediate, but with a
         single input relation (or when the last projection is the
         identity on an unchecked accumulator) the final result was
         never compared against the limit — check it explicitly so the
         [.mli] contract ("any intermediate or final relation") holds. *)
      (match limit with
      | Some l when Relation.cardinal result > l -> raise Too_big
      | _ -> ());
      result

let join_greedy relations ~keep = join_greedy_internal relations ~keep

let join_greedy_bounded relations ~keep ~limit =
  try Some (join_greedy_internal ~limit relations ~keep)
  with Too_big -> None

let eval t (cq : Cq.t) =
  Cost.with_counting false (fun () ->
      let rels = List.map (relation t) cq.Cq.atoms in
      join_greedy rels ~keep:(Varset.to_list cq.Cq.head))

let eval_access t (cqap : Cq.cqap) ~q_a =
  Cost.with_counting false (fun () ->
      let cq = cqap.Cq.cq in
      let rels = q_a :: List.map (relation t) cq.Cq.atoms in
      join_greedy rels ~keep:(Varset.to_list cq.Cq.head))
