open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_lp
open Stt_obs
module Fconfig = Stt_factorized.Config
module Frep = Stt_factorized.Frep

(* One probing step of an online plan: join the accumulator with the
   indexed relation, then project to [keep]. *)
type step = { idx : Index.t; keep : Schema.var list }

type subproblem = {
  t_target : Varset.t;
  probe_plan : step list; (* greedy degree order: great average case *)
  safe_plan : step list;  (* min worst-case-estimate order *)
  cap : int;              (* abort threshold for the probe plan *)
}

(* ------------------------------------------------------------------ *)
(* incremental maintenance state                                        *)
(* ------------------------------------------------------------------ *)

(* A delegated combo remembers which atom each plan step indexes, so a
   leaf delta can patch exactly the affected step indexes in place. *)
type dsub = {
  sub : subproblem;
  probe_atoms : Cq.atom list; (* aligned with sub.probe_plan *)
  safe_atoms : Cq.atom list;  (* aligned with sub.safe_plan *)
}

type decision =
  | M_absent (* some leaf empty at build (or never activated since) *)
  | M_stored of Varset.t
  | M_delegated of dsub

type combo = {
  crel : (Cq.atom * Relation.t) list; (* this combo's leaf per atom *)
  mutable cdecision : decision;
}

(* The heavy/light subproblem lattice as an explicit binary tree, one
   node per split occurrence (exactly mirroring [expand]'s recursion).
   Each node tracks the degree state deg(Y|X) of its input set so a
   tuple delta re-routes — and, when a key crosses the threshold,
   re-classifies — only the affected keys. *)
type ctree =
  | CLeaf of combo
  | CNode of {
      catom : Cq.atom;
      x_pos : int array; (* positions in the atom schema *)
      y_pos : int array;
      cthreshold : int;
      ycount : int Tuple.Tbl.t;  (* y-projection multiplicity *)
      xdeg : int Tuple.Tbl.t;    (* distinct-y degree per x key *)
      members : Tuple.t list ref Tuple.Tbl.t; (* x key -> input tuples *)
      cheavy : ctree;
      clight : ctree;
    }

type maint = {
  mbudget : int;
  base : (Cq.atom * Relation.t) list; (* live base relation per atom *)
  tree : ctree;
  combos : combo list; (* leaves in canonical heavy-first order *)
}

type t = {
  rule : Rule.t;
  mutable stored : (Varset.t * Relation.t) list;
  mutable space : int;
  mutable delegated : subproblem list;
  mutable stored_subs : int; (* subproblems materialized within the budget *)
  maint : maint option; (* None for snapshot-loaded (static) structures *)
}

let rule t = t.rule
let s_targets t = t.stored
let space t = t.space
let delegated t = t.delegated
let delegated_subproblems t = List.length t.delegated
let stored_subproblems t = t.stored_subs
let supports_maintenance t = t.maint <> None

let base_relations t =
  match t.maint with Some m -> m.base | None -> []

let base_mem t ~rel tuple =
  match t.maint with
  | None -> false
  | Some m ->
      List.exists
        (fun ((a : Cq.atom), base_rel) ->
          a.Cq.rel = rel
          && Tuple.arity tuple = List.length a.Cq.vars
          && Relation.mem base_rel tuple)
        m.base

let stored_mem t b row =
  match List.find_opt (fun (b', _) -> Varset.equal b b') t.stored with
  | Some (_, rel) -> Relation.mem rel row
  | None -> false

let import rule ~stored ~delegated ~stored_subs =
  let space =
    List.fold_left (fun acc (_, rel) -> acc + Relation.cardinal rel) 0 stored
  in
  { rule; stored; space; delegated; stored_subs; maint = None }

(* Quantized to 1/16 so the target-selection LPs keep small denominators
   (exact simplex on native-int rationals). *)
let log2_rat x =
  let bits = Float.log2 (float_of_int (max 2 x)) in
  Rat.make (int_of_float (Float.round (16.0 *. bits))) 16

(* Partition an atom's relation into (heavy, light) by the degree
   deg(Y | X) measured on distinct Y-projections.  Runs under the
   caller's counting mode: quiet inside a default build, charged inside
   a [~counted] rebuild. *)
let split_atom rel ~x_vars ~y_vars ~threshold =
  let proj = Relation.project rel y_vars in
  let degs = Relation.degrees proj x_vars in
  let schema = Relation.schema rel in
  let x_pos = Schema.positions schema x_vars in
  let heavy = Relation.create schema and light = Relation.create schema in
  Relation.iter
    (fun tup ->
      let key = Tuple.project x_pos tup in
      let d =
        match Tuple.Tbl.find_opt degs key with Some d -> d | None -> 0
      in
      if d > threshold then Relation.add heavy tup else Relation.add light tup)
    rel;
  (heavy, light)

(* Measured degree constraints of a subproblem, for target selection. *)
let measured_dc rels =
  List.concat_map
    (fun ((atom : Cq.atom), rel) ->
      let fvars = Cq.atom_vars atom in
      let card =
        Degree.cardinality fvars
          { Degree.d = log2_rat (max 1 (Relation.cardinal rel)); q = Rat.zero }
      in
      let per_var =
        List.filter_map
          (fun v ->
            if Varset.cardinal fvars < 2 then None
            else
              let d = Relation.max_degree rel [ v ] in
              Some
                (Degree.make ~x:(Varset.singleton v) ~y:fvars
                   { Degree.d = log2_rat (max 1 d); q = Rat.zero }))
          (Varset.to_list fvars)
      in
      card :: per_var)
    rels

let pick_target n ~dc targets =
  match targets with
  | [ b ] -> b
  | _ ->
      let scored =
        List.map
          (fun b ->
            ( b,
              Polymatroid.log_size_bound ~n ~dc ~targets:[ b ] ~logd:Rat.one
                ~logq:Rat.zero ))
          targets
      in
      let best =
        List.fold_left
          (fun acc (b, bound) ->
            match (acc, bound) with
            | None, Some v -> Some (b, v)
            | Some (_, v0), Some v when Rat.compare v v0 < 0 -> Some (b, v)
            | acc, _ -> acc)
          None scored
      in
      (match best with Some (b, _) -> b | None -> List.hd targets)

let pick_target n ~dc targets =
  try pick_target n ~dc targets with Rat.Overflow -> List.hd targets

(* The atoms joined for a local T-target: every atom contained in the
   target bag (required for the Yannakakis soundness argument), extended
   greedily until the target's variables are covered. *)
let local_atoms rels ~access b =
  let inside, outside =
    List.partition (fun (a, _) -> Varset.subset (Cq.atom_vars a) b) rels
  in
  let covered =
    List.fold_left
      (fun acc (a, _) -> Varset.union acc (Cq.atom_vars a))
      access inside
  in
  let rec extend covered chosen pool =
    if Varset.subset b covered then List.rev chosen
    else
      let missing = Varset.diff b covered in
      let gain (a, _) = Varset.cardinal (Varset.inter (Cq.atom_vars a) missing) in
      match
        List.filter (fun ar -> gain ar > 0) pool
        |> List.sort (fun a b -> compare (gain b) (gain a))
      with
      | [] -> List.rev chosen (* cannot happen: every var is in an atom *)
      | best :: _ ->
          extend
            (Varset.union covered (Cq.atom_vars (fst best)))
            (best :: chosen)
            (List.filter (fun ar -> ar != best) pool)
  in
  inside @ extend covered [] outside

(* Worst-case cost of joining the atoms in a given order, starting from
   the access schema with |Q_A| = 1: each step multiplies the running
   size bound by the relation's max degree on the shared variables —
   or by its full cardinality when no variable is shared (a product,
   which PANDA-style plans legitimately use to hit D·|Q| bounds).  The
   accumulated intermediate sizes are summed. *)
let order_cost ~access order =
  let rec go bound seen total = function
    | [] -> total
    | (a, rel) :: rest ->
        let shared =
          List.filter (fun v -> Varset.mem v seen)
            (Varset.to_list (Cq.atom_vars a))
        in
        let step_factor =
          match shared with
          | [] -> Relation.cardinal rel
          | sh -> Relation.max_degree rel sh
        in
        let bound' =
          if step_factor <= 0 then 0
          else if bound > max_int / max 1 step_factor then max_int / 2
          else bound * step_factor
        in
        let seen' = Varset.union seen (Cq.atom_vars a) in
        let total' = if total > max_int - bound' then max_int / 2 else total + bound' in
        go bound' seen' total' rest

  in
  go 1 access 0 order

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* materialize an ordered atom list into indexed steps with early
   projection *)
let steps_of_order ~access ~target order =
  let acc_schema = ref (Varset.to_list access) in
  let steps = ref [] in
  List.iteri
    (fun i (atom, rel) ->
      let key =
        List.filter
          (fun v -> List.mem v !acc_schema)
          (Varset.to_list (Cq.atom_vars atom))
      in
      let idx = Index.build rel key in
      acc_schema :=
        !acc_schema
        @ List.filter
            (fun v -> not (List.mem v !acc_schema))
            (Varset.to_list (Cq.atom_vars atom));
      (* early projection: keep target vars, access vars and anything a
         later atom still joins on *)
      let rest = List.filteri (fun j _ -> j > i) order in
      let needed =
        List.fold_left
          (fun acc (a, _) -> Varset.union acc (Cq.atom_vars a))
          (Varset.union target access)
          rest
      in
      let keep = List.filter (fun v -> Varset.mem v needed) !acc_schema in
      acc_schema := keep;
      steps := { idx; keep } :: !steps)
    order;
  List.rev !steps

(* greedy order: cheapest connected extension first — excellent on
   average but can cascade through hubs in the worst case *)
let greedy_order ~access atoms =
  let seen = ref access in
  let remaining = ref atoms in
  let out = ref [] in
  while !remaining <> [] do
    let cost (a, rel) =
      let shared =
        List.filter (fun v -> Varset.mem v !seen)
          (Varset.to_list (Cq.atom_vars a))
      in
      match shared with
      | [] -> max_int
      | sh -> Relation.max_degree rel sh
    in
    let best =
      List.fold_left
        (fun acc ar ->
          match acc with
          | Some b when cost b <= cost ar -> acc
          | _ -> Some ar)
        None !remaining
    in
    let chosen = Option.get best in
    remaining := List.filter (fun ar -> ar != chosen) !remaining;
    seen := Varset.union !seen (Cq.atom_vars (fst chosen));
    out := chosen :: !out
  done;
  List.rev !out

(* min worst-case-estimate order: considers product-then-filter plans,
   which realize the paper's D·|Q|-style bounds *)
let safe_order ~access atoms =
  if List.length atoms > 5 then atoms
  else
    match permutations atoms with
    | [] -> []
    | first :: _ as perms ->
        List.fold_left
          (fun best o ->
            if order_cost ~access o < order_cost ~access best then o else best)
          first perms

(* Build both plans for one subproblem; online execution runs the greedy
   plan with the safe plan's worst-case estimate as an abort cap and
   falls back when it trips — adaptive, at most ~2x the worst-case
   bound, near-greedy on typical requests.  Also returns the atom behind
   each step, so incremental maintenance can patch step indexes. *)
let build_plan rels ~access ~target =
  Cost.with_counting false (fun () ->
      let atoms = local_atoms rels ~access target in
      let safe = safe_order ~access atoms in
      let greedy = greedy_order ~access atoms in
      let cap = 2 * (1 + order_cost ~access safe) in
      ( steps_of_order ~access ~target greedy,
        List.map fst greedy,
        steps_of_order ~access ~target safe,
        List.map fst safe,
        cap ))

(* evaluate the (partial) body join projected onto each target, giving
   up early on any materialization that cannot fit the budget; joins are
   bounded by a small multiple of the budget because intermediates can
   legitimately overshoot the projected result *)
let eval_targets rels targets ~budget =
  let relations = List.map snd rels in
  let limit = 16 * max 1 budget in
  List.filter_map
    (fun b ->
      match
        Db.join_greedy_bounded relations ~keep:(Varset.to_list b) ~limit
      with
      | Some rel -> Some (b, rel)
      | None -> None)
    targets

(* ------------------------------------------------------------------ *)
(* the split tree                                                       *)
(* ------------------------------------------------------------------ *)

let combo_nonempty c =
  List.for_all (fun (_, r) -> not (Relation.is_empty r)) c.crel

let rec combos_of = function
  | CLeaf c -> [ c ]
  | CNode n -> combos_of n.cheavy @ combos_of n.clight

(* [tree_insert]/[tree_delete] keep the invariant that every tuple lives
   in the branch matching its x key's *current* distinct-y degree, so
   the leaves always equal what a batch rebuild of the splits would
   produce.  Leaf changes are appended to [events] as
   [(combo, tuple, added?)] — all for the same atom. *)
let rec tree_insert tr atom tup events =
  match tr with
  | CLeaf c ->
      let rel = List.assq atom c.crel in
      Relation.add rel tup;
      events := (c, tup, true) :: !events
  | CNode n ->
      if n.catom != atom then begin
        (* a split of another atom: the tuple flows into both branches *)
        tree_insert n.cheavy atom tup events;
        tree_insert n.clight atom tup events
      end
      else begin
        Cost.charge_probe ();
        let y = Tuple.project n.y_pos tup in
        let x = Tuple.project n.x_pos tup in
        let yc =
          Option.value ~default:0 (Tuple.Tbl.find_opt n.ycount y)
        in
        Tuple.Tbl.replace n.ycount y (yc + 1);
        if yc = 0 then begin
          let xd = Option.value ~default:0 (Tuple.Tbl.find_opt n.xdeg x) in
          Tuple.Tbl.replace n.xdeg x (xd + 1);
          if xd = n.cthreshold then begin
            (* the key crossed upward: its resident tuples move
               light -> heavy before the new tuple lands *)
            let ms =
              match Tuple.Tbl.find_opt n.members x with
              | Some l -> !l
              | None -> []
            in
            List.iter
              (fun m ->
                Cost.charge_scan ();
                tree_delete n.clight atom m events;
                tree_insert n.cheavy atom m events)
              ms
          end
        end;
        (match Tuple.Tbl.find_opt n.members x with
        | Some l -> l := tup :: !l
        | None -> Tuple.Tbl.add n.members x (ref [ tup ]));
        let xd = Tuple.Tbl.find n.xdeg x in
        if xd > n.cthreshold then tree_insert n.cheavy atom tup events
        else tree_insert n.clight atom tup events
      end

and tree_delete tr atom tup events =
  match tr with
  | CLeaf c ->
      let rel = List.assq atom c.crel in
      ignore (Relation.remove rel tup);
      events := (c, tup, false) :: !events
  | CNode n ->
      if n.catom != atom then begin
        tree_delete n.cheavy atom tup events;
        tree_delete n.clight atom tup events
      end
      else begin
        Cost.charge_probe ();
        let y = Tuple.project n.y_pos tup in
        let x = Tuple.project n.x_pos tup in
        let yc = Option.value ~default:0 (Tuple.Tbl.find_opt n.ycount y) in
        let old_xd = Option.value ~default:0 (Tuple.Tbl.find_opt n.xdeg x) in
        if yc <= 1 then Tuple.Tbl.remove n.ycount y
        else Tuple.Tbl.replace n.ycount y (yc - 1);
        let crossed_down = yc = 1 && old_xd = n.cthreshold + 1 in
        if yc = 1 then
          if old_xd <= 1 then Tuple.Tbl.remove n.xdeg x
          else Tuple.Tbl.replace n.xdeg x (old_xd - 1);
        (match Tuple.Tbl.find_opt n.members x with
        | Some l ->
            l := List.filter (fun m -> not (Tuple.equal m tup)) !l;
            if !l = [] then Tuple.Tbl.remove n.members x
        | None -> ());
        (* the tuple lives in the branch of its old classification *)
        let was_heavy = old_xd > n.cthreshold in
        tree_delete (if was_heavy then n.cheavy else n.clight) atom tup events;
        if crossed_down then begin
          let ms =
            match Tuple.Tbl.find_opt n.members x with
            | Some l -> !l
            | None -> []
          in
          List.iter
            (fun m ->
              Cost.charge_scan ();
              tree_delete n.cheavy atom m events;
              tree_insert n.clight atom m events)
            ms
        end
      end

(* ------------------------------------------------------------------ *)
(* build                                                                *)
(* ------------------------------------------------------------------ *)

(* One materialization pass.  [budget_lp] drives the guide LP's space
   exponent and the candidate-evaluation limit — how aggressively the
   splits steer tuples toward storage; [budget] is the stored-singleton
   budget every admitted candidate is charged against (at its effective,
   possibly compressed, size).  A plain build has [budget_lp = budget];
   the amplified second pass of {!build} raises only [budget_lp].
   Besides the structure, returns the total cardinality and effective
   size of the best candidates seen, the measured compression evidence
   {!build} amplifies on. *)
let build_pass ~counted (r : Rule.t) ~db ~budget ~budget_lp =
  Obs.span "twopp.build"
    ~attrs:
      [
        ("rule", Json.String (Format.asprintf "%a" Rule.pp r));
        ("budget", Json.Int budget);
        ("budget_lp", Json.Int budget_lp);
      ]
  @@ fun () ->
  Cost.with_counting counted (fun () ->
      let cqap = r.Rule.cqap in
      let cq = cqap.Cq.cq in
      let n = cq.Cq.n in
      let vs_str b =
        "{"
        ^ String.concat ","
            (List.map (fun v -> cq.Cq.var_names.(v)) (Varset.to_list b))
        ^ "}"
      in
      let access = cqap.Cq.access in
      let dc = Degree.default_dc cq and ac = Degree.default_ac cqap in
      let dsize = max 2 (Db.size db) in
      let logd_abs = Float.log2 (float_of_int dsize) in
      let logs =
        Rat.of_float_approx ~max_den:1024
          (Float.log2 (float_of_int (max 2 budget_lp)) /. logd_abs)
      in
      let pivots_before = Simplex.pivot_count () in
      let point =
        (* if the guide LP overflows, build an unguided (split-free)
           structure — correct, just without heavy/light partitioning *)
        try Jointflow.obj r ~dc ~ac ~logd:Rat.one ~logq:Rat.zero ~logs
        with Rat.Overflow ->
          {
            Jointflow.value = Jointflow.Time Rat.zero;
            tradeoff = None;
            split_pairs = [];
            hs = [];
            split_duals = [];
            lp_vars = 0;
            lp_cstrs = 0;
          }
      in
      let lp_pivots = Simplex.pivot_count () - pivots_before in
      Obs.incr ~by:lp_pivots "simplex.pivots";
      Obs.set_attr "lp"
        (Json.Obj
           [
             ("vars", Json.Int point.Jointflow.lp_vars);
             ("cstrs", Json.Int point.Jointflow.lp_cstrs);
             ("pivots", Json.Int lp_pivots);
             ( "split_duals",
               Json.List
                 (List.map
                    (fun (x, y, g) ->
                      Json.Obj
                        [
                          ("x", Json.String (vs_str x));
                          ("y", Json.String (vs_str y));
                          ("dual", Json.String (Rat.to_string g));
                        ])
                    point.Jointflow.split_duals) );
           ]);
      (* [Impossible] is a worst-case prediction; actual materialization is
         still attempted below and only fails if the real data does not
         fit either. *)
      let base = List.map (fun a -> (a, Db.relation db a)) cq.Cq.atoms in
      let hs_of x =
        match List.assoc_opt x point.Jointflow.hs with
        | Some v -> v
        | None -> Rat.zero
      in
      (* attach each dual-positive split pair to its first guarding atom *)
      let splits =
        List.filter_map
          (fun (x, y) ->
            match
              List.find_opt
                (fun (a, _) -> Varset.subset y (Cq.atom_vars a))
                base
            with
            | None -> None
            | Some (atom, rel) ->
                let exp = Rat.to_float (hs_of x) *. logd_abs in
                let t =
                  float_of_int (max 1 (Relation.cardinal rel))
                  /. Float.pow 2.0 exp
                in
                Some (atom, x, y, max 1 (int_of_float (Float.round t))))
          (List.sort_uniq compare point.Jointflow.split_pairs)
      in
      (* subproblems: every heavy/light choice over the split pairs,
         materialized as an explicit tree whose nodes carry the degree
         state needed to re-route tuple deltas later *)
      let rec expand_tree rels = function
        | [] -> CLeaf { crel = rels; cdecision = M_absent }
        | (atom, x, y, threshold) :: rest ->
            let rel = List.assq atom rels in
            let heavy, light =
              Obs.span "twopp.split" (fun () ->
                  let h, l =
                    split_atom rel
                      ~x_vars:(Varset.to_list x)
                      ~y_vars:(Varset.to_list y)
                      ~threshold
                  in
                  Obs.set_attr "atom" (Json.String atom.Cq.rel);
                  Obs.set_attr "x" (Json.String (vs_str x));
                  Obs.set_attr "y" (Json.String (vs_str y));
                  Obs.set_attr "threshold" (Json.Int threshold);
                  Obs.set_attr "heavy" (Json.Int (Relation.cardinal h));
                  Obs.set_attr "light" (Json.Int (Relation.cardinal l));
                  (h, l))
            in
            let schema = Relation.schema rel in
            let x_pos = Schema.positions schema (Varset.to_list x) in
            let y_pos = Schema.positions schema (Varset.to_list y) in
            let ycount = Tuple.Tbl.create 64 in
            let xdeg = Tuple.Tbl.create 64 in
            let members = Tuple.Tbl.create 64 in
            Relation.iter
              (fun tup ->
                let yk = Tuple.project y_pos tup in
                let xk = Tuple.project x_pos tup in
                (match Tuple.Tbl.find_opt ycount yk with
                | Some c -> Tuple.Tbl.replace ycount yk (c + 1)
                | None ->
                    Tuple.Tbl.add ycount yk 1;
                    (match Tuple.Tbl.find_opt xdeg xk with
                    | Some d -> Tuple.Tbl.replace xdeg xk (d + 1)
                    | None -> Tuple.Tbl.add xdeg xk 1));
                match Tuple.Tbl.find_opt members xk with
                | Some l -> l := tup :: !l
                | None -> Tuple.Tbl.add members xk (ref [ tup ]))
              rel;
            let with_rel repl =
              List.map
                (fun (a, r0) -> if a == atom then (a, repl) else (a, r0))
                rels
            in
            let cheavy = expand_tree (with_rel heavy) rest in
            let clight = expand_tree (with_rel light) rest in
            CNode
              {
                catom = atom; x_pos; y_pos; cthreshold = threshold;
                ycount; xdeg; members; cheavy; clight;
              }
      in
      let tree = expand_tree base splits in
      let combos = combos_of tree in
      let stored_acc : (Varset.t, Relation.t) Hashtbl.t = Hashtbl.create 8 in
      let union_into b rel =
        let acc =
          match Hashtbl.find_opt stored_acc b with
          | Some existing -> existing
          | None ->
              let fresh =
                Relation.create (Schema.of_list (Varset.to_list b))
              in
              Hashtbl.add stored_acc b fresh;
              fresh
        in
        let pos =
          Schema.positions (Relation.schema rel)
            (Schema.vars (Relation.schema acc))
        in
        Relation.iter (fun row -> Relation.add acc (Tuple.project pos row)) rel
      in
      let delegated = ref [] in
      let stored_subs = ref 0 in
      let n_live = ref 0 in
      let cand_rows = ref 0 in
      let cand_eff = ref 0 in
      List.iter
        (fun c ->
          if combo_nonempty c then begin
            incr n_live;
            Obs.span "twopp.subproblem" @@ fun () ->
            let rels = c.crel in
            let candidates =
              match r.Rule.s_targets with
              | [] -> []
              | s_targets -> eval_targets rels s_targets ~budget:budget_lp
            in
            (* admission charges a candidate at the stored-singleton
               size it would actually occupy: its d-representation size
               when factorization is on and the measured ratio clears
               the gate, its flat cardinality otherwise.  Under mode
               [Off] this is exactly the pre-factorization cardinality
               test. *)
            let admission_size rel =
              let rows = Relation.cardinal rel in
              if Fconfig.mode () = Fconfig.Off then rows
              else
                Fconfig.effective_size ~rows
                  ~size:(Frep.size (Frep.of_relation rel))
            in
            let best =
              List.fold_left
                (fun acc (b, rel) ->
                  let eff = admission_size rel in
                  match acc with
                  | Some (_, _, best_eff) when best_eff <= eff -> acc
                  | _ -> Some (b, rel, eff))
                None candidates
            in
            (match best with
            | Some (_, rel, eff) ->
                cand_rows := !cand_rows + Relation.cardinal rel;
                cand_eff := !cand_eff + eff
            | None -> ());
            match best with
            | Some (b, rel, eff) when eff <= budget ->
                incr stored_subs;
                Obs.set_attr "decision" (Json.String "stored");
                Obs.set_attr "target" (Json.String (vs_str b));
                Obs.set_attr "tuples" (Json.Int (Relation.cardinal rel));
                union_into b rel;
                c.cdecision <- M_stored b
            | _ -> (
                (match best with
                | Some (_, _, eff) ->
                    (* best S-candidate existed but blew the budget *)
                    Obs.set_attr "best_eff" (Json.Int eff)
                | None -> ());
                match r.Rule.t_targets with
                | [] -> failwith "Twopp.build: rule impossible at this budget"
                | t_targets ->
                    let sub_dc = measured_dc rels in
                    let t_target = pick_target n ~dc:sub_dc t_targets in
                    Obs.set_attr "decision" (Json.String "delegated");
                    Obs.set_attr "target" (Json.String (vs_str t_target));
                    let probe_plan, probe_atoms, safe_plan, safe_atoms, cap =
                      build_plan rels ~access ~target:t_target
                    in
                    let sub = { t_target; probe_plan; safe_plan; cap } in
                    delegated := sub :: !delegated;
                    c.cdecision <- M_delegated { sub; probe_atoms; safe_atoms })
          end)
        combos;
      let stored =
        Hashtbl.fold (fun b rel acc -> (b, rel) :: acc) stored_acc []
      in
      let space =
        List.fold_left
          (fun acc (_, rel) -> acc + Relation.cardinal rel)
          0 stored
      in
      Obs.set_attr "subproblems" (Json.Int !n_live);
      Obs.set_attr "stored" (Json.Int !stored_subs);
      Obs.set_attr "delegated" (Json.Int (List.length !delegated));
      Obs.set_attr "space" (Json.Int space);
      ( {
          rule = r;
          stored;
          space;
          delegated = List.rev !delegated;
          stored_subs = !stored_subs;
          maint = Some { mbudget = budget; base; tree; combos };
        },
        !cand_rows,
        !cand_eff ))

(* Adaptive space amplification: when the best candidates of a plain
   pass measurably compress as d-representations (cardinality at least
   1.5x their effective size), the same stored-singleton budget
   can fund a more aggressive split structure.  Rebuild with the LP
   budget scaled by the measured ratio (capped at 4x) — admission still
   charges every candidate's effective size against the {e true} budget,
   so the amplified structure occupies no more stored singletons than
   the budget allows; it just materializes more logical tuples per
   singleton.  The amplified pass is kept only if it strictly increases
   materialized tuples without delegating any subproblem the plain pass
   stored; on any failure the plain structure stands, so answers and
   worst-case behavior are unchanged when compression does not show. *)
let build ?(counted = false) (r : Rule.t) ~db ~budget =
  let s1, rows1, eff1 = build_pass ~counted r ~db ~budget ~budget_lp:budget in
  if Fconfig.mode () = Fconfig.Off || eff1 = 0 || 2 * rows1 < 3 * eff1 then s1
  else
    (* nearest-integer measured ratio, clamped to [2, 4] *)
    let amp = max 2 (min 4 ((rows1 + (eff1 / 2)) / eff1)) in
    match build_pass ~counted r ~db ~budget ~budget_lp:(budget * amp) with
    | s2, _, _ when s2.space > s1.space && s2.stored_subs >= s1.stored_subs ->
        Obs.incr "twopp.amplified";
        s2
    | _ -> s1
    | exception Failure _ -> s1

(* ------------------------------------------------------------------ *)
(* online                                                               *)
(* ------------------------------------------------------------------ *)

exception Plan_abort

let run_plan ?cap q_a plan =
  let acc = ref q_a in
  List.iter
    (fun { idx; keep } ->
      acc := Index.join !acc idx;
      (match cap with
      | Some c when Relation.cardinal !acc > c -> raise Plan_abort
      | _ -> ());
      acc := Relation.project !acc keep)
    plan;
  !acc

let online t ~q_a =
  let out : (Varset.t, Relation.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun sub ->
      let result_rel =
        (* adaptive execution: greedy plan within the cap, safe plan on
           overflow *)
        try run_plan ~cap:(sub.cap * max 1 (Relation.cardinal q_a)) q_a sub.probe_plan
        with Plan_abort -> run_plan q_a sub.safe_plan
      in
      let acc = ref result_rel in
      let target_vars = Varset.to_list sub.t_target in
      let result =
        if
          List.for_all
            (fun v -> Schema.mem v (Relation.schema !acc))
            target_vars
        then Relation.project !acc target_vars
        else Relation.create (Schema.of_list target_vars)
      in
      let merged =
        match Hashtbl.find_opt out sub.t_target with
        | Some existing -> Relation.union existing result
        | None -> result
      in
      Hashtbl.replace out sub.t_target merged)
    t.delegated;
  Hashtbl.fold (fun b rel acc -> (b, rel) :: acc) out []

(* ------------------------------------------------------------------ *)
(* incremental maintenance                                              *)
(* ------------------------------------------------------------------ *)

let stored_rel_for t b =
  match List.find_opt (fun (b', _) -> Varset.equal b b') t.stored with
  | Some (_, rel) -> rel
  | None ->
      let rel = Relation.create (Schema.of_list (Varset.to_list b)) in
      t.stored <- t.stored @ [ (b, rel) ];
      rel

(* Early-exit witness search.  [find_witness binding rels] asks whether
   some extension of [binding] satisfies every (vars, relation) atom in
   [rels] — an existence check, so it stops at the first witness instead
   of enumerating all of them (around a heavy key the witness count is a
   degree product; a full join would pay for every one).  Scan-based:
   one [scan] charged per tuple visited. *)
let consistent binding vs tup =
  let ok = ref true in
  List.iteri
    (fun i v ->
      if !ok then
        match Hashtbl.find_opt binding v with
        | Some x -> if x <> tup.(i) then ok := false
        | None -> ())
    vs;
  !ok

(* bind the atom's unbound variables to the tuple's values; [None] (and
   no binding change) if the tuple contradicts the current binding *)
let extend binding vs tup =
  let added = ref [] in
  let ok = ref true in
  List.iteri
    (fun i v ->
      if !ok then
        match Hashtbl.find_opt binding v with
        | Some x -> if x <> tup.(i) then ok := false
        | None ->
            Hashtbl.add binding v tup.(i);
            added := v :: !added)
    vs;
  if !ok then Some !added
  else begin
    List.iter (Hashtbl.remove binding) !added;
    None
  end

let rec find_witness binding rels =
  match rels with
  | [] -> true
  | _ ->
      (* one counting scan per remaining atom, then recurse through the
         atom with the fewest matches under the current binding — around
         a heavy key the fan-out atom is deferred until its variables
         are pinned, so branching stays near the cold side's degrees *)
      let scored =
        List.map
          (fun ((vs, rel) as atom) ->
            let matches = ref [] in
            Relation.iter
              (fun tup ->
                Cost.charge_scan ();
                if consistent binding vs tup then matches := tup :: !matches)
              rel;
            (List.length !matches, !matches, atom))
          rels
      in
      let n, matches, ((vs, _) as atom) =
        List.fold_left
          (fun ((bn, _, _) as b) ((n, _, _) as x) -> if n < bn then x else b)
          (List.hd scored) (List.tl scored)
      in
      n > 0
      &&
      let rest = List.filter (fun a -> not (a == atom)) rels in
      List.exists
        (fun tup ->
          match extend binding vs tup with
          | None -> false
          | Some added ->
              let hit = find_witness binding rest in
              if not hit then List.iter (Hashtbl.remove binding) added;
              hit)
        matches

(* Which rows of [cand_rel : keep] does the combo's body join still
   derive?  Semijoin-reduce the body under the candidate pinning (one
   pass against the candidates, then a forward/backward neighbor sweep
   — linear in the slice sizes), then run {!find_witness} per row over
   the reduced slices. *)
let derivable_rows c ~keep cand_rel =
  let rels = Array.of_list (List.map snd c.crel) in
  (* pin the atoms that see candidate columns (one linear semijoin each);
     atoms with no candidate column are shared by reference, not copied —
     the witness search prunes them by match counting instead *)
  let shares a b = Schema.inter (Relation.schema a) (Relation.schema b) <> [] in
  Array.iteri
    (fun i r -> if shares r cand_rel then rels.(i) <- Relation.semijoin r cand_rel)
    rels;
  let out = Relation.create (Schema.of_list keep) in
  let any_empty = ref false in
  Array.iter (fun r -> if Relation.is_empty r then any_empty := true) rels;
  if not !any_empty then begin
    let atoms =
      Array.to_list
        (Array.map (fun r -> (Schema.vars (Relation.schema r), r)) rels)
    in
    Relation.iter
      (fun row ->
        let binding = Hashtbl.create 16 in
        List.iteri (fun i v -> Hashtbl.replace binding v row.(i)) keep;
        if find_witness binding atoms then Relation.add out row)
      cand_rel
  end;
  out

(* a combo that was empty at build (never classified) just became
   non-empty: run the build-time decision logic on its current leaves.
   May raise [Failure] exactly like [build] when the rule has no
   T-targets and the stored candidates no longer fit the budget. *)
let activate t m c out_events =
  let r = t.rule in
  let rels = c.crel in
  let candidates =
    match r.Rule.s_targets with
    | [] -> []
    | s_targets -> eval_targets rels s_targets ~budget:m.mbudget
  in
  let best =
    List.fold_left
      (fun acc (b, rel) ->
        match acc with
        | Some (_, best_rel)
          when Relation.cardinal best_rel <= Relation.cardinal rel ->
            acc
        | _ -> Some (b, rel))
      None candidates
  in
  match best with
  | Some (b, rel) when Relation.cardinal rel <= m.mbudget ->
      t.stored_subs <- t.stored_subs + 1;
      c.cdecision <- M_stored b;
      let union_rel = stored_rel_for t b in
      let pos =
        Schema.positions (Relation.schema rel)
          (Schema.vars (Relation.schema union_rel))
      in
      Relation.iter
        (fun row0 ->
          let row = Tuple.project pos row0 in
          if not (Relation.mem union_rel row) then begin
            Relation.add union_rel row;
            t.space <- t.space + 1;
            out_events := (b, row, true) :: !out_events
          end)
        rel
  | _ -> (
      match r.Rule.t_targets with
      | [] -> failwith "Twopp.build: rule impossible at this budget"
      | t_targets ->
          let sub_dc = measured_dc rels in
          let t_target =
            pick_target r.Rule.cqap.Cq.cq.Cq.n ~dc:sub_dc t_targets
          in
          let probe_plan, probe_atoms, safe_plan, safe_atoms, cap =
            build_plan rels ~access:r.Rule.cqap.Cq.access ~target:t_target
          in
          let sub = { t_target; probe_plan; safe_plan; cap } in
          t.delegated <- t.delegated @ [ sub ];
          c.cdecision <- M_delegated { sub; probe_atoms; safe_atoms })


(* one leaf change of [atom] in combo [c], already applied to the leaf
   relation; update the combo's decision artifacts and record the
   stored-row (S-view) changes *)
let propagate t m c atom tup sign out_events =
  match c.cdecision with
  | M_absent ->
      if sign && combo_nonempty c then activate t m c out_events
  | M_delegated d ->
      let patch plan atoms =
        List.iter2
          (fun (st : step) a ->
            if a == atom then
              ignore
                (if sign then Index.insert st.idx tup
                 else Index.remove st.idx tup))
          plan atoms
      in
      patch d.sub.probe_plan d.probe_atoms;
      patch d.sub.safe_plan d.safe_atoms
  | M_stored b ->
      let union_rel = stored_rel_for t b in
      let single =
        Relation.singleton (Relation.schema (List.assq atom c.crel)) tup
      in
      let others =
        List.filter_map
          (fun (a, rel) -> if a == atom then None else Some rel)
          c.crel
      in
      let keep = Varset.to_list b in
      if sign then
        let delta = Db.join_greedy (single :: others) ~keep in
        Relation.iter
          (fun row ->
            if not (Relation.mem union_rel row) then begin
              Relation.add union_rel row;
              t.space <- t.space + 1;
              out_events := (b, row, true) :: !out_events
            end)
          delta
      else begin
        (* candidate rows that may have lost their last witness: exactly
           the rows that were derivable through the removed tuple.  The
           delta join's intermediates are degree products, so it blows
           up when both endpoints of the removed tuple are heavy; the
           stored union, in contrast, is budget-bounded.  Run the delta
           join only while it stays small and otherwise recheck every
           stored row — either set over-approximates the victims. *)
        let limit = 4 * (1 + Relation.cardinal union_rel) in
        let cands =
          match Db.join_greedy_bounded (single :: others) ~keep ~limit with
          | Some delta -> Relation.to_list delta
          | None -> Relation.to_list union_rel
        in
        let victims =
          (* last-witness check: a candidate row dies only if NO sibling
             combo with the same target still derives it.  Each combo is
             checked by semijoin reduction plus early-exit witness
             search — never by enumerating the (degree-product many)
             witnesses around a heavy key. *)
          let cand_rel = Relation.create (Schema.of_list keep) in
          List.iter
            (fun row ->
              if Relation.mem union_rel row then Relation.add cand_rel row)
            cands;
          let surviving = ref cand_rel in
          List.iter
            (fun c' ->
              match c'.cdecision with
              | M_stored b'
                when Varset.equal b b'
                     && not (Relation.is_empty !surviving) ->
                  let derived = derivable_rows c' ~keep !surviving in
                  surviving := Relation.antijoin !surviving derived
              | _ -> ())
            m.combos;
          Relation.to_list !surviving
        in
        List.iter
          (fun row ->
            ignore (Relation.remove union_rel row);
            t.space <- t.space - 1;
            out_events := (b, row, false) :: !out_events)
          victims
      end

let apply_delta t ~rel ~tuple ~add =
  match t.maint with
  | None ->
      failwith
        "Twopp.apply_delta: structure has no maintenance state (loaded from \
         a static snapshot)"
  | Some m ->
      let out_events = ref [] in
      List.iter
        (fun ((atom : Cq.atom), base_rel) ->
          if atom.Cq.rel = rel then begin
            if Tuple.arity tuple <> List.length atom.Cq.vars then
              failwith
                (Printf.sprintf
                   "Twopp.apply_delta: arity-%d tuple for %d-ary relation %s"
                   (Tuple.arity tuple)
                   (List.length atom.Cq.vars)
                   rel);
            let changed =
              if add then
                if Relation.mem base_rel tuple then false
                else begin
                  Relation.add base_rel tuple;
                  true
                end
              else Relation.remove base_rel tuple
            in
            if changed then begin
              let levs = ref [] in
              if add then tree_insert m.tree atom tuple levs
              else tree_delete m.tree atom tuple levs;
              List.iter
                (fun (c, tup, sign) -> propagate t m c atom tup sign out_events)
                (List.rev !levs)
            end
          end)
        m.base;
      List.rev !out_events
