open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_lp
open Stt_obs

(* One probing step of an online plan: join the accumulator with the
   indexed relation, then project to [keep]. *)
type step = { idx : Index.t; keep : Schema.var list }

type subproblem = {
  t_target : Varset.t;
  probe_plan : step list; (* greedy degree order: great average case *)
  safe_plan : step list;  (* min worst-case-estimate order *)
  cap : int;              (* abort threshold for the probe plan *)
}

type t = {
  rule : Rule.t;
  stored : (Varset.t * Relation.t) list;
  space : int;
  delegated : subproblem list;
  stored_subs : int; (* subproblems materialized within the budget *)
}

let rule t = t.rule
let s_targets t = t.stored
let space t = t.space
let delegated t = t.delegated
let delegated_subproblems t = List.length t.delegated
let stored_subproblems t = t.stored_subs

let import rule ~stored ~delegated ~stored_subs =
  let space =
    List.fold_left (fun acc (_, rel) -> acc + Relation.cardinal rel) 0 stored
  in
  { rule; stored; space; delegated; stored_subs }

(* Quantized to 1/16 so the target-selection LPs keep small denominators
   (exact simplex on native-int rationals). *)
let log2_rat x =
  let bits = Float.log2 (float_of_int (max 2 x)) in
  Rat.make (int_of_float (Float.round (16.0 *. bits))) 16

(* Partition an atom's relation into (heavy, light) by the degree
   deg(Y | X) measured on distinct Y-projections. *)
let split_atom rel ~x_vars ~y_vars ~threshold =
  Cost.with_counting false (fun () ->
      let proj = Relation.project rel y_vars in
      let degs = Relation.degrees proj x_vars in
      let schema = Relation.schema rel in
      let x_pos = Schema.positions schema x_vars in
      let heavy = Relation.create schema and light = Relation.create schema in
      Relation.iter
        (fun tup ->
          let key = Tuple.project x_pos tup in
          let d =
            match Tuple.Tbl.find_opt degs key with Some d -> d | None -> 0
          in
          if d > threshold then Relation.add heavy tup
          else Relation.add light tup)
        rel;
      (heavy, light))

(* Measured degree constraints of a subproblem, for target selection. *)
let measured_dc rels =
  List.concat_map
    (fun ((atom : Cq.atom), rel) ->
      let fvars = Cq.atom_vars atom in
      let card =
        Degree.cardinality fvars
          { Degree.d = log2_rat (max 1 (Relation.cardinal rel)); q = Rat.zero }
      in
      let per_var =
        List.filter_map
          (fun v ->
            if Varset.cardinal fvars < 2 then None
            else
              let d = Relation.max_degree rel [ v ] in
              Some
                (Degree.make ~x:(Varset.singleton v) ~y:fvars
                   { Degree.d = log2_rat (max 1 d); q = Rat.zero }))
          (Varset.to_list fvars)
      in
      card :: per_var)
    rels

let pick_target n ~dc targets =
  match targets with
  | [ b ] -> b
  | _ ->
      let scored =
        List.map
          (fun b ->
            ( b,
              Polymatroid.log_size_bound ~n ~dc ~targets:[ b ] ~logd:Rat.one
                ~logq:Rat.zero ))
          targets
      in
      let best =
        List.fold_left
          (fun acc (b, bound) ->
            match (acc, bound) with
            | None, Some v -> Some (b, v)
            | Some (_, v0), Some v when Rat.compare v v0 < 0 -> Some (b, v)
            | acc, _ -> acc)
          None scored
      in
      (match best with Some (b, _) -> b | None -> List.hd targets)

let pick_target n ~dc targets =
  try pick_target n ~dc targets with Rat.Overflow -> List.hd targets

(* The atoms joined for a local T-target: every atom contained in the
   target bag (required for the Yannakakis soundness argument), extended
   greedily until the target's variables are covered. *)
let local_atoms rels ~access b =
  let inside, outside =
    List.partition (fun (a, _) -> Varset.subset (Cq.atom_vars a) b) rels
  in
  let covered =
    List.fold_left
      (fun acc (a, _) -> Varset.union acc (Cq.atom_vars a))
      access inside
  in
  let rec extend covered chosen pool =
    if Varset.subset b covered then List.rev chosen
    else
      let missing = Varset.diff b covered in
      let gain (a, _) = Varset.cardinal (Varset.inter (Cq.atom_vars a) missing) in
      match
        List.filter (fun ar -> gain ar > 0) pool
        |> List.sort (fun a b -> compare (gain b) (gain a))
      with
      | [] -> List.rev chosen (* cannot happen: every var is in an atom *)
      | best :: _ ->
          extend
            (Varset.union covered (Cq.atom_vars (fst best)))
            (best :: chosen)
            (List.filter (fun ar -> ar != best) pool)
  in
  inside @ extend covered [] outside

(* Worst-case cost of joining the atoms in a given order, starting from
   the access schema with |Q_A| = 1: each step multiplies the running
   size bound by the relation's max degree on the shared variables —
   or by its full cardinality when no variable is shared (a product,
   which PANDA-style plans legitimately use to hit D·|Q| bounds).  The
   accumulated intermediate sizes are summed. *)
let order_cost ~access order =
  let rec go bound seen total = function
    | [] -> total
    | (a, rel) :: rest ->
        let shared =
          List.filter (fun v -> Varset.mem v seen)
            (Varset.to_list (Cq.atom_vars a))
        in
        let step_factor =
          match shared with
          | [] -> Relation.cardinal rel
          | sh -> Relation.max_degree rel sh
        in
        let bound' =
          if step_factor <= 0 then 0
          else if bound > max_int / max 1 step_factor then max_int / 2
          else bound * step_factor
        in
        let seen' = Varset.union seen (Cq.atom_vars a) in
        let total' = if total > max_int - bound' then max_int / 2 else total + bound' in
        go bound' seen' total' rest

  in
  go 1 access 0 order

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* materialize an ordered atom list into indexed steps with early
   projection *)
let steps_of_order ~access ~target order =
  let acc_schema = ref (Varset.to_list access) in
  let steps = ref [] in
  List.iteri
    (fun i (atom, rel) ->
      let key =
        List.filter
          (fun v -> List.mem v !acc_schema)
          (Varset.to_list (Cq.atom_vars atom))
      in
      let idx = Index.build rel key in
      acc_schema :=
        !acc_schema
        @ List.filter
            (fun v -> not (List.mem v !acc_schema))
            (Varset.to_list (Cq.atom_vars atom));
      (* early projection: keep target vars, access vars and anything a
         later atom still joins on *)
      let rest = List.filteri (fun j _ -> j > i) order in
      let needed =
        List.fold_left
          (fun acc (a, _) -> Varset.union acc (Cq.atom_vars a))
          (Varset.union target access)
          rest
      in
      let keep = List.filter (fun v -> Varset.mem v needed) !acc_schema in
      acc_schema := keep;
      steps := { idx; keep } :: !steps)
    order;
  List.rev !steps

(* greedy order: cheapest connected extension first — excellent on
   average but can cascade through hubs in the worst case *)
let greedy_order ~access atoms =
  let seen = ref access in
  let remaining = ref atoms in
  let out = ref [] in
  while !remaining <> [] do
    let cost (a, rel) =
      let shared =
        List.filter (fun v -> Varset.mem v !seen)
          (Varset.to_list (Cq.atom_vars a))
      in
      match shared with
      | [] -> max_int
      | sh -> Relation.max_degree rel sh
    in
    let best =
      List.fold_left
        (fun acc ar ->
          match acc with
          | Some b when cost b <= cost ar -> acc
          | _ -> Some ar)
        None !remaining
    in
    let chosen = Option.get best in
    remaining := List.filter (fun ar -> ar != chosen) !remaining;
    seen := Varset.union !seen (Cq.atom_vars (fst chosen));
    out := chosen :: !out
  done;
  List.rev !out

(* min worst-case-estimate order: considers product-then-filter plans,
   which realize the paper's D·|Q|-style bounds *)
let safe_order ~access atoms =
  if List.length atoms > 5 then atoms
  else
    match permutations atoms with
    | [] -> []
    | first :: _ as perms ->
        List.fold_left
          (fun best o ->
            if order_cost ~access o < order_cost ~access best then o else best)
          first perms

(* Build both plans for one subproblem; online execution runs the greedy
   plan with the safe plan's worst-case estimate as an abort cap and
   falls back when it trips — adaptive, at most ~2x the worst-case
   bound, near-greedy on typical requests. *)
let build_plan rels ~access ~target =
  Cost.with_counting false (fun () ->
      let atoms = local_atoms rels ~access target in
      let safe = safe_order ~access atoms in
      let greedy = greedy_order ~access atoms in
      let cap = 2 * (1 + order_cost ~access safe) in
      ( steps_of_order ~access ~target greedy,
        steps_of_order ~access ~target safe,
        cap ))

(* evaluate the (partial) body join projected onto each target, giving
   up early on any materialization that cannot fit the budget; joins are
   bounded by a small multiple of the budget because intermediates can
   legitimately overshoot the projected result *)
let eval_targets rels targets ~budget =
  let relations = List.map snd rels in
  let limit = 16 * max 1 budget in
  List.filter_map
    (fun b ->
      match
        Db.join_greedy_bounded relations ~keep:(Varset.to_list b) ~limit
      with
      | Some rel -> Some (b, rel)
      | None -> None)
    targets

let build (r : Rule.t) ~db ~budget =
  Obs.span "twopp.build"
    ~attrs:
      [
        ("rule", Json.String (Format.asprintf "%a" Rule.pp r));
        ("budget", Json.Int budget);
      ]
  @@ fun () ->
  Cost.with_counting false (fun () ->
      let cqap = r.Rule.cqap in
      let cq = cqap.Cq.cq in
      let n = cq.Cq.n in
      let vs_str b =
        "{"
        ^ String.concat ","
            (List.map (fun v -> cq.Cq.var_names.(v)) (Varset.to_list b))
        ^ "}"
      in
      let access = cqap.Cq.access in
      let dc = Degree.default_dc cq and ac = Degree.default_ac cqap in
      let dsize = max 2 (Db.size db) in
      let logd_abs = Float.log2 (float_of_int dsize) in
      let logs =
        Rat.of_float_approx ~max_den:1024
          (Float.log2 (float_of_int (max 2 budget)) /. logd_abs)
      in
      let pivots_before = Simplex.pivot_count () in
      let point =
        (* if the guide LP overflows, build an unguided (split-free)
           structure — correct, just without heavy/light partitioning *)
        try Jointflow.obj r ~dc ~ac ~logd:Rat.one ~logq:Rat.zero ~logs
        with Rat.Overflow ->
          {
            Jointflow.value = Jointflow.Time Rat.zero;
            tradeoff = None;
            split_pairs = [];
            hs = [];
            split_duals = [];
            lp_vars = 0;
            lp_cstrs = 0;
          }
      in
      let lp_pivots = Simplex.pivot_count () - pivots_before in
      Obs.incr ~by:lp_pivots "simplex.pivots";
      Obs.set_attr "lp"
        (Json.Obj
           [
             ("vars", Json.Int point.Jointflow.lp_vars);
             ("cstrs", Json.Int point.Jointflow.lp_cstrs);
             ("pivots", Json.Int lp_pivots);
             ( "split_duals",
               Json.List
                 (List.map
                    (fun (x, y, g) ->
                      Json.Obj
                        [
                          ("x", Json.String (vs_str x));
                          ("y", Json.String (vs_str y));
                          ("dual", Json.String (Rat.to_string g));
                        ])
                    point.Jointflow.split_duals) );
           ]);
      (* [Impossible] is a worst-case prediction; actual materialization is
         still attempted below and only fails if the real data does not
         fit either. *)
      let base = List.map (fun a -> (a, Db.relation db a)) cq.Cq.atoms in
      let hs_of x =
        match List.assoc_opt x point.Jointflow.hs with
        | Some v -> v
        | None -> Rat.zero
      in
      (* attach each dual-positive split pair to its first guarding atom *)
      let splits =
        List.filter_map
          (fun (x, y) ->
            match
              List.find_opt
                (fun (a, _) -> Varset.subset y (Cq.atom_vars a))
                base
            with
            | None -> None
            | Some (atom, rel) ->
                let exp = Rat.to_float (hs_of x) *. logd_abs in
                let t =
                  float_of_int (max 1 (Relation.cardinal rel))
                  /. Float.pow 2.0 exp
                in
                Some (atom, x, y, max 1 (int_of_float (Float.round t))))
          (List.sort_uniq compare point.Jointflow.split_pairs)
      in
      (* subproblems: every heavy/light choice over the split pairs *)
      let rec expand rels = function
        | [] -> [ rels ]
        | (atom, x, y, threshold) :: rest ->
            let rel = List.assq atom rels in
            let heavy, light =
              Obs.span "twopp.split" (fun () ->
                  let h, l =
                    split_atom rel
                      ~x_vars:(Varset.to_list x)
                      ~y_vars:(Varset.to_list y)
                      ~threshold
                  in
                  Obs.set_attr "atom" (Json.String atom.Cq.rel);
                  Obs.set_attr "x" (Json.String (vs_str x));
                  Obs.set_attr "y" (Json.String (vs_str y));
                  Obs.set_attr "threshold" (Json.Int threshold);
                  Obs.set_attr "heavy" (Json.Int (Relation.cardinal h));
                  Obs.set_attr "light" (Json.Int (Relation.cardinal l));
                  (h, l))
            in
            let with_rel repl =
              List.map
                (fun (a, r0) -> if a == atom then (a, repl) else (a, r0))
                rels
            in
            expand (with_rel heavy) rest @ expand (with_rel light) rest
      in
      let subproblems =
        expand base splits
        |> List.filter (fun rels ->
               List.for_all (fun (_, r) -> not (Relation.is_empty r)) rels)
      in
      let stored_acc : (Varset.t, Relation.t) Hashtbl.t = Hashtbl.create 8 in
      let delegated = ref [] in
      let stored_subs = ref 0 in
      List.iter
        (fun rels ->
          Obs.span "twopp.subproblem" @@ fun () ->
          let candidates =
            match r.Rule.s_targets with
            | [] -> []
            | s_targets -> eval_targets rels s_targets ~budget
          in
          let best =
            List.fold_left
              (fun acc (b, rel) ->
                match acc with
                | Some (_, best_rel)
                  when Relation.cardinal best_rel <= Relation.cardinal rel ->
                    acc
                | _ -> Some (b, rel))
              None candidates
          in
          match best with
          | Some (b, rel) when Relation.cardinal rel <= budget ->
              incr stored_subs;
              Obs.set_attr "decision" (Json.String "stored");
              Obs.set_attr "target" (Json.String (vs_str b));
              Obs.set_attr "tuples" (Json.Int (Relation.cardinal rel));
              let acc =
                match Hashtbl.find_opt stored_acc b with
                | Some existing -> Relation.union existing rel
                | None -> rel
              in
              Hashtbl.replace stored_acc b acc
          | _ -> (
              match r.Rule.t_targets with
              | [] -> failwith "Twopp.build: rule impossible at this budget"
              | t_targets ->
                  let sub_dc = measured_dc rels in
                  let t_target = pick_target n ~dc:sub_dc t_targets in
                  Obs.set_attr "decision" (Json.String "delegated");
                  Obs.set_attr "target" (Json.String (vs_str t_target));
                  let probe_plan, safe_plan, cap =
                    build_plan rels ~access ~target:t_target
                  in
                  delegated :=
                    { t_target; probe_plan; safe_plan; cap } :: !delegated))
        subproblems;
      let stored =
        Hashtbl.fold (fun b rel acc -> (b, rel) :: acc) stored_acc []
      in
      let space =
        List.fold_left
          (fun acc (_, rel) -> acc + Relation.cardinal rel)
          0 stored
      in
      Obs.set_attr "subproblems" (Json.Int (List.length subproblems));
      Obs.set_attr "stored" (Json.Int !stored_subs);
      Obs.set_attr "delegated" (Json.Int (List.length !delegated));
      Obs.set_attr "space" (Json.Int space);
      {
        rule = r;
        stored;
        space;
        delegated = List.rev !delegated;
        stored_subs = !stored_subs;
      })

exception Plan_abort

let run_plan ?cap q_a plan =
  let acc = ref q_a in
  List.iter
    (fun { idx; keep } ->
      acc := Index.join !acc idx;
      (match cap with
      | Some c when Relation.cardinal !acc > c -> raise Plan_abort
      | _ -> ());
      acc := Relation.project !acc keep)
    plan;
  !acc

let online t ~q_a =
  let out : (Varset.t, Relation.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun sub ->
      let result_rel =
        (* adaptive execution: greedy plan within the cap, safe plan on
           overflow *)
        try run_plan ~cap:(sub.cap * max 1 (Relation.cardinal q_a)) q_a sub.probe_plan
        with Plan_abort -> run_plan q_a sub.safe_plan
      in
      let acc = ref result_rel in
      let target_vars = Varset.to_list sub.t_target in
      let result =
        if
          List.for_all
            (fun v -> Schema.mem v (Relation.schema !acc))
            target_vars
        then Relation.project !acc target_vars
        else Relation.create (Schema.of_list target_vars)
      in
      let merged =
        match Hashtbl.find_opt out sub.t_target with
        | Some existing -> Relation.union existing result
        | None -> result
      in
      Hashtbl.replace out sub.t_target merged)
    t.delegated;
  Hashtbl.fold (fun b rel acc -> (b, rel) :: acc) out []
