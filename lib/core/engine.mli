(** End-to-end CQAP index: the general framework of Section 4.

    [build] generates the 2-phase disjunctive rules from the PMTD set,
    runs 2PP preprocessing for each rule under the space budget, unions
    same-schema S-targets into per-PMTD S-views and hands them to Online
    Yannakakis.  [answer] runs 2PP online for each rule, unions T-targets
    into T-views, evaluates every PMTD's free-connex CQ ψ_i with Online
    Yannakakis and returns [⋃_i ψ_i] — the exact result of the access
    CQ. *)

open Stt_relation
open Stt_hypergraph
open Stt_decomp

type t

val build : ?counted:bool -> Cq.cqap -> Pmtd.t list -> db:Db.t -> budget:int -> t
(** Raises [Failure] if some generated rule is impossible at this budget
    (only when a rule has no T-targets).  [counted] (default [false])
    charges the build's data work to the cost counters — preprocessing
    is normally silent; benchmarks opt in to compare incremental
    maintenance against an op-counted rebuild. *)

val build_auto :
  ?counted:bool -> ?max_pmtds:int -> Cq.cqap -> db:Db.t -> budget:int -> t
(** [build] over the automatically enumerated PMTD set. *)

val space : t -> int
(** Intrinsic space in stored singletons: flat S-views count one per
    tuple, factorized S-views count their d-representation size
    ({!Stt_factorized.Frep.size}).  Does not include the answer cache —
    see {!cache_space}. *)

val materialized_rows : t -> int
(** Total {e flat} rows the stored S-views represent, regardless of
    holder: [space t] ≤ [materialized_rows t], and the gap is what
    factorization bought. *)

val factorized_views : t -> int
(** Number of S-views currently held as d-representations. *)

val answer : t -> q_a:Relation.t -> Relation.t
(** Result of the access CQ over the head variables.  Cost counters
    observe only the online work.  With a cache attached the request is
    canonicalized and looked up first: a hit costs one probe plus one
    tuple per answer row and returns a bit-identical answer; a miss runs
    the 2PP online pipeline and offers the result for admission. *)

val answer_tuple : t -> Tuple.t -> bool
(** Boolean single-tuple access: is the access request (values of the
    access variables in ascending-id order) in the answer?  Routed
    through {!answer}, so a warm cache answers a repeated boolean
    access in O(1) probes. *)

val answer_batch : t -> Relation.t list -> (Relation.t * Cost.snapshot) list
(** Answer a batch of access requests, sharing work across the batch.
    Results come back in input order and each equals [answer t ~q_a]
    exactly.  Sharing: duplicate requests (same tuple set, any variable
    order) are evaluated once; and when the access variables all appear
    in the head, the whole batch is answered as one combined request and
    per-request answers are sliced out by semijoin.  Each snapshot is
    that request's cost share: an even split of the batch-shared work
    plus, for the first occurrence of each distinct request, its
    marginal cost; shares sum exactly to the batch total.  With a cache
    attached, unique requests are looked up first and only the misses
    are evaluated (and offered for admission); a hit's marginal is its
    lookup-and-decode cost. *)

val cqap : t -> Cq.cqap
val pmtds : t -> Pmtd.t list
val rules : t -> Rule.t list
val structures : t -> Twopp.t list
(** The 2PP structure of each generated rule, in rule order. *)

val per_pmtd_space : t -> (Pmtd.t * int) list
(** Stored S-view tuples per PMTD (the summands of {!space}), as
    reported in the benchmark artifacts. *)

val access_schema : t -> Schema.t

(** {1 Semiring aggregates}

    Sum-product answering: an aggregate request returns the semiring sum
    over all valuations of the query's variables consistent with some
    request tuple, of the semiring product of the base-atom annotations
    — COUNT and SUM without materializing the join, MIN/MAX over the
    tropical semirings.  [enable_agg] annotates the base relations with
    the database's weights ({!Db.add_weighted}) and precomputes per-kind
    aggregate tables over the access variables (uncounted, like the rest
    of preprocessing); when the full table exceeds the budget, only the
    heaviest access keys (by derivation count) are kept and the rest are
    answered by online annotated variable elimination.  Aggregate
    answers are cached under kind-tagged keys and shipped in snapshots
    (the ["agg"] section), so replicas serve aggregates too. *)

val enable_agg :
  ?kinds:Stt_semiring.Semiring.kind list -> t -> db:Db.t -> budget:int -> unit
(** Build aggregate state for [kinds] (default: all) with at most
    [budget] precomputed table entries per kind.  Raises
    [Invalid_argument] on a negative budget. *)

val answer_agg :
  t -> Stt_semiring.Semiring.kind -> q_a:Relation.t -> int * Cost.snapshot
(** The aggregate of one (possibly multi-tuple) access request, with the
    online cost actually charged: a table hit costs one probe per
    request row plus one tuple per combined row; misses against a
    partial table are answered by one counted elimination run.  Raises
    [Failure] when {!enable_agg} was never called (and the snapshot had
    no agg section). *)

val answer_batch_agg :
  t ->
  Stt_semiring.Semiring.kind ->
  Relation.t list ->
  (int * Cost.snapshot) list
(** {!answer_agg} over each request, in input order. *)

val agg_baseline :
  t -> Stt_semiring.Semiring.kind -> q_a:Relation.t -> int * Cost.snapshot
(** Materialize-then-fold reference: flat join of the annotated factors
    (request included), then the semiring fold — same answer, counted
    cost of actually materializing.  The op-count baseline benchmarks
    and differential tests compare {!answer_agg} against. *)

val agg_enabled : t -> bool

val agg_kinds : t -> Stt_semiring.Semiring.kind list
(** Kinds with a precomputed table, in {!enable_agg} order; empty after
    a delta dropped the tables (answers fall back to online
    elimination). *)

val agg_budget : t -> int
(** Table budget passed to {!enable_agg}; 0 when aggregates are off. *)

val agg_complete : t -> Stt_semiring.Semiring.kind -> bool
(** Whether the kind's table covers every access key with a derivation
    (i.e. the full table fit the budget). *)

val agg_table_size : t -> int
(** Total precomputed table entries across kinds — the aggregate space
    actually held, reported alongside {!space}. *)

(** {1 Incremental maintenance}

    Single-tuple base-data deltas applied without a rebuild: the delta
    routes through each rule's heavy/light split tree (re-classifying
    exactly the keys whose degree crossed the build threshold), patches
    the affected subproblems — delegated plan indexes in place, stored
    targets by pinned delta joins and last-witness checks — and
    propagates the resulting S-view row changes into the Yannakakis
    views.  Cached answers overlapping the delta are invalidated
    precisely.  All of it is charged to the online cost counters and to
    the [maintain.probes] / [maintain.tuples] / [maintain.scans] Obs
    counters, with per-batch totals in the [engine.maintain.ops]
    histogram.

    The first delta {e thaws} the engine: S-views are re-materialized
    without the SS semijoin reduction (which {!answer} never depends
    on), since reduced views cannot absorb deltas additively; the
    conversion is charged as one scan per view tuple on that first
    delta.  Engines loaded from snapshots are static replicas: they
    answer, but reject deltas with [Failure].  A [Failure] escaping
    mid-delta (unknown relation, arity mismatch, or a newly non-empty
    subproblem impossible at the build budget) can leave the engine
    inconsistent — treat it as fatal and rebuild. *)

val insert : t -> string -> Tuple.t -> bool * Cost.snapshot
(** [insert t rel tuple] adds [tuple] to every atom of relation [rel].
    Returns whether the delta was effective (inserting a present tuple
    is a no-op) and the maintenance cost. *)

val delete : t -> string -> Tuple.t -> bool * Cost.snapshot
(** Remove a tuple; deleting an absent tuple is a no-op. *)

val apply_deltas : t -> (string * Tuple.t * bool) list -> int * Cost.snapshot
(** Apply a batch of [(relation, tuple, insert?)] deltas in order.
    Returns how many were effective and the total maintenance cost. *)

val epoch : t -> int
(** Number of effective deltas absorbed since build; 0 for a pristine
    engine.  Recorded in snapshots, so replicas can tell stale from
    fresh. *)

val supports_maintenance : t -> bool
(** [true] for built engines, [false] for snapshot-loaded replicas. *)

(** {1 Adaptive answer cache}

    The paper trades space for time statically; an attached
    {!Stt_cache.Cache} extends the trade to runtime: hot access
    requests are answered from a bounded cache charged in stored
    tuples on top of the intrinsic budget.  Results are exact — the
    cache only ever returns what {!answer} computed — and the cache
    rides along in snapshots as an optional section. *)

val attach_cache : t -> budget:int -> unit
(** Attach a fresh cache with the given stored-tuple budget (replacing
    any current one); a non-positive budget detaches instead.  The
    cache is consulted by {!answer}, {!answer_tuple} and
    {!answer_batch}, and shared by every domain answering through this
    engine. *)

val cache : t -> Stt_cache.Cache.t option
val cache_budget : t -> int
(** Configured cache budget in stored tuples; 0 when no cache. *)

val cache_space : t -> int
(** Stored tuples currently held by the cache; 0 when no cache. *)

val cache_stats : t -> Stt_cache.Cache.stats option

val total_space : t -> int
(** [space t + cache_space t + agg_table_size t] — every stored entry
    the engine holds, in one unit; what trace JSON and the serve-net
    Health report as the full memory story. *)

(** {1 Snapshots}

    A built index is pure data, so the expensive preprocessing (LP
    solves, heavy/light splits, plan search, S-view materialization and
    indexing) can be paid for once: {!save} serializes the whole
    structure to a versioned, checksummed snapshot file and {!load}
    rebuilds an engine that is observationally identical to the one that
    was saved — same {!space}, same {!answer}/{!answer_batch} results
    and the same online operation counts — without touching the source
    database. *)

val format_version : int
(** Wire-format version written by {!save}.  {!load} rejects any other
    version with [Version_skew]. *)

val save : t -> string -> (int, Stt_store.Store.error) result
(** [save t path] writes the snapshot and returns its size in bytes.
    Records an [engine.save] span and bumps the
    [snapshot.write.bytes] counter when observability is enabled.
    An attached cache is persisted as an optional trailing "cache"
    section (budget, striping and every warm entry in LRU order);
    without one the snapshot is byte-identical to earlier formats.
    An engine that has absorbed deltas also writes an optional "epoch"
    section; pristine builds omit it, keeping their snapshots
    byte-identical to earlier formats. *)

val load : string -> (t, Stt_store.Store.error) result
(** [load path] validates the file strictly — magic, format version,
    section checksums, and the structural invariants of every decoded
    component — and rebuilds the engine.  Any defect surfaces as a
    typed error, never a crash or a silently wrong structure. *)
