open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_yannakakis
open Stt_lp
open Stt_obs
module Cache = Stt_cache.Cache
module Ckey = Stt_cache.Key
module Frep = Stt_factorized.Frep
module Semiring = Stt_semiring.Semiring
module Agg_eval = Stt_semiring.Eval

(* A per-kind aggregate table over the access variables.  [complete]
   means every access tuple with at least one derivation has an entry,
   so a miss soundly contributes the semiring zero; a partial table only
   covers the heavy access keys and misses fall back to online
   elimination. *)
type agg_table = { complete : bool; entries : int Tuple.Tbl.t }

type agg_state = {
  agg_budget : int;
  agg_factors : (string * Relation.t) list;
      (* annotated base relations, aligned positionally with the CQ's
         atoms (a self-joined relation appears once per atom) *)
  mutable agg_tables : (Semiring.kind * agg_table) list;
}

type t = {
  cqap : Cq.cqap;
  pmtds : Pmtd.t list;
  rules : Rule.t list;
  structures : Twopp.t list;
  mutable preprocessed : (Pmtd.t * Online_yannakakis.preprocessed) list;
  mutable space : int;
  mutable cache : Cache.t option;
      (* workload-adaptive answer cache; None = disabled.  Charged
         against its own budget, not [space] — [space] stays the
         intrinsic S-view footprint the paper's bound talks about. *)
  mutable epoch : int;
      (* number of effective base-tuple deltas applied since build;
         recorded in snapshots so a replica can tell stale from fresh *)
  mutable thawed : bool;
      (* S-views re-materialized unreduced for incremental maintenance *)
  mutable agg : agg_state option;
      (* semiring aggregate answering; None until [enable_agg] (or a
         snapshot with an "agg" section) provides annotated factors *)
}

(* Carry the per-domain simplex pivot counter across the pool's worker
   domains: capture each worker's local total, merge it into the parent
   after the join, so pivot counts stay exact under any job count. *)
let () =
  Pool.register_worker_hook (fun () ->
      let n = Simplex.pivot_count () in
      fun () -> Simplex.add_pivots n)

let cqap t = t.cqap
let pmtds t = t.pmtds
let rules t = t.rules
let space t = t.space
let structures t = t.structures
let cache t = t.cache

let attach_cache t ~budget =
  t.cache <- (if budget <= 0 then None else Some (Cache.create ~budget ()))

let cache_space t = match t.cache with None -> 0 | Some c -> Cache.used c
let cache_budget t = match t.cache with None -> 0 | Some c -> Cache.budget c
let cache_stats t = Option.map Cache.stats t.cache

let per_pmtd_space t =
  List.map (fun (p, oy) -> (p, Online_yannakakis.space oy)) t.preprocessed

let materialized_rows t =
  List.fold_left
    (fun acc (_, oy) -> acc + Online_yannakakis.logical_rows oy)
    0 t.preprocessed

let factorized_views t =
  List.fold_left
    (fun acc (_, oy) ->
      acc + List.length (Online_yannakakis.factorized_views oy))
    0 t.preprocessed

let access_schema t = Schema.of_list (Varset.to_list t.cqap.Cq.access)

let schema_of_set b = Schema.of_list (Varset.to_list b)

(* union of target relations whose schema equals [b] *)
let view_of_targets targets b =
  let empty = Relation.create (schema_of_set b) in
  List.fold_left
    (fun acc (b', rel) -> if Varset.equal b b' then Relation.union acc rel else acc)
    empty targets

(* Parallel map over the domain pool for build phases.  Each task runs
   under its own Obs context (worker domains have isolated DLS traces),
   adopted back in input order — so the trace, like the results and the
   Cost counters, is independent of the job count. *)
let pmap f xs =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | xs ->
      let tasks = List.map (fun x -> (x, Obs.create_context ())) xs in
      let res =
        Pool.map (fun (x, ctx) -> Obs.with_context ctx (fun () -> f x)) tasks
      in
      List.iter (fun (_, ctx) -> Obs.adopt ctx) tasks;
      res

let build ?(counted = false) cqap pmtd_list ~db ~budget =
  Obs.span "engine.build" ~attrs:[ ("budget", Json.Int budget) ] @@ fun () ->
  let rules = Rule.generate cqap pmtd_list in
  Obs.set_attr "pmtds" (Json.Int (List.length pmtd_list));
  Obs.set_attr "rules" (Json.Int (List.length rules));
  Obs.set_attr "jobs" (Json.Int (Pool.jobs ()));
  (* phase 1: the 2PP structure of every rule, in parallel across rules *)
  let structures = pmap (fun r -> Twopp.build ~counted r ~db ~budget) rules in
  let all_s_targets = List.concat_map Twopp.s_targets structures in
  (* phase 2: Yannakakis preprocessing, in parallel across PMTDs (reads
     the shared S-targets, writes only per-PMTD state) *)
  let preprocessed =
    Cost.with_counting counted (fun () ->
        pmap
          (fun p ->
            let s_views node =
              view_of_targets all_s_targets (Pmtd.view p node).Pmtd.vars
            in
            (p, Online_yannakakis.preprocess p ~s_views))
          pmtd_list)
  in
  let space =
    List.fold_left
      (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
      0 preprocessed
  in
  Obs.set_attr "space" (Json.Int space);
  Obs.set_attr "pmtd_space"
    (Json.List
       (List.map
          (fun (_, oy) -> Json.Int (Online_yannakakis.space oy))
          preprocessed));
  {
    cqap;
    pmtds = pmtd_list;
    rules;
    structures;
    preprocessed;
    space;
    cache = None;
    epoch = 0;
    thawed = false;
    agg = None;
  }

let build_auto ?counted ?max_pmtds cqap ~db ~budget =
  build ?counted cqap (Enum.pmtds ?max_pmtds cqap) ~db ~budget

(* The online pipeline without observability wrapping: one 2PP online
   pass per rule, T-views unioned per PMTD, Online Yannakakis per PMTD,
   results unioned.  Returns the scoped online cost. *)
let answer_scoped t ~q_a =
  Cost.scoped (fun () ->
      let all_t_targets =
        List.concat_map (fun s -> Twopp.online s ~q_a) t.structures
      in
      let head = t.cqap.Cq.cq.Cq.head in
      let result =
        ref (Relation.create (Schema.of_list (Varset.to_list head)))
      in
      List.iter
        (fun (p, oy) ->
          let t_views node =
            view_of_targets all_t_targets (Pmtd.view p node).Pmtd.vars
          in
          let psi = Online_yannakakis.answer oy ~t_views ~q_a in
          result := Relation.union !result psi)
        t.preprocessed;
      !result)

let answer t ~q_a =
  Obs.span "engine.answer" @@ fun () ->
  let result, cost, via =
    match t.cache with
    | None ->
        let r, c = answer_scoped t ~q_a in
        (r, c, "direct")
    | Some cache -> (
        let access = access_schema t in
        let rows = Ckey.canon ~access q_a in
        let key = Ckey.encode ~arity:(Schema.arity access) rows in
        match Cost.scoped (fun () -> Cache.find cache key) with
        | Some r, c -> (r, c, "hit")
        | None, lookup ->
            let r, c = answer_scoped t ~q_a in
            Cache.add cache ~key ~key_tuples:(List.length rows) r;
            (r, Cost.add lookup c, "miss"))
  in
  if Obs.enabled () then begin
    Obs.set_attr "cache" (Json.String via);
    Obs.set_attr "q_a" (Json.Int (Relation.cardinal q_a));
    Obs.set_attr "result" (Json.Int (Relation.cardinal result));
    Obs.set_attr "cost"
      (Json.Obj
         [
           ("probes", Json.Int cost.Cost.probes);
           ("tuples", Json.Int cost.Cost.tuples);
           ("scans", Json.Int cost.Cost.scans);
         ]);
    Obs.observe "engine.answer.ops" (float_of_int (Cost.total cost))
  end;
  result

let answer_tuple t tup =
  let q_a = Relation.create (access_schema t) in
  Relation.add q_a tup;
  not (Relation.is_empty (answer t ~q_a))

(* ------------------------------------------------------------------ *)
(* batched answering                                                    *)
(* ------------------------------------------------------------------ *)

(* [share total n i] — the i-th request's even share of a batch-shared
   snapshot: quotient everywhere, remainder distributed one op at a time
   to the earliest requests, so shares sum exactly to [total]. *)
let share total n i =
  let part v = (v / n) + if i < v mod n then 1 else 0 in
  {
    Cost.probes = part total.Cost.probes;
    tuples = part total.Cost.tuples;
    scans = part total.Cost.scans;
  }

let answer_batch t reqs =
  Obs.span "engine.answer_batch"
    ~attrs:[ ("requests", Json.Int (List.length reqs)) ]
  @@ fun () ->
  match reqs with
  | [] -> []
  | reqs ->
      let n = List.length reqs in
      let acc_schema = access_schema t in
      let acc_vars = Schema.vars acc_schema in
      let arity = Schema.arity acc_schema in
      (* canonical form of a request — tuples reordered to the access
         schema and sorted (Stt_cache.Key, shared with the answer
         cache so dedup and cache keying can never disagree) *)
      let keyed =
        List.map
          (fun q ->
            let rows = Ckey.canon ~access:acc_schema q in
            (Ckey.encode ~arity rows, rows, q))
          reqs
      in
      let first_idx = Hashtbl.create 16 in
      let uniq = ref [] in
      List.iteri
        (fun i (key, rows, q) ->
          if not (Hashtbl.mem first_idx key) then begin
            Hashtbl.add first_idx key i;
            uniq := (key, rows, q) :: !uniq
          end)
        keyed;
      let uniq = List.rev !uniq in
      let head = t.cqap.Cq.cq.Cq.head in
      let sliceable = Varset.subset t.cqap.Cq.access head in
      Obs.set_attr "unique" (Json.Int (List.length uniq));
      (* per unique request: its answer and the marginal cost of the
         first evaluation; [shared] is the batch-shared cost *)
      let results = Hashtbl.create 16 in
      (* the failed cache probe of a miss, folded into that request's
         marginal below *)
      let miss_lookup = Hashtbl.create 16 in
      let shared = ref Cost.zero in
      let misses =
        match t.cache with
        | None -> uniq
        | Some cache ->
            List.filter
              (fun (key, _, _) ->
                match Cost.scoped (fun () -> Cache.find cache key) with
                | Some r, c ->
                    Hashtbl.add results key (r, c);
                    false
                | None, c ->
                    Hashtbl.add miss_lookup key c;
                    true)
              uniq
      in
      Obs.set_attr "cache_hits"
        (Json.Int (List.length uniq - List.length misses));
      Obs.set_attr "sliced" (Json.Bool (sliceable && List.length misses > 1));
      if sliceable && List.length misses > 1 then begin
        (* access ⊆ head: answer the union of all requests once, then
           slice each request's answer back out.  Sound because
           answer(q) = {h ∈ answer(∪ q_j) : h[access] ∈ q} when the
           access variables survive into the head.  The combined answer
           is grouped by its access-variable values once (shared), so a
           slice costs one probe per request tuple plus its output. *)
        let (head_schema, groups), shared_cost =
          Cost.scoped (fun () ->
              let combined = Relation.create acc_schema in
              List.iter
                (fun (_, rows, _) -> List.iter (Relation.add combined) rows)
                misses;
              let result, _ = answer_scoped t ~q_a:combined in
              let head_schema = Relation.schema result in
              let pos = Schema.positions head_schema acc_vars in
              let scratch = Array.make (Array.length pos) 0 in
              let groups = Tuple.Tbl.create 64 in
              Relation.iter
                (fun tup ->
                  Cost.charge_scan ();
                  Tuple.project_into pos tup scratch;
                  match Tuple.Tbl.find_opt groups scratch with
                  | Some rows -> rows := tup :: !rows
                  | None ->
                      Tuple.Tbl.add groups (Array.copy scratch) (ref [ tup ]))
                result;
              (head_schema, groups))
        in
        shared := shared_cost;
        List.iter
          (fun (key, rows, _) ->
            let sliced, c =
              Cost.scoped (fun () ->
                  let out = Relation.create head_schema in
                  List.iter
                    (fun ktup ->
                      Cost.charge_probe ();
                      match Tuple.Tbl.find_opt groups ktup with
                      | Some rows -> List.iter (Relation.add out) !rows
                      | None -> ())
                    rows;
                  out)
            in
            Hashtbl.add results key (sliced, c))
          misses
      end
      else
        (* access pattern not in the head (or a single distinct miss):
           evaluate each unique request once; duplicates still share *)
        List.iter
          (fun (key, _, q) ->
            let r, c = answer_scoped t ~q_a:q in
            Hashtbl.add results key (r, c))
          misses;
      (* install the freshly evaluated answers for the next batch *)
      (match t.cache with
      | None -> ()
      | Some cache ->
          List.iter
            (fun (key, rows, _) ->
              match Hashtbl.find_opt results key with
              | Some (r, _) ->
                  Cache.add cache ~key ~key_tuples:(List.length rows) r
              | None -> ())
            misses);
      (* input-order results; cost accounting: every request carries an
         even share of the batch-shared cost, the first occurrence of a
         request additionally carries its marginal evaluation cost (for
         a cache miss, including the failed cache probe) *)
      List.mapi
        (fun i (key, _, _) ->
          let r, marginal = Hashtbl.find results key in
          let c = share !shared n i in
          let c =
            if Hashtbl.find first_idx key = i then
              let lookup =
                Option.value ~default:Cost.zero
                  (Hashtbl.find_opt miss_lookup key)
              in
              Cost.add (Cost.add c lookup) marginal
            else c
          in
          (r, c))
        keyed

(* ------------------------------------------------------------------ *)
(* semiring aggregates                                                  *)
(* ------------------------------------------------------------------ *)

(* schema of cached aggregate answers: a one-row, one-column relation
   holding the scalar (the variable id is arbitrary — the cache key's
   kind byte, not the schema, is what distinguishes it from tuple
   answers) *)
let scalar_schema = Schema.of_list [ 0 ]

let agg_enabled t = t.agg <> None
let agg_budget t = match t.agg with None -> 0 | Some st -> st.agg_budget
let agg_kinds t =
  match t.agg with None -> [] | Some st -> List.map fst st.agg_tables

let agg_complete t k =
  match t.agg with
  | None -> false
  | Some st -> (
      match List.assoc_opt k st.agg_tables with
      | Some tbl -> tbl.complete
      | None -> false)

let agg_table_size t =
  match t.agg with
  | None -> 0
  | Some st ->
      List.fold_left
        (fun acc (_, tbl) -> acc + Tuple.Tbl.length tbl.entries)
        0 st.agg_tables

(* Everything the engine holds, in one unit (stored singletons /
   entries): intrinsic S-view space, the answer cache's charged entries,
   and the aggregate tables' rows.  The single number trace JSON and the
   serve-net Health report. *)
let total_space t = t.space + cache_space t + agg_table_size t

let agg_state t =
  match t.agg with
  | Some st -> st
  | None -> failwith "Engine: aggregates not enabled (call enable_agg)"

let factors_of st k =
  List.map (fun (_, r) -> Agg_eval.of_relation k r) st.agg_factors

(* Precompute the per-kind aggregate tables over the access variables by
   full offline elimination (uncounted — preprocessing time is not what
   the paper optimizes).  The COUNT table is always computed first: its
   per-key derivation counts are the work proxy that picks which access
   keys stay in the tables when the full table exceeds the budget (the
   heavy keys — exactly where online answering is expensive).  Partial
   tables are marked incomplete so misses fall back to online
   elimination instead of soundly-looking zeroes. *)
let build_agg_tables t ~kinds =
  match t.agg with
  | None -> ()
  | Some st ->
      Cost.with_counting false @@ fun () ->
      let access = access_schema t in
      let count_tbl =
        Agg_eval.table Semiring.Count (factors_of st Semiring.Count) ~access
      in
      let n = Tuple.Tbl.length count_tbl in
      let heavy =
        if n <= st.agg_budget then None
        else begin
          let all =
            Tuple.Tbl.fold (fun key c acc -> (key, c) :: acc) count_tbl []
          in
          (* ties broken by tuple order so the table is deterministic *)
          let sorted =
            List.sort
              (fun (ka, a) (kb, b) ->
                match compare b a with 0 -> Tuple.compare ka kb | c -> c)
              all
          in
          let keep = Tuple.Tbl.create (max 16 st.agg_budget) in
          List.iteri
            (fun i (key, _) ->
              if i < st.agg_budget then Tuple.Tbl.replace keep key ())
            sorted;
          Some keep
        end
      in
      let restrict tbl =
        match heavy with
        | None -> { complete = true; entries = tbl }
        | Some keep ->
            let entries = Tuple.Tbl.create (max 16 (Tuple.Tbl.length keep)) in
            Tuple.Tbl.iter
              (fun key v ->
                if Tuple.Tbl.mem keep key then Tuple.Tbl.replace entries key v)
              tbl;
            { complete = false; entries }
      in
      st.agg_tables <-
        List.map
          (fun k ->
            let tbl =
              if k = Semiring.Count then count_tbl
              else Agg_eval.table k (factors_of st k) ~access
            in
            (k, restrict tbl))
          kinds

let enable_agg ?(kinds = Semiring.all) t ~db ~budget =
  Obs.span "engine.enable_agg" ~attrs:[ ("budget", Json.Int budget) ]
  @@ fun () ->
  if budget < 0 then invalid_arg "Engine.enable_agg: negative budget";
  let agg_factors =
    Cost.with_counting false (fun () ->
        List.map
          (fun (a : Cq.atom) -> (a.Cq.rel, Db.relation db a))
          t.cqap.Cq.cq.Cq.atoms)
  in
  t.agg <- Some { agg_budget = budget; agg_factors; agg_tables = [] };
  build_agg_tables t ~kinds;
  Obs.set_attr "table_rows" (Json.Int (agg_table_size t))

(* The online aggregate of canonical access rows.  A table hit charges
   one probe per request row plus one tuple per combined row — never
   less than what answering the same request from a materialized answer
   would charge.  Rows missing from a partial table are collected and
   answered by one annotated-elimination run (counted: it is online
   work). *)
let answer_agg_scoped t k ~rows =
  let st = agg_state t in
  Cost.scoped (fun () ->
      let online light =
        let q = Relation.create (access_schema t) in
        List.iter (Relation.add q) light;
        Agg_eval.aggregate k (factors_of st k) ~q_a:q
      in
      match List.assoc_opt k st.agg_tables with
      | Some { complete; entries } ->
          let acc = ref (Semiring.zero k) in
          let light = ref [] in
          List.iter
            (fun row ->
              Cost.charge_probe ();
              match Tuple.Tbl.find_opt entries row with
              | Some v ->
                  Cost.charge_tuple ();
                  acc := Semiring.add k !acc v
              | None -> if not complete then light := row :: !light)
            rows;
          if !light <> [] then acc := Semiring.add k !acc (online !light);
          !acc
      | None -> online rows)

(* the materialize-then-fold reference at the same request: flat join of
   the annotated factors (request included), then ⊕-fold.  Counted —
   this is the baseline the benchmarks and the differential op-sanity
   check compare against. *)
let agg_baseline t k ~q_a =
  let st = agg_state t in
  Cost.scoped (fun () -> Agg_eval.brute k (factors_of st k) ~q_a)

let answer_agg t k ~q_a =
  Obs.span "engine.answer_agg"
    ~attrs:[ ("kind", Json.String (Semiring.name k)) ]
  @@ fun () ->
  let access = access_schema t in
  let rows = Ckey.canon ~access q_a in
  let kind = Semiring.to_tag k in
  let value, cost, via =
    match t.cache with
    | None ->
        let v, c = answer_agg_scoped t k ~rows in
        (v, c, "direct")
    | Some cache -> (
        let key = Ckey.encode ~kind ~arity:(Schema.arity access) rows in
        match Cost.scoped (fun () -> Cache.find cache key) with
        | Some r, c ->
            let v = Relation.fold (fun tup _ -> tup.(0)) r (Semiring.zero k) in
            (v, c, "hit")
        | None, lookup ->
            let v, c = answer_agg_scoped t k ~rows in
            (* the tropical sentinels (MIN's "no row" = [max_int], MAX's
               [min_int]) don't survive the cache's zigzag row codec, so
               empty-aggregate answers are recomputed rather than cached *)
            if v <> max_int && v <> min_int then begin
              let r =
                Cost.with_counting false (fun () ->
                    let r = Relation.create scalar_schema in
                    Relation.add r [| v |];
                    r)
              in
              Cache.add cache ~key ~key_tuples:(List.length rows) r
            end;
            (v, Cost.add lookup c, "miss"))
  in
  if Obs.enabled () then begin
    Obs.set_attr "cache" (Json.String via);
    Obs.set_attr "q_a" (Json.Int (Relation.cardinal q_a));
    Obs.observe "engine.answer_agg.ops" (float_of_int (Cost.total cost))
  end;
  (value, cost)

let answer_batch_agg t k reqs =
  Obs.span "engine.answer_batch_agg"
    ~attrs:
      [
        ("kind", Json.String (Semiring.name k));
        ("requests", Json.Int (List.length reqs));
      ]
  @@ fun () -> List.map (fun q_a -> answer_agg t k ~q_a) reqs

(* ------------------------------------------------------------------ *)
(* incremental maintenance                                              *)
(* ------------------------------------------------------------------ *)

let epoch t = t.epoch

let supports_maintenance t =
  t.structures <> [] && List.for_all Twopp.supports_maintenance t.structures

(* First delta against a built engine: re-materialize the S-views
   without the SS semijoin reduction (a pure space optimization that
   [answer] never depends on), because reduced views cannot absorb
   single-tuple deltas additively.  The conversion is charged as one
   scan per re-materialized view tuple — a one-time reorganization cost
   that lands on the first delta and amortizes over the stream. *)
let thaw t =
  if not t.thawed then begin
    let all_s_targets = List.concat_map Twopp.s_targets t.structures in
    let preprocessed =
      Cost.with_counting false (fun () ->
          List.map
            (fun (p, _) ->
              let s_views node =
                view_of_targets all_s_targets (Pmtd.view p node).Pmtd.vars
              in
              ( p,
                Online_yannakakis.preprocess ~reduce:false ~factorize:false p
                  ~s_views ))
            t.preprocessed)
    in
    t.preprocessed <- preprocessed;
    let space =
      List.fold_left
        (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
        0 preprocessed
    in
    for _ = 1 to space do
      Cost.charge_scan ()
    done;
    t.space <- space;
    t.thawed <- true;
    Obs.incr "maintain.thaw"
  end

let known_relation t rel =
  List.exists (fun (a : Cq.atom) -> a.Cq.rel = rel) t.cqap.Cq.cq.Cq.atoms

(* Access requests whose answers can change with the delta: the
   access-variable projections of every body derivation that uses the
   tuple at some atom.  Computed against the base relations — before
   applying a delete (the dying derivations), after applying an insert
   (the new ones).  The pinned singleton is the smallest join input, so
   the greedy join stays narrow around the tuple. *)
let affected_access t ~rel ~tuple =
  match t.structures with
  | [] -> Tuple.Tbl.create 1
  | s :: _ ->
      let base = Twopp.base_relations s in
      let access = Varset.to_list t.cqap.Cq.access in
      let acc = Tuple.Tbl.create 16 in
      List.iter
        (fun ((a : Cq.atom), _) ->
          if a.Cq.rel = rel then begin
            let single =
              Relation.singleton (Schema.of_list a.Cq.vars) tuple
            in
            let others =
              List.filter_map
                (fun (a', r) -> if a' == a then None else Some r)
                base
            in
            let reach = Db.join_greedy (single :: others) ~keep:access in
            Relation.iter
              (fun row ->
                if not (Tuple.Tbl.mem acc row) then
                  Tuple.Tbl.add acc (Array.copy row) ())
              reach
          end)
        base;
      acc

let invalidate_cache t affected =
  match t.cache with
  | None -> 0
  | Some cache ->
      if Tuple.Tbl.length affected = 0 then 0
      else
        (* all answer kinds alike: a tuple answer and an aggregate over
           the same affected access tuple are both stale *)
        Cache.invalidate cache (fun key ->
            let _, _, rows = Ckey.decode key in
            List.exists (Tuple.Tbl.mem affected) rows)

(* S-view routing: an S-view row change for target [b] lands on every
   materialized node whose view variables equal [b], across all PMTDs. *)
let nodes_for t b =
  List.concat_map
    (fun (p, oy) ->
      List.filter_map
        (fun node ->
          if Varset.equal (Pmtd.view p node).Pmtd.vars b then Some (oy, node)
          else None)
        (Online_yannakakis.materialized_nodes oy))
    t.preprocessed

let apply_one t ~rel ~tuple ~add =
  if not (known_relation t rel) then
    failwith (Printf.sprintf "Engine: delta against unknown relation %s" rel);
  (* reject malformed deltas before any state is touched, so a bad
     request cannot leave the engine half-updated *)
  List.iter
    (fun (a : Cq.atom) ->
      if a.Cq.rel = rel && List.length a.Cq.vars <> Tuple.arity tuple then
        failwith
          (Printf.sprintf "Engine: arity-%d delta for %d-ary relation %s"
             (Tuple.arity tuple)
             (List.length a.Cq.vars)
             rel))
    t.cqap.Cq.cq.Cq.atoms;
  if not (supports_maintenance t) then
    failwith
      "Engine: snapshot-loaded engines are static replicas and cannot \
       accept deltas";
  thaw t;
  let present =
    Twopp.base_mem (List.hd t.structures) ~rel tuple
  in
  if add = present then false (* redundant delta: no-op *)
  else begin
    (* for a delete, the dying derivations must be probed before the
       base loses the tuple *)
    let pre_affected =
      if (not add) && t.cache <> None then Some (affected_access t ~rel ~tuple)
      else None
    in
    let events =
      List.concat_map
        (fun s ->
          List.map (fun ev -> ev) (Twopp.apply_delta s ~rel ~tuple ~add))
        t.structures
    in
    let inserts, deletes = List.partition (fun (_, _, sign) -> sign) events in
    List.iter
      (fun (b, row, _) ->
        List.iter
          (fun (oy, node) ->
            ignore (Online_yannakakis.insert_view_tuple oy node row))
          (nodes_for t b))
      inserts;
    List.iter
      (fun (b, row, _) ->
        (* the row leaves the views only once no structure stores it *)
        if
          not
            (List.exists (fun s -> Twopp.stored_mem s b row) t.structures)
        then
          List.iter
            (fun (oy, node) ->
              ignore (Online_yannakakis.delete_view_tuple oy node row))
            (nodes_for t b))
      deletes;
    t.space <-
      List.fold_left
        (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
        0 t.preprocessed;
    let affected =
      match pre_affected with
      | Some a -> Some a
      | None ->
          if t.cache <> None then Some (affected_access t ~rel ~tuple)
          else None
    in
    (match affected with
    | Some aff ->
        let n = invalidate_cache t aff in
        if n > 0 then Obs.incr ~by:n "cache.invalidate"
    | None -> ());
    (* aggregate state: patch the annotated factors in place (a delta
       carries no weight, so an inserted tuple starts from the kind's
       default annotation) and drop the precomputed tables — subsequent
       aggregate requests fall back to online elimination *)
    (match t.agg with
    | None -> ()
    | Some st ->
        List.iter
          (fun (name, frel) ->
            if name = rel then
              if add then Relation.add frel tuple
              else ignore (Relation.remove frel tuple))
          st.agg_factors;
        if st.agg_tables <> [] then begin
          st.agg_tables <- [];
          Obs.incr "agg.tables_dropped"
        end);
    t.epoch <- t.epoch + 1;
    true
  end

let apply_deltas t deltas =
  Obs.span "engine.maintain"
    ~attrs:[ ("deltas", Json.Int (List.length deltas)) ]
  @@ fun () ->
  let applied = ref 0 in
  let (), cost =
    Cost.scoped (fun () ->
        List.iter
          (fun (rel, tuple, add) ->
            if apply_one t ~rel ~tuple ~add then incr applied)
          deltas)
  in
  if Obs.enabled () then begin
    Obs.set_attr "applied" (Json.Int !applied);
    Obs.set_attr "epoch" (Json.Int t.epoch);
    Obs.incr ~by:cost.Cost.probes "maintain.probes";
    Obs.incr ~by:cost.Cost.tuples "maintain.tuples";
    Obs.incr ~by:cost.Cost.scans "maintain.scans";
    Obs.observe "engine.maintain.ops" (float_of_int (Cost.total cost))
  end;
  (!applied, cost)

let insert t rel tuple =
  let applied, cost = apply_deltas t [ (rel, tuple, true) ] in
  (applied > 0, cost)

let delete t rel tuple =
  let applied, cost = apply_deltas t [ (rel, tuple, false) ] in
  (applied > 0, cost)

(* ------------------------------------------------------------------ *)
(* snapshots                                                            *)
(* ------------------------------------------------------------------ *)

module Store = Stt_store.Store
module C = Stt_store.Codec

let format_version = 1

(* Semantic violations raise [Codec.Corrupt] so the store layer surfaces
   them as [Malformed] — a snapshot whose every CRC checks out can still
   describe an impossible structure, and loading must reject it rather
   than crash later during [answer]. *)
let corrupt fmt = Printf.ksprintf (fun s -> raise (C.Corrupt s)) fmt

let guard ctx f =
  try f () with
  | Invalid_argument msg | Failure msg -> corrupt "%s: %s" ctx msg
  | Not_found -> corrupt "%s: missing binding" ctx

let write_vs e vs = C.write_uint e (Varset.to_int vs)
let read_vs d = Varset.of_int_unsafe (C.read_uint d)

let read_vs_in full ctx d =
  let vs = read_vs d in
  if not (Varset.subset vs full) then corrupt "%s: variables out of range" ctx;
  vs

(* relations: schema variables, then the tuple block sorted so the
   column-major delta codec sees slowly-changing columns *)
let write_relation e rel =
  let schema = Relation.schema rel in
  C.write_list e (C.write_uint e) (Schema.vars schema);
  C.write_rows e
    ~arity:(Schema.arity schema)
    (List.sort Tuple.compare (Relation.to_list rel))

let read_relation d =
  let vars = C.read_list d (fun () -> C.read_uint d) in
  let schema = guard "relation schema" (fun () -> Schema.of_list vars) in
  let rows = C.read_rows d ~arity:(Schema.arity schema) in
  let rel = Relation.create schema in
  List.iter (fun r -> guard "relation row" (fun () -> Relation.add rel r)) rows;
  rel

(* Semiring values: the zigzag varint cannot carry the tropical
   ±infinity sentinels (MIN's [max_int], MAX's [min_int]) — [v lsl 1]
   overflows — so they get their own tag bytes. *)
let write_val e v =
  if v = max_int then C.write_u8 e 1
  else if v = min_int then C.write_u8 e 2
  else begin
    C.write_u8 e 0;
    C.write_int e v
  end

let read_val d =
  match C.read_u8 d with
  | 0 -> C.read_int d
  | 1 -> max_int
  | 2 -> min_int
  | n -> corrupt "semiring value: tag %d" n

(* annotated relations: the plain tuple block, then one presence flag
   (and value) per row in the same sorted order write_relation used *)
let write_annotated e rel =
  write_relation e rel;
  List.iter
    (fun tup ->
      match Relation.annotation_opt rel tup with
      | Some v ->
          C.write_bool e true;
          write_val e v
      | None -> C.write_bool e false)
    (List.sort Tuple.compare (Relation.to_list rel))

let read_annotated d =
  let rel = read_relation d in
  List.iter
    (fun tup -> if C.read_bool d then Relation.annotate rel tup (read_val d))
    (List.sort Tuple.compare (Relation.to_list rel));
  rel

(* indexes: the row-major data array (in index order — bucket offsets
   point into it) plus one (key, offset, length) triple per bucket,
   sorted by key for determinism *)
let write_index e idx =
  let schema = Index.source_schema idx in
  let arity = Schema.arity schema in
  let key_vars = Index.key_vars idx in
  C.write_list e (C.write_uint e) key_vars;
  C.write_list e (C.write_uint e) (Schema.vars schema);
  let data = Index.raw_data idx in
  let n_rows = if arity > 0 then Array.length data / arity else Index.space idx in
  C.write_rows e ~arity (List.init n_rows (fun i -> Array.sub data (i * arity) arity));
  let buckets =
    List.sort (fun (a, _, _) (b, _, _) -> Tuple.compare a b) (Index.buckets idx)
  in
  C.write_rows e ~arity:(List.length key_vars)
    (List.map (fun (k, _, _) -> k) buckets);
  List.iter
    (fun (_, start, len) ->
      C.write_uint e start;
      C.write_uint e len)
    buckets

let read_index d =
  let key_vars = C.read_list d (fun () -> C.read_uint d) in
  let vars = C.read_list d (fun () -> C.read_uint d) in
  let schema = guard "index schema" (fun () -> Schema.of_list vars) in
  let data = Array.concat (C.read_rows d ~arity:(Schema.arity schema)) in
  let keys = C.read_rows d ~arity:(List.length key_vars) in
  let buckets =
    List.rev
      (List.fold_left
         (fun acc key ->
           let start = C.read_uint d in
           let len = C.read_uint d in
           (key, start, len) :: acc)
         [] keys)
  in
  guard "index" (fun () ->
      Index.of_buckets ~key_vars ~source_schema:schema ~data ~buckets)

let write_cqap e (q : Cq.cqap) =
  let cq = q.Cq.cq in
  C.write_uint e cq.Cq.n;
  C.write_list e (C.write_string e) (Array.to_list cq.Cq.var_names);
  write_vs e cq.Cq.head;
  write_vs e q.Cq.access;
  C.write_list e
    (fun (a : Cq.atom) ->
      C.write_string e a.Cq.rel;
      C.write_list e (C.write_uint e) a.Cq.vars)
    cq.Cq.atoms

let read_cqap d =
  let n = C.read_uint d in
  if n > 62 then corrupt "cqap: %d variables (max 62)" n;
  let var_names = Array.of_list (C.read_list d (fun () -> C.read_string d)) in
  if Array.length var_names <> n then corrupt "cqap: var_names length";
  let full = Varset.full n in
  let head = read_vs_in full "cqap head" d in
  let access = read_vs_in full "cqap access" d in
  let atoms =
    C.read_list d (fun () ->
        let rel = C.read_string d in
        let vars = C.read_list d (fun () -> C.read_uint d) in
        { Cq.rel; vars })
  in
  let cq = guard "cqap" (fun () -> Cq.create ~var_names ~head atoms) in
  (* [head] was normalized to contain [access] when the index was built,
     so [with_access] reconstructs the head verbatim *)
  guard "cqap access" (fun () -> Cq.with_access cq access)

let write_pmtd e (p : Pmtd.t) =
  let tree = p.Pmtd.td.Td.tree in
  let size = Rtree.size tree in
  C.write_uint e size;
  for i = 0 to size - 1 do
    C.write_int e (match Rtree.parent tree i with None -> -1 | Some q -> q)
  done;
  Array.iter (write_vs e) p.Pmtd.td.Td.bags;
  Array.iter (C.write_bool e) p.Pmtd.materialized

let read_pmtd cqap d =
  let size = C.read_uint d in
  if size = 0 then corrupt "pmtd: empty tree";
  let parent = Array.make size 0 in
  for i = 0 to size - 1 do
    parent.(i) <- C.read_int d
  done;
  let full = Varset.full cqap.Cq.cq.Cq.n in
  let bags = Array.make size Varset.empty in
  for i = 0 to size - 1 do
    bags.(i) <- read_vs_in full "pmtd bag" d
  done;
  let materialized = Array.make size false in
  for i = 0 to size - 1 do
    materialized.(i) <- C.read_bool d
  done;
  let tree = guard "pmtd tree" (fun () -> Rtree.create ~parent) in
  let td = guard "pmtd td" (fun () -> Td.create tree bags) in
  match Pmtd.create cqap td ~materialized with
  | Ok p -> p
  | Error msg -> corrupt "pmtd: %s" msg

let write_rule e (r : Rule.t) =
  C.write_list e (write_vs e) r.Rule.s_targets;
  C.write_list e (write_vs e) r.Rule.t_targets

let read_rule cqap d =
  let full = Varset.full cqap.Cq.cq.Cq.n in
  let s_targets = C.read_list d (fun () -> read_vs_in full "rule s-target" d) in
  let t_targets = C.read_list d (fun () -> read_vs_in full "rule t-target" d) in
  guard "rule" (fun () -> Rule.make cqap ~s_targets ~t_targets)

let write_step e (s : Twopp.step) =
  write_index e s.Twopp.idx;
  C.write_list e (C.write_uint e) s.Twopp.keep

let read_step d =
  let idx = read_index d in
  let keep = C.read_list d (fun () -> C.read_uint d) in
  { Twopp.idx; keep }

let write_structure e st =
  C.write_uint e (Twopp.stored_subproblems st);
  C.write_list e
    (fun (vs, rel) ->
      write_vs e vs;
      write_relation e rel)
    (List.sort (fun (a, _) (b, _) -> Varset.compare a b) (Twopp.s_targets st));
  C.write_list e
    (fun (sub : Twopp.subproblem) ->
      write_vs e sub.Twopp.t_target;
      C.write_uint e sub.Twopp.cap;
      C.write_list e (write_step e) sub.Twopp.probe_plan;
      C.write_list e (write_step e) sub.Twopp.safe_plan)
    (Twopp.delegated st)

let read_structure cqap rule d =
  let full = Varset.full cqap.Cq.cq.Cq.n in
  let stored_subs = C.read_uint d in
  let stored =
    C.read_list d (fun () ->
        let vs = read_vs_in full "stored s-target" d in
        let rel = read_relation d in
        if not (Schema.equal (Relation.schema rel) (schema_of_set vs)) then
          corrupt "stored s-target: relation schema differs from target";
        (vs, rel))
  in
  let delegated =
    C.read_list d (fun () ->
        let t_target = read_vs_in full "delegated t-target" d in
        let cap = C.read_uint d in
        let probe_plan = C.read_list d (fun () -> read_step d) in
        let safe_plan = C.read_list d (fun () -> read_step d) in
        { Twopp.t_target; probe_plan; safe_plan; cap })
  in
  Twopp.import rule ~stored ~delegated ~stored_subs

let write_preprocessed e oy =
  C.write_list e
    (fun (node, rel, idx) ->
      C.write_uint e node;
      write_relation e rel;
      write_index e idx)
    (Online_yannakakis.export oy)

let read_preprocessed (p : Pmtd.t) d =
  let size = Td.size p.Pmtd.td in
  let seen = Array.make size false in
  let entries =
    C.read_list d (fun () ->
        let node = C.read_uint d in
        if node >= size then corrupt "s-view node %d out of range" node;
        if not p.Pmtd.materialized.(node) then
          corrupt "s-view at non-materialized node %d" node;
        if seen.(node) then corrupt "duplicate s-view for node %d" node;
        seen.(node) <- true;
        let rel = read_relation d in
        if
          not
            (Schema.equal (Relation.schema rel)
               (schema_of_set (Pmtd.view p node).Pmtd.vars))
        then corrupt "s-view %d: relation schema differs from the view" node;
        let idx = read_index d in
        (node, rel, idx))
  in
  Array.iteri
    (fun i m -> if m && not seen.(i) then corrupt "missing s-view for node %d" i)
    p.Pmtd.materialized;
  Online_yannakakis.import p entries

let save t path =
  Obs.span "engine.save" ~attrs:[ ("path", Json.String path) ] @@ fun () ->
  Cost.with_counting false @@ fun () ->
  let sections =
    [
      ("cqap", fun e -> write_cqap e t.cqap);
      ("pmtds", fun e -> C.write_list e (write_pmtd e) t.pmtds);
      ("rules", fun e -> C.write_list e (write_rule e) t.rules);
      ("twopp", fun e -> C.write_list e (write_structure e) t.structures);
      ( "yannakakis",
        fun e ->
          C.write_list e (fun (_, oy) -> write_preprocessed e oy) t.preprocessed
      );
      ( "summary",
        fun e ->
          C.write_uint e t.space;
          C.write_uint e (List.length t.pmtds);
          C.write_uint e (List.length t.rules) );
    ]
  in
  (* optional section: the delta epoch.  Written only after the engine
     has absorbed deltas, so snapshots of pristine builds are unchanged
     byte for byte; a replica uses it to tell stale from fresh. *)
  let sections =
    if t.epoch = 0 then sections
    else sections @ [ ("epoch", fun e -> C.write_uint e t.epoch) ]
  in
  (* optional trailing section: a warm answer cache.  Written only when
     one is attached, so snapshots from cache-less engines are unchanged
     byte for byte and readers predating the section still load them. *)
  let sections =
    match t.cache with
    | None -> sections
    | Some cache ->
        sections
        @ [
            ( "cache",
              fun e ->
                C.write_uint e (Cache.budget cache);
                C.write_uint e (Cache.stripes cache);
                C.write_list e
                  (fun (key, _, rel) ->
                    C.write_string e key;
                    (* the key's kind byte picks the value layout: tuple
                       answers are relations, aggregate answers a single
                       scalar (whose tropical sentinels write_rows could
                       not encode) *)
                    match Ckey.decode key with
                    | 0, _, _ -> write_relation e rel
                    | _ ->
                        write_val e
                          (Relation.fold (fun tup _ -> tup.(0)) rel 0))
                  (Cache.export cache) );
          ]
  in
  (* optional section: semiring aggregate state — the annotated factors
     and the precomputed per-kind tables, so a snapshot-shipped replica
     serves aggregates without the base database *)
  let sections =
    match t.agg with
    | None -> sections
    | Some st ->
        let access_arity = Schema.arity (access_schema t) in
        sections
        @ [
            ( "agg",
              fun e ->
                C.write_uint e st.agg_budget;
                C.write_list e
                  (fun (name, rel) ->
                    C.write_string e name;
                    write_annotated e rel)
                  st.agg_factors;
                C.write_list e
                  (fun (k, { complete; entries }) ->
                    C.write_u8 e (Semiring.to_tag k);
                    C.write_bool e complete;
                    let rows =
                      List.sort
                        (fun (a, _) (b, _) -> Tuple.compare a b)
                        (Tuple.Tbl.fold
                           (fun key v acc -> (key, v) :: acc)
                           entries [])
                    in
                    C.write_rows e ~arity:access_arity (List.map fst rows);
                    List.iter (fun (_, v) -> write_val e v) rows)
                  st.agg_tables );
          ]
  in
  (* optional section: the d-representations behind factorized S-views.
     The yannakakis section stays flat (readers predating this section
     load the same views uncompressed); this one restores the compressed
     holders — and with them the compressed space accounting that the
     summary section records. *)
  let sections =
    let any_fact =
      List.exists
        (fun (_, oy) -> Online_yannakakis.factorized_views oy <> [])
        t.preprocessed
    in
    if not any_fact then sections
    else
      sections
      @ [
          ( "factorized",
            fun e ->
              C.write_list e
                (fun (_, oy) ->
                  C.write_list e
                    (fun (node, f) ->
                      C.write_uint e node;
                      Frep.write e f)
                    (Online_yannakakis.factorized_views oy))
                t.preprocessed );
        ]
  in
  match Store.write ~version:format_version path sections with
  | Ok bytes as ok ->
      Obs.incr ~by:bytes "snapshot.write.bytes";
      Obs.set_attr "bytes" (Json.Int bytes);
      ok
  | Error _ as e -> e

let ( let* ) = Result.bind

(* decode in file-section order, pairing aligned sections (structures
   with rules, preprocessed state with PMTDs) by position; [fold_left]
   fixes the evaluation order the shared decoder requires *)
let map_in_order f xs d =
  let n = C.read_uint d in
  if n <> List.length xs then
    corrupt "aligned section: %d entries for %d owners" n (List.length xs);
  List.rev (List.fold_left (fun acc x -> f x d :: acc) [] xs)

let load path =
  Obs.span "engine.load" ~attrs:[ ("path", Json.String path) ] @@ fun () ->
  Cost.with_counting false @@ fun () ->
  let* r = Store.Reader.load ~version:format_version path in
  let bytes = Store.Reader.bytes r in
  Obs.incr ~by:bytes "snapshot.read.bytes";
  Obs.set_attr "bytes" (Json.Int bytes);
  let* cqap = Store.Reader.section r "cqap" read_cqap in
  let* pmtds =
    Store.Reader.section r "pmtds" (fun d ->
        C.read_list d (fun () -> read_pmtd cqap d))
  in
  let* rules =
    Store.Reader.section r "rules" (fun d ->
        C.read_list d (fun () -> read_rule cqap d))
  in
  let* structures =
    Store.Reader.section r "twopp" (map_in_order (read_structure cqap) rules)
  in
  let* preprocessed =
    Store.Reader.section r "yannakakis"
      (map_in_order (fun p d -> (p, read_preprocessed p d)) pmtds)
  in
  (* the factorized section is optional; when present it swaps flat
     holders for the saved d-representations, and must be applied before
     the summary check below — the saved space is the compressed
     accounting.  Each d-rep is revalidated against the flat view it
     replaces: same tuple set, same probe key. *)
  let* () =
    if not (List.mem "factorized" (Store.Reader.section_names r)) then Ok ()
    else
      Store.Reader.section r "factorized"
        (map_in_order
           (fun (_, oy) d ->
             C.read_list d (fun () ->
                 let node = C.read_uint d in
                 let f = Frep.read d in
                 let rel =
                   match Online_yannakakis.view_relation oy node with
                   | Some rel -> rel
                   | None ->
                       corrupt "factorized: node %d has no stored view" node
                 in
                 let mat = Frep.to_relation f in
                 let proj =
                   try
                     Relation.project mat (Schema.vars (Relation.schema rel))
                   with Not_found ->
                     corrupt "factorized: node %d schema differs from view"
                       node
                 in
                 if not (Relation.equal proj rel) then
                   corrupt "factorized: node %d tuples differ from view" node;
                 try Online_yannakakis.set_factorized oy node f
                 with Invalid_argument msg -> corrupt "factorized: %s" msg))
           preprocessed)
      |> Result.map (fun (_ : unit list list) -> ())
  in
  let space =
    List.fold_left
      (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
      0 preprocessed
  in
  let* () =
    Store.Reader.section r "summary" (fun d ->
        let stored_space = C.read_uint d in
        let np = C.read_uint d in
        let nr = C.read_uint d in
        if np <> List.length pmtds then corrupt "summary: pmtd count mismatch";
        if nr <> List.length rules then corrupt "summary: rule count mismatch";
        if stored_space <> space then
          corrupt "summary: space %d but loaded S-views hold %d" stored_space
            space)
  in
  (* the cache section is optional (older snapshots predate it); its
     keys must be canonical encodings over the access schema and its
     answers must live over the head schema, or a hit would silently
     return a wrong or differently-shaped answer *)
  let* cache =
    if not (List.mem "cache" (Store.Reader.section_names r)) then Ok None
    else
      Store.Reader.section r "cache" (fun d ->
          let budget = C.read_uint d in
          let stripes = C.read_uint d in
          if budget <= 0 then corrupt "cache: non-positive budget";
          if stripes <= 0 || stripes > 4096 then
            corrupt "cache: %d stripes out of range" stripes;
          let access = schema_of_set cqap.Cq.access in
          let head_schema = schema_of_set cqap.Cq.cq.Cq.head in
          let cache = Cache.create ~stripes ~budget () in
          let entries =
            C.read_list d (fun () ->
                let key = C.read_string d in
                (* a Short inside the nested key string is a malformed
                   section, not a truncated file *)
                let kind, arity, rows =
                  try Ckey.decode key
                  with C.Short _ -> corrupt "cache key: truncated encoding"
                in
                if kind <> 0 && Semiring.of_tag kind = None then
                  corrupt "cache key: unknown answer kind %d" kind;
                if arity <> Schema.arity access then
                  corrupt "cache key: arity %d for a %d-ary access" arity
                    (Schema.arity access);
                if not (String.equal (Ckey.encode ~kind ~arity rows) key) then
                  corrupt "cache key: not in canonical form";
                let rel =
                  if kind = 0 then begin
                    let rel = read_relation d in
                    if not (Schema.equal (Relation.schema rel) head_schema)
                    then corrupt "cache entry: schema differs from the head";
                    rel
                  end
                  else begin
                    (* aggregate answers are stored as a bare scalar *)
                    let v = read_val d in
                    let rel = Relation.create scalar_schema in
                    Relation.add rel [| v |];
                    rel
                  end
                in
                (key, List.length rows, rel))
          in
          List.iter
            (fun (key, key_tuples, rel) ->
              Cache.install cache ~key ~key_tuples rel)
            entries;
          Some cache)
  in
  let* epoch =
    if not (List.mem "epoch" (Store.Reader.section_names r)) then Ok 0
    else
      Store.Reader.section r "epoch" (fun d ->
          let epoch = C.read_uint d in
          if epoch = 0 then corrupt "epoch: zero epoch should be omitted";
          epoch)
  in
  (* the agg section is optional; a replica that loads one serves
     aggregates without ever seeing the base database *)
  let* agg =
    if not (List.mem "agg" (Store.Reader.section_names r)) then Ok None
    else
      Store.Reader.section r "agg" (fun d ->
          let agg_budget = C.read_uint d in
          let atoms = cqap.Cq.cq.Cq.atoms in
          let agg_factors =
            C.read_list d (fun () ->
                let name = C.read_string d in
                (name, read_annotated d))
          in
          if List.length agg_factors <> List.length atoms then
            corrupt "agg: %d factors for %d atoms"
              (List.length agg_factors) (List.length atoms);
          List.iter2
            (fun (a : Cq.atom) (name, rel) ->
              if not (String.equal name a.Cq.rel) then
                corrupt "agg factor: %s where atom %s expected" name a.Cq.rel;
              if
                not
                  (Schema.equal (Relation.schema rel)
                     (Schema.of_list a.Cq.vars))
              then corrupt "agg factor %s: schema differs from the atom" name)
            atoms agg_factors;
          let access_arity = Varset.cardinal cqap.Cq.access in
          let seen = Hashtbl.create 8 in
          let agg_tables =
            C.read_list d (fun () ->
                let tag = C.read_u8 d in
                let k =
                  match Semiring.of_tag tag with
                  | Some k -> k
                  | None -> corrupt "agg table: unknown kind tag %d" tag
                in
                if Hashtbl.mem seen tag then
                  corrupt "agg table: duplicate kind %s" (Semiring.name k);
                Hashtbl.add seen tag ();
                let complete = C.read_bool d in
                let keys = C.read_rows d ~arity:access_arity in
                let entries = Tuple.Tbl.create (max 16 (List.length keys)) in
                List.iter
                  (fun key ->
                    let v = read_val d in
                    if Tuple.Tbl.mem entries key then
                      corrupt "agg table: duplicate access key";
                    Tuple.Tbl.replace entries key v)
                  keys;
                (k, { complete; entries }))
          in
          Some { agg_budget; agg_factors; agg_tables })
  in
  Obs.set_attr "space" (Json.Int space);
  Obs.set_attr "epoch" (Json.Int epoch);
  Ok
    {
      cqap;
      pmtds;
      rules;
      structures;
      preprocessed;
      space;
      cache;
      epoch;
      (* a snapshot of a thawed engine stores the unreduced views; the
         flag only matters for further maintenance, which imported
         structures reject anyway *)
      thawed = epoch > 0;
      agg;
    }
