(** Database instances: named relations plus instantiation against query
    atoms, and a reference (brute-force) CQ evaluator used to validate
    every data structure in the test suite. *)

open Stt_relation
open Stt_hypergraph

type t

val create : unit -> t
val add : t -> string -> int array list -> unit
(** Register a relation by name; all tuples must share one arity.
    Replaces any previous relation of that name. *)

val add_pairs : t -> string -> (int * int) list -> unit

val add_weighted : t -> string -> (int array * int) list -> unit
(** Register a relation whose tuples carry semiring weights (SUM/MIN/MAX
    annotations).  Replaces any previous relation of that name;
    {!relation} carries the weights into the annotation column. *)

val weight : t -> string -> int array -> int option
(** The weight registered for a tuple, if the relation was added via
    {!add_weighted} and the tuple has one. *)

val mem : t -> string -> bool
val cardinal : t -> string -> int
val size : t -> int
(** [max_R |R|] — the paper's [|D|]. *)

val relation : t -> Cq.atom -> Relation.t
(** Instantiate an atom: a relation over schema [atom.vars]. *)

val eval : t -> Cq.t -> Relation.t
(** Reference evaluation: join all atoms (greedy connected order) and
    project onto the head.  Runs with cost counting disabled. *)

val eval_access : t -> Cq.cqap -> q_a:Relation.t -> Relation.t
(** Reference evaluation of the access CQ [Q_A ∧ body], projected onto
    the head.  Cost counting disabled. *)

val join_greedy : Relation.t list -> keep:Schema.var list -> Relation.t
(** Join the given relations in a greedy connected order with early
    projection: after each join, variables that appear neither in [keep]
    nor in any remaining relation are projected away.  Respects the
    global cost counters (this is also the online evaluator's core). *)

val join_greedy_bounded :
  Relation.t list -> keep:Schema.var list -> limit:int -> Relation.t option
(** Like {!join_greedy} but gives up ([None]) as soon as any intermediate
    or final relation exceeds [limit] tuples — used by preprocessing to
    abandon materializations that cannot fit the space budget without
    first computing them.

    Edge cases, pinned down by the test suite:
    - the {e input} relations themselves are not counted against the
      limit — only relations this function materializes (joined
      intermediates, projections, the final result);
    - a single-relation join is just a projection, and its result is
      still checked (so [limit:0] with a non-empty projected input is
      [None]);
    - [limit:0] succeeds iff the result is empty (e.g. an empty input
      relation), returning [Some empty];
    - raises [Invalid_argument] on an empty relation {e list}. *)
