(** Executable 2-phase PANDA (2PP, Appendix D) for one 2-phase
    disjunctive rule.

    [build] solves the joint Shannon-flow LP at the given budget, reads
    the split pairs with positive dual and the primal [h_S] values, and
    partitions each guard relation into heavy/light at the implied degree
    threshold.  Each of the (at most [2^p]) subproblems is then either

    - {e stored}: the smallest S-target projection of the subproblem's
      body join fits in the budget and is materialized, or
    - {e delegated}: the subproblem is kept as an index entry; [online]
      evaluates its cheapest T-target (chosen by polymatroid bound under
      the subproblem's measured degree constraints) against each access
      request.

    Differences from full PANDA are deliberate and documented in
    DESIGN.md: models place every tuple into a single best target per
    subproblem, and evaluation uses semijoin-reduction plus greedy joins
    with early projection rather than a proof-sequence interpreter. *)

open Stt_relation
open Stt_hypergraph

type step = { idx : Index.t; keep : Schema.var list }
(** One probing step of an online plan: join the accumulator with the
    indexed relation, then project to [keep]. *)

type subproblem = {
  t_target : Varset.t;
  probe_plan : step list;  (** greedy degree order: great average case *)
  safe_plan : step list;  (** min worst-case-estimate order *)
  cap : int;  (** abort threshold for the probe plan *)
}

type t

val build : ?counted:bool -> Rule.t -> db:Db.t -> budget:int -> t
(** Raises [Failure] if the rule has no T-targets and its S-targets do
    not actually fit in the budget (the rule is impossible at this
    budget; the worst-case LP prediction alone does not fail the build —
    real data often fits well below the bound).

    [counted] (default [false]) runs the build's data work — split-tree
    expansion and subproblem joins — under cost counting instead of the
    usual preprocessing silence, so benchmarks can compare maintenance
    deltas against an honestly op-counted rebuild. *)

val s_targets : t -> (Varset.t * Relation.t) list
(** Materialized (partial) S-target relations, one per target schema
    (schema column order = ascending variable ids). *)

val space : t -> int
(** Tuples across all stored S-targets. *)

val delegated_subproblems : t -> int
val stored_subproblems : t -> int
(** Number of heavy/light subproblems whose best S-target fit the budget
    and was materialized.  Every one of them contributed at most
    [budget] tuples to {!space} at the moment it was stored, so
    [space t <= stored_subproblems t * budget] — the budget-implied
    space bound checked by the differential test harness. *)

val online : t -> q_a:Relation.t -> (Varset.t * Relation.t) list
(** T-target relations computed from the delegated subproblems for this
    access request.  Respects the global cost counters. *)

val rule : t -> Rule.t

(** {1 Incremental maintenance}

    A freshly built structure keeps its maintenance state: the live base
    relation per atom and the heavy/light split tree with per-key degree
    counters.  [apply_delta] routes a single-tuple base delta through the
    tree — re-classifying exactly the keys whose degree crossed the
    build-time threshold — and patches each affected subproblem in
    place: delegated plans get their step indexes updated, stored
    subproblems get a pinned delta join (inserts) or a last-witness
    check (deletes) against the combo's leaves.  Structures loaded from
    a snapshot are static replicas: they answer but do not maintain. *)

val supports_maintenance : t -> bool
(** [true] for built structures, [false] for {!import}ed ones. *)

val apply_delta :
  t -> rel:string -> tuple:Tuple.t -> add:bool -> (Varset.t * Tuple.t * bool) list
(** Apply one base-tuple delta to every atom named [rel].  Returns the
    resulting stored-target (S-view) row changes as
    [(target, row, added?)], rows in ascending-variable order — the
    engine feeds these to the Yannakakis views.  Redundant deltas
    (inserting a present tuple, deleting an absent one) are no-ops.
    Raises [Failure] on arity mismatch, on a static replica, or — like
    {!build} — when a newly non-empty subproblem is impossible at the
    build budget; a [Failure] mid-delta leaves the structure
    inconsistent, so callers should treat it as fatal and rebuild. *)

val base_mem : t -> rel:string -> Tuple.t -> bool
(** Is the tuple in the base relation of some atom named [rel]?  Always
    [false] on static replicas. *)

val base_relations : t -> (Cq.atom * Relation.t) list
(** The live base relation per atom (empty on static replicas).  Treat
    as read-only; mutate only through {!apply_delta}. *)

val stored_mem : t -> Varset.t -> Tuple.t -> bool
(** Is [row] (ascending-variable order) currently in this structure's
    stored relation for the given S-target? *)

(** {1 Snapshot access}

    A built structure is pure data — stored S-target relations plus the
    delegated subproblems' index-backed plans — so it round-trips
    through the snapshot store without re-running the LP, the
    heavy/light splits or the plan search. *)

val delegated : t -> subproblem list
(** The delegated subproblems, in build order. *)

val import :
  Rule.t ->
  stored:(Varset.t * Relation.t) list ->
  delegated:subproblem list ->
  stored_subs:int ->
  t
(** Reassemble a structure from {!s_targets}, {!delegated} and
    {!stored_subproblems}; [space] is recomputed from [stored]. *)
