(** Commutative semirings over [int] annotations.

    The aggregate of an access request is the semiring sum ([add]) over
    all valuations of the query's variables consistent with some request
    tuple, of the semiring product ([mul]) of the base-atom annotations.
    COUNT and SUM are the numeric semirings (annotations default to 1);
    MIN and MAX are tropical (combine = min/max, multiply = saturating
    [+], [zero] = ±infinity encoded as [max_int]/[min_int]).  Tag 0 is
    reserved for plain tuple answers, so kind-tagged cache keys can never
    collide with the tuple path. *)

type kind = Count | Sum | Min | Max

val all : kind list

val name : kind -> string
val of_name : string -> kind option

val to_tag : kind -> int
(** Wire/cache tag, in [1..4]; 0 means "tuple answer" and is never a
    semiring tag. *)

val of_tag : int -> kind option

val zero : kind -> int
(** Identity of {!add}, absorbing for {!mul} — the aggregate of an empty
    derivation set ([max_int] for MIN: "no path"). *)

val one : kind -> int
(** Identity of {!mul}. *)

val add : kind -> int -> int -> int
val mul : kind -> int -> int -> int

val default_annot : kind -> int
(** Annotation of a base tuple with no stored weight. *)

val pp : Format.formatter -> kind -> unit
