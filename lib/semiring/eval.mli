(** Annotated sum-product evaluation over semiring factors.

    A factor is a set of tuples carrying semiring values; the base atoms
    of a CQAP become factors via {!of_relation} (annotations default per
    {!Semiring.default_annot}), an access request becomes a factor of
    [one]s, and the aggregate is the semiring sum over the flat join of
    the product of annotations.  Evaluation runs a semijoin reduction
    sweep followed by greedy variable elimination, so the join is never
    materialized; {!brute} is the materialize-then-fold oracle.  All
    operations charge the {!Stt_relation.Cost} counters (scan per input
    row, probe per lookup, tuple per output row). *)

open Stt_relation

type factor

val of_relation : Semiring.kind -> Relation.t -> factor
(** Annotations are read from the relation's annotation column, falling
    back to {!Semiring.default_annot}. *)

val of_request : Semiring.kind -> Relation.t -> factor
(** Every request tuple annotated with [one]. *)

val cardinal : factor -> int
val join : Semiring.kind -> factor -> factor -> factor

val aggregate : Semiring.kind -> factor list -> q_a:Relation.t -> int
(** The aggregate of the request against the factor set, by reduction +
    elimination.  [zero] when no valuation is consistent with [q_a]. *)

val table : Semiring.kind -> factor list -> access:Schema.t -> int Tuple.Tbl.t
(** Full offline elimination keeping the access variables: a map from
    access tuple (in [access] column order) to its aggregate, containing
    exactly the access tuples with at least one derivation. *)

val brute : Semiring.kind -> factor list -> q_a:Relation.t -> int
(** Materialize the flat join (request included), then ⊕-fold — the
    differential oracle and the materialize-then-fold cost baseline. *)
