(* The four commutative semirings over int annotations, plus the plain
   tuple (boolean) semantics as tag 0.  MIN and MAX are the tropical
   variants (combine = min/max, multiply = +) with explicit absorption:
   [zero] is the identity of [add] and annihilates [mul], so an empty
   derivation set is "no path" (MIN: infinity) rather than an overflow
   artifact. *)

type kind = Count | Sum | Min | Max

let all = [ Count; Sum; Min; Max ]

let name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"

let of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

(* Wire/cache tags: 0 is reserved for the tuple (boolean) semiring, so a
   kind-tagged cache key can never collide with a tuple answer's key. *)
let to_tag = function Count -> 1 | Sum -> 2 | Min -> 3 | Max -> 4

let of_tag = function
  | 1 -> Some Count
  | 2 -> Some Sum
  | 3 -> Some Min
  | 4 -> Some Max
  | _ -> None

let zero = function Count | Sum -> 0 | Min -> max_int | Max -> min_int
let one = function Count | Sum -> 1 | Min -> 0 | Max -> 0

let add k a b =
  match k with
  | Count | Sum -> a + b
  | Min -> min a b
  | Max -> max a b

let mul k a b =
  match k with
  | Count | Sum -> a * b
  | Min -> if a = max_int || b = max_int then max_int else a + b
  | Max -> if a = min_int || b = min_int then min_int else a + b

(* The annotation a base tuple carries when the database stored no
   explicit weight: every tuple counts once, contributes weight 1, and
   is a zero-cost hop for the tropical kinds. *)
let default_annot = function Count -> 1 | Sum -> 1 | Min -> 0 | Max -> 0

let pp ppf k = Format.pp_print_string ppf (name k)
