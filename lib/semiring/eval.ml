(* Annotated sum-product evaluation.

   A factor is a relation whose tuples carry semiring values; the
   aggregate of an access request is computed by greedy variable
   elimination over the base-atom factors plus the request itself (the
   request is a factor annotated with [one], so filtering and summation
   fall out of the same machinery).  A semijoin reduction pass runs
   first — any factor row that matches nothing in a neighbouring factor
   contributes nothing to the flat join, so dropping it is sound and
   keeps the intermediate factors small (the Yannakakis idea, applied to
   the factor set itself rather than to any one PMTD's views, whose
   per-decomposition answer sets may be incomplete in isolation).

   Costs mirror Stt_relation: one scan per input row visited, one probe
   per hash lookup, one tuple per materialized output row. *)

open Stt_relation

type factor = { schema : Schema.t; vals : int Tuple.Tbl.t }

let cardinal f = Tuple.Tbl.length f.vals

let of_relation k rel =
  let default = Semiring.default_annot k in
  (* COUNT counts derivations: every tuple contributes 1 regardless of
     any stored weight column *)
  let annot =
    match k with
    | Semiring.Count -> fun _ -> 1
    | _ -> fun tup -> Relation.annotation rel ~default tup
  in
  let vals = Tuple.Tbl.create (max 16 (Relation.cardinal rel)) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Tuple.Tbl.replace vals tup (annot tup))
    rel;
  { schema = Relation.schema rel; vals }

let of_request k q_a =
  let one = Semiring.one k in
  let vals = Tuple.Tbl.create (max 16 (Relation.cardinal q_a)) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Tuple.Tbl.replace vals tup one)
    q_a;
  { schema = Relation.schema q_a; vals }

(* ⊕-merge an annotated row into a factor's table.  [tup] is a caller's
   scratch buffer, so it must never be installed as a table key:
   [Hashtbl.replace] rebinds under the {e new} key object, and the
   caller's next [project_into] would corrupt it in place. *)
let merge_row k vals tup v =
  match Tuple.Tbl.find_opt vals tup with
  | Some prior -> Tuple.Tbl.replace vals (Array.copy tup) (Semiring.add k prior v)
  | None ->
      Cost.charge_tuple ();
      Tuple.Tbl.add vals (Array.copy tup) v

(* annotated hash join: product of annotations on matching rows; on
   disjoint schemas this degrades to the (scaled) cartesian product *)
let join k a b =
  let small, big = if cardinal a <= cardinal b then (a, b) else (b, a) in
  let common = Schema.inter big.schema small.schema in
  let out_schema = Schema.union big.schema small.schema in
  let key_big = Schema.positions big.schema common in
  let key_small = Schema.positions small.schema common in
  let extra =
    List.filter (fun v -> not (Schema.mem v big.schema)) (Schema.vars small.schema)
  in
  let extra_pos = Schema.positions small.schema extra in
  (* bucket the smaller side by join key *)
  let buckets = Tuple.Tbl.create (max 16 (cardinal small)) in
  Tuple.Tbl.iter
    (fun tup v ->
      Cost.charge_scan ();
      let key = Tuple.project key_small tup in
      let row = (Tuple.project extra_pos tup, v) in
      match Tuple.Tbl.find_opt buckets key with
      | Some l -> l := row :: !l
      | None -> Tuple.Tbl.add buckets key (ref [ row ]))
    small.vals;
  let vals = Tuple.Tbl.create (max 16 (cardinal big)) in
  let ra = Schema.arity big.schema and n_extra = List.length extra in
  let scratch = Array.make (Array.length key_big) 0 in
  let out = Array.make (ra + n_extra) 0 in
  Tuple.Tbl.iter
    (fun tup v ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_big tup scratch;
      match Tuple.Tbl.find_opt buckets scratch with
      | None -> ()
      | Some rows ->
          Array.blit tup 0 out 0 ra;
          List.iter
            (fun (ext, w) ->
              Array.blit ext 0 out ra n_extra;
              merge_row k vals out (Semiring.mul k v w))
            !rows)
    big.vals;
  { schema = out_schema; vals }

(* keep only [vs] (⊕-merging collapsed rows) *)
let project k f vs =
  let out_schema = Schema.of_list vs in
  let pos = Schema.positions f.schema vs in
  let vals = Tuple.Tbl.create (max 16 (cardinal f)) in
  let scratch = Array.make (Array.length pos) 0 in
  Tuple.Tbl.iter
    (fun tup v ->
      Cost.charge_scan ();
      Tuple.project_into pos tup scratch;
      merge_row k vals scratch v)
    f.vals;
  { schema = out_schema; vals }

(* drop the rows of [f] that match nothing in [g] on the common vars;
   annotations are untouched (this is a filter, not a combine) *)
let semijoin f g =
  match Schema.inter f.schema g.schema with
  | [] -> f
  | common ->
      let key_f = Schema.positions f.schema common in
      let key_g = Schema.positions g.schema common in
      let keys = Tuple.Tbl.create (max 16 (cardinal g)) in
      let scratch_g = Array.make (Array.length key_g) 0 in
      Tuple.Tbl.iter
        (fun tup _ ->
          Cost.charge_scan ();
          Tuple.project_into key_g tup scratch_g;
          if not (Tuple.Tbl.mem keys scratch_g) then
            Tuple.Tbl.add keys (Array.copy scratch_g) ())
        g.vals;
      let vals = Tuple.Tbl.create (max 16 (cardinal f)) in
      let scratch = Array.make (Array.length key_f) 0 in
      Tuple.Tbl.iter
        (fun tup v ->
          Cost.charge_scan ();
          Cost.charge_probe ();
          Tuple.project_into key_f tup scratch;
          if Tuple.Tbl.mem keys scratch then Tuple.Tbl.add vals tup v)
        f.vals;
      { f with vals }

(* one full reduction sweep: every factor filtered by every neighbour *)
let reduce factors =
  List.map
    (fun f -> List.fold_left (fun f g -> if f == g then f else semijoin f g) f factors)
    factors

(* Greedy elimination: repeatedly pick the variable whose incident
   factors are smallest, join them and project the variable away.  Ends
   with every factor's schema a subset of [keep]. *)
let eliminate k factors ~keep =
  let keep_set = keep in
  let rec next_var factors =
    let candidates = Hashtbl.create 16 in
    List.iter
      (fun f ->
        List.iter
          (fun v ->
            if not (List.mem v keep_set) then
              Hashtbl.replace candidates v
                (cardinal f
                + Option.value ~default:0 (Hashtbl.find_opt candidates v)))
          (Schema.vars f.schema))
      factors;
    Hashtbl.fold
      (fun v w best ->
        match best with
        | Some (_, bw) when bw <= w -> best
        | _ -> Some (v, w))
      candidates None
  and loop factors =
    match next_var factors with
    | None -> factors
    | Some (v, _) ->
        let with_v, rest =
          List.partition (fun f -> Schema.mem v f.schema) factors
        in
        let joined =
          match with_v with
          | [] -> assert false
          | f :: tl -> List.fold_left (join k) f tl
        in
        let vs = List.filter (fun x -> x <> v) (Schema.vars joined.schema) in
        loop (project k joined vs :: rest)
  in
  loop factors

(* the ⊕-fold of a zero-arity factor: zero when empty *)
let scalar k f =
  Tuple.Tbl.fold (fun _ v acc -> Semiring.add k acc v) f.vals (Semiring.zero k)

let aggregate k factors ~q_a =
  let factors = reduce (of_request k q_a :: factors) in
  let residual = eliminate k factors ~keep:[] in
  List.fold_left (fun acc f -> Semiring.mul k acc (scalar k f)) (Semiring.one k)
    residual

(* Precompute the aggregate table over the access variables: eliminate
   everything else, then join the residual factors into one map
   access-tuple → value (rows reordered into [access] column order). *)
let table k factors ~access =
  let keep = Schema.vars access in
  match eliminate k (reduce factors) ~keep with
  | [] -> Tuple.Tbl.create 1
  | f :: rest ->
      let combined = List.fold_left (join k) f rest in
      let pos = Schema.positions combined.schema keep in
      let out = Tuple.Tbl.create (max 16 (cardinal combined)) in
      Tuple.Tbl.iter
        (fun tup v -> Tuple.Tbl.replace out (Tuple.project pos tup) v)
        combined.vals;
      out

(* Materialize-the-flat-join reference: no elimination, no reduction —
   join everything (request included), then ⊕-fold the annotations.
   This is both the differential-testing oracle and the
   materialize-then-fold cost baseline. *)
let brute k factors ~q_a =
  match of_request k q_a :: factors with
  | [] -> assert false
  | f :: rest ->
      let flat = List.fold_left (join k) f rest in
      Tuple.Tbl.fold
        (fun _ v acc -> Semiring.add k acc v)
        flat.vals (Semiring.zero k)
