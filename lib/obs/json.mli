(** Minimal hand-rolled JSON: just enough to serialize and re-parse the
    observability traces and benchmark artifacts — no external
    dependency, deterministic output, lossless round-trips.

    Numbers are kept as either [Int] (serialized without a decimal
    point) or [Float] (always serialized with a point or exponent, via
    ["%.17g"], so parsing restores the exact IEEE value).  Strings are
    escaped per RFC 8259; input escapes [\uXXXX] are folded to bytes for
    the ASCII range and re-encoded as UTF-8 otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality; object field order is significant. *)

val to_string : t -> string
(** Compact serialization (no whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented serialization, for files meant to be read. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string includes the byte offset. *)

val to_file : string -> t -> unit
(** Write {!to_string_pretty} plus a trailing newline. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)
