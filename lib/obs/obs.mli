(** Structured observability: hierarchical spans, monotone counters and
    power-of-two histograms, serialized to JSON.

    The paper's claims are quantitative — tradeoff exponents, LP duals,
    online operation counts — so every pipeline stage records what it did
    into the current {e trace context}: a tree of named spans with
    attributes, plus process-wide counters and histograms.  Benchmarks
    and the CLI serialize the trace next to their human-readable output,
    giving each table a machine-readable twin.

    Observability is {b off by default} and must change nothing when
    disabled: [span] just runs its thunk, counters stay untouched, and —
    because this module never calls into {!Stt_relation} — no [Cost]
    operation is ever charged by instrumentation (the test suite checks
    both invariants).

    Contexts are per-domain (via [Domain.DLS]), so parallel builds each
    get an isolated trace. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Toggle collection globally.  Disabling does not clear existing data. *)

val reset : unit -> unit
(** Drop all finished spans, counters and histograms of the current
    context.  Open spans are kept (their data is recorded on close). *)

(** {1 Spans} *)

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span: spans opened during [f] become
    children, and the span records its wall-clock duration on close
    (also on exception).  When disabled this is exactly [f ()]. *)

val set_attr : string -> Json.t -> unit
(** Attach (or overwrite) an attribute on the innermost open span of the
    current context; silently ignored when disabled or outside a span. *)

(** {1 Counters and histograms} *)

val incr : ?by:int -> string -> unit
(** Bump a monotone counter ([by] defaults to 1).  Raises
    [Invalid_argument] on negative [by] — counters only go up. *)

val counter_value : string -> int
(** Current value; 0 for a counter never bumped. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val observe : string -> float -> unit
(** Record a sample into a histogram with buckets [[0,1), [1,2), [2,4),
    [4,8), ...] — negative samples clamp into the first bucket.  Each
    power-of-two bucket is internally split into 16 equal-width
    sub-buckets (HDR-histogram style, bounded memory), which is what
    {!percentile} reads. *)

val percentile : string -> float -> float
(** [percentile name p] — approximate p-quantile ([p ∈ (0, 1]]) of the
    named histogram, computed from the log-linear sub-buckets: the
    reported value is the upper bound of the sub-bucket holding the
    rank-[⌈p·count⌉] sample, clamped into the exact observed
    [[min, max]].  Relative error is at most 1/16 (≈ 6%); a
    single-sample histogram reports the sample exactly.  Returns [0.0]
    for a histogram that does not exist or is empty; raises
    [Invalid_argument] on [p] outside [(0, 1]].  This is where latency
    summaries (e.g. [stt bench-net]'s p50/p95/p99) come from — the
    percentiles are also serialized into {!trace}. *)

(** {1 Allocation accounting} *)

val allocated_bytes : unit -> float
(** Cumulative bytes allocated by the calling domain (minor + major),
    i.e. [Gc.allocated_bytes] — deltas around a call measure that call's
    own allocation without any GC pause. *)

val with_alloc : string -> (unit -> 'a) -> 'a
(** [with_alloc name f] runs [f] and records the bytes it allocated on
    this domain into the histogram [name] (also on exception).  Exactly
    [f ()] when observability is disabled — the hot-path allocation
    purge is gated by the same switch as every other probe. *)

(** {1 Traces} *)

val trace : unit -> Json.t
(** The full current context as JSON: finished root spans (in open
    order), counters, derived values and histograms.  For every counter
    pair [<p>.hit]/[<p>.miss] with at least one event, [derived] carries
    [<p>.hit_rate] (hits / (hits + misses)) — e.g. the answer cache's
    [cache.hit_rate].  Schema documented in DESIGN.md
    ("Observability"). *)

(** {1 Contexts} *)

type context
(** An isolated trace (spans + counters + histograms).  Each domain has
    an implicit default context. *)

val create_context : unit -> context

val with_context : context -> (unit -> 'a) -> 'a
(** Run with [context] installed as the current context, restoring the
    previous one afterwards (also on exceptions). *)

val adopt : context -> unit
(** Merge a finished context into the current one and empty it: its root
    spans are appended (in creation order) as children of the innermost
    open span — or as roots — and its counters and histogram samples are
    added.  The domain pool runs each parallel task under its own
    context and adopts them in task order, so parallel traces are
    deterministic up to timing attributes.  A context must not be
    adopted into itself (ignored). *)
