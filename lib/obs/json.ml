type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let equal = ( = )

(* ------------------------------------------------------------------ *)
(* serialization                                                        *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must re-parse as [Float]: force a '.', 'e' or non-finite
   marker into the representation.  Non-finite floats are not valid
   JSON; we follow the common practice of emitting null for them. *)
let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec write ~indent ~level buf v =
  let nl lv =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * lv do
        Buffer.add_char buf ' '
      done
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf item)
        fields;
      nl level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string_pretty v);
      output_char oc '\n')

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* parsing (recursive descent)                                          *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse_error pos msg = raise (Parse_error (pos, msg))

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> parse_error st.pos (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error st.pos ("expected " ^ word)

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error st.pos "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> parse_error st.pos "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  parse_error st.pos "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let u =
                  try int_of_string ("0x" ^ hex)
                  with _ -> parse_error st.pos "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                utf8_of_code buf u
            | _ -> parse_error (st.pos - 1) "bad escape");
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error start "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* integer overflow: fall back to float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_error start "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error st.pos "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> parse_error st.pos "expected , or ]"
        in
        List (items [])
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> parse_error st.pos "expected , or }"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error st.pos (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then
      parse_error st.pos "trailing garbage after document";
    Ok v
  with Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" pos msg)
