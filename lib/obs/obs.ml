type span_node = {
  sname : string;
  mutable attrs : (string * Json.t) list;
  mutable children : span_node list; (* reversed *)
  mutable elapsed_s : float;
}

(* Samples land in log-linear sub-buckets: 64 power-of-two ranges
   ([0,1), [1,2), [2,4), ...) each split into [sub_buckets] equal-width
   slots, HDR-histogram style.  The coarse power-of-two view serialized
   to JSON is the per-range sum; the fine view bounds any percentile
   estimate's relative error by [1 / sub_buckets] in bounded memory. *)
let coarse_buckets = 64
let sub_buckets = 16

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  fine : int array; (* coarse_buckets * sub_buckets log-linear slots *)
}

type context = {
  mutable roots : span_node list; (* reversed, finished *)
  mutable stack : span_node list; (* open spans, innermost first *)
  counter_tbl : (string, int ref) Hashtbl.t;
  hist_tbl : (string, hist) Hashtbl.t;
}

let create_context () =
  {
    roots = [];
    stack = [];
    counter_tbl = Hashtbl.create 16;
    hist_tbl = Hashtbl.create 8;
  }

let ctx_key = Domain.DLS.new_key create_context
let current () = Domain.DLS.get ctx_key

let with_context ctx f =
  let saved = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key saved) f

(* Graft a finished (typically worker-domain) context into the current
   one: its root spans become children of the innermost open span (or
   roots), keeping creation order, and its counters/histogram samples
   are added.  Both [roots] and [children] are stored reversed, so
   prepending [src.roots] keeps the adopted spans after the existing
   ones once un-reversed. *)
let adopt src =
  let dst = Domain.DLS.get ctx_key in
  if src != dst then begin
    (match dst.stack with
    | parent :: _ -> parent.children <- src.roots @ parent.children
    | [] -> dst.roots <- src.roots @ dst.roots);
    Hashtbl.iter
      (fun k r ->
        match Hashtbl.find_opt dst.counter_tbl k with
        | Some r0 -> r0 := !r0 + !r
        | None -> Hashtbl.add dst.counter_tbl k (ref !r))
      src.counter_tbl;
    Hashtbl.iter
      (fun k h ->
        match Hashtbl.find_opt dst.hist_tbl k with
        | Some h0 ->
            h0.count <- h0.count + h.count;
            h0.sum <- h0.sum +. h.sum;
            h0.minv <- Float.min h0.minv h.minv;
            h0.maxv <- Float.max h0.maxv h.maxv;
            Array.iteri (fun i n -> h0.fine.(i) <- h0.fine.(i) + n) h.fine
        | None -> Hashtbl.add dst.hist_tbl k { h with fine = Array.copy h.fine })
      src.hist_tbl;
    src.roots <- [];
    Hashtbl.reset src.counter_tbl;
    Hashtbl.reset src.hist_tbl
  end

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let reset () =
  let ctx = current () in
  ctx.roots <- [];
  Hashtbl.reset ctx.counter_tbl;
  Hashtbl.reset ctx.hist_tbl

let set_attr key v =
  if !enabled_flag then
    match (current ()).stack with
    | [] -> ()
    | s :: _ ->
        s.attrs <-
          (if List.mem_assoc key s.attrs then
             List.map (fun (k, w) -> if k = key then (k, v) else (k, w)) s.attrs
           else s.attrs @ [ (key, v) ])

let span ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let ctx = current () in
    let s = { sname = name; attrs; children = []; elapsed_s = 0.0 } in
    let t0 = Unix.gettimeofday () in
    ctx.stack <- s :: ctx.stack;
    Fun.protect
      ~finally:(fun () ->
        s.elapsed_s <- Unix.gettimeofday () -. t0;
        (* pop [s]; tolerate unbalanced pops from nested with_context *)
        ctx.stack <-
          (match ctx.stack with
          | top :: rest when top == s -> rest
          | other -> List.filter (fun x -> x != s) other);
        match ctx.stack with
        | parent :: _ -> parent.children <- s :: parent.children
        | [] -> ctx.roots <- s :: ctx.roots)
      f
  end

let incr ?(by = 1) name =
  if by < 0 then invalid_arg "Obs.incr: counters are monotone (by < 0)";
  if !enabled_flag then begin
    let ctx = current () in
    match Hashtbl.find_opt ctx.counter_tbl name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add ctx.counter_tbl name (ref by)
  end

let counter_value name =
  match Hashtbl.find_opt (current ()).counter_tbl name with
  | Some r -> !r
  | None -> 0

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) (current ()).counter_tbl []
  |> List.sort compare

let bucket_of v =
  if v < 1.0 then 0
  else
    let i = 1 + int_of_float (Float.log2 v) in
    Stdlib.min i (coarse_buckets - 1)

(* [base b] is the lower bound of coarse bucket [b]; its width equals its
   base except for bucket 0 ([0,1), width 1). *)
let bucket_base b = if b = 0 then 0.0 else Float.pow 2.0 (float_of_int (b - 1))
let bucket_width b = if b = 0 then 1.0 else bucket_base b

let fine_slot v =
  let v = Float.max 0.0 v in
  let b = bucket_of v in
  let frac = (v -. bucket_base b) /. bucket_width b in
  let s =
    Stdlib.min (sub_buckets - 1)
      (Stdlib.max 0 (int_of_float (frac *. float_of_int sub_buckets)))
  in
  (b * sub_buckets) + s

(* upper bound of a fine slot — percentile estimates report this bound,
   so they never under-report *)
let fine_upper slot =
  let b = slot / sub_buckets and s = slot mod sub_buckets in
  bucket_base b
  +. (bucket_width b *. float_of_int (s + 1) /. float_of_int sub_buckets)

let observe name v =
  if !enabled_flag then begin
    let ctx = current () in
    let h =
      match Hashtbl.find_opt ctx.hist_tbl name with
      | Some h -> h
      | None ->
          let h =
            {
              count = 0;
              sum = 0.0;
              minv = infinity;
              maxv = neg_infinity;
              fine = Array.make (coarse_buckets * sub_buckets) 0;
            }
          in
          Hashtbl.add ctx.hist_tbl name h;
          h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    h.minv <- Float.min h.minv v;
    h.maxv <- Float.max h.maxv v;
    let s = fine_slot v in
    h.fine.(s) <- h.fine.(s) + 1
  end

(* Allocation accounting for the hot-path purge: [Gc.allocated_bytes]
   counts the calling domain's cumulative minor + major allocation, so a
   delta around a thunk is that thunk's own allocation (single-domain,
   no GC pauses needed).  When disabled this is exactly [f ()]. *)
let allocated_bytes = Gc.allocated_bytes

let with_alloc name f =
  if not !enabled_flag then f ()
  else begin
    let a0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> observe name (Gc.allocated_bytes () -. a0))
      f
  end

let hist_percentile h p =
  if h.count = 0 then 0.0
  else
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p *. float_of_int h.count)))
    in
    let rec walk slot cum =
      if slot >= Array.length h.fine then h.maxv
      else
        let cum = cum + h.fine.(slot) in
        if cum >= rank then fine_upper slot else walk (slot + 1) cum
    in
    (* clamp into the exact observed range: a single-sample histogram
       reports the sample itself, and p → 1 converges to the exact max *)
    Float.min h.maxv (Float.max h.minv (walk 0 0))

let percentile name p =
  if not (Float.is_finite p) || p <= 0.0 || p > 1.0 then
    invalid_arg "Obs.percentile: p must be in (0, 1]";
  match Hashtbl.find_opt (current ()).hist_tbl name with
  | None -> 0.0
  | Some h -> hist_percentile h p

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

let rec json_of_span s =
  let base =
    [ ("name", Json.String s.sname); ("elapsed_s", Json.Float s.elapsed_s) ]
  in
  let with_attrs =
    if s.attrs = [] then base else base @ [ ("attrs", Json.Obj s.attrs) ]
  in
  let with_children =
    if s.children = [] then with_attrs
    else
      with_attrs
      @ [ ("children", Json.List (List.rev_map json_of_span s.children)) ]
  in
  Json.Obj with_children

let json_of_hist h =
  let coarse b =
    let acc = ref 0 in
    for s = b * sub_buckets to ((b + 1) * sub_buckets) - 1 do
      acc := !acc + h.fine.(s)
    done;
    !acc
  in
  let buckets = ref [] in
  for i = coarse_buckets - 1 downto 0 do
    let n = coarse i in
    if n > 0 then
      buckets :=
        Json.Obj
          [
            ("lt", Json.Float (Float.pow 2.0 (float_of_int i)));
            ("n", Json.Int n);
          ]
        :: !buckets
  done;
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("min", Json.Float (if h.count = 0 then 0.0 else h.minv));
      ("max", Json.Float (if h.count = 0 then 0.0 else h.maxv));
      ("p50", Json.Float (hist_percentile h 0.50));
      ("p95", Json.Float (hist_percentile h 0.95));
      ("p99", Json.Float (hist_percentile h 0.99));
      ("buckets", Json.List !buckets);
    ]

(* For every counter pair <p>.hit / <p>.miss with at least one event,
   derive <p>.hit_rate — so hit rates live in the trace without anyone
   maintaining a ratio by hand (counters only go up, ratios don't). *)
let derived_rates counters =
  let value k = Option.value ~default:0 (List.assoc_opt k counters) in
  List.filter_map
    (fun (k, hits) ->
      match Filename.chop_suffix_opt ~suffix:".hit" k with
      | None -> None
      | Some p ->
          let total = hits + value (p ^ ".miss") in
          if total = 0 then None
          else
            Some
              (p ^ ".hit_rate", Json.Float (float_of_int hits /. float_of_int total)))
    counters

let trace () =
  let ctx = current () in
  let hists =
    Hashtbl.fold (fun k h acc -> (k, json_of_hist h) :: acc) ctx.hist_tbl []
    |> List.sort compare
  in
  Json.Obj
    [
      ("schema", Json.String "stt-trace/1");
      ("spans", Json.List (List.rev_map json_of_span ctx.roots));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())) );
      ("derived", Json.Obj (derived_rates (counters ())));
      ("histograms", Json.Obj hists);
    ]
