open Stt_relation
open Stt_hypergraph
open Stt_decomp
module Fconfig = Stt_factorized.Config
module Frep = Stt_factorized.Frep

(* How a materialized S-view is held: a flat hash index on its link
   variables, or a d-representation whose probe prefix is those same
   link variables.  Both sides answer the same probes at the same op
   charges; they differ only in stored-singleton footprint. *)
type storage = Flat of Index.t | Fact of Frep.t

type preprocessed = {
  pmtd : Pmtd.t;
  s_rels : (int, Relation.t) Hashtbl.t;
  s_store : (int, storage) Hashtbl.t; (* keyed on common vars with parent view *)
  mutable space : int;
}

let view_vars p node = (Pmtd.view p node).Pmtd.vars

(* key variables used to link a child view to its parent: for the root,
   the access pattern; otherwise the intersection with the parent view *)
let link_vars (p : Pmtd.t) node =
  let tree = p.Pmtd.td.Td.tree in
  match Rtree.parent tree node with
  | None -> Varset.inter (view_vars p node) p.Pmtd.cqap.Cq.access
  | Some par -> Varset.inter (view_vars p node) (view_vars p par)

let semijoin_via_storage rel = function
  | Flat idx -> Index.semijoin rel idx
  | Fact f -> Frep.semijoin rel f

let join_via_storage rel = function
  | Flat idx -> Index.join rel idx
  | Fact f -> Frep.join rel f

(* the stored-singleton charge of a holder for [rows] flat tuples *)
let storage_space ~rows = function
  | Flat _ -> rows
  | Fact f -> Frep.size f

(* Pick the cheaper holder for [rel] keyed on [key]: factorize when the
   mode and measured ratio allow it, flat otherwise.  Never factorizes
   under [~factorize:false] (maintainable engines need ±1-row deltas)
   or mode [Off]; under [Auto] the d-rep is built, measured, and thrown
   away if the compression does not clear the gate. *)
let store_of_rel ~factorize rel key =
  if factorize && Fconfig.mode () <> Fconfig.Off then begin
    let f = Frep.of_relation ~prefix:key rel in
    if Fconfig.eligible ~rows:(Relation.cardinal rel) ~size:(Frep.size f) then
      Fact f
    else Flat (Index.build rel key)
  end
  else Flat (Index.build rel key)

let preprocess ?(reduce = true) ?(factorize = true) pmtd ~s_views =
  Cost.with_counting false (fun () ->
      let tree = pmtd.Pmtd.td.Td.tree in
      let s_rels = Hashtbl.create 8 in
      let s_store = Hashtbl.create 8 in
      let materialized = pmtd.Pmtd.materialized in
      List.iter
        (fun node -> if materialized.(node) then
            Hashtbl.replace s_rels node (s_views node))
        (Rtree.nodes tree);
      (* bottom-up semijoin pass over SS-edges.  A pure space
         optimization (the top-down answer pass joins every S node
         anyway), skipped for maintainable engines: reduced views cannot
         absorb single-tuple deltas additively. *)
      if reduce then
        List.iter
          (fun node ->
            if materialized.(node) then
              match Rtree.parent tree node with
              | Some par when materialized.(par) ->
                  let reduced =
                    Relation.semijoin (Hashtbl.find s_rels par)
                      (Hashtbl.find s_rels node)
                  in
                  Hashtbl.replace s_rels par reduced
              | Some _ | None -> ())
          (Rtree.bottom_up tree);
      (* per S-view: a probe structure on its link variables *)
      let space = ref 0 in
      Hashtbl.iter
        (fun node rel ->
          let st =
            store_of_rel ~factorize rel
              (Varset.to_list (link_vars pmtd node))
          in
          space := !space + storage_space ~rows:(Relation.cardinal rel) st;
          Hashtbl.replace s_store node st)
        s_rels;
      { pmtd; s_rels; s_store; space = !space })

let space t = t.space

let logical_rows t =
  Hashtbl.fold (fun _ rel acc -> acc + Relation.cardinal rel) t.s_rels 0

let factorized_views t =
  Hashtbl.fold
    (fun node st acc ->
      match st with Fact f -> (node, f) :: acc | Flat _ -> acc)
    t.s_store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let set_factorized t node f =
  let rel = Hashtbl.find t.s_rels node in
  if Frep.rows f <> Relation.cardinal rel then
    invalid_arg "Online_yannakakis.set_factorized: cardinality mismatch";
  if Frep.key_vars f <> Varset.to_list (link_vars t.pmtd node) then
    invalid_arg "Online_yannakakis.set_factorized: key mismatch";
  let old = Hashtbl.find t.s_store node in
  Hashtbl.replace t.s_store node (Fact f);
  t.space <-
    t.space - storage_space ~rows:(Relation.cardinal rel) old + Frep.size f

let view_relation t node = Hashtbl.find_opt t.s_rels node

let materialized_nodes t =
  List.filter
    (fun node -> t.pmtd.Pmtd.materialized.(node))
    (Rtree.nodes t.pmtd.Pmtd.td.Td.tree)

let flat_index t node =
  match Hashtbl.find t.s_store node with
  | Flat idx -> idx
  | Fact _ ->
      invalid_arg "Online_yannakakis: factorized view cannot absorb deltas"

let insert_view_tuple t node row =
  let rel = Hashtbl.find t.s_rels node in
  if Relation.mem rel row then false
  else begin
    let idx = flat_index t node in
    Relation.add rel row;
    ignore (Index.insert idx row);
    t.space <- t.space + 1;
    true
  end

let delete_view_tuple t node row =
  let rel = Hashtbl.find t.s_rels node in
  let idx = flat_index t node in
  if Relation.remove rel row then begin
    ignore (Index.remove idx row);
    t.space <- t.space - 1;
    true
  end
  else false

let export t =
  Hashtbl.fold
    (fun node rel acc ->
      let idx =
        match Hashtbl.find t.s_store node with
        | Flat idx -> idx
        | Fact _ ->
            (* snapshot sections stay flat-format; the factorized
               section re-compresses on load *)
            Cost.with_counting false (fun () ->
                Index.build rel (Varset.to_list (link_vars t.pmtd node)))
      in
      (node, rel, idx) :: acc)
    t.s_rels []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let import pmtd entries =
  let s_rels = Hashtbl.create 8 in
  let s_store = Hashtbl.create 8 in
  let space = ref 0 in
  List.iter
    (fun (node, rel, idx) ->
      space := !space + Relation.cardinal rel;
      Hashtbl.replace s_rels node rel;
      Hashtbl.replace s_store node (Flat idx))
    entries;
  { pmtd; s_rels; s_store; space = !space }

(* Per-call node state lives in flat arrays indexed by node id (tree
   nodes are [0 .. size-1]): the only per-answer setup allocation is the
   three arrays themselves, no hash table and no per-node records. *)
let answer t ~t_views ~q_a =
  let pmtd = t.pmtd in
  let tree = pmtd.Pmtd.td.Td.tree in
  let head = pmtd.Pmtd.cqap.Cq.cq.Cq.head in
  let materialized = pmtd.Pmtd.materialized in
  let n = Rtree.size tree in
  let rels = Array.make n (Relation.create (Schema.of_list [])) in
  let removed = Array.make n false in
  List.iter
    (fun node ->
      rels.(node) <-
        (if materialized.(node) then Hashtbl.find t.s_rels node
         else t_views node))
    (Rtree.nodes tree);
  let head_covered ~child ~parent =
    Varset.subset
      (Varset.inter (view_vars pmtd child) head)
      (view_vars pmtd parent)
  in
  (* bottom-up semijoin-reduce pass *)
  List.iter
    (fun node ->
      match Rtree.parent tree node with
      | None -> ()
      | Some par ->
          if materialized.(node) && materialized.(par) then
            () (* SS: done at preprocess *)
          else if materialized.(node) then begin
            (* ST edge: parent T-view semijoined via the child's storage *)
            rels.(par) <-
              semijoin_via_storage rels.(par) (Hashtbl.find t.s_store node);
            if head_covered ~child:node ~parent:par then
              removed.(node) <- true
          end
          else begin
            (* TT edge *)
            rels.(par) <- Relation.semijoin rels.(par) rels.(node);
            if head_covered ~child:node ~parent:par then
              removed.(node) <- true
            else
              rels.(node) <-
                Relation.project rels.(node)
                  (Varset.to_list
                     (Varset.inter (view_vars pmtd node) head))
          end)
    (Rtree.bottom_up tree);
  (* root *)
  let root = Rtree.root tree in
  let q_a =
    if materialized.(root) then
      semijoin_via_storage q_a (Hashtbl.find t.s_store root)
    else begin
      rels.(root) <-
        Relation.project rels.(root)
          (Varset.to_list (Varset.inter (view_vars pmtd root) head));
      Relation.semijoin q_a rels.(root)
    end
  in
  (* top-down join pass *)
  let result = ref q_a in
  List.iter
    (fun node ->
      if not removed.(node) then
        if materialized.(node) then
          result := join_via_storage !result (Hashtbl.find t.s_store node)
        else result := Relation.natural_join !result rels.(node))
    (Rtree.nodes tree);
  Relation.project !result (Varset.to_list head)
