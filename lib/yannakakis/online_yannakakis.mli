(** Online Yannakakis for PMTDs (Theorem 3.7 and Appendix A).

    Given the S-views of a PMTD, [preprocess] stores them with hash
    indexes (and runs the bottom-up semijoin pass over SS-edges) in space
    linear in their size.  [answer] then computes the free-connex acyclic
    CQ

    {v ψ(x_H) ← Q_A ∧ ⋀_{t∈M} S_{v(t)} ∧ ⋀_{t∉M} T_{v(t)} v}

    in time [O(max_t |T_{v(t)}| + |Q_A| + |ψ|)] — crucially with no
    dependence on the size of the S-views, which are only ever probed
    through their indexes. *)

open Stt_relation
open Stt_decomp

type preprocessed

val preprocess :
  ?reduce:bool ->
  ?factorize:bool ->
  Pmtd.t ->
  s_views:(int -> Relation.t) ->
  preprocessed
(** [s_views node] must supply a relation over schema [v(node)] (any
    variable order) for every materialized node.  [reduce] (default
    [true]) runs the bottom-up SS semijoin pass — a pure space
    optimization that {!answer} never depends on; pass [false] for
    engines that will maintain the views incrementally, since reduced
    views cannot absorb single-tuple deltas additively.  [factorize]
    (default [true]) allows storing a view as a d-representation keyed
    on its link variables when {!Stt_factorized.Config} deems it
    eligible; pass [false] (like [reduce:false], for maintainable
    engines) to force flat indexes — factorized views cannot absorb
    ±1-row deltas either. *)

val space : preprocessed -> int
(** Total stored singletons across S-views: flat views count one per
    tuple, factorized views count {!Stt_factorized.Frep.size}. *)

val logical_rows : preprocessed -> int
(** Total {e flat} rows the stored S-views represent, regardless of
    holder — [space] ≤ [logical_rows], with equality when nothing is
    factorized. *)

val factorized_views : preprocessed -> (int * Stt_factorized.Frep.t) list
(** The views currently held compressed, sorted by node id. *)

val view_relation : preprocessed -> int -> Relation.t option
(** The stored (possibly reduced) S-view relation of a node, [None] if
    the node is not materialized. *)

val set_factorized : preprocessed -> int -> Stt_factorized.Frep.t -> unit
(** Swap a node's holder for the given d-representation, adjusting
    {!space}.  Used by snapshot load to restore the compressed holders
    saved alongside the flat section.  Raises [Invalid_argument] if the
    d-rep's cardinality or probe key disagrees with the stored view. *)

(** {1 Incremental maintenance}

    Single-row deltas against the stored S-views, keeping relation,
    index and {!space} in lockstep.  Only meaningful on views built with
    [~reduce:false] (unreduced): adding a row to a semijoin-reduced view
    could not account for previously reduced-away parent rows. *)

val materialized_nodes : preprocessed -> int list
(** Nodes with a stored S-view, in tree order. *)

val insert_view_tuple : preprocessed -> int -> Tuple.t -> bool
(** [insert_view_tuple t node row] adds [row] (in the view's schema
    order) to the node's S-view and its link index; [false] if already
    present. *)

val delete_view_tuple : preprocessed -> int -> Tuple.t -> bool
(** Remove a row from the node's S-view and link index; [false] if it
    was not present. *)

val export : preprocessed -> (int * Relation.t * Index.t) list
(** Snapshot view of the preprocessed state: one
    [(node, reduced S-view, link-variable index)] triple per
    materialized node, sorted by node id.  Together with the PMTD this
    determines the structure completely. *)

val import : Pmtd.t -> (int * Relation.t * Index.t) list -> preprocessed
(** Rebuild from {!export}ed parts without re-running the semijoin
    pass or re-indexing; [space] is recomputed from the relations. *)

val answer :
  preprocessed -> t_views:(int -> Relation.t) -> q_a:Relation.t -> Relation.t
(** [t_views node] must supply a relation over schema [v(node)] for every
    non-materialized node; [q_a] is the access request over schema [A]
    (in ascending variable order or any order containing exactly A).
    Returns ψ over the head variables. *)
