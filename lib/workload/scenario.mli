(** The shared synthetic serving scenario.

    [stt demo]/[serve]/[snapshot]/[serve-net], the [bench-net] load
    generator and the test suite all evaluate CQAPs over the same
    synthetic workload: a two-sided Zipf graph bound to the single edge
    relation ["R"], probed by a hot-key Zipf request stream.  This module
    is the one implementation they share — the graph builder, the
    vertex-range convention, the single-edge-relation guard and the
    request-stream generator — so a snapshot written by one command and
    the streams driven against it by another always agree. *)

open Stt_hypergraph

val edge_relation : string
(** The relation name every scenario query must be bound to (["R"]). *)

val single_edge_violation : Cq.cqap -> string option
(** The scenario binds the synthetic graph to the single edge relation
    {!edge_relation}; [Some rel] names the first atom over anything
    else, [None] if the query qualifies. *)

val vertices_for_edges : int -> int
(** [max 10 (edges / 10)] — the vertex range implied by an edge count.
    Snapshot-time builds and later request streams must use the same
    convention so requests sample the populated range. *)

val synthetic_db : seed:int -> vertices:int -> edges:int -> Stt_core.Db.t
(** Two-sided Zipf(1.1) random graph (deduplicated edge set) loaded into
    a fresh database under {!edge_relation}.  Deterministic in [seed]. *)

val zipf_requests :
  seed:int -> n:int -> requests:int -> skew:float -> arity:int ->
  int array list
(** The hot-key access-request stream: [requests] tuples of [arity]
    components, each an independent Zipf([skew]) rank in [[0, n)].
    Deterministic in [seed] — the serving CLI, the network load
    generator and the benches all replay the same stream. *)

type churn_op =
  | Insert of int * int  (** add an edge to {!edge_relation} *)
  | Delete of int * int  (** remove an edge from {!edge_relation} *)
  | Query of int array  (** answer an access request *)

val churn_ops :
  seed:int -> vertices:int -> edges:int -> ops:int -> arity:int ->
  churn_op list
(** An interleaved maintenance workload over the scenario graph of
    {!synthetic_db} (same [seed]/[vertices]/[edges] convention): [ops]
    operations mixing edge inserts (~30%), edge deletes (~15%) and
    access queries (~55%), endpoints and query keys Zipf(1.1)-skewed so
    churn concentrates on the heavy keys that stress the split-tree
    reclassification.  Deletes track the live edge set, so they almost
    always remove a present edge; inserts may occasionally repeat a
    live edge (an engine must treat those as no-ops).  Deterministic in
    [seed] — benches, tests and the CLI replay identical streams. *)
