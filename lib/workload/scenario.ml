open Stt_hypergraph

let edge_relation = "R"

let single_edge_violation (q : Cq.cqap) =
  List.find_opt
    (fun (a : Cq.atom) -> a.Cq.rel <> edge_relation)
    q.Cq.cq.Cq.atoms
  |> Option.map (fun (a : Cq.atom) -> a.Cq.rel)

let vertices_for_edges edges = max 10 (edges / 10)

let synthetic_db ~seed ~vertices ~edges =
  let pairs = Graphs.zipf_both ~seed ~vertices ~edges ~s:1.1 in
  let db = Stt_core.Db.create () in
  Stt_core.Db.add_pairs db edge_relation pairs;
  db

let zipf_requests ~seed ~n ~requests ~skew ~arity =
  let rng = Rng.create seed in
  let sample = Rng.zipf_sampler rng ~n ~s:skew in
  List.init requests (fun _ -> Array.init arity (fun _ -> sample ()))
