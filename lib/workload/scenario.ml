open Stt_hypergraph

let edge_relation = "R"

let single_edge_violation (q : Cq.cqap) =
  List.find_opt
    (fun (a : Cq.atom) -> a.Cq.rel <> edge_relation)
    q.Cq.cq.Cq.atoms
  |> Option.map (fun (a : Cq.atom) -> a.Cq.rel)

let vertices_for_edges edges = max 10 (edges / 10)

let synthetic_db ~seed ~vertices ~edges =
  let pairs = Graphs.zipf_both ~seed ~vertices ~edges ~s:1.1 in
  let db = Stt_core.Db.create () in
  Stt_core.Db.add_pairs db edge_relation pairs;
  db

let zipf_requests ~seed ~n ~requests ~skew ~arity =
  let rng = Rng.create seed in
  let sample = Rng.zipf_sampler rng ~n ~s:skew in
  List.init requests (fun _ -> Array.init arity (fun _ -> sample ()))

type churn_op =
  | Insert of int * int
  | Delete of int * int
  | Query of int array

let churn_ops ~seed ~vertices ~edges ~ops ~arity =
  let rng = Rng.create (seed lxor 0x5A17) in
  let sample = Rng.zipf_sampler rng ~n:vertices ~s:1.1 in
  let initial = Graphs.zipf_both ~seed ~vertices ~edges ~s:1.1 in
  (* a live mirror of the edge set, so deletes usually hit a present
     edge and inserts are mostly fresh — the stream still carries some
     redundant deltas, which is the point: the engine must no-op them *)
  let n0 = List.length initial in
  let live = Array.make (n0 + ops + 1) (0, 0) in
  List.iteri (fun i e -> live.(i) <- e) initial;
  let n_live = ref n0 in
  let seen = Hashtbl.create (2 * (n0 + ops)) in
  List.iter (fun e -> Hashtbl.replace seen e ()) initial;
  List.init ops (fun _ ->
      let r = Rng.float rng 1.0 in
      if r < 0.30 then begin
        let u = sample () and v = sample () in
        if not (Hashtbl.mem seen (u, v)) then begin
          Hashtbl.replace seen (u, v) ();
          live.(!n_live) <- (u, v);
          incr n_live
        end;
        Insert (u, v)
      end
      else if r < 0.45 && !n_live > 0 then begin
        let i = Rng.int rng !n_live in
        let u, v = live.(i) in
        live.(i) <- live.(!n_live - 1);
        decr n_live;
        Hashtbl.remove seen (u, v);
        Delete (u, v)
      end
      else Query (Array.init arity (fun _ -> sample ())))
