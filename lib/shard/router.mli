(** The router role of the sharded serving tier.

    A router is a [Stt_net.Core] process speaking the ordinary frame
    protocol to clients; instead of answering from an engine it
    {e scatters} each [Answer] batch across the shard {!Ring} — every
    tuple routed by the canonical key of [Stt_cache.Key.of_tuple], the
    same equivalence that keys caches and dedups batches — and
    {e gathers} the per-tuple answers back into request order, each
    answer still carrying the op-count snapshot its shard measured.

    Replicas are full snapshot loads, so the hash partition buys cache
    locality and parallelism rather than capacity splitting; that is
    what makes mid-batch failover sound.  When a shard fails a transport
    round, its tuples re-route to the next distinct owner on the ring
    (answering is read-only, hence idempotent) — zero lost, zero
    duplicated.  A shard {e rejection} (overload, deadline) rejects the
    whole client batch instead: partial answers would corrupt the
    client's per-tuple accounting.

    [Health] requests aggregate every shard's protocol-v5 health block
    into a fleet block: summed capacity/cache fields, per-shard blocks
    under [shards], fleet [ready] = all shards ready.  The router tracks
    each shard's monotonic [uptime_ns] between polls; a regression means
    the shard restarted (its statistics do not continue the previous
    process's), counted in {!restarts} and the [route.shard_restarts]
    Obs counter.  [Update] frames are rejected — replicas serve static
    snapshots. *)

type endpoint = { name : string; host : string; port : int }
(** Where a shard listens.  [name] identifies it on the ring (stable
    across reconnects; e.g. ["shard-0"]). *)

type t

val start :
  ?host:string ->
  port:int ->
  workers:int ->
  queue_capacity:int ->
  ?io_backend:Stt_net.Evloop.backend ->
  ?vnodes:int ->
  endpoint list ->
  t
(** Bind and serve (same lifecycle as [Stt_net.Server.start]; port [0]
    picks an ephemeral port).  [workers] bounds concurrent scatter
    rounds; shard connections are pooled per shard and dialed lazily.
    Raises [Invalid_argument] on an empty endpoint list or duplicate
    shard names. *)

(** {1 Live ring membership} *)

val add_shard : t -> endpoint -> unit
(** Add (or re-point) a shard; only keys whose nearest ring point
    changed move to it. *)

val drain_shard : t -> string -> unit
(** Remove a shard from the ring (new tuples stop routing to it) and
    drop its pooled connections.  Pair with SIGTERM to the replica: its
    own graceful drain answers what it already queued, and anything that
    fails mid-flight re-routes to the next owner. *)

val shards : t -> string list
(** Current ring membership (sorted). *)

(** {1 Introspection} *)

val port : t -> int
val io_backend : t -> string
val stats : t -> Stt_net.Core.stats
val trace_json : t -> string

val restarts : t -> int
(** Shard restarts detected via uptime regression across Health polls. *)

val shard_errors : t -> int
(** Transport-level shard failures observed (each failed shard per
    round counts once). *)

val retried_tuples : t -> int
(** Tuples re-routed to another owner after a shard failure. *)

(** {1 Lifecycle} *)

val stop : t -> unit
val stopping : t -> bool
val wait : t -> Stt_net.Core.stats
