(** Consistent-hash ring: canonical request keys -> shard names.

    Keys are the canonical bytes of [Stt_cache.Key] (routing, caching,
    and batch dedup share one equivalence), hashed with FNV-1a 64 — a
    deterministic, process-independent hash, so every router maps a key
    to the same shard.  Each shard holds [vnodes] virtual points on the
    64-bit circle; a key belongs to the first point clockwise.

    The ring is immutable: {!add} and {!remove} return new rings and
    move only the keys whose nearest point changed (minimal movement —
    the other shards keep their warm caches). *)

type t

val create : ?vnodes:int -> string list -> t
(** Build a ring over (distinct) shard names; [vnodes] defaults to 128
    points per shard.  Raises [Invalid_argument] if [vnodes < 1].  An
    empty name list yields an empty ring. *)

val shards : t -> string list
(** Sorted, distinct. *)

val is_empty : t -> bool
val mem : t -> string -> bool

val add : t -> string -> t
(** No-op if already present. *)

val remove : t -> string -> t
(** No-op if absent. *)

val owner : t -> string -> string
(** The shard owning [key].  Raises [Invalid_argument] on an empty
    ring. *)

val owners : t -> n:int -> string -> string list
(** The first [n] distinct shards clockwise from [key] — the failover
    preference order (the head equals {!owner}).  Shorter than [n] when
    the ring has fewer shards; [[]] on an empty ring. *)
