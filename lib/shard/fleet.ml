(* Replica fleet supervision for the multi-process bench and smoke
   tests: ship one snapshot to N boot paths (Stt_store.ship — validated,
   atomic), spawn N `stt serve-net --from-snapshot ... --port 0`
   processes, scrape each child's bound ephemeral port off its stdout,
   and drain them with SIGTERM (the replica's own graceful drain answers
   everything it already queued).

   The stdout pipe stays open until the child is reaped: the replica
   prints its drain summary on exit, and a closed pipe would turn that
   farewell into an EPIPE crash mid-drain. *)

type replica = {
  name : string;
  port : int;
  pid : int;
  out_fd : Unix.file_descr;
  snap_path : string;
}

type t = { mutable replicas : replica list; dir : string }

let endpoints t =
  List.map
    (fun r -> { Router.name = r.name; host = "127.0.0.1"; port = r.port })
    (List.rev t.replicas)

let replica_names t = List.rev_map (fun r -> r.name) t.replicas

(* scan accumulated stdout for "serving on 127.0.0.1:PORT (" — the
   trailing delimiter guarantees the digits are complete *)
let scrape_port s =
  let marker = "serving on 127.0.0.1:" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length s then None
    else if String.sub s i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let j = ref start in
      while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > start && !j < String.length s then
        int_of_string_opt (String.sub s start (!j - start))
      else None

let read_port fd ~timeout_s =
  let buf = Buffer.create 256 in
  let scratch = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match scrape_port (Buffer.contents buf) with
    | Some port -> Ok port
    | None -> (
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then
          Error
            (Printf.sprintf "timed out waiting for replica to bind; output: %S"
               (Buffer.contents buf))
        else
          match Unix.select [ fd ] [] [] left with
          | [], _, _ ->
              Error
                (Printf.sprintf
                   "timed out waiting for replica to bind; output: %S"
                   (Buffer.contents buf))
          | _ -> (
              match Unix.read fd scratch 0 (Bytes.length scratch) with
              | 0 ->
                  Error
                    (Printf.sprintf "replica exited during startup; output: %S"
                       (Buffer.contents buf))
              | n ->
                  Buffer.add_subbytes buf scratch 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let spawn_replica ~exe ~snapshot ~dir ~name ~workers ~queue ~cache_budget
    ~io_backend =
  let snap_path = Filename.concat dir (name ^ ".snap") in
  match Stt_store.Store.ship ~src:snapshot ~dst:snap_path with
  | Error e ->
      Error
        (Printf.sprintf "shipping snapshot to %s: %s" snap_path
           (Stt_store.Store.error_to_string e))
  | Ok _ -> (
      let args =
        [
          exe; "serve-net";
          "--from-snapshot"; snap_path;
          "--port"; "0";
          "--jobs"; string_of_int workers;
          "--queue"; string_of_int queue;
        ]
        @ (if cache_budget > 0 then
             [ "--cache-budget"; string_of_int cache_budget ]
           else [])
        @ match io_backend with
          | Some b -> [ "--io-backend"; b ]
          | None -> []
      in
      let out_r, out_w = Unix.pipe () in
      let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
      let pid =
        Unix.create_process exe (Array.of_list args) dev_null out_w Unix.stderr
      in
      Unix.close dev_null;
      Unix.close out_w;
      match read_port out_r ~timeout_s:60.0 with
      | Ok port -> Ok { name; port; pid; out_fd = out_r; snap_path }
      | Error msg ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          (try Unix.close out_r with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "%s: %s" name msg))

let reap r =
  (try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ());
  try Unix.close r.out_fd with Unix.Unix_error _ -> ()

let shutdown t =
  List.iter
    (fun r ->
      try Unix.kill r.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.replicas;
  List.iter reap t.replicas;
  t.replicas <- []

let launch ~exe ~snapshot ~dir ~count ?(workers = 2) ?(queue = 256)
    ?(cache_budget = 0) ?io_backend () =
  if count < 1 then invalid_arg "Fleet.launch: count must be >= 1";
  let t = { replicas = []; dir } in
  let rec go i =
    if i = count then Ok t
    else
      let name = Printf.sprintf "shard-%d" i in
      match
        spawn_replica ~exe ~snapshot ~dir ~name ~workers ~queue ~cache_budget
          ~io_backend
      with
      | Ok r ->
          t.replicas <- r :: t.replicas;
          go (i + 1)
      | Error msg ->
          shutdown t;
          Error msg
  in
  go 0

(* SIGTERM one replica (the router should have [drain_shard]ed it): its
   graceful drain answers queued requests, then the process exits and is
   reaped.  Returns [false] for an unknown name. *)
let drain t name =
  match List.find_opt (fun r -> r.name = name) t.replicas with
  | None -> false
  | Some r ->
      (try Unix.kill r.pid Sys.sigterm with Unix.Unix_error _ -> ());
      reap r;
      t.replicas <- List.filter (fun x -> x.name <> name) t.replicas;
      true
