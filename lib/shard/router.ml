module Obs = Stt_obs.Obs
module Json = Stt_obs.Json
module Frame = Stt_net.Frame
module Client = Stt_net.Client
module Core = Stt_net.Core

(* The router role: speaks the same frame protocol to clients as a
   replica, but answers by scattering each batch across the shard ring
   and gathering the per-tuple answers back into request order.

   Placement: every access tuple is keyed by its canonical bytes
   (Stt_cache.Key.of_tuple) and owned by Ring.owner of that key — the
   same equivalence that dedups batches and keys caches, so a permuted
   but equal request lands on the same shard and the same warm cache
   entry.  Replicas are full snapshots (the partition buys cache
   locality and parallelism, not capacity splitting), which is what
   makes failover sound: any shard can answer any tuple, so when a
   shard drains mid-batch the router re-routes its tuples to the next
   distinct owner on the ring and no answer is lost or duplicated —
   answering is read-only, hence idempotent under retry.

   Gather preserves per-request accounting: each tuple's answer carries
   the op-count snapshot its shard measured; the router forwards the
   slices verbatim, only reassembling order. *)

type endpoint = { name : string; host : string; port : int }

(* per-shard connection pool; a worker leases a connection for one rpc
   (connections are single-in-flight), broken ones are closed instead of
   returned *)
type upstream = {
  ep : endpoint;
  um : Mutex.t;
  mutable free : Client.t list;
  mutable last_uptime_ns : int; (* -1 = never seen *)
}

type t = {
  core : Core.t;
  ring_m : Mutex.t;
  mutable ring : Ring.t;
  ups_m : Mutex.t;
  upstreams : (string, upstream) Hashtbl.t;
  restarts : int Atomic.t;
  shard_errors : int Atomic.t;
  retried_tuples : int Atomic.t;
}

let ring t = Mutex.protect t.ring_m (fun () -> t.ring)
let shards t = Ring.shards (ring t)
let restarts t = Atomic.get t.restarts

let upstream_of t name =
  Mutex.protect t.ups_m (fun () -> Hashtbl.find_opt t.upstreams name)

(* [`Pooled] connections may be stale — the shard can have restarted
   behind an idle pool — so callers treat their failures as retryable;
   only a [`Fresh] dial's failure condemns the shard *)
let acquire_conn' t name =
  match upstream_of t name with
  | None -> Error (Frame.Io_error (Printf.sprintf "unknown shard %S" name))
  | Some up -> (
      let pooled =
        Mutex.protect up.um (fun () ->
            match up.free with
            | c :: rest ->
                up.free <- rest;
                Some c
            | [] -> None)
      in
      match pooled with
      | Some c -> Ok (c, `Pooled)
      | None ->
          Result.map
            (fun c -> (c, `Fresh))
            (Client.connect ~host:up.ep.host ~port:up.ep.port ()))

let acquire_conn t name = Result.map fst (acquire_conn' t name)

let release_conn t name c =
  match upstream_of t name with
  | None -> Client.close c
  | Some up -> Mutex.protect up.um (fun () -> up.free <- c :: up.free)

let close_pool up =
  let conns = Mutex.protect up.um (fun () ->
      let cs = up.free in
      up.free <- [];
      cs)
  in
  List.iter Client.close conns

(* ------------------------------------------------------------------ *)
(* scatter/gather                                                       *)
(* ------------------------------------------------------------------ *)

(* group (index, tuple) pairs by owning shard, preserving first-seen
   shard order; [excluded] shards (failed this batch) are skipped in the
   preference walk *)
let group_items ring ~arity ~excluded items =
  let nshards = List.length (Ring.shards ring) in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let orphans = ref 0 in
  List.iter
    (fun ((_, tup) as item) ->
      let key = Stt_cache.Key.of_tuple ~arity tup in
      let owner =
        Ring.owners ring ~n:nshards key
        |> List.find_opt (fun s -> not (List.mem s excluded))
      in
      match owner with
      | None -> incr orphans
      | Some shard -> (
          match Hashtbl.find_opt tbl shard with
          | Some l -> l := item :: !l
          | None ->
              Hashtbl.add tbl shard (ref [ item ]);
              order := shard :: !order))
    items;
  let groups =
    List.rev_map (fun s -> (s, List.rev !(Hashtbl.find tbl s))) !order
  in
  (groups, !orphans)

(* one scatter round: send every group's sub-batch before receiving any
   reply, so the shards answer in parallel even though this worker is a
   single domain.  Returns completed groups (answers or a rejection) and
   failed ones (transport error — candidates for re-routing). *)
let forward_round t ~id ~deadline_us ~arity groups =
  let sent = ref [] and failed = ref [] in
  List.iter
    (fun (shard, items) ->
      match acquire_conn t shard with
      | Error e -> failed := (shard, items, e) :: !failed
      | Ok c -> (
          let req =
            Frame.Answer
              { id; deadline_us; arity; tuples = List.map snd items }
          in
          match Client.send c req with
          | Ok () -> sent := (shard, items, c) :: !sent
          | Error e ->
              Client.close c;
              failed := (shard, items, e) :: !failed))
    groups;
  let completed = ref [] in
  List.iter
    (fun (shard, items, c) ->
      match Client.recv c with
      | Ok (Frame.Answers { answers; _ })
        when List.length answers = List.length items ->
          release_conn t shard c;
          completed := (shard, items, `Answers answers) :: !completed
      | Ok (Frame.Rejected { reject; _ }) ->
          release_conn t shard c;
          completed := (shard, items, `Rejected reject) :: !completed
      | Ok _ ->
          Client.close c;
          failed :=
            (shard, items, Frame.Malformed "unexpected shard response")
            :: !failed
      | Error e ->
          Client.close c;
          failed := (shard, items, e) :: !failed)
    (List.rev !sent);
  (List.rev !completed, List.rev !failed)

(* scatter [tuples], re-routing transport failures to the next distinct
   owner until answers are complete, a shard rejects, or every shard has
   failed.  A shard rejection (overload/deadline) rejects the whole
   client batch — per-tuple partial answers would corrupt the zero-loss
   accounting contract. *)
let scatter_gather t ~id ~deadline_us ~arity tuples =
  let n = List.length tuples in
  let results = Array.make n None in
  let items = List.mapi (fun i tup -> (i, tup)) tuples in
  let rec rounds ~excluded ~round items =
    let rg = ring t in
    if Ring.is_empty rg then `Error "shard ring is empty"
    else begin
      let groups, orphans = group_items rg ~arity ~excluded items in
      if orphans > 0 then
        `Error
          (Printf.sprintf "no reachable shard for %d tuples (%d shards failed)"
             orphans (List.length excluded))
      else begin
        let completed, failed =
          forward_round t ~id ~deadline_us ~arity groups
        in
        let rejection = ref None in
        List.iter
          (fun (_, items, outcome) ->
            match outcome with
            | `Answers answers ->
                List.iter2
                  (fun (i, _) ans -> results.(i) <- Some ans)
                  items answers
            | `Rejected reject ->
                if !rejection = None then rejection := Some reject)
          completed;
        match !rejection with
        | Some reject -> `Rejected reject
        | None ->
            if failed = [] then `Done
            else begin
              let failed_shards =
                List.sort_uniq String.compare
                  (List.map (fun (s, _, _) -> s) failed)
              in
              let retry_items =
                List.concat_map (fun (_, items, _) -> items) failed
              in
              Atomic.fetch_and_add t.shard_errors (List.length failed_shards)
              |> ignore;
              Atomic.fetch_and_add t.retried_tuples (List.length retry_items)
              |> ignore;
              if round > List.length (Ring.shards rg) then
                `Error "shard retry limit exceeded"
              else
                rounds
                  ~excluded:(failed_shards @ excluded)
                  ~round:(round + 1) retry_items
            end
      end
    end
  in
  match rounds ~excluded:[] ~round:0 items with
  | `Error msg -> `Error msg
  | `Rejected r -> `Rejected r
  | `Done -> (
      (* every index filled exactly once: each tuple lives in exactly one
         group per round, and failed groups never produced answers *)
      match Array.to_list results |> List.map Option.get with
      | answers -> `Answers answers
      | exception Invalid_argument _ -> `Error "gather left a hole")

(* ------------------------------------------------------------------ *)
(* aggregate scatter/gather                                             *)
(* ------------------------------------------------------------------ *)

module Semiring = Stt_semiring.Semiring

(* One aggregate round: per-shard partial Agg requests (each shard folds
   its owned tuples to a scalar), sent before any receive.  Mirrors
   [forward_round]. *)
let agg_round t ~id ~deadline_us ~kind ~arity groups =
  let sent = ref [] and failed = ref [] in
  List.iter
    (fun (shard, items) ->
      match acquire_conn t shard with
      | Error e -> failed := (shard, items, e) :: !failed
      | Ok c -> (
          let req =
            Frame.Agg
              { id; deadline_us; kind; arity; tuples = List.map snd items }
          in
          match Client.send c req with
          | Ok () -> sent := (shard, items, c) :: !sent
          | Error e ->
              Client.close c;
              failed := (shard, items, e) :: !failed))
    groups;
  let completed = ref [] in
  List.iter
    (fun (shard, items, c) ->
      match Client.recv c with
      | Ok (Frame.Agg_reply { value; cost; _ }) ->
          release_conn t shard c;
          completed := (shard, items, `Partial (value, cost)) :: !completed
      | Ok (Frame.Rejected { reject; _ }) ->
          release_conn t shard c;
          completed := (shard, items, `Rejected reject) :: !completed
      | Ok _ ->
          Client.close c;
          failed :=
            (shard, items, Frame.Malformed "unexpected shard response")
            :: !failed
      | Error e ->
          Client.close c;
          failed := (shard, items, e) :: !failed)
    (List.rev !sent);
  (List.rev !completed, List.rev !failed)

(* Scatter one multi-tuple aggregate request and ⊕-merge the per-shard
   partial scalars with the semiring's combine operator (costs sum).
   Soundness of the merge: the request's tuple set is partitioned across
   shards, every shard holds a full snapshot, and the aggregate is a
   semiring sum over derivations grouped by access tuple — so partials
   over disjoint tuple sets combine exactly.  On a transport failure
   only the {e failed} groups' tuples are re-routed to the next distinct
   owner; completed partials are already merged and are never re-sent,
   so no derivation is double-counted under failover. *)
let scatter_gather_agg t ~id ~deadline_us ~kind ~arity tuples =
  match Semiring.of_tag kind with
  | None -> `Error (Printf.sprintf "unknown aggregate kind %d" kind)
  | Some k ->
      let acc_value = ref (Semiring.zero k) in
      let acc_cost = ref Stt_relation.Cost.zero in
      let items = List.mapi (fun i tup -> (i, tup)) tuples in
      let rec rounds ~excluded ~round items =
        if items = [] then `Done
        else
          let rg = ring t in
          if Ring.is_empty rg then `Error "shard ring is empty"
          else begin
            let groups, orphans = group_items rg ~arity ~excluded items in
            if orphans > 0 then
              `Error
                (Printf.sprintf
                   "no reachable shard for %d tuples (%d shards failed)"
                   orphans (List.length excluded))
            else begin
              let completed, failed =
                agg_round t ~id ~deadline_us ~kind ~arity groups
              in
              let rejection = ref None in
              List.iter
                (fun (_, _, outcome) ->
                  match outcome with
                  | `Partial (value, cost) ->
                      acc_value := Semiring.add k !acc_value value;
                      acc_cost := Stt_relation.Cost.add !acc_cost cost
                  | `Rejected reject ->
                      if !rejection = None then rejection := Some reject)
                completed;
              match !rejection with
              | Some reject -> `Rejected reject
              | None ->
                  if failed = [] then `Done
                  else begin
                    let failed_shards =
                      List.sort_uniq String.compare
                        (List.map (fun (s, _, _) -> s) failed)
                    in
                    let retry_items =
                      List.concat_map (fun (_, items, _) -> items) failed
                    in
                    Atomic.fetch_and_add t.shard_errors
                      (List.length failed_shards)
                    |> ignore;
                    Atomic.fetch_and_add t.retried_tuples
                      (List.length retry_items)
                    |> ignore;
                    if round > List.length (Ring.shards rg) then
                      `Error "shard retry limit exceeded"
                    else
                      rounds
                        ~excluded:(failed_shards @ excluded)
                        ~round:(round + 1) retry_items
                  end
            end
          end
      in
      (match rounds ~excluded:[] ~round:0 items with
      | `Error _ as e -> e
      | `Rejected _ as r -> r
      | `Done -> `Value (!acc_value, !acc_cost))

(* ------------------------------------------------------------------ *)
(* worker jobs                                                          *)
(* ------------------------------------------------------------------ *)

let serve_answer t ~conn ~id ~deadline_us ~arity ~tuples ~jdeadline =
  let started = Unix.gettimeofday () in
  if started > jdeadline then begin
    Core.note_deadline t.core;
    Core.reply t.core conn
      (Frame.Rejected { id; reject = Frame.Deadline_exceeded })
  end
  else begin
    let jctx = Obs.create_context () in
    let remaining_us =
      if deadline_us = 0 then 0
      else max 1 (int_of_float ((jdeadline -. started) *. 1e6))
    in
    let outcome =
      Obs.with_context jctx (fun () ->
          Obs.span "route.request"
            ~attrs:
              [
                ("id", Json.Int id);
                ("tuples", Json.Int (List.length tuples));
              ]
            (fun () ->
              try
                scatter_gather t ~id ~deadline_us:remaining_us ~arity tuples
              with e -> `Error (Printexc.to_string e)))
    in
    let finished = Unix.gettimeofday () in
    (match outcome with
    | `Answers answers ->
        Core.note_answered t.core;
        Core.reply t.core conn (Frame.Answers { id; answers })
    | `Rejected (Frame.Overloaded as reject) ->
        Core.note_overload t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Rejected (Frame.Deadline_exceeded as reject) ->
        Core.note_deadline t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Rejected (Frame.Bad_request _ as reject) ->
        Core.note_bad t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Error msg ->
        Core.note_bad t.core;
        Core.reply t.core conn
          (Frame.Rejected { id; reject = Frame.Bad_request msg }));
    Core.with_obs t.core (fun () ->
        Obs.adopt jctx;
        Obs.incr "route.requests";
        Obs.observe "route.serve_us" ((finished -. started) *. 1e6))
  end

let serve_agg t ~conn ~id ~deadline_us ~kind ~arity ~tuples ~jdeadline =
  let started = Unix.gettimeofday () in
  if started > jdeadline then begin
    Core.note_deadline t.core;
    Core.reply t.core conn
      (Frame.Rejected { id; reject = Frame.Deadline_exceeded })
  end
  else begin
    let jctx = Obs.create_context () in
    let remaining_us =
      if deadline_us = 0 then 0
      else max 1 (int_of_float ((jdeadline -. started) *. 1e6))
    in
    let outcome =
      Obs.with_context jctx (fun () ->
          Obs.span "route.agg"
            ~attrs:
              [
                ("id", Json.Int id);
                ("kind", Json.Int kind);
                ("tuples", Json.Int (List.length tuples));
              ]
            (fun () ->
              try
                scatter_gather_agg t ~id ~deadline_us:remaining_us ~kind
                  ~arity tuples
              with e -> `Error (Printexc.to_string e)))
    in
    let finished = Unix.gettimeofday () in
    (match outcome with
    | `Value (value, cost) ->
        Core.note_answered t.core;
        Core.reply t.core conn (Frame.Agg_reply { id; value; cost })
    | `Rejected (Frame.Overloaded as reject) ->
        Core.note_overload t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Rejected (Frame.Deadline_exceeded as reject) ->
        Core.note_deadline t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Rejected (Frame.Bad_request _ as reject) ->
        Core.note_bad t.core;
        Core.reply t.core conn (Frame.Rejected { id; reject })
    | `Error msg ->
        Core.note_bad t.core;
        Core.reply t.core conn
          (Frame.Rejected { id; reject = Frame.Bad_request msg }));
    Core.with_obs t.core (fun () ->
        Obs.adopt jctx;
        Obs.incr "route.aggs";
        Obs.observe "route.agg_us" ((finished -. started) *. 1e6))
  end

(* ------------------------------------------------------------------ *)
(* fleet health                                                         *)
(* ------------------------------------------------------------------ *)

let unreachable_health =
  {
    Frame.ready = false;
    space = 0;
    agg_space = 0;
    workers = 0;
    queue_capacity = 0;
    queue_depth = 0;
    uptime_ns = 0;
    cache = Frame.no_cache;
    io_backend = "unreachable";
    shards = [];
  }

(* A pooled connection can be stale — the shard may have restarted (on
   the same port) since it was leased out — so a failure on one is not
   evidence the shard is down.  Keep closing dead pooled conns and
   re-acquiring; the pool is finite, so this terminates at a fresh dial,
   whose verdict is authoritative. *)
let rec poll_shard_health t name =
  match acquire_conn' t name with
  | Error _ -> unreachable_health
  | Ok (c, provenance) -> (
      match Client.rpc c (Frame.Health { id = 0 }) with
      | Ok (Frame.Health_reply { health; _ }) -> (
          release_conn t name c;
          (* staleness check: a monotonic uptime that went backwards
             means this is a different process than last poll — its
             history (cache hit counts, etc.) does not continue ours *)
          match upstream_of t name with
          | None -> health
          | Some up ->
              if up.last_uptime_ns >= 0 && health.uptime_ns < up.last_uptime_ns
              then begin
                Atomic.incr t.restarts;
                Core.with_obs t.core (fun () -> Obs.incr "route.shard_restarts")
              end;
              up.last_uptime_ns <- health.Frame.uptime_ns;
              health)
      | Ok _ | Error _ -> (
          Client.close c;
          match provenance with
          | `Pooled -> poll_shard_health t name
          | `Fresh -> unreachable_health))

let fleet_health t =
  let names = shards t in
  let blocks = List.map (fun name -> (name, poll_shard_health t name)) names in
  let sum f = List.fold_left (fun acc (_, h) -> acc + f h) 0 blocks in
  let sum_cache f =
    List.fold_left (fun acc (_, h) -> acc + f h.Frame.cache) 0 blocks
  in
  {
    Frame.ready =
      blocks <> [] && List.for_all (fun (_, h) -> h.Frame.ready) blocks;
    space = sum (fun h -> h.Frame.space);
    agg_space = sum (fun h -> h.Frame.agg_space);
    workers = sum (fun h -> h.Frame.workers);
    queue_capacity = sum (fun h -> h.Frame.queue_capacity);
    queue_depth = sum (fun h -> h.Frame.queue_depth);
    uptime_ns = Core.uptime_ns t.core;
    cache =
      {
        Frame.cache_budget = sum_cache (fun c -> c.Frame.cache_budget);
        cache_used = sum_cache (fun c -> c.Frame.cache_used);
        cache_entries = sum_cache (fun c -> c.Frame.cache_entries);
        cache_hits = sum_cache (fun c -> c.Frame.cache_hits);
        cache_misses = sum_cache (fun c -> c.Frame.cache_misses);
      };
    io_backend = Core.io_backend t.core;
    shards = blocks;
  }

(* ------------------------------------------------------------------ *)
(* the role callback (runs on the IO domain — never blocks on shards)   *)
(* ------------------------------------------------------------------ *)

let handle_request t core conn ~now req =
  match req with
  | Frame.Answer { id; deadline_us; arity; tuples } ->
      Core.note_received core;
      let jdeadline =
        if deadline_us = 0 then infinity
        else now +. (float_of_int deadline_us /. 1e6)
      in
      let job () =
        serve_answer t ~conn ~id ~deadline_us ~arity ~tuples ~jdeadline
      in
      if not (Core.enqueue core job) then begin
        Core.note_overload core;
        Core.reply core conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Agg { id; deadline_us; kind; arity; tuples } ->
      Core.note_received core;
      let jdeadline =
        if deadline_us = 0 then infinity
        else now +. (float_of_int deadline_us /. 1e6)
      in
      let job () =
        serve_agg t ~conn ~id ~deadline_us ~kind ~arity ~tuples ~jdeadline
      in
      if not (Core.enqueue core job) then begin
        Core.note_overload core;
        Core.reply core conn (Frame.Rejected { id; reject = Frame.Overloaded })
      end
  | Frame.Update { id; _ } ->
      (* replicas serve static snapshot loads; there is no coherent way
         to apply a delta fleet-wide through this tier yet *)
      Core.note_received core;
      Core.note_bad core;
      Core.reply core conn
        (Frame.Rejected
           {
             id;
             reject = Frame.Bad_request "router does not accept updates";
           })
  | Frame.Stats { id } ->
      Core.reply core conn
        (Frame.Stats_reply { id; json = Core.trace_json core })
  | Frame.Health { id } ->
      (* polling every shard is blocking work — a worker job, not an
         IO-domain errand *)
      let job () =
        Core.reply core conn
          (Frame.Health_reply { id; health = fleet_health t })
      in
      if not (Core.enqueue core job) then
        Core.reply core conn
          (Frame.Health_reply
             {
               id;
               health =
                 {
                   unreachable_health with
                   Frame.io_backend = Core.io_backend core;
                   uptime_ns = Core.uptime_ns core;
                 };
             })

(* ------------------------------------------------------------------ *)
(* lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start ?host ~port ~workers ~queue_capacity ?io_backend ?(vnodes = 128)
    endpoints =
  if endpoints = [] then invalid_arg "Router.start: no shard endpoints";
  let names = List.map (fun ep -> ep.name) endpoints in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Router.start: duplicate shard names";
  let upstreams = Hashtbl.create 8 in
  List.iter
    (fun ep ->
      Hashtbl.replace upstreams ep.name
        { ep; um = Mutex.create (); free = []; last_uptime_ns = -1 })
    endpoints;
  (* the role state needs the core and the core's callback needs the
     role state; the knot is tied through an atomic box.  A request can
     only race the [set] below if a client guesses the ephemeral port
     before [start] returns — shed it like an overload if so. *)
  let t_box = Atomic.make None in
  let core =
    Core.start ?host ~port ~workers ~queue_capacity ?io_backend
      (fun core conn ~now req ->
        match Atomic.get t_box with
        | Some t -> handle_request t core conn ~now req
        | None -> (
            ignore now;
            match req with
            | Frame.Answer { id; _ }
            | Frame.Agg { id; _ }
            | Frame.Update { id; _ }
            | Frame.Stats { id }
            | Frame.Health { id } ->
                Core.reply core conn
                  (Frame.Rejected { id; reject = Frame.Overloaded })))
  in
  let t =
    {
      core;
      ring_m = Mutex.create ();
      ring = Ring.create ~vnodes names;
      ups_m = Mutex.create ();
      upstreams;
      restarts = Atomic.make 0;
      shard_errors = Atomic.make 0;
      retried_tuples = Atomic.make 0;
    }
  in
  Atomic.set t_box (Some t);
  t

let add_shard t ep =
  Mutex.protect t.ups_m (fun () ->
      match Hashtbl.find_opt t.upstreams ep.name with
      | Some up when up.ep = ep -> ()
      | Some up ->
          close_pool up;
          Hashtbl.replace t.upstreams ep.name
            { ep; um = Mutex.create (); free = []; last_uptime_ns = -1 }
      | None ->
          Hashtbl.replace t.upstreams ep.name
            { ep; um = Mutex.create (); free = []; last_uptime_ns = -1 });
  Mutex.protect t.ring_m (fun () -> t.ring <- Ring.add t.ring ep.name)

(* Remove the shard from the ring so no new tuple routes to it, then
   close its pooled connections.  Requests already in flight against it
   either complete (the shard's own SIGTERM drain answers queued jobs)
   or fail and re-route — the zero-loss drain test drives exactly this
   window. *)
let drain_shard t name =
  Mutex.protect t.ring_m (fun () -> t.ring <- Ring.remove t.ring name);
  match upstream_of t name with None -> () | Some up -> close_pool up

let shard_errors t = Atomic.get t.shard_errors
let retried_tuples t = Atomic.get t.retried_tuples
let port t = Core.port t.core
let io_backend t = Core.io_backend t.core
let stop t = Core.stop t.core
let stopping t = Core.stopping t.core
let stats t = Core.stats t.core
let trace_json t = Core.trace_json t.core

let wait t =
  let s = Core.wait t.core in
  Mutex.protect t.ups_m (fun () ->
      Hashtbl.iter (fun _ up -> close_pool up) t.upstreams);
  s
