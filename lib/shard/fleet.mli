(** Replica fleet supervision (multi-process bench / smoke tests).

    [launch] ships one snapshot to [count] per-replica boot paths
    ([Stt_store.Store.ship]: validated, atomically written — warm caches
    travel in the snapshot's cache section) and spawns [count]
    [serve-net --from-snapshot ... --port 0] child processes of the
    given executable, scraping each bound ephemeral port from the
    child's stdout.  {!drain} SIGTERMs one replica — its own graceful
    drain answers everything already queued — and {!shutdown} drains the
    rest and reaps every child. *)

type t

type replica = {
  name : string;  (** ring name, ["shard-<i>"] *)
  port : int;  (** bound ephemeral port *)
  pid : int;
  out_fd : Unix.file_descr;  (** child stdout; held open until reaped *)
  snap_path : string;  (** the shipped snapshot copy it booted from *)
}

val launch :
  exe:string ->
  snapshot:string ->
  dir:string ->
  count:int ->
  ?workers:int ->
  ?queue:int ->
  ?cache_budget:int ->
  ?io_backend:string ->
  unit ->
  (t, string) result
(** Spawn the fleet ([workers] domains and [queue] capacity {e per
    replica}; [cache_budget] > 0 attaches an answer cache on each).
    [exe] is typically [Sys.executable_name] of the [stt] binary.  On
    any failure the already-started replicas are shut down and an error
    message returned.  Waits up to 60 s per replica to bind. *)

val endpoints : t -> Router.endpoint list
(** In launch order — feed to [Router.start]. *)

val replica_names : t -> string list

val drain : t -> string -> bool
(** SIGTERM one replica by name, wait for it to exit, reap it.  [false]
    if unknown.  Call [Router.drain_shard] {e first} so new tuples stop
    routing to it. *)

val shutdown : t -> unit
(** Drain and reap every remaining replica (idempotent). *)
