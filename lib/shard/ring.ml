(* Consistent-hash ring over canonical request keys.

   Each shard contributes [vnodes] points on a 64-bit circle; a key is
   owned by the first point clockwise from its hash.  Virtual nodes keep
   the load spread even with a handful of shards, and give the ring its
   minimal-movement property: adding or removing a shard only moves the
   keys whose nearest point changed — every other key keeps its owner,
   so every other shard keeps its warm cache.

   The hash is FNV-1a 64: deterministic across processes and OCaml
   versions (never [Hashtbl.hash], whose output is explicitly not a
   wire-stable function), cheap, and plenty uniform for key placement.
   Keys are the canonical bytes from [Stt_cache.Key], so two requests
   that canonicalize equal land on the same shard by construction.

   The ring is immutable; [add]/[remove] return a new ring.  The router
   swaps rings under its own lock — an in-flight request routed on the
   old ring either completes (any replica can answer: replicas are full
   snapshots, the partition is for cache locality) or fails over via
   [owners]. *)

type t = {
  vnodes : int;
  points : (int64 * string) array; (* sorted by point, then name *)
  shards : string list; (* sorted, distinct *)
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

(* splitmix64 finalizer: raw FNV-1a leaves the last bytes of short,
   structured inputs ("shard-0#17", canonical key bytes) almost entirely
   in the LOW bits — every vnode of a shard then shares its high bits
   and the ring collapses into one arc per shard.  The unsigned point
   order lives in the high bits, so finish with a full-avalanche mix. *)
let mix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  mix64 !h

(* points sort in unsigned order so the clockwise walk is well defined
   on the full 64-bit circle *)
let compare_points (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with
  | 0 -> String.compare n1 n2
  | c -> c

let default_vnodes = 128

let create ?(vnodes = default_vnodes) names =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let shards = List.sort_uniq String.compare names in
  let points =
    List.concat_map
      (fun name ->
        List.init vnodes (fun i ->
            (fnv1a64 (Printf.sprintf "%s#%d" name i), name)))
      shards
    |> Array.of_list
  in
  Array.sort compare_points points;
  { vnodes; points; shards }

let shards t = t.shards
let is_empty t = t.shards = []
let mem t name = List.mem name t.shards

let add t name =
  if mem t name then t else create ~vnodes:t.vnodes (name :: t.shards)

let remove t name =
  if not (mem t name) then t
  else create ~vnodes:t.vnodes (List.filter (( <> ) name) t.shards)

(* index of the first point clockwise from [h] (unsigned), wrapping *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

let owner t key =
  if is_empty t then invalid_arg "Ring.owner: empty ring";
  snd t.points.(successor t (fnv1a64 key))

(* first [n] distinct shards on the clockwise walk — the failover
   preference order.  [owners t ~n:(List.length (shards t)) key] visits
   every shard, so a router draining shard after shard always finds the
   next owner. *)
let owners t ~n key =
  if is_empty t then []
  else begin
    let total = Array.length t.points in
    let want = min n (List.length t.shards) in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    let i = ref (successor t (fnv1a64 key)) in
    let steps = ref 0 in
    while Hashtbl.length seen < want && !steps < total do
      let name = snd t.points.(!i) in
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        acc := name :: !acc
      end;
      i := if !i + 1 = total then 0 else !i + 1;
      incr steps
    done;
    List.rev !acc
  end
