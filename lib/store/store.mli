(** Versioned, checksummed snapshot container.

    A snapshot file is a sequence of named sections:

    {v
      magic   8 bytes   "\x89STTSNAP"
      version u32 LE    format version of the writer
      section (repeated)
        0x53 'S'        section marker
        name            varint length + bytes
        payload         varint length + bytes
        crc32           u32 LE, CRC-32 of the payload bytes
      0x45 'E'          end marker
    v}

    The writer streams: each section is buffered, measured, checksummed
    and flushed to the channel before the next one starts, so the whole
    snapshot is never held in memory twice.  The reader validates
    strictly — wrong magic, any version skew, a truncated file, a
    checksum mismatch or trailing garbage all surface as a typed
    {!error}, never as a crash or a silently wrong structure. *)

type error =
  | Io_error of string  (** open/read/write failed (errno message) *)
  | Bad_magic  (** the file does not start with the snapshot magic *)
  | Version_skew of { found : int; expected : int }
      (** written by an incompatible format version *)
  | Truncated of string  (** file ends mid-structure (context) *)
  | Checksum_mismatch of string  (** section payload CRC differs (name) *)
  | Missing_section of string  (** a required section is absent (name) *)
  | Malformed of string
      (** bytes decode to an impossible structure (context) *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

module Writer : sig
  type t

  val create : version:int -> string -> (t, error) result
  (** Open [path] for writing and emit the header. *)

  val section : t -> string -> (Codec.encoder -> unit) -> unit
  (** Append one named section whose payload is produced by the
      callback. *)

  val close : t -> (int, error) result
  (** Write the end marker, flush and close; returns total bytes
      written.  The writer must not be used afterwards. *)
end

val write : version:int -> string ->
  (string * (Codec.encoder -> unit)) list -> (int, error) result
(** [write ~version path sections] — create, write each section in
    order, close.  The file is removed on error. *)

module Reader : sig
  type t

  val load : version:int -> string -> (t, error) result
  (** Read and validate the whole file: magic, version, section
      framing, every CRC. *)

  val section : t -> string -> (Codec.decoder -> 'a) -> ('a, error) result
  (** Decode one named section.  [Codec.Short]/[Codec.Corrupt] raised
      by the callback (and leftover bytes) are mapped to {!Truncated} /
      {!Malformed}. *)

  val section_names : t -> string list
  (** In file order. *)

  val bytes : t -> int
  (** Total file size in bytes. *)
end

val ship : src:string -> dst:string -> (int, error) result
(** Validate the snapshot at [src] — magic, section framing, every CRC,
    at whatever format version the file declares — and copy it to [dst]
    atomically (tmp file + rename), returning the bytes shipped.  This
    is the replication primitive of the sharded serving tier: build one
    snapshot, [ship] it to each replica's boot path; a corrupt source
    surfaces as a typed {!error} before any replica sees it, and a
    crashed ship never leaves a torn [dst].  Shipping does not interpret
    the payload, so it forwards snapshots across format versions; the
    consumer's [load] still enforces its own expected version. *)
