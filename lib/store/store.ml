type error =
  | Io_error of string
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Truncated of string
  | Checksum_mismatch of string
  | Missing_section of string
  | Malformed of string

let error_to_string = function
  | Io_error msg -> "io error: " ^ msg
  | Bad_magic -> "not a snapshot file (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "snapshot format version %d, this build expects %d" found
        expected
  | Truncated ctx -> "truncated snapshot: " ^ ctx
  | Checksum_mismatch name ->
      Printf.sprintf "checksum mismatch in section %S" name
  | Missing_section name -> Printf.sprintf "missing section %S" name
  | Malformed ctx -> "malformed snapshot: " ^ ctx

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let magic = "\x89STTSNAP"
let sect_marker = 0x53 (* 'S' *)
let end_marker = 0x45 (* 'E' *)

module Writer = struct
  type t = { oc : out_channel; mutable bytes : int }

  let emit t s =
    output_string t.oc s;
    t.bytes <- t.bytes + String.length s

  let create ~version path =
    match open_out_bin path with
    | exception Sys_error msg -> Error (Io_error msg)
    | oc ->
        let t = { oc; bytes = 0 } in
        let header = Codec.encoder () in
        Codec.write_u32 header version;
        emit t magic;
        emit t (Codec.contents header);
        Ok t

  let section t name f =
    let payload = Codec.encoder () in
    f payload;
    let payload = Codec.contents payload in
    let frame = Codec.encoder () in
    Codec.write_u8 frame sect_marker;
    Codec.write_string frame name;
    Codec.write_uint frame (String.length payload);
    emit t (Codec.contents frame);
    emit t payload;
    let crc = Codec.encoder () in
    Codec.write_u32 crc (Crc32.string payload);
    emit t (Codec.contents crc)

  let close t =
    let fin = Codec.encoder () in
    Codec.write_u8 fin end_marker;
    emit t (Codec.contents fin);
    match close_out t.oc with
    | () -> Ok t.bytes
    | exception Sys_error msg -> Error (Io_error msg)
end

let write ~version path sections =
  match Writer.create ~version path with
  | Error _ as e -> e
  | Ok w -> (
      match
        List.iter (fun (name, f) -> Writer.section w name f) sections
      with
      | () -> Writer.close w
      | exception e ->
          close_out_noerr w.Writer.oc;
          (try Sys.remove path with Sys_error _ -> ());
          raise e)

module Reader = struct
  type t = { sections : (string * string) list; bytes : int }

  let read_file path =
    match open_in_bin path with
    | exception Sys_error msg -> Error (Io_error msg)
    | ic ->
        let r =
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception Sys_error msg -> Error (Io_error msg)
          | exception End_of_file -> Error (Truncated "file shrank while reading")
        in
        close_in_noerr ic;
        r

  let parse ~version src =
    let len = String.length src in
    if len < String.length magic then Error (Truncated "header")
    else if String.sub src 0 (String.length magic) <> magic then
      Error Bad_magic
    else
      (* skip the magic, then walk the framing with the codec decoder *)
      let d =
        Codec.decoder
          (String.sub src (String.length magic) (len - String.length magic))
      in
      match
        let found = Codec.read_u32 d in
        if found <> version then Error (Version_skew { found; expected = version })
        else
          let sections = ref [] in
          let rec loop () =
            match Codec.read_u8 d with
            | m when m = end_marker ->
                if Codec.remaining d <> 0 then
                  Error (Malformed "bytes after end marker")
                else Ok { sections = List.rev !sections; bytes = len }
            | m when m = sect_marker ->
                let name = Codec.read_string d in
                let plen = Codec.read_uint d in
                if plen > Codec.remaining d then
                  Error (Truncated (Printf.sprintf "section %S payload" name))
                else begin
                  let payload = Codec.read_bytes d plen in
                  let crc = Codec.read_u32 d in
                  if Crc32.string payload <> crc then
                    Error (Checksum_mismatch name)
                  else begin
                    sections := (name, payload) :: !sections;
                    loop ()
                  end
                end
            | m -> Error (Malformed (Printf.sprintf "unknown marker 0x%02x" m))
          in
          loop ()
      with
      | r -> r
      | exception Codec.Short ctx -> Error (Truncated ctx)
      | exception Codec.Corrupt ctx -> Error (Malformed ctx)

  let load ~version path =
    match read_file path with
    | Error _ as e -> e
    | Ok src -> parse ~version src

  let section_names t = List.map fst t.sections
  let bytes t = t.bytes

  let section t name f =
    match List.assoc_opt name t.sections with
    | None -> Error (Missing_section name)
    | Some payload -> (
        let d = Codec.decoder payload in
        match
          let v = f d in
          Codec.expect_end d ("section " ^ name);
          v
        with
        | v -> Ok v
        | exception Codec.Short ctx ->
            Error (Truncated (Printf.sprintf "section %S: %s" name ctx))
        | exception Codec.Corrupt ctx ->
            Error (Malformed (Printf.sprintf "section %S: %s" name ctx)))
end

(* Snapshot shipping: the replication primitive of the sharded tier.
   Build once, ship bytes to each replica — the copy is validated
   section by section (magic, framing, every CRC) before it lands, at
   whatever format version the file declares (shipping is transport, not
   interpretation: the replica's [load] still enforces its own version),
   and written atomically (tmp + rename) so a replica never boots from a
   torn file. *)
let ship ~src ~dst =
  match Reader.read_file src with
  | Error _ as e -> e
  | Ok blob -> (
      if String.length blob < String.length magic + 4 then
        Error (Truncated "header")
      else if String.sub blob 0 (String.length magic) <> magic then
        Error Bad_magic
      else
        let declared =
          Codec.read_u32 (Codec.decoder (String.sub blob (String.length magic) 4))
        in
        match Reader.parse ~version:declared blob with
        | Error _ as e -> e
        | Ok _ -> (
            let tmp = dst ^ ".ship-tmp" in
            match
              let oc = open_out_bin tmp in
              (match output_string oc blob with
              | () -> close_out oc
              | exception e ->
                  close_out_noerr oc;
                  raise e);
              Sys.rename tmp dst
            with
            | () -> Ok (String.length blob)
            | exception Sys_error msg ->
                (try Sys.remove tmp with Sys_error _ -> ());
                Error (Io_error msg)))
