exception Short of string
exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* encoding                                                             *)
(* ------------------------------------------------------------------ *)

type encoder = Buffer.t

let encoder () = Buffer.create 1024
let contents = Buffer.contents
let write_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let write_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.write_u32";
  write_u8 b v;
  write_u8 b (v lsr 8);
  write_u8 b (v lsr 16);
  write_u8 b (v lsr 24)

let rec write_uint b v =
  if v < 0 then invalid_arg "Codec.write_uint: negative"
  else if v < 0x80 then write_u8 b v
  else begin
    write_u8 b (0x80 lor (v land 0x7F));
    write_uint b (v lsr 7)
  end

(* zigzag: 0 → 0, -1 → 1, 1 → 2, -2 → 3, ... keeps small magnitudes in
   one varint byte regardless of sign *)
let write_int b v = write_uint b ((v lsl 1) lxor (v asr 62))
let write_bool b v = write_u8 b (if v then 1 else 0)

let write_string b s =
  write_uint b (String.length s);
  Buffer.add_string b s

let write_list b f xs =
  write_uint b (List.length xs);
  List.iter f xs

let write_uint_array b a =
  write_uint b (Array.length a);
  Array.iter (write_uint b) a

let write_rows b ~arity rows =
  write_uint b (List.length rows);
  for j = 0 to arity - 1 do
    let prev = ref 0 in
    List.iter
      (fun row ->
        if Array.length row <> arity then
          invalid_arg "Codec.write_rows: arity mismatch";
        write_int b (row.(j) - !prev);
        prev := row.(j))
      rows
  done

(* ------------------------------------------------------------------ *)
(* decoding                                                             *)
(* ------------------------------------------------------------------ *)

type decoder = { src : string; mutable pos : int; limit : int }

let decoder src = { src; pos = 0; limit = String.length src }

(* decode a window of [src] without copying it out first — the network
   layer cuts frames straight out of its connection read buffer *)
let decoder_sub src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length src then
    invalid_arg "Codec.decoder_sub";
  { src; pos; limit = pos + len }

let remaining d = d.limit - d.pos

let read_u8 d =
  if d.pos >= d.limit then raise (Short "byte");
  let v = Char.code (String.unsafe_get d.src d.pos) in
  d.pos <- d.pos + 1;
  v

let read_u32 d =
  let a = read_u8 d in
  let b = read_u8 d in
  let c = read_u8 d in
  let e = read_u8 d in
  a lor (b lsl 8) lor (c lsl 16) lor (e lsl 24)

let read_uint d =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let byte = read_u8 d in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_int d =
  let v = read_uint d in
  (v lsr 1) lxor (- (v land 1))

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "bool byte %d" n))

let read_bytes d n =
  if n < 0 then raise (Corrupt "negative byte count");
  if n > remaining d then raise (Short "bytes");
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let read_string d = read_bytes d (read_uint d)

let read_count d =
  let n = read_uint d in
  (* every element costs at least one byte, so a count beyond the
     remaining bytes is corruption, not a huge allocation request *)
  if n > remaining d + 1 then raise (Corrupt "count exceeds payload");
  n

let read_list d f = List.init (read_count d) (fun _ -> f ())
let read_uint_array d = Array.init (read_count d) (fun _ -> read_uint d)

let read_rows d ~arity =
  let n = read_count d in
  let rows = List.init n (fun _ -> Array.make arity 0) in
  for j = 0 to arity - 1 do
    let prev = ref 0 in
    List.iter
      (fun row ->
        prev := !prev + read_int d;
        row.(j) <- !prev)
      rows
  done;
  rows

let expect_end d what =
  if remaining d <> 0 then
    raise (Corrupt (Printf.sprintf "%s: %d trailing bytes" what (remaining d)))
