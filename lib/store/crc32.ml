(* Reflected CRC-32 with the 0xEDB88320 polynomial.  OCaml ints are 63
   bits everywhere we run, so the 32-bit arithmetic fits in plain [int]
   with a final mask. *)

type t = int

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let init = mask

let update t s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref t in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c

let finish t = t lxor mask land mask
let string s = finish (update init s ~pos:0 ~len:(String.length s))
