(** Binary primitives of the snapshot wire format.

    Encoders append to a growable buffer; decoders walk a string slice.
    Integers use LEB128 varints (zigzag for signed values), so small
    ids, arities and deltas cost one byte.  [write_rows]/[read_rows]
    encode a block of equal-arity int rows column-major with per-column
    row-to-row deltas — sorted tuple sets compress to a few bits per
    value because each column changes slowly down the rows.

    Decoders never read past their slice: exhaustion raises {!Short} and
    structurally impossible data (e.g. a negative count) raises
    {!Corrupt}, which the {!Store} layer maps to its typed errors. *)

exception Short of string
(** Decoder ran out of bytes; the payload is truncated. *)

exception Corrupt of string
(** The bytes decode to a structurally impossible value. *)

(** {1 Encoding} *)

type encoder

val encoder : unit -> encoder
val contents : encoder -> string
val write_u8 : encoder -> int -> unit
val write_u32 : encoder -> int -> unit
(** Fixed-width little-endian, for the header fields that must live at
    stable byte offsets (format version). *)

val write_uint : encoder -> int -> unit
(** LEB128 varint; the int must be non-negative. *)

val write_int : encoder -> int -> unit
(** Zigzag varint: small magnitudes of either sign stay small.  The
    value must lie in [[-2^61, 2^61 - 1]] — the zigzag of anything
    larger overflows OCaml's 63-bit int. *)

val write_bool : encoder -> bool -> unit
val write_string : encoder -> string -> unit
val write_list : encoder -> ('a -> unit) -> 'a list -> unit
(** Length prefix, then each element with the given writer. *)

val write_uint_array : encoder -> int array -> unit

val write_rows : encoder -> arity:int -> int array list -> unit
(** Column-major delta encoding of equal-arity rows, in the order
    given.  [arity] may be 0 (rows are empty tuples). *)

(** {1 Decoding} *)

type decoder

val decoder : string -> decoder

val decoder_sub : string -> pos:int -> len:int -> decoder
(** Decode the window [[pos, pos+len)] of the string without copying it
    out first — the network layer cuts frames straight out of its
    connection read buffer.  Raises [Invalid_argument] on an
    out-of-bounds window. *)

val remaining : decoder -> int
val read_u8 : decoder -> int
val read_u32 : decoder -> int
val read_uint : decoder -> int
val read_int : decoder -> int
val read_bool : decoder -> bool
val read_string : decoder -> string

val read_bytes : decoder -> int -> string
(** Exactly [n] raw bytes (no length prefix); {!Short} if fewer remain. *)

val read_list : decoder -> (unit -> 'a) -> 'a list
val read_uint_array : decoder -> int array

val read_rows : decoder -> arity:int -> int array list
(** Inverse of {!write_rows}; rows come back in written order. *)

val expect_end : decoder -> string -> unit
(** Raises {!Corrupt} if any byte is left — every section must be
    consumed exactly. *)
