(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Used as the per-section integrity check of the snapshot format: a
    flipped bit anywhere in a section payload changes the stored CRC
    with overwhelming probability, turning silent corruption into a
    typed [Checksum_mismatch] at load time. *)

type t
(** A running checksum. *)

val init : t
val update : t -> string -> pos:int -> len:int -> t
val finish : t -> int
(** Final value in [0, 2^32); independent of update chunking. *)

val string : string -> int
(** One-shot checksum of a whole string. *)
