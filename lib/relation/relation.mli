(** In-memory set-semantics relations with cost-accounted operators.

    A relation stores a deduplicated set of tuples under a {!Schema}.  The
    operators charge the global {!Cost} counters: one [scan] per input
    tuple visited, one [probe] per hash lookup, one [tuple] per output
    tuple materialized.  Preprocessing code should wrap calls in
    [Cost.with_counting false]. *)

type t

val create : Schema.t -> t
val of_list : Schema.t -> Tuple.t list -> t
val schema : t -> Schema.t
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> unit
(** Insert (deduplicating).  Raises [Invalid_argument] on arity mismatch. *)

val remove : t -> Tuple.t -> bool
(** Delete one tuple; [true] iff it was present (one [scan] charged on a
    successful removal).  Raises [Invalid_argument] on arity mismatch. *)

val annotate : t -> Tuple.t -> int -> unit
(** Attach (or overwrite) a semiring annotation on a present tuple.
    Annotations live in a flat slot array plus a tuple → slot index, so
    an annotated relation costs one int cell per annotated tuple.
    Raises [Invalid_argument] if the tuple is not in the relation. *)

val annotation : t -> default:int -> Tuple.t -> int
(** The tuple's annotation, or [default] when the tuple was never
    annotated (or the relation has no annotation column at all). *)

val annotation_opt : t -> Tuple.t -> int option
(** The tuple's annotation, or [None] when it was never annotated —
    used where the absence itself matters (e.g. snapshot writing). *)

val annotated : t -> bool
(** Whether an annotation column exists.  Relational operators ignore
    annotations; only {!copy} carries them over, and {!remove} drops the
    removed tuple's entry. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
val copy : t -> t
val equal : t -> t -> bool

val project : t -> Schema.var list -> t
(** [project t vs] projects onto the variables [vs] (in that order),
    deduplicating.  Raises [Not_found] if some [v] is not in the schema. *)

val select_eq : t -> Schema.var -> int -> t
val natural_join : t -> t -> t
val semijoin : t -> t -> t
(** [semijoin a b] keeps the tuples of [a] that join with [b] on their
    common variables (all of [a] if there are none and [b] is non-empty). *)

val antijoin : t -> t -> t
val union : t -> t -> t
(** Set union.  Schemas must be equal as variable sets; the second
    relation's tuples are reordered to the first schema. *)

val product : t -> t -> t
(** Cartesian product; schemas must be disjoint. *)

val singleton : Schema.t -> Tuple.t -> t

val degrees : t -> Schema.var list -> int Tuple.Tbl.t
(** Number of tuples per distinct value of the given variables.  Keyed
    with {!Tuple.hash} (full-width FNV), not the polymorphic hash that
    samples only a prefix of wide tuples. *)

val max_degree : t -> Schema.var list -> int
(** Maximum of {!degrees} over all keys; 0 when empty. *)

val split_heavy_light : t -> Schema.var list -> threshold:int -> t * t
(** [(heavy, light)]: tuples whose key-group size exceeds [threshold] go
    to [heavy]; the rest to [light]. *)

val pp : Format.formatter -> t -> unit
