(* The optional annotation column mirrors the flat bucket layout of the
   join indexes: semiring values live in one growable int array and a
   tuple -> slot index, so annotated relations pay one array cell per
   tuple instead of a boxed option per entry. *)
type ann = { mutable slots : int array; mutable used : int; idx : int Tuple.Tbl.t }

type t = {
  schema : Schema.t;
  data : unit Tuple.Tbl.t;
  mutable ann : ann option;
}

let create schema = { schema; data = Tuple.Tbl.create 64; ann = None }
let schema t = t.schema
let cardinal t = Tuple.Tbl.length t.data
let is_empty t = cardinal t = 0
let mem t tup = Tuple.Tbl.mem t.data tup

let ann_of t =
  match t.ann with
  | Some a -> a
  | None ->
      let a = { slots = Array.make 16 0; used = 0; idx = Tuple.Tbl.create 16 } in
      t.ann <- Some a;
      a

let annotate t tup v =
  if not (Tuple.Tbl.mem t.data tup) then
    invalid_arg "Relation.annotate: tuple not present";
  let a = ann_of t in
  match Tuple.Tbl.find_opt a.idx tup with
  | Some slot -> a.slots.(slot) <- v
  | None ->
      if a.used = Array.length a.slots then begin
        let bigger = Array.make (2 * a.used) 0 in
        Array.blit a.slots 0 bigger 0 a.used;
        a.slots <- bigger
      end;
      a.slots.(a.used) <- v;
      Tuple.Tbl.add a.idx tup a.used;
      a.used <- a.used + 1

let annotation t ~default tup =
  match t.ann with
  | None -> default
  | Some a -> (
      match Tuple.Tbl.find_opt a.idx tup with
      | Some slot -> a.slots.(slot)
      | None -> default)

let annotation_opt t tup =
  match t.ann with
  | None -> None
  | Some a -> (
      match Tuple.Tbl.find_opt a.idx tup with
      | Some slot -> Some a.slots.(slot)
      | None -> None)

let annotated t = t.ann <> None

let add t tup =
  if Tuple.arity tup <> Schema.arity t.schema then
    invalid_arg "Relation.add: arity mismatch";
  if not (Tuple.Tbl.mem t.data tup) then begin
    Cost.charge_tuple ();
    Tuple.Tbl.add t.data tup ()
  end

let remove t tup =
  if Tuple.arity tup <> Schema.arity t.schema then
    invalid_arg "Relation.remove: arity mismatch";
  if Tuple.Tbl.mem t.data tup then begin
    Cost.charge_scan ();
    Tuple.Tbl.remove t.data tup;
    (* the slot itself stays allocated; only the index entry goes, so a
       re-added tuple starts from the annotation default again *)
    (match t.ann with Some a -> Tuple.Tbl.remove a.idx tup | None -> ());
    true
  end
  else false

let of_list schema tuples =
  let t = create schema in
  List.iter (add t) tuples;
  t

let iter f t = Tuple.Tbl.iter (fun tup () -> f tup) t.data
let fold f t init = Tuple.Tbl.fold (fun tup () acc -> f tup acc) t.data init
let to_list t = fold List.cons t []

let copy t =
  let c = create t.schema in
  iter (add c) t;
  (match t.ann with
  | None -> ()
  | Some a -> Tuple.Tbl.iter (fun tup slot -> annotate c tup a.slots.(slot)) a.idx);
  c

let singleton schema tup =
  let t = create schema in
  add t tup;
  t

let reorder_positions ~from ~into =
  (* positions in [from] of the variables of [into], so that projecting a
     [from]-tuple yields an [into]-tuple *)
  Schema.positions from (Schema.vars into)

let equal a b =
  Schema.equal a.schema b.schema
  && cardinal a = cardinal b
  &&
  let pos = reorder_positions ~from:(schema a) ~into:(schema b) in
  fold (fun tup ok -> ok && mem b (Tuple.project pos tup)) a true

let project t vs =
  let out_schema = Schema.of_list vs in
  let pos = Schema.positions t.schema vs in
  let out = create out_schema in
  iter
    (fun tup ->
      Cost.charge_scan ();
      add out (Tuple.project pos tup))
    t;
  out

let select_eq t v value =
  let i = Schema.position t.schema v in
  let out = create t.schema in
  iter
    (fun tup ->
      Cost.charge_scan ();
      if Tuple.get tup i = value then add out tup)
    t;
  out

(* A one-shot flat hash index: common-variable key -> a contiguous
   (start row, row count) range into a row-major int array.  Build
   allocates one key tuple per distinct key and nothing per row; probe
   loops reuse a scratch key buffer, so the join side allocates only its
   output tuples. *)
let build_flat_index rel key_positions =
  let arity = Schema.arity rel.schema in
  let n = cardinal rel in
  let counts = Tuple.Tbl.create (max 16 n) in
  iter
    (fun tup ->
      Cost.charge_scan ();
      let key = Tuple.project key_positions tup in
      match Tuple.Tbl.find_opt counts key with
      | Some r -> incr r
      | None -> Tuple.Tbl.add counts key (ref 1))
    rel;
  let table = Tuple.Tbl.create (max 16 (Tuple.Tbl.length counts)) in
  let next = ref 0 in
  Tuple.Tbl.iter
    (fun key r ->
      let c = !r in
      Tuple.Tbl.add table key (!next, c);
      r := !next;
      next := !next + c)
    counts;
  let data = Array.make (n * arity) 0 in
  Tuple.Tbl.iter
    (fun tup () ->
      let cursor = Tuple.Tbl.find counts (Tuple.project key_positions tup) in
      Array.blit tup 0 data (!cursor * arity) arity;
      incr cursor)
    rel.data;
  (table, data)

(* key set of [rel] under [key_positions]; probing reuses the caller's
   scratch buffer, building allocates only one tuple per distinct key *)
let build_key_set rel key_positions =
  let keys = Tuple.Tbl.create (max 16 (cardinal rel)) in
  let scratch = Array.make (Array.length key_positions) 0 in
  iter
    (fun tb ->
      Cost.charge_scan ();
      Tuple.project_into key_positions tb scratch;
      if not (Tuple.Tbl.mem keys scratch) then
        Tuple.Tbl.add keys (Array.copy scratch) ())
    rel;
  keys

let natural_join a b =
  let common = Schema.inter a.schema b.schema in
  let out_schema = Schema.union a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let extra_b =
    (* positions in b of the variables that only b contributes *)
    Schema.positions b.schema
      (List.filter (fun v -> not (Schema.mem v a.schema)) (Schema.vars b.schema))
  in
  let table, data = build_flat_index b key_b in
  let arity_b = Schema.arity b.schema in
  let n_extra = Array.length extra_b in
  let ra = Schema.arity a.schema in
  let scratch = Array.make (Array.length key_a) 0 in
  let out = create out_schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_a ta scratch;
      match Tuple.Tbl.find_opt table scratch with
      | None -> ()
      | Some (start, len) ->
          for i = 0 to len - 1 do
            let base = (start + i) * arity_b in
            let out_tup = Array.make (ra + n_extra) 0 in
            Array.blit ta 0 out_tup 0 ra;
            for k = 0 to n_extra - 1 do
              out_tup.(ra + k) <- data.(base + extra_b.(k))
            done;
            add out out_tup
          done)
    a;
  out

let semijoin a b =
  let common = Schema.inter a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let keys = build_key_set b key_b in
  let scratch = Array.make (Array.length key_a) 0 in
  let out = create a.schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_a ta scratch;
      if Tuple.Tbl.mem keys scratch then add out ta)
    a;
  out

let antijoin a b =
  let common = Schema.inter a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let keys = build_key_set b key_b in
  let scratch = Array.make (Array.length key_a) 0 in
  let out = create a.schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_a ta scratch;
      if not (Tuple.Tbl.mem keys scratch) then add out ta)
    a;
  out

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.union: schemas differ";
  let out = copy a in
  let pos = reorder_positions ~from:b.schema ~into:a.schema in
  iter
    (fun tb ->
      Cost.charge_scan ();
      add out (Tuple.project pos tb))
    b;
  out

let product a b =
  if Schema.inter a.schema b.schema <> [] then
    invalid_arg "Relation.product: schemas overlap";
  let out = create (Schema.union a.schema b.schema) in
  iter
    (fun ta ->
      iter
        (fun tb ->
          Cost.charge_scan ();
          add out (Tuple.concat ta tb))
        b)
    a;
  out

(* Tuple.Tbl, not the polymorphic Hashtbl: the polymorphic hash samples
   only a prefix of wide tuples (see Tuple.hash), which degenerates the
   degree table to a few buckets on high-arity keys.  The scratch buffer
   keeps the counting pass allocation-free except one tuple per distinct
   key. *)
let degree_refs t pos =
  let counts = Tuple.Tbl.create (max 16 (cardinal t)) in
  let scratch = Array.make (Array.length pos) 0 in
  iter
    (fun tup ->
      Tuple.project_into pos tup scratch;
      match Tuple.Tbl.find_opt counts scratch with
      | Some r -> incr r
      | None -> Tuple.Tbl.add counts (Array.copy scratch) (ref 1))
    t;
  counts

let degrees t vs =
  let refs = degree_refs t (Schema.positions t.schema vs) in
  let out = Tuple.Tbl.create (max 16 (Tuple.Tbl.length refs)) in
  Tuple.Tbl.iter (fun key r -> Tuple.Tbl.add out key !r) refs;
  out

let max_degree t vs =
  Tuple.Tbl.fold
    (fun _ r acc -> max !r acc)
    (degree_refs t (Schema.positions t.schema vs))
    0

let split_heavy_light t vs ~threshold =
  let pos = Schema.positions t.schema vs in
  let counts = degree_refs t pos in
  let scratch = Array.make (Array.length pos) 0 in
  let heavy = create t.schema and light = create t.schema in
  iter
    (fun tup ->
      Tuple.project_into pos tup scratch;
      let c = !(Tuple.Tbl.find counts scratch) in
      if c > threshold then add heavy tup else add light tup)
    t;
  (heavy, light)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a |%d|" Schema.pp t.schema (cardinal t);
  iter (fun tup -> Format.fprintf ppf "@ %a" Tuple.pp tup) t;
  Format.fprintf ppf "@]"
