(* Flat-bucket layout: tuples are stored row-major in one contiguous int
   array, grouped by key; the hash table maps a key to its (start row,
   row count) range.  Building allocates one key tuple per distinct key
   and nothing per row; probing a bucket walks the flat array with zero
   allocation, and [count] is O(1) instead of a list walk. *)
type t = {
  key_vars : Schema.var list;
  source_schema : Schema.t;
  arity : int;
  table : (int * int) Tuple.Tbl.t; (* key -> (first row, row count) *)
  data : int array;                (* row-major tuple values, key-grouped *)
  space : int;
}

let build rel key_vars =
  let source_schema = Relation.schema rel in
  let pos = Schema.positions source_schema key_vars in
  let arity = Schema.arity source_schema in
  let n = Relation.cardinal rel in
  Cost.with_counting false (fun () ->
      (* pass 1: rows per key *)
      let counts = Tuple.Tbl.create (max 16 n) in
      Relation.iter
        (fun tup ->
          let key = Tuple.project pos tup in
          match Tuple.Tbl.find_opt counts key with
          | Some r -> incr r
          | None -> Tuple.Tbl.add counts key (ref 1))
        rel;
      (* prefix sums: freeze each bucket's range, then reuse the count
         refs as per-key write cursors *)
      let table = Tuple.Tbl.create (max 16 (Tuple.Tbl.length counts)) in
      let next = ref 0 in
      Tuple.Tbl.iter
        (fun key r ->
          let c = !r in
          Tuple.Tbl.add table key (!next, c);
          r := !next;
          next := !next + c)
        counts;
      (* pass 2: scatter rows into their buckets *)
      let data = Array.make (n * arity) 0 in
      Relation.iter
        (fun tup ->
          let cursor = Tuple.Tbl.find counts (Tuple.project pos tup) in
          Array.blit tup 0 data (!cursor * arity) arity;
          incr cursor)
        rel;
      { key_vars; source_schema; arity; table; data; space = n })

let key_vars t = t.key_vars
let source_schema t = t.source_schema

let row t i = Array.sub t.data (i * t.arity) t.arity

let probe t key =
  Cost.charge_probe ();
  match Tuple.Tbl.find_opt t.table key with
  | None -> []
  | Some (start, len) -> List.init len (fun i -> row t (start + i))

let probe_mem t key =
  Cost.charge_probe ();
  Tuple.Tbl.mem t.table key

let count t key =
  Cost.charge_probe ();
  match Tuple.Tbl.find_opt t.table key with
  | None -> 0
  | Some (_, len) -> len

let space t = t.space

let raw_data t = t.data
let buckets t = Tuple.Tbl.fold (fun k (s, l) acc -> (k, s, l) :: acc) t.table []

let of_buckets ~key_vars ~source_schema ~data ~buckets =
  let arity = Schema.arity source_schema in
  (* key_vars must resolve against the schema (raises Not_found on skew) *)
  (match Schema.positions source_schema key_vars with
  | _ -> ()
  | exception Not_found ->
      invalid_arg "Index.of_buckets: key variable not in schema");
  if arity > 0 && Array.length data mod arity <> 0 then
    invalid_arg "Index.of_buckets: data length not a multiple of arity";
  let n_rows =
    if arity > 0 then Array.length data / arity
    else List.fold_left (fun acc (_, _, len) -> acc + len) 0 buckets
  in
  let kn = List.length key_vars in
  let table = Tuple.Tbl.create (max 16 (List.length buckets)) in
  let space = ref 0 in
  List.iter
    (fun (key, start, len) ->
      if Array.length key <> kn then
        invalid_arg "Index.of_buckets: key arity mismatch";
      if start < 0 || len < 0 || start + len > n_rows then
        invalid_arg "Index.of_buckets: bucket range out of bounds";
      if Tuple.Tbl.mem table key then
        invalid_arg "Index.of_buckets: duplicate bucket key";
      space := !space + len;
      Tuple.Tbl.add table key (start, len))
    buckets;
  { key_vars; source_schema; arity; table; data; space = !space }

let semijoin rel t =
  let key_pos = Schema.positions (Relation.schema rel) t.key_vars in
  let scratch = Array.make (Array.length key_pos) 0 in
  let out = Relation.create (Relation.schema rel) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup scratch;
      if Tuple.Tbl.mem t.table scratch then Relation.add out tup)
    rel;
  out

let join rel t =
  let rel_schema = Relation.schema rel in
  let key_pos = Schema.positions rel_schema t.key_vars in
  let extra_vars =
    List.filter
      (fun v -> not (Schema.mem v rel_schema))
      (Schema.vars t.source_schema)
  in
  let extra_pos = Schema.positions t.source_schema extra_vars in
  let n_extra = Array.length extra_pos in
  let out_schema = Schema.union rel_schema (Schema.of_list extra_vars) in
  let out = Relation.create out_schema in
  let ra = Schema.arity rel_schema in
  let scratch = Array.make (Array.length key_pos) 0 in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup scratch;
      match Tuple.Tbl.find_opt t.table scratch with
      | None -> ()
      | Some (start, len) ->
          (* emit output rows straight from the flat array: the only
             allocation per match is the output tuple itself *)
          for i = 0 to len - 1 do
            let base = (start + i) * t.arity in
            let out_tup = Array.make (ra + n_extra) 0 in
            Array.blit tup 0 out_tup 0 ra;
            for k = 0 to n_extra - 1 do
              out_tup.(ra + k) <- t.data.(base + extra_pos.(k))
            done;
            Relation.add out out_tup
          done)
    rel;
  out
