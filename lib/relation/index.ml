(* Flat-bucket layout: tuples are stored row-major in one contiguous int
   array, grouped by key; the hash table maps a key to its (start row,
   row count) range.  Building allocates one key tuple per distinct key
   and nothing per row; probing a bucket walks the flat array with zero
   allocation, and [count] is O(1) instead of a list walk.

   Incremental maintenance works through a small mutable overlay on top
   of the frozen flat arrays: [extra] holds rows added since the last
   compaction (grouped by key), [dead] marks flat rows deleted since.
   Every read path keeps its zero-allocation fast path when the overlay
   is empty; once the overlay outgrows a fraction of the flat storage it
   is folded back into fresh flat arrays. *)
type t = {
  key_vars : Schema.var list;
  source_schema : Schema.t;
  arity : int;
  key_pos : int array;
  mutable table : (int * int) Tuple.Tbl.t; (* key -> (first row, row count) *)
  mutable data : int array;                (* row-major tuple values, key-grouped *)
  mutable flat_rows : int;
  mutable space : int;
  (* ---- overlay (empty in the common, static case) ---- *)
  mutable extra : Tuple.t list Tuple.Tbl.t; (* key -> rows added since build *)
  mutable dead : unit Tuple.Tbl.t;          (* flat rows deleted since build *)
  mutable dead_per_key : int Tuple.Tbl.t;   (* key -> deleted flat rows under it *)
  mutable overlay_rows : int;               (* |extra rows| + |dead rows| *)
}

let build rel key_vars =
  let source_schema = Relation.schema rel in
  let pos = Schema.positions source_schema key_vars in
  let arity = Schema.arity source_schema in
  let n = Relation.cardinal rel in
  Cost.with_counting false (fun () ->
      (* pass 1: rows per key *)
      let counts = Tuple.Tbl.create (max 16 n) in
      Relation.iter
        (fun tup ->
          let key = Tuple.project pos tup in
          match Tuple.Tbl.find_opt counts key with
          | Some r -> incr r
          | None -> Tuple.Tbl.add counts key (ref 1))
        rel;
      (* prefix sums: freeze each bucket's range, then reuse the count
         refs as per-key write cursors *)
      let table = Tuple.Tbl.create (max 16 (Tuple.Tbl.length counts)) in
      let next = ref 0 in
      Tuple.Tbl.iter
        (fun key r ->
          let c = !r in
          Tuple.Tbl.add table key (!next, c);
          r := !next;
          next := !next + c)
        counts;
      (* pass 2: scatter rows into their buckets *)
      let data = Array.make (n * arity) 0 in
      Relation.iter
        (fun tup ->
          let cursor = Tuple.Tbl.find counts (Tuple.project pos tup) in
          Array.blit tup 0 data (!cursor * arity) arity;
          incr cursor)
        rel;
      {
        key_vars; source_schema; arity; key_pos = pos; table; data;
        flat_rows = n; space = n;
        extra = Tuple.Tbl.create 8; dead = Tuple.Tbl.create 8;
        dead_per_key = Tuple.Tbl.create 8; overlay_rows = 0;
      })

let key_vars t = t.key_vars
let source_schema t = t.source_schema

let row t i = Array.sub t.data (i * t.arity) t.arity

(* fold the overlay back into fresh flat arrays; logical contents (and
   [space]) are unchanged, so snapshots and probes see the same rows *)
let compact t =
  if t.overlay_rows > 0 then
    Cost.with_counting false (fun () ->
        let rows_by_key =
          Tuple.Tbl.create (max 16 (Tuple.Tbl.length t.table))
        in
        let add_row key r =
          match Tuple.Tbl.find_opt rows_by_key key with
          | Some l -> l := r :: !l
          | None -> Tuple.Tbl.add rows_by_key (Array.copy key) (ref [ r ])
        in
        Tuple.Tbl.iter
          (fun key (start, len) ->
            for i = 0 to len - 1 do
              let r = row t (start + i) in
              if not (Tuple.Tbl.mem t.dead r) then add_row key r
            done)
          t.table;
        Tuple.Tbl.iter
          (fun key rows -> List.iter (add_row key) rows)
          t.extra;
        let n =
          Tuple.Tbl.fold (fun _ l acc -> acc + List.length !l) rows_by_key 0
        in
        let table = Tuple.Tbl.create (max 16 (Tuple.Tbl.length rows_by_key)) in
        let data = Array.make (n * t.arity) 0 in
        let next = ref 0 in
        Tuple.Tbl.iter
          (fun key l ->
            let rows = !l in
            let len = List.length rows in
            Tuple.Tbl.add table key (!next, len);
            List.iter
              (fun r ->
                Array.blit r 0 data (!next * t.arity) t.arity;
                incr next)
              rows)
          rows_by_key;
        t.table <- table;
        t.data <- data;
        t.flat_rows <- n;
        t.extra <- Tuple.Tbl.create 8;
        t.dead <- Tuple.Tbl.create 8;
        t.dead_per_key <- Tuple.Tbl.create 8;
        t.overlay_rows <- 0)

let maybe_compact t =
  if t.overlay_rows > max 64 (t.flat_rows / 4) then compact t

let dead_under t key =
  if Tuple.Tbl.length t.dead = 0 then 0
  else Option.value ~default:0 (Tuple.Tbl.find_opt t.dead_per_key key)

let extra_under t key =
  match Tuple.Tbl.find_opt t.extra key with Some rows -> rows | None -> []

(* does the frozen flat bucket contain a row equal to [tup] (dead or
   alive)?  Buckets hold distinct rows, so at most one matches. *)
let flat_mem t key tup =
  match Tuple.Tbl.find_opt t.table key with
  | None -> false
  | Some (start, len) ->
      let rec go i =
        if i >= len then false
        else
          let base = (start + i) * t.arity in
          let rec eq k =
            k >= t.arity || (t.data.(base + k) = tup.(k) && eq (k + 1))
          in
          if eq 0 then true else go (i + 1)
      in
      go 0

let extra_mem t key tup = List.exists (Tuple.equal tup) (extra_under t key)

let bump_dead t key by =
  match Tuple.Tbl.find_opt t.dead_per_key key with
  | Some v ->
      let v' = v + by in
      if v' = 0 then Tuple.Tbl.remove t.dead_per_key key
      else Tuple.Tbl.replace t.dead_per_key key v'
  | None -> if by <> 0 then Tuple.Tbl.add t.dead_per_key (Array.copy key) by

let insert t tup =
  if Tuple.arity tup <> t.arity then invalid_arg "Index.insert: arity mismatch";
  Cost.charge_probe ();
  let key = Tuple.project t.key_pos tup in
  if flat_mem t key tup then
    if Tuple.Tbl.mem t.dead tup then begin
      (* resurrect a previously deleted flat row in place *)
      Tuple.Tbl.remove t.dead tup;
      bump_dead t key (-1);
      t.overlay_rows <- t.overlay_rows - 1;
      t.space <- t.space + 1;
      true
    end
    else false
  else if extra_mem t key tup then false
  else begin
    (match Tuple.Tbl.find_opt t.extra key with
    | Some rows -> Tuple.Tbl.replace t.extra key (Array.copy tup :: rows)
    | None -> Tuple.Tbl.add t.extra key [ Array.copy tup ]);
    t.overlay_rows <- t.overlay_rows + 1;
    t.space <- t.space + 1;
    maybe_compact t;
    true
  end

let remove t tup =
  if Tuple.arity tup <> t.arity then invalid_arg "Index.remove: arity mismatch";
  Cost.charge_probe ();
  let key = Tuple.project t.key_pos tup in
  if extra_mem t key tup then begin
    (match
       List.filter (fun r -> not (Tuple.equal r tup)) (extra_under t key)
     with
    | [] -> Tuple.Tbl.remove t.extra key
    | rows -> Tuple.Tbl.replace t.extra key rows);
    t.overlay_rows <- t.overlay_rows - 1;
    t.space <- t.space - 1;
    true
  end
  else if flat_mem t key tup && not (Tuple.Tbl.mem t.dead tup) then begin
    Tuple.Tbl.add t.dead (Array.copy tup) ();
    bump_dead t key 1;
    t.overlay_rows <- t.overlay_rows + 1;
    t.space <- t.space - 1;
    maybe_compact t;
    true
  end
  else false

let probe t key =
  Cost.charge_probe ();
  if t.overlay_rows = 0 then
    match Tuple.Tbl.find_opt t.table key with
    | None -> []
    | Some (start, len) -> List.init len (fun i -> row t (start + i))
  else
    let flat =
      match Tuple.Tbl.find_opt t.table key with
      | None -> []
      | Some (start, len) ->
          List.filter
            (fun r -> not (Tuple.Tbl.mem t.dead r))
            (List.init len (fun i -> row t (start + i)))
    in
    flat @ extra_under t key

let probe_iter t key f =
  Cost.charge_probe ();
  let no_dead = Tuple.Tbl.length t.dead = 0 in
  (match Tuple.Tbl.find_opt t.table key with
  | None -> ()
  | Some (start, len) ->
      for i = 0 to len - 1 do
        if no_dead || not (Tuple.Tbl.mem t.dead (row t (start + i))) then
          f t.data ((start + i) * t.arity)
      done);
  if t.overlay_rows > 0 then List.iter (fun r -> f r 0) (extra_under t key)

let probe_mem t key =
  Cost.charge_probe ();
  if t.overlay_rows = 0 then Tuple.Tbl.mem t.table key
  else
    (match Tuple.Tbl.find_opt t.table key with
    | None -> false
    | Some (_, len) -> len - dead_under t key > 0)
    || extra_under t key <> []

let count t key =
  Cost.charge_probe ();
  if t.overlay_rows = 0 then
    match Tuple.Tbl.find_opt t.table key with
    | None -> 0
    | Some (_, len) -> len
  else
    (match Tuple.Tbl.find_opt t.table key with
    | None -> 0
    | Some (_, len) -> len - dead_under t key)
    + List.length (extra_under t key)

let space t = t.space

let raw_data t =
  compact t;
  t.data

let buckets t =
  compact t;
  Tuple.Tbl.fold (fun k (s, l) acc -> (k, s, l) :: acc) t.table []

let of_buckets ~key_vars ~source_schema ~data ~buckets =
  let arity = Schema.arity source_schema in
  (* key_vars must resolve against the schema (raises Not_found on skew) *)
  let key_pos =
    match Schema.positions source_schema key_vars with
    | pos -> pos
    | exception Not_found ->
        invalid_arg "Index.of_buckets: key variable not in schema"
  in
  if arity > 0 && Array.length data mod arity <> 0 then
    invalid_arg "Index.of_buckets: data length not a multiple of arity";
  let n_rows =
    if arity > 0 then Array.length data / arity
    else List.fold_left (fun acc (_, _, len) -> acc + len) 0 buckets
  in
  let kn = List.length key_vars in
  let table = Tuple.Tbl.create (max 16 (List.length buckets)) in
  let space = ref 0 in
  List.iter
    (fun (key, start, len) ->
      if Array.length key <> kn then
        invalid_arg "Index.of_buckets: key arity mismatch";
      if start < 0 || len < 0 || start + len > n_rows then
        invalid_arg "Index.of_buckets: bucket range out of bounds";
      if Tuple.Tbl.mem table key then
        invalid_arg "Index.of_buckets: duplicate bucket key";
      space := !space + len;
      Tuple.Tbl.add table key (start, len))
    buckets;
  {
    key_vars; source_schema; arity; key_pos; table; data;
    flat_rows = !space; space = !space;
    extra = Tuple.Tbl.create 8; dead = Tuple.Tbl.create 8;
    dead_per_key = Tuple.Tbl.create 8; overlay_rows = 0;
  }

let semijoin rel t =
  let key_pos = Schema.positions (Relation.schema rel) t.key_vars in
  let scratch = Array.make (Array.length key_pos) 0 in
  let out = Relation.create (Relation.schema rel) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup scratch;
      let alive =
        if t.overlay_rows = 0 then Tuple.Tbl.mem t.table scratch
        else
          (match Tuple.Tbl.find_opt t.table scratch with
          | None -> false
          | Some (_, len) -> len - dead_under t scratch > 0)
          || extra_under t scratch <> []
      in
      if alive then Relation.add out tup)
    rel;
  out

let join rel t =
  let rel_schema = Relation.schema rel in
  let key_pos = Schema.positions rel_schema t.key_vars in
  let extra_vars =
    List.filter
      (fun v -> not (Schema.mem v rel_schema))
      (Schema.vars t.source_schema)
  in
  let extra_pos = Schema.positions t.source_schema extra_vars in
  let n_extra = Array.length extra_pos in
  let out_schema = Schema.union rel_schema (Schema.of_list extra_vars) in
  let out = Relation.create out_schema in
  let ra = Schema.arity rel_schema in
  let scratch = Array.make (Array.length key_pos) 0 in
  let no_dead = Tuple.Tbl.length t.dead = 0 in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      Tuple.project_into key_pos tup scratch;
      let emit src base =
        (* emit output rows straight from the backing array: the only
           allocation per match is the output tuple itself *)
        let out_tup = Array.make (ra + n_extra) 0 in
        Array.blit tup 0 out_tup 0 ra;
        for k = 0 to n_extra - 1 do
          out_tup.(ra + k) <- src.(base + extra_pos.(k))
        done;
        Relation.add out out_tup
      in
      (match Tuple.Tbl.find_opt t.table scratch with
      | None -> ()
      | Some (start, len) ->
          for i = 0 to len - 1 do
            if no_dead || not (Tuple.Tbl.mem t.dead (row t (start + i))) then
              emit t.data ((start + i) * t.arity)
          done);
      if t.overlay_rows > 0 then
        List.iter (fun r -> emit r 0) (extra_under t scratch))
    rel;
  out
