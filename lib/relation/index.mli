(** Persistent hash indexes over relations.

    An index maps a key — the values of a chosen subset of the schema's
    variables — to the matching tuples.  Tuples are stored row-major in
    one contiguous int array, grouped by key; the hash table maps each
    key to a contiguous (offset, length) range, so bucket iteration is a
    flat-array walk with zero allocation and {!count} is O(1).  Building
    is free of online cost (it happens during preprocessing); probing
    charges one {!Cost} probe per lookup. *)

type t

val build : Relation.t -> Schema.var list -> t
(** [build rel key_vars] indexes [rel] on [key_vars]. *)

val key_vars : t -> Schema.var list
val source_schema : t -> Schema.t

val probe : t -> Tuple.t -> Tuple.t list
(** Matching tuples for a key tuple (values in [key_vars] order). *)

val probe_iter : t -> Tuple.t -> (int array -> int -> unit) -> unit
(** [probe_iter t key f] calls [f src base] once per matching tuple,
    whose values live at [src.(base + k)] for [k < arity].  On the
    (common) overlay-free index this walks the flat backing array and
    allocates nothing — the hot-path alternative to {!probe}, which
    copies every matching row into a fresh list.  [src] aliases index
    internals: read the row inside [f], do not stash [src]. *)

val probe_mem : t -> Tuple.t -> bool
(** Does any tuple match the key? *)

val count : t -> Tuple.t -> int
(** Number of matching tuples (degree of the key value).  O(1): the
    bucket length is stored, not recomputed. *)

val space : t -> int
(** Number of indexed tuples — the intrinsic space charged to this index. *)

(** {1 Incremental maintenance}

    Mutations land in a small overlay (rows added since the last
    compaction, flat rows marked deleted); every read path merges the
    overlay transparently and keeps its zero-allocation fast path while
    the overlay is empty.  Once the overlay outgrows a fraction of the
    flat storage it is folded back into fresh flat arrays (an uncounted
    preprocessing-style pass, amortized O(1) per mutation). *)

val insert : t -> Tuple.t -> bool
(** Add one tuple; [false] if it was already present (idempotent).  One
    {!Cost} probe charged.  Raises [Invalid_argument] on arity
    mismatch. *)

val remove : t -> Tuple.t -> bool
(** Delete one tuple; [false] if it was absent.  One {!Cost} probe
    charged.  Raises [Invalid_argument] on arity mismatch. *)

val semijoin : Relation.t -> t -> Relation.t
(** [semijoin rel idx] keeps the tuples of [rel] whose key matches the
    index — cost [O(|rel|)], independent of the indexed relation's size.
    The index key variables must all appear in [rel]'s schema. *)

val join : Relation.t -> t -> Relation.t
(** [join rel idx] probes the index once per tuple of [rel] and extends
    with the matching tuples — cost [O(|rel| + output)]. *)

(** {1 Snapshot access}

    The flat layout serializes naturally: the row-major data array plus
    one [(key, offset, length)] triple per bucket describe the index
    completely.  {!of_buckets} rebuilds the probe structure from those
    parts — one hash insertion per {e bucket}, no per-row projection or
    re-counting — so loading a snapshot skips the two build passes. *)

val raw_data : t -> int array
(** The row-major, key-grouped backing array.  Do not mutate. *)

val buckets : t -> (Tuple.t * int * int) list
(** [(key, first_row, row_count)] per distinct key, in unspecified
    order.  Row offsets index {!raw_data} in units of rows. *)

val of_buckets :
  key_vars:Schema.var list ->
  source_schema:Schema.t ->
  data:int array ->
  buckets:(Tuple.t * int * int) list ->
  t
(** Reconstruct an index from its serialized parts.  Raises
    [Invalid_argument] if the parts are inconsistent: key arity
    mismatch, data length not a multiple of the schema arity, or a
    bucket range outside the data array. *)
