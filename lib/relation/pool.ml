(* Fixed-size domain pool for offline preprocessing.

   [map] fans a list of independent tasks out over at most [jobs ()]
   domains and returns the results in input order.  Determinism contract:
   the output list, the Cost counters observed by the caller and any
   state merged through worker hooks are bit-identical whatever the job
   count — each task runs the same sequential code against its own
   domain-local counters, and the per-task Cost snapshots are merged back
   in input order (integer sums, so any schedule yields the same
   totals). *)

let env_jobs () =
  match Sys.getenv_opt "STT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)
  | None -> None

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* 0 = not yet initialized; first read resolves STT_JOBS / the hardware
   default, so [set_jobs] (tests, --jobs) always wins over the env. *)
let jobs_ref = ref 0

let jobs () =
  if !jobs_ref = 0 then jobs_ref := default_jobs ();
  !jobs_ref

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  jobs_ref := n

(* Worker hooks let other libraries with domain-local accumulators (e.g.
   the simplex pivot counter in Stt_lp, registered by Stt_core) ride the
   pool's merge protocol: [capture] runs in the worker domain once its
   tasks are done and returns a thunk the parent runs after joining. *)
type worker_hook = unit -> unit -> unit

let hooks : worker_hook list ref = ref []
let register_worker_hook h = hooks := h :: !hooks

let map ?jobs:requested f xs =
  let k = match requested with Some n -> max 1 n | None -> jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when k = 1 -> List.map f xs
  | xs ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let k = min k n in
      let counting = Cost.counting () in
      let out = Array.make n None in
      let costs = Array.make n Cost.zero in
      let errs = Array.make n None in
      let merges = Array.make k [] in
      let next = Atomic.make 0 in
      let worker w () =
        (* workers inherit the spawner's counting mode so a build wrapped
           in [with_counting false] charges nothing in parallel either *)
        Cost.set_counting counting;
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let before = Cost.snapshot () in
            (match f arr.(i) with
            | r -> out.(i) <- Some r
            | exception e -> errs.(i) <- Some e);
            costs.(i) <- Cost.diff (Cost.snapshot ()) before;
            loop ()
          end
        in
        loop ();
        merges.(w) <- List.rev_map (fun h -> h ()) !hooks
      in
      let domains = Array.init k (fun w -> Domain.spawn (worker w)) in
      Array.iter Domain.join domains;
      Array.iter Cost.merge costs;
      Array.iter (fun thunks -> List.iter (fun t -> t ()) thunks) merges;
      (* deterministic failure: re-raise the exception of the earliest
         failing task, after the merges so counters stay consistent *)
      Array.iter (function Some e -> raise e | None -> ()) errs;
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false (* no err, no gap *))
           out)
