type t = int array

let make values = Array.of_list values
let arity = Array.length
let get t i = t.(i)

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

(* Monomorphic lexicographic compare: [Stdlib.compare] on int arrays
   goes through the polymorphic runtime comparator, which dominates
   every sorted-merge path; a direct int loop is branch-predictable and
   allocation-free.  Shorter arrays sort first, like the polymorphic
   order on arrays. *)
let compare (a : t) (b : t) =
  if a == b then 0
  else
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else
      let rec go i =
        if i >= la then 0
        else
          let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
          if x < y then -1 else if x > y then 1 else go (i + 1)
      in
      go 0

(* FNV-style hash: the polymorphic hash only samples a prefix of long
   arrays, which degrades hash tables keyed by wide tuples. *)
let hash (t : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length t - 1 do
    h := (!h lxor t.(i)) * 0x01000193 land max_int
  done;
  !h

let project positions t = Array.map (fun i -> t.(i)) positions

(* Fill [dst] with the projection instead of allocating: probe loops use
   one scratch buffer as a transient hash key for the whole scan. *)
let project_into positions t dst =
  for i = 0 to Array.length positions - 1 do
    Array.unsafe_set dst i (Array.unsafe_get t (Array.unsafe_get positions i))
  done

let concat = Array.append

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_seq t)

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
