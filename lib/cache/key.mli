(** Canonical keys for access requests.

    An access request is a relation [q_A] over (a permutation of) the
    access variables; two requests with the same {e tuple set} must be
    treated as the same request no matter the variable order of their
    schema or the insertion order of their tuples.  This module is the
    single definition of that equivalence: {!Engine.answer_batch} uses
    {!canon} to deduplicate a batch, and {!Stt_cache.Cache} uses
    {!encode} to key cached answers — so the dedup relation and the
    cache keying can never drift apart. *)

open Stt_relation

val canon : access:Schema.t -> Relation.t -> Tuple.t list
(** [canon ~access q_a] reorders every tuple of [q_a] into the column
    order of [access] and sorts the rows with {!Tuple.compare} — the
    canonical representative of [q_a]'s equivalence class.  Raises
    [Not_found] if [q_a]'s schema is missing an access variable.  Does
    not charge {!Cost} counters (canonicalization is bookkeeping, not
    query work). *)

val encode : ?kind:int -> arity:int -> Tuple.t list -> string
(** Serialize canonical rows (as returned by {!canon}) into a compact
    byte string via {!Stt_store.Codec.write_rows}, prefixed by the
    answer [kind] (default [0] = tuple answer; semiring aggregates pass
    their [Stt_semiring.Semiring.to_tag]).  Equal tuple sets of equal
    kind yield equal strings; different kinds can never collide. *)

val decode : string -> int * int * Tuple.t list
(** Inverse of {!encode}: [(kind, arity, rows)] with rows in canonical
    order.  Raises {!Stt_store.Codec.Corrupt} or {!Stt_store.Codec.Short}
    on malformed input — used to validate keys read back from a
    snapshot's cache section. *)

val of_request : access:Schema.t -> Relation.t -> string
(** [encode ~arity:(Schema.arity access) (canon ~access q_a)]. *)

val of_tuple : arity:int -> Tuple.t -> string
(** The canonical key of a single access tuple as it appears on the wire
    (already in access column order).  [Stt_shard.Ring] hashes this to
    place the tuple on a shard, so routing, caching, and batch dedup all
    share one equivalence: permuted-but-equal requests land on the same
    shard {e and} the same cache entry.  Byte-identical to
    [of_request] on the one-row relation. *)
