open Stt_relation
module C = Stt_store.Codec

(* Extracted from Engine.answer_batch so batch dedup and cache keying
   share one definition of request equivalence. *)
let canon ~access q_a =
  Cost.with_counting false (fun () ->
      let pos = Schema.positions (Relation.schema q_a) (Schema.vars access) in
      List.sort Tuple.compare
        (Relation.fold (fun tup acc -> Tuple.project pos tup :: acc) q_a []))

let encode ~arity rows =
  let e = C.encoder () in
  C.write_uint e arity;
  C.write_rows e ~arity rows;
  C.contents e

let decode s =
  let d = C.decoder s in
  let arity = C.read_uint d in
  let rows = C.read_rows d ~arity in
  C.expect_end d "key";
  (arity, rows)

let of_request ~access q_a =
  encode ~arity:(Schema.arity access) (canon ~access q_a)

(* A single wire tuple is already in access column order (ascending var
   ids) and a one-row set is trivially sorted, so its canonical key is
   just the encoding — this is what the shard router hashes, and it is
   byte-identical to the key a one-tuple request would be cached under. *)
let of_tuple ~arity tup = encode ~arity [ tup ]
