open Stt_relation
module C = Stt_store.Codec

(* Extracted from Engine.answer_batch so batch dedup and cache keying
   share one definition of request equivalence. *)
let canon ~access q_a =
  Cost.with_counting false (fun () ->
      let pos = Schema.positions (Relation.schema q_a) (Schema.vars access) in
      List.sort Tuple.compare
        (Relation.fold (fun tup acc -> Tuple.project pos tup :: acc) q_a []))

(* The leading byte is the answer kind: 0 for tuple answers, the
   Stt_semiring tag (1..4) for aggregates.  Folding the kind into the
   canonical bytes means a COUNT answer and a tuple answer for the same
   request can never collide in the cache; ring placement hashes the
   kind-0 key (see of_tuple), so an aggregate and the tuple request it
   refines still land on the same shard. *)
let encode ?(kind = 0) ~arity rows =
  let e = C.encoder () in
  C.write_u8 e kind;
  C.write_uint e arity;
  C.write_rows e ~arity rows;
  C.contents e

let decode s =
  let d = C.decoder s in
  let kind = C.read_u8 d in
  let arity = C.read_uint d in
  let rows = C.read_rows d ~arity in
  C.expect_end d "key";
  (kind, arity, rows)

let of_request ~access q_a =
  encode ~arity:(Schema.arity access) (canon ~access q_a)

(* A single wire tuple is already in access column order (ascending var
   ids) and a one-row set is trivially sorted, so its canonical key is
   just the encoding — this is what the shard router hashes, and it is
   byte-identical to the key a one-tuple request would be cached under. *)
let of_tuple ~arity tup = encode ~arity [ tup ]
