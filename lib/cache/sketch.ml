type t = {
  mask : int;
  counters : Bytes.t; (* rows * width saturating 4-bit counts, one per byte *)
  mutable touches : int;
  sample : int; (* halve all counters after this many touches *)
}

let rows = 4
let max_count = 15

let create ~width =
  let w = ref 16 in
  while !w < width do
    w := !w * 2
  done;
  {
    mask = !w - 1;
    counters = Bytes.make (rows * !w) '\000';
    touches = 0;
    sample = 8 * !w;
  }

(* Row-seeded hashing: the seeds are arbitrary distinct odd constants,
   so the four rows give (near-)independent collision patterns. *)
let slot t row key =
  (row * (t.mask + 1))
  + (Hashtbl.seeded_hash ((row * 0x9e3779b1) lor 1) key land t.mask)

let age t =
  for i = 0 to Bytes.length t.counters - 1 do
    Bytes.unsafe_set t.counters i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.counters i) lsr 1))
  done

let touch t key =
  t.touches <- t.touches + 1;
  if t.touches >= t.sample then begin
    t.touches <- 0;
    age t
  end;
  for r = 0 to rows - 1 do
    let i = slot t r key in
    let c = Char.code (Bytes.get t.counters i) in
    if c < max_count then Bytes.set t.counters i (Char.chr (c + 1))
  done

let estimate t key =
  let m = ref max_int in
  for r = 0 to rows - 1 do
    m := min !m (Char.code (Bytes.get t.counters (slot t r key)))
  done;
  !m
