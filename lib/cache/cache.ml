open Stt_relation
open Stt_obs
module C = Stt_store.Codec
module Fconfig = Stt_factorized.Config
module Frep = Stt_factorized.Frep

type entry = {
  key : string;
  vars : Schema.var list;
  arity : int;
  rows : int; (* logical answer rows, whatever the value layout *)
  blob : string; (* delta-encoded sorted rows, or an encoded d-rep *)
  fact : bool; (* [blob] is a {!Stt_factorized.Frep} encoding *)
  key_tuples : int;
  charge : int;
      (* stored-tuple charge: max 1 (key_tuples + rows), with the
         d-representation size standing in for [rows] when [fact] *)
  mutable prev : entry option; (* toward older *)
  mutable next : entry option; (* toward newer *)
}

type stripe = {
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  sketch : Sketch.t;
  s_budget : int;
  mutable oldest : entry option;
  mutable newest : entry option;
  mutable s_used : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_insertions : int;
  mutable s_evictions : int;
  mutable s_rejected : int;
  mutable s_invalidated : int;
}

type t = { stripe_arr : stripe array; t_budget : int }

type stats = {
  entries : int;
  used : int;
  budget : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  rejected : int;
  invalidated : int;
  factorized : int;
}

let create ?(stripes = 8) ~budget () =
  if budget <= 0 then invalid_arg "Cache.create: budget must be positive";
  if stripes <= 0 then invalid_arg "Cache.create: stripes must be positive";
  let n = ref 1 in
  while !n < stripes do
    n := !n * 2
  done;
  let n = !n in
  let mk i =
    (* spread the budget evenly, remainder to the first stripes *)
    let s_budget = (budget / n) + (if i < budget mod n then 1 else 0) in
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      sketch = Sketch.create ~width:(min 65536 (max 1024 s_budget));
      s_budget;
      oldest = None;
      newest = None;
      s_used = 0;
      s_hits = 0;
      s_misses = 0;
      s_insertions = 0;
      s_evictions = 0;
      s_rejected = 0;
      s_invalidated = 0;
    }
  in
  { stripe_arr = Array.init n mk; t_budget = budget }

let budget t = t.t_budget
let stripes t = Array.length t.stripe_arr

let stripe_of t key =
  t.stripe_arr.(Hashtbl.hash key land (Array.length t.stripe_arr - 1))

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* ------------------------------------------------------------------ *)
(* intrusive LRU list (oldest <-> ... <-> newest), under the stripe lock *)
(* ------------------------------------------------------------------ *)

let unlink s e =
  (match e.prev with None -> s.oldest <- e.next | Some p -> p.next <- e.next);
  (match e.next with None -> s.newest <- e.prev | Some n -> n.prev <- e.prev);
  e.prev <- None;
  e.next <- None

let push_newest s e =
  e.prev <- s.newest;
  e.next <- None;
  (match s.newest with None -> s.oldest <- Some e | Some n -> n.next <- Some e);
  s.newest <- Some e

let insert_entry s e =
  Hashtbl.replace s.tbl e.key e;
  push_newest s e;
  s.s_used <- s.s_used + e.charge;
  s.s_insertions <- s.s_insertions + 1

let evict_entry s e =
  unlink s e;
  Hashtbl.remove s.tbl e.key;
  s.s_used <- s.s_used - e.charge;
  s.s_evictions <- s.s_evictions + 1

(* ------------------------------------------------------------------ *)
(* value encoding                                                       *)
(* ------------------------------------------------------------------ *)

(* A value is stored factorized when the config gate says its d-rep is
   worth it: the entry is then charged at the compressed size, so the
   same cache budget holds more answers.  Decoding stays lazy — the
   d-rep is only expanded on a hit. *)
let make_entry ~key ~key_tuples rel =
  Cost.with_counting false (fun () ->
      let schema = Relation.schema rel in
      let rows = List.sort Tuple.compare (Relation.to_list rel) in
      let n_rows = List.length rows in
      let arity = Schema.arity schema in
      let mk ~blob ~fact ~value_charge =
        {
          key;
          vars = Schema.vars schema;
          arity;
          rows = n_rows;
          blob;
          fact;
          key_tuples;
          charge = max 1 (key_tuples + value_charge);
          prev = None;
          next = None;
        }
      in
      let fact_value =
        if Fconfig.mode () = Fconfig.Off then None
        else
          let f = Frep.of_relation rel in
          if Fconfig.eligible ~rows:n_rows ~size:(Frep.size f) then Some f
          else None
      in
      match fact_value with
      | Some f ->
          mk ~blob:(Frep.encode f) ~fact:true ~value_charge:(Frep.size f)
      | None ->
          let enc = C.encoder () in
          C.write_rows enc ~arity rows;
          mk ~blob:(C.contents enc) ~fact:false ~value_charge:n_rows)

let decode_raw e =
  Cost.with_counting false (fun () ->
      if e.fact then
        (* project back to the answer's own variable order: the d-rep
           reorders levels for sharing *)
        Relation.project (Frep.to_relation (Frep.decode e.blob)) e.vars
      else begin
        let d = C.decoder e.blob in
        let rows = C.read_rows d ~arity:e.arity in
        C.expect_end d "cache value";
        Relation.of_list (Schema.of_list e.vars) rows
      end)

(* A hit materializes the answer: charge one tuple per row, exactly as
   if the engine had copied a preprocessed heavy-key answer out. *)
let decode_entry e =
  let rel = decode_raw e in
  for _ = 1 to e.rows do
    Cost.charge_tuple ()
  done;
  rel

(* ------------------------------------------------------------------ *)
(* operations                                                           *)
(* ------------------------------------------------------------------ *)

let find t key =
  let s = stripe_of t key in
  Cost.charge_probe ();
  let hit =
    locked s (fun () ->
        Sketch.touch s.sketch key;
        match Hashtbl.find_opt s.tbl key with
        | None ->
            s.s_misses <- s.s_misses + 1;
            None
        | Some e ->
            unlink s e;
            push_newest s e;
            s.s_hits <- s.s_hits + 1;
            Some e)
  in
  match hit with
  | None ->
      Obs.incr "cache.miss";
      None
  | Some e ->
      Obs.incr "cache.hit";
      Some (decode_entry e)

let add t ~key ~key_tuples rel =
  let s = stripe_of t key in
  let e = make_entry ~key ~key_tuples rel in
  let evicted, admitted_bytes =
    locked s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some cur ->
            (* already cached (e.g. a concurrent miss): refresh recency *)
            unlink s cur;
            push_newest s cur;
            (0, 0)
        | None ->
            if e.charge > s.s_budget then begin
              s.s_rejected <- s.s_rejected + 1;
              (0, 0)
            end
            else begin
              let cand = Sketch.estimate s.sketch key in
              let evicted = ref 0 in
              let verdict = ref `Admit in
              while !verdict = `Admit && s.s_used + e.charge > s.s_budget do
                match s.oldest with
                | None -> verdict := `Reject
                | Some victim ->
                    (* TinyLFU: the incumbent wins ties, so one-hit
                       wonders (estimate <= any live entry) bounce off *)
                    if Sketch.estimate s.sketch victim.key >= cand then begin
                      s.s_rejected <- s.s_rejected + 1;
                      verdict := `Reject
                    end
                    else begin
                      evict_entry s victim;
                      incr evicted
                    end
              done;
              if !verdict = `Admit then begin
                insert_entry s e;
                (!evicted, String.length key + String.length e.blob)
              end
              else (!evicted, 0)
            end)
  in
  if evicted > 0 then Obs.incr ~by:evicted "cache.evict";
  if admitted_bytes > 0 then Obs.incr ~by:admitted_bytes "cache.bytes"

let install t ~key ~key_tuples rel =
  let s = stripe_of t key in
  let e = make_entry ~key ~key_tuples rel in
  let evicted, admitted_bytes =
    locked s (fun () ->
        (match Hashtbl.find_opt s.tbl key with
        | Some cur -> evict_entry s cur
        | None -> ());
        if e.charge > s.s_budget then begin
          s.s_rejected <- s.s_rejected + 1;
          (0, 0)
        end
        else begin
          let evicted = ref 0 in
          while s.s_used + e.charge > s.s_budget do
            match s.oldest with
            | None -> assert false (* charge <= s_budget, so used > 0 *)
            | Some victim ->
                evict_entry s victim;
                incr evicted
          done;
          insert_entry s e;
          (!evicted, String.length key + String.length e.blob)
        end)
  in
  if evicted > 0 then Obs.incr ~by:evicted "cache.evict";
  if admitted_bytes > 0 then Obs.incr ~by:admitted_bytes "cache.bytes"

let fold_stripes t f init =
  Array.fold_left (fun acc s -> locked s (fun () -> f acc s)) init t.stripe_arr

let used t = fold_stripes t (fun acc s -> acc + s.s_used) 0
let entries t = fold_stripes t (fun acc s -> acc + Hashtbl.length s.tbl) 0

let stats t =
  fold_stripes t
    (fun acc s ->
      let fact_here =
        Hashtbl.fold (fun _ e n -> if e.fact then n + 1 else n) s.tbl 0
      in
      {
        entries = acc.entries + Hashtbl.length s.tbl;
        used = acc.used + s.s_used;
        budget = acc.budget;
        hits = acc.hits + s.s_hits;
        misses = acc.misses + s.s_misses;
        insertions = acc.insertions + s.s_insertions;
        evictions = acc.evictions + s.s_evictions;
        rejected = acc.rejected + s.s_rejected;
        invalidated = acc.invalidated + s.s_invalidated;
        factorized = acc.factorized + fact_here;
      })
    {
      entries = 0;
      used = 0;
      budget = t.t_budget;
      hits = 0;
      misses = 0;
      insertions = 0;
      evictions = 0;
      rejected = 0;
      invalidated = 0;
      factorized = 0;
    }

(* Precise invalidation after a base-data delta: drop exactly the
   entries whose key the predicate marks as affected.  One probe charged
   per entry examined — the scan is real online work done on behalf of
   the mutation, so it lands in the maintenance cost, not in answering.
   Invalidations are counted separately from capacity evictions. *)
let invalidate t affected =
  fold_stripes t
    (fun acc s ->
      let victims =
        Hashtbl.fold
          (fun key e acc ->
            Cost.charge_probe ();
            if affected key then e :: acc else acc)
          s.tbl []
      in
      List.iter
        (fun e ->
          unlink s e;
          Hashtbl.remove s.tbl e.key;
          s.s_used <- s.s_used - e.charge;
          s.s_invalidated <- s.s_invalidated + 1)
        victims;
      acc + List.length victims)
    0

let export t =
  List.rev
    (fold_stripes t
       (fun acc s ->
         let rec walk acc = function
           | None -> acc
           | Some e -> walk ((e.key, e.key_tuples, decode_raw e) :: acc) e.next
         in
         walk acc s.oldest)
       [])

let clear t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.reset s.tbl;
          s.oldest <- None;
          s.newest <- None;
          s.s_used <- 0))
    t.stripe_arr
