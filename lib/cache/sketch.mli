(** Count-min frequency sketch with periodic aging (the TinyLFU
    admission filter's memory).

    Four hash rows of 4-bit saturating counters estimate how often each
    key has been requested recently; after a sample window of touches
    every counter is halved, so the estimate tracks the {e current}
    workload rather than all of history.  The sketch is O(width) bytes
    regardless of how many distinct keys flow through it — it never
    charges against the cache's tuple budget and never charges {!Cost}
    counters.

    Not thread-safe: each cache stripe owns one sketch and touches it
    under the stripe lock. *)

type t

val create : width:int -> t
(** [width] is rounded up to a power of two (min 16).  Memory is
    [4 * width] bytes. *)

val touch : t -> string -> unit
(** Record one access.  Saturates at 15 per counter; every
    [8 * width] touches all counters are halved. *)

val estimate : t -> string -> int
(** Frequency estimate in [0, 15]: the minimum over the four rows, an
    upper bound on the true recent count (collisions only inflate). *)
