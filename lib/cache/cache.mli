(** Bounded, space-accounted answer cache with TinyLFU admission.

    The paper trades preprocessing space for answering time statically;
    this cache makes the same trade dynamically: hot access requests are
    answered from memory charged against an explicit budget measured in
    {e stored tuples} (request tuples + answer tuples per entry), the
    same unit as the engine's intrinsic space.  Values are kept
    delta-encoded via {!Stt_store.Codec} so a cached answer costs a few
    bytes per tuple, and every hit decodes a fresh relation — handing
    out an owned value, never a shared mutable one.

    Admission is TinyLFU-style: a per-stripe count-min {!Sketch} tracks
    recent request frequency, and when the cache is full a newcomer is
    admitted only if its frequency estimate strictly beats the LRU
    victim's — one-hit wonders can never displace hot entries.

    The structure is striped for multicore serving: keys hash onto a
    power-of-two number of stripes, each with its own mutex, hash table,
    LRU list, sketch and budget share, so worker domains contend only
    when they touch the same stripe.

    Cost accounting: a {!find} charges exactly one probe, plus one tuple
    per answer row on a hit.  All maintenance (encoding, eviction,
    admission) is free — the online cost model only sees the probe and
    the materialized answer, mirroring how the paper counts a
    materialized heavy key.  Obs counters [cache.hit], [cache.miss],
    [cache.evict] and [cache.bytes] (cumulative encoded bytes admitted)
    are bumped when observability is enabled. *)

open Stt_relation

type t

type stats = {
  entries : int;  (** live entries across all stripes *)
  used : int;  (** stored-tuple charge currently held *)
  budget : int;  (** configured budget in stored tuples *)
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  rejected : int;  (** denied by admission filter or per-entry capacity *)
  invalidated : int;  (** dropped by {!invalidate} after base-data deltas *)
  factorized : int;
      (** live entries whose value is held as a d-representation,
          charged at the compressed size *)
}

val create : ?stripes:int -> budget:int -> unit -> t
(** [budget] is the total stored-tuple budget (must be positive —
    callers model "cache disabled" as no cache at all).  [stripes]
    (default 8) is rounded up to a power of two; the budget is split
    evenly across stripes, so very small budgets with many stripes
    leave some stripes with no capacity — unit tests of admission
    mechanics should pass [~stripes:1].  Raises [Invalid_argument] on
    non-positive [budget] or [stripes]. *)

val budget : t -> int
val stripes : t -> int
val used : t -> int
val entries : t -> int
val stats : t -> stats

val find : t -> string -> Relation.t option
(** Look up a canonical key (from {!Key.encode}).  A hit refreshes LRU
    recency and returns a freshly decoded relation; both outcomes touch
    the admission sketch, so repeated misses build up the frequency
    needed to get admitted later. *)

val add : t -> key:string -> key_tuples:int -> Relation.t -> unit
(** Offer an answer for caching under TinyLFU admission.  [key_tuples]
    is the number of request tuples behind [key]; the entry is charged
    [max 1 (key_tuples + cardinal answer)] stored tuples.  No-op if the
    key is already cached (recency is refreshed — answers are
    deterministic, so the stored value is already correct). *)

val install : t -> key:string -> key_tuples:int -> Relation.t -> unit
(** Like {!add} but bypasses the admission filter (evicting LRU victims
    unconditionally while over budget) and replaces an existing entry.
    Used to rebuild a warm cache from a snapshot, where admission
    already happened in a previous life. *)

val invalidate : t -> (string -> bool) -> int
(** [invalidate t affected] drops every entry whose canonical key
    satisfies [affected], returning how many were dropped.  Used after a
    base-data delta to evict exactly the cached answers the delta can
    change; one probe is charged per entry examined.  Invalidations are
    counted in [stats.invalidated], separate from capacity
    [evictions]. *)

val export : t -> (string * int * Relation.t) list
(** All live entries as [(key, key_tuples, answer)], stripe by stripe,
    oldest first within each stripe — the order {!install} needs to
    reproduce the same LRU state.  Decoding is cost-free. *)

val clear : t -> unit
(** Drop every entry (cumulative stats are kept). *)
