(* Stt_cache: canonical request keys, TinyLFU admission, bounded space,
   LRU recency, striped-lock concurrency, the engine's warm-cache fast
   path, warm-cache snapshot round trips, and a 50-instance differential
   check that a cached engine stays bit-identical to an uncached twin. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_cache
open Stt_workload
open Diff_harness

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let check_tuples msg expected got =
  Alcotest.check Alcotest.(list (list int)) msg expected got

(* ------------------------------------------------------------------ *)
(* Key: the shared canonicalization contract                            *)
(* ------------------------------------------------------------------ *)

let test_key_permutation_invariance () =
  let access = Schema.of_list [ 2; 5 ] in
  (* same tuple set, different schema order and insertion order *)
  let q1 =
    Relation.of_list (Schema.of_list [ 2; 5 ]) [ [| 1; 2 |]; [| 3; 4 |] ]
  in
  let q2 =
    Relation.of_list (Schema.of_list [ 5; 2 ]) [ [| 4; 3 |]; [| 2; 1 |] ]
  in
  Alcotest.(check string)
    "permuted schema and insertion order give the same key"
    (Key.of_request ~access q1)
    (Key.of_request ~access q2);
  let q3 =
    Relation.of_list (Schema.of_list [ 2; 5 ]) [ [| 1; 2 |]; [| 3; 5 |] ]
  in
  Alcotest.(check bool)
    "different tuple sets give different keys" false
    (String.equal (Key.of_request ~access q1) (Key.of_request ~access q3))

let test_key_canon_sorts () =
  let access = Schema.of_list [ 0; 1 ] in
  let q =
    Relation.of_list (Schema.of_list [ 1; 0 ])
      [ [| 9; 3 |]; [| 0; 7 |]; [| 2; 1 |] ]
  in
  (* reordered into access column order (x0, x1) and sorted *)
  check_tuples "canonical rows"
    [ [ 1; 2 ]; [ 3; 9 ]; [ 7; 0 ] ]
    (List.map Array.to_list (Key.canon ~access q))

let test_key_roundtrip () =
  let rows = [ [| 1; 2 |]; [| 3; 4 |]; [| 3; 9 |] ] in
  let kind', arity', rows' = Key.decode (Key.encode ~arity:2 rows) in
  Alcotest.(check int) "default kind is tuple" 0 kind';
  Alcotest.(check int) "arity" 2 arity';
  check_tuples "rows" (List.map Array.to_list rows)
    (List.map Array.to_list rows');
  (* arity 0 (boolean access) round trips too *)
  let k0, a0, r0 = Key.decode (Key.encode ~arity:0 [ [||] ]) in
  Alcotest.(check int) "kind 0" 0 k0;
  Alcotest.(check int) "arity 0" 0 a0;
  Alcotest.(check int) "one empty row" 1 (List.length r0);
  (* kind-tagged keys round trip and never collide with the tuple key *)
  let kc, ac, rc = Key.decode (Key.encode ~kind:1 ~arity:2 rows) in
  Alcotest.(check int) "kind survives" 1 kc;
  Alcotest.(check int) "kinded arity" 2 ac;
  Alcotest.(check int) "kinded rows" 3 (List.length rc);
  Alcotest.(check bool) "kind byte separates keys" false
    (String.equal (Key.encode ~arity:2 rows) (Key.encode ~kind:1 ~arity:2 rows))

(* ------------------------------------------------------------------ *)
(* Sketch: count-min frequency estimates                                *)
(* ------------------------------------------------------------------ *)

let test_sketch () =
  let s = Sketch.create ~width:1024 in
  Alcotest.(check int) "fresh key estimates 0" 0 (Sketch.estimate s "nope");
  for _ = 1 to 3 do
    Sketch.touch s "k"
  done;
  let e = Sketch.estimate s "k" in
  Alcotest.(check bool) "count-min never underestimates" true (e >= 3);
  Alcotest.(check bool) "estimate is capped" true (e <= 15);
  for _ = 1 to 30 do
    Sketch.touch s "k"
  done;
  Alcotest.(check int) "saturates at 15" 15 (Sketch.estimate s "k")

(* ------------------------------------------------------------------ *)
(* Cache: admission, eviction, space, recency                           *)
(* ------------------------------------------------------------------ *)

(* arity-1 helpers: entry i holds one row, so with [key_tuples:1] every
   entry charges exactly 2 stored tuples *)
let key_of i = Key.encode ~arity:1 [ [| i |] ]
let rel_of i = Relation.of_list (Schema.of_list [ 7 ]) [ [| i |] ]
let export_keys c = List.map (fun (k, _, _) -> k) (Cache.export c)

let test_admission () =
  let c = Cache.create ~stripes:1 ~budget:4 () in
  (* build frequency for a and b through repeated misses, then admit *)
  List.iter
    (fun i ->
      for _ = 1 to 5 do
        assert (Cache.find c (key_of i) = None)
      done;
      Cache.add c ~key:(key_of i) ~key_tuples:1 (rel_of i))
    [ 0; 1 ];
  Alcotest.(check int) "cache full" 4 (Cache.used c);
  Alcotest.(check int) "two entries" 2 (Cache.entries c);
  (* a one-hit wonder must not displace a hot incumbent *)
  assert (Cache.find c (key_of 2) = None);
  Cache.add c ~key:(key_of 2) ~key_tuples:1 (rel_of 2);
  Alcotest.(check (list string))
    "one-hit wonder bounced off"
    [ key_of 0; key_of 1 ]
    (export_keys c);
  Alcotest.(check bool) "rejection counted" true ((Cache.stats c).rejected >= 1);
  (* a hotter newcomer displaces the LRU victim *)
  for _ = 1 to 8 do
    assert (Cache.find c (key_of 3) = None)
  done;
  Cache.add c ~key:(key_of 3) ~key_tuples:1 (rel_of 3);
  Alcotest.(check (list string))
    "hot newcomer evicted the oldest incumbent"
    [ key_of 1; key_of 3 ]
    (export_keys c);
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).evictions;
  Alcotest.(check bool) "still within budget" true (Cache.used c <= 4)

let test_space_invariant () =
  let c = Cache.create ~stripes:1 ~budget:10 () in
  for i = 0 to 49 do
    Cache.install c ~key:(key_of i) ~key_tuples:1 (rel_of i);
    Alcotest.(check bool)
      (Printf.sprintf "used <= budget after install %d" i)
      true
      (Cache.used c <= Cache.budget c)
  done;
  Alcotest.(check int) "5 entries of charge 2 fit in budget 10" 5
    (Cache.entries c);
  Alcotest.(check bool) "evictions happened" true
    ((Cache.stats c).evictions > 0);
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.entries c);
  Alcotest.(check int) "clear frees the charge" 0 (Cache.used c)

let test_oversized_rejected () =
  let c = Cache.create ~stripes:1 ~budget:4 () in
  let big =
    Relation.of_list (Schema.of_list [ 7 ]) (List.init 10 (fun i -> [| i |]))
  in
  Cache.add c ~key:(key_of 0) ~key_tuples:1 big;
  Alcotest.(check int) "oversized add rejected" 0 (Cache.entries c);
  Cache.install c ~key:(key_of 0) ~key_tuples:1 big;
  Alcotest.(check int) "oversized install rejected" 0 (Cache.entries c);
  Alcotest.(check int) "both counted" 2 (Cache.stats c).rejected

let test_lru_recency () =
  let c = Cache.create ~stripes:1 ~budget:6 () in
  List.iter
    (fun i -> Cache.install c ~key:(key_of i) ~key_tuples:1 (rel_of i))
    [ 0; 1; 2 ];
  (* touching 0 makes 1 the eviction victim *)
  (match Cache.find c (key_of 0) with
  | Some r -> check_tuples "hit decodes the stored answer" [ [ 0 ] ] (sorted r)
  | None -> Alcotest.fail "expected a hit");
  Cache.install c ~key:(key_of 3) ~key_tuples:1 (rel_of 3);
  Alcotest.(check (list string))
    "oldest unrefreshed entry evicted"
    [ key_of 2; key_of 0; key_of 3 ]
    (export_keys c)

let test_stats_and_obs_counters () =
  let ctx = Stt_obs.Obs.create_context () in
  Stt_obs.Obs.with_context ctx @@ fun () ->
  Stt_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Stt_obs.Obs.set_enabled false) @@ fun () ->
  let c = Cache.create ~stripes:1 ~budget:100 () in
  for _ = 1 to 3 do
    assert (Cache.find c (key_of 0) = None)
  done;
  Cache.add c ~key:(key_of 0) ~key_tuples:1 (rel_of 0);
  for _ = 1 to 2 do
    assert (Cache.find c (key_of 0) <> None)
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.hits;
  Alcotest.(check int) "misses" 3 s.misses;
  Alcotest.(check int) "insertions" 1 s.insertions;
  Alcotest.(check int) "entries" 1 s.entries;
  Alcotest.(check int) "used = key + rows" 2 s.used;
  Alcotest.(check int) "obs hit counter" 2
    (Stt_obs.Obs.counter_value "cache.hit");
  Alcotest.(check int) "obs miss counter" 3
    (Stt_obs.Obs.counter_value "cache.miss");
  Alcotest.(check bool) "obs bytes counter" true
    (Stt_obs.Obs.counter_value "cache.bytes" > 0);
  (* the trace document derives cache.hit_rate from the counter pair *)
  match Stt_obs.Json.member "derived" (Stt_obs.Obs.trace ()) with
  | None -> Alcotest.fail "trace has no derived object"
  | Some d -> (
      match Stt_obs.Json.member "cache.hit_rate" d with
      | Some (Stt_obs.Json.Float f) ->
          Alcotest.(check (float 1e-9)) "hit rate" 0.4 f
      | _ -> Alcotest.fail "derived cache.hit_rate missing")

(* ------------------------------------------------------------------ *)
(* striped-lock concurrency smoke                                       *)
(* ------------------------------------------------------------------ *)

let test_concurrent_stripes () =
  let c = Cache.create ~stripes:8 ~budget:400 () in
  let n_keys = 32 in
  let expected i =
    List.sort compare [ [ i * 3 ]; [ (i * 3) + 1 ]; [ (i * 3) + 2 ] ]
  in
  let value i =
    Relation.of_list (Schema.of_list [ 7 ])
      [ [| i * 3 |]; [| (i * 3) + 1 |]; [| (i * 3) + 2 |] ]
  in
  let worker d () =
    for j = 0 to 399 do
      let i = ((d * 131) + (j * 31)) mod n_keys in
      match Cache.find c (key_of i) with
      | Some r ->
          if sorted r <> expected i then
            failwith (Printf.sprintf "domain %d: wrong value for key %d" d i)
      | None -> Cache.add c ~key:(key_of i) ~key_tuples:1 (value i)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "within budget" true (Cache.used c <= Cache.budget c);
  (* every surviving entry still decodes to its key's exact answer *)
  List.iter
    (fun (k, kt, r) ->
      Alcotest.(check int) "key_tuples preserved" 1 kt;
      let _, _, rows = Key.decode k in
      match rows with
      | [ [| i |] ] -> check_tuples "entry value" (expected i) (sorted r)
      | _ -> Alcotest.fail "unexpected key shape")
    (Cache.export c);
  let s = Cache.stats c in
  Alcotest.(check int) "every find counted" 1600 (s.hits + s.misses)

(* ------------------------------------------------------------------ *)
(* engine integration: warm fast path and snapshot round trip           *)
(* ------------------------------------------------------------------ *)

let build_2reach () =
  let db = Db.create () in
  Db.add_pairs db "R" (Graphs.zipf_both ~seed:3 ~vertices:60 ~edges:500 ~s:1.1);
  Engine.build_auto (Cq.Library.k_path 2) ~db ~budget:300

let test_warm_answer_tuple_is_o1 () =
  let idx = build_2reach () in
  Engine.attach_cache idx ~budget:1000;
  let tup = [| 4; 9 |] in
  let cold, cold_cost = Cost.measure (fun () -> Engine.answer_tuple idx tup) in
  let warm, warm_cost = Cost.measure (fun () -> Engine.answer_tuple idx tup) in
  Alcotest.(check bool) "same verdict" cold warm;
  (* warm path: one cache probe, the materialized q_a tuple and at most
     one materialized answer row — no index probes, no scans *)
  Alcotest.(check int) "warm hit costs one probe" 1 warm_cost.Cost.probes;
  Alcotest.(check bool) "warm hit materializes <= 2 tuples" true
    (warm_cost.Cost.tuples <= 2);
  Alcotest.(check int) "warm hit scans nothing" 0 warm_cost.Cost.scans;
  Alcotest.(check bool) "warm is cheaper than cold" true
    (Cost.total warm_cost < Cost.total cold_cost);
  let s = Option.get (Engine.cache_stats idx) in
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cache.misses

let temp_snap () = Filename.temp_file "stt_cache_test" ".snap"

let test_warm_snapshot_roundtrip () =
  let idx = build_2reach () in
  Engine.attach_cache idx ~budget:2000;
  let rng = Rng.create 17 in
  let requests =
    List.init 30 (fun _ ->
        Relation.of_list (Engine.access_schema idx)
          [ [| Rng.int rng 60; Rng.int rng 60 |] ])
  in
  (* warm the cache, with repeats so some entries carry hit history *)
  List.iter (fun q_a -> ignore (Engine.answer idx ~q_a)) (requests @ requests);
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Engine.save idx path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "save: %s" (Stt_store.Store.error_to_string e));
  match Engine.load path with
  | Error e -> Alcotest.failf "load: %s" (Stt_store.Store.error_to_string e)
  | Ok loaded ->
      let s = Option.get (Engine.cache_stats idx) in
      let s' = Option.get (Engine.cache_stats loaded) in
      Alcotest.(check int) "budget survives" s.Cache.budget s'.Cache.budget;
      Alcotest.(check int) "entries survive" s.Cache.entries s'.Cache.entries;
      Alcotest.(check int) "charge survives" s.Cache.used s'.Cache.used;
      Alcotest.(check int) "cache space reported" s.Cache.used
        (Engine.cache_space loaded);
      Alcotest.(check int) "total space"
        (Engine.space idx + s.Cache.used)
        (Engine.total_space loaded);
      (* every warmed request is a hit on the loaded engine with the
         same answer and the same op counts as on the original *)
      List.iter
        (fun q_a ->
          let a, c = Cost.measure (fun () -> Engine.answer idx ~q_a) in
          let a', c' = Cost.measure (fun () -> Engine.answer loaded ~q_a) in
          check_tuples "answers identical" (sorted a) (sorted a');
          Alcotest.(check (list int))
            "hit op counts identical"
            [ c.Cost.probes; c.Cost.tuples; c.Cost.scans ]
            [ c'.Cost.probes; c'.Cost.tuples; c'.Cost.scans ])
        requests

(* ------------------------------------------------------------------ *)
(* maintenance: precise invalidation under deltas                       *)
(* ------------------------------------------------------------------ *)

(* 2-reach over vertices [0,60): an isolated new edge (100,101) crosses
   no cached derivation, while (101,102) completes the 2-path
   100 -> 101 -> 102 and must evict exactly the (100,102) entry *)
let test_precise_invalidation () =
  let idx = build_2reach () in
  Engine.attach_cache idx ~budget:2000;
  let schema = Engine.access_schema idx in
  let q_far = Relation.of_list schema [ [| 100; 102 |] ] in
  let q_near = Relation.of_list schema [ [| 4; 9 |] ] in
  let stats () = Option.get (Engine.cache_stats idx) in
  (* cold misses populate both entries *)
  check_tuples "no 2-path from a vertex outside the graph" []
    (sorted (Engine.answer idx ~q_a:q_far));
  let near0 = sorted (Engine.answer idx ~q_a:q_near) in
  let s0 = stats () in
  Alcotest.(check int) "two entries cached" 2 s0.Cache.entries;
  Alcotest.(check int) "two cold misses" 2 s0.Cache.misses;
  (* non-overlapping delta: the isolated edge creates no 2-path, so the
     cache must stay warm *)
  let eff, _ = Engine.insert idx "R" [| 100; 101 |] in
  Alcotest.(check bool) "first delta effective" true eff;
  let s1 = stats () in
  Alcotest.(check int) "nothing invalidated" 0 s1.Cache.invalidated;
  Alcotest.(check int) "entries untouched" 2 s1.Cache.entries;
  check_tuples "still no 2-path" [] (sorted (Engine.answer idx ~q_a:q_far));
  check_tuples "near answer unchanged" near0
    (sorted (Engine.answer idx ~q_a:q_near));
  let s1' = stats () in
  Alcotest.(check int) "both served from cache" (s0.Cache.hits + 2)
    s1'.Cache.hits;
  Alcotest.(check int) "no new misses" s0.Cache.misses s1'.Cache.misses;
  (* overlapping delta: completes 100 -> 101 -> 102, evicting exactly
     the (100,102) entry *)
  let eff, _ = Engine.insert idx "R" [| 101; 102 |] in
  Alcotest.(check bool) "second delta effective" true eff;
  let s2 = stats () in
  Alcotest.(check int) "exactly one entry invalidated" 1 s2.Cache.invalidated;
  Alcotest.(check int) "one entry left" 1 s2.Cache.entries;
  Alcotest.(check bool) "charge released" true (s2.Cache.used < s1'.Cache.used);
  (* the untouched entry is still a hit *)
  check_tuples "near answer still cached" near0
    (sorted (Engine.answer idx ~q_a:q_near));
  Alcotest.(check int) "near entry stayed warm" (s1'.Cache.hits + 1)
    (stats ()).Cache.hits;
  (* the evicted entry misses, recomputes the post-delta answer... *)
  check_tuples "rebuilt answer sees the new path"
    [ [ 100; 102 ] ]
    (sorted (Engine.answer idx ~q_a:q_far));
  Alcotest.(check int) "eviction forced a recompute" (s1'.Cache.misses + 1)
    (stats ()).Cache.misses;
  (* ...and is a hit again once rebuilt *)
  check_tuples "rebuilt entry hits"
    [ [ 100; 102 ] ]
    (sorted (Engine.answer idx ~q_a:q_far));
  let s3 = stats () in
  Alcotest.(check int) "rebuilt hit counted" (s1'.Cache.hits + 2) s3.Cache.hits;
  Alcotest.(check int) "no further misses" (s1'.Cache.misses + 1)
    s3.Cache.misses;
  Alcotest.(check int) "back to two entries" 2 s3.Cache.entries;
  (* space accounting stays consistent through the churn *)
  Alcotest.(check int) "epoch counted both deltas" 2 (Engine.epoch idx);
  Alcotest.(check int) "total space = intrinsic + cache charge"
    (Engine.space idx + s3.Cache.used)
    (Engine.total_space idx);
  Alcotest.(check int) "cache space matches stats" s3.Cache.used
    (Engine.cache_space idx)

(* ------------------------------------------------------------------ *)
(* differential: cached engine == uncached twin, 50 random instances    *)
(* ------------------------------------------------------------------ *)

let n_instances = 50
let base_seed = 0xCAC4E

let run_one i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = gen_instance seed in
    match build_index inst with
    | exception Skip reason ->
        if k >= 20 then
          Alcotest.failf "instance %d: no buildable query after %d tries (%s)"
            i (k + 1) reason
        else attempt (k + 1)
    | plain, _ ->
        (* the twin build is deterministic: same instance, same engine *)
        let cached, _ = build_index inst in
        Engine.attach_cache cached ~budget:(1 + (i mod 3 * 50));
        let reference q_a = sorted (Engine.answer plain ~q_a) in
        let singletons =
          List.map
            (fun tup -> Relation.of_list (Relation.schema inst.q_a) [ tup ])
            (Relation.to_list inst.q_a)
        in
        let reqs = (inst.q_a :: singletons) @ (inst.q_a :: singletons) in
        (* answer: cold then warm *)
        List.iter
          (fun q_a ->
            if sorted (Engine.answer cached ~q_a) <> reference q_a then
              Alcotest.failf "instance %d (seed %d): answer diverges" i seed)
          reqs;
        (* answer_tuple: cold then warm *)
        Relation.iter
          (fun tup ->
            let expect =
              not (Relation.is_empty (Db.eval_access inst.db inst.cqap
                     ~q_a:(Relation.of_list (Relation.schema inst.q_a) [ tup ])))
            in
            if Engine.answer_tuple cached tup <> expect
               || Engine.answer_tuple cached tup <> expect
            then
              Alcotest.failf "instance %d (seed %d): answer_tuple diverges" i
                seed)
          inst.q_a;
        (* answer_batch with duplicates, against per-request references *)
        List.iter2
          (fun q_a (r, _) ->
            if sorted r <> reference q_a then
              Alcotest.failf "instance %d (seed %d): answer_batch diverges" i
                seed)
          reqs
          (Engine.answer_batch cached reqs)
  in
  attempt 0

let test_differential_cached () =
  for i = 0 to n_instances - 1 do
    run_one i
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cache"
    [
      ( "key",
        [
          Alcotest.test_case "permutation invariance" `Quick
            test_key_permutation_invariance;
          Alcotest.test_case "canon sorts into access order" `Quick
            test_key_canon_sorts;
          Alcotest.test_case "encode/decode round trip" `Quick
            test_key_roundtrip;
        ] );
      ( "sketch",
        [ Alcotest.test_case "count-min estimates" `Quick test_sketch ] );
      ( "cache",
        [
          Alcotest.test_case "TinyLFU admission" `Quick test_admission;
          Alcotest.test_case "space invariant under churn" `Quick
            test_space_invariant;
          Alcotest.test_case "oversized entries rejected" `Quick
            test_oversized_rejected;
          Alcotest.test_case "LRU recency" `Quick test_lru_recency;
          Alcotest.test_case "stats and obs counters" `Quick
            test_stats_and_obs_counters;
          Alcotest.test_case "4-domain striped smoke" `Quick
            test_concurrent_stripes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "warm answer_tuple is O(1)" `Quick
            test_warm_answer_tuple_is_o1;
          Alcotest.test_case "warm snapshot round trip" `Quick
            test_warm_snapshot_roundtrip;
          Alcotest.test_case "precise invalidation under deltas" `Quick
            test_precise_invalidation;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random instances, cached == uncached"
               n_instances)
            `Slow test_differential_cached;
        ] );
    ]
