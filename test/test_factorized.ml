(* Factorized d-representations: structural round trips, op parity with
   flat indexes, the constant-delay enumeration contract, the codec's
   corruption rejection, and the end-to-end engine paths (admission,
   snapshot section, cache values). *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_workload
module Frep = Stt_factorized.Frep
module Fconfig = Stt_factorized.Config
module Codec = Stt_store.Codec

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let with_mode m f =
  let saved = Fconfig.mode () in
  Fconfig.set_mode m;
  Fun.protect ~finally:(fun () -> Fconfig.set_mode saved) f

(* a cross product shares its suffix maximally: |A| x |B| rows in
   |A| + |B| singletons *)
let product_rel na nb =
  Relation.of_list (Schema.of_list [ 0; 1 ])
    (List.concat_map
       (fun a -> List.init nb (fun b -> [| a; 100 + b |]))
       (List.init na Fun.id))

let random_rel rng ~arity ~rows ~dom =
  (* cap at the domain's capacity so drawing distinct rows terminates *)
  let cap = int_of_float (Float.pow (float_of_int dom) (float_of_int arity)) in
  let rows = min rows (cap / 2) in
  let seen = Hashtbl.create (max 1 rows) in
  let rec draw n acc =
    if n = 0 then acc
    else
      let t = Array.init arity (fun _ -> Rng.int rng dom) in
      if Hashtbl.mem seen t then draw n acc
      else begin
        Hashtbl.add seen t ();
        draw (n - 1) (t :: acc)
      end
  in
  Relation.of_list (Schema.of_list (List.init arity Fun.id)) (draw rows [])

(* ------------------------------------------------------------------ *)
(* structure                                                            *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let rng = Rng.create 42 in
  for _ = 1 to 50 do
    let arity = 1 + Rng.int rng 4 in
    let rel = random_rel rng ~arity ~rows:(Rng.int rng 60) ~dom:6 in
    let f = Frep.of_relation rel in
    Alcotest.(check int) "rows" (Relation.cardinal rel) (Frep.rows f);
    let back = Relation.project (Frep.to_relation f) (Schema.vars (Relation.schema rel)) in
    Alcotest.(check (list (list int))) "tuples" (sorted rel) (sorted back)
  done

let test_sharing () =
  let rel = product_rel 30 40 in
  let f = Frep.of_relation rel in
  Alcotest.(check int) "rows" 1200 (Frep.rows f);
  Alcotest.(check bool) "cross product compresses to |A| + |B|" true
    (Frep.size f = 70);
  (* a relation of distinct unrelated rows cannot beat flat by much *)
  let rng = Rng.create 7 in
  let sparse = random_rel rng ~arity:2 ~rows:50 ~dom:1000 in
  let g = Frep.of_relation sparse in
  Alcotest.(check bool) "no structure, no miracle" true
    (Frep.size g >= Relation.cardinal sparse)

let test_empty_and_edges () =
  let empty = Relation.create (Schema.of_list [ 0; 1 ]) in
  let f = Frep.of_relation empty in
  Alcotest.(check int) "empty rows" 0 (Frep.rows f);
  Alcotest.(check int) "empty size" 0 (Frep.size f);
  let n = ref 0 in
  Frep.enum_iter f (fun _ -> incr n);
  Alcotest.(check int) "empty enumerates nothing" 0 !n;
  let one = Relation.of_list (Schema.of_list [ 3 ]) [ [| 9 |] ] in
  let g = Frep.of_relation ~prefix:[ 3 ] one in
  Alcotest.(check int) "singleton size" 1 (Frep.size g);
  Alcotest.(check bool) "prefix probe hits" true (Frep.probe_mem g [| 9 |]);
  Alcotest.(check bool) "prefix probe misses" false (Frep.probe_mem g [| 8 |]);
  (match Frep.of_relation ~prefix:[ 7 ] one with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign prefix var accepted");
  match Frep.of_relation ~prefix:[ 3; 3 ] one with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate prefix var accepted"

(* ------------------------------------------------------------------ *)
(* cost contracts                                                       *)
(* ------------------------------------------------------------------ *)

let test_enum_delay () =
  let rel = product_rel 15 20 in
  let f = Cost.with_counting false (fun () -> Frep.of_relation rel) in
  let n = ref 0 in
  let (), c = Cost.measure (fun () -> Frep.enum_iter f (fun _ -> incr n)) in
  Alcotest.(check int) "every row" 300 !n;
  Alcotest.(check int) "one probe" 1 c.Cost.probes;
  Alcotest.(check int) "one tuple per row" 300 c.Cost.tuples;
  Alcotest.(check int) "no scans" 0 c.Cost.scans

let test_op_parity () =
  let rng = Rng.create 99 in
  for _ = 1 to 20 do
    let right = random_rel rng ~arity:3 ~rows:(5 + Rng.int rng 40) ~dom:5 in
    let left =
      Relation.of_list (Schema.of_list [ 0; 1 ])
        (List.map (fun _ -> [| Rng.int rng 5; Rng.int rng 5 |]) (List.init 15 Fun.id))
    in
    let key = [ 0; 1 ] in
    let idx = Cost.with_counting false (fun () -> Index.build right key) in
    let f = Cost.with_counting false (fun () -> Frep.of_relation ~prefix:key right) in
    let sj_flat, c_flat = Cost.measure (fun () -> Index.semijoin left idx) in
    let sj_fact, c_fact = Cost.measure (fun () -> Frep.semijoin left f) in
    Alcotest.(check (list (list int))) "semijoin rows" (sorted sj_flat) (sorted sj_fact);
    Alcotest.(check bool) "semijoin cost parity" true (c_flat = c_fact);
    let j_flat, jc_flat = Cost.measure (fun () -> Index.join left idx) in
    let j_fact, jc_fact = Cost.measure (fun () -> Frep.join left f) in
    Alcotest.(check (list (list int)))
      "join rows"
      (sorted (Relation.project j_flat (Schema.vars (Relation.schema j_fact))))
      (sorted j_fact);
    Alcotest.(check bool) "join cost parity" true (jc_flat = jc_fact)
  done

let test_probe_iter () =
  let rel = random_rel (Rng.create 5) ~arity:2 ~rows:40 ~dom:4 in
  let f = Cost.with_counting false (fun () -> Frep.of_relation ~prefix:[ 0 ] rel) in
  for k = 0 to 4 do
    let got = ref [] in
    let (), c =
      Cost.measure (fun () ->
          Frep.probe_iter f [| k |] (fun t -> got := Array.copy t :: !got))
    in
    let expected =
      List.filter (fun t -> t.(0) = k) (Relation.to_list rel)
    in
    Alcotest.(check int) "probe row count" (List.length expected) (List.length !got);
    Alcotest.(check int) "one probe, nothing per row" 1 c.Cost.probes;
    Alcotest.(check int) "no tuples charged" 0 c.Cost.tuples
  done

(* ------------------------------------------------------------------ *)
(* codec                                                                *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let rng = Rng.create 123 in
  for _ = 1 to 30 do
    let arity = 1 + Rng.int rng 3 in
    let rel = random_rel rng ~arity ~rows:(Rng.int rng 50) ~dom:5 in
    let f = Frep.of_relation ~prefix:[ 0 ] rel in
    let g = Frep.decode (Frep.encode f) in
    Alcotest.(check int) "rows survive" (Frep.rows f) (Frep.rows g);
    Alcotest.(check int) "size survives" (Frep.size f) (Frep.size g);
    Alcotest.(check (list (list int)))
      "tuples survive"
      (sorted (Frep.to_relation f))
      (sorted (Frep.to_relation g))
  done

(* Every single-byte flip must either raise [Codec.Corrupt] or still
   decode to a structurally sound value (rows/size re-derived and
   consistent) — never crash, never inflate silently. *)
let test_codec_flip_sweep () =
  let rel = product_rel 6 7 in
  let blob = Frep.encode (Frep.of_relation rel) in
  for i = 0 to String.length blob - 1 do
    let b = Bytes.of_string blob in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    match Frep.decode (Bytes.to_string b) with
    | exception Codec.Corrupt _ -> ()
    | g ->
        (* decoded: must still be internally consistent *)
        Alcotest.(check int)
          "re-derived rows match enumeration" (Frep.rows g)
          (Relation.cardinal (Frep.to_relation g))
  done

(* ------------------------------------------------------------------ *)
(* config gate                                                          *)
(* ------------------------------------------------------------------ *)

let test_config_modes () =
  with_mode Fconfig.Off (fun () ->
      Alcotest.(check bool) "off never eligible" false
        (Fconfig.eligible ~rows:100 ~size:1));
  with_mode Fconfig.Forced (fun () ->
      Alcotest.(check bool) "forced always eligible" true
        (Fconfig.eligible ~rows:1 ~size:100));
  with_mode Fconfig.Auto (fun () ->
      Alcotest.(check bool) "auto takes 1.25x" true
        (Fconfig.eligible ~rows:5 ~size:4);
      Alcotest.(check bool) "auto rejects below 1.25x" false
        (Fconfig.eligible ~rows:6 ~size:5);
      Alcotest.(check int) "effective size when eligible" 4
        (Fconfig.effective_size ~rows:5 ~size:4);
      Alcotest.(check int) "flat size when not" 6
        (Fconfig.effective_size ~rows:6 ~size:5))

(* ------------------------------------------------------------------ *)
(* cache values                                                         *)
(* ------------------------------------------------------------------ *)

let test_cache_factorized_values () =
  let module Cache = Stt_cache.Cache in
  let rel = product_rel 20 20 in
  with_mode Fconfig.Forced (fun () ->
      let c = Cache.create ~stripes:1 ~budget:1_000 () in
      Cache.add c ~key:"k" ~key_tuples:1 rel;
      let s = Cache.stats c in
      Alcotest.(check int) "entry admitted" 1 s.Cache.entries;
      Alcotest.(check int) "held as d-rep" 1 s.Cache.factorized;
      Alcotest.(check bool) "charged compressed (40 + key), not 400" true
        (s.Cache.used < 100);
      match Cache.find c "k" with
      | None -> Alcotest.fail "cached entry not found"
      | Some got ->
          Alcotest.(check (list (list int))) "decoded identically"
            (sorted rel) (sorted got));
  with_mode Fconfig.Off (fun () ->
      let c = Cache.create ~stripes:1 ~budget:1_000 () in
      Cache.add c ~key:"k" ~key_tuples:1 rel;
      let s = Cache.stats c in
      Alcotest.(check int) "flat under Off" 0 s.Cache.factorized;
      Alcotest.(check int) "charged flat" 401 s.Cache.used)

(* ------------------------------------------------------------------ *)
(* engine: admission, accounting, snapshot section                      *)
(* ------------------------------------------------------------------ *)

let hub_engine mode ~budget =
  let edges = Graphs.zipf_both ~seed:131 ~vertices:300 ~edges:6_000 ~s:1.3 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  with_mode mode (fun () ->
      Engine.build_auto ~max_pmtds:128 (Cq.Library.k_path 3) ~db ~budget)

let hub_requests idx n =
  let rng = Rng.create 17 in
  let schema = Engine.access_schema idx in
  let arity = Schema.arity schema in
  Relation.of_list schema
    (List.init n (fun _ -> Array.init arity (fun _ -> Rng.int rng 300)))

let test_engine_amplification () =
  let budget = 800 in
  let flat = hub_engine Fconfig.Off ~budget in
  let fact = hub_engine Fconfig.Auto ~budget in
  Alcotest.(check bool) "factorized build stores more rows" true
    (Engine.materialized_rows fact > Engine.materialized_rows flat);
  Alcotest.(check bool) "in fewer stored singletons" true
    (Engine.space fact < Engine.materialized_rows fact);
  Alcotest.(check bool) "some views factorized" true
    (Engine.factorized_views fact > 0);
  let q_a = hub_requests fact 60 in
  Alcotest.(check (list (list int)))
    "identical answers"
    (sorted (Engine.answer flat ~q_a))
    (sorted (Engine.answer fact ~q_a))

let test_snapshot_factorized_section () =
  let fact = hub_engine Fconfig.Auto ~budget:800 in
  Alcotest.(check bool) "fixture has factorized views" true
    (Engine.factorized_views fact > 0);
  let path = Filename.temp_file "stt_factorized_test" ".snap" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Engine.save fact path with
  | Error e -> Alcotest.failf "save: %s" (Stt_store.Store.error_to_string e)
  | Ok _ -> ());
  match Engine.load path with
  | Error e -> Alcotest.failf "load: %s" (Stt_store.Store.error_to_string e)
  | Ok loaded ->
      Alcotest.(check int) "compressed space survives" (Engine.space fact)
        (Engine.space loaded);
      Alcotest.(check int) "factorized views survive"
        (Engine.factorized_views fact)
        (Engine.factorized_views loaded);
      let q_a = hub_requests fact 60 in
      Alcotest.(check (list (list int)))
        "loaded engine answers identically"
        (sorted (Engine.answer fact ~q_a))
        (sorted (Engine.answer loaded ~q_a))

let () =
  Alcotest.run "factorized"
    [
      ( "structure",
        [
          Alcotest.test_case "factorize/materialize round trip" `Quick
            test_roundtrip;
          Alcotest.test_case "suffix sharing compresses" `Quick test_sharing;
          Alcotest.test_case "empty, singleton, bad prefixes" `Quick
            test_empty_and_edges;
        ] );
      ( "cost",
        [
          Alcotest.test_case "constant-delay enumeration" `Quick
            test_enum_delay;
          Alcotest.test_case "semijoin/join parity with Index" `Quick
            test_op_parity;
          Alcotest.test_case "probe_iter charges like Index" `Quick
            test_probe_iter;
        ] );
      ( "codec",
        [
          Alcotest.test_case "encode/decode round trip" `Quick
            test_codec_roundtrip;
          Alcotest.test_case "single-byte flips never crash" `Quick
            test_codec_flip_sweep;
        ] );
      ( "config",
        [ Alcotest.test_case "mode gates" `Quick test_config_modes ] );
      ( "cache",
        [
          Alcotest.test_case "factorized cache values" `Quick
            test_cache_factorized_values;
        ] );
      ( "engine",
        [
          Alcotest.test_case "amplified admission, identical answers" `Slow
            test_engine_amplification;
          Alcotest.test_case "snapshot factorized section round trip" `Slow
            test_snapshot_factorized_section;
        ] );
    ]
