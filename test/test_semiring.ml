(* Semiring aggregates: algebraic laws, the evaluator against a
   flat-join oracle, the engine's table/online/cache paths, snapshot
   round trips, and the three aggregate apps against naive
   references. *)

open Stt_relation
open Stt_core
open Stt_apps
open Stt_workload
module Semiring = Stt_semiring.Semiring
module Eval = Stt_semiring.Eval

(* --- semiring laws --- *)

(* representative samples per kind: identities plus ordinary values
   (the tropical kinds saturate at their absorbing element, so laws are
   checked on the range arising from nonnegative annotations) *)
let samples k =
  let open Semiring in
  [ zero k; one k; 0; 1; 2; 7; 100 ]

let test_laws () =
  List.iter
    (fun k ->
      let open Semiring in
      let vals = samples k in
      List.iter
        (fun a ->
          Alcotest.(check int) "add zero" a (add k a (zero k));
          Alcotest.(check int) "mul one" a (mul k a (one k));
          Alcotest.(check int) "mul zero absorbs" (zero k) (mul k a (zero k));
          List.iter
            (fun b ->
              Alcotest.(check int) "add comm" (add k a b) (add k b a);
              Alcotest.(check int) "mul comm" (mul k a b) (mul k b a);
              List.iter
                (fun c ->
                  Alcotest.(check int) "add assoc"
                    (add k (add k a b) c)
                    (add k a (add k b c));
                  Alcotest.(check int) "mul assoc"
                    (mul k (mul k a b) c)
                    (mul k a (mul k b c));
                  Alcotest.(check int) "distributivity"
                    (mul k a (add k b c))
                    (add k (mul k a b) (mul k a c)))
                vals)
            vals)
        vals)
    Semiring.all

let test_tags () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "tag round trip" true
        (Semiring.of_tag (Semiring.to_tag k) = Some k);
      Alcotest.(check bool) "name round trip" true
        (Semiring.of_name (Semiring.name k) = Some k))
    Semiring.all;
  Alcotest.(check bool) "tag 0 reserved for tuples" true
    (Semiring.of_tag 0 = None);
  Alcotest.(check bool) "tag 5 unknown" true (Semiring.of_tag 5 = None)

(* --- evaluator vs brute oracle on random instances --- *)

let factors_of inst =
  let cqap = inst.Diff_harness.cqap in
  List.map
    (fun (a : Stt_hypergraph.Cq.atom) -> Db.relation inst.Diff_harness.db a)
    cqap.Stt_hypergraph.Cq.cq.Stt_hypergraph.Cq.atoms

let test_eval_matches_brute () =
  List.iter
    (fun seed ->
      let inst = Diff_harness.gen_instance seed in
      let rels = factors_of inst in
      List.iter
        (fun k ->
          let factors = List.map (Eval.of_relation k) rels in
          let fast = Eval.aggregate k factors ~q_a:inst.Diff_harness.q_a in
          let slow = Eval.brute k factors ~q_a:inst.Diff_harness.q_a in
          Alcotest.(check int)
            (Printf.sprintf "seed %d %s" seed (Semiring.name k))
            slow fast)
        Semiring.all)
    (List.init 40 (fun i -> 0xA11CE + i))

(* --- engine: table path, online fallback, budget equivalence --- *)

let graph = Graphs.zipf_both ~seed:31 ~vertices:80 ~edges:700 ~s:1.1

let test_engine_budget_equivalence () =
  (* a complete table, a partial table and no table must agree *)
  let full = Reach.Counting.build ~k:2 graph ~budget:4000 ~agg_budget:100_000 in
  let tight = Reach.Counting.build ~k:2 graph ~budget:4000 ~agg_budget:3 in
  let none = Reach.Counting.build ~k:2 graph ~budget:4000 ~agg_budget:0 in
  Alcotest.(check bool) "full table complete" true
    (Engine.agg_complete (Reach.Counting.engine full) Semiring.Count);
  let rng = Rng.create 17 in
  for _ = 1 to 80 do
    let u = Rng.int rng 80 and v = Rng.int rng 80 in
    let expect = Reach.naive_count graph ~k:2 u v in
    Alcotest.(check int) "complete table" expect (Reach.Counting.count full u v);
    Alcotest.(check int) "partial table" expect (Reach.Counting.count tight u v);
    Alcotest.(check int) "no table" expect (Reach.Counting.count none u v)
  done

let test_engine_vs_baseline_ops () =
  (* value equality against materialize-then-fold, and op sanity: the
     aggregate path never pays more than the baseline beyond the fixed
     2-op-per-request-row table overhead *)
  let t = Reach.Counting.build ~k:3 graph ~budget:4000 ~agg_budget:100_000 in
  let e = Reach.Counting.engine t in
  let schema = Engine.access_schema e in
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let rows =
      List.init
        (1 + Rng.int rng 6)
        (fun _ -> [| Rng.int rng 80; Rng.int rng 80 |])
    in
    let q_a = Relation.of_list schema rows in
    let fast, fast_c = Engine.answer_agg e Semiring.Count ~q_a in
    let slow, slow_c = Engine.agg_baseline e Semiring.Count ~q_a in
    Alcotest.(check int) "agg = baseline" slow fast;
    let budget = Cost.total slow_c + (2 * Relation.cardinal q_a) in
    Alcotest.(check bool)
      (Printf.sprintf "ops %d <= %d" (Cost.total fast_c) budget)
      true
      (Cost.total fast_c <= budget)
  done

(* --- kind-tagged cache entries --- *)

let test_cache_kind_distinct () =
  let t = Reach.Counting.build ~k:2 graph ~budget:4000 ~agg_budget:0 in
  let e = Reach.Counting.engine t in
  Engine.attach_cache e ~budget:10_000;
  let q_a = Relation.of_list (Engine.access_schema e) [ [| 3; 7 |]; [| 1; 2 |] ] in
  let tuples = List.sort compare (Relation.to_list (Engine.answer e ~q_a)) in
  let count, _ = Engine.answer_agg e Semiring.Count ~q_a in
  let stats () = Option.get (Engine.cache_stats e) in
  Alcotest.(check int) "two distinct entries for one request" 2
    (stats ()).Stt_cache.Cache.entries;
  (* replay both: hits, and neither entry was clobbered by the other *)
  let tuples' = List.sort compare (Relation.to_list (Engine.answer e ~q_a)) in
  let count', _ = Engine.answer_agg e Semiring.Count ~q_a in
  Alcotest.(check bool) "tuple answer stable" true (tuples = tuples');
  Alcotest.(check int) "aggregate answer stable" count count';
  Alcotest.(check int) "both replays hit" 2 (stats ()).Stt_cache.Cache.hits

(* --- snapshot round trip with agg section --- *)

let test_snapshot_roundtrip () =
  let weighted =
    List.map (fun (u, v) -> (u, v, 1 + ((u + v) mod 9))) graph
  in
  let t = Minreach.build ~k:2 weighted ~budget:4000 ~agg_budget:50 in
  let e = Minreach.engine t in
  Engine.attach_cache e ~budget:1000;
  (* populate the cache with both a tuple and an aggregate entry so the
     snapshot's kind-tagged cache section is exercised *)
  let q_a = Relation.of_list (Engine.access_schema e) [ [| 2; 5 |] ] in
  ignore (Engine.answer e ~q_a);
  ignore (Engine.answer_agg e Semiring.Min ~q_a);
  let path = Filename.temp_file "stt_semiring" ".idx" in
  (match Engine.save e path with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "save: %s" (Stt_store.Store.error_to_string err));
  let e' =
    match Engine.load path with
    | Ok e' -> e'
    | Error err ->
        Alcotest.failf "load: %s" (Stt_store.Store.error_to_string err)
  in
  Sys.remove path;
  Alcotest.(check bool) "agg enabled after load" true (Engine.agg_enabled e');
  Alcotest.(check bool) "kinds preserved" true
    (Engine.agg_kinds e' = [ Semiring.Min ]);
  Alcotest.(check int) "agg budget preserved" 50 (Engine.agg_budget e');
  Alcotest.(check bool) "completeness preserved" true
    (Engine.agg_complete e Semiring.Min = Engine.agg_complete e' Semiring.Min);
  Alcotest.(check int) "table size preserved" (Engine.agg_table_size e)
    (Engine.agg_table_size e');
  let rng = Rng.create 29 in
  for _ = 1 to 60 do
    let u = Rng.int rng 80 and v = Rng.int rng 80 in
    let q_a = Relation.of_list (Engine.access_schema e) [ [| u; v |] ] in
    Alcotest.(check int) "answers preserved"
      (fst (Engine.answer_agg e Semiring.Min ~q_a))
      (fst (Engine.answer_agg e' Semiring.Min ~q_a))
  done

(* --- deltas drop tables but stay correct --- *)

let test_deltas_invalidate_tables () =
  let t = Reach.Counting.build ~k:2 graph ~budget:4000 ~agg_budget:100_000 in
  let e = Reach.Counting.engine t in
  if Engine.supports_maintenance e then begin
    Alcotest.(check bool) "table built" true
      (Engine.agg_table_size e > 0);
    let fresh = [| 81; 82 |] in
    ignore (Engine.insert e "R" fresh);
    Alcotest.(check int) "tables dropped on delta" 0 (Engine.agg_table_size e);
    let graph' = graph @ [ (81, 82) ] in
    let rng = Rng.create 37 in
    for _ = 1 to 40 do
      let u = Rng.int rng 83 and v = Rng.int rng 83 in
      Alcotest.(check int) "post-delta counts"
        (Reach.naive_count graph' ~k:2 u v)
        (Reach.Counting.count t u v)
    done
  end

(* --- apps against naive references --- *)

let test_reach_counting () =
  let rng = Rng.create 41 in
  List.iter
    (fun k ->
      let t = Reach.Counting.build ~k graph ~budget:4000 ~agg_budget:2000 in
      for _ = 1 to 60 do
        let u = Rng.int rng 80 and v = Rng.int rng 80 in
        Alcotest.(check int)
          (Printf.sprintf "k=%d walk count" k)
          (Reach.naive_count graph ~k u v)
          (Reach.Counting.count t u v)
      done)
    [ 1; 2; 3 ]

let test_minreach () =
  let rng = Rng.create 43 in
  let weighted =
    List.map (fun (u, v) -> (u, v, 1 + Rng.int rng 20)) graph
  in
  List.iter
    (fun agg_budget ->
      let t = Minreach.build ~k:3 weighted ~budget:4000 ~agg_budget in
      for _ = 1 to 60 do
        let u = Rng.int rng 80 and v = Rng.int rng 80 in
        let expect = Minreach.naive weighted ~k:3 u v in
        Alcotest.(check bool)
          (Printf.sprintf "min weight %d->%d" u v)
          true
          (Minreach.min_weight t u v = expect)
      done)
    [ 0; 2000 ]

let test_minreach_rejects_negative () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Minreach.build: negative weight") (fun () ->
      ignore (Minreach.build ~k:2 [ (0, 1, -3) ] ~budget:10 ~agg_budget:10))

let members =
  Sets.zipf_sizes ~seed:21 ~universe:150 ~sets:60 ~memberships:1200 ~s:1.2

let test_setdisj_counting () =
  let rng = Rng.create 47 in
  List.iter
    (fun k ->
      let t =
        Setdisj.Counting.build ~k ~memberships:members ~budget:4000
          ~agg_budget:1000
      in
      for _ = 1 to 60 do
        let q = Array.init k (fun _ -> Rng.int rng 60) in
        Alcotest.(check int) "intersection cardinality"
          (Setdisj.naive_cardinality ~memberships:members q)
          (Setdisj.Counting.cardinality t q)
      done)
    [ 2; 3 ]

let () =
  Alcotest.run "semiring"
    [
      ( "laws",
        [
          Alcotest.test_case "identities, comm, assoc, distrib" `Quick
            test_laws;
          Alcotest.test_case "tag/name round trips" `Quick test_tags;
        ] );
      ( "eval",
        [
          Alcotest.test_case "aggregate = brute on random instances" `Quick
            test_eval_matches_brute;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget-independent answers" `Quick
            test_engine_budget_equivalence;
          Alcotest.test_case "value and op sanity vs baseline" `Quick
            test_engine_vs_baseline_ops;
          Alcotest.test_case "kind-tagged cache entries" `Quick
            test_cache_kind_distinct;
          Alcotest.test_case "snapshot round trip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "deltas drop tables, answers stay right" `Quick
            test_deltas_invalidate_tables;
        ] );
      ( "apps",
        [
          Alcotest.test_case "path counting" `Quick test_reach_counting;
          Alcotest.test_case "min-weight reachability" `Quick test_minreach;
          Alcotest.test_case "negative weights rejected" `Quick
            test_minreach_rejects_negative;
          Alcotest.test_case "intersection cardinality" `Quick
            test_setdisj_counting;
        ] );
    ]
