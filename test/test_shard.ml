(* The sharded serving tier, bottom to top.

   The consistent-hash ring must spread canonical keys roughly evenly,
   move only the departed/arrived shard's keys on membership change, and
   route canonically-equal requests identically.  A loopback router over
   three in-process replicas must answer exactly what the direct engine
   handler answers — rows and per-tuple op accounting — survive a
   replica dying mid-workload by re-routing its tuples (zero lost, zero
   duplicated), propagate shard rejections whole-batch, and aggregate
   the fleet's protocol-v5 health with restart detection. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
module Frame = Stt_net.Frame
module Server = Stt_net.Server
module Client = Stt_net.Client
module Ring = Stt_shard.Ring
module Router = Stt_shard.Router
module Key = Stt_cache.Key

(* ------------------------------------------------------------------ *)
(* ring: placement                                                      *)
(* ------------------------------------------------------------------ *)

let synthetic_keys n =
  let rng = Stt_workload.Rng.create 97 in
  List.init n (fun _ ->
      Key.of_tuple ~arity:2
        [| Stt_workload.Rng.int rng 100_000; Stt_workload.Rng.int rng 100_000 |])

let tally ring keys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      let s = Ring.owner ring k in
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    keys;
  tbl

let ring_uniformity () =
  let names = [ "shard-0"; "shard-1"; "shard-2" ] in
  let ring = Ring.create names in
  Alcotest.(check (list string)) "members" names (Ring.shards ring);
  let keys = synthetic_keys 1000 in
  let tbl = tally ring keys in
  List.iter
    (fun name ->
      let share = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      (* 128 vnodes/shard: each of 3 shards should be within a loose
         band around the fair third of 1000 keys *)
      Alcotest.(check bool)
        (Printf.sprintf "%s share %d within [150, 550]" name share)
        true
        (share >= 150 && share <= 550))
    names

let ring_minimal_movement () =
  let ring3 = Ring.create [ "shard-0"; "shard-1"; "shard-2" ] in
  let ring4 = Ring.add ring3 "shard-3" in
  let keys = synthetic_keys 1000 in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Ring.owner ring3 k and after = Ring.owner ring4 k in
      if before <> after then begin
        incr moved;
        (* every movement lands on the newcomer, never reshuffles the
           survivors among themselves *)
        Alcotest.(check string) "moved keys go to the new shard" "shard-3"
          after
      end)
    keys;
  (* fair share for the 4th shard is ~250 of 1000 *)
  Alcotest.(check bool)
    (Printf.sprintf "movement %d near the fair quarter" !moved)
    true
    (!moved > 100 && !moved < 450);
  (* removal is the mirror image: only the departed shard's keys move *)
  let ring3' = Ring.remove ring4 "shard-3" in
  List.iter
    (fun k ->
      Alcotest.(check string) "remove restores the original owner"
        (Ring.owner ring3 k) (Ring.owner ring3' k))
    keys

let ring_owners_failover () =
  let ring = Ring.create [ "a"; "b"; "c" ] in
  List.iter
    (fun k ->
      let owners = Ring.owners ring ~n:3 k in
      Alcotest.(check int) "three distinct owners" 3
        (List.length (List.sort_uniq compare owners));
      Alcotest.(check string) "head is the owner" (Ring.owner ring k)
        (List.hd owners))
    (synthetic_keys 50);
  Alcotest.(check (list string)) "empty ring has no owners" []
    (Ring.owners (Ring.create []) ~n:2 "x")

(* routing, caching, and batch dedup share one equivalence: a request
   with permuted rows/columns canonicalizes to the same bytes, so it
   must land on the same shard and the same warm cache entry *)
let ring_canonical_stability () =
  let ring = Ring.create [ "shard-0"; "shard-1"; "shard-2" ] in
  let access = Schema.of_list [ 2; 5 ] in
  let q1 =
    Relation.of_list (Schema.of_list [ 2; 5 ]) [ [| 1; 2 |]; [| 3; 4 |] ]
  in
  (* same rows, permuted row order and column order *)
  let q2 =
    Relation.of_list (Schema.of_list [ 5; 2 ]) [ [| 4; 3 |]; [| 2; 1 |] ]
  in
  Alcotest.(check string) "permuted batches share a shard"
    (Ring.owner ring (Key.of_request ~access q1))
    (Ring.owner ring (Key.of_request ~access q2));
  (* a wire tuple's routing key is byte-identical to the cache key of
     the one-row request it denotes — the drift guard the router leans
     on *)
  let tup = [| 7; 9 |] in
  let singleton = Relation.of_list (Schema.of_list [ 2; 5 ]) [ tup ] in
  Alcotest.(check string) "of_tuple = of_request on a singleton"
    (Key.of_request ~access singleton)
    (Key.of_tuple ~arity:2 tup);
  Alcotest.(check string) "physical tuple identity is irrelevant"
    (Ring.owner ring (Key.of_tuple ~arity:2 tup))
    (Ring.owner ring (Key.of_tuple ~arity:2 (Array.copy tup)))

let ring_determinism () =
  (* same membership, same keys, same owners — across construction
     orders (the process-independence the FNV hash buys) *)
  let r1 = Ring.create [ "a"; "b"; "c" ] in
  let r2 = Ring.create [ "c"; "a"; "b" ] in
  List.iter
    (fun k ->
      Alcotest.(check string) "construction order is irrelevant"
        (Ring.owner r1 k) (Ring.owner r2 k))
    (synthetic_keys 200)

(* ------------------------------------------------------------------ *)
(* loopback fleet fixture                                               *)
(* ------------------------------------------------------------------ *)

let fixture =
  lazy
    (let q = Cq.Library.k_path 2 in
     let db =
       Stt_workload.Scenario.synthetic_db ~seed:11 ~vertices:300 ~edges:2500
     in
     let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget:500 in
     Engine.enable_agg idx ~db ~budget:10_000;
     idx)

let fixture_tuples n seed =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let rng = Stt_workload.Rng.create seed in
  List.init n (fun _ ->
      Array.init arity (fun _ -> Stt_workload.Rng.int rng 300))

(* three in-process replicas behind a router; every replica serves the
   same engine — full snapshots, the premise of sound failover *)
let with_fleet ?(replicas = 3) ?(workers = 1) ?(queue = 64) f =
  let idx = Lazy.force fixture in
  let handler = Server.engine_handler idx in
  let servers =
    List.init replicas (fun _ ->
        Server.start ~port:0 ~workers ~queue_capacity:queue
          ~agg_handler:(Server.engine_agg_handler idx) handler)
  in
  let endpoints =
    List.mapi
      (fun i s ->
        {
          Router.name = Printf.sprintf "shard-%d" i;
          host = "127.0.0.1";
          port = Server.port s;
        })
      servers
  in
  let router =
    Router.start ~port:0 ~workers:2 ~queue_capacity:queue endpoints
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop router;
      ignore (Router.wait router);
      List.iter
        (fun s ->
          Server.stop s;
          ignore (Server.wait s))
        servers)
    (fun () -> f router servers handler)

let with_client port f =
  match Client.connect ~port () with
  | Error e -> Alcotest.failf "connect: %s" (Frame.error_to_string e)
  | Ok client ->
      Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let rpc_exn client req =
  match Client.rpc client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "rpc: %s" (Frame.error_to_string e)

(* ------------------------------------------------------------------ *)
(* scatter/gather                                                       *)
(* ------------------------------------------------------------------ *)

(* what the router scatters: the same grouping a ring over the fleet's
   names produces.  Per-tuple op counts are a property of the sub-batch
   a shard evaluates (batch-shared cost is split evenly inside each
   batch), so cost identity is checked against a direct call per owner
   group, while rows are batch-invariant and checked against the full
   direct batch. *)
let owner_groups names tuples =
  let ring = Ring.create names in
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i tup ->
      let owner = Ring.owner ring (Key.of_tuple ~arity:(Array.length tup) tup) in
      match Hashtbl.find_opt tbl owner with
      | Some l -> l := (i, tup) :: !l
      | None ->
          Hashtbl.add tbl owner (ref [ (i, tup) ]);
          order := owner :: !order)
    tuples;
  List.rev_map (fun o -> List.rev !(Hashtbl.find tbl o)) !order

let routed_matches_direct () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let names = [ "shard-0"; "shard-1"; "shard-2" ] in
  with_fleet @@ fun router _servers handler ->
  with_client (Router.port router) @@ fun client ->
  List.iteri
    (fun i tuples ->
      let expected_rows = handler ~arity tuples in
      let expected_costs = Array.make (List.length tuples) None in
      List.iter
        (fun group ->
          let answers = handler ~arity (List.map snd group) in
          List.iter2
            (fun (j, _) (_, _, cost) -> expected_costs.(j) <- Some cost)
            group answers)
        (owner_groups names tuples);
      match
        rpc_exn client (Frame.Answer { id = i; deadline_us = 0; arity; tuples })
      with
      | Frame.Answers { id; answers } ->
          Alcotest.(check int) "id echoed" i id;
          Alcotest.(check int) "answer per tuple" (List.length expected_rows)
            (List.length answers);
          (* gather preserved request order; every answer carries the
             op-count snapshot its owner shard measured on its sub-batch *)
          List.iteri
            (fun j (a : Frame.answer) ->
              let rows, row_arity, _ = List.nth expected_rows j in
              Alcotest.(check (list (array int))) "same rows" rows a.Frame.rows;
              Alcotest.(check int) "same arity" row_arity a.Frame.row_arity;
              Alcotest.(check bool) "same op counts as the owner group" true
                (expected_costs.(j) = Some a.Frame.cost))
            answers
      | _ -> Alcotest.fail "expected Answers")
    [
      fixture_tuples 5 41;
      fixture_tuples 24 42;
      (match fixture_tuples 1 43 with
      | [ t ] -> [ t; Array.copy t; t ]
      | _ -> assert false);
    ]

let router_rejects_updates () =
  with_fleet @@ fun router _ _ ->
  with_client (Router.port router) @@ fun client ->
  match rpc_exn client (Frame.Update { id = 5; deltas = [] }) with
  | Frame.Rejected { id = 5; reject = Frame.Bad_request _ } -> ()
  | _ -> Alcotest.fail "expected Bad_request for Update through the router"

let deadline_rejection_propagates () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  with_fleet @@ fun router _ _ ->
  with_client (Router.port router) @@ fun client ->
  (* 1us is gone before any shard worker picks the job up; the shard
     rejects and the router must reject the whole batch, never a
     partial answer *)
  let tuples = fixture_tuples 6 44 in
  match
    rpc_exn client (Frame.Answer { id = 9; deadline_us = 1; arity; tuples })
  with
  | Frame.Rejected { id = 9; reject = Frame.Deadline_exceeded } -> ()
  | Frame.Answers _ -> Alcotest.fail "a 1us deadline cannot be met"
  | _ -> Alcotest.fail "expected Deadline_exceeded"

(* a replica dies WITHOUT being drained from the ring: its tuples must
   fail over to the next owner, completing every batch with zero lost
   and zero duplicated answers *)
let failover_reroutes () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  with_fleet @@ fun router servers handler ->
  let dead = List.nth servers 2 in
  Server.stop dead;
  ignore (Server.wait dead);
  with_client (Router.port router) @@ fun client ->
  List.iteri
    (fun i tuples ->
      let expected = handler ~arity tuples in
      match
        rpc_exn client (Frame.Answer { id = i; deadline_us = 0; arity; tuples })
      with
      | Frame.Answers { id; answers } ->
          Alcotest.(check int) "id echoed" i id;
          List.iter2
            (fun (rows, _, _) (a : Frame.answer) ->
              Alcotest.(check (list (array int))) "rows survive failover" rows
                a.Frame.rows)
            expected answers
      | _ -> Alcotest.fail "expected Answers despite a dead shard")
    [ fixture_tuples 20 51; fixture_tuples 20 52; fixture_tuples 20 53 ];
  (* 60 tuples over 3 shards: statistically certain some were owned by
     the dead shard and had to be re-routed *)
  Alcotest.(check bool) "re-routes recorded" true (Router.retried_tuples router > 0);
  Alcotest.(check bool) "shard errors recorded" true (Router.shard_errors router > 0)

let drain_then_serve () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  with_fleet @@ fun router servers handler ->
  (* the graceful order: ring first, then the process — after this, no
     new tuple routes to shard-1 and nothing needs re-routing *)
  Router.drain_shard router "shard-1";
  Alcotest.(check (list string)) "ring shrank" [ "shard-0"; "shard-2" ]
    (Router.shards router);
  let s1 = List.nth servers 1 in
  Server.stop s1;
  ignore (Server.wait s1);
  let errors_before = Router.shard_errors router in
  with_client (Router.port router) @@ fun client ->
  let tuples = fixture_tuples 20 61 in
  let expected = handler ~arity tuples in
  (match
     rpc_exn client (Frame.Answer { id = 1; deadline_us = 0; arity; tuples })
   with
  | Frame.Answers { answers; _ } ->
      List.iter2
        (fun (rows, _, _) (a : Frame.answer) ->
          Alcotest.(check (list (array int))) "rows after drain" rows
            a.Frame.rows)
        expected answers
  | _ -> Alcotest.fail "expected Answers after drain");
  Alcotest.(check int) "a drained shard causes no transport errors"
    errors_before (Router.shard_errors router)

(* ------------------------------------------------------------------ *)
(* aggregates through the router                                        *)
(* ------------------------------------------------------------------ *)

(* a routed aggregate is the ⊕-merge of per-shard partials: the value
   must equal one direct [answer_agg] over the whole tuple set (every
   valuation projects to exactly one access tuple, so the shard
   partition never double-counts), and the cost must equal the sum of
   each owner group's direct cost *)
let routed_agg_matches_direct () =
  let idx = Lazy.force fixture in
  let schema = Engine.access_schema idx in
  let arity = Schema.arity schema in
  let names = [ "shard-0"; "shard-1"; "shard-2" ] in
  with_fleet @@ fun router _servers _handler ->
  with_client (Router.port router) @@ fun client ->
  List.iteri
    (fun i tuples ->
      List.iter
        (fun k ->
          let direct, _ =
            Engine.answer_agg idx k ~q_a:(Relation.of_list schema tuples)
          in
          let group_cost =
            List.fold_left
              (fun acc group ->
                let q_a = Relation.of_list schema (List.map snd group) in
                Cost.add acc (snd (Engine.answer_agg idx k ~q_a)))
              Cost.zero (owner_groups names tuples)
          in
          let kind = Stt_semiring.Semiring.to_tag k in
          match
            rpc_exn client
              (Frame.Agg { id = i; deadline_us = 0; kind; arity; tuples })
          with
          | Frame.Agg_reply { id; value; cost } ->
              Alcotest.(check int) "id echoed" i id;
              Alcotest.(check int)
                (Printf.sprintf "%s routed = direct"
                   (Stt_semiring.Semiring.name k))
                direct value;
              Alcotest.(check bool) "cost is the sum of owner-group costs"
                true (cost = group_cost)
          | _ -> Alcotest.fail "expected Agg_reply")
        Stt_semiring.Semiring.all)
    [ fixture_tuples 5 71; fixture_tuples 24 72 ]

(* a dead replica's groups fail over; completed partials must be merged
   exactly once — any double-count would break value equality *)
let agg_failover_no_double_count () =
  let idx = Lazy.force fixture in
  let schema = Engine.access_schema idx in
  let arity = Schema.arity schema in
  with_fleet @@ fun router servers _handler ->
  let dead = List.nth servers 2 in
  Server.stop dead;
  ignore (Server.wait dead);
  with_client (Router.port router) @@ fun client ->
  List.iteri
    (fun i tuples ->
      List.iter
        (fun k ->
          let direct, _ =
            Engine.answer_agg idx k ~q_a:(Relation.of_list schema tuples)
          in
          let kind = Stt_semiring.Semiring.to_tag k in
          match
            rpc_exn client
              (Frame.Agg { id = i; deadline_us = 0; kind; arity; tuples })
          with
          | Frame.Agg_reply { value; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "%s survives failover exactly-once"
                   (Stt_semiring.Semiring.name k))
                direct value
          | _ -> Alcotest.fail "expected Agg_reply despite a dead shard")
        Stt_semiring.Semiring.all)
    [ fixture_tuples 20 81; fixture_tuples 20 82; fixture_tuples 20 83 ];
  Alcotest.(check bool) "re-routes recorded" true
    (Router.retried_tuples router > 0);
  Alcotest.(check bool) "shard errors recorded" true
    (Router.shard_errors router > 0)

(* ------------------------------------------------------------------ *)
(* fleet health                                                         *)
(* ------------------------------------------------------------------ *)

let health_aggregates () =
  with_fleet ~workers:2 @@ fun router _servers _ ->
  with_client (Router.port router) @@ fun client ->
  match rpc_exn client (Frame.Health { id = 3 }) with
  | Frame.Health_reply { id = 3; health } ->
      Alcotest.(check bool) "fleet ready" true health.Frame.ready;
      Alcotest.(check int) "summed workers" 6 health.Frame.workers;
      Alcotest.(check int) "three shard blocks" 3
        (List.length health.Frame.shards);
      Alcotest.(check (list string)) "blocks carry ring names"
        [ "shard-0"; "shard-1"; "shard-2" ]
        (List.map fst health.Frame.shards);
      Alcotest.(check bool) "router uptime is monotonic and positive" true
        (health.Frame.uptime_ns > 0);
      List.iter
        (fun (name, (h : Frame.health)) ->
          Alcotest.(check bool) (name ^ " ready") true h.Frame.ready;
          Alcotest.(check bool) (name ^ " uptime positive") true
            (h.Frame.uptime_ns > 0);
          Alcotest.(check (list string)) (name ^ " is a leaf") []
            (List.map fst h.Frame.shards))
        health.Frame.shards
  | _ -> Alcotest.fail "expected Health_reply"

let health_flags_dead_shard () =
  with_fleet @@ fun router servers _ ->
  let dead = List.nth servers 0 in
  Server.stop dead;
  ignore (Server.wait dead);
  with_client (Router.port router) @@ fun client ->
  match rpc_exn client (Frame.Health { id = 4 }) with
  | Frame.Health_reply { id = 4; health } ->
      Alcotest.(check bool) "fleet not ready with a dead shard" false
        health.Frame.ready;
      let h0 = List.assoc "shard-0" health.Frame.shards in
      Alcotest.(check bool) "dead shard block not ready" false h0.Frame.ready;
      Alcotest.(check string) "dead shard unreachable" "unreachable"
        h0.Frame.io_backend;
      let h1 = List.assoc "shard-1" health.Frame.shards in
      Alcotest.(check bool) "live shard still ready" true h1.Frame.ready
  | _ -> Alcotest.fail "expected Health_reply"

(* uptime regression across polls = the shard restarted: a fresh
   process's statistics do not continue the previous one's *)
let restart_detection () =
  let idx = Lazy.force fixture in
  let handler = Server.engine_handler idx in
  with_fleet @@ fun router servers _ ->
  with_client (Router.port router) @@ fun client ->
  (* let the original shard-1 accumulate visible uptime, then record it *)
  Unix.sleepf 0.2;
  (match rpc_exn client (Frame.Health { id = 1 }) with
  | Frame.Health_reply _ -> ()
  | _ -> Alcotest.fail "expected Health_reply");
  Alcotest.(check int) "no restarts yet" 0 (Router.restarts router);
  (* restart shard-1 on the SAME port: the upstream entry survives, so
     the next poll sees the fresh process's near-zero uptime fall below
     the recorded one — the staleness signal *)
  let old = List.nth servers 1 in
  let port1 = Server.port old in
  Server.stop old;
  ignore (Server.wait old);
  let fresh = Server.start ~port:port1 ~workers:1 ~queue_capacity:16 handler in
  Fun.protect
    ~finally:(fun () ->
      Server.stop fresh;
      ignore (Server.wait fresh))
    (fun () ->
      match rpc_exn client (Frame.Health { id = 2 }) with
      | Frame.Health_reply { id = 2; health } ->
          Alcotest.(check bool) "fleet ready again" true health.Frame.ready;
          Alcotest.(check int) "restart detected via uptime regression" 1
            (Router.restarts router)
      | _ -> Alcotest.fail "expected Health_reply")

let () =
  Stt_relation.Pool.set_jobs 2;
  Alcotest.run "shard"
    [
      ( "ring",
        [
          Alcotest.test_case "uniform spread over 1k keys" `Quick
            ring_uniformity;
          Alcotest.test_case "minimal movement on add/remove" `Quick
            ring_minimal_movement;
          Alcotest.test_case "owners are distinct failover order" `Quick
            ring_owners_failover;
          Alcotest.test_case "canonically-equal requests share a shard" `Quick
            ring_canonical_stability;
          Alcotest.test_case "deterministic across construction order" `Quick
            ring_determinism;
        ] );
      ( "router",
        [
          Alcotest.test_case "routed equals direct answer_batch" `Quick
            routed_matches_direct;
          Alcotest.test_case "updates rejected" `Quick router_rejects_updates;
          Alcotest.test_case "deadline rejection is whole-batch" `Quick
            deadline_rejection_propagates;
          Alcotest.test_case "dead shard fails over, zero loss" `Quick
            failover_reroutes;
          Alcotest.test_case "drained shard leaves quietly" `Quick
            drain_then_serve;
        ] );
      ( "agg",
        [
          Alcotest.test_case "routed aggregate equals direct answer_agg"
            `Quick routed_agg_matches_direct;
          Alcotest.test_case "failover merges partials exactly once" `Quick
            agg_failover_no_double_count;
        ] );
      ( "health",
        [
          Alcotest.test_case "fleet health aggregates v5 blocks" `Quick
            health_aggregates;
          Alcotest.test_case "dead shard flags fleet not ready" `Quick
            health_flags_dead_shard;
          Alcotest.test_case "uptime regression counts a restart" `Quick
            restart_detection;
        ] );
    ]
