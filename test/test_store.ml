(* The snapshot store, bottom to top.

   Codec and CRC primitives round-trip bit-exactly; the container
   rejects every kind of damaged file with the right typed error (a
   single flipped byte anywhere in a snapshot must surface as an
   [Error], never a crash or a silently wrong engine); and — the
   acceptance property — an engine loaded from a snapshot is
   observationally identical to the freshly built one: same space, same
   answers, and the same online operation counts, checked over
   randomized instances from the differential harness. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
module Crc32 = Stt_store.Crc32
module Codec = Stt_store.Codec
module Store = Stt_store.Store

(* ------------------------------------------------------------------ *)
(* codec primitives                                                     *)
(* ------------------------------------------------------------------ *)

let roundtrip_ints () =
  let e = Codec.encoder () in
  let uints = [ 0; 1; 127; 128; 16384; max_int ] in
  (* write_int's zigzag covers [-2^61, 2^61 - 1] *)
  let ints = [ 0; 1; -1; 31; -32; 123456; -123456; (1 lsl 61) - 1; -(1 lsl 61) ] in
  List.iter (Codec.write_uint e) uints;
  List.iter (Codec.write_int e) ints;
  Codec.write_bool e true;
  Codec.write_string e "snapshot";
  let d = Codec.decoder (Codec.contents e) in
  List.iter
    (fun v -> Alcotest.(check int) "uint" v (Codec.read_uint d))
    uints;
  List.iter (fun v -> Alcotest.(check int) "int" v (Codec.read_int d)) ints;
  Alcotest.(check bool) "bool" true (Codec.read_bool d);
  Alcotest.(check string) "string" "snapshot" (Codec.read_string d);
  Codec.expect_end d "ints"

let roundtrip_rows () =
  let rows =
    [ [| 3; -1; 10 |]; [| 3; 0; 9 |]; [| 4; 4; 4 |]; [| 100; -7; 0 |] ]
  in
  let e = Codec.encoder () in
  Codec.write_rows e ~arity:3 rows;
  Codec.write_rows e ~arity:0 [ [||]; [||] ];
  Codec.write_rows e ~arity:2 [];
  let d = Codec.decoder (Codec.contents e) in
  Alcotest.(check (list (array int)))
    "rows" rows
    (Codec.read_rows d ~arity:3);
  Alcotest.(check int) "arity-0 rows" 2 (List.length (Codec.read_rows d ~arity:0));
  Alcotest.(check (list (array int))) "empty" [] (Codec.read_rows d ~arity:2);
  Codec.expect_end d "rows"

let decoder_rejects () =
  let e = Codec.encoder () in
  Codec.write_string e "truncate me well past one byte";
  let s = Codec.contents e in
  let d = Codec.decoder (String.sub s 0 (String.length s / 2)) in
  Alcotest.check_raises "short" (Codec.Short "bytes")
    (fun () -> ignore (Codec.read_string d));
  Alcotest.check_raises "trailing" (Codec.Corrupt "x: 1 trailing bytes")
    (fun () -> Codec.expect_end (Codec.decoder "!") "x")

let crc_known_vector () =
  (* the standard CRC-32/ISO-HDLC check value *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  let t = Crc32.update Crc32.init "12345" ~pos:0 ~len:5 in
  let t = Crc32.update t "6789xxx" ~pos:0 ~len:4 in
  Alcotest.(check int) "incremental" 0xCBF43926 (Crc32.finish t)

(* ------------------------------------------------------------------ *)
(* container                                                            *)
(* ------------------------------------------------------------------ *)

let temp_snap () = Filename.temp_file "stt_store_test" ".snap"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let flip_byte path pos =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0xFF));
  write_file path (Bytes.to_string s)

let expect_error what pred = function
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" what
  | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: unexpected error: %s" what (Store.error_to_string e)

let sample_sections =
  [
    ("alpha", fun e -> Codec.write_uint e 42);
    ("beta", fun e -> Codec.write_string e (String.make 64 'b'));
  ]

let container_roundtrip () =
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Store.write ~version:7 path sample_sections with
  | Ok bytes -> Alcotest.(check bool) "bytes" true (bytes > 0)
  | Error e -> Alcotest.failf "write: %s" (Store.error_to_string e));
  match Store.Reader.load ~version:7 path with
  | Error e -> Alcotest.failf "load: %s" (Store.error_to_string e)
  | Ok r ->
      Alcotest.(check (list string))
        "names" [ "alpha"; "beta" ]
        (Store.Reader.section_names r);
      (match Store.Reader.section r "alpha" Codec.read_uint with
      | Ok v -> Alcotest.(check int) "alpha" 42 v
      | Error e -> Alcotest.failf "alpha: %s" (Store.error_to_string e));
      expect_error "gamma"
        (function Store.Missing_section "gamma" -> true | _ -> false)
        (Store.Reader.section r "gamma" Codec.read_uint);
      (* a decoder that stops early must not pass validation *)
      expect_error "partial read"
        (function Store.Malformed _ -> true | _ -> false)
        (Store.Reader.section r "beta" (fun d -> Codec.read_u8 d))

let container_rejects_damage () =
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let fresh () =
    match Store.write ~version:7 path sample_sections with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "write: %s" (Store.error_to_string e)
  in
  let load () = Store.Reader.load ~version:7 path in
  fresh ();
  let size = String.length (read_file path) in
  (* wrong magic *)
  flip_byte path 0;
  expect_error "magic" (function Store.Bad_magic -> true | _ -> false) (load ());
  (* version skew: the u32 at bytes 8..11 *)
  fresh ();
  flip_byte path 8;
  expect_error "version"
    (function
      | Store.Version_skew { found; expected = 7 } -> found <> 7
      | _ -> false)
    (load ());
  (* truncation, from one byte lost to an empty file *)
  fresh ();
  let whole = read_file path in
  List.iter
    (fun keep ->
      write_file path (String.sub whole 0 keep);
      expect_error
        (Printf.sprintf "truncated to %d" keep)
        (function Store.Truncated _ -> true | _ -> false)
        (load ()))
    [ size - 1; size / 2; 9; 4; 0 ];
  (* payload corruption: byte 20 sits inside "beta"'s 64-byte payload
     well past the framing of both tiny sections *)
  fresh ();
  flip_byte path (size - 10);
  expect_error "payload"
    (function Store.Checksum_mismatch _ -> true | _ -> false)
    (load ());
  (* trailing garbage after the end marker *)
  fresh ();
  write_file path (read_file path ^ "!");
  expect_error "trailing"
    (function Store.Malformed _ -> true | _ -> false)
    (load ())

(* ------------------------------------------------------------------ *)
(* engine snapshots                                                     *)
(* ------------------------------------------------------------------ *)

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let fixture =
  lazy
    (let q = Cq.Library.k_path 2 in
     let edges =
       Stt_workload.Graphs.zipf_both ~seed:11 ~vertices:300 ~edges:2500 ~s:1.1
     in
     let db = Db.create () in
     Db.add_pairs db "R" edges;
     Engine.build_auto ~max_pmtds:128 q ~db ~budget:500)

let fixture_requests idx =
  let schema = Engine.access_schema idx in
  let arity = Schema.arity schema in
  let rng = Stt_workload.Rng.create 13 in
  List.init 20 (fun _ ->
      Relation.singleton schema
        (Array.init arity (fun _ -> Stt_workload.Rng.int rng 300)))

let check_identical what fresh loaded reqs =
  Alcotest.(check int) (what ^ ": space") (Engine.space fresh)
    (Engine.space loaded);
  List.iter
    (fun q_a ->
      let expect, expect_cost = Cost.measure (fun () -> Engine.answer fresh ~q_a) in
      let got, got_cost = Cost.measure (fun () -> Engine.answer loaded ~q_a) in
      Alcotest.(check (list (list int)))
        (what ^ ": answer") (sorted expect) (sorted got);
      Alcotest.(check bool)
        (what ^ ": op counts") true
        (expect_cost = got_cost))
    reqs;
  let batch_fresh = Engine.answer_batch fresh reqs in
  let batch_loaded = Engine.answer_batch loaded reqs in
  List.iter2
    (fun (r, c) (r', c') ->
      Alcotest.(check (list (list int)))
        (what ^ ": batch answer") (sorted r) (sorted r');
      Alcotest.(check bool) (what ^ ": batch cost") true (c = c'))
    batch_fresh batch_loaded

let save_exn idx path =
  match Engine.save idx path with
  | Ok bytes -> bytes
  | Error e -> Alcotest.failf "save: %s" (Store.error_to_string e)

let engine_roundtrip () =
  let idx = Lazy.force fixture in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let bytes = save_exn idx path in
  Alcotest.(check bool) "non-trivial file" true (bytes > 100);
  match Engine.load path with
  | Error e -> Alcotest.failf "load: %s" (Store.error_to_string e)
  | Ok loaded -> check_identical "fixture" idx loaded (fixture_requests idx)

let engine_rejects_damage () =
  let idx = Lazy.force fixture in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  ignore (save_exn idx path);
  let whole = read_file path in
  let size = String.length whole in
  (* the specific classes: flipped payload byte, truncation, version
     bump, wrong magic *)
  flip_byte path (size / 2);
  expect_error "mid-file flip"
    (function Store.Checksum_mismatch _ -> true | _ -> false)
    (Engine.load path);
  write_file path (String.sub whole 0 (size / 2));
  expect_error "half file"
    (function Store.Truncated _ -> true | _ -> false)
    (Engine.load path);
  write_file path whole;
  flip_byte path 8;
  expect_error "version bump"
    (function
      | Store.Version_skew { expected; _ } -> expected = Engine.format_version
      | _ -> false)
    (Engine.load path);
  write_file path whole;
  flip_byte path 3;
  expect_error "magic"
    (function Store.Bad_magic -> true | _ -> false)
    (Engine.load path)

(* CRC-32 detects every single-byte error, so *any* flipped byte must
   yield a typed error — sweep the file with a prime stride *)
let engine_flip_sweep () =
  let idx = Lazy.force fixture in
  let path = temp_snap () in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  ignore (save_exn idx path);
  let whole = read_file path in
  let size = String.length whole in
  let pos = ref 0 in
  while !pos < size do
    write_file path whole;
    flip_byte path !pos;
    expect_error
      (Printf.sprintf "flip at byte %d" !pos)
      (fun _ -> true)
      (Engine.load path);
    pos := !pos + 251
  done

(* ------------------------------------------------------------------ *)
(* randomized round-trip differential                                   *)
(* ------------------------------------------------------------------ *)

let n_instances = 50
let base_seed = 0x5A9

let run_one i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = Diff_harness.gen_instance seed in
    match Diff_harness.build_index inst with
    | exception Diff_harness.Skip reason ->
        if k >= 20 then
          Alcotest.failf "instance %d: no buildable query after %d tries (%s)"
            i (k + 1) reason
        else attempt (k + 1)
    | idx, _ ->
        let path = temp_snap () in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        ignore (save_exn idx path);
        (match Engine.load path with
        | Error e ->
            Alcotest.failf "instance %d (seed %d): load: %s" i seed
              (Store.error_to_string e)
        | Ok loaded ->
            check_identical
              (Printf.sprintf "instance %d (seed %d)" i seed)
              idx loaded
              [ inst.Diff_harness.q_a ])
  in
  attempt 0

let test_differential () =
  for i = 0 to n_instances - 1 do
    run_one i
  done

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "int round trips" `Quick roundtrip_ints;
          Alcotest.test_case "row blocks round trip" `Quick roundtrip_rows;
          Alcotest.test_case "decoder rejects bad input" `Quick decoder_rejects;
          Alcotest.test_case "crc32 known vector" `Quick crc_known_vector;
        ] );
      ( "container",
        [
          Alcotest.test_case "write/read round trip" `Quick container_roundtrip;
          Alcotest.test_case "damage maps to typed errors" `Quick
            container_rejects_damage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "snapshot round trip is observationally identical"
            `Quick engine_roundtrip;
          Alcotest.test_case "damaged snapshots are rejected" `Quick
            engine_rejects_damage;
          Alcotest.test_case "every flipped byte is caught" `Slow
            engine_flip_sweep;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random instances round-trip" n_instances)
            `Slow test_differential;
        ] );
    ]
