(* End-to-end engine: exactness against brute force for every query
   family, across budgets, on random databases — the main integration
   test of the repository. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_workload

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let check_equal_answers q db budget requests =
  let idx = Engine.build_auto q ~db ~budget in
  let q_a =
    Relation.of_list (Engine.access_schema idx) (List.map Array.of_list requests)
  in
  let got = sorted (Engine.answer idx ~q_a) in
  let expected = sorted (Db.eval_access db q ~q_a) in
  Alcotest.check Alcotest.(list (list int)) "answers" expected got

let graph_db edges =
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  db

let small_graph = Graphs.zipf_both ~seed:3 ~vertices:60 ~edges:500 ~s:1.1

let requests_2 n seed =
  let rng = Rng.create seed in
  List.init n (fun _ -> [ Rng.int rng 60; Rng.int rng 60 ])

let test_2reach_budgets () =
  List.iter
    (fun budget ->
      check_equal_answers (Cq.Library.k_path 2) (graph_db small_graph) budget
        (requests_2 40 7))
    [ 1; 30; 300; 100000 ]

let test_3reach_budgets () =
  List.iter
    (fun budget ->
      check_equal_answers (Cq.Library.k_path 3) (graph_db small_graph) budget
        (requests_2 25 8))
    [ 1; 300; 100000 ]

let test_square () =
  let edges = Graphs.cycle_rich ~seed:5 ~vertices:40 ~edges:300 in
  List.iter
    (fun budget ->
      check_equal_answers Cq.Library.square (graph_db edges) budget
        (requests_2 30 9))
    [ 1; 200; 50000 ]

let test_set_disjointness () =
  let members = Sets.zipf_sizes ~seed:6 ~universe:80 ~sets:30 ~memberships:400 ~s:1.2 in
  let db = Db.create () in
  Db.add_pairs db "R" members;
  let rng = Rng.create 10 in
  let requests = List.init 30 (fun _ -> [ Rng.int rng 30; Rng.int rng 30 ]) in
  List.iter
    (fun budget ->
      check_equal_answers (Cq.Library.k_set_disjointness 2) db budget requests)
    [ 1; 100; 50000 ]

let test_hierarchical () =
  let q = Cq.Library.hierarchical_binary in
  let inst = Stt_apps.Hierarchical.generate ~seed:4 ~posts:20 ~size:150 in
  let db = Db.create () in
  let add name triples =
    Db.add db name (List.map (fun (x, y, z) -> [| x; y; z |]) triples)
  in
  add "R" inst.Stt_apps.Hierarchical.r;
  add "S" inst.Stt_apps.Hierarchical.s;
  add "T" inst.Stt_apps.Hierarchical.t;
  add "U" inst.Stt_apps.Hierarchical.u;
  let rng = Rng.create 11 in
  let zdom = 20 in
  let requests =
    List.init 25 (fun _ ->
        [ Rng.int rng zdom; Rng.int rng zdom; Rng.int rng zdom; Rng.int rng zdom ])
  in
  List.iter
    (fun budget -> check_equal_answers q db budget requests)
    [ 1; 500; 200000 ]

let test_triangle_empty_access () =
  let edges = Graphs.uniform ~seed:12 ~vertices:25 ~edges:120 in
  let db = graph_db edges in
  let idx = Engine.build_auto Cq.Library.triangle_detect ~db ~budget:100000 in
  let q_a = Relation.create (Schema.of_list []) in
  Relation.add q_a [||];
  let got = sorted (Engine.answer idx ~q_a) in
  let expected =
    Stt_apps.Patterns.Triangle.naive edges |> List.map (fun (a, b) -> [ a; b ])
  in
  Alcotest.check Alcotest.(list (list int)) "triangle pairs" expected got

let test_batched_requests () =
  (* batching many requests at once must equal per-request answers *)
  let db = graph_db small_graph in
  let q = Cq.Library.k_path 2 in
  let idx = Engine.build_auto q ~db ~budget:300 in
  let requests = requests_2 30 13 in
  let batched =
    sorted
      (Engine.answer idx
         ~q_a:
           (Relation.of_list (Engine.access_schema idx)
              (List.map Array.of_list requests)))
  in
  let singly =
    List.filter (fun req -> Engine.answer_tuple idx (Array.of_list req)) requests
    |> List.sort_uniq compare
  in
  Alcotest.check Alcotest.(list (list int)) "batched = singly" singly batched

let test_space_reported () =
  let db = graph_db small_graph in
  let idx0 = Engine.build_auto (Cq.Library.k_path 2) ~db ~budget:1 in
  let idx_big = Engine.build_auto (Cq.Library.k_path 2) ~db ~budget:1_000_000 in
  Alcotest.check Alcotest.bool "more budget, more space" true
    (Engine.space idx_big >= Engine.space idx0);
  Alcotest.check Alcotest.bool "tiny budget, no space" true
    (Engine.space idx0 <= 4)

(* total_space must stay the sum of every store the engine holds —
   intrinsic views, answer cache, aggregate tables — in one unit, at
   every stage of attach/serve/enable *)
let test_total_space () =
  let db = graph_db small_graph in
  let q = Cq.Library.k_path 2 in
  let idx = Engine.build_auto q ~db ~budget:300 in
  let parts () =
    Engine.space idx + Engine.cache_space idx + Engine.agg_table_size idx
  in
  Alcotest.(check int) "bare engine" (parts ()) (Engine.total_space idx);
  Engine.attach_cache idx ~budget:500;
  List.iter
    (fun req -> ignore (Engine.answer_tuple idx (Array.of_list req)))
    (requests_2 40 21);
  Alcotest.(check bool) "cache holds something" true (Engine.cache_space idx > 0);
  Alcotest.(check int) "with warm cache" (parts ()) (Engine.total_space idx);
  Engine.enable_agg idx ~db ~budget:10_000;
  Alcotest.(check bool) "agg tables hold something" true
    (Engine.agg_table_size idx > 0);
  Alcotest.(check int) "with aggregates" (parts ()) (Engine.total_space idx);
  Alcotest.(check bool) "strictly above intrinsic space" true
    (Engine.total_space idx > Engine.space idx)

(* randomized integration sweep *)
let digraph_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 80) (pair (int_range 0 11) (int_range 0 11)))
      (pair (int_range 0 3) (list_size (int_range 1 6) (pair (int_range 0 11) (int_range 0 11)))))

let qcheck_cases =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"2-reach random graphs and budgets" ~count:40
         digraph_gen
         (fun (edges, (b_exp, reqs)) ->
           let budget = [| 1; 50; 2000; 100000 |].(b_exp) in
           let db = graph_db edges in
           let q = Cq.Library.k_path 2 in
           let idx = Engine.build_auto q ~db ~budget in
           List.for_all
             (fun (u, v) ->
               Engine.answer_tuple idx [| u; v |]
               = not
                   (Relation.is_empty
                      (Db.eval_access db q
                         ~q_a:
                           (Relation.of_list (Schema.of_list [ 0; 2 ])
                              [ [| u; v |] ]))))
             reqs));
  ]

let () =
  Alcotest.run "engine"
    [
      ( "exactness",
        [
          Alcotest.test_case "2-reach across budgets" `Quick test_2reach_budgets;
          Alcotest.test_case "3-reach across budgets" `Quick test_3reach_budgets;
          Alcotest.test_case "square" `Quick test_square;
          Alcotest.test_case "2-set disjointness" `Quick test_set_disjointness;
          Alcotest.test_case "hierarchical" `Quick test_hierarchical;
          Alcotest.test_case "triangle (empty access)" `Quick
            test_triangle_empty_access;
          Alcotest.test_case "batched requests" `Quick test_batched_requests;
          Alcotest.test_case "space accounting" `Quick test_space_reported;
          Alcotest.test_case "total_space sums every store" `Quick
            test_total_space;
        ] );
      ("random", qcheck_cases);
    ]
