(* Determinism of the parallel build and the batched answer path.

   The domain pool's contract is that job count is invisible: building
   with 1 worker and with 4 workers must produce identical structures,
   identical answers and identical merged Cost snapshots.  We check it
   on a handful of differential-harness instances (random CQAPs, random
   databases), and separately check Pool.map's ordering/merging and that
   [Engine.answer_batch] agrees with per-request [Engine.answer]. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_workload

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let test_pool_map_order () =
  List.iter
    (fun jobs ->
      let xs = List.init 37 Fun.id in
      let ys = Pool.map ~jobs (fun x -> (x * x) + 1) xs in
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at %d jobs" jobs)
        (List.map (fun x -> (x * x) + 1) xs)
        ys)
    [ 1; 2; 4 ]

let test_pool_map_exception () =
  match
    Pool.map ~jobs:4
      (fun x -> if x = 5 then failwith "boom" else x)
      (List.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let test_pool_merges_costs () =
  (* every task charges; the merged totals in the parent must equal the
     sequential sum regardless of the job count *)
  let work x =
    for _ = 1 to x do
      Cost.charge_probe ()
    done;
    x
  in
  let xs = List.init 20 (fun i -> i + 1) in
  let expected = List.fold_left ( + ) 0 xs in
  List.iter
    (fun jobs ->
      let (), snap =
        Cost.scoped (fun () -> ignore (Pool.map ~jobs work xs))
      in
      Alcotest.check Alcotest.int
        (Printf.sprintf "probes at %d jobs" jobs)
        expected snap.Cost.probes)
    [ 1; 4 ]

let test_pool_respects_counting_flag () =
  let (), snap =
    Cost.scoped (fun () ->
        Cost.with_counting false (fun () ->
            ignore
              (Pool.map ~jobs:4
                 (fun x ->
                   Cost.charge_scan ();
                   x)
                 (List.init 8 Fun.id))))
  in
  Alcotest.check Alcotest.int "workers inherit disabled counting" 0
    (Cost.total snap)

(* build + answer one differential-harness instance at a given job
   count, returning everything observable: space, per-PMTD spaces, the
   sorted answer and the online cost snapshot *)
let run_instance i jobs =
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) @@ fun () ->
  let rec attempt k =
    let inst = Diff_harness.gen_instance (0xBEEF + (1000 * i) + k) in
    match Diff_harness.build_index inst with
    | exception Diff_harness.Skip _ when k < 20 -> attempt (k + 1)
    | exception Diff_harness.Skip reason ->
        Alcotest.failf "instance %d: unbuildable (%s)" i reason
    | idx, _ ->
        let answer, snap =
          Cost.scoped (fun () -> Engine.answer idx ~q_a:inst.Diff_harness.q_a)
        in
        ( Engine.space idx,
          List.map snd (Engine.per_pmtd_space idx),
          sorted answer,
          snap )
  in
  attempt 0

let test_jobs_determinism () =
  for i = 0 to 9 do
    let space1, per1, ans1, cost1 = run_instance i 1 in
    let space4, per4, ans4, cost4 = run_instance i 4 in
    Alcotest.check Alcotest.int
      (Printf.sprintf "instance %d: space" i)
      space1 space4;
    Alcotest.(check (list int))
      (Printf.sprintf "instance %d: per-PMTD space" i)
      per1 per4;
    Alcotest.(check (list (list int)))
      (Printf.sprintf "instance %d: answers" i)
      ans1 ans4;
    Alcotest.check Alcotest.int
      (Printf.sprintf "instance %d: online probes" i)
      cost1.Cost.probes cost4.Cost.probes;
    Alcotest.check Alcotest.int
      (Printf.sprintf "instance %d: online tuples" i)
      cost1.Cost.tuples cost4.Cost.tuples;
    Alcotest.check Alcotest.int
      (Printf.sprintf "instance %d: online scans" i)
      cost1.Cost.scans cost4.Cost.scans
  done

let test_answer_batch_matches_answer () =
  (* a real sliceable query (k-path: access = head endpoints) with a
     duplicate-heavy request stream *)
  let q = Cq.Library.k_path 2 in
  let edges = Graphs.zipf_both ~seed:71 ~vertices:120 ~edges:1_500 ~s:1.2 in
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  let idx = Engine.build_auto ~max_pmtds:64 q ~db ~budget:500 in
  let schema = Engine.access_schema idx in
  let rng = Rng.create 5 in
  let sample = Rng.zipf_sampler rng ~n:120 ~s:1.4 in
  let reqs =
    List.init 100 (fun _ ->
        Relation.singleton schema [| sample (); sample () |])
  in
  let batched, batch_cost =
    Cost.scoped (fun () -> Engine.answer_batch idx reqs)
  in
  let singles, single_cost =
    Cost.scoped (fun () -> List.map (fun q_a -> Engine.answer idx ~q_a) reqs)
  in
  List.iteri
    (fun i ((b, _), s) ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "request %d answer" i)
        (sorted s) (sorted b))
    (List.combine batched singles);
  (* per-request shares sum exactly to the counted batch total *)
  let sum =
    List.fold_left (fun acc (_, c) -> Cost.add acc c) Cost.zero batched
  in
  Alcotest.check Alcotest.int "shares sum to batch total (probes)"
    batch_cost.Cost.probes sum.Cost.probes;
  Alcotest.check Alcotest.int "shares sum to batch total (tuples)"
    batch_cost.Cost.tuples sum.Cost.tuples;
  Alcotest.check Alcotest.int "shares sum to batch total (scans)"
    batch_cost.Cost.scans sum.Cost.scans;
  (* sharing must not cost more ops than answering one by one *)
  if Cost.total batch_cost > Cost.total single_cost then
    Alcotest.failf "batch costs more than per-request answering (%d > %d)"
      (Cost.total batch_cost) (Cost.total single_cost)

let test_answer_batch_non_sliceable () =
  (* boolean-style query whose access variables are not in the head:
     falls back to memoized per-request answering, results still match *)
  let q = Cq.Library.k_set_disjointness 2 in
  let memberships =
    Sets.zipf_sizes ~seed:31 ~universe:200 ~sets:60 ~memberships:1_200 ~s:1.2
  in
  let db = Db.create () in
  Db.add_pairs db "R" memberships;
  let idx = Engine.build_auto ~max_pmtds:64 q ~db ~budget:400 in
  let schema = Engine.access_schema idx in
  let rng = Rng.create 6 in
  let reqs =
    List.init 40 (fun _ ->
        Relation.singleton schema [| Rng.int rng 60; Rng.int rng 60 |])
  in
  let batched = Engine.answer_batch idx reqs in
  List.iteri
    (fun i ((b, _), q_a) ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "request %d answer" i)
        (sorted (Engine.answer idx ~q_a))
        (sorted b))
    (List.combine batched reqs)

let test_env_jobs_parsing () =
  Alcotest.check Alcotest.bool "jobs is positive" true (Pool.jobs () >= 1);
  Pool.set_jobs 3;
  Alcotest.check Alcotest.int "set_jobs" 3 (Pool.jobs ());
  Pool.set_jobs 1;
  Alcotest.check Alcotest.bool "set_jobs rejects 0" true
    (match Pool.set_jobs 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "map re-raises" `Quick test_pool_map_exception;
          Alcotest.test_case "map merges costs" `Quick test_pool_merges_costs;
          Alcotest.test_case "map respects counting flag" `Quick
            test_pool_respects_counting_flag;
          Alcotest.test_case "jobs knob" `Quick test_env_jobs_parsing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "STT_JOBS=1 vs 4: identical builds and costs"
            `Slow test_jobs_determinism;
        ] );
      ( "batch",
        [
          Alcotest.test_case "answer_batch = answer (sliceable)" `Quick
            test_answer_batch_matches_answer;
          Alcotest.test_case "answer_batch = answer (fallback)" `Quick
            test_answer_batch_non_sliceable;
        ] );
    ]
