(* The network serving layer, bottom to top.

   The frame codec round-trips arbitrary requests and responses and —
   thanks to the per-frame CRC — rejects every truncation and every
   single-byte corruption with a typed error, never a crash.  On top, an
   in-process loopback server must answer exactly what a direct
   [Engine.answer_batch] call answers (rows and op counts), shed with
   [Overloaded] when its bounded queue is full, reject blown deadlines
   with [Deadline_exceeded], and — the drain property — answer every
   already-accepted request even after [stop]. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
module Frame = Stt_net.Frame
module Server = Stt_net.Server
module Client = Stt_net.Client
module Loadgen = Stt_net.Loadgen
module Netbuf = Stt_net.Netbuf
module Evloop = Stt_net.Evloop

(* ------------------------------------------------------------------ *)
(* frame codec: round trips                                             *)
(* ------------------------------------------------------------------ *)

let gen_tuples =
  QCheck.Gen.(
    sized_size (int_bound 6) @@ fun arity ->
    list_size (int_bound 20)
      (array_size (return arity) (int_bound 1_000_000))
    >|= fun tuples -> (arity, tuples))

let gen_update =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fun arity ->
    string_size ~gen:(char_range 'a' 'z') (int_range 1 12) >>= fun urel ->
    array_size (return arity) (int_bound 1_000_000) >>= fun utuple ->
    bool >|= fun uadd -> { Frame.urel; utuple; uadd })

let gen_request =
  QCheck.Gen.(
    oneof
      [
        ( gen_tuples >>= fun (arity, tuples) ->
          int_bound 1_000_000 >>= fun id ->
          int_bound 10_000_000 >|= fun deadline_us ->
          Frame.Answer { id; deadline_us; arity; tuples } );
        ( int_bound 1_000_000 >>= fun id ->
          list_size (int_bound 10) gen_update >|= fun deltas ->
          Frame.Update { id; deltas } );
        ( gen_tuples >>= fun (arity, tuples) ->
          int_bound 1_000_000 >>= fun id ->
          int_bound 10_000_000 >>= fun deadline_us ->
          int_range 1 4 >|= fun kind ->
          Frame.Agg { id; deadline_us; kind; arity; tuples } );
        (int_bound 1_000_000 >|= fun id -> Frame.Stats { id });
        (int_bound 1_000_000 >|= fun id -> Frame.Health { id });
      ])

let gen_cost =
  QCheck.Gen.(
    triple (int_bound 10_000) (int_bound 10_000) (int_bound 10_000)
    >|= fun (probes, tuples, scans) -> { Cost.probes; tuples; scans })

let gen_answer =
  QCheck.Gen.(
    gen_tuples >>= fun (row_arity, rows) ->
    gen_cost >|= fun cost -> { Frame.rows; row_arity; cost })

(* v5 health blocks nest: a router's block carries one sub-block per
   shard, a replica's shard list is empty — generate both shapes *)
let gen_health ~shards =
  QCheck.Gen.(
    let leaf =
      quad bool (int_bound 100_000) (int_bound 64) (int_bound 4096)
      >>= fun (ready, space, workers, queue_capacity) ->
      quad (int_bound 100_000) (int_bound 100_000) (int_bound 10_000)
        (pair (int_bound 1_000_000) (int_bound 1_000_000))
      >>= fun (cache_budget, cache_used, cache_entries, (hits, misses)) ->
      pair (int_bound 4096) (int_bound 1_000_000_000)
      >>= fun (queue_depth, uptime_ns) ->
      int_bound 100_000 >>= fun agg_space ->
      oneofl [ "epoll"; "select" ] >|= fun io_backend ->
      {
        Frame.ready;
        space;
        agg_space;
        workers;
        queue_capacity;
        queue_depth;
        uptime_ns;
        cache =
          {
            Frame.cache_budget;
            cache_used;
            cache_entries;
            cache_hits = hits;
            cache_misses = misses;
          };
        io_backend;
        shards = [];
      }
    in
    if not shards then leaf
    else
      leaf >>= fun top ->
      list_size (int_bound 4)
        (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) leaf)
      >|= fun subs -> { top with Frame.shards = subs })

let gen_response =
  QCheck.Gen.(
    oneof
      [
        ( int_bound 1_000_000 >>= fun id ->
          list_size (int_bound 8) gen_answer >|= fun answers ->
          Frame.Answers { id; answers } );
        ( int_bound 1_000_000 >>= fun id ->
          oneof
            [
              return Frame.Overloaded;
              return Frame.Deadline_exceeded;
              (string_size (int_bound 40) >|= fun m -> Frame.Bad_request m);
            ]
          >|= fun reject -> Frame.Rejected { id; reject } );
        ( int_bound 1_000_000 >>= fun id ->
          pair (int_bound 1_000_000) (int_bound 10_000)
          >>= fun (epoch, applied) ->
          gen_cost >|= fun cost -> Frame.Updated { id; epoch; applied; cost }
        );
        ( int_bound 1_000_000 >>= fun id ->
          (* the tropical identities travel as tagged sentinels, so force
             them into the sampled range *)
          oneof
            [ int_bound 1_000_000; oneofl [ max_int; min_int; -1; -7 ] ]
          >>= fun value ->
          gen_cost >|= fun cost -> Frame.Agg_reply { id; value; cost } );
        ( int_bound 1_000_000 >>= fun id ->
          string_size (int_bound 200) >|= fun json ->
          Frame.Stats_reply { id; json } );
        ( int_bound 1_000_000 >>= fun id ->
          gen_health ~shards:true >|= fun health ->
          Frame.Health_reply { id; health } );
      ])

let request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request round-trips"
    (QCheck.make gen_request) (fun req ->
      match Frame.decode_request (Frame.encode_request req) with
      | Ok req' -> req = req'
      | Error e -> QCheck.Test.fail_reportf "%s" (Frame.error_to_string e))

let response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response round-trips"
    (QCheck.make gen_response) (fun resp ->
      match Frame.decode_response (Frame.encode_response resp) with
      | Ok resp' -> resp = resp'
      | Error e -> QCheck.Test.fail_reportf "%s" (Frame.error_to_string e))

(* ------------------------------------------------------------------ *)
(* frame codec: damage                                                  *)
(* ------------------------------------------------------------------ *)

let sample_blobs =
  lazy
    [
      Frame.encode_request
        (Frame.Answer
           {
             id = 7;
             deadline_us = 250_000;
             arity = 2;
             tuples = [ [| 1; 2 |]; [| 3; 4 |]; [| 3; 5 |] ];
           });
      Frame.encode_request (Frame.Stats { id = 1 });
      Frame.encode_request
        (Frame.Update
           {
             id = 12;
             deltas =
               [
                 { Frame.urel = "R"; utuple = [| 3; 4 |]; uadd = true };
                 { Frame.urel = "R"; utuple = [| 5; 6 |]; uadd = false };
               ];
           });
      Frame.encode_response
        (Frame.Updated
           {
             id = 12;
             epoch = 9;
             applied = 2;
             cost = { Cost.probes = 4; tuples = 1; scans = 0 };
           });
      Frame.encode_response
        (Frame.Answers
           {
             id = 7;
             answers =
               [
                 {
                   Frame.rows = [ [| 1; 2; 3 |]; [| 4; 5; 6 |] ];
                   row_arity = 3;
                   cost = { Cost.probes = 10; tuples = 2; scans = 5 };
                 };
               ];
           });
      Frame.encode_response
        (Frame.Rejected { id = 3; reject = Frame.Bad_request "nope" });
      Frame.encode_request
        (Frame.Agg
           {
             id = 21;
             deadline_us = 250_000;
             kind = 3;
             arity = 2;
             tuples = [ [| 1; 2 |]; [| 3; 4 |] ];
           });
      Frame.encode_response
        (Frame.Agg_reply
           {
             id = 21;
             value = max_int;
             cost = { Cost.probes = 2; tuples = 2; scans = 0 };
           });
    ]

(* decoding never crashes and never silently succeeds on damaged bytes *)
let expect_rejected what = function
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what
  | Error _ -> ()

let truncation_sweep () =
  List.iter
    (fun blob ->
      for keep = 0 to String.length blob - 1 do
        let prefix = String.sub blob 0 keep in
        expect_rejected
          (Printf.sprintf "request prefix of %d bytes" keep)
          (Frame.decode_request prefix);
        expect_rejected
          (Printf.sprintf "response prefix of %d bytes" keep)
          (Frame.decode_response prefix)
      done)
    (Lazy.force sample_blobs)

let flip_sweep () =
  List.iter
    (fun blob ->
      for pos = 0 to String.length blob - 1 do
        for bit = 0 to 7 do
          let damaged = Bytes.of_string blob in
          Bytes.set damaged pos
            (Char.chr (Char.code blob.[pos] lxor (1 lsl bit)));
          let damaged = Bytes.to_string damaged in
          expect_rejected
            (Printf.sprintf "request flip byte %d bit %d" pos bit)
            (Frame.decode_request damaged);
          expect_rejected
            (Printf.sprintf "response flip byte %d bit %d" pos bit)
            (Frame.decode_response damaged)
        done
      done)
    (Lazy.force sample_blobs)

let hello_checks () =
  Alcotest.(check bool)
    "own hello accepted" true
    (Frame.check_hello Frame.hello = Ok ());
  (match Frame.check_hello ("XXXXXXXX" ^ String.make 4 '\000') with
  | Error Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic not detected");
  let skewed = String.sub Frame.hello 0 8 ^ "\x63\x00\x00\x00" in
  (match Frame.check_hello skewed with
  | Error (Frame.Version_skew { found = 0x63; _ }) -> ()
  | _ -> Alcotest.fail "version skew not detected");
  (* an older peer (pre-agg_space health) must be refused by a v7 server *)
  Alcotest.(check int) "agg_space health bumped the protocol to v7" 7
    Frame.protocol_version;
  let v6 = String.sub Frame.hello 0 8 ^ "\x06\x00\x00\x00" in
  (match Frame.check_hello v6 with
  | Error (Frame.Version_skew { found = 6; expected = 7 }) -> ()
  | _ -> Alcotest.fail "v6 hello not rejected by v7");
  match Frame.check_hello "short" with
  | Error (Frame.Truncated _) -> ()
  | _ -> Alcotest.fail "short hello not detected"

(* ------------------------------------------------------------------ *)
(* zero-copy path: Netbuf framing = Codec framing, in-place decoding    *)
(* ------------------------------------------------------------------ *)

(* the Netbuf encoders and the Codec encoders are generated from the
   same Body functor, so their wire images must be byte-identical:
   [prefix ^ encode_request req] = what encode_request_into frames *)
let netbuf_framing_equiv ~name gen encode encode_into =
  QCheck.Test.make ~count:300 ~name (QCheck.make gen) (fun v ->
      let blob = encode v in
      let b = Netbuf.create 8 in
      encode_into b v;
      let framed = Netbuf.contents b in
      Frame.peek_len framed ~pos:0 = String.length blob
      && String.length framed = 4 + String.length blob
      && String.sub framed 4 (String.length blob) = blob)

let netbuf_request_equiv =
  netbuf_framing_equiv ~name:"Netbuf request framing = Codec framing"
    gen_request Frame.encode_request Frame.encode_request_into

let netbuf_response_equiv =
  netbuf_framing_equiv ~name:"Netbuf response framing = Codec framing"
    gen_response Frame.encode_response Frame.encode_response_into

(* two frames encoded back to back into one buffer decode in place via
   peek_len + decode_*_sub — the server's read path, without the
   per-frame copy *)
let decode_sub_roundtrip =
  QCheck.Test.make ~count:300 ~name:"in-place decode over a shared buffer"
    (QCheck.make QCheck.Gen.(pair gen_request gen_response))
    (fun (req, resp) ->
      let b = Netbuf.create 8 in
      Frame.encode_request_into b req;
      Frame.encode_response_into b resp;
      let s = Netbuf.contents b in
      let len1 = Frame.peek_len s ~pos:0 in
      let pos2 = 4 + len1 in
      let len2 = Frame.peek_len s ~pos:pos2 in
      pos2 + 4 + len2 = String.length s
      && Frame.decode_request_sub s ~pos:4 ~len:len1 = Ok req
      && Frame.decode_response_sub s ~pos:(pos2 + 4) ~len:len2 = Ok resp)

(* ------------------------------------------------------------------ *)
(* nonblocking writes: partial writes, EAGAIN resumption, ordering      *)
(* ------------------------------------------------------------------ *)

let drain_nonblocking fd buf into =
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes into buf 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let eagain_resumption () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  (* shrink the socket buffer so the payload cannot fit in one write;
     even if the OS ignores the hint, 4 MB beats any default buffer *)
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let payload = String.init 4_000_000 (fun i -> Char.chr (i land 0xff)) in
  let src = Bytes.of_string payload in
  let pending = Netbuf.create 64 in
  (match Netbuf.write_or_stash a ~pending src ~pos:0 ~len:(Bytes.length src) with
  | Netbuf.Again -> ()
  | Netbuf.Flushed -> Alcotest.fail "4 MB fit the socket buffer?"
  | Netbuf.Gone -> Alcotest.fail "peer gone");
  Alcotest.(check bool) "remainder queued on EAGAIN" true
    (Netbuf.length pending > 0);
  (* a second write while bytes are pending must queue *behind* them,
     never interleave *)
  let tail = Bytes.of_string "TAIL" in
  (match Netbuf.write_or_stash a ~pending tail ~pos:0 ~len:4 with
  | Netbuf.Again -> ()
  | _ -> Alcotest.fail "write with non-empty pending must stash");
  (* reader and flusher in lockstep until the queue drains *)
  let received = Buffer.create (String.length payload + 4) in
  let rbuf = Bytes.create 65536 in
  Unix.set_nonblock b;
  let rec pump guard =
    if guard = 0 then Alcotest.fail "flush never completed";
    drain_nonblocking b rbuf received;
    match Netbuf.flush a pending with
    | Netbuf.Flushed -> ()
    | Netbuf.Again -> pump (guard - 1)
    | Netbuf.Gone -> Alcotest.fail "peer gone mid-flush"
  in
  pump 10_000;
  Alcotest.(check int) "pending empty after Flushed" 0 (Netbuf.length pending);
  let total = String.length payload + 4 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Buffer.length received < total && Unix.gettimeofday () < deadline do
    drain_nonblocking b rbuf received
  done;
  Alcotest.(check int) "every byte arrived" total (Buffer.length received);
  Alcotest.(check bool) "bytes arrived unmangled, in order" true
    (Buffer.contents received = payload ^ "TAIL");
  Unix.close a;
  Unix.close b

(* blocking Frame.write_frame against a tiny socket buffer: the
   really_write loop must survive short writes and deliver the frame
   intact to a concurrent reader *)
let write_frame_short_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096 with Unix.Unix_error _ -> ());
  let resp =
    Frame.Answers
      {
        id = 99;
        answers =
          [
            {
              Frame.rows = List.init 60_000 (fun i -> [| i; i + 1; i * 3 |]);
              row_arity = 3;
              cost = Cost.zero;
            };
          ];
      }
  in
  let blob = Frame.encode_response resp in
  let writer =
    Domain.spawn (fun () -> Frame.write_frame a blob)
  in
  let got =
    match Frame.read_frame b with
    | Ok s -> s
    | Error e -> Alcotest.failf "read_frame: %s" (Frame.error_to_string e)
  in
  (match Domain.join writer with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write_frame: %s" (Frame.error_to_string e));
  Alcotest.(check bool) "frame bytes identical" true (got = blob);
  Alcotest.(check bool) "frame decodes to the original" true
    (Frame.decode_response got = Ok resp);
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Evloop: both backends through one readiness scenario                 *)
(* ------------------------------------------------------------------ *)

let evloop_scenario backend () =
  if not (Evloop.available backend) then
    Printf.printf "(%s unavailable here — skipped)\n"
      (Evloop.backend_name backend)
  else begin
    let loop = Evloop.create ~backend () in
    Alcotest.(check string)
      "requested backend" (Evloop.backend_name backend) (Evloop.name loop);
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock a;
    Unix.set_nonblock b;
    Evloop.add loop a;
    Alcotest.(check int) "watched" 1 (Evloop.watched_count loop);
    let events = ref [] in
    let cb fd ~readable ~writable =
      events := (fd, readable, writable) :: !events
    in
    let wait_for what pred =
      let rec go tries =
        if tries = 0 then Alcotest.failf "%s: event never arrived" what
        else begin
          events := [];
          ignore (Evloop.wait loop ~timeout_ms:1_000 cb);
          if not (List.exists pred !events) then go (tries - 1)
        end
      in
      go 5
    in
    (* idle: the wait times out with no events *)
    Alcotest.(check int) "idle loop delivers nothing" 0
      (Evloop.wait loop ~timeout_ms:50 cb);
    (* peer data: readable fires *)
    ignore (Unix.write b (Bytes.of_string "ping") 0 4);
    wait_for "readable after peer write" (fun (fd, r, _) -> fd = a && r);
    (* drain to EAGAIN — mandatory under edge triggering *)
    let rbuf = Bytes.create 16 in
    drain_nonblocking a rbuf (Buffer.create 16);
    (* write interest: an empty socket buffer reports writable *)
    Evloop.set_write loop a true;
    wait_for "writable after set_write" (fun (fd, _, w) -> fd = a && w);
    Evloop.set_write loop a false;
    Alcotest.(check int) "no events once write interest dropped" 0
      (Evloop.wait loop ~timeout_ms:50 cb);
    (* hangup surfaces as readable, so the read path observes the EOF *)
    Unix.close b;
    wait_for "hangup surfaces as readable" (fun (fd, r, _) -> fd = a && r);
    Evloop.remove loop a;
    Alcotest.(check int) "unwatched" 0 (Evloop.watched_count loop);
    Evloop.close loop;
    Unix.close a
  end

(* ------------------------------------------------------------------ *)
(* loopback fixture                                                     *)
(* ------------------------------------------------------------------ *)

let fixture =
  lazy
    (let q = Cq.Library.k_path 2 in
     let db = Stt_workload.Scenario.synthetic_db ~seed:11 ~vertices:300 ~edges:2500 in
     Engine.build_auto ~max_pmtds:128 q ~db ~budget:500)

let fixture_tuples n seed =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let rng = Stt_workload.Rng.create seed in
  List.init n (fun _ ->
      Array.init arity (fun _ -> Stt_workload.Rng.int rng 300))

let with_server ?(workers = 2) ?(queue = 64) ?io_backend ?update_handler
    ?agg_handler handler f =
  let server =
    Server.start ~port:0 ~workers ~queue_capacity:queue ?io_backend
      ?update_handler ?agg_handler handler
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      ignore (Server.wait server))
    (fun () -> f server)

let with_client server f =
  match Client.connect ~port:(Server.port server) () with
  | Error e -> Alcotest.failf "connect: %s" (Frame.error_to_string e)
  | Ok client -> Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let rpc_exn client req =
  match Client.rpc client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "rpc: %s" (Frame.error_to_string e)

let loopback_matches_direct () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let handler = Server.engine_handler idx in
  with_server handler @@ fun server ->
  with_client server @@ fun client ->
  (* several batches, including a repeated tuple inside one batch *)
  List.iteri
    (fun i tuples ->
      let expected = handler ~arity tuples in
      match rpc_exn client (Frame.Answer { id = i; deadline_us = 0; arity; tuples }) with
      | Frame.Answers { id; answers } ->
          Alcotest.(check int) "id echoed" i id;
          Alcotest.(check int) "answer per tuple" (List.length expected)
            (List.length answers);
          List.iter2
            (fun (rows, row_arity, cost) (a : Frame.answer) ->
              Alcotest.(check (list (array int))) "same rows" rows a.Frame.rows;
              Alcotest.(check int) "same arity" row_arity a.Frame.row_arity;
              Alcotest.(check bool) "same op counts" true (cost = a.Frame.cost))
            expected answers
      | _ -> Alcotest.fail "expected Answers")
    [
      fixture_tuples 5 21;
      fixture_tuples 16 22;
      (match fixture_tuples 1 23 with
      | [ t ] -> [ t; Array.copy t; t ]
      | _ -> assert false);
    ]

(* the select fallback must serve the exact same answers as the
   default (epoll where available) path *)
let select_backend_serves () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let handler = Server.engine_handler idx in
  with_server ~io_backend:Evloop.Select handler @@ fun server ->
  Alcotest.(check string) "server runs on select" "select"
    (Server.io_backend server);
  with_client server @@ fun client ->
  (match rpc_exn client (Frame.Health { id = 7 }) with
  | Frame.Health_reply { id = 7; health } ->
      Alcotest.(check string) "health says select" "select"
        health.Frame.io_backend
  | _ -> Alcotest.fail "expected Health_reply");
  let tuples = fixture_tuples 9 31 in
  let expected = handler ~arity tuples in
  match rpc_exn client (Frame.Answer { id = 1; deadline_us = 0; arity; tuples })
  with
  | Frame.Answers { id = 1; answers } ->
      List.iter2
        (fun (rows, _, _) (a : Frame.answer) ->
          Alcotest.(check (list (array int))) "same rows" rows a.Frame.rows)
        expected answers
  | _ -> Alcotest.fail "expected Answers"

let health_and_stats () =
  let idx = Lazy.force fixture in
  with_server ~workers:3 ~queue:17 (Server.engine_handler idx) @@ fun server ->
  with_client server @@ fun client ->
  (match rpc_exn client (Frame.Health { id = 42 }) with
  | Frame.Health_reply { id = 42; health } ->
      Alcotest.(check bool) "ready" true health.Frame.ready;
      Alcotest.(check int) "workers" 3 health.Frame.workers;
      Alcotest.(check int) "queue" 17 health.Frame.queue_capacity;
      Alcotest.(check string) "health reports the live io backend"
        (Server.io_backend server) health.Frame.io_backend;
      Alcotest.(check bool) "backend is a known one" true
        (List.mem health.Frame.io_backend [ "epoll"; "select" ])
  | _ -> Alcotest.fail "expected Health_reply");
  match rpc_exn client (Frame.Stats { id = 43 }) with
  | Frame.Stats_reply { id = 43; json } -> (
      match Stt_obs.Json.of_string json with
      | Ok (Stt_obs.Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "stats is not a JSON object"
      | Error e -> Alcotest.failf "stats JSON does not parse: %s" e)
  | _ -> Alcotest.fail "expected Stats_reply"

let slow_handler delay_s ~arity tuples =
  ignore arity;
  Unix.sleepf delay_s;
  List.map (fun t -> ([ t ], Array.length t, Cost.zero)) tuples

let deadline_enforced () =
  with_server ~workers:1 (slow_handler 0.05) @@ fun server ->
  with_client server @@ fun client ->
  (* 1 ms budget, 50 ms handler: the post-answer check must trip *)
  (match
     rpc_exn client
       (Frame.Answer
          { id = 1; deadline_us = 1_000; arity = 1; tuples = [ [| 5 |] ] })
   with
  | Frame.Rejected { id = 1; reject = Frame.Deadline_exceeded } -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  (* a generous budget answers normally *)
  match
    rpc_exn client
      (Frame.Answer
         { id = 2; deadline_us = 5_000_000; arity = 1; tuples = [ [| 5 |] ] })
  with
  | Frame.Answers { id = 2; answers = [ a ] } ->
      Alcotest.(check (list (array int))) "echoed" [ [| 5 |] ] a.Frame.rows
  | _ -> Alcotest.fail "expected Answers"

let overload_sheds () =
  (* one slow worker, queue of one: pipelining 10 frames must shed some
     with OVERLOADED, answer the rest, and reply exactly once per id *)
  with_server ~workers:1 ~queue:1 (slow_handler 0.05) @@ fun server ->
  with_client server @@ fun client ->
  let n = 10 in
  for id = 0 to n - 1 do
    match
      Client.send client
        (Frame.Answer
           { id; deadline_us = 0; arity = 1; tuples = [ [| id |] ] })
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "send %d: %s" id (Frame.error_to_string e)
  done;
  let seen = Array.make n 0 in
  let answered = ref 0 and shed = ref 0 in
  for _ = 1 to n do
    match Client.recv client with
    | Ok (Frame.Answers { id; answers = [ a ] }) ->
        seen.(id) <- seen.(id) + 1;
        incr answered;
        Alcotest.(check (list (array int)))
          "answered id echoes its tuple" [ [| id |] ] a.Frame.rows
    | Ok (Frame.Rejected { id; reject = Frame.Overloaded }) ->
        seen.(id) <- seen.(id) + 1;
        incr shed
    | Ok _ -> Alcotest.fail "unexpected response kind"
    | Error e -> Alcotest.failf "recv: %s" (Frame.error_to_string e)
  done;
  Array.iteri
    (fun id c -> Alcotest.(check int) (Printf.sprintf "id %d replied once" id) 1 c)
    seen;
  Alcotest.(check int) "all accounted" n (!answered + !shed);
  Alcotest.(check bool) "something was shed" true (!shed >= 1);
  Alcotest.(check bool) "something was answered" true (!answered >= 1)

let drain_answers_in_flight () =
  let server =
    Server.start ~port:0 ~workers:1 ~queue_capacity:8 (slow_handler 0.05)
  in
  match Client.connect ~port:(Server.port server) () with
  | Error e -> Alcotest.failf "connect: %s" (Frame.error_to_string e)
  | Ok client ->
      (match
         Client.send client
           (Frame.Answer
              { id = 9; deadline_us = 0; arity = 1; tuples = [ [| 1 |]; [| 2 |] ] })
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (Frame.error_to_string e));
      (* let the IO loop queue it, then begin the drain *)
      Unix.sleepf 0.02;
      Server.stop server;
      (match Client.recv client with
      | Ok (Frame.Answers { id = 9; answers }) ->
          Alcotest.(check int) "both tuples answered" 2 (List.length answers)
      | Ok _ -> Alcotest.fail "unexpected response"
      | Error e -> Alcotest.failf "recv after stop: %s" (Frame.error_to_string e));
      Client.close client;
      let stats = Server.wait server in
      Alcotest.(check int) "answered" 1 stats.Server.answered;
      Alcotest.(check int) "received" 1 stats.Server.received

(* ------------------------------------------------------------------ *)
(* protocol v3: updates over the wire                                   *)
(* ------------------------------------------------------------------ *)

(* a private twin pair — the served engine takes its deltas over the
   wire, the direct engine applies them in-process, and every answer
   and every Updated reply must agree (the shared [fixture] engine must
   stay immutable for the other tests) *)
let churn_fixture () =
  Engine.build_auto ~max_pmtds:128 (Cq.Library.k_path 2)
    ~db:(Stt_workload.Scenario.synthetic_db ~seed:12 ~vertices:100 ~edges:800)
    ~budget:300

let updates_interleave_with_answers () =
  let served = churn_fixture () and direct = churn_fixture () in
  let arity = Schema.arity (Engine.access_schema served) in
  let direct_handler = Server.engine_handler direct in
  with_server
    ~update_handler:(Server.engine_update_handler served)
    (Server.engine_handler served)
  @@ fun server ->
  with_client server @@ fun client ->
  let check_answer id t =
    let expected = direct_handler ~arity [ t ] in
    match
      rpc_exn client
        (Frame.Answer { id; deadline_us = 0; arity; tuples = [ t ] })
    with
    | Frame.Answers { id = id'; answers } ->
        Alcotest.(check int) "id echoed" id id';
        List.iter2
          (fun (rows, row_arity, cost) (a : Frame.answer) ->
            Alcotest.(check (list (array int))) "same rows" rows a.Frame.rows;
            Alcotest.(check int) "same arity" row_arity a.Frame.row_arity;
            Alcotest.(check bool) "same op counts" true (cost = a.Frame.cost))
          expected answers
    | _ -> Alcotest.fail "expected Answers"
  in
  let check_update id deltas =
    let expected_applied, expected_cost =
      Engine.apply_deltas direct
        (List.map
           (fun { Frame.urel; utuple; uadd } -> (urel, utuple, uadd))
           deltas)
    in
    match rpc_exn client (Frame.Update { id; deltas }) with
    | Frame.Updated { id = id'; epoch; applied; cost } ->
        Alcotest.(check int) "id echoed" id id';
        Alcotest.(check int) "twin epochs agree" (Engine.epoch direct) epoch;
        Alcotest.(check int) "twin applied counts agree" expected_applied
          applied;
        Alcotest.(check bool) "twin maintenance costs agree" true
          (expected_cost = cost)
    | _ -> Alcotest.fail "expected Updated"
  in
  (* a churn stream interleaving single-delta updates with answers *)
  let ops =
    Stt_workload.Scenario.churn_ops ~seed:12 ~vertices:100 ~edges:800 ~ops:60
      ~arity
  in
  List.iteri
    (fun i op ->
      match op with
      | Stt_workload.Scenario.Insert (u, v) ->
          check_update i [ { Frame.urel = "R"; utuple = [| u; v |]; uadd = true } ]
      | Stt_workload.Scenario.Delete (u, v) ->
          check_update i
            [ { Frame.urel = "R"; utuple = [| u; v |]; uadd = false } ]
      | Stt_workload.Scenario.Query t -> check_answer i t)
    ops;
  (* a batched update frame applies atomically, in order *)
  check_update 1000
    [
      { Frame.urel = "R"; utuple = [| 7; 8 |]; uadd = true };
      { Frame.urel = "R"; utuple = [| 8; 9 |]; uadd = true };
      { Frame.urel = "R"; utuple = [| 7; 8 |]; uadd = false };
    ];
  check_answer 1001 (Array.make arity 8);
  (* malformed deltas reject without disturbing the engine *)
  (match
     rpc_exn client
       (Frame.Update
          {
            id = 1002;
            deltas = [ { Frame.urel = "nope"; utuple = [| 1; 2 |]; uadd = true } ];
          })
   with
  | Frame.Rejected { id = 1002; reject = Frame.Bad_request _ } -> ()
  | _ -> Alcotest.fail "unknown relation must reject");
  (match
     rpc_exn client
       (Frame.Update
          {
            id = 1003;
            deltas = [ { Frame.urel = "R"; utuple = [| 1 |]; uadd = true } ];
          })
   with
  | Frame.Rejected { id = 1003; reject = Frame.Bad_request _ } -> ()
  | _ -> Alcotest.fail "wrong arity must reject");
  check_answer 1004 (Array.make arity 3);
  let st = Server.stats server in
  let n_updates =
    List.length
      (List.filter
         (function
           | Stt_workload.Scenario.Insert _ | Stt_workload.Scenario.Delete _ ->
               true
           | Stt_workload.Scenario.Query _ -> false)
         ops)
  in
  Alcotest.(check int) "updated batches counted" (n_updates + 1)
    st.Server.updated;
  Alcotest.(check int) "malformed updates counted as bad" 2
    st.Server.bad_requests

let updates_without_handler_reject () =
  let idx = Lazy.force fixture in
  with_server (Server.engine_handler idx) @@ fun server ->
  with_client server @@ fun client ->
  match
    rpc_exn client
      (Frame.Update
         {
           id = 5;
           deltas = [ { Frame.urel = "R"; utuple = [| 1; 2 |]; uadd = true } ];
         })
  with
  | Frame.Rejected { id = 5; reject = Frame.Bad_request _ } -> ()
  | _ -> Alcotest.fail "update on a static server must reject"

(* ------------------------------------------------------------------ *)
(* aggregates over the wire                                             *)
(* ------------------------------------------------------------------ *)

let agg_fixture =
  lazy
    (let q = Cq.Library.k_path 2 in
     let db =
       Stt_workload.Scenario.synthetic_db ~seed:11 ~vertices:300 ~edges:2500
     in
     let idx = Engine.build_auto ~max_pmtds:128 q ~db ~budget:500 in
     Engine.enable_agg idx ~db ~budget:10_000;
     idx)

(* every kind served over loopback equals a direct [answer_agg] call —
   MIN on unreachable pairs also exercises the sentinel value codec *)
let loopback_agg_matches_direct () =
  let idx = Lazy.force agg_fixture in
  let schema = Engine.access_schema idx in
  let arity = Schema.arity schema in
  with_server
    ~agg_handler:(Server.engine_agg_handler idx)
    (Server.engine_handler idx)
  @@ fun server ->
  with_client server @@ fun client ->
  let rng = Stt_workload.Rng.create 33 in
  List.iteri
    (fun i n ->
      let tuples =
        List.init n (fun _ ->
            Array.init arity (fun _ -> Stt_workload.Rng.int rng 300))
      in
      List.iter
        (fun k ->
          let q_a = Relation.of_list schema tuples in
          let expected, _ = Engine.answer_agg idx k ~q_a in
          let kind = Stt_semiring.Semiring.to_tag k in
          match
            rpc_exn client
              (Frame.Agg { id = i; deadline_us = 0; kind; arity; tuples })
          with
          | Frame.Agg_reply { id; value; cost } ->
              Alcotest.(check int) "id echoed" i id;
              Alcotest.(check int)
                (Printf.sprintf "%s value" (Stt_semiring.Semiring.name k))
                expected value;
              Alcotest.(check bool) "nonzero accounting" true
                (Cost.total cost > 0)
          | _ -> Alcotest.fail "expected Agg_reply")
        Stt_semiring.Semiring.all)
    [ 1; 5; 12 ]

let aggs_without_handler_reject () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  with_server (Server.engine_handler idx) @@ fun server ->
  with_client server @@ fun client ->
  match
    rpc_exn client
      (Frame.Agg
         { id = 6; deadline_us = 0; kind = 1; arity; tuples = [ [| 1; 2 |] ] })
  with
  | Frame.Rejected { id = 6; reject = Frame.Bad_request _ } -> ()
  | _ -> Alcotest.fail "aggregate on a tuple-only server must reject"

let agg_bad_kind_rejected () =
  let blob =
    Frame.encode_request
      (Frame.Agg
         { id = 1; deadline_us = 0; kind = 7; arity = 2; tuples = [ [| 1; 2 |] ] })
  in
  expect_rejected "kind 7" (Frame.decode_request blob);
  let blob0 =
    Frame.encode_request
      (Frame.Agg
         { id = 1; deadline_us = 0; kind = 0; arity = 2; tuples = [ [| 1; 2 |] ] })
  in
  expect_rejected "kind 0" (Frame.decode_request blob0)

(* ------------------------------------------------------------------ *)
(* load generator                                                       *)
(* ------------------------------------------------------------------ *)

let loadgen_clean_run () =
  let idx = Lazy.force fixture in
  let arity = Schema.arity (Engine.access_schema idx) in
  let handler = Server.engine_handler idx in
  with_server ~workers:2 ~queue:256 handler @@ fun server ->
  let cfg =
    {
      Loadgen.host = "127.0.0.1";
      port = Server.port server;
      connections = 4;
      requests = 400;
      batch = 8;
      arity;
      values = 300;
      skew = 1.1;
      seed = 77;
      deadline_ms = 0;
      drivers = 2;
      active = 0;
    }
  in
  let verify ~arity tuples =
    List.map (fun (rows, _, _) -> rows) (handler ~arity tuples)
  in
  (match Loadgen.run ~verify cfg with
  | Error e -> Alcotest.failf "loadgen: %s" e
  | Ok r ->
      Alcotest.(check int) "all sent" 400 r.Loadgen.sent;
      Alcotest.(check int) "all answered" 400 r.Loadgen.answered;
      Alcotest.(check int) "no losses" 0 r.Loadgen.lost;
      Alcotest.(check int) "no duplicates" 0 r.Loadgen.duplicated;
      Alcotest.(check int) "no mismatches" 0 r.Loadgen.mismatched;
      Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
      Alcotest.(check bool) "latency percentiles ordered" true
        (r.Loadgen.p50_us > 0.0
        && r.Loadgen.p50_us <= r.Loadgen.p95_us
        && r.Loadgen.p95_us <= r.Loadgen.p99_us));
  (* parked connections (active < connections) keep idle fds registered
     at the server but must not disturb the accounting *)
  match Loadgen.run ~verify { cfg with connections = 12; active = 3 } with
  | Error e -> Alcotest.failf "loadgen (parked): %s" e
  | Ok r ->
      Alcotest.(check int) "all answered with parked conns" 400
        r.Loadgen.answered;
      Alcotest.(check int) "no losses with parked conns" 0 r.Loadgen.lost;
      Alcotest.(check int) "no errors with parked conns" 0 r.Loadgen.errors

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          QCheck_alcotest.to_alcotest request_roundtrip;
          QCheck_alcotest.to_alcotest response_roundtrip;
          Alcotest.test_case "every truncation is rejected" `Quick
            truncation_sweep;
          Alcotest.test_case "every bit flip is rejected" `Slow flip_sweep;
          Alcotest.test_case "hello validation" `Quick hello_checks;
        ] );
      ( "netbuf",
        [
          QCheck_alcotest.to_alcotest netbuf_request_equiv;
          QCheck_alcotest.to_alcotest netbuf_response_equiv;
          QCheck_alcotest.to_alcotest decode_sub_roundtrip;
          Alcotest.test_case "EAGAIN stash, resume, ordered flush" `Quick
            eagain_resumption;
          Alcotest.test_case "write_frame survives short writes" `Quick
            write_frame_short_writes;
        ] );
      ( "evloop",
        [
          Alcotest.test_case "epoll readiness scenario" `Quick
            (evloop_scenario Evloop.Epoll);
          Alcotest.test_case "select readiness scenario" `Quick
            (evloop_scenario Evloop.Select);
        ] );
      ( "server",
        [
          Alcotest.test_case "loopback equals direct answer_batch" `Quick
            loopback_matches_direct;
          Alcotest.test_case "select fallback serves identically" `Quick
            select_backend_serves;
          Alcotest.test_case "health and stats frames" `Quick health_and_stats;
          Alcotest.test_case "deadlines are enforced" `Quick deadline_enforced;
          Alcotest.test_case "full queue sheds with OVERLOADED" `Quick
            overload_sheds;
          Alcotest.test_case "graceful drain answers in-flight requests"
            `Quick drain_answers_in_flight;
          Alcotest.test_case "updates interleave with answers" `Quick
            updates_interleave_with_answers;
          Alcotest.test_case "static server rejects updates" `Quick
            updates_without_handler_reject;
        ] );
      ( "agg",
        [
          Alcotest.test_case "loopback equals direct answer_agg" `Quick
            loopback_agg_matches_direct;
          Alcotest.test_case "tuple-only server rejects aggregates" `Quick
            aggs_without_handler_reject;
          Alcotest.test_case "invalid kind tags rejected at decode" `Quick
            agg_bad_kind_rejected;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "clean closed-loop run" `Quick loadgen_clean_run;
        ] );
    ]
