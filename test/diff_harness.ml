(* Shared random-instance generator for the differential and parallel
   determinism harnesses: a random small CQAP, a random database, a
   random access request set and a random space budget, all derived from
   one seed.  See test_differential.ml for the invariants checked. *)

open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_workload

type instance = {
  seed : int;
  cqap : Cq.cqap;
  db : Db.t;
  q_a : Relation.t;
  budget : int;
}

let budgets = [| 1; 2; 4; 16; 256; 100_000 |]

let gen_instance seed =
  let rng = Rng.create seed in
  let nvars = 1 + Rng.int rng 5 in
  let natoms = 1 + Rng.int rng 4 in
  let pick_vars k =
    let arr = Array.init nvars Fun.id in
    Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 k)
  in
  let atoms =
    List.init natoms (fun i ->
        let arity = 1 + Rng.int rng (min 3 nvars) in
        { Cq.rel = Printf.sprintf "R%d" i; vars = pick_vars arity })
  in
  (* every variable must occur in some atom: cover leftovers with unary
     atoms *)
  let covered =
    List.fold_left
      (fun acc a -> Varset.union acc (Cq.atom_vars a))
      Varset.empty atoms
  in
  let missing = Varset.diff (Varset.full nvars) covered in
  let atoms =
    atoms
    @ List.mapi
        (fun j v -> { Cq.rel = Printf.sprintf "M%d" j; vars = [ v ] })
        (Varset.to_list missing)
  in
  let random_subset () =
    Varset.filter (fun _ -> Rng.bool rng) (Varset.full nvars)
  in
  let var_names = Array.init nvars (Printf.sprintf "x%d") in
  let cq = Cq.create ~var_names ~head:(random_subset ()) atoms in
  let cqap = Cq.with_access cq (random_subset ()) in
  let dom = 1 + Rng.int rng 8 in
  let db = Db.create () in
  List.iter
    (fun (a : Cq.atom) ->
      let arity = List.length a.Cq.vars in
      let n = Rng.int rng 17 in
      Db.add db a.Cq.rel
        (List.init n (fun _ -> Array.init arity (fun _ -> Rng.int rng dom))))
    atoms;
  let access = Varset.to_list cqap.Cq.access in
  let q_a =
    let schema = Schema.of_list access in
    match List.length access with
    | 0 -> Relation.of_list schema [ [||] ]
    | k ->
        Relation.of_list schema
          (List.init
             (1 + Rng.int rng 8)
             (fun _ -> Array.init k (fun _ -> Rng.int rng dom)))
  in
  let budget = budgets.(Rng.int rng (Array.length budgets)) in
  { seed; cqap; db; q_a; budget }

exception Skip of string

(* The engine's correctness guarantee (union of ψ_i over the PMTDs it
   was built with) holds for any non-empty PMTD subset, so we cap the
   set at 6 to keep the rule cartesian product tractable on adversarial
   random queries.  A budget too small for some rule without T-targets
   is escalated — the comparison then runs at the budget actually
   used. *)
let build_index inst =
  let pmtds =
    try Enum.pmtds ~max_pmtds:4096 inst.cqap
    with Failure msg -> raise (Skip ("pmtd enumeration: " ^ msg))
  in
  let pmtds = List.filteri (fun i _ -> i < 6) pmtds in
  let rec go budget attempts =
    if attempts = 0 then raise (Skip "no feasible budget")
    else
      try (Engine.build inst.cqap pmtds ~db:inst.db ~budget, budget)
      with Failure _ -> go (budget * 64) (attempts - 1)
  in
  go inst.budget 5

let space_bound idx ~budget =
  let s_nodes =
    List.fold_left
      (fun acc p -> acc + List.length (Pmtd.s_views p))
      0 (Engine.pmtds idx)
  in
  let stored_tuples =
    List.fold_left
      (fun acc s -> acc + (Twopp.stored_subproblems s * budget))
      0 (Engine.structures idx)
  in
  s_nodes * stored_tuples
