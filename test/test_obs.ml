(* The observability layer: span trees, counters, histograms, JSON
   round-trips, and the invariant that a disabled Obs changes neither
   query results nor cost accounting. *)

open Stt_obs
open Stt_relation
open Stt_hypergraph
open Stt_core

(* Run [f] with observability enabled inside a fresh, isolated context;
   the global flag is restored afterwards so other tests see Obs off. *)
let with_obs f =
  Obs.with_context (Obs.create_context ()) @@ fun () ->
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let member_exn k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" k (Json.to_string j)

let as_list = function
  | Json.List l -> l
  | j -> Alcotest.failf "expected a JSON list, got %s" (Json.to_string j)

let span_names j =
  List.map
    (fun s ->
      match member_exn "name" s with
      | Json.String n -> n
      | j -> Alcotest.failf "span name is not a string: %s" (Json.to_string j))
    (as_list j)

(* ------------------------------------------------------------------ *)
(* spans                                                                *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_obs @@ fun () ->
  let r =
    Obs.span "outer" ~attrs:[ ("k", Json.Int 1) ] @@ fun () ->
    Obs.span "child1" (fun () -> ());
    Obs.span "child2" (fun () ->
        Obs.set_attr "depth" (Json.Int 2);
        Obs.span "grandchild" (fun () -> ()));
    17
  in
  Alcotest.check Alcotest.int "span returns the thunk's value" 17 r;
  let spans = member_exn "spans" (Obs.trace ()) in
  Alcotest.check
    Alcotest.(list string)
    "one root span" [ "outer" ] (span_names spans);
  let outer = List.hd (as_list spans) in
  (match member_exn "elapsed_s" outer with
  | Json.Float f ->
      Alcotest.check Alcotest.bool "elapsed is non-negative" true (f >= 0.0)
  | _ -> Alcotest.fail "elapsed_s is not a float");
  (match Json.member "k" (member_exn "attrs" outer) with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "constructor attrs kept");
  let children = member_exn "children" outer in
  Alcotest.check
    Alcotest.(list string)
    "children in open order" [ "child1"; "child2" ] (span_names children);
  let child2 = List.nth (as_list children) 1 in
  (match Json.member "depth" (member_exn "attrs" child2) with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "set_attr lands on the innermost open span");
  Alcotest.check
    Alcotest.(list string)
    "grandchild nested under child2" [ "grandchild" ]
    (span_names (member_exn "children" child2))

let test_span_exception () =
  with_obs @@ fun () ->
  (try Obs.span "boom" (fun () -> raise Exit) with Exit -> ());
  (* the span is still finished and recorded, and the stack is balanced:
     a subsequent span becomes a root, not a child of "boom" *)
  Obs.span "after" (fun () -> ());
  let spans = member_exn "spans" (Obs.trace ()) in
  Alcotest.check
    Alcotest.(list string)
    "span closed on exception" [ "boom"; "after" ] (span_names spans)

let test_reset () =
  with_obs @@ fun () ->
  Obs.span "old" (fun () -> Obs.incr "c");
  Obs.reset ();
  Alcotest.check Alcotest.int "counters cleared" 0 (Obs.counter_value "c");
  let spans = member_exn "spans" (Obs.trace ()) in
  Alcotest.check Alcotest.(list string) "spans cleared" [] (span_names spans)

(* ------------------------------------------------------------------ *)
(* counters and histograms                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_monotonicity () =
  with_obs @@ fun () ->
  Alcotest.check Alcotest.int "unbumped counter reads 0" 0
    (Obs.counter_value "c");
  Obs.incr "c";
  Obs.incr ~by:5 "c";
  Obs.incr ~by:0 "c";
  Alcotest.check Alcotest.int "1 + 5 + 0" 6 (Obs.counter_value "c");
  Obs.incr "b";
  Alcotest.check
    Alcotest.(list (pair string int))
    "counters sorted by name"
    [ ("b", 1); ("c", 6) ]
    (Obs.counters ());
  Alcotest.check_raises "negative increments are rejected"
    (Invalid_argument "Obs.incr: counters are monotone (by < 0)") (fun () ->
      Obs.incr ~by:(-1) "c");
  Alcotest.check Alcotest.int "value intact after rejected incr" 6
    (Obs.counter_value "c")

let test_histogram () =
  with_obs @@ fun () ->
  List.iter (Obs.observe "h") [ 0.5; 1.0; 3.0; 100.0; -2.0 ];
  let h = member_exn "h" (member_exn "histograms" (Obs.trace ())) in
  Alcotest.check Alcotest.int "count" 5
    (match member_exn "count" h with Json.Int n -> n | _ -> -1);
  (match member_exn "min" h with
  | Json.Float f -> Alcotest.check (Alcotest.float 1e-9) "min" (-2.0) f
  | _ -> Alcotest.fail "min");
  (match member_exn "max" h with
  | Json.Float f -> Alcotest.check (Alcotest.float 1e-9) "max" 100.0 f
  | _ -> Alcotest.fail "max");
  (* buckets are [0,1), [1,2), [2,4), ..., negatives clamp into the
     first: 0.5 and -2.0 → lt 1; 1.0 → lt 2; 3.0 → lt 4; 100.0 → lt 128 *)
  let buckets =
    List.map
      (fun b ->
        match (member_exn "lt" b, member_exn "n" b) with
        | Json.Float lt, Json.Int n -> (lt, n)
        | _ -> Alcotest.fail "bucket shape")
      (as_list (member_exn "buckets" h))
  in
  Alcotest.check
    Alcotest.(list (pair (float 1e-9) int))
    "occupied buckets"
    [ (1.0, 2); (2.0, 1); (4.0, 1); (128.0, 1) ]
    buckets

let test_percentiles () =
  with_obs @@ fun () ->
  (* 1..1000 uniformly: each percentile's exact value is its rank, and
     the log-linear sub-buckets bound the estimate to [exact, ~1.07x] *)
  for i = 1 to 1000 do
    Obs.observe "p" (float_of_int i)
  done;
  List.iter
    (fun (p, exact) ->
      let v = Obs.percentile "p" p in
      Alcotest.check Alcotest.bool
        (Printf.sprintf "p%.0f in [%.0f, %.0f] (got %.1f)" (100. *. p) exact
           (exact *. 1.07) v)
        true
        (v >= exact && v <= exact *. 1.07))
    [ (0.50, 500.0); (0.95, 950.0); (0.99, 990.0) ];
  Alcotest.check (Alcotest.float 1e-9) "p100 is the exact max" 1000.0
    (Obs.percentile "p" 1.0);
  Obs.observe "one" 42.0;
  Alcotest.check (Alcotest.float 1e-9) "single sample is exact" 42.0
    (Obs.percentile "one" 0.5);
  Alcotest.check (Alcotest.float 1e-9) "missing histogram" 0.0
    (Obs.percentile "absent" 0.5);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Obs.percentile: p must be in (0, 1]") (fun () ->
      ignore (Obs.percentile "p" 0.0));
  (* the trace JSON reports the same numbers as the API *)
  let h = member_exn "p" (member_exn "histograms" (Obs.trace ())) in
  List.iter
    (fun (field, p) ->
      match member_exn field h with
      | Json.Float f ->
          Alcotest.check (Alcotest.float 1e-9)
            (field ^ " in trace JSON")
            (Obs.percentile "p" p) f
      | _ -> Alcotest.failf "%s is not a float" field)
    [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                     *)
(* ------------------------------------------------------------------ *)

let roundtrip what serialize doc =
  match Json.of_string (serialize doc) with
  | Ok j ->
      Alcotest.check Alcotest.bool (what ^ " round-trips") true
        (Json.equal doc j)
  | Error e -> Alcotest.failf "%s: parse error: %s" what e

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("i", Json.Int (-42));
        ("max", Json.Int max_int);
        ("min", Json.Int min_int);
        ("pi", Json.Float 3.14159265358979312);
        ("tiny", Json.Float 1e-300);
        ("huge", Json.Float 1.7976931348623157e308);
        ("whole", Json.Float 2.0);
        ("negz", Json.Float (-0.5));
        ("s", Json.String "a\"b\\c\nd\te \x01 caf\xc3\xa9");
        ("empty", Json.String "");
        ( "l",
          Json.List
            [ Json.Int 0; Json.List []; Json.Obj []; Json.String "x" ] );
        ("o", Json.Obj [ ("nested", Json.Obj [ ("deep", Json.Int 1) ]) ]);
      ]
  in
  roundtrip "compact" Json.to_string doc;
  roundtrip "pretty" Json.to_string_pretty doc;
  (* Int and Float stay distinct through serialization *)
  (match Json.of_string (Json.to_string (Json.Float 2.0)) with
  | Ok (Json.Float 2.0) -> ()
  | Ok j -> Alcotest.failf "Float 2.0 reparsed as %s" (Json.to_string j)
  | Error e -> Alcotest.fail e);
  match Json.of_string (Json.to_string (Json.Int 2)) with
  | Ok (Json.Int 2) -> ()
  | Ok j -> Alcotest.failf "Int 2 reparsed as %s" (Json.to_string j)
  | Error e -> Alcotest.fail e

let test_json_unicode_escape () =
  (* \uXXXX escapes fold to UTF-8 bytes *)
  match Json.of_string {|"caf\u00e9 \u0041"|} with
  | Ok (Json.String s) ->
      Alcotest.check Alcotest.string "utf-8 folding" "caf\xc3\xa9 A" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.fail e

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok j ->
          Alcotest.failf "%S should not parse (got %s)" s (Json.to_string j)
      | Error e ->
          Alcotest.check Alcotest.bool "error mentions byte offset" true
            (String.length e > 0))
    [
      "";
      "{";
      "tru";
      "\"unterminated";
      "\"bad \\x escape\"";
      "1 2";
      "[1,]";
      "{\"a\":1,}";
      "{\"a\" 1}";
      "[1 2]";
    ]

let test_trace_roundtrip () =
  with_obs @@ fun () ->
  Obs.span "a" ~attrs:[ ("q", Json.String "3-reach") ] (fun () ->
      Obs.incr "n";
      Obs.incr ~by:3 "n";
      Obs.observe "lat" 2.5;
      Obs.span "b" (fun () -> ()));
  let t = Obs.trace () in
  roundtrip "trace (compact)" Json.to_string t;
  roundtrip "trace (pretty)" Json.to_string_pretty t;
  match member_exn "schema" t with
  | Json.String "stt-trace/1" -> ()
  | j -> Alcotest.failf "schema tag: %s" (Json.to_string j)

(* ------------------------------------------------------------------ *)
(* disabling observability changes nothing                              *)
(* ------------------------------------------------------------------ *)

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

(* one full build + answer cycle; returns everything an experiment
   could observe about the engine *)
let build_and_answer () =
  let db = Db.create () in
  Db.add_pairs db "R" [ (1, 2); (2, 3); (3, 4); (1, 3); (2, 4); (4, 1) ];
  let q = Cq.Library.k_path 3 in
  let idx = Engine.build_auto q ~db ~budget:2 in
  let q_a =
    Relation.of_list
      (Schema.of_list [ 0; 3 ])
      [ [| 1; 4 |]; [| 2; 3 |]; [| 4; 1 |]; [| 3; 3 |] ]
  in
  let result, cost = Cost.measure (fun () -> Engine.answer idx ~q_a) in
  (sorted result, Engine.space idx, cost)

let test_disabled_is_invisible () =
  Alcotest.check Alcotest.bool "obs starts disabled" false (Obs.enabled ());
  let r_off, space_off, c_off = build_and_answer () in
  let r_on, space_on, c_on = with_obs build_and_answer in
  Alcotest.check
    Alcotest.(list (list int))
    "same answers with obs on and off" r_off r_on;
  Alcotest.check Alcotest.int "same stored space" space_off space_on;
  Alcotest.check Alcotest.int "same probes" c_off.Cost.probes c_on.Cost.probes;
  Alcotest.check Alcotest.int "same tuples" c_off.Cost.tuples c_on.Cost.tuples;
  Alcotest.check Alcotest.int "same scans" c_off.Cost.scans c_on.Cost.scans

let test_obs_charges_no_cost () =
  with_obs @@ fun () ->
  let (), c =
    Cost.measure (fun () ->
        Obs.span "s" ~attrs:[ ("a", Json.Int 1) ] (fun () ->
            Obs.incr "k";
            Obs.observe "h" 3.0;
            Obs.set_attr "b" Json.Null);
        ignore (Obs.trace ()))
  in
  Alcotest.check Alcotest.int "instrumentation charges no Cost ops" 0
    (Cost.total c)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotone counters" `Quick
            test_counter_monotonicity;
          Alcotest.test_case "histograms" `Quick test_histogram;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "disabled obs is invisible" `Quick
            test_disabled_is_invisible;
          Alcotest.test_case "obs charges no cost" `Quick
            test_obs_charges_no_cost;
        ] );
    ]
