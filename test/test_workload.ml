(* Workload generators: determinism, size contracts, skew shape. *)

open Stt_workload

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.check Alcotest.bool "float range" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  Alcotest.check Alcotest.(list int) "still a permutation" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

let test_zipf_skew () =
  let rng = Rng.create 10 in
  let sample = Rng.zipf_sampler rng ~n:100 ~s:1.5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10000 do
    let i = sample () in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.check Alcotest.bool "rank 0 much hotter than rank 50" true
    (counts.(0) > 10 * max 1 counts.(50))

let test_graph_generators () =
  let check_edges name edges ~max_v =
    Alcotest.check Alcotest.bool (name ^ " nonempty") true (edges <> []);
    List.iter
      (fun (u, v) ->
        Alcotest.check Alcotest.bool (name ^ " vertex range") true
          (u >= 0 && u < max_v && v >= 0 && v < max_v))
      edges;
    Alcotest.check Alcotest.int (name ^ " distinct")
      (List.length edges)
      (List.length (List.sort_uniq compare edges))
  in
  check_edges "uniform" (Graphs.uniform ~seed:1 ~vertices:50 ~edges:300) ~max_v:50;
  check_edges "zipf_out" (Graphs.zipf_out ~seed:2 ~vertices:50 ~edges:300 ~s:1.2) ~max_v:50;
  check_edges "zipf_both" (Graphs.zipf_both ~seed:3 ~vertices:50 ~edges:300 ~s:1.2) ~max_v:50;
  check_edges "cycle_rich" (Graphs.cycle_rich ~seed:4 ~vertices:50 ~edges:300) ~max_v:50

let test_layered () =
  let edges = Graphs.layered ~seed:5 ~layers:4 ~width:10 ~edges:100 in
  List.iter
    (fun (u, v) ->
      Alcotest.check Alcotest.int "consecutive layers" 1 ((v / 10) - (u / 10)))
    edges

let test_generator_determinism () =
  Alcotest.check Alcotest.bool "same seed same graph" true
    (Graphs.zipf_both ~seed:42 ~vertices:30 ~edges:100 ~s:1.1
    = Graphs.zipf_both ~seed:42 ~vertices:30 ~edges:100 ~s:1.1);
  Alcotest.check Alcotest.bool "different seed different graph" true
    (Graphs.zipf_both ~seed:42 ~vertices:30 ~edges:100 ~s:1.1
    <> Graphs.zipf_both ~seed:43 ~vertices:30 ~edges:100 ~s:1.1)

let test_set_families () =
  let ms = Sets.uniform ~seed:6 ~universe:40 ~sets:10 ~memberships:150 in
  Alcotest.check Alcotest.int "distinct memberships" (List.length ms)
    (List.length (List.sort_uniq compare ms));
  let planted, witnesses =
    Sets.planted_pairs ~seed:7 ~universe:40 ~sets:10 ~memberships:150
      ~intersecting:5
  in
  Alcotest.check Alcotest.int "five witnesses" 5 (List.length witnesses);
  List.iter
    (fun (s1, s2) ->
      let elems s = List.filter_map (fun (e, s') -> if s = s' then Some e else None) planted in
      Alcotest.check Alcotest.bool "witness pair intersects" true
        (List.exists (fun e -> List.mem e (elems s2)) (elems s1)))
    witnesses

let test_zipf_sizes_skew () =
  let ms = Sets.zipf_sizes ~seed:8 ~universe:200 ~sets:50 ~memberships:1000 ~s:1.3 in
  let size s = List.length (List.filter (fun (_, s') -> s' = s) ms) in
  Alcotest.check Alcotest.bool "set 0 bigger than set 40" true
    (size 0 > size 40)

(* ------------------------------------------------------------------ *)
(* shared serving scenario                                              *)
(* ------------------------------------------------------------------ *)

let test_scenario_db () =
  let db = Scenario.synthetic_db ~seed:5 ~vertices:100 ~edges:600 in
  Alcotest.check Alcotest.bool "has the edge relation" true
    (Stt_core.Db.mem db Scenario.edge_relation);
  Alcotest.check Alcotest.bool "edges present" true
    (Stt_core.Db.cardinal db Scenario.edge_relation > 0);
  Alcotest.check Alcotest.int "vertices floor" 10 (Scenario.vertices_for_edges 5);
  Alcotest.check Alcotest.int "vertices scale" 50
    (Scenario.vertices_for_edges 500)

let test_scenario_guard () =
  Alcotest.check Alcotest.bool "k-path is single-edge" true
    (Scenario.single_edge_violation (Stt_hypergraph.Cq.Library.k_path 3) = None);
  match
    Scenario.single_edge_violation Stt_hypergraph.Cq.Library.hierarchical_binary
  with
  | Some rel ->
      Alcotest.check Alcotest.string "names the first odd relation" "S" rel
  | None -> Alcotest.fail "multi-relation query not flagged"

let test_scenario_requests () =
  let reqs = Scenario.zipf_requests ~seed:9 ~n:50 ~requests:200 ~skew:1.2 ~arity:2 in
  Alcotest.check Alcotest.int "count" 200 (List.length reqs);
  List.iter
    (fun t ->
      Alcotest.check Alcotest.int "arity" 2 (Array.length t);
      Array.iter
        (fun v -> Alcotest.check Alcotest.bool "range" true (v >= 0 && v < 50))
        t)
    reqs;
  Alcotest.check Alcotest.bool "deterministic" true
    (reqs = Scenario.zipf_requests ~seed:9 ~n:50 ~requests:200 ~skew:1.2 ~arity:2);
  (* skewed: low ids must dominate high ids *)
  let count p =
    List.fold_left
      (fun acc t -> acc + Array.fold_left (fun a v -> if p v then a + 1 else a) 0 t)
      0 reqs
  in
  Alcotest.check Alcotest.bool "zipf skew" true
    (count (fun v -> v < 5) > count (fun v -> v >= 45))

let test_scenario_churn () =
  let seed = 17 and vertices = 60 and edges = 400 and ops = 1000 in
  let stream () = Scenario.churn_ops ~seed ~vertices ~edges ~ops ~arity:1 in
  let s = stream () in
  Alcotest.check Alcotest.int "count" ops (List.length s);
  Alcotest.check Alcotest.bool "deterministic" true (s = stream ());
  (* mix roughly 30/15/55 (delete can fall back to query when nothing is
     live, so only loose bands) *)
  let ins, del, qry =
    List.fold_left
      (fun (i, d, q) -> function
        | Scenario.Insert _ -> (i + 1, d, q)
        | Scenario.Delete _ -> (i, d + 1, q)
        | Scenario.Query _ -> (i, d, q + 1))
      (0, 0, 0) s
  in
  Alcotest.check Alcotest.bool "insert share" true (ins > ops / 5 && ins < ops / 2);
  Alcotest.check Alcotest.bool "delete share" true (del > ops / 12 && del < ops / 4);
  Alcotest.check Alcotest.bool "query share" true (qry > (2 * ops) / 5);
  (* every endpoint/key in range, queries carry the requested arity *)
  List.iter
    (function
      | Scenario.Insert (u, v) | Scenario.Delete (u, v) ->
          Alcotest.check Alcotest.bool "endpoint range" true
            (u >= 0 && u < vertices && v >= 0 && v < vertices)
      | Scenario.Query t ->
          Alcotest.check Alcotest.int "query arity" 1 (Array.length t);
          Alcotest.check Alcotest.bool "key range" true
            (t.(0) >= 0 && t.(0) < vertices))
    s;
  (* deltas stay consistent with the live edge set they claim to track:
     replaying against the scenario db, deletes always hit a live edge *)
  let live = Hashtbl.create 512 in
  List.iter
    (fun e -> Hashtbl.replace live e ())
    (Graphs.zipf_both ~seed ~vertices ~edges ~s:1.1);
  let misses =
    List.fold_left
      (fun acc -> function
        | Scenario.Insert (u, v) ->
            Hashtbl.replace live (u, v) ();
            acc
        | Scenario.Delete (u, v) ->
            let hit = Hashtbl.mem live (u, v) in
            Hashtbl.remove live (u, v);
            if hit then acc else acc + 1
        | Scenario.Query _ -> acc)
      0 s
  in
  Alcotest.check Alcotest.int "deletes hit live edges" 0 misses;
  (* zipf endpoints: hot vertices dominate the churn *)
  let touches p =
    List.fold_left
      (fun acc -> function
        | Scenario.Insert (u, v) | Scenario.Delete (u, v) ->
            acc + (if p u then 1 else 0) + if p v then 1 else 0
        | Scenario.Query _ -> acc)
      0 s
  in
  Alcotest.check Alcotest.bool "churn skew" true
    (touches (fun v -> v < 5) > touches (fun v -> v >= vertices - 15))

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float" `Quick test_rng_float;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "generators" `Quick test_graph_generators;
          Alcotest.test_case "layered" `Quick test_layered;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
      ( "sets",
        [
          Alcotest.test_case "families" `Quick test_set_families;
          Alcotest.test_case "zipf sizes" `Quick test_zipf_sizes_skew;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "synthetic db" `Quick test_scenario_db;
          Alcotest.test_case "single-edge guard" `Quick test_scenario_guard;
          Alcotest.test_case "zipf requests" `Quick test_scenario_requests;
          Alcotest.test_case "churn stream" `Quick test_scenario_churn;
        ] );
    ]
