(* Randomized differential testing: the full pipeline (PMTD enumeration,
   disjunctive rules, 2PP preprocessing, Online Yannakakis) against the
   brute-force reference evaluator, over 200 random CQAP instances.

   Each instance draws a random small query (≤ 5 variables), a random
   database (≤ 64 tuples per relation over a small domain), a random
   access request set and a random space budget; the engine's answer must
   match [Db.eval_access] tuple-for-tuple, and the stored space must stay
   under the budget-implied bound

     Engine.space ≤ (Σ_p #s_views p) × (Σ_ρ stored_subproblems ρ × budget).

   Everything is derived from a fixed base seed, so a failure report's
   seed reproduces the instance exactly. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Diff_harness

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

(* ------------------------------------------------------------------ *)
(* the harness                                                          *)
(* ------------------------------------------------------------------ *)

let n_instances = 200
let base_seed = 0xC0FFEE

let pp_tuples fmt ts =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
          ts))

(* Aggregate differential: for every semiring kind, [answer_agg] must
   equal the brute-force fold over the flat annotated join, and its op
   count must not exceed materialize-then-fold beyond the fixed table
   overhead of two ops per request row (one probe, one combined
   tuple). *)
let check_aggregates i seed inst idx =
  Engine.enable_agg idx ~db:inst.db ~budget:100_000;
  let brute_factors k =
    List.map
      (fun (a : Cq.atom) ->
        Stt_semiring.Eval.of_relation k (Db.relation inst.db a))
      inst.cqap.Cq.cq.Cq.atoms
  in
  List.iter
    (fun k ->
      let got, cost = Engine.answer_agg idx k ~q_a:inst.q_a in
      let expected = Stt_semiring.Eval.brute k (brute_factors k) ~q_a:inst.q_a in
      if got <> expected then
        Alcotest.failf
          "instance %d (seed %d): %s aggregate disagrees with brute fold@\n\
           query: %a@\nexpected %d got %d"
          i seed
          (Stt_semiring.Semiring.name k)
          Cq.pp_cqap inst.cqap expected got;
      let _, base_cost = Engine.agg_baseline idx k ~q_a:inst.q_a in
      let allowed =
        Cost.total base_cost + (2 * Relation.cardinal inst.q_a)
      in
      if Cost.total cost > allowed then
        Alcotest.failf
          "instance %d (seed %d): %s aggregate cost %d exceeds \
           materialize-then-fold budget %d"
          i seed
          (Stt_semiring.Semiring.name k)
          (Cost.total cost) allowed)
    Stt_semiring.Semiring.all

let run_one i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = gen_instance seed in
    match build_index inst with
    | exception Skip reason ->
        if k >= 20 then
          Alcotest.failf "instance %d: no buildable query after %d tries (%s)"
            i (k + 1) reason
        else attempt (k + 1)
    | idx, used_budget ->
        let expected = sorted (Db.eval_access inst.db inst.cqap ~q_a:inst.q_a) in
        let got = sorted (Engine.answer idx ~q_a:inst.q_a) in
        if got <> expected then
          Alcotest.failf
            "instance %d (seed %d): engine disagrees with reference@\n\
             query: %a@\n\
             budget: %d (used %d)@\n\
             expected %a@\ngot      %a"
            i seed Cq.pp_cqap inst.cqap inst.budget used_budget pp_tuples
            expected pp_tuples got;
        let bound = space_bound idx ~budget:used_budget in
        if Engine.space idx > bound then
          Alcotest.failf
            "instance %d (seed %d): space %d exceeds budget-implied bound %d \
             (budget %d)"
            i seed (Engine.space idx) bound used_budget;
        check_aggregates i seed inst idx
  in
  attempt 0

let test_differential () =
  for i = 0 to n_instances - 1 do
    run_one i
  done

(* ------------------------------------------------------------------ *)
(* factorization differential                                           *)
(* ------------------------------------------------------------------ *)

module Fconfig = Stt_factorized.Config
module Frep = Stt_factorized.Frep

(* Forced-on vs forced-off factorized storage must be answer-invariant
   on every instance, and every d-representation must enumerate with
   constant delay: exactly one probe up front, then one tuple per
   emitted row and nothing else. *)
let check_delay_invariant i seed rel =
  if not (Relation.is_empty rel) then begin
    let f = Cost.with_counting false (fun () -> Frep.of_relation rel) in
    let emitted = ref 0 in
    let (), c =
      Cost.measure (fun () -> Frep.enum_iter f (fun _ -> incr emitted))
    in
    if !emitted <> Relation.cardinal rel then
      Alcotest.failf
        "instance %d (seed %d): d-rep enumerated %d of %d tuples" i seed
        !emitted (Relation.cardinal rel);
    if
      c.Cost.probes <> 1
      || c.Cost.tuples <> !emitted
      || c.Cost.scans <> 0
    then
      Alcotest.failf
        "instance %d (seed %d): enumeration delay {probes=%d; tuples=%d; \
         scans=%d} is not 1 probe + 1 tuple/row over %d rows"
        i seed c.Cost.probes c.Cost.tuples c.Cost.scans !emitted
  end

let run_one_factorized i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = gen_instance seed in
    Fconfig.set_mode Fconfig.Off;
    match build_index inst with
    | exception Skip _ -> if k < 20 then attempt (k + 1)
    | idx_off, _ -> (
        let off = sorted (Engine.answer idx_off ~q_a:inst.q_a) in
        Fconfig.set_mode Fconfig.Forced;
        (match build_index inst with
        | exception Skip reason ->
            Alcotest.failf
              "instance %d (seed %d): buildable flat but not under forced \
               factorization (%s)"
              i seed reason
        | idx_on, _ ->
            let on = sorted (Engine.answer idx_on ~q_a:inst.q_a) in
            if on <> off then
              Alcotest.failf
                "instance %d (seed %d): forced factorization changes \
                 answers@\nquery: %a@\nflat %a@\nfactorized %a"
                i seed Cq.pp_cqap inst.cqap pp_tuples off pp_tuples on);
        List.iter
          (fun (a : Cq.atom) ->
            check_delay_invariant i seed (Db.relation inst.db a))
          inst.cqap.Cq.cq.Cq.atoms)
  in
  attempt 0

let test_factorization_modes () =
  let saved = Fconfig.mode () in
  Fun.protect ~finally:(fun () -> Fconfig.set_mode saved) @@ fun () ->
  for i = 0 to n_instances - 1 do
    run_one_factorized i
  done

let () =
  Alcotest.run "differential"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "%d random instances vs reference" n_instances)
            `Slow test_differential;
          Alcotest.test_case
            (Printf.sprintf
               "%d instances, factorization forced on == forced off"
               n_instances)
            `Slow test_factorization_modes;
        ] );
    ]
