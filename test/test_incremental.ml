(* Churn differential for incremental index maintenance: interleaved
   inserts, deletes and answers against one long-lived engine, checked
   after every delta against (a) the brute-force reference evaluator
   and (b) an engine rebuilt from scratch on the mutated database.
   Everything derives from a fixed base seed.

   Also covers the edge cases a delta engine classically gets wrong —
   redundant inserts (the tuple is already there) and deleting the last
   witness of a derived answer — plus the snapshot story: an engine
   that has absorbed deltas must save/load into an observationally
   identical replica (same answers, same op counts, same epoch), and
   the replica must reject further deltas. *)

open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_workload
open Diff_harness

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let pp_tuples fmt ts =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map
          (fun t -> "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
          ts))

(* ------------------------------------------------------------------ *)
(* mirror database: name-keyed mutable tuple sets                       *)
(* ------------------------------------------------------------------ *)

type mirror = (string, unit Tuple.Tbl.t) Hashtbl.t

let mirror_of_instance inst : mirror =
  let m = Hashtbl.create 8 in
  List.iter
    (fun (a : Cq.atom) ->
      if not (Hashtbl.mem m a.Cq.rel) then begin
        let set = Tuple.Tbl.create 32 in
        Relation.iter
          (fun tup -> Tuple.Tbl.replace set tup ())
          (Db.relation inst.db a);
        Hashtbl.add m a.Cq.rel set
      end)
    inst.cqap.Cq.cq.Cq.atoms;
  m

let db_of_mirror (m : mirror) =
  let db = Db.create () in
  Hashtbl.iter
    (fun rel set ->
      Db.add db rel (Tuple.Tbl.fold (fun tup () acc -> tup :: acc) set []))
    m;
  db

let mirror_apply (m : mirror) rel tuple add =
  let set = Hashtbl.find m rel in
  let present = Tuple.Tbl.mem set tuple in
  if add then begin
    if not present then Tuple.Tbl.replace set tuple ();
    not present
  end
  else begin
    if present then Tuple.Tbl.remove set tuple;
    present
  end

(* ------------------------------------------------------------------ *)
(* the churn differential                                               *)
(* ------------------------------------------------------------------ *)

let n_instances = 200
let base_seed = 0x5EED1E
let deltas_per_instance = 6

let run_one i =
  let rec attempt k =
    let seed = base_seed + (1000 * i) + k in
    let inst = gen_instance seed in
    match build_index inst with
    | exception Skip reason ->
        if k >= 20 then
          Alcotest.failf "instance %d: no buildable query after %d tries (%s)"
            i (k + 1) reason
        else attempt (k + 1)
    | idx, _used_budget ->
        let rng = Rng.create (seed lxor 0xD317A) in
        let mirror = mirror_of_instance inst in
        let rels =
          List.sort_uniq compare
            (List.map
               (fun (a : Cq.atom) -> (a.Cq.rel, List.length a.Cq.vars))
               inst.cqap.Cq.cq.Cq.atoms)
        in
        let engine = ref idx in
        let check step =
          let db' = db_of_mirror mirror in
          let expected =
            sorted (Db.eval_access db' inst.cqap ~q_a:inst.q_a)
          in
          let got = sorted (Engine.answer !engine ~q_a:inst.q_a) in
          if got <> expected then
            Alcotest.failf
              "instance %d (seed %d) after delta %d: maintained engine \
               disagrees with reference@\n\
               query: %a@\nexpected %a@\ngot      %a"
              i seed step Cq.pp_cqap inst.cqap pp_tuples expected pp_tuples
              got;
          (* from-scratch rebuild on the mutated database must agree *)
          let rebuilt, _ = build_index { inst with db = db' } in
          let fresh = sorted (Engine.answer rebuilt ~q_a:inst.q_a) in
          if got <> fresh then
            Alcotest.failf
              "instance %d (seed %d) after delta %d: maintained engine \
               disagrees with from-scratch rebuild@\n\
               query: %a@\nrebuilt %a@\ngot     %a"
              i seed step Cq.pp_cqap inst.cqap pp_tuples fresh pp_tuples got
        in
        for step = 1 to deltas_per_instance do
          let rel, arity = List.nth rels (Rng.int rng (List.length rels)) in
          let set = Hashtbl.find mirror rel in
          let add =
            Tuple.Tbl.length set = 0
            || (match Rng.int rng 10 with 0 | 1 | 2 | 3 -> false | _ -> true)
          in
          let tuple =
            if (not add) && Rng.int rng 4 > 0 then begin
              (* delete a live tuple (landing on the n-th of the set) *)
              let n = Rng.int rng (Tuple.Tbl.length set) in
              let j = ref 0 and out = ref [||] in
              (try
                 Tuple.Tbl.iter
                   (fun tup () ->
                     if !j = n then begin
                       out := tup;
                       raise Exit
                     end;
                     incr j)
                   set
               with Exit -> ());
              Array.copy !out
            end
            else Array.init arity (fun _ -> Rng.int rng 9)
          in
          let expected_effective = mirror_apply mirror rel tuple add in
          let epoch_before = Engine.epoch !engine in
          (match
             if add then Engine.insert !engine rel tuple
             else Engine.delete !engine rel tuple
           with
          | effective, _cost ->
              if effective <> expected_effective then
                Alcotest.failf
                  "instance %d (seed %d) delta %d: %s of %s reported \
                   effective=%b, mirror says %b"
                  i seed step
                  (if add then "insert" else "delete")
                  rel effective expected_effective;
              let expect_epoch =
                epoch_before + if expected_effective then 1 else 0
              in
              if Engine.epoch !engine <> expect_epoch then
                Alcotest.failf
                  "instance %d (seed %d) delta %d: epoch %d, expected %d" i
                  seed step (Engine.epoch !engine) expect_epoch
          | exception Failure _ ->
              (* a newly non-empty subproblem can be impossible at the
                 build budget, exactly like a failed build; the engine
                 is poisoned, so rebuild and continue the stream *)
              let rebuilt, _ = build_index { inst with db = db_of_mirror mirror } in
              engine := rebuilt);
          check step
        done
  in
  attempt 0

let test_churn_differential () =
  for i = 0 to n_instances - 1 do
    run_one i
  done

(* ------------------------------------------------------------------ *)
(* deterministic edge cases: 2-path R(x,y), S(y,z), access x, head x z  *)
(* ------------------------------------------------------------------ *)

let build_path ~r_rows ~s_rows =
  let atoms =
    [ { Cq.rel = "R"; vars = [ 0; 1 ] }; { Cq.rel = "S"; vars = [ 1; 2 ] } ]
  in
  let cq =
    Cq.create
      ~var_names:[| "x"; "y"; "z" |]
      ~head:(Varset.of_list [ 0; 2 ])
      atoms
  in
  let cqap = Cq.with_access cq (Varset.singleton 0) in
  let db = Db.create () in
  Db.add db "R" r_rows;
  Db.add db "S" s_rows;
  (cqap, db, Engine.build_auto ~max_pmtds:64 cqap ~db ~budget:1000)

let q_x v = Relation.of_list (Schema.of_list [ 0 ]) [ [| v |] ]

let test_redundant_insert () =
  let _, _, eng = build_path ~r_rows:[ [| 1; 2 |] ] ~s_rows:[ [| 2; 3 |] ] in
  let before = sorted (Engine.answer eng ~q_a:(q_x 1)) in
  Alcotest.(check (list (list int))) "initial answer" [ [ 1; 3 ] ] before;
  (* inserting a tuple that is already present must be a no-op *)
  let effective, _ = Engine.insert eng "R" [| 1; 2 |] in
  Alcotest.(check bool) "redundant insert ineffective" false effective;
  Alcotest.(check int) "epoch unchanged" 0 (Engine.epoch eng);
  Alcotest.(check (list (list int)))
    "answer unchanged" before
    (sorted (Engine.answer eng ~q_a:(q_x 1)));
  (* deleting a tuple that was never there is equally a no-op *)
  let effective, _ = Engine.delete eng "S" [| 9; 9 |] in
  Alcotest.(check bool) "redundant delete ineffective" false effective;
  Alcotest.(check int) "epoch still unchanged" 0 (Engine.epoch eng)

let test_last_witness_delete () =
  (* (1,3) has two witnesses through y ∈ {2, 4}; (1,5) has one *)
  let _, _, eng =
    build_path
      ~r_rows:[ [| 1; 2 |]; [| 1; 4 |] ]
      ~s_rows:[ [| 2; 3 |]; [| 4; 3 |]; [| 4; 5 |] ]
  in
  Alcotest.(check (list (list int)))
    "both answers present"
    [ [ 1; 3 ]; [ 1; 5 ] ]
    (sorted (Engine.answer eng ~q_a:(q_x 1)));
  (* drop one witness of (1,3): the answer must survive via the other *)
  let effective, _ = Engine.delete eng "S" [| 2; 3 |] in
  Alcotest.(check bool) "witness delete effective" true effective;
  Alcotest.(check (list (list int)))
    "answer survives on the second witness"
    [ [ 1; 3 ]; [ 1; 5 ] ]
    (sorted (Engine.answer eng ~q_a:(q_x 1)));
  (* drop the last witness: now (1,3) must disappear, (1,5) stay *)
  let effective, _ = Engine.delete eng "S" [| 4; 3 |] in
  Alcotest.(check bool) "last-witness delete effective" true effective;
  Alcotest.(check (list (list int)))
    "answer gone with its last witness"
    [ [ 1; 5 ] ]
    (sorted (Engine.answer eng ~q_a:(q_x 1)));
  (* and it comes back on re-insert *)
  let effective, _ = Engine.insert eng "S" [| 2; 3 |] in
  Alcotest.(check bool) "re-insert effective" true effective;
  Alcotest.(check (list (list int)))
    "answer restored"
    [ [ 1; 3 ]; [ 1; 5 ] ]
    (sorted (Engine.answer eng ~q_a:(q_x 1)));
  Alcotest.(check int) "three effective deltas" 3 (Engine.epoch eng)

let test_snapshot_after_deltas () =
  let _, _, eng =
    build_path
      ~r_rows:[ [| 1; 2 |]; [| 6; 7 |] ]
      ~s_rows:[ [| 2; 3 |]; [| 7; 8 |] ]
  in
  ignore (Engine.insert eng "R" [| 1; 7 |]);
  ignore (Engine.delete eng "S" [| 7; 8 |]);
  ignore (Engine.insert eng "S" [| 2; 9 |]);
  Alcotest.(check int) "epoch after deltas" 3 (Engine.epoch eng);
  let path = Filename.temp_file "stt_incr" ".snap" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Engine.save eng path with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "save failed");
  let loaded =
    match Engine.load path with
    | Ok l -> l
    | Error _ -> Alcotest.fail "load failed"
  in
  Alcotest.(check int) "epoch round-trips" 3 (Engine.epoch loaded);
  Alcotest.(check int) "space round-trips" (Engine.space eng)
    (Engine.space loaded);
  Alcotest.(check bool)
    "loaded engine is a static replica" false
    (Engine.supports_maintenance loaded);
  (* observationally identical: same answers and same op counts *)
  let reqs = List.map q_x [ 1; 6; 7 ] in
  let a = Engine.answer_batch eng reqs in
  let b = Engine.answer_batch loaded reqs in
  List.iteri
    (fun j ((ra, ca), (rb, cb)) ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "request %d: same answer" j)
        (sorted ra) (sorted rb);
      if ca <> cb then
        Alcotest.failf
          "request %d: op counts differ (probes %d/%d tuples %d/%d scans \
           %d/%d)"
          j ca.Cost.probes cb.Cost.probes ca.Cost.tuples cb.Cost.tuples
          ca.Cost.scans cb.Cost.scans)
    (List.combine a b);
  (* a replica must reject further deltas rather than drift silently *)
  match Engine.insert loaded "R" [| 5; 5 |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "replica accepted a delta"

let () =
  Alcotest.run "incremental"
    [
      ( "edge-cases",
        [
          Alcotest.test_case "redundant insert/delete are no-ops" `Quick
            test_redundant_insert;
          Alcotest.test_case "last-witness delete" `Quick
            test_last_witness_delete;
          Alcotest.test_case "snapshot after deltas round-trips" `Quick
            test_snapshot_after_deltas;
        ] );
      ( "churn",
        [
          Alcotest.test_case
            (Printf.sprintf
               "%d random instances, interleaved deltas vs rebuild"
               n_instances)
            `Slow test_churn_differential;
        ] );
    ]
