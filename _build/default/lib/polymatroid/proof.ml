open Stt_hypergraph
open Stt_lp

type step =
  | Submod of { i : Varset.t; j : Varset.t }
  | Mono of { x : Varset.t; y : Varset.t }
  | Comp of { x : Varset.t; y : Varset.t }
  | Decomp of { x : Varset.t; y : Varset.t }

type weighted = { w : Rat.t; step : step }
type seq = weighted list

let step_vector = function
  | Submod { i; j } ->
      if not (Varset.crossing i j) then invalid_arg "Submod: need I ⊥ J";
      Cvec.of_list
        [ ((j, Varset.union i j), Rat.one);
          ((Varset.inter i j, i), Rat.minus_one) ]
  | Mono { x; y } ->
      if not (Varset.strict_subset x y) then invalid_arg "Mono: need X ⊂ Y";
      Cvec.of_list
        [ ((Varset.empty, y), Rat.minus_one); ((Varset.empty, x), Rat.one) ]
  | Comp { x; y } ->
      if not (Varset.strict_subset x y) then invalid_arg "Comp: need X ⊂ Y";
      if Varset.is_empty x then invalid_arg "Comp: need X ≠ ∅";
      Cvec.of_list
        [ ((Varset.empty, y), Rat.one);
          ((x, y), Rat.minus_one);
          ((Varset.empty, x), Rat.minus_one) ]
  | Decomp { x; y } ->
      if not (Varset.strict_subset x y) then invalid_arg "Decomp: need X ⊂ Y";
      if Varset.is_empty x then invalid_arg "Decomp: need X ≠ ∅";
      Cvec.of_list
        [ ((Varset.empty, y), Rat.minus_one);
          ((x, y), Rat.one);
          ((Varset.empty, x), Rat.one) ]

let apply delta { w; step } =
  if Rat.sign w < 0 then None
  else
    let delta' = Cvec.add delta (Cvec.scale w (step_vector step)) in
    if Cvec.is_nonneg delta' then Some delta' else None

let run delta seq =
  List.fold_left
    (fun acc s -> match acc with None -> None | Some d -> apply d s)
    (Some delta) seq

let check ~delta ~lambda seq =
  match run delta seq with
  | None -> false
  | Some final -> Cvec.geq final lambda

let pp_step names ppf =
  let pv = Varset.pp_named names in
  function
  | Submod { i; j } -> Format.fprintf ppf "submod(%a,%a)" pv i pv j
  | Mono { x; y } -> Format.fprintf ppf "mono(%a⊂%a)" pv x pv y
  | Comp { x; y } -> Format.fprintf ppf "comp(%a,%a)" pv x pv y
  | Decomp { x; y } -> Format.fprintf ppf "decomp(%a,%a)" pv x pv y

let pp names ppf seq =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    (fun ppf { w; step } ->
      Format.fprintf ppf "%a·%a" Rat.pp w (pp_step names) step)
    ppf seq

(* ------------------------------------------------------------------ *)
(* Goal-directed proof search (Theorem D.1, constructive, small cases) *)
(* ------------------------------------------------------------------ *)

(* candidate moves at a state δ, aimed at the deficits of λ:
   - composition to build a deficient unconditional coordinate (∅, B)
     from available (∅, X) and (X, B) mass;
   - monotonicity down from available (∅, Y) with Y ⊃ B;
   - submodularity to re-key an available conditional (I∩J, I) into the
     (X, B) dictionary a later composition needs;
   - decomposition of available (∅, Y) to free both a prefix and a
     dictionary. *)
let candidate_moves delta lambda =
  let avail = Cvec.to_list delta in
  let deficits =
    List.filter
      (fun (k, c) -> Stt_lp.Rat.compare (Cvec.get delta k) c < 0)
      (Cvec.to_list lambda)
  in
  let moves = ref [] in
  let push w step = moves := { w; step } :: !moves in
  let unconditional =
    List.filter (fun ((x, _), _) -> Varset.is_empty x) avail
  in
  let conditional =
    List.filter (fun ((x, _), _) -> not (Varset.is_empty x)) avail
  in
  List.iter
    (fun ((dx, b), goal) ->
      let need = Stt_lp.Rat.sub goal (Cvec.get delta (dx, b)) in
      if Varset.is_empty dx then begin
        (* unconditional deficit (∅, B) *)
        (* composition: (∅, X) + (X, B) → (∅, B) *)
        List.iter
          (fun ((x, y), w_dict) ->
            if Varset.equal y b && not (Varset.is_empty x) then begin
              let w_base = Cvec.get delta (Varset.empty, x) in
              let w = Stt_lp.Rat.min need (Stt_lp.Rat.min w_dict w_base) in
              if Stt_lp.Rat.sign w > 0 then push w (Comp { x; y = b })
            end)
          conditional;
        (* monotonicity: (∅, Y ⊃ B) → (∅, B) *)
        List.iter
          (fun ((_, y), w_avail) ->
            if Varset.strict_subset b y then
              push (Stt_lp.Rat.min need w_avail) (Mono { x = b; y }))
          unconditional;
        (* submodularity feeding a future composition into B: re-key any
           available (I∩J, I) as (J, I∪J) with I∪J = B (for an
           unconditional source, J = B \ I) *)
        List.iter
          (fun ((x', y'), w_avail) ->
            if Varset.subset y' b && not (Varset.equal y' b) then begin
              let j = Varset.union x' (Varset.diff b y') in
              if
                Varset.crossing y' j
                && Varset.equal (Varset.inter y' j) x'
                && Varset.equal (Varset.union y' j) b
              then push (Stt_lp.Rat.min need w_avail) (Submod { i = y'; j })
            end)
          avail;
        (* decomposition of an available superset *)
        List.iter
          (fun ((_, y), w_avail) ->
            if Varset.strict_subset b y then
              push (Stt_lp.Rat.min need w_avail) (Decomp { x = b; y }))
          unconditional
      end
      else begin
        (* conditional deficit (X, B): decompose an available (∅, B),
           or re-key some available (I∩J, I) with I∪J = B, I∩J mapped
           onto X by choosing J = X *)
        let w_avail = Cvec.get delta (Varset.empty, b) in
        if Stt_lp.Rat.sign (Stt_lp.Rat.min need w_avail) > 0 then
          push (Stt_lp.Rat.min need w_avail) (Decomp { x = dx; y = b });
        List.iter
          (fun ((x', y'), w_av) ->
            if
              Varset.crossing y' dx
              && Varset.equal (Varset.inter y' dx) x'
              && Varset.equal (Varset.union y' dx) b
            then push (Stt_lp.Rat.min need w_av) (Submod { i = y'; j = dx }))
          avail
      end)
    deficits;
  (* dedup *)
  List.sort_uniq compare !moves

let derive ?(max_depth = 10) ~delta ~lambda () =
  let seen = Hashtbl.create 1024 in
  let rec dfs delta depth acc =
    if Cvec.geq delta lambda then Some (List.rev acc)
    else if depth = 0 then None
    else begin
      let key = (Cvec.to_list delta, depth) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        let rec try_moves = function
          | [] -> None
          | mv :: rest -> (
              match apply delta mv with
              | None -> try_moves rest
              | Some delta' -> (
                  match dfs delta' (depth - 1) (mv :: acc) with
                  | Some _ as found -> found
                  | None -> try_moves rest))
        in
        try_moves (candidate_moves delta lambda)
      end
    end
  in
  let rec deepen d =
    if d > max_depth then None
    else
      match dfs delta d [] with
      | Some seq when check ~delta ~lambda seq -> Some seq
      | _ ->
          Hashtbl.reset seen;
          deepen (d + 1)
  in
  deepen 1
