(** Set functions [h : 2^[n] → Q], stored densely by bitmask. *)

open Stt_hypergraph

type t

val create : int -> (Varset.t -> Stt_lp.Rat.t) -> t
(** [create n f]: tabulate [f] on all subsets of [{0..n-1}].
    [f empty] is forced to 0. *)

val n : t -> int
val get : t -> Varset.t -> Stt_lp.Rat.t
val conditional : t -> Varset.t -> Varset.t -> Stt_lp.Rat.t
(** [conditional h x y] = [h(Y) - h(X)] (the paper's [h(Y|X)]). *)

val is_monotone : t -> bool
val is_submodular : t -> bool
val is_polymatroid : t -> bool

val of_cardinalities : int -> (Varset.t -> int) -> t
(** [log2]-cardinality profile of a relation instance: [h(F) = log2 c(F)]
    approximated as a rational (used only in tests/diagnostics). *)

val pp : Format.formatter -> t -> unit
