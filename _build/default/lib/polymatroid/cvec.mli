(** Sparse vectors over conditional-polymatroid coordinates.

    A coordinate is a pair [(X, Y)] with [X ⊂ Y]; the coordinate value is
    the coefficient of [h(Y|X)] (with [h(Y|∅) = h(Y)]).  These vectors
    represent the [δ] and [λ] sides of Shannon-flow inequalities and the
    intermediate states of proof sequences. *)

open Stt_hypergraph

type key = Varset.t * Varset.t
type t

val zero : t
val of_list : (key * Stt_lp.Rat.t) list -> t
(** Sums duplicate keys, drops zeros.  Raises [Invalid_argument] unless
    [X ⊂ Y] for every key. *)

val to_list : t -> (key * Stt_lp.Rat.t) list
val get : t -> key -> Stt_lp.Rat.t
val set : t -> key -> Stt_lp.Rat.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Stt_lp.Rat.t -> t -> t
val is_nonneg : t -> bool
val geq : t -> t -> bool
(** Element-wise [>=]. *)

val norm1 : t -> Stt_lp.Rat.t
(** Sum of absolute coordinate values. *)

val term : Stt_lp.Rat.t -> x:Varset.t -> y:Varset.t -> t
(** The vector [c · e_{(X,Y)}]. *)

val unconditional : Stt_lp.Rat.t -> Varset.t -> t
(** [term c ~x:Varset.empty ~y]. *)

val dot_setfun : t -> Setfun.t -> Stt_lp.Rat.t
(** [⟨v, h⟩ = Σ c_{X,Y} · (h(Y) − h(X))]. *)

val pp : string array -> Format.formatter -> t -> unit
