open Stt_lp
open Stt_hypergraph

type t = { n : int; table : Rat.t array }

let create n f =
  if n < 0 || n > 20 then invalid_arg "Setfun.create: n out of range";
  let table =
    Array.init (1 lsl n) (fun mask ->
        if mask = 0 then Rat.zero else f (Varset.of_int_unsafe mask))
  in
  { n; table }

let n t = t.n
let get t s = t.table.(Varset.to_int s)
let conditional t x y = Rat.sub (get t y) (get t x)

let is_monotone t =
  let ok = ref true in
  for mask = 0 to (1 lsl t.n) - 1 do
    for i = 0 to t.n - 1 do
      if mask land (1 lsl i) = 0 then
        if Rat.compare t.table.(mask lor (1 lsl i)) t.table.(mask) < 0 then
          ok := false
    done
  done;
  !ok

let is_submodular t =
  (* elemental: h(Z+i) + h(Z+j) >= h(Z+i+j) + h(Z) for i < j, Z avoiding both *)
  let ok = ref true in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      let bi = 1 lsl i and bj = 1 lsl j in
      for mask = 0 to (1 lsl t.n) - 1 do
        if mask land bi = 0 && mask land bj = 0 then begin
          let lhs = Rat.add t.table.(mask lor bi) t.table.(mask lor bj) in
          let rhs = Rat.add t.table.(mask lor bi lor bj) t.table.(mask) in
          if Rat.compare lhs rhs < 0 then ok := false
        end
      done
    done
  done;
  !ok

let is_nonnegative t = Array.for_all (fun v -> Rat.sign v >= 0) t.table

let is_polymatroid t =
  Rat.is_zero t.table.(0) && is_nonnegative t && is_monotone t
  && is_submodular t

let of_cardinalities n card =
  create n (fun s ->
      let c = card s in
      if c <= 0 then Rat.zero else Rat.of_float_approx (Float.log2 (float_of_int c)))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for mask = 0 to (1 lsl t.n) - 1 do
    Format.fprintf ppf "h%a = %a@ " Varset.pp
      (Varset.of_int_unsafe mask)
      Rat.pp t.table.(mask)
  done;
  Format.fprintf ppf "@]"
