(** Proof sequences for Shannon-flow inequalities (Appendix D.1).

    A proof sequence transforms the left-hand vector [δ] into a vector
    dominating [λ] by weighted applications of the four rules
    (submodularity, monotonicity, composition, decomposition), keeping
    every intermediate vector nonnegative.  Each rule corresponds to a
    relational operator in PANDA; here we validate sequences (the
    appendix's sequences are encoded in [Stt_core] and machine-checked). *)

open Stt_hypergraph
open Stt_lp

type step =
  | Submod of { i : Varset.t; j : Varset.t }
      (** uses [h(I∪J|J) ≤ h(I|I∩J)] for crossing [I ⊥ J]: moves mass
          from coordinate [(I∩J, I)] to [(J, I∪J)] *)
  | Mono of { x : Varset.t; y : Varset.t }
      (** uses [h(X) ≤ h(Y)] for [X ⊂ Y]: moves mass from [(∅,Y)] to [(∅,X)] *)
  | Comp of { x : Varset.t; y : Varset.t }
      (** composition [h(X) + h(Y|X) ≥ h(Y)]: moves mass from [(∅,X)]
          and [(X,Y)] to [(∅,Y)] *)
  | Decomp of { x : Varset.t; y : Varset.t }
      (** decomposition [h(Y) ≥ h(X) + h(Y|X)]: moves mass from [(∅,Y)]
          to [(∅,X)] and [(X,Y)] *)

type weighted = { w : Rat.t; step : step }
type seq = weighted list

val step_vector : step -> Cvec.t
(** The vector [f] such that [⟨f, h⟩ ≤ 0] for every polymatroid; applying
    a step replaces [δ] by [δ + w·f]. *)

val apply : Cvec.t -> weighted -> Cvec.t option
(** [None] if the result would have a negative coordinate. *)

val run : Cvec.t -> seq -> Cvec.t option
(** Apply all steps in order; [None] on the first negativity violation. *)

val check : delta:Cvec.t -> lambda:Cvec.t -> seq -> bool
(** Conditions (1)–(4) of a proof sequence: all weights nonnegative, all
    intermediate vectors nonnegative and the final vector dominates
    [λ]. *)

val pp_step : string array -> Format.formatter -> step -> unit
val pp : string array -> Format.formatter -> seq -> unit

val derive :
  ?max_depth:int -> delta:Cvec.t -> lambda:Cvec.t -> unit -> seq option
(** Search for a proof sequence deriving [λ] from [δ] (iterative
    deepening over goal-directed rule applications, Theorem D.1's
    constructive direction for small instances).  Returns a checked
    sequence or [None] when none is found within [max_depth] steps
    (default 10).  Intended for the paper-sized inequalities (a handful
    of coordinates); not a general-purpose prover. *)
