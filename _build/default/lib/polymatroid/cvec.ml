open Stt_lp
open Stt_hypergraph

type key = Varset.t * Varset.t

module M = Map.Make (struct
  type t = key

  let compare (a1, a2) (b1, b2) =
    let c = Varset.compare a1 b1 in
    if c <> 0 then c else Varset.compare a2 b2
end)

type t = Rat.t M.t

let zero = M.empty

let check_key (x, y) =
  if not (Varset.strict_subset x y) then
    invalid_arg "Cvec: key must satisfy X ⊂ Y"

let set v k c =
  check_key k;
  if Rat.is_zero c then M.remove k v else M.add k c v

let get v k = match M.find_opt k v with Some c -> c | None -> Rat.zero

let of_list kvs =
  List.fold_left (fun acc (k, c) -> set acc k (Rat.add (get acc k) c)) zero kvs

let to_list v = M.bindings v
let add a b = M.fold (fun k c acc -> set acc k (Rat.add (get acc k) c)) b a
let scale s v = if Rat.is_zero s then zero else M.map (Rat.mul s) v
let sub a b = add a (scale Rat.minus_one b)
let is_nonneg v = M.for_all (fun _ c -> Rat.sign c >= 0) v
let geq a b = is_nonneg (sub a b)
let norm1 v = M.fold (fun _ c acc -> Rat.add acc (Rat.abs c)) v Rat.zero

let term c ~x ~y = set zero (x, y) c
let unconditional c y = term c ~x:Varset.empty ~y

let dot_setfun v h =
  M.fold
    (fun (x, y) c acc -> Rat.add acc (Rat.mul c (Setfun.conditional h x y)))
    v Rat.zero

let pp names ppf v =
  let pp_term ppf ((x, y), c) =
    if Varset.is_empty x then
      Format.fprintf ppf "%a·h(%a)" Rat.pp c (Varset.pp_named names) y
    else
      Format.fprintf ppf "%a·h(%a|%a)" Rat.pp c (Varset.pp_named names) y
        (Varset.pp_named names) x
  in
  match to_list v with
  | [] -> Format.pp_print_string ppf "0"
  | terms ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        pp_term ppf terms
