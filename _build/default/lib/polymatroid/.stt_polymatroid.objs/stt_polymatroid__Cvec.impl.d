lib/polymatroid/cvec.ml: Format List Map Rat Setfun Stt_hypergraph Stt_lp Varset
