lib/polymatroid/flow.mli: Cvec Degree Format Rat Setfun Stt_hypergraph Stt_lp
