lib/polymatroid/setfun.mli: Format Stt_hypergraph Stt_lp Varset
