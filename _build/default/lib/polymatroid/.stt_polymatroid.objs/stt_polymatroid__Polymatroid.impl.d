lib/polymatroid/polymatroid.ml: Array Cvec Degree Hashtbl List Lp Printf Rat Stt_hypergraph Stt_lp Sys Unix Varset
