lib/polymatroid/proof.mli: Cvec Format Rat Stt_hypergraph Stt_lp Varset
