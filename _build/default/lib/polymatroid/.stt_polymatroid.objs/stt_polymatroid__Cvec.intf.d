lib/polymatroid/cvec.mli: Format Setfun Stt_hypergraph Stt_lp Varset
