lib/polymatroid/setfun.ml: Array Float Format Rat Stt_hypergraph Stt_lp Varset
