lib/polymatroid/polymatroid.mli: Cvec Degree Lp Rat Stt_hypergraph Stt_lp Varset
