lib/polymatroid/flow.ml: Cvec Degree Format List Lp Polymatroid Rat Setfun Stt_hypergraph Stt_lp Varset
