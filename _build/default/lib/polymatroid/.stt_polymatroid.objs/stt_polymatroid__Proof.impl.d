lib/polymatroid/proof.ml: Cvec Format Hashtbl List Rat Stt_hypergraph Stt_lp Varset
