open Stt_hypergraph
open Stt_lp

type h = {
  n : int;
  vars : Lp.var array; (* indexed by bitmask; 0 unused *)
  lazy_cuts : bool;
  added : (int * int * int, Lp.cstr) Hashtbl.t; (* (i, j, Z) submod cuts *)
  model : Lp.model;
}

let var h s =
  if Varset.is_empty s then invalid_arg "Polymatroid.var: empty set";
  h.vars.(Varset.to_int s)

let expr h (v : Cvec.t) =
  List.concat_map
    (fun ((x, y), c) ->
      let ty = [ (c, var h y) ] in
      if Varset.is_empty x then ty else (Rat.neg c, var h x) :: ty)
    (Cvec.to_list v)

let submod_terms h ~i ~j ~z =
  let bi = Varset.singleton i and bj = Varset.singleton j in
  let zi = Varset.union z bi
  and zj = Varset.union z bj
  and zij = Varset.union (Varset.union z bi) bj in
  let terms =
    [ (Rat.one, var h zi); (Rat.one, var h zj); (Rat.minus_one, var h zij) ]
  in
  if Varset.is_empty z then terms else (Rat.minus_one, var h z) :: terms

let add_submod_row model h ~i ~j ~z =
  let c = Lp.add_ge model (submod_terms h ~i ~j ~z) Rat.zero in
  Hashtbl.replace h.added (i, j, Varset.to_int z) c

let add ?(lazy_cuts = false) model ~name ~n =
  let vars =
    Array.init (1 lsl n) (fun mask ->
        Lp.var model (Printf.sprintf "%s_%d" name mask))
  in
  let h = { n; vars; lazy_cuts; added = Hashtbl.create 64; model } in
  let full = Varset.full n in
  (* elemental monotonicity: h([n]) >= h([n] - i) *)
  Varset.iter
    (fun i ->
      let smaller = Varset.remove i full in
      if not (Varset.is_empty smaller) then
        ignore
          (Lp.add_ge model
             [ (Rat.one, var h full); (Rat.minus_one, var h smaller) ]
             Rat.zero))
    full;
  (* elemental submodularity — eager for small n; with lazy cuts, seed
     only the rows with empty conditioning set (pairwise subadditivity),
     the rest are generated on demand *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      List.iter
        (fun z ->
          if
            (not (Varset.mem i z))
            && (not (Varset.mem j z))
            && ((not lazy_cuts) || Varset.is_empty z)
          then add_submod_row model h ~i ~j ~z)
        (Varset.subsets full)
    done
  done;
  h

let value_of h (primal : Lp.var -> Rat.t) s =
  if Varset.is_empty s then Rat.zero else primal (var h s)

(* add the elemental submodularity constraints violated by the current
   primal; returns how many were added *)
(* iterate all elemental (i, j, Z) triples; [f] decides violation from
   the values of the four corner sets and returns true when a cut was
   added/enabled *)
let fold_elemental h f =
  let count = ref 0 in
  let full = Varset.full h.n in
  for i = 0 to h.n - 1 do
    for j = i + 1 to h.n - 1 do
      List.iter
        (fun z ->
          if (not (Varset.mem i z)) && not (Varset.mem j z) then
            if f i j z then incr count)
        (Varset.subsets full)
    done
  done;
  !count

let add_violated_cuts model h primal =
  if not h.lazy_cuts then 0
  else
    fold_elemental h (fun i j z ->
        let bi = Varset.singleton i and bj = Varset.singleton j in
        let v s = value_of h primal s in
        let gap =
          Rat.sub
            (Rat.add (v (Varset.union (Varset.union z bi) bj)) (v z))
            (Rat.add (v (Varset.union z bi)) (v (Varset.union z bj)))
        in
        if Rat.sign gap <= 0 then false
        else
          match Hashtbl.find_opt h.added (i, j, Varset.to_int z) with
          | Some c when Lp.is_enabled model c ->
              false (* enabled yet violated: numerical impossibility *)
          | Some c ->
              Lp.set_enabled model c true;
              true
          | None ->
              add_submod_row model h ~i ~j ~z;
              true)

let fvalue_of h (fprimal : Lp.var -> float) s =
  if Varset.is_empty s then 0.0 else fprimal (var h s)

let add_violated_cuts_float model h fprimal =
  if not h.lazy_cuts then 0
  else
    fold_elemental h (fun i j z ->
        let bi = Varset.singleton i and bj = Varset.singleton j in
        let v s = fvalue_of h fprimal s in
        let gap =
          v (Varset.union (Varset.union z bi) bj)
          +. v z
          -. v (Varset.union z bi)
          -. v (Varset.union z bj)
        in
        if gap <= 1e-3 then false
        else
          match Hashtbl.find_opt h.added (i, j, Varset.to_int z) with
          | Some c when Lp.is_enabled model c -> false
          | Some c ->
              Lp.set_enabled model c true;
              true
          | None ->
              add_submod_row model h ~i ~j ~z;
              true)

(* after the float presolve, keep only the cuts carrying dual mass at
   the (perturbed, hence essentially non-degenerate) optimum: the exact
   solver then works on a small system, re-enabling anything it still
   needs *)
let disable_slack_cuts model h fdual =
  Hashtbl.iter
    (fun _ c ->
      if Lp.is_enabled model c && abs_float (fdual c) <= 1e-9 then
        Lp.set_enabled model c false)
    h.added

(* a cap larger than any meaningful log-size keeps lazily-cut LPs bounded;
   hitting it is reported as unbounded *)
let cap = Rat.of_int 1_000_000

(* resolve until the optimum satisfies every generated cut *)
let debug = match Sys.getenv_opt "STT_LP_DEBUG" with Some _ -> true | None -> false

(* Soundness note: the dual of any relaxation is a valid dual of the
   full program (omitted rows extend with multiplier 0), and the relaxed
   maximum upper-bounds the true one — so every certificate returned
   here yields a *valid* Shannon-flow inequality / tradeoff.  Iterating
   only tightens the value.  We therefore stop early once the objective
   value stabilizes across consecutive rounds, or after a time budget —
   in both cases the result is a certified (and in practice tight)
   bound. *)
let solve_cuts model hs objective =
  let start = Unix.gettimeofday () in
  let time_budget = 30.0 in
  (* Phase 1 — float presolve: discover the cut set cheaply, then keep
     only the cuts binding at the (approximate) optimum *)
  let lazy_mode = List.exists (fun h -> h.lazy_cuts) hs in
  if lazy_mode then begin
    let rec float_loop i =
      if i > 200 || Unix.gettimeofday () -. start > time_budget then ()
      else
        match Lp.maximize_float model objective with
        | None -> ()
        | Some fsol ->
            let added =
              List.fold_left
                (fun acc h ->
                  acc + add_violated_cuts_float model h fsol.Lp.fprimal)
                0 hs
            in
            if debug then
              Printf.eprintf "  [fcuts] iter %d: added=%d value=%g\n%!" i
                added fsol.Lp.fvalue;
            if added > 0 then float_loop (i + 1)
    in
    float_loop 0;
    match Lp.maximize_float model objective with
    | Some fsol ->
        List.iter (fun h -> disable_slack_cuts model h fsol.Lp.fdual) hs;
        if debug then
          Printf.eprintf "  [fcuts] working set: %d rows\n%!"
            (Lp.num_enabled_rows model)
    | None -> ()
  end;
  (* Phase 2 — exact loop over the working set *)
  let rec loop i prev_value prev_outcome =
    let t0 = if debug then Unix.gettimeofday () else 0.0 in
    match
      (* on rational overflow deep in a pivot, fall back to the previous
         round's outcome — a valid (if looser) certificate *)
      try Lp.maximize model objective
      with Rat.Overflow -> (
        match prev_outcome with Some out -> out | None -> raise Rat.Overflow)
    with
    | (Lp.Infeasible | Lp.Unbounded) as out -> out
    | Lp.Solution sol as out ->
        let stabilized =
          (* never conclude from a cap-valued (still unbounded) round *)
          Rat.compare sol.Lp.value cap < 0
          &&
          match prev_value with
          | Some (v1, _) -> Rat.equal v1 sol.Lp.value
          | None -> false
        in
        if stabilized || Unix.gettimeofday () -. start > time_budget then out
        else begin
          let added =
            List.fold_left
              (fun acc h -> acc + add_violated_cuts model h sol.Lp.primal)
              0 hs
          in
          if debug then
            Printf.eprintf
              "  [cuts] iter %d: %.2fs rows=%d added=%d value=%s\n%!" i
              (Unix.gettimeofday () -. t0)
              (Lp.num_constraints model) added
              (Rat.to_string sol.Lp.value);
          if added = 0 then out
          else
            loop (i + 1)
              (Some
                 ( sol.Lp.value,
                   match prev_value with
                   | Some (v1, _) -> v1
                   | None -> cap ))
              (Some out)
        end
  in
  loop 0 None None

let constrain_degree model h (c : Degree.t) ~logd ~logq =
  let bound = Degree.logsize_eval ~logd ~logq c.Degree.bound in
  let terms = expr h (Cvec.term Rat.one ~x:c.Degree.x ~y:c.Degree.y) in
  Lp.add_le model terms bound

let log_size_bound ~n ~dc ~targets ~logd ~logq =
  match targets with
  | [] -> invalid_arg "log_size_bound: no targets"
  | _ ->
      let model = Lp.create () in
      let h = add ~lazy_cuts:(n >= 6) model ~name:"h" ~n in
      List.iter (fun c -> ignore (constrain_degree model h c ~logd ~logq)) dc;
      let w = Lp.var model "w" in
      ignore (Lp.add_le model [ (Rat.one, w) ] cap);
      List.iter
        (fun b ->
          if Varset.is_empty b then invalid_arg "log_size_bound: empty target"
          else
            ignore
              (Lp.add_le model [ (Rat.one, w); (Rat.minus_one, var h b) ]
                 Rat.zero))
        targets;
      (match solve_cuts model [ h ] [ (Rat.one, w) ] with
      | Lp.Solution s when Rat.compare s.Lp.value cap < 0 -> Some s.Lp.value
      | Lp.Solution _ -> None
      | Lp.Unbounded -> None
      | Lp.Infeasible -> None)
