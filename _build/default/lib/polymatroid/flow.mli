(** Shannon-flow inequalities (Appendix D.1).

    A Shannon-flow inequality is [⟨δ, h⟩ ≥ ⟨λ, h⟩] over conditional
    coordinates, required to hold for every polymatroid [h ∈ Γ_n].  This
    module verifies candidate inequalities exactly by LP. *)

open Stt_hypergraph
open Stt_lp

type t = { delta : Cvec.t; lambda : Cvec.t; n : int }

val make : n:int -> delta:Cvec.t -> lambda:Cvec.t -> t

val slack : t -> Rat.t
(** [min_{h ∈ Γ_n, h([n]) ≤ 1} ⟨δ − λ, h⟩].  The inequality is valid iff
    this is [≥ 0] (by homogeneity of the cone). *)

val is_valid : t -> bool

val violating_polymatroid : t -> Setfun.t option
(** A witness polymatroid with [⟨δ, h⟩ < ⟨λ, h⟩], if any. *)

val implied_bound : t -> (Degree.t list -> Degree.logsize option)
(** Given the constraint set whose coordinates appear in [δ], compute the
    implied upper bound [Σ δ_{Y|X} · n_{Y|X}]: returns [None] when some
    positive δ-coordinate has no matching constraint. *)

val pp : string array -> Format.formatter -> t -> unit
