(** LP encodings of the polymatroid cone Γ_n and the polymatroid size
    bound [LogSizeBound] of disjunctive rules (Theorem C.1).

    For larger [n] the submodularity constraints are generated lazily
    (cutting planes): the LP is solved over elemental monotonicity plus
    the cuts added so far, the primal optimum is checked against all
    elemental submodularity inequalities, violated ones are added, and
    the LP is re-solved until clean.  Because omitted constraints are
    slack at the final optimum, the dual extends with zeros — dual
    coefficient extraction stays exact. *)

open Stt_hypergraph
open Stt_lp

type h
(** One polymatroid's worth of LP variables: [h(S)] for every non-empty
    [S ⊆ [n]] (with [h(∅)] the constant 0). *)

val add : ?lazy_cuts:bool -> Lp.model -> name:string -> n:int -> h
(** With [lazy_cuts:false] (default) all elemental submodularity rows are
    added eagerly; with [true] only elemental monotonicity, and callers
    must iterate via {!solve_cuts}. *)

val var : h -> Varset.t -> Lp.var
(** Raises [Invalid_argument] on the empty set. *)

val expr : h -> Cvec.t -> Lp.linexpr
(** Translate a conditional-coordinate vector into a linear expression
    over this polymatroid's variables. *)

val add_violated_cuts : Lp.model -> h -> (Lp.var -> Rat.t) -> int
(** Add the elemental submodularity rows violated by a primal point;
    returns the number added (0 when the point is a polymatroid or cuts
    are eager). *)

val solve_cuts : Lp.model -> h list -> Lp.linexpr -> Lp.outcome
(** Maximize, adding violated cuts for the given polymatroids and
    re-solving until none remain.  The returned solution's duals are
    valid for the full (eager) program. *)

val constrain_degree :
  Lp.model -> h -> Degree.t -> logd:Rat.t -> logq:Rat.t -> Lp.cstr
(** Add [h(Y|X) ≤ log N_{Y|X}] with the bound evaluated numerically. *)

val cap : Rat.t
(** A bound larger than any meaningful log-size, used to keep lazily-cut
    programs bounded; reaching it is reported as unbounded. *)

val log_size_bound :
  n:int ->
  dc:Degree.t list ->
  targets:Varset.t list ->
  logd:Rat.t ->
  logq:Rat.t ->
  Rat.t option
(** [LogSizeBound_{Γ_n ∩ HDC}] of a disjunctive rule with the given
    targets: [max_h min_B h(B)].  [None] if unbounded. *)
