open Stt_hypergraph
open Stt_lp

type t = { delta : Cvec.t; lambda : Cvec.t; n : int }

let make ~n ~delta ~lambda = { delta; lambda; n }

let solve_min t =
  let model = Lp.create () in
  let h = Polymatroid.add model ~name:"h" ~n:t.n in
  ignore
    (Lp.add_le model [ (Rat.one, Polymatroid.var h (Varset.full t.n)) ] Rat.one);
  let objective = Polymatroid.expr h (Cvec.sub t.delta t.lambda) in
  let objective = if objective = [] then [ (Rat.zero, Polymatroid.var h (Varset.full t.n)) ] else objective in
  (Lp.minimize model objective, h)

let slack t =
  match fst (solve_min t) with
  | Lp.Solution s -> s.Lp.value
  | Lp.Unbounded -> Rat.of_int (-1) (* cone directions make it arbitrarily bad *)
  | Lp.Infeasible -> assert false (* h = 0 is always feasible *)

let is_valid t = Rat.sign (slack t) >= 0

let violating_polymatroid t =
  let outcome, h = solve_min t in
  match outcome with
  | Lp.Solution s when Rat.sign s.Lp.value < 0 ->
      Some
        (Setfun.create t.n (fun set ->
             if Varset.is_empty set then Rat.zero
             else s.Lp.primal (Polymatroid.var h set)))
  | Lp.Solution _ -> None
  | Lp.Unbounded | Lp.Infeasible -> None

let implied_bound t =
  fun constraints ->
    let find_bound (x, y) =
      List.find_map
        (fun (c : Degree.t) ->
          if Varset.equal c.Degree.x x && Varset.equal c.Degree.y y then
            Some c.Degree.bound
          else None)
        constraints
    in
    List.fold_left
      (fun acc ((x, y), coef) ->
        match acc with
        | None -> None
        | Some total -> (
            if Rat.sign coef <= 0 then Some total
            else
              match find_bound (x, y) with
              | None -> None
              | Some b ->
                  Some (Degree.logsize_add total (Degree.logsize_scale coef b))))
      (Some Degree.logsize_zero)
      (Cvec.to_list t.delta)

let pp names ppf t =
  Format.fprintf ppf "@[<h>%a ≥ %a@]" (Cvec.pp names) t.delta (Cvec.pp names)
    t.lambda
