open Stt_lp

type t = { s_exp : Rat.t; t_exp : Rat.t; d_exp : Rat.t; q_exp : Rat.t }

let make ~s_exp ~t_exp ~d_exp ~q_exp = { s_exp; t_exp; d_exp; q_exp }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd (abs a) (abs b)

let scaled t =
  let dens = [ Rat.den t.s_exp; Rat.den t.t_exp; Rat.den t.d_exp; Rat.den t.q_exp ] in
  let mult = List.fold_left lcm 1 dens in
  let scale v = Rat.mul (Rat.of_int mult) v in
  let nums =
    List.map
      (fun v -> Rat.num (scale v))
      [ t.s_exp; t.t_exp; t.d_exp; t.q_exp ]
  in
  let g = List.fold_left (fun acc n -> gcd acc (abs n)) 0 nums in
  let g = if g = 0 then 1 else g in
  let adjust v = Rat.div (scale v) (Rat.of_int g) in
  {
    s_exp = adjust t.s_exp;
    t_exp = adjust t.t_exp;
    d_exp = adjust t.d_exp;
    q_exp = adjust t.q_exp;
  }

let logt_at t ~logs ~logq =
  if Rat.is_zero t.t_exp then None
  else
    let numer =
      Rat.sub
        (Rat.add t.d_exp (Rat.mul t.q_exp logq))
        (Rat.mul t.s_exp logs)
    in
    Some (Rat.max Rat.zero (Rat.div numer t.t_exp))

let equal a b =
  Rat.equal a.s_exp b.s_exp && Rat.equal a.t_exp b.t_exp
  && Rat.equal a.d_exp b.d_exp && Rat.equal a.q_exp b.q_exp

let compare a b =
  let c = Rat.compare a.s_exp b.s_exp in
  if c <> 0 then c
  else
    let c = Rat.compare a.t_exp b.t_exp in
    if c <> 0 then c
    else
      let c = Rat.compare a.d_exp b.d_exp in
      if c <> 0 then c else Rat.compare a.q_exp b.q_exp

let pp_pow ppf (base, e) =
  if Rat.equal e Rat.one then Format.pp_print_string ppf base
  else Format.fprintf ppf "%s^%a" base Rat.pp e

let pp ppf t =
  let lhs =
    List.filter (fun (_, e) -> Rat.sign e > 0) [ ("S", t.s_exp); ("T", t.t_exp) ]
  in
  let rhs =
    List.filter
      (fun (_, e) -> Rat.sign e > 0)
      [ ("|D|", t.d_exp); ("|Q|", t.q_exp) ]
  in
  let pp_side ppf = function
    | [] -> Format.pp_print_string ppf "1"
    | side ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "·")
          pp_pow ppf side
  in
  Format.fprintf ppf "%a ≅ %a" pp_side lhs pp_side rhs

type curve = (Rat.t * Rat.t) list

let grid ~lo ~hi ~steps =
  List.init (steps + 1) (fun i ->
      let frac = Rat.make i steps in
      Rat.add lo (Rat.mul frac (Rat.sub hi lo)))

let curve_of f xs = List.map (fun x -> (x, f x)) xs

let combine op = function
  | [] -> invalid_arg "Tradeoff.combine: no curves"
  | first :: rest ->
      List.fold_left
        (fun acc curve ->
          List.map2
            (fun (x1, y1) (x2, y2) ->
              if not (Rat.equal x1 x2) then
                invalid_arg "Tradeoff.combine: mismatched abscissae";
              (x1, op y1 y2))
            acc curve)
        first rest

let pointwise_max curves = combine Rat.max curves
let pointwise_min curves = combine Rat.min curves

let dominates_curve a b =
  List.for_all2 (fun (_, ya) (_, yb) -> Rat.compare ya yb <= 0) a b

let pp_curve ppf curve =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (x, y) -> Format.fprintf ppf "(%a,%a)" Rat.pp x Rat.pp y)
    ppf curve
