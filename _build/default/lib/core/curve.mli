(** Exact piecewise-linear tradeoff curves.

    [OBJ(S)] is a concave piecewise-linear function of [log S] (it is
    the value of an LP whose right-hand side moves linearly).  This
    module computes its exact breakpoints by recursive bisection: if the
    values at two budgets and their midpoint are collinear, the segment
    is affine in between; otherwise the interval is split.  The result
    is the curve plotted in Figures 3a/3b without grid artifacts. *)

open Stt_hypergraph
open Stt_lp

type segment = {
  lo : Rat.t;    (** log_D S at the segment's left end *)
  hi : Rat.t;
  lo_t : Rat.t;  (** log_D T at [lo] *)
  hi_t : Rat.t;
}

val slope : segment -> Rat.t option
(** d(log T)/d(log S); [None] for a degenerate (single-point) segment. *)

val rule_curve :
  Rule.t ->
  dc:Degree.t list ->
  ac:Degree.t list ->
  logq:Rat.t ->
  lo:Rat.t ->
  hi:Rat.t ->
  segment list
(** Exact segments of one rule's [OBJ(S)] over [log_D S ∈ [lo, hi]]
    (values clamped below at 0; [Stored] maps to 0, [Impossible] is
    treated as 0 — it cannot arise for rules with T-targets). *)

val combined :
  Rule.t list ->
  dc:Degree.t list ->
  ac:Degree.t list ->
  logq:Rat.t ->
  lo:Rat.t ->
  hi:Rat.t ->
  segment list
(** Segments of [max over rules] of the per-rule curves — the framework's
    answering-time curve (Section 4.3's T_max). *)

val eval : segment list -> Rat.t -> Rat.t option
(** Interpolate the curve at a budget; [None] outside its range. *)

val pp : Format.formatter -> segment list -> unit
