(** Intrinsic space-time tradeoffs [S^a · T^b ≅ |D|^c · |Q_A|^e] and
    piecewise-linear tradeoff curves in the [(log_|D| S, log_|D| T)]
    plane. *)

open Stt_lp

type t = {
  s_exp : Rat.t;
  t_exp : Rat.t;
  d_exp : Rat.t;
  q_exp : Rat.t;
}

val make : s_exp:Rat.t -> t_exp:Rat.t -> d_exp:Rat.t -> q_exp:Rat.t -> t

val scaled : t -> t
(** Scale to the smallest nonnegative integer exponents (multiply by the
    lcm of denominators, divide by the gcd), as printed in the paper's
    tables. *)

val logt_at : t -> logs:Rat.t -> logq:Rat.t -> Rat.t option
(** [log_|D| T] implied at a given space budget ([None] if [t_exp = 0]).
    Clamped below at 0. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Curves: sampled [log_|D| T] as a function of [log_|D| S]. *)
type curve = (Rat.t * Rat.t) list

val grid : lo:Rat.t -> hi:Rat.t -> steps:int -> Rat.t list
val curve_of : (Rat.t -> Rat.t) -> Rat.t list -> curve
val pointwise_max : curve list -> curve
(** All curves must share the same abscissae. *)

val pointwise_min : curve list -> curve
val dominates_curve : curve -> curve -> bool
(** [dominates_curve a b]: [a] is everywhere [<=] [b] (a is at least as
    good) on shared abscissae. *)

val pp_curve : Format.formatter -> curve -> unit
