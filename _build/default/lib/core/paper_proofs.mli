(** The paper's proof sequences, encoded as machine-checkable data.

    Each entry transcribes one joint Shannon-flow inequality from the
    paper (Section 5 and Appendices E/F) together with its two
    participating proof sequences — the preprocessing sequence acting on
    [h_S] and the online sequence acting on [h_T] — and the intrinsic
    tradeoff the inequality implies via Theorem D.6.

    The test suite validates every entry end to end: both sequences
    check under {!Stt_polymatroid.Proof.check}, both participating
    inequalities are verified valid over Γ_n by LP, and the stated
    tradeoff's |D|/|Q| exponents equal the coefficient sums of the
    left-hand side.  Variables use 0-based ids ([x_i ↦ i-1]). *)

open Stt_polymatroid

type entry = {
  name : string;          (** e.g. "E.7 ρ1 (3-reachability)" *)
  n : int;                (** number of query variables *)
  var_names : string array;
  delta_s : Cvec.t;       (** [h_S] terms of the inequality's left side *)
  delta_t : Cvec.t;       (** [h_T] terms (including the [Q_A] terms) *)
  lambda_s : Cvec.t;      (** θ-weighted S-targets on the right side *)
  lambda_t : Cvec.t;      (** λ-weighted T-targets on the right side *)
  seq_s : Proof.seq;      (** proof of ⟨δ_S, h⟩ ≥ ⟨θ, h⟩ *)
  seq_t : Proof.seq;      (** proof of ⟨δ_T, h⟩ ≥ ⟨λ, h⟩ *)
  d_exp : Stt_lp.Rat.t;   (** total |D| mass on the left side *)
  q_exp : Stt_lp.Rat.t;   (** total |Q_A| mass on the left side *)
  tradeoff : Tradeoff.t;  (** the scaled tradeoff stated in the paper *)
}

val all : entry list
(** Every encoded proof, in paper order. *)

val find : string -> entry
(** Lookup by [name]; raises [Not_found]. *)
