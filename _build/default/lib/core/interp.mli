(** A PANDA-style interpreter for proof sequences (Appendix D.3).

    PANDA's central construction turns each step of a Shannon-flow proof
    sequence into a relational operation.  This module implements that
    correspondence over {!Stt_relation} in its candidate-propagation
    form:

    - a {e term} [(X, Y)] with weight [w] carries a dictionary: a
      relation whose tuples encode, for each [X]-binding, a set of
      candidate extensions to [Y];
    - {e composition} [h(X) + h(Y|X) ≥ h(Y)] joins the unconditional
      [X]-term with the [(X,Y)]-dictionary;
    - {e decomposition} splits an unconditional [Y]-term into its
      [X]-projection and the dictionary keyed by [X];
    - {e monotonicity} projects;
    - {e submodularity} [h(I∪J|J) ≤ h(I|I∩J)] re-keys the
      [(I∩J, I)]-dictionary as a dictionary for [(J, I∪J)] — its
      extensions become {e candidates} (possibly spurious; PANDA filters
      them later by semijoining with guard atoms, which callers do with
      {!filter_exact}).

    The interpreter tracks fractional weights exactly, mirroring the
    weighted proof sequences: a step of weight [w] consumes [w] from its
    source coordinates and produces [w] on its target.  Relations are
    shared, not copied, so weight-splitting is cheap. *)

open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

type term = {
  x : Varset.t;       (** conditioning set X (empty = unconditional) *)
  y : Varset.t;       (** carried set Y, X ⊂ Y *)
  weight : Rat.t;
  rel : Relation.t;   (** schema ⊆ Y; candidates via natural join *)
}

type state = term list

val init : ((Varset.t * Varset.t) * Rat.t * Relation.t) list -> state
(** Starting terms, typically one per δ-coordinate of the inequality,
    carrying the corresponding input relation (projected onto [Y]). *)

val apply : state -> Proof.weighted -> (state, string) result
(** One proof step; [Error] explains a missing / under-weighted source
    term. *)

val run : state -> Proof.seq -> (state, string) result

val extract : state -> Varset.t -> Relation.t option
(** The union of unconditional relations carried for target [B] (with
    positive weight), or [None] if no such term exists. *)

val filter_exact : Relation.t -> guards:Relation.t list -> Relation.t
(** PANDA's final filtering: semijoin the candidate relation with every
    guard whose schema is contained in the candidate's schema — removing
    the spurious candidates introduced by submodularity steps. *)
