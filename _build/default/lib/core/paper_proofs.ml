open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

type entry = {
  name : string;
  n : int;
  var_names : string array;
  delta_s : Cvec.t;
  delta_t : Cvec.t;
  lambda_s : Cvec.t;
  lambda_t : Cvec.t;
  seq_s : Proof.seq;
  seq_t : Proof.seq;
  d_exp : Rat.t;
  q_exp : Rat.t;
  tradeoff : Tradeoff.t;
}

(* -- small construction helpers -- *)
let vs = Varset.of_list
let r = Rat.of_int
let one = Rat.one

let uncond c y = Cvec.unconditional c (vs y)
let cond c x y = Cvec.term c ~x:(vs x) ~y:(vs y)
let ( ++ ) = Cvec.add

let submod w i j = { Proof.w; step = Proof.Submod { i = vs i; j = vs j } }
let comp w x y = { Proof.w; step = Proof.Comp { x = vs x; y = vs y } }
let mono w x y = { Proof.w; step = Proof.Mono { x = vs x; y = vs y } }

let mk_tradeoff s t d q =
  Tradeoff.make ~s_exp:(r s) ~t_exp:(r t) ~d_exp:(r d) ~q_exp:(r q)

let xs k = Array.init k (fun i -> Printf.sprintf "x%d" (i + 1))

(* ------------------------------------------------------------------ *)
(* Section 5 / Example E.6 — 2-reachability:
   S13 ∨ T123 with S·T² ≅ D²·Q².  x1,x2,x3 ↦ 0,1,2. *)
let e6_2reach =
  {
    name = "E.6 (2-reachability)";
    n = 3;
    var_names = xs 3;
    delta_s = uncond one [ 0 ] ++ uncond one [ 2 ];
    delta_t = cond one [ 0 ] [ 0; 1 ] ++ cond one [ 2 ] [ 1; 2 ] ++ uncond (r 2) [ 0; 2 ];
    lambda_s = uncond one [ 0; 2 ];
    lambda_t = uncond (r 2) [ 0; 1; 2 ];
    seq_s = [ submod one [ 0 ] [ 2 ]; comp one [ 2 ] [ 0; 2 ] ];
    seq_t =
      [
        submod one [ 0; 1 ] [ 0; 2 ];
        submod one [ 1; 2 ] [ 0; 2 ];
        comp (r 2) [ 0; 2 ] [ 0; 1; 2 ];
      ];
    d_exp = r 2;
    q_exp = r 2;
    tradeoff = mk_tradeoff 1 2 2 2;
  }

(* ------------------------------------------------------------------ *)
(* Example E.5 — the square query, first rule T134 ∨ S13:
   n14 + n34 + 2·w13 ≥ h_S(13) + 2·h_T(134).  x1..x4 ↦ 0..3;
   edges used: R(x4,x1) = {0,3} split on x1, R(x3,x4) = {2,3} split on
   x3. *)
let e5_square =
  {
    name = "E.5 (square query)";
    n = 4;
    var_names = xs 4;
    delta_s = uncond one [ 0 ] ++ uncond one [ 2 ];
    delta_t =
      cond one [ 0 ] [ 0; 3 ] ++ cond one [ 2 ] [ 2; 3 ] ++ uncond (r 2) [ 0; 2 ];
    lambda_s = uncond one [ 0; 2 ];
    lambda_t = uncond (r 2) [ 0; 2; 3 ];
    seq_s = [ submod one [ 0 ] [ 2 ]; comp one [ 2 ] [ 0; 2 ] ];
    seq_t =
      [
        submod one [ 0; 3 ] [ 0; 2 ];
        submod one [ 2; 3 ] [ 0; 2 ];
        comp (r 2) [ 0; 2 ] [ 0; 2; 3 ];
      ];
    d_exp = r 2;
    q_exp = r 2;
    tradeoff = mk_tradeoff 1 2 2 2;
  }

(* ------------------------------------------------------------------ *)
(* Example E.7 ρ1 — 3-reachability, T134 ∨ T124 ∨ S14:
   n12 + n34 + 2·w14 ≥ h_S(14) + h_T(124) + h_T(134).  x1..x4 ↦ 0..3. *)
let e7_rho1 =
  {
    name = "E.7 ρ1 (3-reachability)";
    n = 4;
    var_names = xs 4;
    delta_s = uncond one [ 0 ] ++ uncond one [ 3 ];
    delta_t =
      cond one [ 0 ] [ 0; 1 ] ++ cond one [ 3 ] [ 2; 3 ] ++ uncond (r 2) [ 0; 3 ];
    lambda_s = uncond one [ 0; 3 ];
    lambda_t = uncond one [ 0; 1; 3 ] ++ uncond one [ 0; 2; 3 ];
    seq_s = [ submod one [ 0 ] [ 3 ]; comp one [ 3 ] [ 0; 3 ] ];
    seq_t =
      [
        submod one [ 0; 1 ] [ 0; 3 ];
        submod one [ 2; 3 ] [ 0; 3 ];
        comp one [ 0; 3 ] [ 0; 1; 3 ];
        comp one [ 0; 3 ] [ 0; 2; 3 ];
      ];
    d_exp = r 2;
    q_exp = r 2;
    tradeoff = mk_tradeoff 1 2 2 2;
  }

(* ------------------------------------------------------------------ *)
(* Example E.7 ρ2 — T123 ∨ S13 ∨ T124 ∨ S14:
   2·n12 + n23 + n34 + 3·w14 ≥ h_S(14) + h_S(13) + 3·h_T(124). *)
let e7_rho2 =
  {
    name = "E.7 ρ2 (3-reachability)";
    n = 4;
    var_names = xs 4;
    delta_s = uncond (r 2) [ 0 ] ++ uncond one [ 2 ] ++ uncond one [ 3 ];
    delta_t =
      cond (r 2) [ 0 ] [ 0; 1 ]
      ++ cond one [ 2 ] [ 1; 2 ]
      ++ cond one [ 3 ] [ 2; 3 ]
      ++ uncond (r 3) [ 0; 3 ];
    lambda_s = uncond one [ 0; 3 ] ++ uncond one [ 0; 2 ];
    lambda_t = uncond (r 3) [ 0; 1; 3 ];
    seq_s =
      [
        submod one [ 0 ] [ 3 ];
        comp one [ 3 ] [ 0; 3 ];
        submod one [ 0 ] [ 2 ];
        comp one [ 2 ] [ 0; 2 ];
      ];
    seq_t =
      [
        (* two copies of h(01|0) become h(013|03); one of them via the
           4-variable detour h(0123|023) matching the paper's
           h_T(2|314) step *)
        submod one [ 0; 1 ] [ 0; 3 ];
        submod one [ 2; 3 ] [ 0; 3 ];
        submod one [ 1; 2 ] [ 0; 2; 3 ];
        comp one [ 0; 3 ] [ 0; 1; 3 ];
        comp one [ 0; 3 ] [ 0; 2; 3 ];
        comp one [ 0; 2; 3 ] [ 0; 1; 2; 3 ];
        mono one [ 0; 1; 3 ] [ 0; 1; 2; 3 ];
        submod one [ 0; 1 ] [ 0; 3 ];
        comp one [ 0; 3 ] [ 0; 1; 3 ];
      ];
    d_exp = r 4;
    q_exp = r 3;
    tradeoff = mk_tradeoff 2 3 4 3;
  }

(* ------------------------------------------------------------------ *)
(* Example E.7 ρ4, first sequence — S·T ≅ D²·Q:
   n12 + n34 + w14 ≥ h_S(14) + h_T(123). *)
let e7_rho4_st =
  {
    name = "E.7 ρ4 / S·T (3-reachability)";
    n = 4;
    var_names = xs 4;
    delta_s = uncond one [ 0 ] ++ uncond one [ 3 ];
    delta_t =
      cond one [ 0 ] [ 0; 1 ] ++ cond one [ 3 ] [ 2; 3 ] ++ uncond one [ 0; 3 ];
    lambda_s = uncond one [ 0; 3 ];
    lambda_t = uncond one [ 0; 1; 2 ];
    seq_s = [ submod one [ 0 ] [ 3 ]; comp one [ 3 ] [ 0; 3 ] ];
    seq_t =
      [
        submod one [ 0; 1 ] [ 0; 3 ];
        submod one [ 2; 3 ] [ 0; 1; 3 ];
        comp one [ 0; 3 ] [ 0; 1; 3 ];
        comp one [ 0; 1; 3 ] [ 0; 1; 2; 3 ];
        mono one [ 0; 1; 2 ] [ 0; 1; 2; 3 ];
      ];
    d_exp = r 2;
    q_exp = r 1;
    tradeoff = mk_tradeoff 1 1 2 1;
  }

(* ------------------------------------------------------------------ *)
(* Example E.8 ρ1 — 4-reachability, T2345 ∨ S15 with S·T ≅ D²·Q:
   n12 + n45 + w15 ≥ h_S(15) + h_T(1245).  x1..x5 ↦ 0..4. *)
let e8_rho1 =
  {
    name = "E.8 ρ1 (4-reachability)";
    n = 5;
    var_names = xs 5;
    delta_s = uncond one [ 0 ] ++ uncond one [ 4 ];
    delta_t =
      cond one [ 0 ] [ 0; 1 ] ++ cond one [ 4 ] [ 3; 4 ] ++ uncond one [ 0; 4 ];
    lambda_s = uncond one [ 0; 4 ];
    lambda_t = uncond one [ 0; 1; 3; 4 ];
    seq_s = [ submod one [ 0 ] [ 4 ]; comp one [ 4 ] [ 0; 4 ] ];
    seq_t =
      [
        submod one [ 0; 1 ] [ 0; 4 ];
        submod one [ 3; 4 ] [ 0; 1; 4 ];
        comp one [ 0; 4 ] [ 0; 1; 4 ];
        comp one [ 0; 1; 4 ] [ 0; 1; 3; 4 ];
      ];
    d_exp = r 2;
    q_exp = r 1;
    tradeoff = mk_tradeoff 1 1 2 1;
  }

(* ------------------------------------------------------------------ *)
(* Example E.8 ρ2 — T1235 ∨ T1345 ∨ S24 ∨ S15 with S²·T² ≅ D⁴·Q²:
   n12 + n23 + n34 + n45 + 2·w15
     ≥ h_S(15) + h_S(24) + h_T(1235) + h_T(1345). *)
let e8_rho2 =
  {
    name = "E.8 ρ2 (4-reachability)";
    n = 5;
    var_names = xs 5;
    delta_s =
      uncond one [ 0 ] ++ uncond one [ 1 ] ++ uncond one [ 3 ]
      ++ uncond one [ 4 ];
    delta_t =
      cond one [ 0 ] [ 0; 1 ]
      ++ cond one [ 1 ] [ 1; 2 ]
      ++ cond one [ 3 ] [ 2; 3 ]
      ++ cond one [ 4 ] [ 3; 4 ]
      ++ uncond (r 2) [ 0; 4 ];
    lambda_s = uncond one [ 0; 4 ] ++ uncond one [ 1; 3 ];
    lambda_t = uncond one [ 0; 1; 2; 4 ] ++ uncond one [ 0; 2; 3; 4 ];
    seq_s =
      [
        submod one [ 0 ] [ 4 ];
        comp one [ 4 ] [ 0; 4 ];
        submod one [ 1 ] [ 3 ];
        comp one [ 3 ] [ 1; 3 ];
      ];
    seq_t =
      [
        submod one [ 0; 1 ] [ 0; 4 ];
        submod one [ 1; 2 ] [ 0; 1; 4 ];
        submod one [ 3; 4 ] [ 0; 4 ];
        submod one [ 2; 3 ] [ 0; 3; 4 ];
        comp one [ 0; 4 ] [ 0; 1; 4 ];
        comp one [ 0; 1; 4 ] [ 0; 1; 2; 4 ];
        comp one [ 0; 4 ] [ 0; 3; 4 ];
        comp one [ 0; 3; 4 ] [ 0; 2; 3; 4 ];
      ];
    d_exp = r 4;
    q_exp = r 2;
    tradeoff = mk_tradeoff 2 2 4 2;
  }

(* ------------------------------------------------------------------ *)
(* Section 6.1 — 2-Set Intersection, T123 ∨ S123 with S·T ≅ D²·Q:
   h_S(x2 y) + {h_S(x1|y) + h_T(y)} + h_T(x1 x2)
     ≥ h_S(x1 x2 y) + h_T(x1 x2 y).
   x1, x2, y ↦ 0, 1, 2. *)
let s61_2setint =
  {
    name = "6.1 (2-set intersection)";
    n = 3;
    var_names = [| "x1"; "x2"; "y" |];
    delta_s = uncond one [ 1; 2 ] ++ cond one [ 2 ] [ 0; 2 ];
    delta_t = uncond one [ 2 ] ++ uncond one [ 0; 1 ];
    lambda_s = uncond one [ 0; 1; 2 ];
    lambda_t = uncond one [ 0; 1; 2 ];
    seq_s =
      [ submod one [ 0; 2 ] [ 1; 2 ]; comp one [ 1; 2 ] [ 0; 1; 2 ] ];
    seq_t = [ submod one [ 2 ] [ 0; 1 ]; comp one [ 0; 1 ] [ 0; 1; 2 ] ];
    d_exp = r 2;
    q_exp = r 1;
    tradeoff = mk_tradeoff 1 1 2 1;
  }

(* ------------------------------------------------------------------ *)
(* Appendix F — the improved hierarchical tradeoff S·T⁴ ≅ D⁴·Q⁴ for the
   rule T0(Z,X) ∨ S(Z): bucketize on the bound variables:
   Σ_z {h_T(anc(z)∪z | z) + h_S(z)} + 4·h_T(Z) ≥ h_S(Z) + 4·h_T(XZ).
   X,Y1,Y2,Z1..Z4 ↦ 0,1,2,3,4,5,6. *)
let f_hier_improved =
  let z = [ 3; 4; 5; 6 ] in
  let xz = [ 0; 3; 4; 5; 6 ] in
  {
    name = "F improved (hierarchical)";
    n = 7;
    var_names = [| "X"; "Y1"; "Y2"; "Z1"; "Z2"; "Z3"; "Z4" |];
    delta_s = uncond one [ 3 ] ++ uncond one [ 4 ] ++ uncond one [ 5 ] ++ uncond one [ 6 ];
    delta_t =
      cond one [ 3 ] [ 0; 1; 3 ]
      ++ cond one [ 4 ] [ 0; 1; 4 ]
      ++ cond one [ 5 ] [ 0; 2; 5 ]
      ++ cond one [ 6 ] [ 0; 2; 6 ]
      ++ uncond (r 4) z;
    lambda_s = uncond one z;
    lambda_t = uncond (r 4) xz;
    seq_s =
      [
        submod one [ 3 ] [ 4 ];
        comp one [ 4 ] [ 3; 4 ];
        submod one [ 5 ] [ 3; 4 ];
        comp one [ 3; 4 ] [ 3; 4; 5 ];
        submod one [ 6 ] [ 3; 4; 5 ];
        comp one [ 3; 4; 5 ] z;
      ];
    seq_t =
      [
        (* leaf Z1 *)
        submod one [ 0; 1; 3 ] z;
        comp one z [ 0; 1; 3; 4; 5; 6 ];
        mono one xz [ 0; 1; 3; 4; 5; 6 ];
        (* leaf Z2 *)
        submod one [ 0; 1; 4 ] z;
        comp one z [ 0; 1; 3; 4; 5; 6 ];
        mono one xz [ 0; 1; 3; 4; 5; 6 ];
        (* leaf Z3 *)
        submod one [ 0; 2; 5 ] z;
        comp one z [ 0; 2; 3; 4; 5; 6 ];
        mono one xz [ 0; 2; 3; 4; 5; 6 ];
        (* leaf Z4 *)
        submod one [ 0; 2; 6 ] z;
        comp one z [ 0; 2; 3; 4; 5; 6 ];
        mono one xz [ 0; 2; 3; 4; 5; 6 ];
      ];
    d_exp = r 4;
    q_exp = r 4;
    tradeoff = mk_tradeoff 1 4 4 4;
  }

(* ------------------------------------------------------------------ *)
(* Appendix F, second rule — T(X,Y1,Z1,Z2) ∨ S(X,Z1,Z2) ∨ S(Z) with
   S·T ≅ D²·Q: split relation R on (XY1) and use the cardinality of S:
   {h_T(Y1 X) + h_S(Z1 Y1 X | Y1 X)} + h_S(Z2 Y1 X) + h_T(Z1 Z2)
     ≥ h_S(X Z1 Z2) + h_T(X Y1 Z1 Z2). *)
let f_hier_rule2 =
  {
    name = "F rule 2 (hierarchical)";
    n = 7;
    var_names = [| "X"; "Y1"; "Y2"; "Z1"; "Z2"; "Z3"; "Z4" |];
    delta_s = cond one [ 0; 1 ] [ 0; 1; 3 ] ++ uncond one [ 0; 1; 4 ];
    delta_t = uncond one [ 0; 1 ] ++ uncond one [ 3; 4 ];
    lambda_s = uncond one [ 0; 3; 4 ];
    lambda_t = uncond one [ 0; 1; 3; 4 ];
    seq_s =
      [
        submod one [ 0; 1; 3 ] [ 0; 1; 4 ];
        comp one [ 0; 1; 4 ] [ 0; 1; 3; 4 ];
        mono one [ 0; 3; 4 ] [ 0; 1; 3; 4 ];
      ];
    seq_t =
      [ submod one [ 0; 1 ] [ 3; 4 ]; comp one [ 3; 4 ] [ 0; 1; 3; 4 ] ];
    d_exp = r 2;
    q_exp = r 1;
    tradeoff = mk_tradeoff 1 1 2 1;
  }

let all =
  [
    e6_2reach;
    e5_square;
    e7_rho1;
    e7_rho2;
    e7_rho4_st;
    e8_rho1;
    e8_rho2;
    s61_2setint;
    f_hier_improved;
    f_hier_rule2;
  ]

let find name = List.find (fun e -> e.name = name) all
