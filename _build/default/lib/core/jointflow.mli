(** Joint Shannon-flow LPs for 2-phase disjunctive rules (Appendix C/D).

    For a rule ρ with S-targets BS and T-targets BT, a space budget and
    degree constraints, [obj] solves the maximin program (12)

    {v OBJ(S) = max  min_{B∈BT} h_T(B)
        s.t.  h_S ∈ Γ_n ∩ HDC,   h_T ∈ Γ_n ∩ HDC ∩ HAC,
              (h_S, h_T) ∈ HSC,   h_S(B) ≥ log S for B ∈ BS v}

    as a plain LP (the inner min becomes [w ≤ h_T(B)]).  The optimal dual
    is a joint Shannon-flow inequality (Theorem D.5); reading its
    coefficients yields the intrinsic tradeoff of Theorem D.6:
    [S^{‖θ‖₁} · T ≅ |D|^{d_exp} · |Q_A|^{q_exp}], plus the split pairs
    and primal [h_S] values the executable 2PP uses to pick heavy/light
    thresholds. *)

open Stt_hypergraph
open Stt_lp

type value =
  | Stored
      (** the preprocessing rule fits in the budget outright: T = Õ(1) *)
  | Time of Rat.t  (** OBJ(S): [log_|D| T] *)
  | Impossible
      (** no model obtainable within the budget (only possible when the
          rule has no T-targets) *)

type point = {
  value : value;
  tradeoff : Tradeoff.t option;
      (** from the dual (t_exp = 1); [None] unless [value] is [Time] *)
  split_pairs : (Varset.t * Varset.t) list;
      (** (X, Y) pairs whose split constraint has a positive dual *)
  hs : (Varset.t * Rat.t) list;
      (** optimal primal [h_S], restricted to the split-pair [X] sets *)
  split_duals : (Varset.t * Varset.t * Rat.t) list;
      (** every split pair with its dual multiplier (including zeros),
          recorded for observability *)
  lp_vars : int;  (** LP variable count (after lazy cut generation) *)
  lp_cstrs : int;  (** LP constraint count (after lazy cut generation) *)
}

val obj :
  Rule.t ->
  dc:Degree.t list ->
  ac:Degree.t list ->
  logd:Rat.t ->
  logq:Rat.t ->
  logs:Rat.t ->
  point
(** All log quantities in the same (arbitrary) unit; benchmarks use
    units of [log |D|] (i.e. [logd = 1]). *)

val logt :
  Rule.t ->
  dc:Degree.t list ->
  ac:Degree.t list ->
  logq:Rat.t ->
  logs:Rat.t ->
  Rat.t option
(** Convenience: [log_|D| T] with [logd = 1] ([Some 0] when [Stored],
    [None] when [Impossible]). *)

val rule_tradeoffs :
  Rule.t ->
  dc:Degree.t list ->
  ac:Degree.t list ->
  logq:Rat.t ->
  logs_grid:Rat.t list ->
  Tradeoff.t list
(** The distinct (scaled) tradeoffs realized by the rule across a budget
    sweep — the rows printed in Table 1. *)
