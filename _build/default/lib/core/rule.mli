(** 2-phase disjunctive rules (Definition 4.1) and their generation from
    a set of PMTDs (Section 4.2).

    A rule is identified by its S-target and T-target schemas; the body
    is always [Q_A ∧ ⋀ R_F].  Generation takes one view per PMTD
    (cartesian product), deduplicates targets inside a rule, drops
    within-rule dominated targets (a T-target that strictly contains
    another T-target is redundant, cf. Example E.8), and finally keeps
    only subset-minimal rules (Section 6.4's reduction). *)

open Stt_hypergraph
open Stt_decomp

type t = {
  cqap : Cq.cqap;
  s_targets : Varset.t list; (* sorted, distinct *)
  t_targets : Varset.t list; (* sorted, distinct *)
}

val make :
  Cq.cqap -> s_targets:Varset.t list -> t_targets:Varset.t list -> t
(** Normalizes (sorts, dedups, removes within-rule dominated targets). *)

val generate : Cq.cqap -> Pmtd.t list -> t list
(** All rules from the PMTD set, subset-minimal ones only.  Raises
    [Failure] when the product of view counts exceeds 2^20. *)

val equal : t -> t -> bool
val subsumes : t -> t -> bool
(** [subsumes a b]: [a]'s targets are a subset of [b]'s (kind-wise), so
    any model of [a] is a model of [b]. *)

val pp : Format.formatter -> t -> unit
