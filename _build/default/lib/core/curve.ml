open Stt_lp

type segment = { lo : Rat.t; hi : Rat.t; lo_t : Rat.t; hi_t : Rat.t }

let slope seg =
  let dx = Rat.sub seg.hi seg.lo in
  if Rat.is_zero dx then None
  else Some (Rat.div (Rat.sub seg.hi_t seg.lo_t) dx)

(* refine [f] over [lo, hi] down to exact linear segments; [f] must be
   piecewise linear with finitely many breakpoints (an LP value).  Depth
   is bounded as a safeguard against pathological functions. *)
let rec refine f lo hi f_lo f_hi depth =
  let mid = Rat.div (Rat.add lo hi) (Rat.of_int 2) in
  if depth = 0 || Rat.equal lo hi then [ { lo; hi; lo_t = f_lo; hi_t = f_hi } ]
  else
    let f_mid = f mid in
    let expected = Rat.div (Rat.add f_lo f_hi) (Rat.of_int 2) in
    if Rat.equal f_mid expected then
      [ { lo; hi; lo_t = f_lo; hi_t = f_hi } ]
    else
      refine f lo mid f_lo f_mid (depth - 1)
      @ refine f mid hi f_mid f_hi (depth - 1)

(* merge adjacent collinear segments *)
let coalesce segments =
  let collinear a b =
    match (slope a, slope b) with
    | Some sa, Some sb -> Rat.equal sa sb && Rat.equal a.hi_t b.lo_t
    | _ -> false
  in
  List.fold_left
    (fun acc seg ->
      match acc with
      | prev :: rest when collinear prev seg ->
          { prev with hi = seg.hi; hi_t = seg.hi_t } :: rest
      | _ -> seg :: acc)
    [] segments
  |> List.rev

(* Around a true breakpoint, dyadic bisection leaves slivers whose
   slopes are chords across the kink.  Keep only the wide segments
   (true linear pieces), then recover the exact breakpoints as the
   intersections of consecutive lines. *)
let snap_breakpoints ~lo ~hi segments =
  let width seg = Rat.sub seg.hi seg.lo in
  let min_width =
    Rat.div (Rat.sub hi lo) (Rat.of_int 512)
  in
  let lines =
    (* (point on the line, slope) for each maximal significant run *)
    List.filter_map
      (fun seg ->
        if Rat.compare (width seg) min_width >= 0 then
          match slope seg with
          | Some s -> Some (seg.lo, seg.lo_t, s)
          | None -> None
        else None)
      segments
  in
  (* merge consecutive identical slopes *)
  let lines =
    List.fold_left
      (fun acc ((_, _, s) as line) ->
        match acc with
        | (_, _, s') :: _ when Rat.equal s s' -> acc
        | _ -> line :: acc)
      [] lines
    |> List.rev
  in
  match lines with
  | [] -> segments
  | (x0, y0, s0) :: rest ->
      let eval_line (x, y, s) at = Rat.add y (Rat.mul s (Rat.sub at x)) in
      (* exact crossings of consecutive lines *)
      let rec build prev_line start acc = function
        | [] ->
            let seg =
              {
                lo = start;
                hi;
                lo_t = eval_line prev_line start;
                hi_t = eval_line prev_line hi;
              }
            in
            List.rev (seg :: acc)
        | ((x2, y2, s2) as line) :: more ->
            let x1, y1, s1 = prev_line in
            let ds = Rat.sub s1 s2 in
            if Rat.is_zero ds then build prev_line start acc more
            else
              let bp =
                (* y1 + s1 (t - x1) = y2 + s2 (t - x2) *)
                Rat.div
                  (Rat.sub
                     (Rat.sub y2 (Rat.mul s2 x2))
                     (Rat.sub y1 (Rat.mul s1 x1)))
                  ds
              in
              let bp = Rat.max start (Rat.min hi bp) in
              let seg =
                {
                  lo = start;
                  hi = bp;
                  lo_t = eval_line prev_line start;
                  hi_t = eval_line prev_line bp;
                }
              in
              build line bp (seg :: acc) more
      in
      build (x0, y0, s0) lo [] rest

let curve_of_fn f ~lo ~hi =
  if Rat.compare lo hi > 0 then invalid_arg "Curve: lo > hi";
  coalesce (snap_breakpoints ~lo ~hi (coalesce (refine f lo hi (f lo) (f hi) 12)))

let clamp t = Rat.max Rat.zero t

let rule_logt r ~dc ~ac ~logq logs =
  match Jointflow.logt r ~dc ~ac ~logq ~logs with
  | Some t -> clamp t
  | None -> Rat.zero

let rule_curve r ~dc ~ac ~logq ~lo ~hi =
  curve_of_fn (rule_logt r ~dc ~ac ~logq) ~lo ~hi

let combined rules ~dc ~ac ~logq ~lo ~hi =
  let f logs =
    List.fold_left
      (fun acc r -> Rat.max acc (rule_logt r ~dc ~ac ~logq logs))
      Rat.zero rules
  in
  curve_of_fn f ~lo ~hi

let eval segments x =
  List.find_map
    (fun seg ->
      if Rat.compare seg.lo x <= 0 && Rat.compare x seg.hi <= 0 then
        match slope seg with
        | None -> Some seg.lo_t
        | Some s -> Some (Rat.add seg.lo_t (Rat.mul s (Rat.sub x seg.lo)))
      else None)
    segments

let pp ppf segments =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
    (fun ppf seg ->
      Format.fprintf ppf "[%a, %a]: %a → %a" Rat.pp seg.lo Rat.pp seg.hi
        Rat.pp seg.lo_t Rat.pp seg.hi_t)
    ppf segments
