lib/core/jointflow.mli: Degree Rat Rule Stt_hypergraph Stt_lp Tradeoff Varset
