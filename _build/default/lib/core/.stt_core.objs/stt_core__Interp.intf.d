lib/core/interp.mli: Proof Rat Relation Stt_hypergraph Stt_lp Stt_polymatroid Stt_relation Varset
