lib/core/cover.mli: Cq Hypergraph Rat Stt_hypergraph Stt_lp Tradeoff Varset
