lib/core/paper_proofs.ml: Array Cvec List Printf Proof Rat Stt_hypergraph Stt_lp Stt_polymatroid Tradeoff Varset
