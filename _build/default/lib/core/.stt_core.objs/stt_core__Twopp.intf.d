lib/core/twopp.mli: Db Relation Rule Stt_hypergraph Stt_relation Varset
