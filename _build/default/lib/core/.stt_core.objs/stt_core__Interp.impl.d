lib/core/interp.ml: List Proof Rat Relation Schema Stt_hypergraph Stt_lp Stt_polymatroid Stt_relation Varset
