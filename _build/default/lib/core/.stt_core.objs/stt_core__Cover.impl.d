lib/core/cover.ml: Cq Hypergraph List Lp Printf Rat Stt_hypergraph Stt_lp Tradeoff Varset
