lib/core/curve.ml: Format Jointflow List Rat Stt_lp
