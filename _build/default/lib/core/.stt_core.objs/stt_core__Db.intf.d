lib/core/db.mli: Cq Relation Schema Stt_hypergraph Stt_relation
