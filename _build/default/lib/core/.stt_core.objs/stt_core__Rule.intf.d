lib/core/rule.mli: Cq Format Pmtd Stt_decomp Stt_hypergraph Varset
