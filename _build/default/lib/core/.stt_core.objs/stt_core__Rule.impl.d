lib/core/rule.ml: Cq Format List Pmtd Stt_decomp Stt_hypergraph Varset
