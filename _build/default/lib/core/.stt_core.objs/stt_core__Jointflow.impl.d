lib/core/jointflow.ml: Cq Cvec Degree List Lp Polymatroid Rat Rule Stt_hypergraph Stt_lp Stt_polymatroid Tradeoff Varset
