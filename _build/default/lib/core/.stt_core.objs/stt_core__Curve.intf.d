lib/core/curve.mli: Degree Format Rat Rule Stt_hypergraph Stt_lp
