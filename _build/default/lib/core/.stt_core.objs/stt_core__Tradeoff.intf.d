lib/core/tradeoff.mli: Format Rat Stt_lp
