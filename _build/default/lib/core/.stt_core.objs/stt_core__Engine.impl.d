lib/core/engine.ml: Cost Cq Enum Json List Obs Online_yannakakis Pmtd Relation Rule Schema Stt_decomp Stt_hypergraph Stt_obs Stt_relation Stt_yannakakis Twopp Varset
