lib/core/engine.ml: Cost Cq Enum List Online_yannakakis Pmtd Relation Rule Schema Stt_decomp Stt_hypergraph Stt_relation Stt_yannakakis Twopp Varset
