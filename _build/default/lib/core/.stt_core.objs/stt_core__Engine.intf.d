lib/core/engine.mli: Cost Cq Db Pmtd Relation Rule Schema Stt_decomp Stt_hypergraph Stt_relation Tuple Twopp
