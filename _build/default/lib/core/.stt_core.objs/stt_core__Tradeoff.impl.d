lib/core/tradeoff.ml: Format List Rat Stt_lp
