lib/core/paper_proofs.mli: Cvec Proof Stt_lp Stt_polymatroid Tradeoff
