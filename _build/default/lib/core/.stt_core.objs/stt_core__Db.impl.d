lib/core/db.ml: Array Cost Cq Hashtbl Index List Relation Schema Stt_hypergraph Stt_relation Tuple Varset
