lib/core/twopp.ml: Cost Cq Db Degree Float Hashtbl Index Jointflow List Option Polymatroid Rat Relation Rule Schema Stt_hypergraph Stt_lp Stt_polymatroid Stt_relation Tuple Varset
