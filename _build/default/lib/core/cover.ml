open Stt_hypergraph
open Stt_lp

type t = (Varset.t * Rat.t) list

let coverage u i =
  List.fold_left
    (fun acc (f, w) -> if Varset.mem i f then Rat.add acc w else acc)
    Rat.zero u

let total_weight u = List.fold_left (fun acc (_, w) -> Rat.add acc w) Rat.zero u

let edge_vars model edges =
  List.mapi (fun i f -> (f, Lp.var model (Printf.sprintf "u%d" i))) edges

let min_fractional_cover hg ~of_ =
  let model = Lp.create () in
  let uvars = edge_vars model hg.Hypergraph.edges in
  let feasible = ref true in
  Varset.iter
    (fun i ->
      let terms =
        List.filter_map
          (fun (f, v) -> if Varset.mem i f then Some (Rat.one, v) else None)
          uvars
      in
      if terms = [] then feasible := false
      else ignore (Lp.add_ge model terms Rat.one))
    of_;
  if not !feasible then None
  else
    match Lp.minimize model (List.map (fun (_, v) -> (Rat.one, v)) uvars) with
    | Lp.Solution s ->
        Some
          (List.filter_map
             (fun (f, v) ->
               let w = s.Lp.primal v in
               if Rat.is_zero w then None else Some (f, w))
             uvars)
    | Lp.Infeasible | Lp.Unbounded -> None

let slack u ~a ~over =
  let outside = Varset.diff over a in
  if Varset.is_empty outside then None
  else
    Some
      (Varset.fold
         (fun i acc -> Rat.min acc (coverage u i))
         outside
         (coverage u (Varset.choose outside)))

let theorem_6_1 (cqap : Cq.cqap) ~u =
  let cq = cqap.Cq.cq in
  let all = Varset.full cq.Cq.n in
  Varset.iter
    (fun i ->
      if Rat.compare (coverage u i) Rat.one < 0 then
        invalid_arg "theorem_6_1: not a fractional edge cover")
    all;
  let alpha =
    match slack u ~a:cqap.Cq.access ~over:all with
    | Some a -> a
    | None -> Rat.one (* A = [n]: store the head outright *)
  in
  Tradeoff.make ~s_exp:Rat.one ~t_exp:alpha ~d_exp:(total_weight u)
    ~q_exp:alpha

let theorem_6_1_auto (cqap : Cq.cqap) =
  let cq = cqap.Cq.cq in
  let hg = Cq.hypergraph cq in
  let all = Varset.full cq.Cq.n in
  match min_fractional_cover hg ~of_:all with
  | None -> invalid_arg "theorem_6_1_auto: no cover"
  | Some u0 ->
      let w_star = total_weight u0 in
      (* second stage: among covers of weight w*, maximize the slack *)
      let model = Lp.create () in
      let uvars = edge_vars model hg.Hypergraph.edges in
      Varset.iter
        (fun i ->
          let terms =
            List.filter_map
              (fun (f, v) -> if Varset.mem i f then Some (Rat.one, v) else None)
              uvars
          in
          ignore (Lp.add_ge model terms Rat.one))
        all;
      ignore
        (Lp.add_le model (List.map (fun (_, v) -> (Rat.one, v)) uvars) w_star);
      let alpha = Lp.var model "alpha" in
      let outside = Varset.diff all cqap.Cq.access in
      if Varset.is_empty outside then theorem_6_1 cqap ~u:u0
      else begin
        Varset.iter
          (fun i ->
            let terms =
              (Rat.one, alpha)
              :: List.filter_map
                   (fun (f, v) ->
                     if Varset.mem i f then Some (Rat.minus_one, v) else None)
                   uvars
            in
            ignore (Lp.add_le model terms Rat.zero))
          outside;
        match Lp.maximize model [ (Rat.one, alpha) ] with
        | Lp.Solution s ->
            let u =
              List.filter_map
                (fun (f, v) ->
                  let w = s.Lp.primal v in
                  if Rat.is_zero w then None else Some (f, w))
                uvars
            in
            theorem_6_1 cqap ~u
        | Lp.Infeasible | Lp.Unbounded -> theorem_6_1 cqap ~u:u0
      end

type path_bag = { bag : Varset.t; a_t : Varset.t; u : t }

let path_tradeoff (cqap : Cq.cqap) bags =
  ignore cqap;
  let alphas =
    List.map
      (fun pb ->
        match slack pb.u ~a:pb.a_t ~over:pb.bag with
        | Some a -> a
        | None -> Rat.one)
      bags
  in
  let s_exp =
    List.fold_left (fun acc a -> Rat.add acc (Rat.inv a)) Rat.zero alphas
  in
  let d_exp =
    List.fold_left2
      (fun acc pb a -> Rat.add acc (Rat.div (total_weight pb.u) a))
      Rat.zero bags alphas
  in
  Tradeoff.make ~s_exp ~t_exp:Rat.one ~d_exp ~q_exp:Rat.one
