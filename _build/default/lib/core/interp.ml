open Stt_relation
open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

type term = { x : Varset.t; y : Varset.t; weight : Rat.t; rel : Relation.t }
type state = term list

let init specs =
  List.map
    (fun ((x, y), weight, rel) ->
      if not (Varset.strict_subset x y) then
        invalid_arg "Interp.init: term needs X ⊂ Y";
      if
        not
          (List.for_all
             (fun v -> Varset.mem v y)
             (Schema.vars (Relation.schema rel)))
      then invalid_arg "Interp.init: relation schema must be within Y";
      { x; y; weight; rel })
    specs

(* withdraw weight [w] from terms matching (x, y); fails if the state
   has less than [w] there in total.  Returns weighted pieces — one per
   drained source term — so a step spanning several distinct relations
   is applied piecewise (the relations may have different schemas). *)
let withdraw state ~x ~y w =
  let rec go state need acc_pieces acc_state =
    match state with
    | [] -> Error "insufficient weight on source term"
    | t :: rest ->
        if not (Varset.equal t.x x && Varset.equal t.y y) then
          go rest need acc_pieces (t :: acc_state)
        else if Rat.compare t.weight need >= 0 then
          let leftover = Rat.sub t.weight need in
          let acc_state =
            if Rat.is_zero leftover then acc_state
            else { t with weight = leftover } :: acc_state
          in
          Ok ((t.rel, need) :: acc_pieces, List.rev_append acc_state rest)
        else
          go rest (Rat.sub need t.weight)
            ((t.rel, t.weight) :: acc_pieces)
            acc_state
  in
  go state w [] []

let deposit state ~x ~y w rel =
  if Rat.is_zero w then state else { x; y; weight = w; rel } :: state

let project_to rel vars =
  (* ascending variable order, so extracted relations have a canonical
     column order regardless of join history *)
  let keep =
    List.filter
      (fun v -> Schema.mem v (Relation.schema rel))
      (Varset.to_list vars)
  in
  Relation.project rel keep

let apply state { Proof.w; step } =
  if Rat.sign w < 0 then Error "negative weight"
  else
    match step with
    | Proof.Mono { x; y } -> (
        (* consume (∅, Y), produce (∅, X) by projection *)
        match withdraw state ~x:Varset.empty ~y w with
        | Error e -> Error e
        | Ok (pieces, rest) ->
            Ok
              (List.fold_left
                 (fun st (rel, pw) ->
                   deposit st ~x:Varset.empty ~y:x pw (project_to rel x))
                 rest pieces))
    | Proof.Decomp { x; y } -> (
        (* consume (∅, Y), produce (∅, X) and (X, Y) *)
        match withdraw state ~x:Varset.empty ~y w with
        | Error e -> Error e
        | Ok (pieces, rest) ->
            Ok
              (List.fold_left
                 (fun st (rel, pw) ->
                   let st =
                     deposit st ~x:Varset.empty ~y:x pw (project_to rel x)
                   in
                   deposit st ~x ~y pw rel)
                 rest pieces))
    | Proof.Comp { x; y } -> (
        (* consume (∅, X) and (X, Y), produce (∅, Y) by join; distinct
           dictionary pieces are joined with matching base weight *)
        match withdraw state ~x ~y w with
        | Error e -> Error e
        | Ok (dict_pieces, rest) ->
            List.fold_left
              (fun acc (dict, pw) ->
                match acc with
                | Error _ as e -> e
                | Ok st -> (
                    match withdraw st ~x:Varset.empty ~y:x pw with
                    | Error e -> Error e
                    | Ok (base_pieces, st) ->
                        Ok
                          (List.fold_left
                             (fun st (base, bw) ->
                               deposit st ~x:Varset.empty ~y bw
                                 (Relation.natural_join base dict))
                             st base_pieces)))
              (Ok rest) dict_pieces)
    | Proof.Submod { i; j } -> (
        (* consume (I∩J, I), produce (J, I∪J) reusing the same relation:
           its extensions become candidates *)
        match withdraw state ~x:(Varset.inter i j) ~y:i w with
        | Error e -> Error e
        | Ok (pieces, rest) ->
            Ok
              (List.fold_left
                 (fun st (rel, pw) ->
                   deposit st ~x:j ~y:(Varset.union i j) pw rel)
                 rest pieces))

let run state seq =
  List.fold_left
    (fun acc step ->
      match acc with Error _ as e -> e | Ok st -> apply st step)
    (Ok state) seq

let extract state b =
  let matching =
    List.filter
      (fun t ->
        Varset.is_empty t.x && Varset.equal t.y b && Rat.sign t.weight > 0)
      state
  in
  match List.map (fun t -> project_to t.rel b) matching with
  | [] -> None
  | first :: rest -> Some (List.fold_left Relation.union first rest)

let filter_exact candidates ~guards =
  List.fold_left
    (fun acc guard ->
      if
        List.for_all
          (fun v -> Schema.mem v (Relation.schema acc))
          (Schema.vars (Relation.schema guard))
      then Relation.semijoin acc guard
      else acc)
    candidates guards
