(** Fractional edge covers, slack, and the closed-form tradeoffs of
    Sections 6.2 and 6.3. *)

open Stt_hypergraph
open Stt_lp

type t = (Varset.t * Rat.t) list
(** Weight per hyperedge (edges with weight 0 may be omitted). *)

val min_fractional_cover : Hypergraph.t -> of_:Varset.t -> t option
(** Minimum-total-weight fractional edge cover of the vertex subset
    [of_]; [None] if some vertex of [of_] is in no edge. *)

val total_weight : t -> Rat.t

val slack : t -> a:Varset.t -> over:Varset.t -> Rat.t option
(** [α(u, A)] = min over vertices of [over] not in [a] of the coverage
    [Σ_{F∋i} u_F]; [None] when every vertex of [over] is in [a] (infinite
    slack). *)

val theorem_6_1 : Cq.cqap -> u:t -> Tradeoff.t
(** The tradeoff [S · T^α ≅ |Q|^α · |D|^{Σu}] of Theorem 6.1 (with every
    relation of size [|D|]).  Requires [u] to be an edge cover of all
    variables; raises [Invalid_argument] otherwise. *)

val theorem_6_1_auto : Cq.cqap -> Tradeoff.t
(** [theorem_6_1] with the slack-maximizing cover: among covers, maximize
    [α/Σu] by LP over candidate slack values (simple sweep). *)

type path_bag = { bag : Varset.t; a_t : Varset.t; u : t }

val path_tradeoff : Cq.cqap -> path_bag list -> Tradeoff.t
(** Section 6.3: for the bags of one root-to-leaf path with their
    interface sets [A_t] and per-bag covers, the tradeoff
    [S^{Σ 1/α_t} · T ≅ |Q| · |D|^{Σ u*_t/α_t}]. *)
