open Stt_hypergraph
open Stt_polymatroid
open Stt_lp

type value = Stored | Time of Rat.t | Impossible

type point = {
  value : value;
  tradeoff : Tradeoff.t option;
  split_pairs : (Varset.t * Varset.t) list;
  hs : (Varset.t * Rat.t) list;
  split_duals : (Varset.t * Varset.t * Rat.t) list;
  lp_vars : int;
  lp_cstrs : int;
}

let n_of_rule (r : Rule.t) = r.Rule.cqap.Cq.cq.Cq.n

(* LogSizeBound of the preprocessing rule ρ_S alone, used for rules with
   no T-targets. *)
let storable r ~dc ~logd ~logs =
  match
    Polymatroid.log_size_bound ~n:(n_of_rule r) ~dc ~targets:r.Rule.s_targets
      ~logd ~logq:Rat.zero
  with
  | None -> false
  | Some bound -> Rat.compare bound logs <= 0

let obj (r : Rule.t) ~dc ~ac ~logd ~logq ~logs =
  let n = n_of_rule r in
  let no_point ?(lp_vars = 0) ?(lp_cstrs = 0) value =
    {
      value;
      tradeoff = None;
      split_pairs = [];
      hs = [];
      split_duals = [];
      lp_vars;
      lp_cstrs;
    }
  in
  match r.Rule.t_targets with
  | [] ->
      if storable r ~dc ~logd ~logs then no_point Stored
      else no_point Impossible
  | t_targets ->
      let model = Lp.create () in
      let lazy_cuts = n >= 6 in
      let hs = Polymatroid.add ~lazy_cuts model ~name:"hS" ~n in
      let ht = Polymatroid.add ~lazy_cuts model ~name:"hT" ~n in
      (* degree constraints: DC on h_S; DC ∪ AC on h_T *)
      let dc_s =
        List.map
          (fun c -> (c, Polymatroid.constrain_degree model hs c ~logd ~logq))
          dc
      in
      let dc_t =
        List.map
          (fun c -> (c, Polymatroid.constrain_degree model ht c ~logd ~logq))
          (dc @ ac)
      in
      (* split constraints HSC *)
      let split_rows =
        List.map
          (fun (s : Degree.split) ->
            let bound = Degree.logsize_eval ~logd ~logq s.Degree.sbound in
            let x = s.Degree.sx and y = s.Degree.sy in
            (* h_S(X) + h_T(Y|X) <= n_Z *)
            let row1 =
              Lp.add_le model
                ((Rat.one, Polymatroid.var hs x)
                :: Polymatroid.expr ht (Cvec.term Rat.one ~x ~y))
                bound
            in
            (* h_S(Y|X) + h_T(X) <= n_Z *)
            let row2 =
              Lp.add_le model
                ((Rat.one, Polymatroid.var ht x)
                :: Polymatroid.expr hs (Cvec.term Rat.one ~x ~y))
                bound
            in
            (s, row1, row2))
          (Degree.splits dc)
      in
      (* storage constraints: h_S(B) >= log S *)
      let storage_rows =
        List.map
          (fun b ->
            (b, Lp.add_ge model [ (Rat.one, Polymatroid.var hs b) ] logs))
          r.Rule.s_targets
      in
      (* w <= h_T(B), plus a cap keeping lazily-cut relaxations bounded *)
      let w = Lp.var model "w" in
      ignore (Lp.add_le model [ (Rat.one, w) ] Polymatroid.cap);
      List.iter
        (fun b ->
          ignore
            (Lp.add_le model
               [ (Rat.one, w); (Rat.minus_one, Polymatroid.var ht b) ]
               Rat.zero))
        t_targets;
      let outcome = Polymatroid.solve_cuts model [ hs; ht ] [ (Rat.one, w) ] in
      (* dimensions read after the solve so lazily generated cuts count *)
      let lp_vars = Lp.num_vars model in
      let lp_cstrs = Lp.num_constraints model in
      (match outcome with
      | Lp.Infeasible ->
          (* the adversarial region is empty: the S-targets always fit *)
          no_point ~lp_vars ~lp_cstrs Stored
      | Lp.Unbounded -> no_point ~lp_vars ~lp_cstrs Impossible
      | Lp.Solution sol when Rat.compare sol.Lp.value Polymatroid.cap >= 0 ->
          no_point ~lp_vars ~lp_cstrs Impossible
      | Lp.Solution sol ->
          (* read the joint Shannon-flow coefficients off the dual *)
          let add_contrib (dexp, qexp) (c : Degree.t) y =
            ( Rat.add dexp (Rat.mul y c.Degree.bound.Degree.d),
              Rat.add qexp (Rat.mul y c.Degree.bound.Degree.q) )
          in
          let acc = (Rat.zero, Rat.zero) in
          let acc =
            List.fold_left
              (fun acc (c, row) -> add_contrib acc c (sol.Lp.dual row))
              acc dc_s
          in
          let acc =
            List.fold_left
              (fun acc (c, row) -> add_contrib acc c (sol.Lp.dual row))
              acc dc_t
          in
          let acc, split_pairs, split_duals =
            List.fold_left
              (fun ((dexp, qexp), pairs, duals) ((s : Degree.split), row1, row2) ->
                let g = Rat.add (sol.Lp.dual row1) (sol.Lp.dual row2) in
                let acc' =
                  ( Rat.add dexp (Rat.mul g s.Degree.sbound.Degree.d),
                    Rat.add qexp (Rat.mul g s.Degree.sbound.Degree.q) )
                in
                let pairs' =
                  if Rat.sign g > 0 then (s.Degree.sx, s.Degree.sy) :: pairs
                  else pairs
                in
                (acc', pairs', (s.Degree.sx, s.Degree.sy, g) :: duals))
              (acc, [], []) split_rows
          in
          let d_exp, q_exp = acc in
          let theta_norm =
            List.fold_left
              (fun acc (_, row) -> Rat.sub acc (sol.Lp.dual row))
              Rat.zero storage_rows
            (* ge-duals are <= 0 in a max problem; θ_B = −dual *)
          in
          let hs_values =
            List.sort_uniq compare (List.map fst split_pairs)
            |> List.map (fun x -> (x, sol.Lp.primal (Polymatroid.var hs x)))
          in
          {
            value = Time sol.Lp.value;
            tradeoff =
              Some
                (Tradeoff.make ~s_exp:theta_norm ~t_exp:Rat.one ~d_exp ~q_exp);
            split_pairs;
            hs = hs_values;
            split_duals = List.rev split_duals;
            lp_vars;
            lp_cstrs;
          })

let logt r ~dc ~ac ~logq ~logs =
  match (obj r ~dc ~ac ~logd:Rat.one ~logq ~logs).value with
  | Stored -> Some Rat.zero
  | Time t -> Some (Rat.max Rat.zero t)
  | Impossible -> None

let rule_tradeoffs r ~dc ~ac ~logq ~logs_grid =
  let points =
    List.filter_map
      (fun logs ->
        match obj r ~dc ~ac ~logd:Rat.one ~logq ~logs with
        | { value = Time _; tradeoff = Some t; _ } -> Some (Tradeoff.scaled t)
        | _ -> None)
      logs_grid
  in
  List.sort_uniq Tradeoff.compare points
