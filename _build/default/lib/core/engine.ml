open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_yannakakis
open Stt_obs

type t = {
  cqap : Cq.cqap;
  pmtds : Pmtd.t list;
  rules : Rule.t list;
  structures : Twopp.t list;
  preprocessed : (Pmtd.t * Online_yannakakis.preprocessed) list;
  space : int;
}

let cqap t = t.cqap
let pmtds t = t.pmtds
let rules t = t.rules
let space t = t.space
let structures t = t.structures

let per_pmtd_space t =
  List.map (fun (p, oy) -> (p, Online_yannakakis.space oy)) t.preprocessed

let access_schema t = Schema.of_list (Varset.to_list t.cqap.Cq.access)

let schema_of_set b = Schema.of_list (Varset.to_list b)

(* union of target relations whose schema equals [b] *)
let view_of_targets targets b =
  let empty = Relation.create (schema_of_set b) in
  List.fold_left
    (fun acc (b', rel) -> if Varset.equal b b' then Relation.union acc rel else acc)
    empty targets

let build cqap pmtd_list ~db ~budget =
  Obs.span "engine.build" ~attrs:[ ("budget", Json.Int budget) ] @@ fun () ->
  let rules = Rule.generate cqap pmtd_list in
  Obs.set_attr "pmtds" (Json.Int (List.length pmtd_list));
  Obs.set_attr "rules" (Json.Int (List.length rules));
  let structures = List.map (fun r -> Twopp.build r ~db ~budget) rules in
  let all_s_targets = List.concat_map Twopp.s_targets structures in
  let preprocessed =
    Cost.with_counting false (fun () ->
        List.map
          (fun p ->
            let s_views node =
              view_of_targets all_s_targets (Pmtd.view p node).Pmtd.vars
            in
            (p, Online_yannakakis.preprocess p ~s_views))
          pmtd_list)
  in
  let space =
    List.fold_left
      (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
      0 preprocessed
  in
  Obs.set_attr "space" (Json.Int space);
  Obs.set_attr "pmtd_space"
    (Json.List
       (List.map
          (fun (_, oy) -> Json.Int (Online_yannakakis.space oy))
          preprocessed));
  { cqap; pmtds = pmtd_list; rules; structures; preprocessed; space }

let build_auto ?max_pmtds cqap ~db ~budget =
  build cqap (Enum.pmtds ?max_pmtds cqap) ~db ~budget

let answer t ~q_a =
  Obs.span "engine.answer" @@ fun () ->
  let result, cost =
    Cost.scoped (fun () ->
        let all_t_targets =
          List.concat_map (fun s -> Twopp.online s ~q_a) t.structures
        in
        let head = t.cqap.Cq.cq.Cq.head in
        let result =
          ref (Relation.create (Schema.of_list (Varset.to_list head)))
        in
        List.iter
          (fun (p, oy) ->
            let t_views node =
              view_of_targets all_t_targets (Pmtd.view p node).Pmtd.vars
            in
            let psi = Online_yannakakis.answer oy ~t_views ~q_a in
            result := Relation.union !result psi)
          t.preprocessed;
        !result)
  in
  if Obs.enabled () then begin
    Obs.set_attr "q_a" (Json.Int (Relation.cardinal q_a));
    Obs.set_attr "result" (Json.Int (Relation.cardinal result));
    Obs.set_attr "cost"
      (Json.Obj
         [
           ("probes", Json.Int cost.Cost.probes);
           ("tuples", Json.Int cost.Cost.tuples);
           ("scans", Json.Int cost.Cost.scans);
         ]);
    Obs.observe "engine.answer.ops" (float_of_int (Cost.total cost))
  end;
  result

let answer_tuple t tup =
  let q_a = Relation.create (access_schema t) in
  Relation.add q_a tup;
  not (Relation.is_empty (answer t ~q_a))
