open Stt_relation
open Stt_hypergraph
open Stt_decomp
open Stt_yannakakis
open Stt_lp
open Stt_obs

type t = {
  cqap : Cq.cqap;
  pmtds : Pmtd.t list;
  rules : Rule.t list;
  structures : Twopp.t list;
  preprocessed : (Pmtd.t * Online_yannakakis.preprocessed) list;
  space : int;
}

(* Carry the per-domain simplex pivot counter across the pool's worker
   domains: capture each worker's local total, merge it into the parent
   after the join, so pivot counts stay exact under any job count. *)
let () =
  Pool.register_worker_hook (fun () ->
      let n = Simplex.pivot_count () in
      fun () -> Simplex.add_pivots n)

let cqap t = t.cqap
let pmtds t = t.pmtds
let rules t = t.rules
let space t = t.space
let structures t = t.structures

let per_pmtd_space t =
  List.map (fun (p, oy) -> (p, Online_yannakakis.space oy)) t.preprocessed

let access_schema t = Schema.of_list (Varset.to_list t.cqap.Cq.access)

let schema_of_set b = Schema.of_list (Varset.to_list b)

(* union of target relations whose schema equals [b] *)
let view_of_targets targets b =
  let empty = Relation.create (schema_of_set b) in
  List.fold_left
    (fun acc (b', rel) -> if Varset.equal b b' then Relation.union acc rel else acc)
    empty targets

(* Parallel map over the domain pool for build phases.  Each task runs
   under its own Obs context (worker domains have isolated DLS traces),
   adopted back in input order — so the trace, like the results and the
   Cost counters, is independent of the job count. *)
let pmap f xs =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | xs ->
      let tasks = List.map (fun x -> (x, Obs.create_context ())) xs in
      let res =
        Pool.map (fun (x, ctx) -> Obs.with_context ctx (fun () -> f x)) tasks
      in
      List.iter (fun (_, ctx) -> Obs.adopt ctx) tasks;
      res

let build cqap pmtd_list ~db ~budget =
  Obs.span "engine.build" ~attrs:[ ("budget", Json.Int budget) ] @@ fun () ->
  let rules = Rule.generate cqap pmtd_list in
  Obs.set_attr "pmtds" (Json.Int (List.length pmtd_list));
  Obs.set_attr "rules" (Json.Int (List.length rules));
  Obs.set_attr "jobs" (Json.Int (Pool.jobs ()));
  (* phase 1: the 2PP structure of every rule, in parallel across rules *)
  let structures = pmap (fun r -> Twopp.build r ~db ~budget) rules in
  let all_s_targets = List.concat_map Twopp.s_targets structures in
  (* phase 2: Yannakakis preprocessing, in parallel across PMTDs (reads
     the shared S-targets, writes only per-PMTD state) *)
  let preprocessed =
    Cost.with_counting false (fun () ->
        pmap
          (fun p ->
            let s_views node =
              view_of_targets all_s_targets (Pmtd.view p node).Pmtd.vars
            in
            (p, Online_yannakakis.preprocess p ~s_views))
          pmtd_list)
  in
  let space =
    List.fold_left
      (fun acc (_, oy) -> acc + Online_yannakakis.space oy)
      0 preprocessed
  in
  Obs.set_attr "space" (Json.Int space);
  Obs.set_attr "pmtd_space"
    (Json.List
       (List.map
          (fun (_, oy) -> Json.Int (Online_yannakakis.space oy))
          preprocessed));
  { cqap; pmtds = pmtd_list; rules; structures; preprocessed; space }

let build_auto ?max_pmtds cqap ~db ~budget =
  build cqap (Enum.pmtds ?max_pmtds cqap) ~db ~budget

(* The online pipeline without observability wrapping: one 2PP online
   pass per rule, T-views unioned per PMTD, Online Yannakakis per PMTD,
   results unioned.  Returns the scoped online cost. *)
let answer_scoped t ~q_a =
  Cost.scoped (fun () ->
      let all_t_targets =
        List.concat_map (fun s -> Twopp.online s ~q_a) t.structures
      in
      let head = t.cqap.Cq.cq.Cq.head in
      let result =
        ref (Relation.create (Schema.of_list (Varset.to_list head)))
      in
      List.iter
        (fun (p, oy) ->
          let t_views node =
            view_of_targets all_t_targets (Pmtd.view p node).Pmtd.vars
          in
          let psi = Online_yannakakis.answer oy ~t_views ~q_a in
          result := Relation.union !result psi)
        t.preprocessed;
      !result)

let answer t ~q_a =
  Obs.span "engine.answer" @@ fun () ->
  let result, cost = answer_scoped t ~q_a in
  if Obs.enabled () then begin
    Obs.set_attr "q_a" (Json.Int (Relation.cardinal q_a));
    Obs.set_attr "result" (Json.Int (Relation.cardinal result));
    Obs.set_attr "cost"
      (Json.Obj
         [
           ("probes", Json.Int cost.Cost.probes);
           ("tuples", Json.Int cost.Cost.tuples);
           ("scans", Json.Int cost.Cost.scans);
         ]);
    Obs.observe "engine.answer.ops" (float_of_int (Cost.total cost))
  end;
  result

let answer_tuple t tup =
  let q_a = Relation.create (access_schema t) in
  Relation.add q_a tup;
  not (Relation.is_empty (answer t ~q_a))

(* ------------------------------------------------------------------ *)
(* batched answering                                                    *)
(* ------------------------------------------------------------------ *)

(* [share total n i] — the i-th request's even share of a batch-shared
   snapshot: quotient everywhere, remainder distributed one op at a time
   to the earliest requests, so shares sum exactly to [total]. *)
let share total n i =
  let part v = (v / n) + if i < v mod n then 1 else 0 in
  {
    Cost.probes = part total.Cost.probes;
    tuples = part total.Cost.tuples;
    scans = part total.Cost.scans;
  }

let answer_batch t reqs =
  Obs.span "engine.answer_batch"
    ~attrs:[ ("requests", Json.Int (List.length reqs)) ]
  @@ fun () ->
  match reqs with
  | [] -> []
  | reqs ->
      let n = List.length reqs in
      let acc_schema = access_schema t in
      let acc_vars = Schema.vars acc_schema in
      (* canonical form of a request: tuples reordered to the access
         schema and sorted, so duplicate requests in the stream share one
         evaluation *)
      let canon q_a =
        let pos = Schema.positions (Relation.schema q_a) acc_vars in
        List.sort Tuple.compare
          (Relation.fold (fun tup acc -> Tuple.project pos tup :: acc) q_a [])
      in
      let keyed = List.map (fun q -> (canon q, q)) reqs in
      let first_idx = Hashtbl.create 16 in
      let uniq = ref [] in
      List.iteri
        (fun i (key, q) ->
          if not (Hashtbl.mem first_idx key) then begin
            Hashtbl.add first_idx key i;
            uniq := (key, q) :: !uniq
          end)
        keyed;
      let uniq = List.rev !uniq in
      let head = t.cqap.Cq.cq.Cq.head in
      let sliceable = Varset.subset t.cqap.Cq.access head in
      Obs.set_attr "unique" (Json.Int (List.length uniq));
      Obs.set_attr "sliced" (Json.Bool (sliceable && List.length uniq > 1));
      (* per unique request: its answer and the marginal cost of the
         first evaluation; [shared] is the batch-shared cost *)
      let results = Hashtbl.create 16 in
      let shared = ref Cost.zero in
      if sliceable && List.length uniq > 1 then begin
        (* access ⊆ head: answer the union of all requests once, then
           slice each request's answer back out.  Sound because
           answer(q) = {h ∈ answer(∪ q_j) : h[access] ∈ q} when the
           access variables survive into the head.  The combined answer
           is grouped by its access-variable values once (shared), so a
           slice costs one probe per request tuple plus its output. *)
        let (head_schema, groups), shared_cost =
          Cost.scoped (fun () ->
              let combined = Relation.create acc_schema in
              List.iter
                (fun (key, _) -> List.iter (Relation.add combined) key)
                uniq;
              let result, _ = answer_scoped t ~q_a:combined in
              let head_schema = Relation.schema result in
              let pos = Schema.positions head_schema acc_vars in
              let scratch = Array.make (Array.length pos) 0 in
              let groups = Tuple.Tbl.create 64 in
              Relation.iter
                (fun tup ->
                  Cost.charge_scan ();
                  Tuple.project_into pos tup scratch;
                  match Tuple.Tbl.find_opt groups scratch with
                  | Some rows -> rows := tup :: !rows
                  | None ->
                      Tuple.Tbl.add groups (Array.copy scratch) (ref [ tup ]))
                result;
              (head_schema, groups))
        in
        shared := shared_cost;
        List.iter
          (fun (key, _) ->
            let sliced, c =
              Cost.scoped (fun () ->
                  let out = Relation.create head_schema in
                  List.iter
                    (fun ktup ->
                      Cost.charge_probe ();
                      match Tuple.Tbl.find_opt groups ktup with
                      | Some rows -> List.iter (Relation.add out) !rows
                      | None -> ())
                    key;
                  out)
            in
            Hashtbl.add results key (sliced, c))
          uniq
      end
      else
        (* access pattern not in the head (or a single distinct request):
           evaluate each unique request once; duplicates still share *)
        List.iter
          (fun (key, q) ->
            let r, c = answer_scoped t ~q_a:q in
            Hashtbl.add results key (r, c))
          uniq;
      (* input-order results; cost accounting: every request carries an
         even share of the batch-shared cost, the first occurrence of a
         request additionally carries its marginal evaluation cost *)
      List.mapi
        (fun i (key, _) ->
          let r, marginal = Hashtbl.find results key in
          let c = share !shared n i in
          let c =
            if Hashtbl.find first_idx key = i then Cost.add c marginal else c
          in
          (r, c))
        keyed
