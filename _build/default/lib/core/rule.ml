open Stt_hypergraph
open Stt_decomp

type t = {
  cqap : Cq.cqap;
  s_targets : Varset.t list;
  t_targets : Varset.t list;
}

let sort_sets = List.sort_uniq Varset.compare

let minimal_sets sets =
  (* drop any set that strictly contains another set of the list *)
  List.filter
    (fun s ->
      not (List.exists (fun s' -> Varset.strict_subset s' s) sets))
    sets

let make cqap ~s_targets ~t_targets =
  {
    cqap;
    s_targets = minimal_sets (sort_sets s_targets);
    t_targets = minimal_sets (sort_sets t_targets);
  }

let equal a b =
  List.equal Varset.equal a.s_targets b.s_targets
  && List.equal Varset.equal a.t_targets b.t_targets

let subset_of xs ys = List.for_all (fun x -> List.exists (Varset.equal x) ys) xs

let subsumes a b =
  subset_of a.s_targets b.s_targets && subset_of a.t_targets b.t_targets

(* Incremental product with subset-minimal pruning.  Extending two
   partial target sets with the same view preserves inclusion, so a
   partial set that is a superset of another can never yield a minimal
   rule that the smaller one does not also yield — pruning at every step
   is sound and keeps the frontier small even for 15+ PMTDs. *)
let generate cqap pmtds =
  let view_lists =
    List.map
      (fun p ->
        List.map (fun v -> (v.Pmtd.kind, v.Pmtd.vars)) (Pmtd.views p)
        |> List.sort_uniq compare)
      pmtds
  in
  let add_target (k, vars) (s_ts, t_ts) =
    match k with
    | Pmtd.S -> (sort_sets (vars :: s_ts), t_ts)
    | Pmtd.T -> (s_ts, sort_sets (vars :: t_ts))
  in
  let partial_subsumes (s1, t1) (s2, t2) = subset_of s1 s2 && subset_of t1 t2 in
  let prune partials =
    let distinct = List.sort_uniq compare partials in
    List.filter
      (fun p ->
        not
          (List.exists
             (fun p' -> p' <> p && partial_subsumes p' p)
             distinct))
      distinct
  in
  let frontier =
    List.fold_left
      (fun partials views ->
        List.concat_map
          (fun p -> List.map (fun v -> add_target v p) views)
          partials
        |> prune)
      [ ([], []) ]
      view_lists
  in
  let rules =
    List.map (fun (s, t) -> make cqap ~s_targets:s ~t_targets:t) frontier
  in
  (* the within-rule reductions of [make] can re-introduce subsumption *)
  let rules =
    List.fold_left
      (fun acc r -> if List.exists (equal r) acc then acc else r :: acc)
      [] rules
    |> List.rev
  in
  List.filter
    (fun r ->
      not (List.exists (fun r' -> subsumes r' r && not (equal r' r)) rules))
    rules
  |> List.sort (fun a b ->
         let count r =
           List.length r.s_targets + List.length r.t_targets
         in
         let c = compare (count a) (count b) in
         if c <> 0 then c
         else
           compare
             (List.map Varset.to_int a.s_targets, List.map Varset.to_int a.t_targets)
             (List.map Varset.to_int b.s_targets, List.map Varset.to_int b.t_targets))

let pp ppf r =
  let names = r.cqap.Cq.cq.Cq.var_names in
  let pp_t prefix ppf vars =
    Format.fprintf ppf "%s%a" prefix (Varset.pp_named names) vars
  in
  let targets =
    List.map (fun v -> `S v) r.s_targets @ List.map (fun v -> `T v) r.t_targets
  in
  Format.fprintf ppf "@[<h>%a ← Q_A ∧ body@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
       (fun ppf -> function
         | `S v -> pp_t "S" ppf v
         | `T v -> pp_t "T" ppf v))
    targets
