let dedup edges =
  let seen = Hashtbl.create (List.length edges) in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.add seen e ();
        true
      end)
    edges

let uniform ~seed ~vertices ~edges =
  let rng = Rng.create seed in
  let out = ref [] in
  let seen = Hashtbl.create edges in
  let attempts = ref 0 in
  while Hashtbl.length seen < edges && !attempts < edges * 20 do
    incr attempts;
    let u = Rng.int rng vertices and v = Rng.int rng vertices in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      out := (u, v) :: !out
    end
  done;
  List.rev !out

let zipf_out ~seed ~vertices ~edges ~s =
  let rng = Rng.create seed in
  let sample_src = Rng.zipf_sampler rng ~n:vertices ~s in
  let out = ref [] in
  let seen = Hashtbl.create edges in
  let attempts = ref 0 in
  while Hashtbl.length seen < edges && !attempts < edges * 50 do
    incr attempts;
    let u = sample_src () and v = Rng.int rng vertices in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      out := (u, v) :: !out
    end
  done;
  List.rev !out

let layered ~seed ~layers ~width ~edges =
  if layers < 2 then invalid_arg "Graphs.layered: need at least 2 layers";
  let rng = Rng.create seed in
  let out = ref [] in
  let seen = Hashtbl.create edges in
  let attempts = ref 0 in
  while Hashtbl.length seen < edges && !attempts < edges * 20 do
    incr attempts;
    let l = Rng.int rng (layers - 1) in
    let u = (l * width) + Rng.int rng width
    and v = ((l + 1) * width) + Rng.int rng width in
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      out := (u, v) :: !out
    end
  done;
  List.rev !out

let cycle_rich ~seed ~vertices ~edges =
  let rng = Rng.create seed in
  let out = ref [] in
  (* plant 4-cycles with ~60% of the edge budget *)
  let planted = edges * 3 / 5 / 4 in
  for _ = 1 to planted do
    let a = Rng.int rng vertices
    and b = Rng.int rng vertices
    and c = Rng.int rng vertices
    and d = Rng.int rng vertices in
    out := (a, b) :: (b, c) :: (c, d) :: (d, a) :: !out
  done;
  let noise = edges - (4 * planted) in
  for _ = 1 to noise do
    let u = Rng.int rng vertices and v = Rng.int rng vertices in
    if u <> v then out := (u, v) :: !out
  done;
  dedup (List.rev !out)

let zipf_both ~seed ~vertices ~edges ~s =
  let rng = Rng.create seed in
  let sample_src = Rng.zipf_sampler rng ~n:vertices ~s in
  let sample_dst = Rng.zipf_sampler rng ~n:vertices ~s in
  (* decorrelate hub identities on the two sides *)
  let perm = Array.init vertices Fun.id in
  Rng.shuffle rng perm;
  let out = ref [] in
  let seen = Hashtbl.create edges in
  let attempts = ref 0 in
  while Hashtbl.length seen < edges && !attempts < edges * 50 do
    incr attempts;
    let u = sample_src () and v = perm.(sample_dst ()) in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      out := (u, v) :: !out
    end
  done;
  List.rev !out
