(** Deterministic splitmix64 RNG so every workload is reproducible from a
    seed, independent of the stdlib Random state. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t bound]: uniform in [0, bound). Raises on [bound <= 0]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit

val zipf : t -> n:int -> s:float -> int
(** A Zipf(s)-distributed rank in [0, n), by inverse-CDF over precomputed
    weights (recomputed per call; use {!zipf_sampler} in loops). *)

val zipf_sampler : t -> n:int -> s:float -> unit -> int
(** Precomputes the CDF once. *)
