(** Random directed-graph generators (edge lists, deduplicated).

    All generators are deterministic in the seed. *)

val uniform : seed:int -> vertices:int -> edges:int -> (int * int) list
(** Erdős–Rényi style: uniformly random distinct directed edges. *)

val zipf_out :
  seed:int -> vertices:int -> edges:int -> s:float -> (int * int) list
(** Out-degrees follow a Zipf([s]) law — produces the heavy/light skew
    the tradeoff data structures exploit. *)

val layered :
  seed:int -> layers:int -> width:int -> edges:int -> (int * int) list
(** A DAG of [layers] vertex layers of size [width]; edges connect
    consecutive layers only, so k-paths between the first and last layer
    exist iff [layers = k + 1].  Vertex ids: layer [l], slot [i] ↦
    [l * width + i]. *)

val cycle_rich : seed:int -> vertices:int -> edges:int -> (int * int) list
(** A union of random 4-cycles plus uniform noise — workload for the
    square query. *)

val zipf_both :
  seed:int -> vertices:int -> edges:int -> s:float -> (int * int) list
(** Both endpoints Zipf([s])-distributed (independently, over separately
    shuffled vertex orders): heavy hubs on both sides, the regime where
    materializing heavy-heavy pairs pays off. *)
