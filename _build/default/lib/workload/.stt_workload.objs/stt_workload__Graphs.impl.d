lib/workload/graphs.ml: Array Fun Hashtbl List Rng
