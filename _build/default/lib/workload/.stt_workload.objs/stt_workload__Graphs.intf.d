lib/workload/graphs.mli:
