lib/workload/rng.mli:
