lib/workload/sets.mli:
