lib/workload/sets.ml: Hashtbl List Rng
