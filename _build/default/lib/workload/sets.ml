let gen ~rng ~universe ~memberships ~sample_set =
  let seen = Hashtbl.create memberships in
  let out = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < memberships && !attempts < memberships * 30 do
    incr attempts;
    let e = Rng.int rng universe and s = sample_set () in
    if not (Hashtbl.mem seen (e, s)) then begin
      Hashtbl.add seen (e, s) ();
      out := (e, s) :: !out
    end
  done;
  List.rev !out

let uniform ~seed ~universe ~sets ~memberships =
  let rng = Rng.create seed in
  gen ~rng ~universe ~memberships ~sample_set:(fun () -> Rng.int rng sets)

let zipf_sizes ~seed ~universe ~sets ~memberships ~s =
  let rng = Rng.create seed in
  let sample = Rng.zipf_sampler rng ~n:sets ~s in
  gen ~rng ~universe ~memberships ~sample_set:sample

let planted_pairs ~seed ~universe ~sets ~memberships ~intersecting =
  let rng = Rng.create seed in
  let base =
    gen ~rng ~universe
      ~memberships:(max 0 (memberships - (2 * intersecting)))
      ~sample_set:(fun () -> Rng.int rng sets)
  in
  let witnesses = ref [] in
  let extra = ref [] in
  for _ = 1 to intersecting do
    let s1 = Rng.int rng sets and s2 = Rng.int rng sets in
    let e = Rng.int rng universe in
    extra := (e, s1) :: (e, s2) :: !extra;
    witnesses := (s1, s2) :: !witnesses
  done;
  let seen = Hashtbl.create 64 in
  let all =
    List.filter
      (fun p ->
        if Hashtbl.mem seen p then false
        else begin
          Hashtbl.add seen p ();
          true
        end)
      (base @ List.rev !extra)
  in
  (all, List.rev !witnesses)
