type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays nonnegative as a native int *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let zipf_sampler t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !total
  done;
  fun () ->
    let u = float t !total in
    (* binary search for the first index with cdf >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

let zipf t ~n ~s = zipf_sampler t ~n ~s ()
