(** Set-family generators for the k-Set Disjointness workloads.

    A family is encoded, as in the paper's introduction, by membership
    pairs [(element, set_id)] — the relation [R(y, x)] stating that
    element [y] belongs to set [x]. *)

val uniform :
  seed:int -> universe:int -> sets:int -> memberships:int -> (int * int) list

val zipf_sizes :
  seed:int ->
  universe:int ->
  sets:int ->
  memberships:int ->
  s:float ->
  (int * int) list
(** Set sizes follow a Zipf([s]) law: a few huge sets, many small ones —
    the regime where heavy/light materialization pays off. *)

val planted_pairs :
  seed:int ->
  universe:int ->
  sets:int ->
  memberships:int ->
  intersecting:int ->
  (int * int) list * (int * int) list
(** Returns [(memberships, witness_pairs)]: a family where the listed
    set pairs are guaranteed to intersect (sharing a planted element). *)
