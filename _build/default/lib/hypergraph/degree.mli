(** Symbolic degree constraints (Section 2) and split constraints
    (Definition C.2).

    Log-sizes are linear forms [d·log|D| + q·log|Q_A|] with exact rational
    coefficients, so a constraint like [(∅, F, |R_F|)] has log-size
    [{d = 1; q = 0}] and the access-request cardinality constraint
    [(∅, A, |Q_A|)] has [{d = 0; q = 1}].  The LP layer evaluates these at
    numeric values of [log|D|] and [log|Q|] and attributes dual mass back
    to the [d]/[q] components to recover tradeoff exponents. *)

type logsize = { d : Stt_lp.Rat.t; q : Stt_lp.Rat.t }

val logsize_zero : logsize
val logsize_d : logsize  (** log |D| *)

val logsize_q : logsize  (** log |Q_A| *)

val logsize_add : logsize -> logsize -> logsize
val logsize_scale : Stt_lp.Rat.t -> logsize -> logsize
val logsize_eval : logd:Stt_lp.Rat.t -> logq:Stt_lp.Rat.t -> logsize -> Stt_lp.Rat.t
val pp_logsize : Format.formatter -> logsize -> unit

type t = { x : Varset.t; y : Varset.t; bound : logsize }
(** The degree constraint [(X, Y, N_{Y|X})] with [X ⊂ Y]:
    [deg(Y | t_X) ≤ N_{Y|X}] where [log N = bound]. *)

val make : x:Varset.t -> y:Varset.t -> logsize -> t
(** Raises [Invalid_argument] unless [x ⊂ y]. *)

val cardinality : Varset.t -> logsize -> t
(** [(∅, Y, N)]. *)

val is_cardinality : t -> bool

val default_dc : Cq.t -> t list
(** One cardinality constraint [(∅, F, |D|)] per atom [F]. *)

val default_ac : Cq.cqap -> t list
(** The cardinality constraint [(∅, A, |Q_A|)]. *)

val dedup : t list -> t list
(** Best-constraints assumption: at most one constraint per [(X, Y)]
    pair, keeping the smaller bound (by [d], then [q]). *)

type split = { sx : Varset.t; sy : Varset.t; sbound : logsize }
(** A split constraint [(X, Y|X, N_{Z|∅})]: [h_S(X) + h_T(Y|X) ≤ log N]
    and [h_S(Y|X) + h_T(X) ≤ log N]. *)

val splits : t list -> split list
(** All split constraints spanned by the cardinality constraints of the
    given set (Definition C.2): for each [(∅, Z, N)] and each
    [∅ ≠ X ⊂ Y ⊆ Z]. *)

val pp : Format.formatter -> t -> unit
val pp_split : Format.formatter -> split -> unit
