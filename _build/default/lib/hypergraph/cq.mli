(** Conjunctive queries and conjunctive queries with access patterns.

    A CQ is a hypergraph whose vertices carry variable names, a list of
    named atoms and a set of head variables.  A CQAP additionally carries
    the access pattern [A]; per Section 2.2 of the paper we normalize so
    that [A ⊆ H] (adding access variables to the head when needed). *)

type atom = { rel : string; vars : int list }
(** An atom [rel(x_{i1}, ..., x_{ik})] with distinct variables. *)

type t = private {
  n : int;
  var_names : string array;
  head : Varset.t;
  atoms : atom list;
}

type cqap = private { cq : t; access : Varset.t }

val create : var_names:string array -> head:Varset.t -> atom list -> t
(** Raises [Invalid_argument] if an atom repeats a variable, mentions one
    out of range, or if some variable appears in no atom. *)

val with_access : t -> Varset.t -> cqap
(** Builds a CQAP, adding the access variables to the head (the paper's
    normalization for [H ⊉ A]). *)

val atom_vars : atom -> Varset.t
val hypergraph : t -> Hypergraph.t
val is_full : t -> bool
val is_boolean : t -> bool
val free_vars : t -> Varset.t
val bound_vars : t -> Varset.t
val atoms_of_var : t -> int -> atom list
val is_hierarchical : t -> bool
(** For any two variables, their atom sets are disjoint or one contains
    the other. *)

val is_acyclic : t -> bool
(** GYO reduction on the hypergraph. *)

val pp : Format.formatter -> t -> unit
val pp_cqap : Format.formatter -> cqap -> unit

(** Standard queries used across the paper. *)
module Library : sig
  val k_path : int -> cqap
  (** k-reachability: [φk(x1, x_{k+1} | x1, x_{k+1}) ← ⋀ R(x_i, x_{i+1})];
      variable [x_i] has id [i - 1]. *)

  val k_set_disjointness : int -> cqap
  (** Boolean version of (1): [φ( | x_[k]) ← ⋀ R(y, x_i)]; [x_i] has id
      [i - 1], [y] has id [k]. *)

  val k_set_intersection : int -> cqap
  (** Non-Boolean version (2): head additionally contains [y]. *)

  val triangle_detect : cqap
  (** Example E.4: [φ(x1, x3 | ∅) ← R(x1,x2), R(x2,x3), R(x3,x1)]. *)

  val square : cqap
  (** Example E.5: opposite corners of a 4-cycle, [A = {x1, x3}]. *)

  val edge_triangle : cqap
  (** Edge-triangle detection: [φ( | x1, x2) ← R(x1,x2), R(x2,x3), R(x3,x1)]. *)

  val hierarchical_binary : cqap
  (** The Appendix F / Figure 5 query:
      [φ(Z | Z) ← R(X,Y1,Z1), S(X,Y1,Z2), T(X,Y2,Z3), U(X,Y2,Z4)]
      with ids X=0, Y1=1, Y2=2, Z1=3, Z2=4, Z3=5, Z4=6. *)

  val two_set_disjointness : cqap
  (** [k_set_disjointness 2], the introduction's running example. *)
end
