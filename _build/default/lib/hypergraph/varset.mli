(** Sets of query variables, represented as bit sets.

    Variables are integers in [0, 62].  Used throughout for hyperedges,
    tree-decomposition bags, access patterns and the index sets of
    polymatroid set functions. *)

type t = private int

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val of_list : int list -> t
val to_list : t -> int list
val full : int -> t
(** [full n] = [{0, ..., n-1}]. *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b]: is [a ⊆ b]? *)

val strict_subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val cardinal : t -> int
val choose : t -> int
(** Least element.  Raises [Not_found] on the empty set. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val disjoint : t -> t -> bool
val crossing : t -> t -> bool
(** [crossing i j]: neither [i ⊆ j] nor [j ⊆ i] (written [I ⊥ J] in the
    paper's submodularity rule). *)

val subsets : t -> t list
(** All subsets, including [empty] and the set itself. *)

val to_int : t -> int
val of_int_unsafe : int -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit
val pp_named : string array -> Format.formatter -> t -> unit
(** Print using variable names from the array. *)

val to_string : t -> string
