type atom = { rel : string; vars : int list }

type t = {
  n : int;
  var_names : string array;
  head : Varset.t;
  atoms : atom list;
}

type cqap = { cq : t; access : Varset.t }

let atom_vars a = Varset.of_list a.vars

let create ~var_names ~head atoms =
  let n = Array.length var_names in
  let range = Varset.full n in
  List.iter
    (fun a ->
      if List.length a.vars <> Varset.cardinal (atom_vars a) then
        invalid_arg "Cq.create: repeated variable in atom";
      if not (Varset.subset (atom_vars a) range) then
        invalid_arg "Cq.create: variable out of range")
    atoms;
  let covered =
    List.fold_left (fun acc a -> Varset.union acc (atom_vars a)) Varset.empty
      atoms
  in
  if not (Varset.equal covered range) then
    invalid_arg "Cq.create: variable in no atom";
  if not (Varset.subset head range) then
    invalid_arg "Cq.create: head variable out of range";
  { n; var_names; head; atoms }

let with_access cq access =
  if not (Varset.subset access (Varset.full cq.n)) then
    invalid_arg "Cq.with_access: access variable out of range";
  { cq = { cq with head = Varset.union cq.head access }; access }

let hypergraph t = Hypergraph.create ~n:t.n (List.map atom_vars t.atoms)
let is_full t = Varset.equal t.head (Varset.full t.n)
let is_boolean t = Varset.is_empty t.head
let free_vars t = t.head
let bound_vars t = Varset.diff (Varset.full t.n) t.head

let atoms_of_var t v = List.filter (fun a -> Varset.mem v (atom_vars a)) t.atoms

let is_hierarchical t =
  let atoms = Array.of_list t.atoms in
  let atom_set v =
    (* the set of atom indices mentioning v *)
    let s = ref Varset.empty in
    Array.iteri
      (fun i a -> if Varset.mem v (atom_vars a) then s := Varset.add i !s)
      atoms;
    !s
  in
  let sets = List.init t.n atom_set in
  List.for_all
    (fun s1 ->
      List.for_all
        (fun s2 ->
          Varset.disjoint s1 s2 || Varset.subset s1 s2 || Varset.subset s2 s1)
        sets)
    sets

let is_acyclic t =
  (* GYO: repeatedly remove ear edges / isolated vertices *)
  let edges = ref (List.map atom_vars t.atoms) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* remove vertices that occur in exactly one edge *)
    let occurrences v = List.length (List.filter (Varset.mem v) !edges) in
    let reduced =
      List.map (fun e -> Varset.filter (fun v -> occurrences v > 1) e) !edges
    in
    if reduced <> !edges then begin
      edges := reduced;
      changed := true
    end;
    (* remove edges contained in another edge (and empty edges) *)
    let rec dedup kept = function
      | [] -> List.rev kept
      | e :: rest ->
          if
            Varset.is_empty e
            || List.exists (fun e' -> Varset.subset e e') (kept @ rest)
          then begin
            changed := true;
            dedup kept rest
          end
          else dedup (e :: kept) rest
    in
    edges := dedup [] !edges
  done;
  List.length !edges <= 1

let pp ppf t =
  let pp_atom ppf a =
    Format.fprintf ppf "%s(%a)" a.rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf v -> Format.pp_print_string ppf t.var_names.(v)))
      a.vars
  in
  Format.fprintf ppf "@[<h>φ(%a) ← %a@]"
    (Varset.pp_named t.var_names)
    t.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
       pp_atom)
    t.atoms

let pp_cqap ppf { cq; access } =
  let pp_atom ppf a =
    Format.fprintf ppf "%s(%a)" a.rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf v -> Format.pp_print_string ppf cq.var_names.(v)))
      a.vars
  in
  Format.fprintf ppf "@[<h>φ(%a | %a) ← %a@]"
    (Varset.pp_named cq.var_names)
    cq.head
    (Varset.pp_named cq.var_names)
    access
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
       pp_atom)
    cq.atoms

module Library = struct
  let k_path k =
    if k < 1 then invalid_arg "k_path";
    let var_names = Array.init (k + 1) (fun i -> Printf.sprintf "x%d" (i + 1)) in
    let atoms = List.init k (fun i -> { rel = "R"; vars = [ i; i + 1 ] }) in
    let endpoints = Varset.of_list [ 0; k ] in
    let cq = create ~var_names ~head:endpoints atoms in
    with_access cq endpoints

  let k_set_disj_generic k ~with_y =
    if k < 1 then invalid_arg "k_set_disjointness";
    let var_names =
      Array.init (k + 1) (fun i ->
          if i = k then "y" else Printf.sprintf "x%d" (i + 1))
    in
    let atoms = List.init k (fun i -> { rel = "R"; vars = [ k; i ] }) in
    let access = Varset.full k in
    let head = if with_y then Varset.add k access else Varset.empty in
    let cq = create ~var_names ~head atoms in
    with_access cq access

  let k_set_disjointness k = k_set_disj_generic k ~with_y:false
  let k_set_intersection k = k_set_disj_generic k ~with_y:true
  let two_set_disjointness = k_set_disjointness 2

  let triangle_detect =
    let var_names = [| "x1"; "x2"; "x3" |] in
    let atoms =
      [ { rel = "R"; vars = [ 0; 1 ] };
        { rel = "R"; vars = [ 1; 2 ] };
        { rel = "R"; vars = [ 2; 0 ] } ]
    in
    let cq = create ~var_names ~head:(Varset.of_list [ 0; 2 ]) atoms in
    with_access cq Varset.empty

  let edge_triangle =
    let var_names = [| "x1"; "x2"; "x3" |] in
    let atoms =
      [ { rel = "R"; vars = [ 0; 1 ] };
        { rel = "R"; vars = [ 1; 2 ] };
        { rel = "R"; vars = [ 2; 0 ] } ]
    in
    let cq = create ~var_names ~head:Varset.empty atoms in
    with_access cq (Varset.of_list [ 0; 1 ])

  let square =
    let var_names = [| "x1"; "x2"; "x3"; "x4" |] in
    let atoms =
      [ { rel = "R"; vars = [ 0; 1 ] };
        { rel = "R"; vars = [ 1; 2 ] };
        { rel = "R"; vars = [ 2; 3 ] };
        { rel = "R"; vars = [ 3; 0 ] } ]
    in
    let corners = Varset.of_list [ 0; 2 ] in
    let cq = create ~var_names ~head:corners atoms in
    with_access cq corners

  let hierarchical_binary =
    let var_names = [| "X"; "Y1"; "Y2"; "Z1"; "Z2"; "Z3"; "Z4" |] in
    let atoms =
      [ { rel = "R"; vars = [ 0; 1; 3 ] };
        { rel = "S"; vars = [ 0; 1; 4 ] };
        { rel = "T"; vars = [ 0; 2; 5 ] };
        { rel = "U"; vars = [ 0; 2; 6 ] } ]
    in
    let leaves = Varset.of_list [ 3; 4; 5; 6 ] in
    let cq = create ~var_names ~head:leaves atoms in
    with_access cq leaves
end
