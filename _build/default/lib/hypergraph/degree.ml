open Stt_lp

type logsize = { d : Rat.t; q : Rat.t }

let logsize_zero = { d = Rat.zero; q = Rat.zero }
let logsize_d = { d = Rat.one; q = Rat.zero }
let logsize_q = { d = Rat.zero; q = Rat.one }
let logsize_add a b = { d = Rat.add a.d b.d; q = Rat.add a.q b.q }
let logsize_scale s a = { d = Rat.mul s a.d; q = Rat.mul s a.q }
let logsize_eval ~logd ~logq a = Rat.add (Rat.mul a.d logd) (Rat.mul a.q logq)

let pp_logsize ppf a =
  Format.fprintf ppf "%a·logD + %a·logQ" Rat.pp a.d Rat.pp a.q

type t = { x : Varset.t; y : Varset.t; bound : logsize }

let make ~x ~y bound =
  if not (Varset.strict_subset x y) then
    invalid_arg "Degree.make: need X ⊂ Y";
  { x; y; bound }

let cardinality y bound = make ~x:Varset.empty ~y bound
let is_cardinality t = Varset.is_empty t.x

let default_dc (cq : Cq.t) =
  let constraints =
    List.map (fun a -> cardinality (Cq.atom_vars a) logsize_d) cq.Cq.atoms
  in
  (* distinct atoms may share a hyperedge (e.g. self-joins): dedup *)
  List.sort_uniq compare constraints

let default_ac (cqap : Cq.cqap) =
  if Varset.is_empty cqap.Cq.access then []
  else [ cardinality cqap.Cq.access logsize_q ]

let smaller a b =
  (* lexicographic by (d, q) *)
  let c = Rat.compare a.d b.d in
  if c <> 0 then c < 0 else Rat.compare a.q b.q < 0

let dedup cs =
  let table = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = (Varset.to_int c.x, Varset.to_int c.y) in
      match Hashtbl.find_opt table key with
      | Some c' when not (smaller c.bound c'.bound) -> ()
      | _ -> Hashtbl.replace table key c)
    cs;
  Hashtbl.fold (fun _ c acc -> c :: acc) table []
  |> List.sort (fun a b ->
         compare
           (Varset.to_int a.x, Varset.to_int a.y)
           (Varset.to_int b.x, Varset.to_int b.y))

type split = { sx : Varset.t; sy : Varset.t; sbound : logsize }

let splits cs =
  let acc = ref [] in
  List.iter
    (fun c ->
      if is_cardinality c then
        let z = c.y in
        List.iter
          (fun y ->
            if Varset.cardinal y >= 2 then
              List.iter
                (fun x ->
                  if (not (Varset.is_empty x)) && Varset.strict_subset x y then
                    acc := { sx = x; sy = y; sbound = c.bound } :: !acc)
                (Varset.subsets y))
          (Varset.subsets z))
    cs;
  List.sort_uniq compare !acc

let pp ppf c =
  Format.fprintf ppf "(%a, %a, %a)" Varset.pp c.x Varset.pp c.y pp_logsize
    c.bound

let pp_split ppf s =
  Format.fprintf ppf "(%a, %a|%a, %a)" Varset.pp s.sx Varset.pp s.sy Varset.pp
    s.sx pp_logsize s.sbound
