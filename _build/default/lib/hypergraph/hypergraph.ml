type t = { n : int; edges : Varset.t list }

let create ~n edges =
  let all = Varset.full n in
  List.iter
    (fun e ->
      if not (Varset.subset e all) then
        invalid_arg "Hypergraph.create: edge outside vertex range")
    edges;
  let covered = List.fold_left Varset.union Varset.empty edges in
  if not (Varset.equal covered all) then
    invalid_arg "Hypergraph.create: isolated vertex";
  { n; edges }

let vertices t = Varset.full t.n
let covers t s = List.exists (fun e -> Varset.subset s e) t.edges
let edges_containing t v = List.filter (Varset.mem v) t.edges

let induced t s =
  let edges =
    List.filter_map
      (fun e ->
        let e' = Varset.inter e s in
        if Varset.is_empty e' then None else Some e')
      t.edges
  in
  { n = t.n; edges }

let is_connected t =
  match t.edges with
  | [] -> t.n = 0
  | first :: _ ->
      let rec grow reached =
        let reached' =
          List.fold_left
            (fun acc e ->
              if Varset.disjoint acc e then acc else Varset.union acc e)
            reached t.edges
        in
        if Varset.equal reached' reached then reached else grow reached'
      in
      Varset.equal (grow first) (vertices t)

let pp ppf t =
  Format.fprintf ppf "@[<h>H(n=%d; %a)@]" t.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Varset.pp)
    t.edges
