type t = int

let empty = 0
let is_empty t = t = 0

let check i =
  if i < 0 || i > 62 then invalid_arg "Varset: variable out of [0, 62]"

let singleton i =
  check i;
  1 lsl i

let add i t = t lor singleton i
let remove i t = t land lnot (singleton i)
let mem i t = t land (1 lsl i) <> 0
let of_list is = List.fold_left (fun acc i -> add i acc) empty is
let full n = if n = 0 then 0 else (1 lsl n) - 1
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal a b = a = b
let strict_subset a b = subset a b && not (equal a b)
let compare (a : int) (b : int) = Stdlib.compare a b

let cardinal t =
  let rec loop t acc = if t = 0 then acc else loop (t land (t - 1)) (acc + 1) in
  loop t 0

let choose t =
  if t = 0 then raise Not_found;
  let rec loop i = if t land (1 lsl i) <> 0 then i else loop (i + 1) in
  loop 0

let fold f t init =
  let rec loop t acc =
    if t = 0 then acc
    else
      let i = choose t in
      loop (remove i t) (f i acc)
  in
  loop t init

let iter f t = fold (fun i () -> f i) t ()
let to_list t = List.rev (fold List.cons t [])
let for_all p t = fold (fun i acc -> acc && p i) t true
let exists p t = fold (fun i acc -> acc || p i) t false
let filter p t = fold (fun i acc -> if p i then add i acc else acc) t empty
let disjoint a b = a land b = 0
let crossing a b = (not (subset a b)) && not (subset b a)

let subsets t =
  (* iterate submasks in increasing order *)
  let rec loop sub acc =
    let acc = sub :: acc in
    if sub = t then acc else loop ((sub - t) land t) acc
  in
  List.rev (loop 0 [])

let to_int t = t
let of_int_unsafe t = t
let hash t = Hashtbl.hash t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)

let pp_named names ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf i ->
         if i < Array.length names then Format.pp_print_string ppf names.(i)
         else Format.pp_print_int ppf i))
    (to_list t)

let to_string t = Format.asprintf "%a" pp t
