(** Query hypergraphs: vertex set [0..n-1] plus a list of hyperedges. *)

type t = { n : int; edges : Varset.t list }

val create : n:int -> Varset.t list -> t
(** Raises [Invalid_argument] if an edge mentions a vertex outside
    [0..n-1] or if some vertex is in no edge. *)

val vertices : t -> Varset.t
val covers : t -> Varset.t -> bool
(** Is the set contained in some edge? *)

val edges_containing : t -> int -> Varset.t list
val induced : t -> Varset.t -> t
(** Sub-hypergraph induced on a vertex subset: edges are intersected with
    the subset and empty intersections dropped (vertices keep their
    original ids; [n] is unchanged). *)

val is_connected : t -> bool
val pp : Format.formatter -> t -> unit
