lib/hypergraph/hypergraph.mli: Format Varset
