lib/hypergraph/degree.mli: Cq Format Stt_lp Varset
