lib/hypergraph/degree.ml: Cq Format Hashtbl List Rat Stt_lp Varset
