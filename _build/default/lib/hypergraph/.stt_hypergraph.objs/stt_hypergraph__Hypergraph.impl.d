lib/hypergraph/hypergraph.ml: Format List Varset
