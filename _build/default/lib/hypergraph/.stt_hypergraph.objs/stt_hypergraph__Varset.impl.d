lib/hypergraph/varset.ml: Array Format Hashtbl List Stdlib
