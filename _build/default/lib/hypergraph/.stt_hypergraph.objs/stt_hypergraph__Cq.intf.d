lib/hypergraph/cq.mli: Format Hypergraph Varset
