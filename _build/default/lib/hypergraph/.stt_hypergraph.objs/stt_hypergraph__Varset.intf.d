lib/hypergraph/varset.mli: Format
