lib/hypergraph/cq.ml: Array Format Hypergraph List Printf Varset
