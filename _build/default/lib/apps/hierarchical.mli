(** Boolean hierarchical CQAPs (Appendix F).

    The running query is the complete-binary-tree query of Figure 5:

    {v φ(Z | Z) ← R(X,Y1,Z1) ∧ S(X,Y1,Z2) ∧ T(X,Y2,Z3) ∧ U(X,Y2,Z4) v}

    [Framework] answers it through the general engine (whose LP derives
    the improved tradeoff [S·T^4 ≅ |D|^4·|Q|^4]); [Adapted] is the
    baseline adapted from Kara et al. [19] (Theorem F.4, tradeoff
    [S·T^3 ≅ |D|^4] for static width w = 4): the query result is
    materialized for {e light} [X] values (joint degree at most [N^ε]),
    while heavy [X] values are resolved online from per-relation indexes.
    Both are exercised against the same workloads in the benchmarks. *)

type triple = int * int * int
(** (X, Y, Z) *)

type instance = { r : triple list; s : triple list; t : triple list; u : triple list }

val generate : seed:int -> posts:int -> size:int -> instance
(** A synthetic "forum" workload: [X] = thread, [Y1]/[Y2] = two user
    groups, [Z1..Z4] = item attributes, with Zipf-skewed thread
    activity. *)

module Framework : sig
  type t

  val build : instance -> budget:int -> t
  val space : t -> int

  val query : t -> int array -> bool
  (** [query t [|z1; z2; z3; z4|]]. *)

  val engine : t -> Stt_core.Engine.t
end

module Adapted : sig
  type t

  val build : instance -> epsilon:float -> t
  val space : t -> int

  val query : t -> int array -> bool
end

val naive : instance -> int array -> bool
