(** Pattern-query indexes over a single edge relation: the square query
    (Example E.5), triangle listing (Example E.4) and edge-triangle
    detection — all through the general framework engine. *)

type edges = (int * int) list

module Square : sig
  type t

  val build : edges -> budget:int -> t
  val space : t -> int

  val query : t -> int -> int -> bool
  (** Do the two vertices sit on opposite corners of a 4-cycle? *)

  val naive : edges -> int -> int -> bool
end

module Triangle : sig
  type t

  val build : edges -> budget:int -> t
  val space : t -> int

  val corner_pairs : t -> (int * int) list
  (** All [(x1, x3)] pairs that occur in a triangle (the query has an
      empty access pattern: one request returns the whole answer). *)

  val naive : edges -> (int * int) list
end

module EdgeTriangle : sig
  type t

  val build : edges -> budget:int -> t
  val space : t -> int

  val query : t -> int -> int -> bool
  (** Does the edge [(u, v)] participate in a triangle? *)

  val naive : edges -> int -> int -> bool
end
