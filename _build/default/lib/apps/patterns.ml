open Stt_relation
open Stt_hypergraph
open Stt_core

type edges = (int * int) list

let engine_of cqap edges ~budget =
  let db = Db.create () in
  Db.add_pairs db "R" edges;
  Engine.build_auto cqap ~db ~budget

module Square = struct
  type t = Engine.t

  let build edges ~budget = engine_of Cq.Library.square edges ~budget
  let space = Engine.space
  let query t u w = Engine.answer_tuple t [| u; w |]

  let naive edges u w =
    (* φ(u, w) ⇔ ∃ x2, x4: R(u,x2) ∧ R(x2,w) ∧ R(w,x4) ∧ R(x4,u) *)
    let succ x =
      List.filter_map (fun (a, b) -> if a = x then Some b else None) edges
    in
    List.exists (fun x2 -> List.mem (x2, w) edges) (succ u)
    && List.exists (fun x4 -> List.mem (x4, u) edges) (succ w)
end

module Triangle = struct
  type t = Engine.t

  let build edges ~budget = engine_of Cq.Library.triangle_detect edges ~budget
  let space = Engine.space

  let corner_pairs t =
    (* empty access pattern: Q_A is the nullary "true" relation *)
    let q_a = Relation.create (Schema.of_list []) in
    Relation.add q_a [||];
    let result = Engine.answer t ~q_a in
    Relation.fold (fun tup acc -> (tup.(0), tup.(1)) :: acc) result []
    |> List.sort compare

  let naive edges =
    List.concat_map
      (fun (a, b) ->
        List.filter_map
          (fun (c, d) ->
            if c = b && List.mem (d, a) edges then Some (a, d) else None)
          edges)
      edges
    |> List.sort_uniq compare
end

module EdgeTriangle = struct
  type t = Engine.t

  let build edges ~budget = engine_of Cq.Library.edge_triangle edges ~budget
  let space = Engine.space
  let query t u v = Engine.answer_tuple t [| u; v |]

  let naive edges u v =
    List.mem (u, v) edges
    && List.exists
         (fun (c, d) -> c = v && List.mem (d, u) edges)
         edges
end
