lib/apps/setdisj.ml: Array Cost Hashtbl List Stt_relation Tuple
