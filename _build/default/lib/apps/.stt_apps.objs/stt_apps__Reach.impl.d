lib/apps/reach.ml: Cost Float Hashtbl List Stt_core Stt_hypergraph Stt_relation Tuple
