lib/apps/hierarchical.ml: Array Cost Cq Db Engine Float Hashtbl List Rng Stt_core Stt_hypergraph Stt_relation Stt_workload Tuple
