lib/apps/patterns.ml: Array Cq Db Engine List Relation Schema Stt_core Stt_hypergraph Stt_relation
