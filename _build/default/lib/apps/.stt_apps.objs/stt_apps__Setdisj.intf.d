lib/apps/setdisj.mli:
