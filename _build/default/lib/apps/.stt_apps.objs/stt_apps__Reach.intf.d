lib/apps/reach.mli: Stt_core
