lib/apps/hierarchical.mli: Stt_core
