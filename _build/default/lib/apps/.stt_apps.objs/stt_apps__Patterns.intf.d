lib/apps/patterns.mli:
