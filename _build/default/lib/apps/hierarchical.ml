open Stt_relation
open Stt_hypergraph
open Stt_core
open Stt_workload

type triple = int * int * int

type instance = {
  r : triple list;
  s : triple list;
  t : triple list;
  u : triple list;
}

let generate ~seed ~posts ~size =
  let rng = Rng.create seed in
  let sample_x = Rng.zipf_sampler rng ~n:posts ~s:1.1 in
  let groups = max 2 (posts / 16) in
  let zdom = max 4 (posts / 4) in
  let gen () =
    List.init size (fun _ ->
        (sample_x (), Rng.int rng groups, Rng.int rng zdom))
    |> List.sort_uniq compare
  in
  { r = gen (); s = gen (); t = gen (); u = gen () }

let db_of inst =
  let db = Db.create () in
  let add name triples =
    Db.add db name (List.map (fun (x, y, z) -> [| x; y; z |]) triples)
  in
  add "R" inst.r;
  add "S" inst.s;
  add "T" inst.t;
  add "U" inst.u;
  db

module Framework = struct
  type t = Engine.t

  let build inst ~budget =
    Engine.build_auto Cq.Library.hierarchical_binary ~db:(db_of inst) ~budget

  let space = Engine.space
  let query t zs = Engine.answer_tuple t zs
  let engine t = t
end

module Adapted = struct
  type t = {
    light_view : unit Tuple.Tbl.t; (* (z1,z2,z3,z4) for light X *)
    heavy : int list;              (* heavy X values *)
    rz : Tuple.t list Tuple.Tbl.t; (* (x, z) -> y list, per relation *)
    sz : Tuple.t list Tuple.Tbl.t;
    tz : Tuple.t list Tuple.Tbl.t;
    uz : Tuple.t list Tuple.Tbl.t;
    s_member : unit Tuple.Tbl.t;   (* (x, y, z) membership for S and U *)
    u_member : unit Tuple.Tbl.t;
    space : int;
  }

  let space t = t.space

  let group_by_x triples =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (x, y, z) ->
        Hashtbl.replace tbl x ((y, z) :: (try Hashtbl.find tbl x with Not_found -> [])))
      triples;
    tbl

  let xz_index triples =
    let tbl = Tuple.Tbl.create 1024 in
    List.iter
      (fun (x, y, z) ->
        let key = [| x; z |] in
        let existing = try Tuple.Tbl.find tbl key with Not_found -> [] in
        Tuple.Tbl.replace tbl key ([| y |] :: existing))
      triples;
    tbl

  let members triples =
    let tbl = Tuple.Tbl.create 1024 in
    List.iter (fun (x, y, z) -> Tuple.Tbl.replace tbl [| x; y; z |] ()) triples;
    tbl

  (* (z, z') pairs joined through a shared y, for one x *)
  let z_pairs left right =
    List.concat_map
      (fun (y1, z1) ->
        List.filter_map
          (fun (y2, z2) -> if y1 = y2 then Some (z1, z2) else None)
          right)
      left
    |> List.sort_uniq compare

  let build inst ~epsilon =
    let n =
      List.fold_left max 1
        (List.map List.length [ inst.r; inst.s; inst.t; inst.u ])
    in
    let threshold =
      max 1 (int_of_float (Float.pow (float_of_int n) epsilon))
    in
    let rx = group_by_x inst.r
    and sx = group_by_x inst.s
    and tx = group_by_x inst.t
    and ux = group_by_x inst.u in
    let deg x tbl =
      try List.length (Hashtbl.find tbl x) with Not_found -> 0
    in
    let all_x =
      List.concat_map
        (fun tbl -> Hashtbl.fold (fun x _ acc -> x :: acc) tbl [])
        [ rx; sx; tx; ux ]
      |> List.sort_uniq compare
    in
    let is_light x =
      deg x rx <= threshold && deg x sx <= threshold && deg x tx <= threshold
      && deg x ux <= threshold
      (* guard against materializing a huge per-thread view: threads whose
         worst-case view exceeds the cap are treated as heavy *)
      && deg x rx * deg x sx * deg x tx * deg x ux <= 1_000_000
    in
    let light_view = Tuple.Tbl.create 4096 in
    let heavy = List.filter (fun x -> not (is_light x)) all_x in
    List.iter
      (fun x ->
        if is_light x then begin
          let find tbl = try Hashtbl.find tbl x with Not_found -> [] in
          let p12 = z_pairs (find rx) (find sx) in
          let p34 = z_pairs (find tx) (find ux) in
          List.iter
            (fun (z1, z2) ->
              List.iter
                (fun (z3, z4) ->
                  Tuple.Tbl.replace light_view [| z1; z2; z3; z4 |] ())
                p34)
            p12
        end)
      all_x;
    {
      light_view;
      heavy;
      rz = xz_index inst.r;
      sz = xz_index inst.s;
      tz = xz_index inst.t;
      uz = xz_index inst.u;
      s_member = members inst.s;
      u_member = members inst.u;
      space = Tuple.Tbl.length light_view + (4 * List.length heavy);
    }

  let probe tbl key =
    Cost.charge_probe ();
    try Tuple.Tbl.find tbl key with Not_found -> []

  let query t zs =
    if Array.length zs <> 4 then invalid_arg "Hierarchical.Adapted.query";
    Cost.charge_probe ();
    Tuple.Tbl.mem t.light_view zs
    || List.exists
         (fun x ->
           Cost.charge_scan ();
           let pair left member z z2 =
             List.exists
               (fun y ->
                 Cost.charge_probe ();
                 Tuple.Tbl.mem member [| x; y.(0); z2 |])
               (probe left [| x; z |])
           in
           pair t.rz t.s_member zs.(0) zs.(1)
           && pair t.tz t.u_member zs.(2) zs.(3))
         t.heavy
end

let naive inst zs =
  let z1 = zs.(0) and z2 = zs.(1) and z3 = zs.(2) and z4 = zs.(3) in
  List.exists
    (fun (x, y1, z) ->
      z = z1
      && List.mem (x, y1, z2) inst.s
      && List.exists
           (fun (x', y2, z') ->
             x' = x && z' = z3 && List.mem (x, y2, z4) inst.u)
           inst.t)
    inst.r
