type t = {
  key_vars : Schema.var list;
  source_schema : Schema.t;
  table : Tuple.t list Tuple.Tbl.t;
  space : int;
}

let build rel key_vars =
  let source_schema = Relation.schema rel in
  let pos = Schema.positions source_schema key_vars in
  let table = Tuple.Tbl.create (max 16 (Relation.cardinal rel)) in
  Cost.with_counting false (fun () ->
      Relation.iter
        (fun tup ->
          let key = Tuple.project pos tup in
          let bucket = try Tuple.Tbl.find table key with Not_found -> [] in
          Tuple.Tbl.replace table key (tup :: bucket))
        rel);
  { key_vars; source_schema; table; space = Relation.cardinal rel }

let key_vars t = t.key_vars
let source_schema t = t.source_schema

let probe t key =
  Cost.charge_probe ();
  try Tuple.Tbl.find t.table key with Not_found -> []

let probe_mem t key =
  Cost.charge_probe ();
  Tuple.Tbl.mem t.table key

let count t key =
  Cost.charge_probe ();
  match Tuple.Tbl.find_opt t.table key with
  | None -> 0
  | Some bucket -> List.length bucket

let space t = t.space

let semijoin rel t =
  let key_pos = Schema.positions (Relation.schema rel) t.key_vars in
  let out = Relation.create (Relation.schema rel) in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      if probe_mem t (Tuple.project key_pos tup) then Relation.add out tup)
    rel;
  out

let join rel t =
  let rel_schema = Relation.schema rel in
  let key_pos = Schema.positions rel_schema t.key_vars in
  let extra_vars =
    List.filter
      (fun v -> not (Schema.mem v rel_schema))
      (Schema.vars t.source_schema)
  in
  let extra_pos = Schema.positions t.source_schema extra_vars in
  let out_schema = Schema.union rel_schema (Schema.of_list extra_vars) in
  let out = Relation.create out_schema in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      List.iter
        (fun other ->
          Relation.add out (Tuple.concat tup (Tuple.project extra_pos other)))
        (probe t (Tuple.project key_pos tup)))
    rel;
  out
