type var = int
type t = var array

let check_distinct a =
  let seen = Hashtbl.create (Array.length a) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg "Schema.of_list: duplicate variable";
      Hashtbl.add seen v ())
    a

let of_array a =
  check_distinct a;
  Array.copy a

let of_list vs = of_array (Array.of_list vs)
let vars t = Array.to_list t
let arity = Array.length
let mem v t = Array.exists (( = ) v) t

let position t v =
  let n = Array.length t in
  let rec loop i =
    if i >= n then raise Not_found else if t.(i) = v then i else loop (i + 1)
  in
  loop 0

let positions t vs = Array.of_list (List.map (position t) vs)
let inter a b = List.filter (fun v -> mem v b) (vars a)

let union a b =
  Array.append a (Array.of_seq (Seq.filter (fun v -> not (mem v a)) (Array.to_seq b)))

let subset a b = Array.for_all (fun v -> mem v b) a
let equal a b = subset a b && subset b a
let restrict t keep = Array.of_seq (Seq.filter (fun v -> List.mem v keep) (Array.to_seq t))

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_seq t)
