(** Fixed-size domain pool for offline (preprocessing) parallelism.

    The paper's serving scenario separates an offline phase — whose
    wall-clock time we want as small as the hardware allows — from an
    online phase measured in {!Cost} operations.  [map] parallelizes the
    offline phase across OCaml 5 domains while keeping every observable
    deterministic: results come back in input order and each task's Cost
    charges are merged into the calling domain in input order, so a run
    with [STT_JOBS=8] is bit-identical to [STT_JOBS=1]. *)

val jobs : unit -> int
(** Current job count.  Initialized on first read from the [STT_JOBS]
    environment variable if set to a positive integer, otherwise from
    [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Override the job count (CLI [--jobs], tests).  Raises
    [Invalid_argument] if [< 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, fanning out over at most
    [jobs] domains (default {!jobs}[ ()]), and returns the results in
    input order.  With [jobs = 1] (or on short lists) it degenerates to
    [List.map].  Tasks must be independent: they may read shared
    structures but must only write task-local state.  Worker domains
    inherit the caller's {!Cost.counting} flag; each task's charges are
    {!Cost.merge}d back in input order.  If tasks raise, the exception of
    the earliest failing task is re-raised after all workers joined. *)

type worker_hook = unit -> unit -> unit
(** A domain-local-state merge protocol: the outer thunk runs in a
    worker domain after its last task and captures that domain's
    accumulated state; the inner thunk runs in the calling domain after
    the join and merges the capture.  Totals must be commutative sums so
    the aggregate is schedule-independent. *)

val register_worker_hook : worker_hook -> unit
(** Register a hook for all subsequent [map] calls (used by [Stt_core]
    to carry the simplex pivot counter across domains). *)
