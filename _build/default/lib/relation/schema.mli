(** A schema is an ordered list of distinct variable identifiers.

    Variables are small integers shared with {!Stt_hypergraph}; a relation
    over schema [[|x; y|]] stores tuples whose position [0] carries the
    value of variable [x]. *)

type var = int
type t = private var array

val of_list : var list -> t
(** Raises [Invalid_argument] if the variables are not distinct. *)

val of_array : var array -> t
val vars : t -> var list
val arity : t -> int
val mem : var -> t -> bool

val position : t -> var -> int
(** Position of a variable.  Raises [Not_found] if absent. *)

val positions : t -> var list -> int array
(** Positions of several variables, in the order given. *)

val inter : t -> t -> var list
(** Common variables, in the order of the first schema. *)

val union : t -> t -> t
(** First schema followed by the variables unique to the second. *)

val subset : t -> t -> bool
(** [subset a b] — is every variable of [a] in [b]? *)

val equal : t -> t -> bool
(** Equality as sets of variables (order-insensitive). *)

val restrict : t -> var list -> t
(** Keep only the listed variables, preserving schema order. *)

val pp : Format.formatter -> t -> unit
