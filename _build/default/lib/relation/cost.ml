type snapshot = { probes : int; tuples : int; scans : int }

let probes = ref 0
let tuples = ref 0
let scans = ref 0
let counting = ref true

let reset () =
  probes := 0;
  tuples := 0;
  scans := 0

let snapshot () = { probes = !probes; tuples = !tuples; scans = !scans }
let total s = s.probes + s.tuples + s.scans

let diff a b =
  { probes = a.probes - b.probes;
    tuples = a.tuples - b.tuples;
    scans = a.scans - b.scans }

let charge_probe () = if !counting then incr probes
let charge_tuple () = if !counting then incr tuples
let charge_scan () = if !counting then incr scans

let with_counting flag f =
  let saved = !counting in
  counting := flag;
  Fun.protect ~finally:(fun () -> counting := saved) f

let measure f =
  reset ();
  let x = with_counting true f in
  (x, snapshot ())
