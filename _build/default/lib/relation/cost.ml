type snapshot = { probes : int; tuples : int; scans : int }

let zero = { probes = 0; tuples = 0; scans = 0 }

(* Per-domain counter state: parallel workers each accumulate into their
   own domain's counters (no contention, no atomics on the hot path) and
   the domain pool merges worker snapshots back into the parent domain in
   task order, so the aggregate is identical to a sequential run. *)
type state = {
  mutable probes : int;
  mutable tuples : int;
  mutable scans : int;
  mutable counting : bool;
}

let key =
  Domain.DLS.new_key (fun () ->
      { probes = 0; tuples = 0; scans = 0; counting = true })

let st () = Domain.DLS.get key

let reset () =
  let s = st () in
  s.probes <- 0;
  s.tuples <- 0;
  s.scans <- 0

let snapshot () =
  let s = st () in
  { probes = s.probes; tuples = s.tuples; scans = s.scans }

let total (s : snapshot) = s.probes + s.tuples + s.scans

let diff (a : snapshot) (b : snapshot) : snapshot =
  { probes = a.probes - b.probes;
    tuples = a.tuples - b.tuples;
    scans = a.scans - b.scans }

let add (a : snapshot) (b : snapshot) : snapshot =
  { probes = a.probes + b.probes;
    tuples = a.tuples + b.tuples;
    scans = a.scans + b.scans }

let merge (d : snapshot) =
  let s = st () in
  s.probes <- s.probes + d.probes;
  s.tuples <- s.tuples + d.tuples;
  s.scans <- s.scans + d.scans

let charge_probe () =
  let s = st () in
  if s.counting then s.probes <- s.probes + 1

let charge_tuple () =
  let s = st () in
  if s.counting then s.tuples <- s.tuples + 1

let charge_scan () =
  let s = st () in
  if s.counting then s.scans <- s.scans + 1

let counting () = (st ()).counting
let set_counting flag = (st ()).counting <- flag

let with_counting flag f =
  let s = st () in
  let saved = s.counting in
  s.counting <- flag;
  Fun.protect ~finally:(fun () -> s.counting <- saved) f

(* Scoped measurement never resets the counters: it diffs snapshots, so
   nested scopes (and a [measure] nested inside [with_counting false])
   compose — an inner scope cannot clobber the counts an outer scope is
   accumulating, and an exception unwinding through a scope leaves both
   the counters and the counting flag exactly as [Fun.protect] restored
   them. *)
let scoped f =
  let before = snapshot () in
  let x = f () in
  (x, diff (snapshot ()) before)

let measure f =
  let before = snapshot () in
  let x = with_counting true f in
  (x, diff (snapshot ()) before)
