type snapshot = { probes : int; tuples : int; scans : int }

let probes = ref 0
let tuples = ref 0
let scans = ref 0
let counting = ref true

let reset () =
  probes := 0;
  tuples := 0;
  scans := 0

let snapshot () = { probes = !probes; tuples = !tuples; scans = !scans }
let total s = s.probes + s.tuples + s.scans

let diff a b =
  { probes = a.probes - b.probes;
    tuples = a.tuples - b.tuples;
    scans = a.scans - b.scans }

let charge_probe () = if !counting then incr probes
let charge_tuple () = if !counting then incr tuples
let charge_scan () = if !counting then incr scans

let with_counting flag f =
  let saved = !counting in
  counting := flag;
  Fun.protect ~finally:(fun () -> counting := saved) f

(* Scoped measurement never resets the global counters: it diffs
   snapshots, so nested scopes (and a [measure] nested inside
   [with_counting false]) compose — an inner scope cannot clobber the
   counts an outer scope is accumulating, and an exception unwinding
   through a scope leaves both the counters and the counting flag
   exactly as [Fun.protect] restored them. *)
let scoped f =
  let before = snapshot () in
  let x = f () in
  (x, diff (snapshot ()) before)

let measure f =
  let before = snapshot () in
  let x = with_counting true f in
  (x, diff (snapshot ()) before)
