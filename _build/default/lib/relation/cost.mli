(** Machine-independent cost accounting for the online phase.

    The paper measures online answering time [T] up to polylogarithmic
    factors; at laptop scale the reliable observable is the number of
    data-structure operations, not wall-clock time.  Every hash probe,
    tuple materialization and tuple scan performed by {!Stt_relation} and
    by the index structures built on top of it is charged to a counter.
    Benchmarks reset the counter before the online phase and read it
    afterwards.

    Counters are {b per-domain} (via [Domain.DLS]): parallel workers in
    the {!Pool} each charge their own domain's counters without
    contention, and the pool {!merge}s worker snapshots back into the
    spawning domain in task order — so the totals observed by the parent
    are bit-identical to a sequential run. *)

type snapshot = {
  probes : int;  (** hash-table lookups (index probes, semijoin tests) *)
  tuples : int;  (** tuples materialized into intermediate or output views *)
  scans : int;   (** tuples visited by iteration *)
}

val zero : snapshot
(** The all-zero snapshot. *)

val reset : unit -> unit
(** Zero the current domain's counters. *)

val snapshot : unit -> snapshot
(** Read the current domain's counter values. *)

val total : snapshot -> int
(** [probes + tuples + scans] — the scalar "intrinsic time" we report. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference. *)

val add : snapshot -> snapshot -> snapshot
(** Per-field sum. *)

val merge : snapshot -> unit
(** [merge d] adds [d] into the current domain's counters, regardless of
    the counting flag — the charges in [d] were already filtered by the
    worker that accumulated them.  {!Pool.map} calls this in task order
    when it aggregates parallel workers. *)

val charge_probe : unit -> unit
val charge_tuple : unit -> unit
val charge_scan : unit -> unit

val counting : unit -> bool
(** Whether charges are currently recorded in this domain.  Defaults to
    [true]; freshly spawned pool workers inherit the spawner's flag. *)

val set_counting : bool -> unit
(** Set the current domain's counting flag (e.g. during preprocessing,
    whose time the paper does not optimize). *)

val with_counting : bool -> (unit -> 'a) -> 'a
(** [with_counting flag f] runs [f] with the counting flag set to
    [flag], restoring the previous value afterwards (also on
    exceptions). *)

val scoped : (unit -> 'a) -> 'a * snapshot
(** [scoped f] runs [f] under the {e current} counting mode and returns
    the costs charged while it ran, measured as a snapshot difference —
    the counters are never reset, so scopes nest arbitrarily and
    observability code can attach per-span costs without perturbing an
    enclosing measurement. *)

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] is {!scoped} with counting forced on: it returns the
    costs [f] incurred.  Like {!scoped} it is re-entrant — it does not
    reset the counters, so a [measure] nested inside another (or inside
    [with_counting false]) neither loses nor double-frees counts, and an
    exception from [f] restores the counting flag. *)
