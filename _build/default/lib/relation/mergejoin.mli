(** Sort-merge implementations of join and semijoin — an alternative to
    the hash-based operators in {!Relation}, used as an ablation in the
    benchmarks (hash vs. sort backends produce identical results; the
    cost model differs by sort preprocessing vs. probe constants).

    Cost accounting: sorting charges one [scan] per tuple; the merge
    charges one [probe] per key comparison advancing a cursor and one
    [tuple] per output tuple (through {!Relation.add}). *)


val sort : Relation.t -> by:Schema.var list -> Tuple.t array
(** Tuples sorted by the given key columns (then by the full tuple). *)

val join : Relation.t -> Relation.t -> Relation.t
(** Natural join via sort-merge on the common variables.  Equal to
    {!Relation.natural_join} as a set. *)

val semijoin : Relation.t -> Relation.t -> Relation.t
(** [semijoin a b] via sort-merge; equal to {!Relation.semijoin}. *)
