lib/relation/cost.mli:
