lib/relation/index.mli: Relation Schema Tuple
