lib/relation/relation.ml: Cost Format Hashtbl List Schema Tuple
