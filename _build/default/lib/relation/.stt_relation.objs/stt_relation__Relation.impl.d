lib/relation/relation.ml: Array Cost Format List Schema Tuple
