lib/relation/tuple.ml: Array Format Hashtbl Set Stdlib
