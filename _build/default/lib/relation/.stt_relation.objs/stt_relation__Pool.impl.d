lib/relation/pool.ml: Array Atomic Cost Domain List String Sys
