lib/relation/index.ml: Cost List Relation Schema Tuple
