lib/relation/index.ml: Array Cost List Relation Schema Tuple
