lib/relation/mergejoin.mli: Relation Schema Tuple
