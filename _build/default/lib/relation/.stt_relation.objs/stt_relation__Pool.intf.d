lib/relation/pool.mli:
