lib/relation/mergejoin.ml: Array Cost List Relation Schema Tuple
