lib/relation/tuple.mli: Format Hashtbl Set
