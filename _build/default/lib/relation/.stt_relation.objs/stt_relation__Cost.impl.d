lib/relation/cost.ml: Domain Fun
