lib/relation/cost.ml: Fun
