lib/relation/relation.mli: Format Hashtbl Schema Tuple
