(** Persistent hash indexes over relations.

    An index maps a key — the values of a chosen subset of the schema's
    variables — to the matching tuples.  Tuples are stored row-major in
    one contiguous int array, grouped by key; the hash table maps each
    key to a contiguous (offset, length) range, so bucket iteration is a
    flat-array walk with zero allocation and {!count} is O(1).  Building
    is free of online cost (it happens during preprocessing); probing
    charges one {!Cost} probe per lookup. *)

type t

val build : Relation.t -> Schema.var list -> t
(** [build rel key_vars] indexes [rel] on [key_vars]. *)

val key_vars : t -> Schema.var list
val source_schema : t -> Schema.t

val probe : t -> Tuple.t -> Tuple.t list
(** Matching tuples for a key tuple (values in [key_vars] order). *)

val probe_mem : t -> Tuple.t -> bool
(** Does any tuple match the key? *)

val count : t -> Tuple.t -> int
(** Number of matching tuples (degree of the key value).  O(1): the
    bucket length is stored, not recomputed. *)

val space : t -> int
(** Number of indexed tuples — the intrinsic space charged to this index. *)

val semijoin : Relation.t -> t -> Relation.t
(** [semijoin rel idx] keeps the tuples of [rel] whose key matches the
    index — cost [O(|rel|)], independent of the indexed relation's size.
    The index key variables must all appear in [rel]'s schema. *)

val join : Relation.t -> t -> Relation.t
(** [join rel idx] probes the index once per tuple of [rel] and extends
    with the matching tuples — cost [O(|rel| + output)]. *)
