type t = { schema : Schema.t; data : unit Tuple.Tbl.t }

let create schema = { schema; data = Tuple.Tbl.create 64 }
let schema t = t.schema
let cardinal t = Tuple.Tbl.length t.data
let is_empty t = cardinal t = 0
let mem t tup = Tuple.Tbl.mem t.data tup

let add t tup =
  if Tuple.arity tup <> Schema.arity t.schema then
    invalid_arg "Relation.add: arity mismatch";
  if not (Tuple.Tbl.mem t.data tup) then begin
    Cost.charge_tuple ();
    Tuple.Tbl.add t.data tup ()
  end

let of_list schema tuples =
  let t = create schema in
  List.iter (add t) tuples;
  t

let iter f t = Tuple.Tbl.iter (fun tup () -> f tup) t.data
let fold f t init = Tuple.Tbl.fold (fun tup () acc -> f tup acc) t.data init
let to_list t = fold List.cons t []

let copy t =
  let c = create t.schema in
  iter (add c) t;
  c

let singleton schema tup =
  let t = create schema in
  add t tup;
  t

let reorder_positions ~from ~into =
  (* positions in [from] of the variables of [into], so that projecting a
     [from]-tuple yields an [into]-tuple *)
  Schema.positions from (Schema.vars into)

let equal a b =
  Schema.equal a.schema b.schema
  && cardinal a = cardinal b
  &&
  let pos = reorder_positions ~from:(schema a) ~into:(schema b) in
  fold (fun tup ok -> ok && mem b (Tuple.project pos tup)) a true

let project t vs =
  let out_schema = Schema.of_list vs in
  let pos = Schema.positions t.schema vs in
  let out = create out_schema in
  iter
    (fun tup ->
      Cost.charge_scan ();
      add out (Tuple.project pos tup))
    t;
  out

let select_eq t v value =
  let i = Schema.position t.schema v in
  let out = create t.schema in
  iter
    (fun tup ->
      Cost.charge_scan ();
      if Tuple.get tup i = value then add out tup)
    t;
  out

(* A one-shot hash index: common-variable key -> matching tuples. *)
let build_key_index rel key_positions =
  let idx = Tuple.Tbl.create (max 16 (cardinal rel)) in
  iter
    (fun tup ->
      Cost.charge_scan ();
      let key = Tuple.project key_positions tup in
      let bucket = try Tuple.Tbl.find idx key with Not_found -> [] in
      Tuple.Tbl.replace idx key (tup :: bucket))
    rel;
  idx

let natural_join a b =
  (* join the smaller side as build side for cache friendliness *)
  let common = Schema.inter a.schema b.schema in
  let out_schema = Schema.union a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let extra_b =
    (* positions in b of the variables that only b contributes *)
    Schema.positions b.schema
      (List.filter (fun v -> not (Schema.mem v a.schema)) (Schema.vars b.schema))
  in
  let idx = build_key_index b key_b in
  let out = create out_schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      match Tuple.Tbl.find_opt idx (Tuple.project key_a ta) with
      | None -> ()
      | Some bucket ->
          List.iter
            (fun tb -> add out (Tuple.concat ta (Tuple.project extra_b tb)))
            bucket)
    a;
  out

let semijoin a b =
  let common = Schema.inter a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let keys = Tuple.Tbl.create (max 16 (cardinal b)) in
  iter
    (fun tb ->
      Cost.charge_scan ();
      Tuple.Tbl.replace keys (Tuple.project key_b tb) ())
    b;
  let out = create a.schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      if Tuple.Tbl.mem keys (Tuple.project key_a ta) then add out ta)
    a;
  out

let antijoin a b =
  let common = Schema.inter a.schema b.schema in
  let key_a = Schema.positions a.schema common in
  let key_b = Schema.positions b.schema common in
  let keys = Tuple.Tbl.create (max 16 (cardinal b)) in
  iter
    (fun tb ->
      Cost.charge_scan ();
      Tuple.Tbl.replace keys (Tuple.project key_b tb) ())
    b;
  let out = create a.schema in
  iter
    (fun ta ->
      Cost.charge_scan ();
      Cost.charge_probe ();
      if not (Tuple.Tbl.mem keys (Tuple.project key_a ta)) then add out ta)
    a;
  out

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Relation.union: schemas differ";
  let out = copy a in
  let pos = reorder_positions ~from:b.schema ~into:a.schema in
  iter
    (fun tb ->
      Cost.charge_scan ();
      add out (Tuple.project pos tb))
    b;
  out

let product a b =
  if Schema.inter a.schema b.schema <> [] then
    invalid_arg "Relation.product: schemas overlap";
  let out = create (Schema.union a.schema b.schema) in
  iter
    (fun ta ->
      iter
        (fun tb ->
          Cost.charge_scan ();
          add out (Tuple.concat ta tb))
        b)
    a;
  out

let degrees t vs =
  let pos = Schema.positions t.schema vs in
  let counts = Hashtbl.create (max 16 (cardinal t)) in
  iter
    (fun tup ->
      let key = Tuple.project pos tup in
      let c = try Hashtbl.find counts key with Not_found -> 0 in
      Hashtbl.replace counts key (c + 1))
    t;
  counts

let max_degree t vs =
  Hashtbl.fold (fun _ c acc -> max c acc) (degrees t vs) 0

let split_heavy_light t vs ~threshold =
  let pos = Schema.positions t.schema vs in
  let counts = degrees t vs in
  let heavy = create t.schema and light = create t.schema in
  iter
    (fun tup ->
      let key = Tuple.project pos tup in
      let c = Hashtbl.find counts key in
      if c > threshold then add heavy tup else add light tup)
    t;
  (heavy, light)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a |%d|" Schema.pp t.schema (cardinal t);
  iter (fun tup -> Format.fprintf ppf "@ %a" Tuple.pp tup) t;
  Format.fprintf ppf "@]"
