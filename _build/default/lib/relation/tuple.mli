(** Tuples are immutable arrays of integer values.

    All attribute domains are encoded as integers; workload generators are
    responsible for interning richer domains.  Positions are given meaning
    by the {!Schema} the tuple is stored under. *)

type t = int array

val make : int list -> t
val arity : t -> int
val get : t -> int -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val project : int array -> t -> t
(** [project positions tup] keeps the values at [positions], in order. *)

val project_into : int array -> t -> int array -> unit
(** [project_into positions tup dst] writes the projection into [dst]
    (length ≥ [Array.length positions]) instead of allocating — probe
    loops reuse one scratch buffer as a transient hash-table key.  The
    buffer must not be stored in a table: hash tables keep the key they
    are given. *)

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
