let compare_key positions (a : Tuple.t) (b : Tuple.t) =
  let rec loop i =
    if i >= Array.length positions then 0
    else
      let c = compare a.(positions.(i)) b.(positions.(i)) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let sort rel ~by =
  let positions = Schema.positions (Relation.schema rel) by in
  let arr = Array.make (Relation.cardinal rel) [||] in
  let i = ref 0 in
  Relation.iter
    (fun tup ->
      Cost.charge_scan ();
      arr.(!i) <- tup;
      incr i)
    rel;
  Array.sort
    (fun a b ->
      let c = compare_key positions a b in
      if c <> 0 then c else Tuple.compare a b)
    arr;
  arr

(* advance [idx] to the end of the run of equal keys starting there *)
let run_end positions arr idx =
  let n = Array.length arr in
  let rec loop j =
    if j < n && compare_key positions arr.(idx) arr.(j) = 0 then begin
      Cost.charge_probe ();
      loop (j + 1)
    end
    else j
  in
  loop (idx + 1)

let merge ~on_match a_schema b_schema a b common =
  let pa = Schema.positions a_schema common
  and pb = Schema.positions b_schema common in
  let sa = Array.length a and sb = Array.length b in
  let compare_ab (x : Tuple.t) (y : Tuple.t) =
    let rec loop i =
      if i >= Array.length pa then 0
      else
        let c = compare x.(pa.(i)) y.(pb.(i)) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  in
  let i = ref 0 and j = ref 0 in
  while !i < sa && !j < sb do
    Cost.charge_probe ();
    let c = compare_ab a.(!i) b.(!j) in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      let ei = run_end pa a !i and ej = run_end pb b !j in
      for x = !i to ei - 1 do
        for y = !j to ej - 1 do
          on_match a.(x) b.(y)
        done
      done;
      i := ei;
      j := ej
    end
  done

let join ra rb =
  let a_schema = Relation.schema ra and b_schema = Relation.schema rb in
  let common = Schema.inter a_schema b_schema in
  let extra_b =
    Schema.positions b_schema
      (List.filter (fun v -> not (Schema.mem v a_schema)) (Schema.vars b_schema))
  in
  let out_schema = Schema.union a_schema b_schema in
  let out = Relation.create out_schema in
  let a = sort ra ~by:common and b = sort rb ~by:common in
  merge a_schema b_schema a b common ~on_match:(fun ta tb ->
      Relation.add out (Tuple.concat ta (Tuple.project extra_b tb)));
  out

let semijoin ra rb =
  let a_schema = Relation.schema ra and b_schema = Relation.schema rb in
  let common = Schema.inter a_schema b_schema in
  let out = Relation.create a_schema in
  let a = sort ra ~by:common and b = sort rb ~by:common in
  merge a_schema b_schema a b common ~on_match:(fun ta _ ->
      Relation.add out ta);
  out
