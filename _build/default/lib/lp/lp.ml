type var = int

type row = {
  coeffs : (Rat.t * var) list;
  rhs : Rat.t;
  mutable enabled : bool;
}
(* rows are stored in [<=] orientation *)

type cstr_kind =
  | Le_row of int            (* index of the stored row *)
  | Ge_row of int            (* stored negated; dual reported negated *)
  | Eq_rows of int * int     (* (<= row, >= row as negated <=) *)

type cstr = int

type model = {
  mutable names : string array;
  name_index : (string, var) Hashtbl.t;
  mutable rows : row list;       (* reversed *)
  mutable nrows : int;
  mutable cstrs : cstr_kind list; (* reversed *)
  mutable ncstrs : int;
}

type linexpr = (Rat.t * var) list

type solution = {
  value : Rat.t;
  primal : var -> Rat.t;
  dual : cstr -> Rat.t;
}

type outcome = Solution of solution | Infeasible | Unbounded

type fsolution = {
  fvalue : float;
  fprimal : var -> float;
  fdual : cstr -> float;
}

let create () =
  { names = [||];
    name_index = Hashtbl.create 64;
    rows = [];
    nrows = 0;
    cstrs = [];
    ncstrs = 0 }

let var m name =
  match Hashtbl.find_opt m.name_index name with
  | Some v -> v
  | None ->
      let v = Array.length m.names in
      m.names <- Array.append m.names [| name |];
      Hashtbl.add m.name_index name v;
      v

let var_name m v = m.names.(v)
let num_vars m = Array.length m.names
let num_constraints m = m.ncstrs

let num_enabled_rows m =
  List.fold_left (fun acc r -> if r.enabled then acc + 1 else acc) 0 m.rows

let push_row m coeffs rhs =
  let i = m.nrows in
  m.rows <- { coeffs; rhs; enabled = true } :: m.rows;
  m.nrows <- m.nrows + 1;
  i

let push_cstr m kind =
  let c = m.ncstrs in
  m.cstrs <- kind :: m.cstrs;
  m.ncstrs <- m.ncstrs + 1;
  c

let neg_expr expr = List.map (fun (q, v) -> (Rat.neg q, v)) expr

let add_le m ?name:_ expr rhs = push_cstr m (Le_row (push_row m expr rhs))

let add_ge m ?name:_ expr rhs =
  push_cstr m (Ge_row (push_row m (neg_expr expr) (Rat.neg rhs)))

let add_eq m ?name:_ expr rhs =
  let r1 = push_row m expr rhs in
  let r2 = push_row m (neg_expr expr) (Rat.neg rhs) in
  push_cstr m (Eq_rows (r1, r2))

let rows_array m = Array.of_list (List.rev m.rows)
let cstrs_array m = Array.of_list (List.rev m.cstrs)

let row_indices_of = function
  | Le_row r | Ge_row r -> [ r ]
  | Eq_rows (r1, r2) -> [ r1; r2 ]

let set_enabled m c flag =
  let rows = rows_array m in
  List.iter (fun r -> rows.(r).enabled <- flag) (row_indices_of (cstrs_array m).(c))

let is_enabled m c =
  let rows = rows_array m in
  List.for_all (fun r -> rows.(r).enabled) (row_indices_of (cstrs_array m).(c))

(* build dense matrices from the enabled rows; returns the matrices and
   the map from original row index to matrix row (-1 when disabled) *)
let build_matrices m =
  let rows = rows_array m in
  let n = Array.length m.names in
  let enabled_idx = Array.make (Array.length rows) (-1) in
  let count = ref 0 in
  Array.iteri
    (fun i r ->
      if r.enabled then begin
        enabled_idx.(i) <- !count;
        incr count
      end)
    rows;
  let a = Array.make_matrix !count n Rat.zero in
  let b = Array.make !count Rat.zero in
  Array.iteri
    (fun i r ->
      let k = enabled_idx.(i) in
      if k >= 0 then begin
        b.(k) <- r.rhs;
        List.iter (fun (q, v) -> a.(k).(v) <- Rat.add a.(k).(v) q) r.coeffs
      end)
    rows;
  (a, b, enabled_idx)

let objective_vector m objective ~maximize =
  let n = Array.length m.names in
  let c = Array.make n Rat.zero in
  List.iter
    (fun (q, v) ->
      let q = if maximize then q else Rat.neg q in
      c.(v) <- Rat.add c.(v) q)
    objective;
  c

let solve_dir ~maximize m objective =
  let a, b, enabled_idx = build_matrices m in
  let c = objective_vector m objective ~maximize in
  match Simplex.solve ~c ~a ~b with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal { value; primal; dual } ->
      let cstrs = cstrs_array m in
      (* Orientation: minimization is solved as max of the negation, so
         its duals come back negated too. *)
      let fix q = if maximize then q else Rat.neg q in
      let row_dual r =
        let k = enabled_idx.(r) in
        if k < 0 then Rat.zero else dual.(k)
      in
      let dual_of c =
        match cstrs.(c) with
        | Le_row r -> fix (row_dual r)
        | Ge_row r -> fix (Rat.neg (row_dual r))
        | Eq_rows (r1, r2) -> fix (Rat.sub (row_dual r1) (row_dual r2))
      in
      Solution
        { value = (if maximize then value else Rat.neg value);
          primal = (fun v -> primal.(v));
          dual = dual_of }

let maximize m objective = solve_dir ~maximize:true m objective
let minimize m objective = solve_dir ~maximize:false m objective

let maximize_float m objective =
  let a, b, _ = build_matrices m in
  let fa = Array.map (Array.map Rat.to_float) a in
  (* tiny deterministic perturbation breaks the massive degeneracy of
     polymatroid systems (almost all right-hand sides are 0), keeping
     the pivot count low; harmless for a presolver *)
  let fb =
    Array.mapi
      (fun i bi -> Rat.to_float bi +. (1e-7 *. float_of_int (i + 1)))
      b
  in
  let fc = Array.map Rat.to_float (objective_vector m objective ~maximize:true) in
  match Fsimplex.solve ~c:fc ~a:fa ~b:fb with
  | Fsimplex.Optimal { value; primal; dual } ->
      let _, _, enabled_idx = (fa, fb, ()) in
      ignore enabled_idx;
      let _, _, idx = build_matrices m in
      let cstrs = cstrs_array m in
      let row_dual r =
        let k = idx.(r) in
        if k < 0 then 0.0 else dual.(k)
      in
      let fdual c =
        match cstrs.(c) with
        | Le_row r -> row_dual r
        | Ge_row r -> -.row_dual r
        | Eq_rows (r1, r2) -> row_dual r1 -. row_dual r2
      in
      Some { fvalue = value; fprimal = (fun v -> primal.(v)); fdual }
  | Fsimplex.Infeasible | Fsimplex.Unbounded -> None
