lib/lp/fsimplex.ml: Array
