lib/lp/rat.ml: Float Format Printf Stdlib
