lib/lp/fsimplex.mli:
