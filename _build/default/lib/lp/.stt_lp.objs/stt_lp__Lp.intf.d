lib/lp/lp.mli: Rat
