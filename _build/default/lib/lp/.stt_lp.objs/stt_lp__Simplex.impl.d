lib/lp/simplex.ml: Array Printf Rat Sys
