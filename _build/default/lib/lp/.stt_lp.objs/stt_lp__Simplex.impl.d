lib/lp/simplex.ml: Array Domain Printf Rat Sys
