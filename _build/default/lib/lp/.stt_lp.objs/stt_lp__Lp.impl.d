lib/lp/lp.ml: Array Fsimplex Hashtbl List Rat Simplex
