(** Floating-point twin of {!Simplex}, used as a presolver.

    Same two-phase algorithm and pivoting rules over IEEE doubles with a
    small tolerance.  It is never trusted for final answers: callers use
    it to discover which constraints are active at the optimum (e.g. the
    lazy polymatroid cuts worth generating) and then re-solve exactly
    with {!Simplex} on the much smaller active set. *)

type result =
  | Optimal of { value : float; primal : float array; dual : float array }
  | Infeasible
  | Unbounded

val solve : c:float array -> a:float array array -> b:float array -> result
(** [solve ~c ~a ~b]: maximize [c·x] s.t. [A·x <= b], [x >= 0]. *)
