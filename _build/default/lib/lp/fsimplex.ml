type result =
  | Optimal of { value : float; primal : float array; dual : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

type tableau = {
  t : float array array;
  basis : int array;
  m : int;
  ncols : int;
}

exception Unbounded_exc

let pivot tb r j =
  let t = tb.t in
  let piv = t.(r).(j) in
  let width = tb.ncols + 1 in
  if abs_float (piv -. 1.0) > 0.0 then
    for k = 0 to width - 1 do
      t.(r).(k) <- t.(r).(k) /. piv
    done;
  for i = 0 to tb.m do
    if i <> r && abs_float t.(i).(j) > 0.0 then begin
      let f = t.(i).(j) in
      for k = 0 to width - 1 do
        t.(i).(k) <- t.(i).(k) -. (f *. t.(r).(k))
      done;
      t.(i).(j) <- 0.0
    end
  done;
  tb.basis.(r) <- j

let iterate tb ~max_col =
  let t = tb.t in
  let rhs_col = tb.ncols in
  let stall = ref 0 in
  let stall_limit = 4 * (tb.m + 1) in
  let iterations = ref 0 in
  let iteration_cap = 200 * (tb.m + 10) in
  let continue = ref true in
  while !continue do
    incr iterations;
    if !iterations > iteration_cap then raise Unbounded_exc;
    let obj = t.(tb.m) in
    let entering =
      if !stall < stall_limit then begin
        let best = ref (-1) in
        for j = 0 to max_col - 1 do
          if obj.(j) < -.eps && (!best < 0 || obj.(j) < obj.(!best)) then
            best := j
        done;
        if !best < 0 then None else Some !best
      end
      else begin
        let rec find j =
          if j >= max_col then None
          else if obj.(j) < -.eps then Some j
          else find (j + 1)
        in
        find 0
      end
    in
    match entering with
    | None -> continue := false
    | Some j ->
        let leaving = ref (-1) in
        let best = ref 0.0 in
        for i = 0 to tb.m - 1 do
          if t.(i).(j) > eps then begin
            let ratio = t.(i).(rhs_col) /. t.(i).(j) in
            if
              !leaving < 0 || ratio < !best -. eps
              || (abs_float (ratio -. !best) <= eps
                 && tb.basis.(i) < tb.basis.(!leaving))
            then begin
              leaving := i;
              best := ratio
            end
          end
        done;
        if !leaving < 0 then raise Unbounded_exc;
        let before = t.(tb.m).(rhs_col) in
        pivot tb !leaving j;
        if abs_float (before -. t.(tb.m).(rhs_col)) <= eps then incr stall
        else stall := 0
  done

let solve ~c ~a ~b =
  let m = Array.length b in
  let n = Array.length c in
  let needs_artificial = Array.map (fun bi -> bi < -.eps) b in
  let n_art =
    Array.fold_left (fun acc need -> if need then acc + 1 else acc) 0
      needs_artificial
  in
  let ncols = n + m + n_art in
  let t = Array.make_matrix (m + 1) (ncols + 1) 0.0 in
  let basis = Array.make m 0 in
  let art_of_row = Array.make m (-1) in
  let next_art = ref (n + m) in
  for i = 0 to m - 1 do
    let flip = needs_artificial.(i) in
    let sign = if flip then -1.0 else 1.0 in
    for j = 0 to n - 1 do
      t.(i).(j) <- sign *. a.(i).(j)
    done;
    t.(i).(n + i) <- sign;
    t.(i).(ncols) <- sign *. b.(i);
    if flip then begin
      t.(i).(!next_art) <- 1.0;
      basis.(i) <- !next_art;
      art_of_row.(i) <- !next_art;
      incr next_art
    end
    else basis.(i) <- n + i
  done;
  let tb = { t; basis; m; ncols } in
  try
    if n_art > 0 then begin
      for j = n + m to ncols - 1 do
        t.(m).(j) <- 1.0
      done;
      for i = 0 to m - 1 do
        if art_of_row.(i) >= 0 then
          for k = 0 to ncols do
            t.(m).(k) <- t.(m).(k) -. t.(i).(k)
          done
      done;
      iterate tb ~max_col:ncols;
      if t.(m).(ncols) < -.1e-6 then raise Exit;
      for i = 0 to m - 1 do
        if basis.(i) >= n + m then begin
          let rec find j =
            if j >= n + m then None
            else if abs_float t.(i).(j) > eps then Some j
            else find (j + 1)
          in
          match find 0 with Some j -> pivot tb i j | None -> ()
        end
      done
    end;
    for k = 0 to ncols do
      t.(m).(k) <- 0.0
    done;
    for j = 0 to n - 1 do
      t.(m).(j) <- -.c.(j)
    done;
    for i = 0 to m - 1 do
      let bj = tb.basis.(i) in
      if abs_float t.(m).(bj) > 0.0 then begin
        let f = t.(m).(bj) in
        for k = 0 to ncols do
          t.(m).(k) <- t.(m).(k) -. (f *. t.(i).(k))
        done
      end
    done;
    iterate tb ~max_col:(n + m);
    let primal = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if basis.(i) < n then primal.(basis.(i)) <- t.(i).(ncols)
    done;
    let dual = Array.init m (fun i -> t.(m).(n + i)) in
    Optimal { value = t.(m).(ncols); primal; dual }
  with
  | Exit -> Infeasible
  | Unbounded_exc -> Unbounded
