(** A small modeling layer over {!Simplex} with named variables.

    All variables are implicitly nonnegative.  Constraints may be [<=],
    [>=] or [=]; internally everything is normalized to [<=] rows and the
    reported dual of each constraint is oriented so that for a
    maximization problem the dual of a binding [<=] constraint is
    nonnegative (this is the orientation in which Shannon-flow
    coefficients are read off the dual in the paper). *)

type model
type var
type cstr

type solution = {
  value : Rat.t;
  primal : var -> Rat.t;
  dual : cstr -> Rat.t;
}

type outcome = Solution of solution | Infeasible | Unbounded

val create : unit -> model

val var : model -> string -> var
(** Declare (or retrieve) the nonnegative variable with this name. *)

val var_name : model -> var -> string

type linexpr = (Rat.t * var) list

val add_le : model -> ?name:string -> linexpr -> Rat.t -> cstr
val add_ge : model -> ?name:string -> linexpr -> Rat.t -> cstr
val add_eq : model -> ?name:string -> linexpr -> Rat.t -> cstr

val maximize : model -> linexpr -> outcome
val minimize : model -> linexpr -> outcome

val num_vars : model -> int
val num_constraints : model -> int

val set_enabled : model -> cstr -> bool -> unit
(** Enable or disable a constraint: disabled constraints are skipped by
    the solvers and report a zero dual.  Used by cut-generation loops to
    solve over a working subset of generated rows. *)

val is_enabled : model -> cstr -> bool

val num_enabled_rows : model -> int

type fsolution = {
  fvalue : float;
  fprimal : var -> float;
  fdual : cstr -> float;
}

val maximize_float : model -> linexpr -> fsolution option
(** Fast floating-point solve (see {!Fsimplex}) over the enabled rows —
    a presolver for discovering active constraints; never a source of
    exact answers.  [None] on infeasible or unbounded. *)
