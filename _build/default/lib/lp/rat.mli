(** Exact rational arithmetic over overflow-checked native integers.

    Every value is kept normalized (gcd 1, positive denominator).  All
    operations detect native-int overflow and raise {!Overflow} instead of
    silently wrapping; the Shannon-flow LPs solved in this project have
    tiny coefficients, so overflow indicates a bug rather than a scale
    limit. *)

type t

exception Overflow

val zero : t
val one : t
val minus_one : t
val of_int : int -> t

val make : int -> int -> t
(** [make num den].  Raises [Division_by_zero] if [den = 0]. *)

val num : t -> int
val den : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val to_float : t -> float

val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default 1_000_000), via continued fractions. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
