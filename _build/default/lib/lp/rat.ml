type t = { num : int; den : int }

exception Overflow

(* Overflow-checked primitives on native ints. *)
let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow else p

let checked_add a b =
  let s = a + b in
  (* overflow iff operands share sign and result flips it *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let checked_neg a = if a = min_int then raise Overflow else -a

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalize num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let num = checked_mul s num and den = checked_mul s den in
    let g = gcd (abs num) den in
    { num = num / g; den = den / g }

let make num den = normalize num den
let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den

let add a b =
  (* reduce via gcd of denominators before multiplying, to delay overflow *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = checked_add (checked_mul a.num db) (checked_mul b.num da) in
  normalize n (checked_mul a.den db)

let neg a = { a with num = checked_neg a.num }
let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let n = checked_mul (a.num / g1) (b.num / g2) in
  let d = checked_mul (a.den / g2) (b.den / g1) in
  normalize n d

let inv a = normalize a.den a.num
let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let sign a = Stdlib.compare a.num 0

let compare a b =
  (* cross-multiply with checks; denominators are positive *)
  Stdlib.compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let is_zero a = a.num = 0
let is_integer a = a.den = 1
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let to_float a = float_of_int a.num /. float_of_int a.den

let of_float_approx ?(max_den = 1_000_000) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    let sgn = if x < 0.0 then -1 else 1 in
    let x = Float.abs x in
    let a0 = int_of_float (floor x) in
    (* continued-fraction convergents: (pm1/qm1) precedes (p/q) *)
    let rec loop x pm1 qm1 p q =
      let frac = x -. floor x in
      if frac < 1e-12 then (p, q)
      else
        let x' = 1.0 /. frac in
        let a = int_of_float (floor x') in
        let p' = checked_add (checked_mul a p) pm1 in
        let q' = checked_add (checked_mul a q) qm1 in
        if q' > max_den then (p, q) else loop x' p q p' q'
    in
    let p, q = loop x 1 0 a0 1 in
    make (sgn * p) q
  end

let to_string a =
  if a.den = 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp ppf a = Format.pp_print_string ppf (to_string a)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
