lib/yannakakis/online_yannakakis.mli: Pmtd Relation Stt_decomp Stt_relation
