lib/yannakakis/online_yannakakis.ml: Array Cost Cq Hashtbl Index List Pmtd Relation Rtree Stt_decomp Stt_hypergraph Stt_relation Td Varset
