lib/obs/obs.mli: Json
