lib/obs/json.mli:
