lib/obs/obs.ml: Array Domain Float Fun Hashtbl Json List Stdlib Unix
