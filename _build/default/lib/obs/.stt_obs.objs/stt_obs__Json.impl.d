lib/obs/json.ml: Buffer Char Float Fun List Printf String
