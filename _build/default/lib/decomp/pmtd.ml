open Stt_hypergraph

type kind = S | T
type view = { node : int; kind : kind; vars : Varset.t }
type t = { cqap : Cq.cqap; td : Td.t; materialized : bool array }

let access_hypergraph (cqap : Cq.cqap) =
  (* hypergraph of the access CQ: body atoms plus the Q_A atom *)
  let cq = cqap.Cq.cq in
  let edges = List.map Cq.atom_vars cq.Cq.atoms in
  let edges =
    if Varset.is_empty cqap.Cq.access then edges
    else cqap.Cq.access :: edges
  in
  Hypergraph.create ~n:cq.Cq.n edges

let create cqap td ~materialized =
  let open Cq in
  if Array.length materialized <> Td.size td then Error "size mismatch"
  else if not (Td.is_valid td (access_hypergraph cqap)) then
    Error "not a valid tree decomposition of the access CQ"
  else if not (Varset.subset cqap.access (Td.bag td (Td.root td))) then
    Error "access pattern not contained in the root bag"
  else if not (Td.is_free_connex td ~head:cqap.cq.head) then
    Error "not free-connex w.r.t. the root"
  else begin
    let ok = ref true in
    List.iter
      (fun i ->
        if materialized.(i) then
          List.iter
            (fun c -> if not materialized.(c) then ok := false)
            (Rtree.children td.Td.tree i))
      (Rtree.nodes td.Td.tree);
    if not !ok then Error "materialization set not descendant-closed"
    else Ok { cqap; td; materialized = Array.copy materialized }
  end

let create_exn cqap td ~materialized =
  match create cqap td ~materialized with
  | Ok t -> t
  | Error msg -> invalid_arg ("Pmtd.create: " ^ msg)

let view t node =
  let head = t.cqap.Cq.cq.Cq.head in
  let chi = Td.bag t.td node in
  if not t.materialized.(node) then { node; kind = T; vars = chi }
  else
    let vars =
      match Rtree.parent t.td.Td.tree node with
      | None -> Varset.inter chi head
      | Some p ->
          let chi_p = Td.bag t.td p in
          if not t.materialized.(p) then
            Varset.inter chi (Varset.union head chi_p)
          else if
            not (Varset.subset (Varset.inter chi head) (Varset.inter chi_p head))
          then Varset.inter chi head
          else Varset.empty
    in
    { node; kind = S; vars }

let views t = List.map (view t) (Rtree.nodes t.td.Td.tree)
let s_views t = List.filter (fun v -> v.kind = S) (views t)
let t_views t = List.filter (fun v -> v.kind = T) (views t)

let no_mutual_subsets views =
  List.for_all
    (fun v1 ->
      List.for_all
        (fun v2 ->
          v1.node = v2.node || not (Varset.subset v1.vars v2.vars))
        views)
    views

let is_non_redundant t =
  let svs = s_views t and tvs = t_views t in
  List.for_all (fun v -> not (Varset.is_empty v.vars)) svs
  && no_mutual_subsets svs && no_mutual_subsets tvs

let dominates p q =
  (* q dominated by p (Definition 3.5) *)
  let covered smaller larger =
    List.for_all
      (fun v1 -> List.exists (fun v2 -> Varset.subset v1.vars v2.vars) larger)
      smaller
  in
  covered (s_views q) (s_views p) && covered (t_views q) (t_views p)

let signature t =
  let part kind vs =
    vs
    |> List.filter (fun v -> v.kind = kind)
    |> List.map (fun v -> Varset.to_string v.vars)
    |> List.sort compare |> String.concat ","
  in
  let vs = views t in
  "S:" ^ part S vs ^ "|T:" ^ part T vs

let pp ppf t =
  let names = t.cqap.Cq.cq.Cq.var_names in
  let pp_view ppf v =
    Format.fprintf ppf "%s%a"
      (match v.kind with S -> "S" | T -> "T")
      (Varset.pp_named names) v.vars
  in
  Format.fprintf ppf "@[<h>PMTD(root=%d: %a)@]"
    (Td.root t.td)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       pp_view)
    (views t)
