type t = { parent : int array; root : int; children : int list array }

let create ~parent =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Rtree.create: empty";
  let roots = ref [] in
  Array.iteri (fun i p -> if p = -1 then roots := i :: !roots) parent;
  let root =
    match !roots with [ r ] -> r | _ -> invalid_arg "Rtree.create: need exactly one root"
  in
  let children = Array.make n [] in
  Array.iteri
    (fun i p ->
      if p <> -1 then begin
        if p < 0 || p >= n then invalid_arg "Rtree.create: bad parent";
        children.(p) <- i :: children.(p)
      end)
    parent;
  (* check acyclicity / connectivity by walking up from every node *)
  Array.iteri
    (fun i _ ->
      let rec walk j steps =
        if steps > n then invalid_arg "Rtree.create: cycle";
        if parent.(j) <> -1 then walk parent.(j) (steps + 1)
      in
      walk i 0)
    parent;
  { parent = Array.copy parent; root; children }

let size t = Array.length t.parent
let root t = t.root
let parent t i = if t.parent.(i) = -1 then None else Some t.parent.(i)
let children t i = t.children.(i)

let nodes t =
  let rec visit acc i = List.fold_left visit (i :: acc) t.children.(i) in
  List.rev (visit [] t.root)

let bottom_up t = List.rev (nodes t)

let is_ancestor t a b =
  let rec walk j = match t.parent.(j) with
    | -1 -> false
    | p -> p = a || walk p
  in
  walk b

let subtree t i =
  let rec visit acc j = List.fold_left visit (j :: acc) t.children.(j) in
  List.rev (visit [] i)

let edges t =
  List.filter_map
    (fun i -> match parent t i with None -> None | Some p -> Some (i, p))
    (nodes t)

let reroot t r =
  let n = size t in
  if r < 0 || r >= n then invalid_arg "Rtree.reroot";
  let parent' = Array.make n (-1) in
  (* BFS from r over the undirected tree edges *)
  let adj = Array.make n [] in
  Array.iteri
    (fun i p ->
      if p <> -1 then begin
        adj.(i) <- p :: adj.(i);
        adj.(p) <- i :: adj.(p)
      end)
    t.parent;
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add r queue;
  visited.(r) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parent'.(v) <- u;
          Queue.add v queue
        end)
      adj.(u)
  done;
  create ~parent:parent'

let pp ppf t =
  Format.fprintf ppf "@[<h>tree(root=%d;" t.root;
  List.iter (fun (c, p) -> Format.fprintf ppf " %d->%d" c p) (edges t);
  Format.fprintf ppf ")@]"
