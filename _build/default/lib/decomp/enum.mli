(** Exhaustive enumeration of tree decompositions and PMTDs for small
    queries.

    Tree decompositions are generated from elimination orderings of the
    access CQ's hypergraph (every decomposition is dominated by one of
    this form), closed under the Section 6.3 subtree-merge operation and
    under re-rooting, then deduplicated.  PMTDs are generated over those
    decompositions with every descendant-closed materialization set, kept
    only if non-redundant and finally reduced to the minimal elements of
    the domination order — this reproduces, e.g., exactly the five PMTDs
    of Figure 2 for the 3-reachability CQAP. *)

open Stt_hypergraph

val tree_decompositions : Cq.cqap -> Td.t list
(** All rooted decompositions reachable by the construction above whose
    root bag contains the access pattern and which are free-connex w.r.t.
    their root. *)

val pmtds : ?max_pmtds:int -> Cq.cqap -> Pmtd.t list
(** Non-redundant, mutually non-dominating PMTDs, deduplicated by view
    signature.  Raises [Failure] if more than [max_pmtds] (default 64)
    survive — a guard against combinatorial blow-up on large queries. *)

val induced : Cq.cqap -> Td.t -> Pmtd.t list
(** The induced set of Section 6.3 for one decomposition: every antichain
    of nodes becomes a materialization set after merging each chosen
    node's subtree into it. *)
