(** Rooted tree decompositions (Definition 3.1) with the free-connex
    property test used by PMTDs. *)

open Stt_hypergraph

type t = { tree : Rtree.t; bags : Varset.t array }

val create : Rtree.t -> Varset.t array -> t
(** Raises [Invalid_argument] on size mismatch. *)

val bag : t -> int -> Varset.t
val size : t -> int
val root : t -> int

val is_valid : t -> Hypergraph.t -> bool
(** Both tree-decomposition properties: every hyperedge inside some bag,
    and for every vertex the bags containing it form a connected
    subtree. *)

val top : t -> int -> int
(** [top td x]: the highest node (w.r.t. the root) whose bag contains
    [x].  Raises [Not_found] if no bag contains [x].  Well-defined only
    on valid decompositions (connectedness makes the highest node
    unique). *)

val is_free_connex : t -> head:Varset.t -> bool
(** Free-connex w.r.t. this decomposition's root: no [TOP(y)] with
    [y ∉ H] is a strict ancestor of some [TOP(x)] with [x ∈ H]. *)

val reroot : t -> int -> t
val non_redundant : t -> bool
(** No bag contained in another. *)

val dominated_by : t -> t -> bool
(** Every bag of the first is a subset of some bag of the second. *)

val merge_subtree : t -> int -> t
(** Replace node [i]'s bag by the union of its subtree's bags and remove
    the rest of the subtree (the Section 6.3 merge operation). *)

val canonical_key : t -> string
(** A key identifying the decomposition up to node renumbering (used to
    deduplicate enumerations): sorted bags plus sorted edge list over
    bag contents. *)

val pp : string array -> Format.formatter -> t -> unit
