open Stt_hypergraph

type t = { tree : Rtree.t; bags : Varset.t array }

let create tree bags =
  if Rtree.size tree <> Array.length bags then
    invalid_arg "Td.create: size mismatch";
  { tree; bags = Array.copy bags }

let bag t i = t.bags.(i)
let size t = Array.length t.bags
let root t = Rtree.root t.tree

let is_valid t hg =
  let edge_covered e = Array.exists (fun b -> Varset.subset e b) t.bags in
  List.for_all edge_covered hg.Hypergraph.edges
  && Varset.for_all
       (fun x ->
         (* bags containing x form a connected subtree: every non-highest
            node containing x has a parent containing x, for the tree
            rooted anywhere; equivalently the number of nodes containing
            x whose parent does not contain x is exactly one *)
         let holders =
           List.filter (fun i -> Varset.mem x t.bags.(i)) (Rtree.nodes t.tree)
         in
         match holders with
         | [] -> false
         | _ ->
             let tops =
               List.filter
                 (fun i ->
                   match Rtree.parent t.tree i with
                   | None -> true
                   | Some p -> not (Varset.mem x t.bags.(p)))
                 holders
             in
             List.length tops = 1)
       (Hypergraph.vertices hg)

let top t x =
  let holders =
    List.filter (fun i -> Varset.mem x t.bags.(i)) (Rtree.nodes t.tree)
  in
  let tops =
    List.filter
      (fun i ->
        match Rtree.parent t.tree i with
        | None -> true
        | Some p -> not (Varset.mem x t.bags.(p)))
      holders
  in
  match tops with
  | [ i ] -> i
  | [] -> raise Not_found
  | i :: _ -> i (* invalid decomposition; return an arbitrary top *)

let is_free_connex t ~head =
  let all =
    Array.fold_left Varset.union Varset.empty t.bags
  in
  let heads = Varset.inter head all in
  let nonheads = Varset.diff all head in
  Varset.for_all
    (fun x ->
      Varset.for_all
        (fun y -> not (Rtree.is_ancestor t.tree (top t y) (top t x)))
        nonheads)
    heads

let reroot t r = { t with tree = Rtree.reroot t.tree r }

let non_redundant t =
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Varset.subset t.bags.(i) t.bags.(j) then ok := false
    done
  done;
  !ok

let dominated_by t1 t2 =
  Array.for_all
    (fun b1 -> Array.exists (fun b2 -> Varset.subset b1 b2) t2.bags)
    t1.bags

let merge_subtree t i =
  let sub = Rtree.subtree t.tree i in
  let merged = List.fold_left (fun acc j -> Varset.union acc t.bags.(j)) Varset.empty sub in
  let keep =
    List.filter (fun j -> j = i || not (List.mem j sub)) (Rtree.nodes t.tree)
  in
  let renumber = Hashtbl.create 16 in
  List.iteri (fun k j -> Hashtbl.add renumber j k) keep;
  let parent =
    Array.of_list
      (List.map
         (fun j ->
           match Rtree.parent t.tree j with
           | None -> -1
           | Some p -> Hashtbl.find renumber p)
         keep)
  in
  let bags =
    Array.of_list
      (List.map (fun j -> if j = i then merged else t.bags.(j)) keep)
  in
  create (Rtree.create ~parent) bags

let canonical_key t =
  let bag_str b = Varset.to_string b in
  let bags = List.sort compare (Array.to_list t.bags |> List.map bag_str) in
  let edges =
    List.map
      (fun (c, p) ->
        let a = bag_str t.bags.(c) and b = bag_str t.bags.(p) in
        if a < b then a ^ "--" ^ b else b ^ "--" ^ a)
      (Rtree.edges t.tree)
    |> List.sort compare
  in
  String.concat ";" bags ^ "|" ^ String.concat ";" edges
  ^ "|root=" ^ bag_str t.bags.(root t)

let pp names ppf t =
  Format.fprintf ppf "@[<h>TD(root=%a;" (Varset.pp_named names)
    t.bags.(root t);
  List.iter
    (fun (c, p) ->
      Format.fprintf ppf " %a->%a" (Varset.pp_named names) t.bags.(c)
        (Varset.pp_named names) t.bags.(p))
    (Rtree.edges t.tree);
  Format.fprintf ppf ")@]"
