open Stt_hypergraph

(* --- permutations of a small list --- *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* --- tree decomposition from an elimination ordering --- *)
let td_of_ordering hg order =
  let n = List.length order in
  let pos = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.add pos v i) order;
  let verts = Array.of_list order in
  (* current adjacency over original vertex ids *)
  let adj = Hashtbl.create n in
  let get_adj v = try Hashtbl.find adj v with Not_found -> Varset.empty in
  let add_edge u v =
    if u <> v then begin
      Hashtbl.replace adj u (Varset.add v (get_adj u));
      Hashtbl.replace adj v (Varset.add u (get_adj v))
    end
  in
  List.iter
    (fun e -> Varset.iter (fun u -> Varset.iter (fun v -> add_edge u v) e) e)
    hg.Hypergraph.edges;
  let eliminated = Hashtbl.create n in
  let bags = Array.make n Varset.empty in
  for i = 0 to n - 1 do
    let v = verts.(i) in
    let neighbors =
      Varset.filter (fun u -> not (Hashtbl.mem eliminated u)) (get_adj v)
    in
    bags.(i) <- Varset.add v neighbors;
    Varset.iter
      (fun u -> Varset.iter (fun w -> add_edge u w) neighbors)
      neighbors;
    Hashtbl.add eliminated v ()
  done;
  (* parent of bag i: the bag of the first-eliminated vertex among
     bags.(i) minus v_i; root if none *)
  let parent = Array.make n (-1) in
  for i = 0 to n - 1 do
    let others = Varset.remove verts.(i) bags.(i) in
    if not (Varset.is_empty others) then
      parent.(i) <-
        Varset.fold (fun u acc -> min acc (Hashtbl.find pos u)) others max_int
  done;
  (* a disconnected hypergraph yields a forest: attach stray roots *)
  let roots = ref [] in
  Array.iteri (fun i p -> if p = -1 then roots := i :: !roots) parent;
  (match !roots with
  | [] | [ _ ] -> ()
  | keep :: rest -> List.iter (fun i -> parent.(i) <- keep) rest);
  let td = Td.create (Rtree.create ~parent) bags in
  (* splice out node [i], re-attaching its children (and, if [i] is the
     root, promoting one child) to its parent *)
  let splice td i =
    let tree = td.Td.tree in
    let keep = List.filter (fun j -> j <> i) (Rtree.nodes tree) in
    let replacement =
      match Rtree.parent tree i with
      | Some p -> p
      | None -> (
          match Rtree.children tree i with
          | c :: _ -> c
          | [] -> invalid_arg "splice: singleton")
    in
    let renumber = Hashtbl.create 16 in
    List.iteri (fun k j -> Hashtbl.add renumber j k) keep;
    let parent' =
      Array.of_list
        (List.map
           (fun j ->
             let pj =
               match Rtree.parent tree j with
               | None -> -1
               | Some pj -> if pj = i then replacement else pj
             in
             let pj = if pj = j then -1 (* promoted child *) else pj in
             if pj = -1 then -1 else Hashtbl.find renumber pj)
           keep)
    in
    let bags' = Array.of_list (List.map (Td.bag td) keep) in
    Td.create (Rtree.create ~parent:parent') bags'
  in
  (* contract any bag contained in a neighbour's bag (either direction
     along an edge) *)
  let rec simplify td =
    if Td.size td = 1 then td
    else
      let tree = td.Td.tree in
      let redundant =
        List.find_opt
          (fun i ->
            let neighbours =
              (match Rtree.parent tree i with Some p -> [ p ] | None -> [])
              @ Rtree.children tree i
            in
            List.exists
              (fun j -> Varset.subset (Td.bag td i) (Td.bag td j))
              neighbours)
          (Rtree.nodes tree)
      in
      match redundant with
      | None -> td
      | Some i -> simplify (splice td i)
  in
  simplify td

let dedup_tds tds =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun td ->
      let key = Td.canonical_key td in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    tds

let rootings td = List.map (Td.reroot td) (List.init (Td.size td) Fun.id)

let merge_closure tds =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let queue = Queue.create () in
  let push td =
    let key = Td.canonical_key td in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := td :: !out;
      Queue.add td queue
    end
  in
  List.iter push tds;
  while not (Queue.is_empty queue) do
    let td = Queue.pop queue in
    List.iter
      (fun i ->
        if Rtree.children td.Td.tree i <> [] then push (Td.merge_subtree td i))
      (Rtree.nodes td.Td.tree)
  done;
  !out

let tree_decompositions (cqap : Cq.cqap) =
  let hg = Pmtd.access_hypergraph cqap in
  let vars = Varset.to_list (Hypergraph.vertices hg) in
  let base = permutations vars |> List.map (td_of_ordering hg) |> dedup_tds in
  let rooted = List.concat_map rootings base |> dedup_tds in
  let all = merge_closure rooted in
  List.filter
    (fun td ->
      Varset.subset cqap.Cq.access (Td.bag td (Td.root td))
      && Td.is_free_connex td ~head:cqap.Cq.cq.Cq.head
      && Td.is_valid td hg)
    all

(* antichains of tree nodes: no two related by the ancestor order *)
let antichains tree nodes =
  List.fold_left
    (fun acc v ->
      acc
      @ List.filter_map
          (fun chain ->
            if
              List.exists
                (fun u ->
                  u = v
                  || Rtree.is_ancestor tree u v
                  || Rtree.is_ancestor tree v u)
                chain
            then None
            else Some (v :: chain))
          acc)
    [ [] ] nodes

(* descendant-closed materialization sets = unions of complete subtrees *)
let materialization_sets td =
  let tree = td.Td.tree in
  let n = Td.size td in
  List.map
    (fun chain ->
      let m = Array.make n false in
      List.iter
        (fun v -> List.iter (fun u -> m.(u) <- true) (Rtree.subtree tree v))
        chain;
      m)
    (antichains tree (Rtree.nodes tree))

let reduce_pmtds pmtds =
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun p ->
        let key = Pmtd.signature p in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      pmtds
  in
  (* keep minimal elements of the domination order: drop any PMTD that
     strictly dominates another one *)
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q ->
             Pmtd.signature p <> Pmtd.signature q
             && Pmtd.dominates p q
             && not (Pmtd.dominates q p))
           distinct))
    distinct

let pmtds ?(max_pmtds = 64) cqap =
  let tds = tree_decompositions cqap in
  let candidates =
    List.concat_map
      (fun td ->
        List.filter_map
          (fun m ->
            match Pmtd.create cqap td ~materialized:m with
            | Ok p when Pmtd.is_non_redundant p -> Some p
            | Ok _ | Error _ -> None)
          (materialization_sets td))
      tds
  in
  let reduced = reduce_pmtds candidates in
  if List.length reduced > max_pmtds then
    failwith
      (Printf.sprintf "Enum.pmtds: %d PMTDs exceed the limit %d"
         (List.length reduced) max_pmtds);
  reduced

let induced cqap td =
  (* Section 6.3: for each antichain, merge each chosen node's subtree
     into the node and materialize exactly the merged nodes.  Merging
     renumbers nodes, so merged nodes are re-identified by their bag
     (unique in a non-redundant decomposition). *)
  let tree = td.Td.tree in
  List.filter_map
    (fun chain ->
      let td', merged_bags =
        List.fold_left
          (fun (td_acc, bags_acc) t0 ->
            let cur =
              List.find_opt
                (fun i -> Varset.equal (Td.bag td_acc i) (Td.bag td t0))
                (Rtree.nodes td_acc.Td.tree)
            in
            match cur with
            | None -> (td_acc, bags_acc)
            | Some i ->
                let td'' = Td.merge_subtree td_acc i in
                let union =
                  List.fold_left
                    (fun acc j -> Varset.union acc (Td.bag td_acc j))
                    Varset.empty
                    (Rtree.subtree td_acc.Td.tree i)
                in
                (td'', union :: bags_acc))
          (td, []) chain
      in
      let mat =
        Array.init (Td.size td') (fun i ->
            List.exists (Varset.equal (Td.bag td' i)) merged_bags)
      in
      match Pmtd.create cqap td' ~materialized:mat with
      | Ok p when Pmtd.is_non_redundant p -> Some p
      | Ok _ | Error _ -> None)
    (antichains tree (Rtree.nodes tree))
  |> reduce_pmtds
