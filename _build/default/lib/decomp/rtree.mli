(** Rooted trees over nodes [0 .. size-1]. *)

type t

val create : parent:int array -> t
(** [parent.(i)] is the parent of node [i]; exactly one node (the root)
    has parent [-1].  Raises [Invalid_argument] if the array does not
    describe a rooted tree. *)

val size : t -> int
val root : t -> int
val parent : t -> int -> int option
val children : t -> int -> int list
val nodes : t -> int list
(** In topological (parent-before-child) order. *)

val bottom_up : t -> int list
(** Children before parents. *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a b]: is [a] a strict ancestor of [b]? *)

val subtree : t -> int -> int list
(** Node and all its descendants. *)

val edges : t -> (int * int) list
(** (child, parent) pairs. *)

val reroot : t -> int -> t
(** Same underlying tree, rooted at the given node. *)

val pp : Format.formatter -> t -> unit
