(** Partially materialized tree decompositions (Definition 3.2).

    A PMTD augments a rooted free-connex tree decomposition of the access
    CQ with a descendant-closed materialization set [M]; every node gets
    a view: an [S]-view (materialized during preprocessing) if the node
    is in [M], otherwise a [T]-view (computed online).  The view schemas
    [v(t)] follow Definition 3.2. *)

open Stt_hypergraph

type kind = S | T

type view = { node : int; kind : kind; vars : Varset.t }

type t = private {
  cqap : Cq.cqap;
  td : Td.t;
  materialized : bool array;
}

val access_hypergraph : Cq.cqap -> Hypergraph.t
(** The hypergraph of the access CQ: the body atoms plus (when non-empty)
    the access-pattern hyperedge [A] contributed by the atom [Q_A]. *)

val create : Cq.cqap -> Td.t -> materialized:bool array -> (t, string) result
(** Checks all PMTD conditions: the decomposition is a valid free-connex
    decomposition of the access CQ w.r.t. its root, the access pattern is
    contained in the root bag, and [M] is descendant-closed. *)

val create_exn : Cq.cqap -> Td.t -> materialized:bool array -> t
val views : t -> view list
(** One view per node, in topological order. *)

val view : t -> int -> view
val s_views : t -> view list
val t_views : t -> view list
val is_non_redundant : t -> bool
(** Definition 3.4. *)

val dominates : t -> t -> bool
(** [dominates p q]: [q] is dominated by [p] (Definition 3.5). *)

val signature : t -> string
(** Canonical key on the multiset of (kind, schema) views — PMTDs with
    equal signatures generate identical disjunctive-rule targets. *)

val pp : Format.formatter -> t -> unit
