lib/decomp/enum.ml: Array Cq Fun Hashtbl Hypergraph List Pmtd Printf Queue Rtree Stt_hypergraph Td Varset
