lib/decomp/rtree.ml: Array Format List Queue
