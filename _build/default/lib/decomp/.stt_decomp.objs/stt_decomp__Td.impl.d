lib/decomp/td.ml: Array Format Hashtbl Hypergraph List Rtree String Stt_hypergraph Varset
