lib/decomp/enum.mli: Cq Pmtd Stt_hypergraph Td
