lib/decomp/pmtd.mli: Cq Format Hypergraph Stt_hypergraph Td Varset
