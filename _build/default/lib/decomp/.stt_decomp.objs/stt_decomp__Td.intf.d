lib/decomp/td.mli: Format Hypergraph Rtree Stt_hypergraph Varset
