lib/decomp/pmtd.ml: Array Cq Format Hypergraph List Rtree String Stt_hypergraph Td Varset
