lib/decomp/rtree.mli: Format
