(* Rooted trees, tree decompositions, PMTDs and their enumeration —
   including the paper's exact artifact counts (Figures 1, 2; Appendix F). *)

open Stt_hypergraph
open Stt_decomp

let vs = Alcotest.testable Varset.pp Varset.equal
let of_l = Varset.of_list

(* --- Rtree --- *)

let chain3 = Rtree.create ~parent:[| -1; 0; 1 |]

let test_rtree_basics () =
  Alcotest.check Alcotest.int "root" 0 (Rtree.root chain3);
  Alcotest.check Alcotest.(option int) "parent" (Some 1) (Rtree.parent chain3 2);
  Alcotest.check Alcotest.(list int) "children" [ 1 ] (Rtree.children chain3 0);
  Alcotest.check Alcotest.(list int) "topological" [ 0; 1; 2 ] (Rtree.nodes chain3);
  Alcotest.check Alcotest.(list int) "bottom-up" [ 2; 1; 0 ] (Rtree.bottom_up chain3);
  Alcotest.check Alcotest.bool "ancestor" true (Rtree.is_ancestor chain3 0 2);
  Alcotest.check Alcotest.bool "not self-ancestor" false (Rtree.is_ancestor chain3 1 1);
  Alcotest.check Alcotest.(list int) "subtree" [ 1; 2 ] (Rtree.subtree chain3 1)

let test_rtree_validation () =
  Alcotest.check_raises "two roots"
    (Invalid_argument "Rtree.create: need exactly one root") (fun () ->
      ignore (Rtree.create ~parent:[| -1; -1 |]));
  Alcotest.check_raises "cycle" (Invalid_argument "Rtree.create: cycle")
    (fun () -> ignore (Rtree.create ~parent:[| 1; 0; -1 |]))

let test_reroot () =
  let t = Rtree.reroot chain3 2 in
  Alcotest.check Alcotest.int "new root" 2 (Rtree.root t);
  Alcotest.check Alcotest.(option int) "0's parent is 1" (Some 1)
    (Rtree.parent t 0);
  Alcotest.check Alcotest.bool "2 is ancestor of 0" true (Rtree.is_ancestor t 2 0)

(* --- Td --- *)

let path3 = Cq.Library.k_path 3
let hg3 = Pmtd.access_hypergraph path3

let td_two_bags =
  (* {x1,x3,x4} -> {x1,x2,x3}, the left decomposition of Figure 1 *)
  Td.create
    (Rtree.create ~parent:[| -1; 0 |])
    [| of_l [ 0; 2; 3 ]; of_l [ 0; 1; 2 ] |]

let test_td_validity () =
  Alcotest.check Alcotest.bool "valid" true (Td.is_valid td_two_bags hg3);
  (* disconnected occurrence of a variable *)
  let bad =
    Td.create
      (Rtree.create ~parent:[| -1; 0; 1 |])
      [| of_l [ 0; 1 ]; of_l [ 1; 2 ]; of_l [ 0; 2; 3 ] |]
  in
  Alcotest.check Alcotest.bool "broken running intersection" false
    (Td.is_valid bad hg3)

let test_td_top_and_free_connex () =
  Alcotest.check Alcotest.int "top of x2 is child" 1 (Td.top td_two_bags 1);
  Alcotest.check Alcotest.int "top of x1 is root" 0 (Td.top td_two_bags 0);
  Alcotest.check Alcotest.bool "free-connex for {x1,x4}" true
    (Td.is_free_connex td_two_bags ~head:(of_l [ 0; 3 ]));
  (* rooted at the child, TOP(x2) (a bound var) sits above TOP(x4): not
     free-connex *)
  let rerooted = Td.reroot td_two_bags 1 in
  Alcotest.check Alcotest.bool "not free-connex rerooted" false
    (Td.is_free_connex rerooted ~head:(of_l [ 0; 3 ]))

let test_td_merge () =
  let merged = Td.merge_subtree td_two_bags 1 in
  Alcotest.check Alcotest.int "two nodes still" 2 (Td.size merged);
  Alcotest.check vs "child bag unions" (of_l [ 0; 1; 2 ]) (Td.bag merged 1);
  let merged_root = Td.merge_subtree td_two_bags 0 in
  Alcotest.check Alcotest.int "single node" 1 (Td.size merged_root);
  Alcotest.check vs "full bag" (Varset.full 4) (Td.bag merged_root 0)

(* --- Pmtd: Figure 1 --- *)

let pmtd_fig1_left =
  Pmtd.create_exn path3 td_two_bags ~materialized:[| false; false |]

let pmtd_fig1_mid =
  Pmtd.create_exn path3 td_two_bags ~materialized:[| false; true |]

let single_bag_td =
  Td.create (Rtree.create ~parent:[| -1 |]) [| Varset.full 4 |]

let pmtd_fig1_right =
  Pmtd.create_exn path3 single_bag_td ~materialized:[| true |]

let test_fig1_views () =
  (* left: T134, T123 *)
  let views p = List.map (fun v -> (v.Pmtd.kind, v.Pmtd.vars)) (Pmtd.views p) in
  Alcotest.check
    (Alcotest.list (Alcotest.pair (Alcotest.testable (fun ppf -> function
       | Pmtd.S -> Format.fprintf ppf "S"
       | Pmtd.T -> Format.fprintf ppf "T") ( = )) vs))
    "left" [ (Pmtd.T, of_l [ 0; 2; 3 ]); (Pmtd.T, of_l [ 0; 1; 2 ]) ]
    (views pmtd_fig1_left);
  (* middle: the S-view projects out x2: S13 *)
  Alcotest.check vs "S13" (of_l [ 0; 2 ]) (Pmtd.view pmtd_fig1_mid 1).Pmtd.vars;
  Alcotest.check Alcotest.bool "kind S" true
    ((Pmtd.view pmtd_fig1_mid 1).Pmtd.kind = Pmtd.S);
  (* right: S14 *)
  Alcotest.check vs "S14" (of_l [ 0; 3 ]) (Pmtd.view pmtd_fig1_right 0).Pmtd.vars

let test_pmtd_validations () =
  (* M not descendant-closed: root materialized, child not *)
  (match Pmtd.create path3 td_two_bags ~materialized:[| true; false |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected descendant-closure failure");
  (* A ⊄ root bag *)
  let td_bad_root = Td.reroot td_two_bags 1 in
  match Pmtd.create path3 td_bad_root ~materialized:[| false; false |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected root-bag failure"

let test_example_3_6_redundancy () =
  (* both bags materialized: the child S-view becomes empty → redundant *)
  let p = Pmtd.create_exn path3 td_two_bags ~materialized:[| true; true |] in
  Alcotest.check Alcotest.bool "redundant" false (Pmtd.is_non_redundant p);
  (* the single-bag T PMTD dominates the left PMTD of Figure 1 *)
  let p_t1234 =
    Pmtd.create_exn path3 single_bag_td ~materialized:[| false |]
  in
  Alcotest.check Alcotest.bool "T1234 dominates (T134,T123)" true
    (Pmtd.dominates p_t1234 pmtd_fig1_left);
  Alcotest.check Alcotest.bool "converse fails" false
    (Pmtd.dominates pmtd_fig1_left p_t1234);
  (* Figure 1's PMTDs are mutually non-dominant *)
  List.iter
    (fun (a, b) ->
      Alcotest.check Alcotest.bool "non-dominant" false (Pmtd.dominates a b))
    [
      (pmtd_fig1_left, pmtd_fig1_mid);
      (pmtd_fig1_mid, pmtd_fig1_left);
      (pmtd_fig1_left, pmtd_fig1_right);
      (pmtd_fig1_right, pmtd_fig1_mid);
    ]

(* --- Enumeration: the paper's counts --- *)

let test_fig2_five_pmtds () =
  let pmtds = Enum.pmtds path3 in
  Alcotest.check Alcotest.int "exactly 5 (Figure 2)" 5 (List.length pmtds);
  let sigs = List.map Pmtd.signature pmtds |> List.sort compare in
  Alcotest.check Alcotest.int "distinct signatures" 5
    (List.length (List.sort_uniq compare sigs));
  (* the all-S PMTD S14 must be present *)
  Alcotest.check Alcotest.bool "S14 present" true
    (List.exists
       (fun p ->
         match Pmtd.views p with
         | [ v ] -> v.Pmtd.kind = Pmtd.S && Varset.equal v.Pmtd.vars (of_l [ 0; 3 ])
         | _ -> false)
       pmtds)

let test_2path_two_pmtds () =
  Alcotest.check Alcotest.int "2" 2 (List.length (Enum.pmtds (Cq.Library.k_path 2)))

let test_set_disjointness_pmtds () =
  (* the single-bag decomposition gives exactly (T), (S_A) *)
  let pmtds = Enum.pmtds (Cq.Library.k_set_disjointness 2) in
  Alcotest.check Alcotest.int "2" 2 (List.length pmtds)

let test_hierarchical_five () =
  let pmtds = Enum.pmtds Cq.Library.hierarchical_binary in
  Alcotest.check Alcotest.int "5 (Appendix F)" 5 (List.length pmtds)

let test_enum_soundness () =
  (* every enumerated PMTD is valid, non-redundant, and no PMTD strictly
     dominates another *)
  List.iter
    (fun q ->
      let pmtds = Enum.pmtds q in
      List.iter
        (fun p ->
          Alcotest.check Alcotest.bool "non-redundant" true
            (Pmtd.is_non_redundant p))
        pmtds;
      List.iter
        (fun p ->
          List.iter
            (fun p' ->
              if Pmtd.signature p <> Pmtd.signature p' then
                Alcotest.check Alcotest.bool "no strict domination" false
                  (Pmtd.dominates p p' && not (Pmtd.dominates p' p)))
            pmtds)
        pmtds)
    [ Cq.Library.k_path 2; Cq.Library.k_path 3; Cq.Library.square ]

let test_induced () =
  (* Section 6.3 induced set from the Figure 1 decomposition *)
  let induced = Enum.induced path3 td_two_bags in
  Alcotest.check Alcotest.bool "at least 3 PMTDs" true
    (List.length induced >= 3);
  List.iter
    (fun p ->
      Alcotest.check Alcotest.bool "non-redundant" true
        (Pmtd.is_non_redundant p))
    induced

let () =
  Alcotest.run "decomp"
    [
      ( "rtree",
        [
          Alcotest.test_case "basics" `Quick test_rtree_basics;
          Alcotest.test_case "validation" `Quick test_rtree_validation;
          Alcotest.test_case "reroot" `Quick test_reroot;
        ] );
      ( "td",
        [
          Alcotest.test_case "validity" `Quick test_td_validity;
          Alcotest.test_case "top / free-connex" `Quick test_td_top_and_free_connex;
          Alcotest.test_case "merge subtree" `Quick test_td_merge;
        ] );
      ( "pmtd",
        [
          Alcotest.test_case "Figure 1 views" `Quick test_fig1_views;
          Alcotest.test_case "validations" `Quick test_pmtd_validations;
          Alcotest.test_case "Example 3.6" `Quick test_example_3_6_redundancy;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "Figure 2: five PMTDs" `Quick test_fig2_five_pmtds;
          Alcotest.test_case "2-path: two PMTDs" `Quick test_2path_two_pmtds;
          Alcotest.test_case "set disjointness" `Quick test_set_disjointness_pmtds;
          Alcotest.test_case "hierarchical: five" `Quick test_hierarchical_five;
          Alcotest.test_case "soundness" `Quick test_enum_soundness;
          Alcotest.test_case "induced sets" `Quick test_induced;
        ] );
    ]
