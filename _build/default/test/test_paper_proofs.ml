(* Machine-check every encoded paper proof: the proof sequences are
   valid derivations, the participating inequalities hold over Γ_n, and
   the coefficient sums reproduce the stated tradeoffs (Theorem D.6). *)

open Stt_polymatroid
open Stt_core

let check_entry (e : Paper_proofs.entry) () =
  (* (1) proof sequences check step by step *)
  Alcotest.check Alcotest.bool
    (e.Paper_proofs.name ^ ": preprocessing sequence")
    true
    (Proof.check ~delta:e.Paper_proofs.delta_s ~lambda:e.Paper_proofs.lambda_s
       e.Paper_proofs.seq_s);
  Alcotest.check Alcotest.bool
    (e.Paper_proofs.name ^ ": online sequence")
    true
    (Proof.check ~delta:e.Paper_proofs.delta_t ~lambda:e.Paper_proofs.lambda_t
       e.Paper_proofs.seq_t);
  (* (2) both participating Shannon-flow inequalities are valid (for
     small n, exactly by LP) *)
  if e.Paper_proofs.n <= 5 then begin
    Alcotest.check Alcotest.bool
      (e.Paper_proofs.name ^ ": S-inequality valid over Γ_n")
      true
      (Flow.is_valid
         (Flow.make ~n:e.Paper_proofs.n ~delta:e.Paper_proofs.delta_s
            ~lambda:e.Paper_proofs.lambda_s));
    Alcotest.check Alcotest.bool
      (e.Paper_proofs.name ^ ": T-inequality valid over Γ_n")
      true
      (Flow.is_valid
         (Flow.make ~n:e.Paper_proofs.n ~delta:e.Paper_proofs.delta_t
            ~lambda:e.Paper_proofs.lambda_t))
  end;
  (* (3) the coefficient sums match the stated tradeoff:
     S^{‖λ_S‖} · T^{‖λ_T‖} ≅ D^{d_exp} · Q^{q_exp} after scaling *)
  let derived =
    Tradeoff.scaled
      (Tradeoff.make
         ~s_exp:(Cvec.norm1 e.Paper_proofs.lambda_s)
         ~t_exp:(Cvec.norm1 e.Paper_proofs.lambda_t)
         ~d_exp:e.Paper_proofs.d_exp ~q_exp:e.Paper_proofs.q_exp)
  in
  Alcotest.check
    (Alcotest.testable Tradeoff.pp Tradeoff.equal)
    (e.Paper_proofs.name ^ ": tradeoff")
    (Tradeoff.scaled e.Paper_proofs.tradeoff)
    derived

let () =
  Alcotest.run "paper_proofs"
    [
      ( "entries",
        List.map
          (fun (e : Paper_proofs.entry) ->
            Alcotest.test_case e.Paper_proofs.name `Quick (check_entry e))
          Paper_proofs.all );
    ]
