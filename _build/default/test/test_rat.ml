(* Exact rational arithmetic: unit cases and algebraic laws. *)

open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

let test_normalization () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check Alcotest.int "den of 0 is 1" 1 (Rat.den (Rat.make 0 5));
  Alcotest.check Alcotest.bool "3/2 not integer" false
    (Rat.is_integer (Rat.make 3 2));
  Alcotest.check Alcotest.bool "4/2 integer" true
    (Rat.is_integer (Rat.make 4 2))

let test_arithmetic () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "(1/2) / (1/4)" (Rat.of_int 2)
    (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "inv 3/7" (Rat.make 7 3) (Rat.inv (Rat.make 3 7));
  check_rat "neg" (Rat.make (-3) 7) (Rat.neg (Rat.make 3 7));
  check_rat "abs" (Rat.make 3 7) (Rat.abs (Rat.make (-3) 7))

let test_compare () =
  Alcotest.check Alcotest.bool "1/3 < 1/2" true Rat.(make 1 3 < make 1 2);
  Alcotest.check Alcotest.bool "-1 < 0" true Rat.(minus_one < zero);
  check_rat "min" (Rat.make 1 3) (Rat.min (Rat.make 1 3) (Rat.make 1 2));
  check_rat "max" (Rat.make 1 2) (Rat.max (Rat.make 1 3) (Rat.make 1 2));
  Alcotest.check Alcotest.int "sign neg" (-1) (Rat.sign (Rat.make (-1) 5));
  Alcotest.check Alcotest.int "sign zero" 0 (Rat.sign Rat.zero)

let test_division_by_zero () =
  Alcotest.check_raises "make x 0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero))

let test_overflow_detection () =
  let huge = Rat.of_int max_int in
  Alcotest.check_raises "add overflows" Rat.Overflow (fun () ->
      ignore (Rat.add huge huge));
  Alcotest.check_raises "mul overflows" Rat.Overflow (fun () ->
      ignore (Rat.mul huge (Rat.of_int 2)))

let test_float_roundtrip () =
  check_rat "0.5" (Rat.make 1 2) (Rat.of_float_approx 0.5);
  check_rat "0.75" (Rat.make 3 4) (Rat.of_float_approx 0.75);
  check_rat "-2.25" (Rat.make (-9) 4) (Rat.of_float_approx (-2.25));
  check_rat "1/3 approx" (Rat.make 1 3)
    (Rat.of_float_approx (1.0 /. 3.0));
  check_rat "integral" (Rat.of_int 42) (Rat.of_float_approx 42.0)

let test_to_string () =
  Alcotest.check Alcotest.string "int" "5" (Rat.to_string (Rat.of_int 5));
  Alcotest.check Alcotest.string "frac" "3/2" (Rat.to_string (Rat.make 3 2));
  Alcotest.check Alcotest.string "neg frac" "-3/2"
    (Rat.to_string (Rat.make (-3) 2))

(* --- properties --- *)

let small_rat_gen =
  QCheck2.Gen.(
    map2
      (fun n d -> Rat.make n d)
      (int_range (-1000) 1000)
      (int_range 1 1000))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:500 gen f)

let qcheck_cases =
  [
    prop "add commutative" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
      (fun (a, b) -> Rat.equal (Rat.add a b) (Rat.add b a));
    prop "add associative"
      (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul distributes"
      (QCheck2.Gen.triple small_rat_gen small_rat_gen small_rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "sub then add roundtrip" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
      (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b));
    prop "normalized gcd 1" small_rat_gen (fun a ->
        let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
        Rat.den a > 0 && (Rat.num a = 0 || gcd (abs (Rat.num a)) (Rat.den a) = 1));
    prop "compare antisymmetric" (QCheck2.Gen.pair small_rat_gen small_rat_gen)
      (fun (a, b) -> Rat.compare a b = -Rat.compare b a);
    prop "to_float consistent" small_rat_gen (fun a ->
        Float.abs (Rat.to_float a -. (float_of_int (Rat.num a) /. float_of_int (Rat.den a))) < 1e-9);
    prop "float roundtrip on dyadics" (QCheck2.Gen.int_range (-4096) 4096)
      (fun n ->
        let x = Rat.make n 64 in
        Rat.equal x (Rat.of_float_approx (Rat.to_float x)));
  ]

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "overflow detection" `Quick test_overflow_detection;
          Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ("properties", qcheck_cases);
    ]
