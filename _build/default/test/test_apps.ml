(* Application-level data structures: correctness against naive
   references and tradeoff sanity (more budget never hurts). *)

open Stt_relation
open Stt_apps
open Stt_workload

(* --- k-Set Disjointness --- *)

let members = Sets.zipf_sizes ~seed:21 ~universe:150 ~sets:60 ~memberships:1200 ~s:1.2

let test_setdisj_correct () =
  let rng = Rng.create 5 in
  List.iter
    (fun budget ->
      let t = Setdisj.build ~k:2 ~memberships:members ~budget in
      for _ = 1 to 100 do
        let q = [| Rng.int rng 60; Rng.int rng 60 |] in
        Alcotest.check Alcotest.bool "matches naive"
          (Setdisj.naive_disjoint ~memberships:members q)
          (Setdisj.disjoint t q)
      done)
    [ 0; 40; 4000 ]

let test_setdisj_k3 () =
  let rng = Rng.create 6 in
  let t = Setdisj.build ~k:3 ~memberships:members ~budget:2000 in
  for _ = 1 to 60 do
    let q = [| Rng.int rng 60; Rng.int rng 60; Rng.int rng 60 |] in
    Alcotest.check Alcotest.bool "k=3 matches naive"
      (Setdisj.naive_disjoint ~memberships:members q)
      (Setdisj.disjoint t q)
  done

let test_setdisj_intersection () =
  let rng = Rng.create 7 in
  let t = Setdisj.build ~k:2 ~memberships:members ~budget:1000 in
  for _ = 1 to 60 do
    let s1 = Rng.int rng 60 and s2 = Rng.int rng 60 in
    let inter = Setdisj.intersection t [| s1; s2 |] |> List.sort_uniq compare in
    let expected =
      List.filter_map (fun (e, s) -> if s = s1 then Some e else None) members
      |> List.filter (fun e -> List.mem (e, s2) members)
      |> List.sort_uniq compare
    in
    Alcotest.check Alcotest.(list int) "intersection" expected inter
  done

let test_setdisj_tradeoff_shape () =
  (* worst-case cost must (weakly) improve with budget on a skewed family *)
  let rng0 = Rng.create 9 in
  let queries = List.init 150 (fun _ -> [| Rng.int rng0 30; Rng.int rng0 30 |]) in
  let worst budget =
    let t = Setdisj.build ~k:2 ~memberships:members ~budget in
    List.fold_left
      (fun acc q ->
        let _, snap = Cost.measure (fun () -> ignore (Setdisj.disjoint t q)) in
        max acc (Cost.total snap))
      0 queries
  in
  let w0 = worst 0 and w_mid = worst 400 and w_big = worst 100000 in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "w0=%d >= w_big=%d" w0 w_big)
    true
    (w0 >= w_big);
  Alcotest.check Alcotest.bool "mid between" true (w_mid <= w0)

(* --- k-Reachability --- *)

let graph = Graphs.zipf_both ~seed:31 ~vertices:120 ~edges:1200 ~s:1.1

let test_bfs_correct () =
  let t = Reach.Bfs.build graph in
  let rng = Rng.create 8 in
  for _ = 1 to 60 do
    let u = Rng.int rng 120 and v = Rng.int rng 120 in
    List.iter
      (fun k ->
        Alcotest.check Alcotest.bool "bfs = naive"
          (Reach.naive graph ~k u v)
          (Reach.Bfs.query t ~k u v))
      [ 1; 2; 3 ]
  done

let test_baseline_correct () =
  let rng = Rng.create 9 in
  List.iter
    (fun k ->
      List.iter
        (fun budget ->
          let t = Reach.Baseline.build ~k graph ~budget in
          for _ = 1 to 50 do
            let u = Rng.int rng 120 and v = Rng.int rng 120 in
            Alcotest.check Alcotest.bool
              (Printf.sprintf "baseline k=%d budget=%d" k budget)
              (Reach.naive graph ~k u v)
              (Reach.Baseline.query t u v)
          done)
        [ 4; 400; 40000 ])
    [ 2; 3 ]

let test_framework_correct () =
  let rng = Rng.create 10 in
  List.iter
    (fun k ->
      let t = Reach.Framework.build ~k graph ~budget:500 in
      for _ = 1 to 40 do
        let u = Rng.int rng 120 and v = Rng.int rng 120 in
        Alcotest.check Alcotest.bool
          (Printf.sprintf "framework k=%d" k)
          (Reach.naive graph ~k u v)
          (Reach.Framework.query t u v)
      done)
    [ 2; 3 ]

let test_at_most_correct () =
  let rng = Rng.create 17 in
  let t = Reach.AtMost.build ~k:3 graph ~budget:600 in
  for _ = 1 to 40 do
    let u = Rng.int rng 120 and v = Rng.int rng 120 in
    let expect =
      u = v
      || Reach.naive graph ~k:1 u v
      || Reach.naive graph ~k:2 u v
      || Reach.naive graph ~k:3 u v
    in
    Alcotest.check Alcotest.bool "at-most-3" expect (Reach.AtMost.query t u v)
  done

let test_baseline_space_grows () =
  let s b = Reach.Baseline.space (Reach.Baseline.build ~k:3 graph ~budget:b) in
  Alcotest.check Alcotest.bool "space grows" true (s 10000 >= s 10)

(* --- patterns --- *)

let pattern_graph = Graphs.cycle_rich ~seed:41 ~vertices:50 ~edges:280

let test_square_correct () =
  let t = Patterns.Square.build pattern_graph ~budget:2000 in
  let rng = Rng.create 11 in
  for _ = 1 to 60 do
    let u = Rng.int rng 50 and v = Rng.int rng 50 in
    Alcotest.check Alcotest.bool "square"
      (Patterns.Square.naive pattern_graph u v)
      (Patterns.Square.query t u v)
  done

let test_edge_triangle_correct () =
  let t = Patterns.EdgeTriangle.build pattern_graph ~budget:2000 in
  List.iter
    (fun (u, v) ->
      Alcotest.check Alcotest.bool "edge triangle"
        (Patterns.EdgeTriangle.naive pattern_graph u v)
        (Patterns.EdgeTriangle.query t u v))
    (List.filteri (fun i _ -> i < 40) pattern_graph)

let test_triangle_listing () =
  let t = Patterns.Triangle.build pattern_graph ~budget:100000 in
  Alcotest.check
    Alcotest.(list (pair int int))
    "corner pairs"
    (Patterns.Triangle.naive pattern_graph)
    (Patterns.Triangle.corner_pairs t)

(* --- hierarchical --- *)

let inst = Hierarchical.generate ~seed:51 ~posts:30 ~size:250

let random_z_queries n seed =
  let rng = Rng.create seed in
  (* mix random probes and planted positives drawn from the data *)
  let planted =
    List.filteri (fun i _ -> i < n / 2) inst.Hierarchical.r
    |> List.map (fun (_, _, z) -> [| z; z; z; z |])
  in
  planted @ List.init (n / 2) (fun _ ->
      Array.init 4 (fun _ -> Rng.int rng 10))

let test_hierarchical_adapted_correct () =
  List.iter
    (fun epsilon ->
      let t = Hierarchical.Adapted.build inst ~epsilon in
      List.iter
        (fun q ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "adapted eps=%.2f" epsilon)
            (Hierarchical.naive inst q)
            (Hierarchical.Adapted.query t q))
        (random_z_queries 40 12))
    [ 0.0; 0.3; 1.0 ]

let test_hierarchical_framework_correct () =
  let t = Hierarchical.Framework.build inst ~budget:2000 in
  List.iter
    (fun q ->
      Alcotest.check Alcotest.bool "framework"
        (Hierarchical.naive inst q)
        (Hierarchical.Framework.query t q))
    (random_z_queries 30 13)

let () =
  Alcotest.run "apps"
    [
      ( "set disjointness",
        [
          Alcotest.test_case "k=2 correct" `Quick test_setdisj_correct;
          Alcotest.test_case "k=3 correct" `Quick test_setdisj_k3;
          Alcotest.test_case "intersection" `Quick test_setdisj_intersection;
          Alcotest.test_case "tradeoff shape" `Quick test_setdisj_tradeoff_shape;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "BFS" `Quick test_bfs_correct;
          Alcotest.test_case "baseline" `Quick test_baseline_correct;
          Alcotest.test_case "framework" `Slow test_framework_correct;
          Alcotest.test_case "at-most-k" `Slow test_at_most_correct;
          Alcotest.test_case "baseline space" `Quick test_baseline_space_grows;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "square" `Slow test_square_correct;
          Alcotest.test_case "edge triangle" `Quick test_edge_triangle_correct;
          Alcotest.test_case "triangle listing" `Quick test_triangle_listing;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "adapted" `Quick test_hierarchical_adapted_correct;
          Alcotest.test_case "framework" `Slow test_hierarchical_framework_correct;
        ] );
    ]
