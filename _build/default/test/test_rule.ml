(* 2-phase disjunctive rule generation: the paper's rule sets. *)

open Stt_hypergraph
open Stt_decomp
open Stt_core

let of_l = Varset.of_list

let has_rule rules ~s ~t =
  List.exists
    (fun (r : Rule.t) ->
      List.equal Varset.equal r.Rule.s_targets
        (List.sort Varset.compare (List.map of_l s))
      && List.equal Varset.equal r.Rule.t_targets
           (List.sort Varset.compare (List.map of_l t)))
    rules

let test_2reach_single_rule () =
  let q = Cq.Library.k_path 2 in
  let rules = Rule.generate q (Enum.pmtds q) in
  Alcotest.check Alcotest.int "one rule" 1 (List.length rules);
  Alcotest.check Alcotest.bool "T123 ∨ S13" true
    (has_rule rules ~s:[ [ 0; 2 ] ] ~t:[ [ 0; 1; 2 ] ])

let test_table1_rules () =
  (* Table 1: exactly four subset-minimal rules for 3-reachability *)
  let q = Cq.Library.k_path 3 in
  let rules = Rule.generate q (Enum.pmtds q) in
  Alcotest.check Alcotest.int "four rules" 4 (List.length rules);
  (* ρ1 = T134 ∨ T124 ∨ S14 *)
  Alcotest.check Alcotest.bool "ρ1" true
    (has_rule rules ~s:[ [ 0; 3 ] ] ~t:[ [ 0; 2; 3 ]; [ 0; 1; 3 ] ]);
  (* ρ2 = T123 ∨ S13 ∨ T124 ∨ S14 *)
  Alcotest.check Alcotest.bool "ρ2" true
    (has_rule rules
       ~s:[ [ 0; 2 ]; [ 0; 3 ] ]
       ~t:[ [ 0; 1; 2 ]; [ 0; 1; 3 ] ]);
  (* ρ3 = T134 ∨ T234 ∨ S24 ∨ S14 *)
  Alcotest.check Alcotest.bool "ρ3" true
    (has_rule rules
       ~s:[ [ 1; 3 ]; [ 0; 3 ] ]
       ~t:[ [ 0; 2; 3 ]; [ 1; 2; 3 ] ]);
  (* ρ4 = T123 ∨ S13 ∨ T234 ∨ S24 ∨ S14 *)
  Alcotest.check Alcotest.bool "ρ4" true
    (has_rule rules
       ~s:[ [ 0; 2 ]; [ 1; 3 ]; [ 0; 3 ] ]
       ~t:[ [ 0; 1; 2 ]; [ 1; 2; 3 ] ])

let test_within_rule_reduction () =
  (* a T-target strictly containing another T-target is dropped
     (Example E.8's reduction) *)
  let q = Cq.Library.k_path 2 in
  let r =
    Rule.make q
      ~s_targets:[ of_l [ 0; 2 ]; of_l [ 0; 2 ] ]
      ~t_targets:[ of_l [ 0; 1; 2 ]; of_l [ 0; 1 ] ]
  in
  Alcotest.check Alcotest.int "dedup s" 1 (List.length r.Rule.s_targets);
  Alcotest.check Alcotest.int "dominated t dropped" 1
    (List.length r.Rule.t_targets);
  Alcotest.check Alcotest.bool "kept the smaller" true
    (Varset.equal (List.hd r.Rule.t_targets) (of_l [ 0; 1 ]))

let test_subsumption () =
  let q = Cq.Library.k_path 2 in
  let small = Rule.make q ~s_targets:[ of_l [ 0; 2 ] ] ~t_targets:[] in
  let big =
    Rule.make q ~s_targets:[ of_l [ 0; 2 ] ] ~t_targets:[ of_l [ 0; 1 ] ]
  in
  Alcotest.check Alcotest.bool "small subsumes big" true (Rule.subsumes small big);
  Alcotest.check Alcotest.bool "big does not subsume small" false
    (Rule.subsumes big small)

let test_minimality_of_generated () =
  List.iter
    (fun q ->
      let rules = Rule.generate q (Enum.pmtds q) in
      List.iter
        (fun r ->
          List.iter
            (fun r' ->
              if not (Rule.equal r r') then
                Alcotest.check Alcotest.bool "no rule subsumes another" false
                  (Rule.subsumes r r'))
            rules)
        rules)
    [ Cq.Library.k_path 3; Cq.Library.square; Cq.Library.hierarchical_binary ]

let test_4reach_rule_count () =
  let q = Cq.Library.k_path 4 in
  let rules = Rule.generate q (Enum.pmtds ~max_pmtds:128 q) in
  (* every rule must contain the always-available S15 target *)
  Alcotest.check Alcotest.bool "non-empty" true (List.length rules > 0);
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.check Alcotest.bool "S15 present" true
        (List.exists (Varset.equal (of_l [ 0; 4 ])) r.Rule.s_targets))
    rules

let () =
  Alcotest.run "rule"
    [
      ( "generation",
        [
          Alcotest.test_case "2-reach single rule" `Quick test_2reach_single_rule;
          Alcotest.test_case "Table 1 rules" `Quick test_table1_rules;
          Alcotest.test_case "within-rule reduction" `Quick
            test_within_rule_reduction;
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "generated rules minimal" `Quick
            test_minimality_of_generated;
          Alcotest.test_case "4-reach structure" `Quick test_4reach_rule_count;
        ] );
    ]
