test/test_proof.ml: Alcotest Cvec Flow List Proof QCheck2 QCheck_alcotest Rat Setfun Stt_hypergraph Stt_lp Stt_polymatroid Varset
