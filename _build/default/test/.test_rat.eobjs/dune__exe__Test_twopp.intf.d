test/test_twopp.mli:
