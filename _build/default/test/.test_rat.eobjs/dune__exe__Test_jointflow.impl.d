test/test_jointflow.ml: Alcotest Cq Degree Enum Jointflow List Printf Rat Rule Stt_core Stt_decomp Stt_hypergraph Stt_lp Tradeoff Varset
