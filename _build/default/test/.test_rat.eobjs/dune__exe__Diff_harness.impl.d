test/diff_harness.ml: Array Cq Db Engine Enum Fun List Pmtd Printf Relation Rng Schema Stt_core Stt_decomp Stt_hypergraph Stt_relation Stt_workload Twopp Varset
