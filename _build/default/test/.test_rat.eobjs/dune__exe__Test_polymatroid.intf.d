test/test_polymatroid.mli:
