test/test_simplex.ml: Alcotest Fun List Lp Printf QCheck2 QCheck_alcotest Rat Stt_lp
