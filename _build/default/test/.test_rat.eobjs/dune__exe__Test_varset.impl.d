test/test_varset.ml: Alcotest List QCheck2 QCheck_alcotest Stt_hypergraph Varset
