test/test_obs.ml: Alcotest Array Cost Cq Db Engine Fun Json List Obs Relation Schema String Stt_core Stt_hypergraph Stt_obs Stt_relation
