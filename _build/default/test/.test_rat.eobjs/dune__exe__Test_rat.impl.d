test/test_rat.ml: Alcotest Float QCheck2 QCheck_alcotest Rat Stt_lp
