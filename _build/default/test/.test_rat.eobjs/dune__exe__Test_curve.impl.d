test/test_curve.ml: Alcotest Cq Curve Degree Enum Jointflow List Printf Rat Rule Stt_core Stt_decomp Stt_hypergraph Stt_lp Tradeoff
