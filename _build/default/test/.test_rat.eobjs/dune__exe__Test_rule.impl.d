test/test_rule.ml: Alcotest Cq Enum List Rule Stt_core Stt_decomp Stt_hypergraph Varset
