test/test_workload.ml: Alcotest Array Fun Graphs List Rng Sets Stt_workload
