test/test_engine.ml: Alcotest Array Cq Db Engine Graphs List QCheck2 QCheck_alcotest Relation Rng Schema Sets Stt_apps Stt_core Stt_hypergraph Stt_relation Stt_workload
