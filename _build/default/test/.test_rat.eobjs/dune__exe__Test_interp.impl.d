test/test_interp.ml: Alcotest Array Graphs Interp List Paper_proofs Printf Proof Rat Relation Schema Stt_core Stt_hypergraph Stt_lp Stt_polymatroid Stt_relation Stt_workload Varset
