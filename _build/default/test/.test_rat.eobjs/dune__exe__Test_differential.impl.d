test/test_differential.ml: Alcotest Array Cq Db Diff_harness Engine Format List Printf Relation String Stt_core Stt_hypergraph Stt_relation
