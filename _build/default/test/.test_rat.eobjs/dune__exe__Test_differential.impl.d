test/test_differential.ml: Alcotest Array Cq Db Engine Enum Format Fun List Pmtd Printf Relation Rng Schema String Stt_core Stt_decomp Stt_hypergraph Stt_relation Stt_workload Twopp Varset
