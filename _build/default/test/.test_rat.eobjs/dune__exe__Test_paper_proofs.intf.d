test/test_paper_proofs.mli:
