test/test_cq.ml: Alcotest Cq Degree Hypergraph List Rat Stt_hypergraph Stt_lp Varset
