test/test_polymatroid.ml: Alcotest Array Cq Degree Option Polymatroid QCheck2 QCheck_alcotest Rat Setfun Stt_hypergraph Stt_lp Stt_polymatroid Varset
