test/test_lp_layer.ml: Alcotest Float List Lp QCheck2 QCheck_alcotest Rat Stt_lp
