test/test_apps.ml: Alcotest Array Cost Graphs Hierarchical List Patterns Printf Reach Rng Setdisj Sets Stt_apps Stt_relation Stt_workload
