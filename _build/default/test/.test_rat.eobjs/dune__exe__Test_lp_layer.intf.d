test/test_lp_layer.mli:
