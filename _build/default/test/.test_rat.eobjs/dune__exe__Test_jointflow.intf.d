test/test_jointflow.mli:
