test/test_index.ml: Alcotest Array Cost Index List Relation Schema Stt_relation Unix
