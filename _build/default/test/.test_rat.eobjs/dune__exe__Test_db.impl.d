test/test_db.ml: Alcotest Array Cq Db List Relation Schema Stt_core Stt_hypergraph Stt_relation
