test/test_decomp.mli:
