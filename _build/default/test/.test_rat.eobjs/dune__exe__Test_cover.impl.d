test/test_cover.ml: Alcotest Cover Cq Hypergraph List Printf Rat Stt_core Stt_hypergraph Stt_lp Tradeoff Varset
