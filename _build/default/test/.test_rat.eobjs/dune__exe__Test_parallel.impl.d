test/test_parallel.ml: Alcotest Array Cost Cq Db Diff_harness Engine Fun Graphs List Pool Printf Relation Rng Sets Stt_core Stt_hypergraph Stt_relation Stt_workload
