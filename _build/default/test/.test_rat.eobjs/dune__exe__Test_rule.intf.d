test/test_rule.mli:
