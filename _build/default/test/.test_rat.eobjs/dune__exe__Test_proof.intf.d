test/test_proof.mli:
