test/test_twopp.ml: Alcotest Array Cq Db Enum Fun Graphs List Printf Relation Rule Schema Stt_core Stt_decomp Stt_hypergraph Stt_relation Stt_workload Tuple Twopp Varset
