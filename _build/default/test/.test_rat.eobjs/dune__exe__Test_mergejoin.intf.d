test/test_mergejoin.mli:
