test/test_decomp.ml: Alcotest Cq Enum Format List Pmtd Rtree Stt_decomp Stt_hypergraph Td Varset
