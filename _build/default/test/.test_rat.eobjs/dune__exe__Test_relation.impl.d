test/test_relation.ml: Alcotest Array Cost Fun Index List Option QCheck2 QCheck_alcotest Relation Schema Stt_relation Tuple
