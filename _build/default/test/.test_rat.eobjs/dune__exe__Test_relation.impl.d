test/test_relation.ml: Alcotest Array Cost Index List QCheck2 QCheck_alcotest Relation Schema Stt_relation
