test/test_flow.ml: Alcotest Cq Cvec Degree Flow List Option QCheck2 QCheck_alcotest Rat Setfun Stt_hypergraph Stt_lp Stt_polymatroid Varset
