test/test_paper_proofs.ml: Alcotest Cvec Flow List Paper_proofs Proof Stt_core Stt_polymatroid Tradeoff
