test/test_mergejoin.ml: Alcotest Array List Mergejoin QCheck2 QCheck_alcotest Relation Schema Stt_relation
