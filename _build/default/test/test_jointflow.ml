(* The tradeoff LPs: Table 1 and the section-6 tradeoffs, reproduced from
   the dual of the joint Shannon-flow program — the paper's central
   quantitative artifacts. *)

open Stt_hypergraph
open Stt_decomp
open Stt_core
open Stt_lp

let rat = Alcotest.testable Rat.pp Rat.equal
let tr = Alcotest.testable Tradeoff.pp Tradeoff.equal

let tradeoffs_of q =
  let pmtds = Enum.pmtds q in
  let rules = Rule.generate q pmtds in
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  let grid = Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:8 in
  List.map
    (fun r ->
      (r, Jointflow.rule_tradeoffs r ~dc ~ac ~logq:(Rat.make 1 32) ~logs_grid:grid))
    rules

let mk s t d q =
  Tradeoff.make ~s_exp:(Rat.of_int s) ~t_exp:(Rat.of_int t)
    ~d_exp:(Rat.of_int d) ~q_exp:(Rat.of_int q)

let contains trs expected =
  List.exists (Tradeoff.equal expected) trs

let test_2reach_tradeoff () =
  (* S·T² ≅ D²·Q² — the paper's Section 5 running example *)
  match tradeoffs_of (Cq.Library.k_path 2) with
  | [ (_, trs) ] ->
      Alcotest.check Alcotest.bool "S·T² ≅ D²Q²" true
        (contains trs (mk 1 2 2 2))
  | _ -> Alcotest.fail "expected exactly one rule"

let test_table1 () =
  (* every tradeoff printed in Table 1 appears for its rule *)
  let all = tradeoffs_of (Cq.Library.k_path 3) in
  let find s t =
    List.find_map
      (fun ((r : Rule.t), trs) ->
        let sig_s = List.map Varset.to_int r.Rule.s_targets in
        let sig_t = List.map Varset.to_int r.Rule.t_targets in
        if
          List.sort compare sig_s
          = List.sort compare (List.map (fun l -> Varset.to_int (Varset.of_list l)) s)
          && List.sort compare sig_t
             = List.sort compare (List.map (fun l -> Varset.to_int (Varset.of_list l)) t)
        then Some trs
        else None)
      all
  in
  (* ρ1: S·T² ≅ D²Q² *)
  (match find [ [ 0; 3 ] ] [ [ 0; 2; 3 ]; [ 0; 1; 3 ] ] with
  | Some trs ->
      Alcotest.check Alcotest.bool "ρ1 S·T²≅D²Q²" true (contains trs (mk 1 2 2 2))
  | None -> Alcotest.fail "ρ1 missing");
  (* ρ2: S²·T³ ≅ D⁴Q³ *)
  (match find [ [ 0; 2 ]; [ 0; 3 ] ] [ [ 0; 1; 2 ]; [ 0; 1; 3 ] ] with
  | Some trs ->
      Alcotest.check Alcotest.bool "ρ2 S²T³≅D⁴Q³" true (contains trs (mk 2 3 4 3))
  | None -> Alcotest.fail "ρ2 missing");
  (* ρ3 symmetric *)
  (match find [ [ 1; 3 ]; [ 0; 3 ] ] [ [ 0; 2; 3 ]; [ 1; 2; 3 ] ] with
  | Some trs ->
      Alcotest.check Alcotest.bool "ρ3 S²T³≅D⁴Q³" true (contains trs (mk 2 3 4 3))
  | None -> Alcotest.fail "ρ3 missing");
  (* ρ4: S·T ≅ D²Q, S⁴·T ≅ D⁶Q and T ≅ DQ *)
  match find [ [ 0; 2 ]; [ 1; 3 ]; [ 0; 3 ] ] [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] with
  | Some trs ->
      Alcotest.check Alcotest.bool "ρ4 S·T≅D²Q" true (contains trs (mk 1 1 2 1));
      Alcotest.check Alcotest.bool "ρ4 S⁴·T≅D⁶Q" true (contains trs (mk 4 1 6 1));
      Alcotest.check Alcotest.bool "ρ4 T≅DQ" true (contains trs (mk 0 1 1 1))
  | None -> Alcotest.fail "ρ4 missing"

let test_k_set_disjointness () =
  (* Section 6.1: S·T^{k-1} ≅ D^k·Q^{k-1} for the intersection CQAP *)
  List.iter
    (fun k ->
      match tradeoffs_of (Cq.Library.k_set_intersection k) with
      | [ (_, trs) ] ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "k=%d: S·T^%d ≅ D^%d·Q^%d" k (k - 1) k (k - 1))
            true
            (contains trs (mk 1 (k - 1) k (k - 1)))
      | _ -> Alcotest.fail "expected one rule")
    [ 2; 3 ]

let test_square () =
  (* Example E.5: S·T² ≅ D²·Q² for both rules *)
  let all = tradeoffs_of Cq.Library.square in
  Alcotest.check Alcotest.int "two rules" 2 (List.length all);
  List.iter
    (fun (_, trs) ->
      Alcotest.check Alcotest.bool "S·T²≅D²Q²" true (contains trs (mk 1 2 2 2)))
    all

let test_triangle_stored () =
  (* Example E.4: linear space suffices (S13 is contained in the edge
     relation, so |S13| <= |D|).  Just above the linear-space boundary
     the adversarial region h_S(13) >= logS is empty and the LP reports
     Stored.  (At exactly logS = 1 the non-strict boundary is feasible
     and the LP reports a finite time instead — expected.) *)
  let q = Cq.Library.triangle_detect in
  let rules = Rule.generate q (Enum.pmtds q) in
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  List.iter
    (fun r ->
      match
        (Jointflow.obj r ~dc ~ac ~logd:Rat.one ~logq:Rat.zero
           ~logs:(Rat.make 9 8))
          .Jointflow.value
      with
      | Jointflow.Stored -> ()
      | Jointflow.Time t ->
          Alcotest.failf "expected Stored, got T=%s" (Rat.to_string t)
      | Jointflow.Impossible -> Alcotest.fail "impossible?")
    rules

let test_obj_monotone_in_budget () =
  (* OBJ(S) is non-increasing in S *)
  let q = Cq.Library.k_path 3 in
  let rules = Rule.generate q (Enum.pmtds q) in
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  List.iter
    (fun r ->
      let ts =
        List.filter_map
          (fun logs -> Jointflow.logt r ~dc ~ac ~logq:Rat.zero ~logs)
          (Tradeoff.grid ~lo:Rat.zero ~hi:(Rat.of_int 2) ~steps:8)
      in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> Rat.compare b a <= 0 && decreasing rest
        | _ -> true
      in
      Alcotest.check Alcotest.bool "non-increasing" true (decreasing ts))
    rules

let test_duality_identity () =
  (* Theorem D.6: logT + ‖θ‖·logS = d_exp·logD + q_exp·logQ exactly *)
  let q = Cq.Library.k_path 3 in
  let rules = Rule.generate q (Enum.pmtds q) in
  let dc = Degree.default_dc q.Cq.cq and ac = Degree.default_ac q in
  let logq = Rat.make 1 8 and logs = Rat.make 3 4 in
  List.iter
    (fun r ->
      match Jointflow.obj r ~dc ~ac ~logd:Rat.one ~logq ~logs with
      | { Jointflow.value = Time t; tradeoff = Some tr; _ } ->
          let lhs = Rat.add t (Rat.mul tr.Tradeoff.s_exp logs) in
          let rhs = Rat.add tr.Tradeoff.d_exp (Rat.mul tr.Tradeoff.q_exp logq) in
          Alcotest.check rat "strong duality" rhs lhs
      | _ -> Alcotest.fail "expected Time")
    rules

let test_scaled () =
  let t =
    Tradeoff.make ~s_exp:(Rat.make 2 3) ~t_exp:Rat.one ~d_exp:(Rat.make 4 3)
      ~q_exp:Rat.one
  in
  Alcotest.check tr "scaled to integers" (mk 2 3 4 3) (Tradeoff.scaled t)

let () =
  Alcotest.run "jointflow"
    [
      ( "paper tradeoffs",
        [
          Alcotest.test_case "2-reach" `Quick test_2reach_tradeoff;
          Alcotest.test_case "Table 1 (3-reach)" `Quick test_table1;
          Alcotest.test_case "k-set intersection" `Quick test_k_set_disjointness;
          Alcotest.test_case "square (E.5)" `Quick test_square;
          Alcotest.test_case "triangle stored (E.4)" `Quick test_triangle_stored;
        ] );
      ( "structure",
        [
          Alcotest.test_case "OBJ monotone" `Quick test_obj_monotone_in_budget;
          Alcotest.test_case "duality identity" `Quick test_duality_identity;
          Alcotest.test_case "scaling" `Quick test_scaled;
        ] );
    ]
