(* The database layer: instantiation, reference evaluation and the
   budget-bounded join used by preprocessing. *)

open Stt_relation
open Stt_hypergraph
open Stt_core

let sorted r = List.sort compare (List.map Array.to_list (Relation.to_list r))

let small_db () =
  let db = Db.create () in
  Db.add_pairs db "R" [ (1, 2); (2, 3); (3, 4); (1, 3) ];
  db

let test_relation_instantiation () =
  let db = small_db () in
  let rel = Db.relation db { Cq.rel = "R"; vars = [ 5; 7 ] } in
  Alcotest.check Alcotest.int "cardinality" 4 (Relation.cardinal rel);
  Alcotest.check Alcotest.(list int) "schema is the atom's vars" [ 5; 7 ]
    (Schema.vars (Relation.schema rel));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Db.relation: unknown relation Z") (fun () ->
      ignore (Db.relation db { Cq.rel = "Z"; vars = [ 0; 1 ] }))

let test_eval_2path () =
  let db = small_db () in
  let q = Cq.Library.k_path 2 in
  let result = Db.eval db q.Cq.cq in
  (* 2-paths: 1→2→3, 2→3→4, 1→3→4 ⇒ endpoint pairs (1,3), (2,4), (1,4) *)
  Alcotest.check
    Alcotest.(list (list int))
    "endpoint pairs"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 4 ] ]
    (sorted result)

let test_eval_access () =
  let db = small_db () in
  let q = Cq.Library.k_path 2 in
  let q_a =
    Relation.of_list (Schema.of_list [ 0; 2 ]) [ [| 1; 3 |]; [| 3; 1 |] ]
  in
  Alcotest.check
    Alcotest.(list (list int))
    "filtered by request"
    [ [ 1; 3 ] ]
    (sorted (Db.eval_access db q ~q_a))

let test_size () =
  let db = Db.create () in
  Db.add_pairs db "A" [ (1, 2) ];
  Db.add_pairs db "B" [ (1, 2); (3, 4) ];
  Alcotest.check Alcotest.int "max cardinality" 2 (Db.size db);
  Alcotest.check Alcotest.int "per relation" 1 (Db.cardinal db "A")

let test_mixed_arity_rejected () =
  let db = Db.create () in
  Alcotest.check_raises "mixed arities" (Invalid_argument "Db.add: mixed arities")
    (fun () -> Db.add db "R" [ [| 1 |]; [| 1; 2 |] ])

let rel_of schema tuples =
  Relation.of_list (Schema.of_list schema) (List.map Array.of_list tuples)

let test_bounded_join () =
  let a = rel_of [ 0; 1 ] (List.init 50 (fun i -> [ i / 10; i ])) in
  let b = rel_of [ 1; 2 ] (List.init 50 (fun i -> [ i; i mod 7 ])) in
  (* unbounded result *)
  let full = Db.join_greedy [ a; b ] ~keep:[ 0; 2 ] in
  (* a generous limit reproduces it *)
  (match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:10_000 with
  | Some r ->
      Alcotest.check Alcotest.bool "same result" true (Relation.equal r full)
  | None -> Alcotest.fail "should fit");
  (* a tiny limit gives up *)
  match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "should exceed limit"

let test_bounded_join_limit_zero () =
  (* limit:0 succeeds iff the result is empty *)
  let a = rel_of [ 0; 1 ] [ [ 1; 2 ] ] in
  let b = rel_of [ 1; 2 ] [ [ 9; 9 ] ] in
  (match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:0 with
  | Some r ->
      Alcotest.check Alcotest.int "empty join fits limit 0" 0
        (Relation.cardinal r)
  | None -> Alcotest.fail "empty result must fit limit 0");
  let b' = rel_of [ 1; 2 ] [ [ 2; 7 ] ] in
  match Db.join_greedy_bounded [ a; b' ] ~keep:[ 0; 2 ] ~limit:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "one output tuple must exceed limit 0"

let test_bounded_join_final_exceeds () =
  (* a single-relation "join" is a projection; its *final* result must
     still be checked against the limit (regression: it was not) *)
  let r = rel_of [ 0; 1 ] (List.init 10 (fun i -> [ i; i ])) in
  (match Db.join_greedy_bounded [ r ] ~keep:[ 0; 1 ] ~limit:3 with
  | None -> ()
  | Some _ -> Alcotest.fail "final result of 10 tuples must exceed limit 3");
  (* ... but a small projection of a large input is within contract:
     inputs themselves are not intermediates *)
  let skewed = rel_of [ 0; 1 ] (List.init 10 (fun i -> [ 0; i ])) in
  match Db.join_greedy_bounded [ skewed ] ~keep:[ 0 ] ~limit:3 with
  | Some r -> Alcotest.check Alcotest.int "projected size" 1 (Relation.cardinal r)
  | None -> Alcotest.fail "1-tuple projection fits limit 3"

let test_bounded_join_empty_inputs () =
  let empty = Relation.create (Schema.of_list [ 0; 1 ]) in
  let b = rel_of [ 1; 2 ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  (match Db.join_greedy_bounded [ empty; b ] ~keep:[ 0; 2 ] ~limit:100 with
  | Some r -> Alcotest.check Alcotest.int "empty join" 0 (Relation.cardinal r)
  | None -> Alcotest.fail "empty join always fits");
  (* unbounded variant agrees *)
  Alcotest.check Alcotest.int "unbounded empty join" 0
    (Relation.cardinal (Db.join_greedy [ empty; b ] ~keep:[ 0; 2 ]));
  (* empty relation *list* is a contract violation *)
  Alcotest.check_raises "no relations"
    (Invalid_argument "Db.join_greedy: no relations") (fun () ->
      ignore (Db.join_greedy_bounded [] ~keep:[] ~limit:10))

let test_bounded_join_explosive () =
  (* dense bipartite cross: the bound must trip during the join, without
     materializing the full product *)
  let a = rel_of [ 0; 1 ] (List.init 300 (fun i -> [ i; 0 ])) in
  let b = rel_of [ 1; 2 ] (List.init 300 (fun i -> [ 0; i ])) in
  match Db.join_greedy_bounded [ a; b ] ~keep:[ 0; 2 ] ~limit:1000 with
  | None -> ()
  | Some _ -> Alcotest.fail "90000-tuple product should exceed the limit"

let () =
  Alcotest.run "db"
    [
      ( "db",
        [
          Alcotest.test_case "instantiation" `Quick test_relation_instantiation;
          Alcotest.test_case "eval 2-path" `Quick test_eval_2path;
          Alcotest.test_case "eval access" `Quick test_eval_access;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "mixed arity" `Quick test_mixed_arity_rejected;
          Alcotest.test_case "bounded join" `Quick test_bounded_join;
          Alcotest.test_case "bounded join limit 0" `Quick
            test_bounded_join_limit_zero;
          Alcotest.test_case "bounded join final result checked" `Quick
            test_bounded_join_final_exceeds;
          Alcotest.test_case "bounded join empty inputs" `Quick
            test_bounded_join_empty_inputs;
          Alcotest.test_case "bounded join explosive" `Quick
            test_bounded_join_explosive;
        ] );
    ]
